// Table 5: Apache throughput and latency percentiles under a wrk-style closed-loop
// load (20 connections). Expected shape: VUsion close to KSM; VUsion-THP recovers
// most of the gap to no-dedup by conserving working-set huge pages.

#include <cstdio>

#include "src/workload/apache_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("table5_apache");
  reporter.Header("Table 5: Apache throughput and latency");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::printf("%-12s %-14s %-10s %-10s %-10s\n", "system", "kreq/s (rel)", "lat 75%",
              "lat 90%", "lat 99%");
  double baseline = 0.0;
  for (const EngineKind kind : EvalEngines()) {
    Scenario scenario(EvalScenario(kind));
    for (int i = 0; i < 3; ++i) {
      scenario.BootVm(EvalImage(), 10 + i);
    }
    Process& server = scenario.machine().CreateProcess();
    ApacheWorkload::Config config;
    ApacheWorkload apache(server, config, 3);
    scenario.RunFor(30 * kSecond);
    const ApacheResult result = apache.Run(60 * kSecond);
    if (kind == EngineKind::kNone) {
      baseline = result.kreq_per_s;
    }
    const double rel_pct = baseline > 0 ? 100.0 * result.kreq_per_s / baseline : 100.0;
    std::printf("%-12s %6.2f (%5.1f%%) %-10.2f %-10.2f %-10.2f\n", EngineKindName(kind),
                result.kreq_per_s, rel_pct, result.lat_p75_ms, result.lat_p90_ms,
                result.lat_p99_ms);
    reporter.AddRow("apache", {{"system", EngineKindName(kind)},
                               {"kreq_per_s", result.kreq_per_s},
                               {"rel_pct", rel_pct},
                               {"lat_p75_ms", result.lat_p75_ms},
                               {"lat_p90_ms", result.lat_p90_ms},
                               {"lat_p99_ms", result.lat_p99_ms}});
    reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  }
  std::printf("\npaper: no-dedup 22.0 (100%%), KSM 18.4 (83.6%%), VUsion 18.3 (82.3%%),\n"
              "       VUsion THP 21.2 (96.1%%); latency follows the same trend\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
