// Fully associative LRU TLB with PTE snapshots. Kernel-side PTE modifications must
// invalidate (AddressSpace does this), modeling TLB shootdown.

#ifndef VUSION_SRC_MMU_TLB_H_
#define VUSION_SRC_MMU_TLB_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>

#include "src/mmu/pte.h"

namespace vusion {

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class Tlb {
 public:
  explicit Tlb(std::size_t capacity);

  // Savestates: entries in LRU order (recency is deterministic state — it
  // decides future evictions); the vpn->iterator map is rebuilt on restore.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  std::optional<Pte> Lookup(Vpn vpn);
  void Insert(Vpn vpn, const Pte& pte);
  void Invalidate(Vpn vpn);
  void InvalidateRange(Vpn start, Vpn end);
  void Flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  // Visits every cached translation (no LRU side effects); audit use only.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& entry : lru_) {
      fn(entry.vpn, entry.pte);
    }
  }

 private:
  struct Entry {
    Vpn vpn;
    Pte pte;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Vpn, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_MMU_TLB_H_
