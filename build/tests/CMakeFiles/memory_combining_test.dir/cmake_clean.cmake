file(REMOVE_RECURSE
  "CMakeFiles/memory_combining_test.dir/memory_combining_test.cc.o"
  "CMakeFiles/memory_combining_test.dir/memory_combining_test.cc.o.d"
  "memory_combining_test"
  "memory_combining_test.pdb"
  "memory_combining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_combining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
