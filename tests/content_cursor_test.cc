// Unit tests for the fusion-shared machinery: the round-robin ScanCursor, the
// latency-charged content operations, and the deferred-free queue.

#include "src/fusion/content.h"

#include <gtest/gtest.h>

#include "src/fusion/deferred_free.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 4096;
  return config;
}

TEST(ScanCursorTest, EmptyMachineYieldsNothing) {
  Machine machine(SmallMachine());
  ScanCursor cursor(machine);
  Process* p = nullptr;
  Vpn vpn = 0;
  bool wrapped = false;
  EXPECT_FALSE(cursor.Next(p, vpn, wrapped));
}

TEST(ScanCursorTest, SkipsNonMergeableVmas) {
  Machine machine(SmallMachine());
  Process& proc = machine.CreateProcess();
  proc.AllocateRegion(8, PageType::kAnonymous, /*mergeable=*/false, false);
  ScanCursor cursor(machine);
  Process* p = nullptr;
  Vpn vpn = 0;
  bool wrapped = false;
  EXPECT_FALSE(cursor.Next(p, vpn, wrapped));
}

TEST(ScanCursorTest, RoundRobinAndWrapDetection) {
  Machine machine(SmallMachine());
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr base_a = a.AllocateRegion(3, PageType::kAnonymous, true, false);
  const VirtAddr base_b = b.AllocateRegion(2, PageType::kAnonymous, true, false);
  ScanCursor cursor(machine);
  std::vector<std::pair<std::uint32_t, Vpn>> seen;
  int wraps = 0;
  for (int i = 0; i < 10; ++i) {
    Process* p = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    ASSERT_TRUE(cursor.Next(p, vpn, wrapped));
    wraps += wrapped ? 1 : 0;
    seen.emplace_back(p->id(), vpn);
  }
  // 5 mergeable pages: exactly two rounds in 10 steps.
  EXPECT_EQ(wraps, 1);
  EXPECT_EQ(seen[0], (std::pair<std::uint32_t, Vpn>{0, VaddrToVpn(base_a)}));
  EXPECT_EQ(seen[3], (std::pair<std::uint32_t, Vpn>{1, VaddrToVpn(base_b)}));
  EXPECT_EQ(seen[5], seen[0]);  // second round revisits in the same order
  EXPECT_EQ(seen[9], seen[4]);
}

TEST(ScanCursorTest, PicksUpVmasAddedMidScan) {
  Machine machine(SmallMachine());
  Process& a = machine.CreateProcess();
  a.AllocateRegion(2, PageType::kAnonymous, true, false);
  ScanCursor cursor(machine);
  Process* p = nullptr;
  Vpn vpn = 0;
  bool wrapped = false;
  ASSERT_TRUE(cursor.Next(p, vpn, wrapped));
  // A new mergeable region appears (e.g. a VM boots).
  const VirtAddr late = a.AllocateRegion(2, PageType::kAnonymous, true, false);
  std::set<Vpn> visited;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cursor.Next(p, vpn, wrapped));
    visited.insert(vpn);
  }
  EXPECT_TRUE(visited.contains(VaddrToVpn(late)));
}

TEST(ScanCursorTest, SkipsDestroyedProcesses) {
  Machine machine(SmallMachine());
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  a.AllocateRegion(2, PageType::kAnonymous, true, false);
  b.AllocateRegion(2, PageType::kAnonymous, true, false);
  machine.DestroyProcess(a);
  ScanCursor cursor(machine);
  for (int i = 0; i < 6; ++i) {
    Process* p = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    ASSERT_TRUE(cursor.Next(p, vpn, wrapped));
    EXPECT_EQ(p->id(), b.id());
  }
}

TEST(ChargedContentTest, OperationsAdvanceTheClock) {
  Machine machine(SmallMachine());
  machine.memory().MarkAllocated(0);
  machine.memory().MarkAllocated(1);
  machine.memory().FillPattern(0, 1);
  machine.memory().FillPattern(1, 2);
  ChargedContent content(machine);
  const SimTime t0 = machine.clock().now();
  content.Hash(0);
  const SimTime t1 = machine.clock().now();
  EXPECT_GT(t1, t0);
  content.Compare(0, 1);
  EXPECT_GT(machine.clock().now(), t1);
  const SimTime t2 = machine.clock().now();
  content.ChargeTreeStep();
  EXPECT_GT(machine.clock().now(), t2);
}

TEST(DeferredFreeQueueTest, DrainReleasesToSinkAndCountsDummies) {
  Machine machine(SmallMachine());
  DeferredFreeQueue queue(machine);
  const FrameId f1 = machine.buddy().Allocate();
  const FrameId f2 = machine.buddy().Allocate();
  const std::size_t free_before = machine.buddy().free_count();
  queue.Push(f1);
  queue.PushDummy();
  queue.Push(f2);
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_EQ(queue.dummies_pushed(), 1u);
  EXPECT_EQ(machine.buddy().free_count(), free_before);  // nothing freed yet
  queue.Drain(machine.buddy());
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.dummies_pushed(), 0u);
  EXPECT_EQ(machine.buddy().free_count(), free_before + 2);
}

TEST(DeferredFreeQueueTest, PushAndDummyCostTheSame) {
  // The Same Behaviour property the queue exists for: both operations charge one
  // identical queue_op.
  MachineConfig config = SmallMachine();
  config.latency.noise_sigma = 0.0;
  Machine machine(config);
  DeferredFreeQueue queue(machine);
  const FrameId f = machine.buddy().Allocate();
  const SimTime t0 = machine.clock().now();
  queue.Push(f);
  const SimTime push_cost = machine.clock().now() - t0;
  const SimTime t1 = machine.clock().now();
  queue.PushDummy();
  const SimTime dummy_cost = machine.clock().now() - t1;
  EXPECT_EQ(push_cost, dummy_cost);
  queue.Drain(machine.buddy());
}

}  // namespace
}  // namespace vusion
