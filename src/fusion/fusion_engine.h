// Abstract base for the three page-fusion engines (KSM, WPF, VUsion). An engine is
// both a kernel daemon (the scanner thread) and a sharing policy (fault handling,
// unmap bookkeeping, khugepaged gating).

#ifndef VUSION_SRC_FUSION_FUSION_ENGINE_H_
#define VUSION_SRC_FUSION_FUSION_ENGINE_H_

#include "src/fusion/fusion_stats.h"
#include "src/host/parallel_scan.h"
#include "src/kernel/daemon.h"
#include "src/kernel/machine.h"
#include "src/kernel/sharing_policy.h"

namespace vusion {

class FusionEngine : public Daemon, public SharingPolicy {
 public:
  // Construction is pure: the config is taken as given, with no environment
  // reads. Callers wanting env overrides (VUSION_SCAN_THREADS) go through
  // FusionConfig::ApplyEnvOverrides — MakeEngine and Scenario apply it for you.
  FusionEngine(Machine& machine, const FusionConfig& config)
      : machine_(&machine), config_(config) {}
  ~FusionEngine() override = default;

  [[nodiscard]] virtual const char* name() const = 0;

  // Physical frames currently saved by sharing: sum over shared copies of
  // (sharers - 1). The memory-consumption figures plot allocated - saved.
  [[nodiscard]] virtual std::uint64_t frames_saved() const = 0;

  // Frames the engine holds in reserve (VUsion's entropy pool); subtracted when
  // reporting guest memory consumption.
  [[nodiscard]] virtual std::size_t reserved_frames() const { return 0; }

  // Registers this engine as the machine's sharing policy and daemon.
  void Install() {
    machine_->SetSharingPolicy(this);
    machine_->AddDaemon(this);
  }
  void Uninstall() {
    machine_->SetSharingPolicy(nullptr);
    machine_->RemoveDaemon(this);
  }

  // Breaks every (fake) merge the engine holds by unregistering all mergeable
  // ranges, leaving plain private pages behind. This is the safe hand-off point
  // for replacing one fusion system with another on a live machine (e.g. deploying
  // VUsion where KSM was running).
  void TearDown();

  [[nodiscard]] SimTime next_run() const override { return next_run_; }

  // --- sysfs-style runtime controls (/sys/kernel/mm/ksm/{run,sleep_millisecs,
  // pages_to_scan} equivalents) ---

  // Adjusts the scan rate at runtime.
  void SetScanRate(SimTime wake_period, std::size_t pages_per_wake) {
    config_.wake_period = wake_period;
    config_.pages_per_wake = pages_per_wake;
  }
  // run=0: the scanner stops; existing merges stay in place and fault normally.
  void Pause() { paused_ = true; }
  void Resume() { paused_ = false; }
  [[nodiscard]] bool paused() const { return paused_; }

  [[nodiscard]] FusionStats& stats() { return stats_; }
  [[nodiscard]] const FusionStats& stats() const { return stats_; }
  [[nodiscard]] const FusionConfig& config() const { return config_; }
  [[nodiscard]] Machine& machine() { return *machine_; }

  // Host wall-clock accounting of the engine's scan sections (null for engines
  // without a scan loop). Benches use it for scan-only throughput numbers.
  [[nodiscard]] virtual const host::ScanTiming* scan_timing() const { return nullptr; }

  // Bridges FusionStats (and any engine-specific state) into a metrics registry,
  // usually the machine's. Overrides must call the base first.
  virtual void ExportMetrics(MetricsRegistry& registry) const;

 protected:
  // True when the engine should skip its scan work this wake-up (and reschedule).
  bool SkipWake() {
    if (paused_) {
      next_run_ = machine_->clock().now() + config_.wake_period;
      return true;
    }
    return false;
  }

  Machine* machine_;
  FusionConfig config_;
  FusionStats stats_;
  SimTime next_run_ = 0;
  bool paused_ = false;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_FUSION_ENGINE_H_
