// Figure 9: number of huge pages over the runtime of the Apache benchmark.
// Expected shape: VUsion-THP conserves (working-set) huge pages; base VUsion and
// KSM progressively lose them to splitting.

#include <cstdio>
#include <vector>

#include "src/workload/apache_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

std::vector<std::uint64_t> RunSeries(EngineKind kind, bench::Reporter& reporter) {
  ScenarioConfig config = EvalScenario(kind);
  // khugepaged runs in every configuration for this experiment.
  config.enable_khugepaged = true;
  config.khugepaged.period = 2 * kSecond;
  config.khugepaged.ranges_per_wake = 16;
  config.khugepaged.period = 1 * kSecond;
  config.khugepaged.ranges_per_wake = 32;
  Scenario scenario(config);
  for (int i = 0; i < 3; ++i) {
    scenario.BootVm(EvalImage(), 10 + i);
  }
  Process& server = scenario.machine().CreateProcess();
  // THP-sized prefork workers: each worker's 2 MB region is what khugepaged can
  // collapse (and what fusion splits), the tension Figure 9 plots.
  ApacheWorkload::Config apache_config;
  apache_config.worker_pages = kPagesPerHugePage;
  apache_config.initial_workers = 4;
  apache_config.max_workers = 24;
  apache_config.worker_spawn_interval = 10 * kSecond;
  ApacheWorkload apache(server, apache_config, 3);

  std::vector<std::uint64_t> series;
  series.push_back(scenario.machine().CountHugeMappings());
  for (int slice = 0; slice < 10; ++slice) {
    apache.Run(10 * kSecond);
    series.push_back(scenario.machine().CountHugeMappings());
  }
  reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  return series;
}

void Run() {
  bench::Reporter reporter("fig9_thp_conservation");
  reporter.Header("Figure 9: huge pages over time during the Apache benchmark");
  DescribeEval(reporter, EngineKind::kVUsionThp);
  std::vector<std::vector<std::uint64_t>> all;
  const EngineKind kinds[] = {EngineKind::kKsm, EngineKind::kVUsion, EngineKind::kVUsionThp};
  for (const EngineKind kind : kinds) {
    all.push_back(RunSeries(kind, reporter));
    std::vector<double> as_double(all.back().begin(), all.back().end());
    reporter.AddSeries(EngineKindName(kind), as_double);
  }
  std::printf("%-8s %-10s %-10s %-12s\n", "t(s)", "KSM", "VUsion", "VUsion-THP");
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    std::printf("%-8llu %-10llu %-10llu %-12llu\n", static_cast<unsigned long long>(i * 10),
                static_cast<unsigned long long>(all[0][i]),
                static_cast<unsigned long long>(all[1][i]),
                static_cast<unsigned long long>(all[2][i]));
  }
  std::printf("\npaper: VUsion THP retains clearly more huge pages than KSM/VUsion\n");
  for (std::size_t e = 0; e < 3; ++e) {
    reporter.AddRow("final_huge_pages", {{"system", EngineKindName(kinds[e])},
                                         {"huge_pages", all[e].back()}});
  }
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
