// Ablation of §7.1 "Randomized Allocation": sweep the entropy pool size and
// measure the probability that a specific (template) frame is controllably reused.
// Expected shape: reuse probability ~ 1/pool_size; the paper's 32768-frame pool
// yields 2^-15.

#include <cmath>
#include <cstdio>

#include "src/phys/randomized_pool.h"
#include "src/phys/buddy_allocator.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

double MeasureReuseProbability(std::size_t pool_size, int trials) {
  PhysicalMemory mem(4 * pool_size + 1024);
  BuddyAllocator buddy(mem);
  RandomizedPool pool(buddy, pool_size, Rng(11));
  int reused = 0;
  for (int t = 0; t < trials; ++t) {
    // The attacker releases a template frame and hopes the next fusion allocation
    // lands exactly on it.
    const FrameId frame = pool.Allocate();
    pool.Free(frame);
    const FrameId next = pool.Allocate();
    reused += (next == frame) ? 1 : 0;
    pool.Free(next);
  }
  return static_cast<double>(reused) / trials;
}

void Run() {
  bench::Reporter reporter("ablation_pool_entropy");
  reporter.Header("Ablation: randomized-pool entropy vs controlled reuse probability");
  std::printf("%-12s %-10s %-18s %-18s\n", "pool frames", "bits", "measured P(reuse)",
              "expected 1/size");
  for (const std::size_t size : {16u, 64u, 256u, 1024u, 4096u}) {
    const double measured = MeasureReuseProbability(size, 40000);
    std::printf("%-12zu %-10.0f %-18.5f %-18.5f\n", size, std::log2(double(size)), measured,
                1.0 / static_cast<double>(size));
    reporter.AddRow("reuse", {{"pool_frames", size},
                              {"entropy_bits", std::log2(double(size))},
                              {"measured_p_reuse", measured},
                              {"expected_p_reuse", 1.0 / static_cast<double>(size)}});
  }
  std::printf("\npaper: 32768-frame (128 MB) pool -> controlled reuse probability 2^-15\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
