// Delta-scanning parity and invalidation tests (DESIGN.md §10).
//
// Epoch-based delta scanning (FusionConfig::delta_scan) is a host-side
// optimisation: on every pass, unchanged pages replay their memoized scan
// conclusion instead of re-deriving it. The contract is bit-identical simulated
// behaviour — stats, the full trace event stream, and the final charged clock
// value must match the reference full scan for every engine and thread count,
// under a workload that churns the pass cache hard (content writes, CoW breaks,
// remaps, and a mid-run VM teardown).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/chaos/invariant_auditor.h"
#include "src/chaos/fuzz_campaign.h"
#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"
#include "src/sim/metrics.h"

namespace vusion {
namespace {

void ExpectAuditClean(Machine& machine, FusionEngine* engine) {
  InvariantAuditor auditor(machine);
  const AuditReport report = auditor.Audit(engine);
  EXPECT_GT(report.checks, 0u);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
}

struct DeltaResult {
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;
  std::uint64_t fake_merges = 0;
  std::uint64_t unmerges_cow = 0;
  std::uint64_t unmerges_coa = 0;
  std::uint64_t zero_page_merges = 0;
  std::uint64_t full_scans = 0;
  std::uint64_t frames_saved = 0;
  SimTime final_time = 0;
  std::vector<TraceEvent> trace;
  std::uint64_t delta_replays = 0;
  std::uint64_t delta_records = 0;
};

// The churn workload: duplicate-heavy VMs scanned across many wake quanta,
// interleaved with content writes (CoW breaks on fused pages, generation bumps
// on unique ones), remaps (unmap + remap with fresh content), reads, and one
// phase-hook VM teardown while the engine is mid-scan.
DeltaResult RunDeltaScenario(EngineKind kind, std::uint64_t seed, std::size_t threads,
                             bool delta) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = seed;
  Machine machine(machine_config);
  machine.trace().set_enabled(true);
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 1024;
  fusion_config.wpf_period = 10 * kMillisecond;
  fusion_config.scan_threads = threads;
  fusion_config.delta_scan = delta;
  ScopedEngine engine(kind, machine, fusion_config);

  constexpr std::size_t kVms = 3;
  constexpr std::size_t kPages = 128;
  std::vector<Process*> procs;
  std::vector<VirtAddr> bases;
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& proc = machine.CreateProcess();
    procs.push_back(&proc);
    const VirtAddr base = proc.AllocateRegion(kPages, PageType::kAnonymous, true, false);
    bases.push_back(base);
    for (std::size_t i = 0; i < kPages; ++i) {
      if (i % 16 == 5) {
        proc.SetupMapZero(VaddrToVpn(base) + i);  // zero pages (zero-only KSM)
      } else if (i % 3 == 0) {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x6200 + (i % 20));  // duplicates
      } else {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x990000 + p * 4096 + i);  // unique
      }
    }
  }
  // The teardown victim: shares content with the main VMs so its pages merge
  // (leaving delta entries and engine references behind to invalidate).
  Process& victim = machine.CreateProcess();
  const std::uint32_t victim_pid = victim.id();
  const VirtAddr victim_base =
      victim.AllocateRegion(kPages, PageType::kAnonymous, true, false);
  for (std::size_t i = 0; i < kPages; ++i) {
    victim.SetupMapPattern(VaddrToVpn(victim_base) + i, 0x6200 + (i % 20));
  }

  // Mid-scan teardown: on the 10th wake quantum, destroy the victim VM from
  // inside the engine's own scan loop. Quantum boundaries fire identically with
  // delta on and off, so both runs tear down at the same simulated instant.
  std::size_t quantum_starts = 0;
  engine->SetPhaseHook([&](FusionEngine&, ScanPhase phase) {
    if (phase != ScanPhase::kQuantumStart) {
      return;
    }
    if (++quantum_starts == 10 && machine.processes()[victim_pid] != nullptr) {
      machine.DestroyProcess(*machine.processes()[victim_pid]);
    }
  });

  Rng rng(seed * 131 + 7);
  for (int step = 0; step < 400; ++step) {
    const std::size_t p = rng.NextBelow(kVms);
    const std::size_t page = rng.NextBelow(kPages);
    const VirtAddr addr = bases[p] + page * kPageSize + rng.NextBelow(kPageSize / 8) * 8;
    switch (rng.NextBelow(6)) {
      case 0:
      case 1:
        // Content write: breaks CoW on fused pages, moves the write epoch and
        // content generation on private ones.
        procs[p]->Write64(addr, rng.Next());
        break;
      case 2:
        machine.Idle(rng.NextInRange(1, 4) * kMillisecond);
        break;
      case 3: {
        // Remap: the page leaves and re-enters the address space with fresh
        // content; any memoized conclusion for its vpn must not survive.
        const Vpn vpn = VaddrToVpn(bases[p]) + page;
        procs[p]->SetupUnmap(vpn);
        procs[p]->SetupMapPattern(vpn, 0x6200 + (rng.NextBelow(40)));
        break;
      }
      case 4:
        (void)procs[p]->Read64(addr);
        break;
      default:
        procs[p]->Prefetch(addr);
        break;
    }
  }
  // Long steady-state stretch: this is where delta replays dominate.
  machine.Idle(150 * kMillisecond);

  engine->SetPhaseHook(nullptr);
  const FusionStats& stats = engine->stats();
  DeltaResult result;
  result.pages_scanned = stats.pages_scanned;
  result.merges = stats.merges;
  result.fake_merges = stats.fake_merges;
  result.unmerges_cow = stats.unmerges_cow;
  result.unmerges_coa = stats.unmerges_coa;
  result.zero_page_merges = stats.zero_page_merges;
  result.full_scans = stats.full_scans;
  result.frames_saved = engine->frames_saved();
  result.final_time = machine.clock().now();
  result.trace = machine.trace().Events();
  MetricsRegistry registry;
  engine->ExportMetrics(registry);
  result.delta_replays = registry.GetCounter("delta.replays").value();
  result.delta_records = registry.GetCounter("delta.records").value();
  ExpectAuditClean(machine, engine.get());
  return result;
}

void ExpectBitIdentical(const DeltaResult& off, const DeltaResult& on,
                        const std::string& label) {
  EXPECT_EQ(off.pages_scanned, on.pages_scanned) << label;
  EXPECT_EQ(off.merges, on.merges) << label;
  EXPECT_EQ(off.fake_merges, on.fake_merges) << label;
  EXPECT_EQ(off.unmerges_cow, on.unmerges_cow) << label;
  EXPECT_EQ(off.unmerges_coa, on.unmerges_coa) << label;
  EXPECT_EQ(off.zero_page_merges, on.zero_page_merges) << label;
  EXPECT_EQ(off.full_scans, on.full_scans) << label;
  EXPECT_EQ(off.frames_saved, on.frames_saved) << label;
  EXPECT_EQ(off.final_time, on.final_time) << label;
  ASSERT_EQ(off.trace.size(), on.trace.size()) << label;
  for (std::size_t i = 0; i < off.trace.size(); ++i) {
    const TraceEvent& a = off.trace[i];
    const TraceEvent& b = on.trace[i];
    ASSERT_TRUE(a.time == b.time && a.type == b.type && a.process_id == b.process_id &&
                a.vpn == b.vpn && a.frame == b.frame)
        << label << ": event " << i << " diverged at time " << a.time << " vs " << b.time;
  }
}

struct DeltaParam {
  EngineKind kind;
  std::uint64_t seed;
};

class DeltaParityTest : public ::testing::TestWithParam<DeltaParam> {
 protected:
  void SetUp() override {
    // The comparison owns both knobs explicitly; CI-level env overrides would
    // make delta-off runs silently delta-on (or force a thread count).
    unsetenv("VUSION_DELTA_SCAN");
    unsetenv("VUSION_SCAN_THREADS");
    unsetenv("VUSION_SCAN_STREAMING");
    unsetenv("VUSION_SCAN_CHUNK");
  }
};

TEST_P(DeltaParityTest, DeltaOnAndOffAreBitIdentical) {
  const DeltaParam param = GetParam();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const DeltaResult off = RunDeltaScenario(param.kind, param.seed, threads, false);
    const DeltaResult on = RunDeltaScenario(param.kind, param.seed, threads, true);
    ExpectBitIdentical(off, on, "threads=" + std::to_string(threads));
    // The delta run must actually replay, and the reference run must not: a
    // zero-replay pass cache would make the parity above vacuous.
    EXPECT_GT(on.delta_replays, 0u) << "threads=" << threads;
    EXPECT_GT(on.delta_records, 0u) << "threads=" << threads;
    EXPECT_EQ(off.delta_replays, 0u) << "threads=" << threads;
    // And the scenario must exercise fusion churn, not compare no-ops.
    EXPECT_GT(off.merges + off.fake_merges, 0u) << "threads=" << threads;
    EXPECT_GT(off.trace.size(), 0u) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScanningEngines, DeltaParityTest,
    ::testing::Values(DeltaParam{EngineKind::kKsm, 1}, DeltaParam{EngineKind::kKsm, 2},
                      DeltaParam{EngineKind::kKsmCoA, 1},
                      DeltaParam{EngineKind::kKsmZeroOnly, 1},
                      DeltaParam{EngineKind::kWpf, 1}, DeltaParam{EngineKind::kWpf, 2},
                      DeltaParam{EngineKind::kVUsion, 1},
                      DeltaParam{EngineKind::kVUsion, 2},
                      DeltaParam{EngineKind::kVUsionThp, 1}),
    [](const ::testing::TestParamInfo<DeltaParam>& info) {
      std::string name = EngineKindName(info.param.kind);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_s" + std::to_string(info.param.seed);
    });

// --- Chaos merge-abort regression ---
//
// An injected merge abort must never leave a pass-cache entry whose recorded
// conclusion (in KSM's case, a memoized content hash and a "merge will succeed"
// verdict) outlives the aborted merge. The chaos decision stream consumes one
// ShouldFail per consult site, and the replay paths preserve every consult
// ordinal, so the same seed fires the same aborts with delta on and off — the
// runs must stay bit-identical even while aborts fire, and the machine-wide
// auditor (which cross-checks every surviving delta entry against PTEs, rmaps,
// and live frame content) must hold throughout.

struct ChaosDeltaParam {
  EngineKind kind;
  std::uint64_t seed;
};

class DeltaChaosAbortTest : public ::testing::TestWithParam<ChaosDeltaParam> {
 protected:
  void SetUp() override {
    unsetenv("VUSION_DELTA_SCAN");
    unsetenv("VUSION_SCAN_THREADS");
    unsetenv("VUSION_SCAN_STREAMING");
    unsetenv("VUSION_SCAN_CHUNK");
  }
};

struct ChaosDeltaResult {
  DeltaResult base;
  std::uint64_t degradations = 0;
};

ChaosDeltaResult RunChaosAbortScenario(EngineKind kind, std::uint64_t seed, bool delta) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = seed;
  Machine machine(machine_config);
  machine.trace().set_enabled(true);
  ChaosConfig chaos_config;
  chaos_config.SetRate(FaultSite::kMergeAbort, 0.25);
  chaos_config.SetRate(FaultSite::kStaleChecksum, 0.10);
  FaultInjector& injector = machine.EnableChaos(chaos_config);
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 1024;
  fusion_config.wpf_period = 10 * kMillisecond;
  fusion_config.delta_scan = delta;
  ScopedEngine engine(kind, machine, fusion_config);

  constexpr std::size_t kVms = 3;
  constexpr std::size_t kPages = 96;
  std::vector<Process*> procs;
  std::vector<VirtAddr> bases;
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& proc = machine.CreateProcess();
    procs.push_back(&proc);
    const VirtAddr base = proc.AllocateRegion(kPages, PageType::kAnonymous, true, false);
    bases.push_back(base);
    for (std::size_t i = 0; i < kPages; ++i) {
      proc.SetupMapPattern(VaddrToVpn(base) + i, 0x3300 + (i % 12));  // heavy duplication
    }
  }
  Rng rng(seed * 577 + 3);
  for (int step = 0; step < 200; ++step) {
    if (rng.NextBelow(3) == 0) {
      machine.Idle(rng.NextInRange(1, 4) * kMillisecond);
    } else {
      procs[rng.NextBelow(kVms)]->Write64(
          bases[rng.NextBelow(kVms)] + rng.NextBelow(kPages) * kPageSize, rng.Next());
    }
  }
  machine.Idle(120 * kMillisecond);

  ChaosDeltaResult result;
  const FusionStats& stats = engine->stats();
  result.base.pages_scanned = stats.pages_scanned;
  result.base.merges = stats.merges;
  result.base.unmerges_cow = stats.unmerges_cow;
  result.base.unmerges_coa = stats.unmerges_coa;
  result.base.full_scans = stats.full_scans;
  result.base.frames_saved = engine->frames_saved();
  result.base.final_time = machine.clock().now();
  result.base.trace = machine.trace().Events();
  result.degradations = injector.degradations();
  MetricsRegistry registry;
  engine->ExportMetrics(registry);
  result.base.delta_replays = registry.GetCounter("delta.replays").value();
  ExpectAuditClean(machine, engine.get());
  return result;
}

TEST_P(DeltaChaosAbortTest, AbortedMergesLeaveNoStaleMemo) {
  const ChaosDeltaParam param = GetParam();
  const ChaosDeltaResult off = RunChaosAbortScenario(param.kind, param.seed, false);
  const ChaosDeltaResult on = RunChaosAbortScenario(param.kind, param.seed, true);
  ExpectBitIdentical(off.base, on.base, "chaos");
  EXPECT_EQ(off.degradations, on.degradations);
  // Aborts must actually fire, and the delta run must actually replay — this
  // is the regression pinning the "drop the memoized hash before the merge can
  // abort" fix, not a quiet pass.
  EXPECT_GT(on.degradations, 0u);
  EXPECT_GT(on.base.delta_replays, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DeltaChaosAbortTest,
    ::testing::Values(ChaosDeltaParam{EngineKind::kKsm, 11},
                      ChaosDeltaParam{EngineKind::kWpf, 11},
                      ChaosDeltaParam{EngineKind::kVUsion, 11}),
    [](const ::testing::TestParamInfo<ChaosDeltaParam>& info) {
      std::string name = EngineKindName(info.param.kind);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// --- Chaos fuzz with delta scanning on ---
//
// The full randomized campaign (map/write/unmap/fork/teardown churn with faults
// injected at every site, machine-wide audits throughout) must stay green with
// the pass cache enabled. The heavyweight sweep lives in CI
// (tools/chaos_fuzz --delta); this keeps a deterministic slice in the suite.

struct FuzzDeltaParam {
  EngineKind kind;
  std::uint64_t seed;
};

class DeltaFuzzTest : public ::testing::TestWithParam<FuzzDeltaParam> {};

TEST_P(DeltaFuzzTest, CampaignInvariantsHoldWithDeltaOn) {
  CampaignOptions options;
  options.engine = GetParam().kind;
  options.seed = GetParam().seed;
  options.steps = 300;
  options.delta_scan = true;
  options.audit_epoch = 4;
  options.shrink = false;
  const CampaignResult result = FuzzCampaign(options).Run();
  EXPECT_TRUE(result.ok) << result.repro;
  for (const std::string& violation : result.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_GT(result.checks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DeltaFuzzTest,
    ::testing::Values(FuzzDeltaParam{EngineKind::kKsm, 1}, FuzzDeltaParam{EngineKind::kKsm, 2},
                      FuzzDeltaParam{EngineKind::kWpf, 1}, FuzzDeltaParam{EngineKind::kWpf, 2},
                      FuzzDeltaParam{EngineKind::kVUsion, 1},
                      FuzzDeltaParam{EngineKind::kVUsion, 2}),
    [](const ::testing::TestParamInfo<FuzzDeltaParam>& info) {
      std::string name = EngineKindName(info.param.kind);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace vusion
