file(REMOVE_RECURSE
  "CMakeFiles/vusion_mmu.dir/mmu/address_space.cc.o"
  "CMakeFiles/vusion_mmu.dir/mmu/address_space.cc.o.d"
  "CMakeFiles/vusion_mmu.dir/mmu/page_table.cc.o"
  "CMakeFiles/vusion_mmu.dir/mmu/page_table.cc.o.d"
  "CMakeFiles/vusion_mmu.dir/mmu/tlb.cc.o"
  "CMakeFiles/vusion_mmu.dir/mmu/tlb.cc.o.d"
  "CMakeFiles/vusion_mmu.dir/mmu/vma.cc.o"
  "CMakeFiles/vusion_mmu.dir/mmu/vma.cc.o.d"
  "libvusion_mmu.a"
  "libvusion_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
