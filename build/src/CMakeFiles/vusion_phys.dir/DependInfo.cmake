
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/buddy_allocator.cc" "src/CMakeFiles/vusion_phys.dir/phys/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/vusion_phys.dir/phys/buddy_allocator.cc.o.d"
  "/root/repo/src/phys/linear_allocator.cc" "src/CMakeFiles/vusion_phys.dir/phys/linear_allocator.cc.o" "gcc" "src/CMakeFiles/vusion_phys.dir/phys/linear_allocator.cc.o.d"
  "/root/repo/src/phys/physical_memory.cc" "src/CMakeFiles/vusion_phys.dir/phys/physical_memory.cc.o" "gcc" "src/CMakeFiles/vusion_phys.dir/phys/physical_memory.cc.o.d"
  "/root/repo/src/phys/randomized_pool.cc" "src/CMakeFiles/vusion_phys.dir/phys/randomized_pool.cc.o" "gcc" "src/CMakeFiles/vusion_phys.dir/phys/randomized_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vusion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
