// Dedup Est Machina techniques (paper §4.1, Bosman et al., S&P'16): leaking
// HIGH-entropy secrets through the copy-on-write channel, which plain spraying
// cannot brute-force.
//
//  * Partial leak: alignment control places the secret so that each fusion pass
//    exposes only a small slice of it next to known data; the attacker recovers
//    the secret slice by slice (2 * 2^k guesses instead of 2^(2k)).
//  * Birthday attack: the victim holds many independent secrets; the attacker
//    sprays random guesses and needs only ~2^(k/2)-scale work for a collision.
//
// Under VUsion both collapse: every guess costs the same copy-on-access.

#ifndef VUSION_SRC_ATTACK_DEDUP_EST_MACHINA_H_
#define VUSION_SRC_ATTACK_DEDUP_EST_MACHINA_H_

#include "src/attack/timing_probe.h"

namespace vusion {

class DedupEstMachina {
 public:
  // Recovers a 2k-bit secret in two k-bit stages (k = bits_per_stage).
  static AttackOutcome RunPartialLeak(EngineKind kind, std::uint64_t seed,
                                      int bits_per_stage = 7);

  // Victim holds `secrets` random k-bit values; attacker sprays `guesses` random
  // candidates and wins if any collision is detected AND correctly identified.
  static AttackOutcome RunBirthday(EngineKind kind, std::uint64_t seed,
                                   int secret_bits = 10, std::size_t secrets = 48,
                                   std::size_t guesses = 48);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_DEDUP_EST_MACHINA_H_
