// The simulated machine: physical memory, allocators, cache and DRAM hierarchy,
// processes/VMs, the timed memory-access path, the page-fault dispatcher, and the
// daemon scheduler. This is the "host kernel + hardware" every fusion engine,
// attack, and workload runs on.

#ifndef VUSION_SRC_KERNEL_MACHINE_H_
#define VUSION_SRC_KERNEL_MACHINE_H_

#include <memory>
#include <vector>

#include "src/cache/llc.h"
#include "src/chaos/fault_injector.h"
#include "src/dram/rowhammer.h"
#include "src/kernel/daemon.h"
#include "src/kernel/sharing_policy.h"
#include "src/mmu/address_space.h"
#include "src/phys/buddy_allocator.h"
#include "src/sim/latency_model.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"
#include "src/sim/rng.h"

namespace vusion {

namespace host {
class ThreadPool;
}  // namespace host

class Process;
class Khugepaged;
struct KhugepagedConfig;

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

struct MachineConfig {
  FrameId frame_count = 1u << 16;  // 256 MB of simulated physical memory
  CacheConfig cache;
  // Private first-level cache (32 KB, 8-way by default) in front of the LLC.
  CacheConfig l1_cache{.line_size = 64, .ways = 8, .sets = 64};
  bool enable_l1 = true;
  DramConfig dram;
  LatencyConfig latency;
  std::uint64_t seed = 42;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // --- Components ---

  [[nodiscard]] VirtualClock& clock() { return clock_; }
  [[nodiscard]] LatencyModel& latency() { return *latency_; }
  [[nodiscard]] PhysicalMemory& memory() { return *memory_; }
  [[nodiscard]] BuddyAllocator& buddy() { return *buddy_; }
  [[nodiscard]] Llc& llc() { return *llc_; }
  // Null when the L1 level is disabled in the config.
  [[nodiscard]] Llc* l1() { return l1_.get(); }
  [[nodiscard]] DramMapping& dram_mapping() { return *dram_mapping_; }
  [[nodiscard]] RowBuffer& row_buffer() { return *row_buffer_; }
  [[nodiscard]] RowhammerEngine& rowhammer() { return *rowhammer_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] TraceBuffer& trace() { return trace_; }
  [[nodiscard]] const MachineConfig& config() const { return config_; }

  // --- Chaos (deterministic fault injection; see src/chaos/) ---

  // Installs a fault injector (probabilistic mode) and wires it into the buddy
  // allocator. Engines pick it up at their next Run(). Null until enabled, and
  // every injection site no-ops on null, so chaos-off runs are bit-identical.
  FaultInjector& EnableChaos(const ChaosConfig& config);
  // Replay mode: exactly the given (site, visit) schedule fires.
  FaultInjector& EnableChaosWithSchedule(const ChaosConfig& config,
                                         const std::vector<FaultRecord>& schedule);
  [[nodiscard]] FaultInjector* chaos() { return chaos_.get(); }

  // Lazily-created host worker pool for the parallel scan pipeline (host-side
  // wall-clock machinery only; never touches simulated state). Returns null for
  // threads<=1 — the serial reference path. The pool is shared by all engines on
  // this machine and grown if a later caller asks for more threads; it is joined
  // and destroyed with the machine. An installed external pool takes precedence
  // regardless of `threads`.
  host::ThreadPool* HostPool(std::size_t threads);

  // Points this machine's engines at a pool owned elsewhere (the Fleet's worker
  // pool), so a fleet member's hash chunks are serviced by the shared workers
  // while its serial merge no longer occupies a worker slot. Non-owning; never
  // serialized. Pass null to fall back to the lazily-owned pool.
  void SetExternalHostPool(host::ThreadPool* pool) { external_host_pool_ = pool; }

  // --- Processes ---

  Process& CreateProcess();
  // fork(): the child gets a copy of the parent's address space. Plain private
  // pages are shared copy-on-write (both sides lose write permission; the kernel
  // frame refcount tracks the sharers). Fusion-managed and huge mappings are
  // copied eagerly, keeping the engines' ownership model untangled from fork's.
  Process& ForkProcess(Process& parent);
  // Tears a process down (VM shutdown): every mapping is released through the
  // fusion-aware unmap path, the sharing policy drops its references, and the
  // process slot becomes null (ids are never reused).
  void DestroyProcess(Process& process);
  // Entries may be null after DestroyProcess.
  [[nodiscard]] const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

  // --- Fusion policy & daemons ---

  void SetSharingPolicy(SharingPolicy* policy) { policy_ = policy; }
  [[nodiscard]] SharingPolicy* sharing_policy() { return policy_; }
  void AddDaemon(Daemon* daemon) { daemons_.push_back(daemon); }
  void RemoveDaemon(Daemon* daemon);
  // Enables the khugepaged daemon (off by default; benches opt in per config).
  Khugepaged& EnableKhugepaged(const KhugepagedConfig& config);
  [[nodiscard]] Khugepaged* khugepaged() { return khugepaged_.get(); }

  // Runs every daemon whose deadline has passed. Called automatically after each
  // timed access and throughout Idle().
  void RunDueDaemons();

  // Advances virtual time, running daemons at their deadlines.
  void Idle(SimTime duration);

  // --- Write-epoch tracking (delta scanning) ---

  // Turns on per-page write-epoch tracking in every current and future address
  // space (the simulated soft-dirty bit; see src/mmu/write_epoch.h). Idempotent;
  // called by engines constructed with FusionConfig::delta_scan. Off by default
  // so non-delta runs pay a single dead branch per PTE write.
  void EnableWriteEpochs();
  [[nodiscard]] bool write_epochs_enabled() const { return write_epochs_enabled_; }

  // --- Timed memory access path (used by Process) ---

  struct AccessResult {
    SimTime latency = 0;
    std::uint64_t value = 0;
    std::size_t faults = 0;
  };

  AccessResult Access(Process& process, VirtAddr vaddr, AccessType type,
                      std::uint64_t write_value);
  void Prefetch(Process& process, VirtAddr vaddr);
  void FlushCacheLine(Process& process, VirtAddr vaddr);

  // Unmaps vpn and releases the backing frame (consulting the sharing policy for
  // managed pages). Untimed; used by setup paths and the page cache eviction.
  void UnmapAndFree(Process& process, Vpn vpn);

  // Evicts every cached line of the frame from all cache levels (done whenever a
  // frame changes owner or is freed).
  void FlushFrame(FrameId frame);

  // --- Stats ---

  [[nodiscard]] std::uint64_t total_faults() const { return total_faults_; }
  [[nodiscard]] std::uint64_t CountHugeMappings() const;

  // --- Telemetry (host-side observation; never touches simulated state) ---

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  // Harvests every pull-side component counter (caches, DRAM, allocators,
  // khugepaged, trace) into the registry and returns a snapshot. Push-side
  // metrics (the fault path) are always current.
  MetricsSnapshot CollectMetrics();

  // Host-memory footprint of this Machine's dominant per-instance structures
  // (for fleet-scale frugality reporting; host-side observation only). The
  // fixed components (frame table, caches, trace ring) are lazily allocated, so
  // an idle booted Machine's footprint is mostly its materialized page content.
  struct Footprint {
    std::size_t frame_table_bytes = 0;   // Frame metadata array
    std::size_t materialized_bytes = 0;  // committed page-content buffers
    std::size_t cache_bytes = 0;         // LLC + L1 line arrays and counters
    std::size_t trace_bytes = 0;         // trace ring (zero unless tracing)
    [[nodiscard]] std::size_t total_bytes() const {
      return frame_table_bytes + materialized_bytes + cache_bytes + trace_bytes;
    }
  };
  [[nodiscard]] Footprint MeasureFootprint() const;

  // --- Savestates (DESIGN.md §13) ---
  //
  // Serializes every piece of deterministic machine state (clock, RNG streams,
  // frames, allocators, caches, DRAM counters, page tables, TLBs, trace ring,
  // metrics, chaos schedule, khugepaged) as a run of named snapshot sections.
  // Host-only machinery (worker pools, memos) is never serialized; Restore
  // rebuilds it lazily. Restore must be called on a freshly booted Machine
  // constructed from the snapshot's recorded MachineConfig, with the engine
  // already installed (the orchestrator in src/snapshot/machine_snapshot.h does
  // all of this); it throws snapshot::RestoreError on any corruption, leaving
  // no silent partial state behind.
  void Save(snapshot::SnapshotWriter& w);
  void Restore(snapshot::SnapshotReader& r);

 private:
  friend class Process;

  // kTransient: an allocation failed while free frames remain (injected OOM);
  // the fault is left unresolved so the access path retries it.
  enum class DefaultFaultOutcome { kUnhandled, kDemandZero, kCow, kTransient };

  // Charges fault entry cost and dispatches to the policy, then the default
  // handler. Throws std::runtime_error on an unresolvable fault.
  void HandleFault(Process& process, const PageFault& fault);
  DefaultFaultOutcome HandleFaultDefault(Process& process, const PageFault& fault);
  void ChargedDataAccess(const Pte& pte, PhysAddr paddr);

  MachineConfig config_;
  VirtualClock clock_;
  Rng rng_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<PhysicalMemory> memory_;
  std::unique_ptr<BuddyAllocator> buddy_;
  std::unique_ptr<Llc> llc_;
  std::unique_ptr<Llc> l1_;
  std::unique_ptr<DramMapping> dram_mapping_;
  std::unique_ptr<RowBuffer> row_buffer_;
  std::unique_ptr<RowhammerEngine> rowhammer_;
  std::vector<std::unique_ptr<Process>> processes_;
  SharingPolicy* policy_ = nullptr;
  std::vector<Daemon*> daemons_;
  std::unique_ptr<Khugepaged> khugepaged_;
  std::unique_ptr<host::ThreadPool> host_pool_;
  host::ThreadPool* external_host_pool_ = nullptr;
  std::unique_ptr<FaultInjector> chaos_;
  TraceBuffer trace_;
  std::uint64_t total_faults_ = 0;
  bool in_daemon_ = false;  // prevents daemon re-entry from daemon-issued work
  bool write_epochs_enabled_ = false;

  // Fault-path metric handles, pre-registered in the constructor so the hot path
  // is a pointer deref + enabled check (see src/sim/metrics.h).
  MetricsRegistry metrics_;
  Counter* fault_count_policy_ = nullptr;
  Counter* fault_count_demand_zero_ = nullptr;
  Counter* fault_count_cow_ = nullptr;
  Counter* fault_count_unresolved_ = nullptr;
  Counter* fault_count_transient_ = nullptr;
  Counter* fault_count_spurious_ = nullptr;
  HistogramMetric* fault_latency_policy_ = nullptr;
  HistogramMetric* fault_latency_demand_zero_ = nullptr;
  HistogramMetric* fault_latency_cow_ = nullptr;
};

}  // namespace vusion

#endif  // VUSION_SRC_KERNEL_MACHINE_H_
