# Empty compiler generated dependencies file for bench_fig3_wpf_reuse.
# This may be replaced when dependencies are built.
