// Corrupted-snapshot fuzzing (DESIGN.md §13): every way a snapshot buffer can
// be damaged — truncation at and inside every section, single-bit flips in the
// header and in each payload, future-version headers, dropped sections,
// semantically invalid fields behind a valid checksum — must fail closed with
// a structured RestoreError naming the offending section. No crash, no silent
// partial restore, and the restore target stays untouched.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"
#include "src/snapshot/machine_snapshot.h"

namespace vusion {
namespace {

MachineConfig MakeMachineConfig() {
  MachineConfig config;
  config.frame_count = 1u << 13;
  config.seed = 7;
  return config;
}

// A small but non-trivial image: KSM engine, three processes with duplicate
// pages, enough idle that merges, RNG draws, and stats are all non-zero.
std::string MakeImage() {
  Machine machine(MakeMachineConfig());
  FusionConfig fusion;
  fusion.wake_period = 1 * kMillisecond;
  fusion.pages_per_wake = 128;
  std::unique_ptr<FusionEngine> engine = MakeEngineExact(EngineKind::kKsm, machine, fusion);
  engine->Install();
  for (int p = 0; p < 3; ++p) {
    Process& proc = machine.CreateProcess();
    const VirtAddr base = proc.AllocateRegion(32, PageType::kAnonymous, true, false);
    for (std::uint64_t i = 0; i < 32; ++i) {
      proc.SetupMapPattern(VaddrToVpn(base) + i, 0x5000 + (i % 8));
    }
    proc.Write64(base + 128, 0xDEADBEEF + p);
  }
  machine.Idle(30 * kMillisecond);
  const std::string image = snapshot::SaveSnapshot(machine, engine.get(), EngineKind::kKsm);
  engine->Uninstall();
  return image;
}

std::string FlipBit(std::string buffer, std::size_t byte, int bit) {
  buffer[byte] = static_cast<char>(static_cast<unsigned char>(buffer[byte]) ^ (1u << bit));
  return buffer;
}

void WriteLeU32(std::string& buffer, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer[pos + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

// Patches one payload byte and re-seals the section checksum, so the damage
// reaches the semantic decoder instead of being caught by the CRC.
std::string PatchSealedByte(std::string buffer, const snapshot::SnapshotReader::SectionInfo& s,
                            std::size_t delta, char value) {
  buffer[s.offset + delta] = value;
  WriteLeU32(buffer, s.offset + s.size,
             snapshot::Crc32(buffer.data() + s.offset, s.size));
  return buffer;
}

// Re-seals the header CRC after editing the first 16 header bytes.
std::string SealHeader(std::string buffer) {
  WriteLeU32(buffer, 16, snapshot::Crc32(buffer.data(), 16));
  return buffer;
}

void ExpectRestoreError(const std::string& buffer, const std::string& want_section,
                        const std::string& context) {
  try {
    snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(buffer);
    ADD_FAILURE() << context << ": corrupted snapshot restored without error";
  } catch (const snapshot::RestoreError& e) {
    EXPECT_FALSE(e.section().empty()) << context;
    if (!want_section.empty()) {
      EXPECT_EQ(e.section(), want_section) << context << ": " << e.what();
    }
  } catch (const std::exception& e) {
    ADD_FAILURE() << context << ": wrong exception type: " << e.what();
  }
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { image_ = new std::string(MakeImage()); }
  static void TearDownTestSuite() {
    delete image_;
    image_ = nullptr;
  }
  static const std::string& image() { return *image_; }

 private:
  static std::string* image_;
};

std::string* SnapshotCorruptionTest::image_ = nullptr;

TEST_F(SnapshotCorruptionTest, IntactImageRestores) {
  const snapshot::SnapshotInfo info = snapshot::VerifySnapshot(image());
  EXPECT_EQ(info.kind, EngineKind::kKsm);
  EXPECT_EQ(info.sections.front().name, "config");
  EXPECT_EQ(info.sections.back().name, "engine");
}

TEST_F(SnapshotCorruptionTest, TruncationAtEverySectionBoundaryFailsClosed) {
  const snapshot::SnapshotInfo info = snapshot::InspectSnapshot(image());
  for (const auto& section : info.sections) {
    // Cut at the payload start: the section's own payload is truncated.
    ExpectRestoreError(image().substr(0, section.offset), section.name,
                       "truncate at start of '" + section.name + "'");
    // Cut mid-payload.
    if (section.size > 1) {
      ExpectRestoreError(image().substr(0, section.offset + section.size / 2), section.name,
                         "truncate inside '" + section.name + "'");
    }
    // Cut just before the section checksum.
    ExpectRestoreError(image().substr(0, section.offset + section.size), section.name,
                       "truncate before checksum of '" + section.name + "'");
  }
  // Cutting after a complete section leaves the next frame (or the header's
  // section count) dangling; exact section varies, but it must fail closed.
  for (const auto& section : info.sections) {
    const std::string cut = image().substr(0, section.offset + section.size + 4);
    if (cut.size() < image().size()) {
      ExpectRestoreError(cut, "", "truncate after '" + section.name + "'");
    }
  }
}

TEST_F(SnapshotCorruptionTest, EveryHeaderBitFlipFailsClosed) {
  for (std::size_t byte = 0; byte < snapshot::kHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      ExpectRestoreError(FlipBit(image(), byte, bit), "header",
                         "header bit flip " + std::to_string(byte) + ":" + std::to_string(bit));
    }
  }
}

TEST_F(SnapshotCorruptionTest, PayloadBitFlipsNameTheDamagedSection) {
  const snapshot::SnapshotInfo info = snapshot::InspectSnapshot(image());
  for (const auto& section : info.sections) {
    if (section.size == 0) {
      continue;
    }
    ExpectRestoreError(FlipBit(image(), section.offset + section.size / 2, 3), section.name,
                       "payload flip in '" + section.name + "'");
  }
}

TEST_F(SnapshotCorruptionTest, FutureVersionRejected) {
  std::string buffer = image();
  WriteLeU32(buffer, 8, snapshot::kVersion + 1);  // version field follows the magic
  buffer = SealHeader(buffer);
  try {
    snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(buffer);
    ADD_FAILURE() << "future-version snapshot restored";
  } catch (const snapshot::RestoreError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(SnapshotCorruptionTest, BadMagicRejected) {
  std::string buffer = FlipBit(image(), 0, 0);
  buffer = SealHeader(buffer);  // valid CRC, wrong magic
  ExpectRestoreError(buffer, "header", "bad magic behind valid CRC");
}

TEST_F(SnapshotCorruptionTest, UnknownEngineKindBehindValidChecksumRejected) {
  const snapshot::SnapshotInfo info = snapshot::InspectSnapshot(image());
  const auto& config = info.sections.front();
  ASSERT_EQ(config.name, "config");
  // The engine-kind byte sits just before the 89-byte FusionConfig record at
  // the end of the "config" payload (see WriteFusionConfig: 10 U64/F64 + 9
  // Bool fields as of snapshot v2).
  const std::size_t kind_delta = config.size - 89 - 1;
  const std::string buffer =
      PatchSealedByte(image(), config, kind_delta, static_cast<char>(0xC8));
  ExpectRestoreError(buffer, "config", "unknown engine kind behind valid CRC");
}

TEST_F(SnapshotCorruptionTest, DroppedTrailingSectionRejected) {
  const snapshot::SnapshotInfo info = snapshot::InspectSnapshot(image());
  const auto& last = info.sections.back();
  const auto& prev = info.sections[info.sections.size() - 2];
  // Frame start of the last section = end of the previous section's CRC.
  (void)last;
  std::string buffer = image().substr(0, prev.offset + prev.size + 4);
  WriteLeU32(buffer, 12, static_cast<std::uint32_t>(info.sections.size() - 1));
  buffer = SealHeader(buffer);
  ExpectRestoreError(buffer, "config", "dropped engine section");
}

TEST_F(SnapshotCorruptionTest, EmptyAndGarbageBuffersRejected) {
  ExpectRestoreError("", "header", "empty buffer");
  ExpectRestoreError("short", "header", "short buffer");
  std::string garbage(4096, '\0');
  Rng rng(3);
  for (char& c : garbage) {
    c = static_cast<char>(rng.Next() & 0xFF);
  }
  ExpectRestoreError(garbage, "header", "garbage buffer");
}

TEST_F(SnapshotCorruptionTest, RestoreOntoUsedMachineRefused) {
  snapshot::SnapshotReader r(image());
  r.OpenSection("config");
  std::vector<char> skip(r.sections().front().size);
  r.Bytes(skip.data(), skip.size());
  r.EndSection();

  Machine machine(MakeMachineConfig());
  machine.CreateProcess();
  try {
    machine.Restore(r);
    ADD_FAILURE() << "restore onto a machine with processes succeeded";
  } catch (const snapshot::RestoreError& e) {
    EXPECT_EQ(e.section(), "machine");
    EXPECT_NE(std::string(e.what()).find("already has processes"), std::string::npos);
  }
  // The precondition check fired before any mutation: the machine still works.
  Process& proc = *machine.processes().front();
  const VirtAddr base = proc.AllocateRegion(1, PageType::kAnonymous, true, false);
  proc.Write64(base, 42);
  EXPECT_EQ(proc.Read64(base), 42u);
}

TEST_F(SnapshotCorruptionTest, IntactImageStillRestoresAfterAllFailures) {
  snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(image());
  ASSERT_NE(restored.machine, nullptr);
  ASSERT_NE(restored.engine, nullptr);
  EXPECT_EQ(restored.kind, EngineKind::kKsm);
  // And the restored pair is live: keep running on it.
  restored.machine->Idle(5 * kMillisecond);
}

}  // namespace
}  // namespace vusion
