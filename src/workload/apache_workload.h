// Apache httpd prefork model (paper Tables 5, Figures 9 and 12): a pool of worker
// processes that grows under load (the paper's "self-balancing strategy" behind the
// memory growth in Figure 12), serving files through the guest page cache under a
// wrk-style closed-loop load.

#ifndef VUSION_SRC_WORKLOAD_APACHE_WORKLOAD_H_
#define VUSION_SRC_WORKLOAD_APACHE_WORKLOAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/kernel/page_cache.h"
#include "src/sim/rng.h"

namespace vusion {

struct ApacheResult {
  double kreq_per_s = 0.0;
  double lat_p75_ms = 0.0;
  double lat_p90_ms = 0.0;
  double lat_p99_ms = 0.0;
  std::uint64_t requests = 0;
};

class ApacheWorkload {
 public:
  struct Config {
    std::size_t initial_workers = 4;
    std::size_t max_workers = 40;
    SimTime worker_spawn_interval = 15 * kSecond;  // pool growth under load
    std::size_t worker_pages = 200;                // per-worker anon memory
    double worker_shared_frac = 0.85;              // identical across workers
    std::size_t files = 400;
    std::size_t file_pages = 3;
    std::size_t page_cache_capacity = 2048;
    std::size_t concurrency = 20;                  // wrk connections
    SimTime base_service = 500 * kMicrosecond;     // CPU + network per request
    std::size_t worker_touch_pages = 6;            // hot pages touched per request
  };

  ApacheWorkload(Process& server, const Config& config, std::uint64_t seed);

  // Serves requests until `duration` simulated time has passed. `sample`, if set,
  // is invoked roughly every sample_interval of simulated time (for the Fig 9/12
  // time series).
  ApacheResult Run(SimTime duration, SimTime sample_interval = 0,
                   const std::function<void()>& sample = {});

  [[nodiscard]] std::size_t workers() const { return worker_regions_.size(); }

 private:
  void SpawnWorker();
  SimTime ServeRequest();

  Process* server_;
  Config config_;
  Rng rng_;
  std::unique_ptr<PageCache> cache_;
  std::vector<VirtAddr> worker_regions_;
  std::size_t next_worker_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_APACHE_WORKLOAD_H_
