// Constructs fusion engines by kind; shared by attacks, benches, and examples.

#ifndef VUSION_SRC_FUSION_ENGINE_FACTORY_H_
#define VUSION_SRC_FUSION_ENGINE_FACTORY_H_

#include <memory>
#include <utility>

#include "src/fusion/fusion_engine.h"

namespace vusion {

enum class EngineKind {
  kNone,        // baseline: no page fusion
  kKsm,         // Linux KSM
  kKsmCoA,      // KSM variant unmerging on any access (paper Fig. 4)
  kKsmZeroOnly, // KSM merging only zero pages (paper Fig. 4)
  kWpf,         // Windows Page Fusion
  kVUsion,      // VUsion
  kVUsionThp,   // VUsion with THP enhancements
  kMemoryCombining,  // Windows Memory Combining (swap-cache-only dedup, §10.1)
};

const char* EngineKindName(EngineKind kind);

// Returns nullptr for kNone. The engine is not installed; call Install().
// Applies FusionConfig::ApplyEnvOverrides before construction.
std::unique_ptr<FusionEngine> MakeEngine(EngineKind kind, Machine& machine,
                                         FusionConfig config);

// Snapshot-restore constructor: builds the engine with `config` taken verbatim —
// no environment overrides and no per-kind tweaks, because a recorded config
// already reflects both. Returns nullptr for kNone.
std::unique_ptr<FusionEngine> MakeEngineExact(EngineKind kind, Machine& machine,
                                              const FusionConfig& config);

// RAII engine lifetime: MakeEngine + Install() on construction, Uninstall() on
// destruction. kNone yields a null engine and installs nothing, so baseline
// ("no dedup") rows need no special casing at call sites.
class ScopedEngine {
 public:
  ScopedEngine(EngineKind kind, Machine& machine, FusionConfig config)
      : engine_(MakeEngine(kind, machine, std::move(config))) {
    if (engine_ != nullptr) {
      engine_->Install();
    }
  }
  ~ScopedEngine() {
    if (engine_ != nullptr) {
      engine_->Uninstall();
    }
  }

  ScopedEngine(const ScopedEngine&) = delete;
  ScopedEngine& operator=(const ScopedEngine&) = delete;
  ScopedEngine(ScopedEngine&&) noexcept = default;
  ScopedEngine& operator=(ScopedEngine&&) = delete;

  [[nodiscard]] FusionEngine* get() const { return engine_.get(); }
  [[nodiscard]] FusionEngine* operator->() const { return engine_.get(); }
  [[nodiscard]] FusionEngine& operator*() const { return *engine_; }
  explicit operator bool() const { return engine_ != nullptr; }

 private:
  std::unique_ptr<FusionEngine> engine_;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_ENGINE_FACTORY_H_
