
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/dram_mapping.cc" "src/CMakeFiles/vusion_dram.dir/dram/dram_mapping.cc.o" "gcc" "src/CMakeFiles/vusion_dram.dir/dram/dram_mapping.cc.o.d"
  "/root/repo/src/dram/row_buffer.cc" "src/CMakeFiles/vusion_dram.dir/dram/row_buffer.cc.o" "gcc" "src/CMakeFiles/vusion_dram.dir/dram/row_buffer.cc.o.d"
  "/root/repo/src/dram/rowhammer.cc" "src/CMakeFiles/vusion_dram.dir/dram/rowhammer.cc.o" "gcc" "src/CMakeFiles/vusion_dram.dir/dram/rowhammer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vusion_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_phys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
