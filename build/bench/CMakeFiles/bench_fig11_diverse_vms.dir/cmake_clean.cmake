file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_diverse_vms.dir/bench_fig11_diverse_vms.cc.o"
  "CMakeFiles/bench_fig11_diverse_vms.dir/bench_fig11_diverse_vms.cc.o.d"
  "bench_fig11_diverse_vms"
  "bench_fig11_diverse_vms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_diverse_vms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
