// Shared configuration for the evaluation benches.
//
// Scaling relative to the paper's testbed (documented in EXPERIMENTS.md): guests are
// scaled from 2 GB to 8 MB (1:256) and so is host memory (24 GB -> 128/256 MB); the
// scanner keeps the paper's default rate (N=100 pages per T=20 ms wake-up), so
// fusion converges in tens of simulated seconds instead of tens of minutes, and the
// inter-VM boot stagger shrinks from 5 minutes to 20 seconds. Every bench prints
// the same rows/series as the corresponding paper table or figure.

#ifndef VUSION_BENCH_BENCH_COMMON_H_
#define VUSION_BENCH_BENCH_COMMON_H_

#include <array>
#include <cstdio>
#include <string>

#include "bench/reporter.h"
#include "src/workload/scenario.h"

namespace vusion {

inline ScenarioConfig EvalScenario(EngineKind kind) {
  ScenarioConfig config;
  config.machine.frame_count = 1u << 16;  // 256 MB host
  config.fusion.wake_period = 20 * kMillisecond;  // paper defaults: T=20ms,
  config.fusion.pages_per_wake = 100;             // N=100 (5000 pages/s)
  config.fusion.pool_frames = 4096;               // scaled 128 MB pool
  config.fusion.wpf_period = 30 * kSecond;        // paper: 15 min, scaled
  config.engine = kind;
  if (kind == EngineKind::kVUsionThp) {
    config.enable_khugepaged = true;
    config.khugepaged.period = 2 * kSecond;
    config.khugepaged.ranges_per_wake = 16;
  }
  return config;
}

inline VmImageSpec EvalImage() {
  VmImageSpec spec;
  spec.total_pages = 2048;  // 8 MB guests (2 GB in the paper, 1:256)
  return spec;
}

// The four systems compared throughout the paper's evaluation.
inline const std::array<EngineKind, 4>& EvalEngines() {
  static const std::array<EngineKind, 4> kEngines = {
      EngineKind::kNone, EngineKind::kKsm, EngineKind::kVUsion, EngineKind::kVUsionThp};
  return kEngines;
}

// Config description every scenario bench attaches to its JSON artifact: the
// shared evaluation scenario (under a representative engine) plus the guest image.
inline void DescribeEval(bench::Reporter& reporter, EngineKind kind) {
  reporter.SetConfig("scenario", Describe(EvalScenario(kind)));
  reporter.SetConfig("image", Describe(EvalImage()));
}

}  // namespace vusion

#endif  // VUSION_BENCH_BENCH_COMMON_H_
