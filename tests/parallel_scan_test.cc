// ParallelScanPipeline unit tests for the decoupled streaming shape
// (DESIGN.md §14), at the pipeline level so conflicts can be forced exactly:
// the merge callback mutates the frame of a later, not-yet-consumed item, and
// the speculative hash for that item must be detected as stale and dropped —
// with the observable hash sequence bit-identical to the serial reference.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/host/parallel_scan.h"
#include "src/host/thread_pool.h"
#include "src/phys/physical_memory.h"

namespace vusion::host {
namespace {

constexpr std::size_t kFrames = 64;

// Items preset to frames [0, kFrames) (the WPF shape: no PTE resolution).
std::vector<ScanItem> MakeItems() {
  std::vector<ScanItem> items(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i) {
    items[i].index = i;
    items[i].frame = static_cast<FrameId>(i);
  }
  return items;
}

struct PipelineRun {
  // What an engine body observes: the content hash of each item's frame at its
  // canonical merge slot. Must be bit-identical across every pipeline shape.
  std::vector<std::uint64_t> hashes;
  ScanTiming timing;
};

// Runs the pipeline over fresh pattern-filled memory. When `conflict` is set,
// merging item 0 rewrites the LAST item's frame — hashed speculatively long
// before its merge slot under small chunks — so the stream must detect the
// stale snapshot and recompute.
PipelineRun RunPipeline(ThreadPool* pool, bool streaming, std::size_t chunk_pages,
                        bool conflict) {
  PhysicalMemory memory(kFrames);
  for (std::size_t f = 0; f < kFrames; ++f) {
    memory.FillPattern(static_cast<FrameId>(f), 0x9000 + f);
  }
  ParallelScanPipeline pipeline(memory, pool);
  pipeline.ConfigureStreaming(streaming, chunk_pages);
  std::vector<ScanItem> items = MakeItems();
  PipelineRun run;
  const auto merge_one = [&](ScanItem& item) {
    if (conflict && item.index == 0) {
      memory.WriteU64(items.back().frame, 64, 0xfeedface);
    }
    run.hashes.push_back(memory.HashContent(item.frame));
  };
  pipeline.Run(items, run.timing, nullptr, merge_one);
  return run;
}

TEST(ParallelScanPipelineTest, ForcedConflictDetectedAndResultsBitIdentical) {
  // Serial reference: no pool, barrier shape, nothing speculative.
  const PipelineRun reference =
      RunPipeline(nullptr, /*streaming=*/false, 0, /*conflict=*/true);
  ASSERT_EQ(reference.hashes.size(), kFrames);

  ThreadPool pool(4);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{16}}) {
    const PipelineRun streamed = RunPipeline(&pool, true, chunk, true);
    EXPECT_EQ(streamed.hashes, reference.hashes) << "chunk=" << chunk;
    EXPECT_EQ(streamed.timing.streamed_batches, 1u) << "chunk=" << chunk;
    // The mutated frame's speculative snapshot is stale no matter when the
    // worker hashed it: taken before the merge write, its live generation
    // moved on (PrimeHash refuses); taken after, its generation no longer
    // matches the recorded pre-merge generation (the determinism fence).
    EXPECT_GE(streamed.timing.speculative_stale, 1u) << "chunk=" << chunk;
    EXPECT_EQ(streamed.timing.speculative_hashes, static_cast<std::uint64_t>(kFrames))
        << "chunk=" << chunk;
  }
}

TEST(ParallelScanPipelineTest, QuietStreamHasNoStaleSnapshots) {
  ThreadPool pool(4);
  const PipelineRun reference = RunPipeline(nullptr, false, 0, /*conflict=*/false);
  const PipelineRun streamed = RunPipeline(&pool, true, 4, /*conflict=*/false);
  EXPECT_EQ(streamed.hashes, reference.hashes);
  EXPECT_EQ(streamed.timing.speculative_stale, 0u);
  EXPECT_EQ(streamed.timing.speculative_hashes, static_cast<std::uint64_t>(kFrames));
}

TEST(ParallelScanPipelineTest, BetweenPhasesHookForcesBarrierShape) {
  // The kHashed phase boundary only exists in the barrier shape, so arming a
  // between-phases hook must suppress streaming even when it is enabled.
  ThreadPool pool(4);
  PhysicalMemory memory(kFrames);
  for (std::size_t f = 0; f < kFrames; ++f) {
    memory.FillPattern(static_cast<FrameId>(f), 0x9000 + f);
  }
  ParallelScanPipeline pipeline(memory, &pool);
  pipeline.ConfigureStreaming(true, 1);
  std::vector<ScanItem> items = MakeItems();
  ScanTiming timing;
  int boundary_calls = 0;
  std::size_t merged = 0;
  pipeline.Run(
      items, timing, nullptr, [&](ScanItem&) { ++merged; },
      [&] { ++boundary_calls; });
  EXPECT_EQ(boundary_calls, 1);
  EXPECT_EQ(merged, kFrames);
  EXPECT_EQ(timing.streamed_batches, 0u);
}

TEST(ParallelScanPipelineTest, SingleThreadPoolStreamsViaConsumerHelp) {
  // scan_threads=1 still streams when an external (fleet) pool is installed;
  // with no free workers the consumer self-completes via HelpStream.
  ThreadPool pool(1);
  const PipelineRun reference = RunPipeline(nullptr, false, 0, true);
  const PipelineRun streamed = RunPipeline(&pool, true, 8, true);
  EXPECT_EQ(streamed.hashes, reference.hashes);
  EXPECT_EQ(streamed.timing.streamed_batches, 1u);
  EXPECT_GE(streamed.timing.speculative_stale, 1u);
}

}  // namespace
}  // namespace vusion::host
