# Empty dependencies file for vusion_dram.
# This may be replaced when dependencies are built.
