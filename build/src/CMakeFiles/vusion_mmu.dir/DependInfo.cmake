
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mmu/address_space.cc" "src/CMakeFiles/vusion_mmu.dir/mmu/address_space.cc.o" "gcc" "src/CMakeFiles/vusion_mmu.dir/mmu/address_space.cc.o.d"
  "/root/repo/src/mmu/page_table.cc" "src/CMakeFiles/vusion_mmu.dir/mmu/page_table.cc.o" "gcc" "src/CMakeFiles/vusion_mmu.dir/mmu/page_table.cc.o.d"
  "/root/repo/src/mmu/tlb.cc" "src/CMakeFiles/vusion_mmu.dir/mmu/tlb.cc.o" "gcc" "src/CMakeFiles/vusion_mmu.dir/mmu/tlb.cc.o.d"
  "/root/repo/src/mmu/vma.cc" "src/CMakeFiles/vusion_mmu.dir/mmu/vma.cc.o" "gcc" "src/CMakeFiles/vusion_mmu.dir/mmu/vma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vusion_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
