# Empty dependencies file for memory_combining_test.
# This may be replaced when dependencies are built.
