# Empty dependencies file for oom_test.
# This may be replaced when dependencies are built.
