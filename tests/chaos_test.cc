// Chaos harness contract tests: (1) enabling chaos with all-zero rates is
// bit-identical to never enabling it (the injection gate really is free);
// (2) a fixed known-good seed per engine holds every invariant — the anchor
// the CI chaos-smoke job extends to whole seed ranges; (3) a probabilistic
// campaign replays byte-for-byte from its recorded fault schedule; (4) the
// auditor actually fails when machine state is damaged deliberately.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chaos/fuzz_campaign.h"
#include "src/chaos/invariant_auditor.h"
#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

struct ProbeResult {
  SimTime final_time = 0;
  std::uint64_t frames_saved = 0;
  std::uint64_t allocated = 0;
  std::vector<TraceEvent> events;
};

// A fusion-heavy workload with every simulated source of nondeterminism in
// play: randomized pool draws, scan wake-ups, demand faults, prefetch.
ProbeResult RunProbe(bool enable_chaos) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 13;
  machine_config.seed = 21;
  Machine machine(machine_config);
  machine.trace().set_enabled(true);
  if (enable_chaos) {
    ChaosConfig chaos;
    chaos.seed = 99;  // rates all zero: every site disabled
    machine.EnableChaos(chaos);
  }
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 128;
  fusion_config.pool_frames = 256;
  auto engine = MakeEngine(EngineKind::kVUsion, machine, fusion_config);
  engine->Install();

  constexpr std::size_t kPages = 256;
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr base_a = a.AllocateRegion(kPages, PageType::kAnonymous, true, true);
  const VirtAddr base_b = b.AllocateRegion(kPages, PageType::kAnonymous, true, true);
  for (std::size_t i = 0; i < kPages; ++i) {
    a.SetupMapPattern(VaddrToVpn(base_a) + i, 0x7000 + (i % 24));
    b.SetupMapPattern(VaddrToVpn(base_b) + i, 0x7000 + (i % 24));
  }
  Rng rng(17);
  for (int step = 0; step < 300; ++step) {
    const std::size_t page = rng.NextBelow(kPages);
    Process& proc = rng.NextBool(0.5) ? a : b;
    const VirtAddr addr = ((&proc == &a) ? base_a : base_b) + page * kPageSize;
    switch (rng.NextBelow(4)) {
      case 0:
        proc.Write64(addr, step);
        break;
      case 1:
        proc.Read64(addr);
        break;
      case 2:
        machine.Idle(rng.NextInRange(1, 3) * kMillisecond);
        break;
      default:
        proc.Prefetch(addr);
        break;
    }
  }
  machine.Idle(20 * kMillisecond);

  ProbeResult result;
  result.final_time = machine.clock().now();
  result.frames_saved = engine->frames_saved();
  result.allocated = machine.memory().allocated_count();
  result.events = machine.trace().Events();
  engine->Uninstall();
  return result;
}

TEST(ChaosParityTest, ChaosOffAndZeroRateChaosAreBitIdentical) {
  const ProbeResult off = RunProbe(false);
  const ProbeResult zero = RunProbe(true);
  EXPECT_EQ(off.final_time, zero.final_time);
  EXPECT_EQ(off.frames_saved, zero.frames_saved);
  EXPECT_EQ(off.allocated, zero.allocated);
  ASSERT_EQ(off.events.size(), zero.events.size());
  for (std::size_t i = 0; i < off.events.size(); ++i) {
    EXPECT_EQ(off.events[i].time, zero.events[i].time) << "event " << i;
    EXPECT_EQ(off.events[i].type, zero.events[i].type) << "event " << i;
    EXPECT_EQ(off.events[i].process_id, zero.events[i].process_id) << "event " << i;
    EXPECT_EQ(off.events[i].vpn, zero.events[i].vpn) << "event " << i;
    EXPECT_EQ(off.events[i].frame, zero.events[i].frame) << "event " << i;
  }
}

class ChaosCampaignTest : public ::testing::TestWithParam<EngineKind> {};

// The fixed known-good seed the regular suite pins: a short fault-injected
// campaign on each engine must hold every invariant.
TEST_P(ChaosCampaignTest, KnownGoodSeedHoldsAllInvariants) {
  CampaignOptions options;
  options.engine = GetParam();
  options.seed = 1;
  options.steps = 250;
  options.audit_epoch = 8;
  options.shrink = false;
  const CampaignResult result = FuzzCampaign(options).Run();
  for (const std::string& violation : result.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(result.ok) << result.repro;
  EXPECT_GT(result.audits, 0u);
  EXPECT_GT(result.checks, 0u);
}

std::string CampaignName(const ::testing::TestParamInfo<EngineKind>& info) {
  std::string name = EngineKindName(info.param);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Engines, ChaosCampaignTest,
                         ::testing::Values(EngineKind::kKsm, EngineKind::kWpf,
                                           EngineKind::kVUsion),
                         CampaignName);

TEST(ChaosReplayTest, RecordedScheduleReplaysByteForByte) {
  CampaignOptions options;
  options.engine = EngineKind::kVUsion;
  options.seed = 7;
  options.steps = 250;
  options.fault_rate = 0.05;
  options.audit_epoch = 8;
  options.shrink = false;
  const CampaignResult first = FuzzCampaign(options).Run();
  ASSERT_TRUE(first.ok) << (first.violations.empty() ? "" : first.violations.front());
  ASSERT_GT(first.faults_injected, 0u) << "rate too low to exercise replay";

  // Replaying the recorded (site, visit) schedule through an explicit-mode
  // injector must fire the identical faults and audit the identical state.
  CampaignOptions replay = options;
  replay.use_schedule = true;
  replay.schedule = first.schedule;
  const CampaignResult second = FuzzCampaign(replay).Run();
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(second.schedule, first.schedule);
  EXPECT_EQ(second.faults_injected, first.faults_injected);
  EXPECT_EQ(second.audits, first.audits);
  EXPECT_EQ(second.checks, first.checks);
  EXPECT_EQ(second.tolerated_throws, first.tolerated_throws);
}

TEST(ChaosAuditorTest, DetectsDeliberateRefcountCorruption) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 10;
  Machine machine(machine_config);
  Process& process = machine.CreateProcess();
  const VirtAddr base = process.AllocateRegion(4, PageType::kAnonymous, true, false);
  for (std::size_t i = 0; i < 4; ++i) {
    process.SetupMapPattern(VaddrToVpn(base) + i, 0x100 + i);
  }
  InvariantAuditor auditor(machine);
  EXPECT_TRUE(auditor.Audit(nullptr).ok);

  FrameId victim = kInvalidFrame;
  process.address_space().page_table().ForEachEntry(
      0, Vpn{1} << 36, [&](Vpn, Pte& pte) {
        if (victim == kInvalidFrame && pte.frame != kInvalidFrame) {
          victim = pte.frame;
        }
      });
  ASSERT_NE(victim, kInvalidFrame);

  machine.memory().SetRefcount(victim, 7);  // claims 7 sharers; 1 mapping exists
  const AuditReport report = auditor.Audit(nullptr);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.violations.empty());

  machine.memory().SetRefcount(victim, 0);
  EXPECT_TRUE(auditor.Audit(nullptr).ok);
}

}  // namespace
}  // namespace vusion
