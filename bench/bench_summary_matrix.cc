// Executive summary: the security / capacity / performance triangle across every
// fusion design in the repository, on one screen. This is the paper's overall
// thesis in one table - VUsion keeps (almost) all of KSM's savings, costs a few
// percent, and is the only *active* fusion design that is safe.

#include <cstdio>

#include "src/attack/cow_side_channel.h"
#include "src/attack/flip_feng_shui.h"
#include "src/workload/kv_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

struct SummaryRow {
  double saved_mb = 0.0;       // 4 same-image idle VMs
  double throughput = 0.0;     // memcached kreq/s alongside the fusion load
  bool disclosure_safe = false;
  bool ffs_safe = false;
};

SummaryRow Measure(EngineKind kind) {
  SummaryRow row;
  {
    ScenarioConfig config = EvalScenario(kind);
    config.fusion.mc_low_watermark = config.machine.frame_count / 2;
    Scenario scenario(config);
    for (int i = 0; i < 4; ++i) {
      scenario.BootVm(EvalImage(), 50 + i);
    }
    Process& server = scenario.machine().CreateProcess();
    KvWorkload::Config kv_config = KvWorkload::MemcachedConfig();
    kv_config.ops = 20000;
    KvWorkload workload(server, kv_config, 9);
    scenario.RunFor(120 * kSecond);
    row.saved_mb = scenario.engine() != nullptr
                       ? static_cast<double>(scenario.engine()->frames_saved()) * kPageSize /
                             (1024.0 * 1024.0)
                       : 0.0;
    row.throughput = workload.Run().kreq_per_s;
  }
  row.disclosure_safe = !CowSideChannel::Run(kind, 1).success;
  row.ffs_safe = !FlipFengShui::Run(kind, 1).success;
  return row;
}

void Run() {
  bench::Reporter reporter("summary_matrix");
  reporter.Header("Summary: security / capacity / performance across fusion designs");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::printf("%-14s %-12s %-16s %-14s %-12s\n", "system", "saved MB", "memcached kreq/s",
              "disclosure", "Flip F.S.");
  const EngineKind kinds[] = {EngineKind::kNone,   EngineKind::kKsm,
                              EngineKind::kWpf,    EngineKind::kMemoryCombining,
                              EngineKind::kVUsion, EngineKind::kVUsionThp};
  for (const EngineKind kind : kinds) {
    const SummaryRow row = Measure(kind);
    std::printf("%-14s %-12.1f %-16.1f %-14s %-12s\n", EngineKindName(kind), row.saved_mb,
                row.throughput, row.disclosure_safe ? "safe" : "LEAKS",
                row.ffs_safe ? "safe" : "CORRUPTS");
    reporter.AddRow("summary", {{"system", EngineKindName(kind)},
                                {"saved_mb", row.saved_mb},
                                {"memcached_kreq_per_s", row.throughput},
                                {"disclosure_safe", row.disclosure_safe},
                                {"ffs_safe", row.ffs_safe}});
  }
  std::printf("\n(Flip F.S. column = the classic merge-based attack; WPF's 'safe' there\n"
              "falls to the reuse-based variant - see bench_table1_attack_matrix.)\n"
              "the paper's thesis: only VUsion combines active fusion's savings with\n"
              "safety on both axes.\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
