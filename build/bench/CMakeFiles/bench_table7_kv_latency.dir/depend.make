# Empty dependencies file for bench_table7_kv_latency.
# This may be replaced when dependencies are built.
