// Binary buddy allocator over the whole physical frame range, modeling the Linux page
// allocator: power-of-two blocks up to order kMaxBuddyOrder, LIFO per-order free
// lists (which is what makes its reuse "fairly predictable" in the paper's words),
// splitting and buddy coalescing on free, and AllocateSpecific() so other allocators
// (the WPF linear allocator) can claim exact frames out of its inventory.

#ifndef VUSION_SRC_PHYS_BUDDY_ALLOCATOR_H_
#define VUSION_SRC_PHYS_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/phys/frame_allocator.h"
#include "src/phys/physical_memory.h"

namespace vusion {

class FaultInjector;

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

constexpr std::size_t kMaxBuddyOrder = 10;  // up to 4 MB blocks, like Linux MAX_ORDER

class BuddyAllocator final : public FrameAllocator {
 public:
  // Manages frames [0, memory.frame_count()). All frames start free.
  explicit BuddyAllocator(PhysicalMemory& memory);

  // Savestates: free-list order matters (LIFO reuse is the predictability the
  // paper attacks), so lists are serialized verbatim, per order.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  // Optional chaos hook: when set, AllocateOrder may fail transiently even with
  // free memory (simulated OOM). Null disables injection entirely.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  FrameId Allocate() override;
  void Free(FrameId frame) override;
  [[nodiscard]] std::size_t free_count() const override { return free_frames_; }

  // Allocates a naturally-aligned block of 2^order frames; kInvalidFrame on failure.
  FrameId AllocateOrder(std::size_t order);

  // Frees a block previously returned by AllocateOrder.
  void FreeOrder(FrameId start, std::size_t order);

  // Claims a specific free frame (splitting whatever free block contains it).
  // Returns false if the frame is not currently free.
  bool AllocateSpecific(FrameId frame);

  [[nodiscard]] bool IsFree(FrameId frame) const;

  // Validates internal consistency (free list vs. per-frame order map); for tests.
  [[nodiscard]] bool ValidateInvariants() const;

  // Lifetime operation counts (telemetry). Splits/coalesces count individual
  // block split/merge steps, not allocations.
  [[nodiscard]] std::uint64_t alloc_count() const { return alloc_count_; }
  [[nodiscard]] std::uint64_t free_op_count() const { return free_op_count_; }
  [[nodiscard]] std::uint64_t split_count() const { return split_count_; }
  [[nodiscard]] std::uint64_t coalesce_count() const { return coalesce_count_; }
  [[nodiscard]] std::uint64_t failed_alloc_count() const { return failed_alloc_count_; }

 private:
  static constexpr std::uint8_t kNotFreeHead = 0xff;

  void PushBlock(FrameId start, std::size_t order);
  void RemoveBlock(FrameId start, std::size_t order);
  // Finds the free block containing `frame`; returns order or kNotFreeHead.
  [[nodiscard]] std::uint8_t FindContainingBlock(FrameId frame, FrameId& start) const;
  void MarkRangeAllocated(FrameId start, std::size_t order);
  void MarkRangeFree(FrameId start, std::size_t order);

  PhysicalMemory* memory_;
  FaultInjector* injector_ = nullptr;
  std::vector<std::vector<FrameId>> free_lists_;  // per order, LIFO
  // For each frame: if it heads a free block, that block's order; else kNotFreeHead.
  std::vector<std::uint8_t> head_order_;
  std::size_t free_frames_ = 0;
  std::uint64_t alloc_count_ = 0;
  std::uint64_t free_op_count_ = 0;
  std::uint64_t split_count_ = 0;
  std::uint64_t coalesce_count_ = 0;
  std::uint64_t failed_alloc_count_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_PHYS_BUDDY_ALLOCATOR_H_
