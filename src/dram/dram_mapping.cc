#include "src/dram/dram_mapping.h"

namespace vusion {

DramLocation DramMapping::Locate(PhysAddr paddr) const {
  DramLocation loc;
  loc.column = paddr % config_.row_bytes;
  const PhysAddr row_global = paddr / config_.row_bytes;
  loc.bank = static_cast<std::size_t>(row_global % config_.banks);
  loc.row = row_global / config_.banks;
  return loc;
}

PhysAddr DramMapping::RowBase(std::size_t bank, std::uint64_t row) const {
  return (row * config_.banks + bank) * config_.row_bytes;
}

}  // namespace vusion
