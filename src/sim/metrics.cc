#include "src/sim/metrics.h"

#include <algorithm>
#include <cstdio>

namespace vusion {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::vector<double> LatencyBucketsNs() {
  // 100ns .. ~100ms, x4 per bucket: covers a single cache hit through a full
  // CoW copy with TLB shootdowns, in 11 buckets.
  std::vector<double> bounds;
  for (double b = 100.0; b <= 110.0e6; b *= 4.0) {
    bounds.push_back(b);
  }
  return bounds;
}

std::string MetricsSnapshot::Entry::Key() const {
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i != 0) {
        key += ',';
      }
      key += labels[i].first;
      key += '=';
      key += labels[i].second;
    }
    key += '}';
  }
  return key;
}

MetricsSnapshot MetricsSnapshot::Since(const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  delta.entries.reserve(entries.size());
  for (const Entry& after : entries) {
    const Entry* before = base.Find(after.name, after.labels);
    Entry e = after;
    if (before != nullptr && before->kind == after.kind) {
      switch (after.kind) {
        case MetricKind::kCounter:
          e.count = after.count >= before->count ? after.count - before->count : 0;
          break;
        case MetricKind::kGauge:
          break;  // gauges keep the later value
        case MetricKind::kHistogram:
          e.count = after.count >= before->count ? after.count - before->count : 0;
          e.value = after.value - before->value;  // sum delta
          for (std::size_t i = 0; i < e.buckets.size() && i < before->buckets.size(); ++i) {
            e.buckets[i] = after.buckets[i] >= before->buckets[i]
                               ? after.buckets[i] - before->buckets[i]
                               : 0;
          }
          // min/max keep the later (cumulative) value: not recoverable per-phase.
          break;
      }
    }
    delta.entries.push_back(std::move(e));
  }
  return delta;
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(const std::string& name,
                                                    const MetricLabels& labels) const {
  for (const Entry& e : entries) {
    if (e.name == name && e.labels == labels) {
      return &e;
    }
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name,
                                            const MetricLabels& labels) const {
  const Entry* e = Find(name, labels);
  return e != nullptr ? e->count : 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name, const MetricLabels& labels) const {
  const Entry* e = Find(name, labels);
  return e != nullptr ? e->value : 0.0;
}

Json MetricsSnapshot::ToJson() const {
  Json out = Json::Array();
  for (const Entry& e : entries) {
    Json j = Json::Object();
    j.Set("name", e.name);
    if (!e.labels.empty()) {
      Json labels = Json::Object();
      for (const auto& [k, v] : e.labels) {
        labels.Set(k, v);
      }
      j.Set("labels", std::move(labels));
    }
    j.Set("kind", MetricKindName(e.kind));
    switch (e.kind) {
      case MetricKind::kCounter:
        j.Set("value", e.count);
        break;
      case MetricKind::kGauge:
        j.Set("value", e.value);
        break;
      case MetricKind::kHistogram: {
        j.Set("count", e.count);
        j.Set("sum", e.value);
        if (e.count > 0) {
          j.Set("min", e.min);
          j.Set("max", e.max);
        }
        Json bounds = Json::Array();
        for (const double b : e.bounds) {
          bounds.Push(b);
        }
        j.Set("bounds", std::move(bounds));
        Json buckets = Json::Array();
        for (const std::uint64_t c : e.buckets) {
          buckets.Push(c);
        }
        j.Set("buckets", std::move(buckets));
        break;
      }
    }
    out.Push(std::move(j));
  }
  return out;
}

std::string MetricsSnapshot::RenderTable() const {
  std::size_t width = 0;
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(entries.size());
  for (const Entry& e : entries) {
    char buf[128];
    std::string value;
    switch (e.kind) {
      case MetricKind::kCounter:
        if (e.count == 0) {
          continue;
        }
        std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(e.count));
        value = buf;
        break;
      case MetricKind::kGauge:
        if (e.value == 0.0) {
          continue;
        }
        std::snprintf(buf, sizeof(buf), "%.6g", e.value);
        value = buf;
        break;
      case MetricKind::kHistogram:
        if (e.count == 0) {
          continue;
        }
        std::snprintf(buf, sizeof(buf), "count=%llu mean=%.6g min=%.6g max=%.6g",
                      static_cast<unsigned long long>(e.count),
                      e.value / static_cast<double>(e.count), e.min, e.max);
        value = buf;
        break;
    }
    std::string key = e.Key();
    width = std::max(width, key.size());
    rows.emplace_back(std::move(key), std::move(value));
  }
  std::string out;
  for (const auto& [key, value] : rows) {
    out += key;
    out.append(width - key.size() + 2, ' ');
    out += value;
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::SlotKey(const std::string& name, const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const MetricLabels& labels) {
  const std::string key = SlotKey(name, labels);
  if (const auto it = lookup_.find(key); it != lookup_.end()) {
    return counters_[order_[it->second].index];
  }
  lookup_.emplace(key, order_.size());
  order_.push_back({name, labels, MetricKind::kCounter, counters_.size()});
  counters_.push_back(Counter(&enabled_));
  return counters_.back();
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  const std::string key = SlotKey(name, labels);
  if (const auto it = lookup_.find(key); it != lookup_.end()) {
    return gauges_[order_[it->second].index];
  }
  lookup_.emplace(key, order_.size());
  order_.push_back({name, labels, MetricKind::kGauge, gauges_.size()});
  gauges_.push_back(Gauge(&enabled_));
  return gauges_.back();
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name, const MetricLabels& labels,
                                               std::vector<double> bounds) {
  const std::string key = SlotKey(name, labels);
  if (const auto it = lookup_.find(key); it != lookup_.end()) {
    return histograms_[order_[it->second].index];
  }
  lookup_.emplace(key, order_.size());
  order_.push_back({name, labels, MetricKind::kHistogram, histograms_.size()});
  histograms_.push_back(HistogramMetric(&enabled_, std::move(bounds)));
  return histograms_.back();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(order_.size());
  for (const Slot& slot : order_) {
    MetricsSnapshot::Entry e;
    e.name = slot.name;
    e.labels = slot.labels;
    e.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        e.count = counters_[slot.index].value();
        break;
      case MetricKind::kGauge:
        e.value = gauges_[slot.index].value();
        break;
      case MetricKind::kHistogram: {
        const HistogramMetric& h = histograms_[slot.index];
        e.count = h.count();
        e.value = h.sum();
        e.min = h.min();
        e.max = h.max();
        e.bounds = h.bounds();
        e.buckets = h.buckets();
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

}  // namespace vusion
