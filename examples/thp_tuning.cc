// THP tuning: the fusion-vs-huge-pages trade-off of paper §8.1. Runs the same
// THP-backed guests under base VUsion (maximum fusion: huge pages broken up when
// scanned) and VUsion-THP (performance: working-set huge pages conserved,
// khugepaged securely re-collapses), reporting both huge-page counts and savings.
//
//   $ ./build/examples/thp_tuning

#include <cstdio>

#include "src/fusion/engine_factory.h"
#include "src/workload/scenario.h"

using namespace vusion;

namespace {

void RunMode(EngineKind kind) {
  ScenarioConfig config;
  config.machine.frame_count = 1u << 16;
  config.engine = kind;
  config.fusion.pool_frames = 4096;
  if (kind == EngineKind::kVUsionThp) {
    config.enable_khugepaged = true;
    config.khugepaged.period = 2 * kSecond;
  }
  Scenario scenario(config);
  VmImageSpec image;
  image.total_pages = 4096;
  image.map_anon_as_thp = true;  // KVM-style THP-backed guests
  std::vector<Process*> vms;
  for (int i = 0; i < 4; ++i) {
    vms.push_back(&scenario.BootVm(image, 70 + i));
  }
  const std::uint64_t huge_at_boot = scenario.machine().CountHugeMappings();

  // Sparse per-guest activity: roughly one hot page per 2 MB range, touched more
  // often than a scan round so the range genuinely stays in the working set.
  Rng rng(5);
  for (int step = 0; step < 60; ++step) {
    for (Process* vm : vms) {
      for (const VmArea& vma : vm->address_space().vmas().areas()) {
        for (Vpn base = vma.start; base + kPagesPerHugePage <= vma.end();
             base += kPagesPerHugePage) {
          vm->Read64(VpnToVaddr(base + rng.NextBelow(kPagesPerHugePage)));
        }
      }
    }
    scenario.RunFor(2 * kSecond);
  }
  std::printf("%-12s huge pages %3llu -> %3llu, saved %.1f MB, CoA faults %llu\n",
              EngineKindName(kind), static_cast<unsigned long long>(huge_at_boot),
              static_cast<unsigned long long>(scenario.machine().CountHugeMappings()),
              static_cast<double>(scenario.engine()->frames_saved()) * kPageSize /
                  (1024.0 * 1024.0),
              static_cast<unsigned long long>(scenario.engine()->stats().unmerges_coa));
}

}  // namespace

int main() {
  std::printf("THP-backed guests under the two secure THP policies (paper §8.1):\n\n");
  RunMode(EngineKind::kVUsion);     // maximum fusion, "a la KSM"
  RunMode(EngineKind::kVUsionThp);  // conserve working-set THPs, "a la Ingens"
  std::printf("\nmaximum-fusion mode trades huge pages for capacity; the THP-aware\n"
              "mode keeps the working set's 2 MB mappings and gives up some fusion.\n");
  return 0;
}
