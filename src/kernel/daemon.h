// Background kernel threads (fusion scanners, khugepaged, deferred-free worker)
// modeled as daemons with virtual-time deadlines. The Machine runs every daemon
// whose deadline has passed after each access and during idle periods.

#ifndef VUSION_SRC_KERNEL_DAEMON_H_
#define VUSION_SRC_KERNEL_DAEMON_H_

#include "src/sim/clock.h"

namespace vusion {

class Daemon {
 public:
  virtual ~Daemon() = default;

  // Next virtual time this daemon wants to run.
  [[nodiscard]] virtual SimTime next_run() const = 0;

  // Executes one wake-up (charging its CPU cost to the clock) and advances the
  // deadline. Missed periods coalesce; daemons do not storm to catch up.
  virtual void Run() = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_KERNEL_DAEMON_H_
