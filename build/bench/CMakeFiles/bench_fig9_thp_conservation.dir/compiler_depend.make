# Empty compiler generated dependencies file for bench_fig9_thp_conservation.
# This may be replaced when dependencies are built.
