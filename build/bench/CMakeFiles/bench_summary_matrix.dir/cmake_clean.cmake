file(REMOVE_RECURSE
  "CMakeFiles/bench_summary_matrix.dir/bench_summary_matrix.cc.o"
  "CMakeFiles/bench_summary_matrix.dir/bench_summary_matrix.cc.o.d"
  "bench_summary_matrix"
  "bench_summary_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
