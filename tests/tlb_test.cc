#include "src/mmu/tlb.h"

#include <gtest/gtest.h>

namespace vusion {
namespace {

TEST(TlbTest, MissThenHit) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.Lookup(1).has_value());
  tlb.Insert(1, Pte{10, kPtePresent});
  const auto hit = tlb.Lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->frame, 10u);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, LruEvictionAtCapacity) {
  Tlb tlb(3);
  tlb.Insert(1, Pte{1, kPtePresent});
  tlb.Insert(2, Pte{2, kPtePresent});
  tlb.Insert(3, Pte{3, kPtePresent});
  tlb.Lookup(1);  // 1 most recent; 2 is LRU
  tlb.Insert(4, Pte{4, kPtePresent});
  EXPECT_TRUE(tlb.Lookup(1).has_value());
  EXPECT_FALSE(tlb.Lookup(2).has_value());  // evicted
  EXPECT_TRUE(tlb.Lookup(3).has_value());
  EXPECT_TRUE(tlb.Lookup(4).has_value());
}

TEST(TlbTest, InsertUpdatesExisting) {
  Tlb tlb(4);
  tlb.Insert(7, Pte{1, kPtePresent});
  tlb.Insert(7, Pte{2, kPtePresent | kPteWritable});
  EXPECT_EQ(tlb.size(), 1u);
  const auto entry = tlb.Lookup(7);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->frame, 2u);
  EXPECT_TRUE(entry->writable());
}

TEST(TlbTest, InvalidateSingle) {
  Tlb tlb(4);
  tlb.Insert(5, Pte{5, kPtePresent});
  tlb.Invalidate(5);
  EXPECT_FALSE(tlb.Lookup(5).has_value());
  tlb.Invalidate(99);  // no-op on absent entry
}

TEST(TlbTest, InvalidateRange) {
  Tlb tlb(8);
  for (Vpn vpn = 10; vpn < 18; ++vpn) {
    tlb.Insert(vpn, Pte{static_cast<FrameId>(vpn), kPtePresent});
  }
  tlb.InvalidateRange(12, 15);
  EXPECT_TRUE(tlb.Lookup(10).has_value());
  EXPECT_FALSE(tlb.Lookup(12).has_value());
  EXPECT_FALSE(tlb.Lookup(14).has_value());
  EXPECT_TRUE(tlb.Lookup(15).has_value());
}

TEST(TlbTest, Flush) {
  Tlb tlb(8);
  tlb.Insert(1, Pte{1, kPtePresent});
  tlb.Insert(2, Pte{2, kPtePresent});
  tlb.Flush();
  EXPECT_EQ(tlb.size(), 0u);
  EXPECT_FALSE(tlb.Lookup(1).has_value());
}

}  // namespace
}  // namespace vusion
