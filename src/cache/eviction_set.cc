#include "src/cache/eviction_set.h"

namespace vusion {

ColorEvictionSets::ColorEvictionSets(std::span<const FrameId> frames, const CacheConfig& config)
    : config_(config), sets_(config.page_colors()) {
  for (const FrameId f : frames) {
    auto& bucket = sets_[f % config_.page_colors()];
    if (bucket.size() < config_.ways) {
      bucket.push_back(f);
    }
  }
}

bool ColorEvictionSets::complete() const {
  for (const auto& bucket : sets_) {
    if (bucket.size() < config_.ways) {
      return false;
    }
  }
  return true;
}

std::size_t ColorEvictionSets::accesses_per_color() const {
  return config_.ways * (kPageSize / config_.line_size);
}

SimTime ColorEvictionSets::Traverse(
    std::size_t color,
    const std::function<SimTime(FrameId frame, std::size_t offset)>& access) const {
  SimTime total = 0;
  for (const FrameId frame : sets_[color]) {
    for (std::size_t off = 0; off < kPageSize; off += config_.line_size) {
      total += access(frame, off);
    }
  }
  return total;
}

}  // namespace vusion
