#include "src/fusion/memory_combining.h"

#include <string>

#include "src/kernel/idle_tracker.h"

namespace vusion {

MemoryCombining::MemoryCombining(Machine& machine, const FusionConfig& config)
    : FusionEngine(machine, config),
      content_(machine, config.byte_ordered_trees),
      cursor_(machine) {}

MemoryCombining::~MemoryCombining() {
  for (const FrameId frame : cache_backing_) {
    machine_->buddy().Free(frame);
  }
}

std::uint64_t MemoryCombining::frames_saved() const {
  return frames_freed_ > cache_frames_ ? frames_freed_ - cache_frames_ : 0;
}

void MemoryCombining::Run() {
  if (SkipWake()) {
    return;
  }
  // Only act under memory pressure, like the real pager.
  if (machine_->buddy().free_count() < config_.mc_low_watermark) {
    SwapOutBatch();
  }
  next_run_ = machine_->clock().now() + config_.wake_period;
}

void MemoryCombining::SwapOutBatch() {
  std::size_t swapped = 0;
  std::size_t examined = 0;
  const std::size_t limit = config_.mc_swap_batch;
  // Bounded sweep: examine up to 16x the batch looking for idle pages.
  while (swapped < limit && examined < 16 * limit) {
    Process* process = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    if (!cursor_.Next(process, vpn, wrapped)) {
      break;
    }
    ++examined;
    ++stats_.pages_scanned;
    if (SwapOutOne(*process, vpn)) {
      ++swapped;
    }
  }
}

bool MemoryCombining::SwapOutOne(Process& process, Vpn vpn) {
  AddressSpace& as = process.address_space();
  Pte* pte = as.GetPte(vpn);
  if (pte == nullptr || !pte->present() || pte->huge() || pte->reserved_trap()) {
    return false;
  }
  // Only idle pages get paged out.
  if (IdleTracker::TestAndClearAccessed(as, vpn)) {
    return false;
  }
  const std::uint64_t key = KeyOf(process, vpn);
  if (swapped_.contains(key)) {
    return false;
  }
  if (machine_->memory().refcount(pte->frame) > 0) {
    return false;  // fork-shared: the kernel owns this CoW state
  }
  const FrameId frame = pte->frame;
  LatencyModel& lm = machine_->latency();
  const std::uint64_t hash = content_.Hash(frame);

  // Deduplicate inside the compressed store.
  Record* record = nullptr;
  auto [lo, hi] = records_.equal_range(hash);
  PhysicalMemory::ContentSnapshot snapshot = machine_->memory().Snapshot(frame);
  for (auto it = lo; it != hi; ++it) {
    lm.Charge(lm.config().content_compare);
    if (PhysicalMemory::SnapshotsEqual(it->second->snapshot, snapshot)) {
      record = it->second.get();
      break;
    }
  }
  if (record == nullptr) {
    auto fresh = std::make_unique<Record>();
    fresh->snapshot = std::move(snapshot);
    record = fresh.get();
    records_.emplace(hash, std::move(fresh));
    // Modeled compression of the stored copy.
    compressed_bytes_ +=
        static_cast<std::uint64_t>(kPageSize / config_.mc_compression_ratio);
    ++stats_.fake_merges;  // a new compressed record
  } else {
    ++stats_.merges;  // deduplicated against an existing record
    const VmArea* vma = as.vmas().FindContaining(vpn);
    if (vma != nullptr) {
      stats_.RecordMergeType(vma->type);
    }
  }
  ++record->refs;
  swapped_[key] = record;

  // Page out: the PTE keeps only the swapped marker; the frame goes back.
  lm.Charge(lm.config().pte_update);
  as.SetPte(vpn, Pte{kInvalidFrame, kPteSwapped});
  machine_->FlushFrame(frame);
  lm.Charge(lm.config().buddy_free);
  machine_->buddy().Free(frame);
  ++frames_freed_;
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kSwapOut, process.id(),
                         vpn, frame);
  RebalanceCacheFrames();
  return true;
}

void MemoryCombining::RebalanceCacheFrames() {
  const std::size_t needed =
      static_cast<std::size_t>((compressed_bytes_ + kPageSize - 1) / kPageSize);
  while (cache_frames_ < needed) {
    const FrameId frame = machine_->buddy().Allocate();
    if (frame == kInvalidFrame) {
      break;  // degenerate: cannot even back the store; accounting still honest
    }
    ++cache_frames_;
    cache_backing_.push_back(frame);
  }
  while (cache_frames_ > needed && !cache_backing_.empty()) {
    machine_->buddy().Free(cache_backing_.back());
    cache_backing_.pop_back();
    --cache_frames_;
  }
}

bool MemoryCombining::SwapIn(Process& process, Vpn vpn, Record* record,
                             const PageFault& fault) {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().buddy_alloc);
  const FrameId fresh = machine_->buddy().Allocate();
  if (fresh == kInvalidFrame) {
    return false;
  }
  // Decompression is modeled as a page copy plus extra CPU work.
  lm.Charge(lm.config().page_copy_4k);
  lm.Charge(lm.config().page_copy_4k);
  machine_->memory().Restore(fresh, record->snapshot);
  lm.Charge(lm.config().pte_update);
  process.address_space().SetPte(
      vpn, Pte{fresh, static_cast<std::uint16_t>(
                          kPtePresent | kPteWritable | kPteAccessed |
                          (fault.access == AccessType::kWrite ? kPteDirty : 0))});
  swapped_.erase(KeyOf(process, vpn));
  --frames_freed_;
  DropRecord(record);
  ++stats_.unmerges_cow;  // major fault servicing
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kUnmergeCow, process.id(),
                         vpn, fresh);
  return true;
}

void MemoryCombining::DropRecord(Record* record) {
  if (--record->refs > 0) {
    return;
  }
  const std::uint64_t hash = record->snapshot.hash;
  auto [lo, hi] = records_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.get() == record) {
      compressed_bytes_ -=
          static_cast<std::uint64_t>(kPageSize / config_.mc_compression_ratio);
      records_.erase(it);
      break;
    }
  }
  RebalanceCacheFrames();
}

bool MemoryCombining::HandleFault(Process& process, const PageFault& fault) {
  const auto it = swapped_.find(KeyOf(process, fault.vpn));
  if (it == swapped_.end()) {
    return false;
  }
  if (!SwapIn(process, fault.vpn, it->second, fault)) {
    // Transient OOM: claim the fault so the access retries. Falling through to
    // the kernel would demand-zero over the swapped marker and lose the page.
    return true;
  }
  return true;
}

bool MemoryCombining::OnUnmap(Process& process, Vpn vpn) {
  const auto it = swapped_.find(KeyOf(process, vpn));
  if (it == swapped_.end()) {
    return false;
  }
  Record* record = it->second;
  swapped_.erase(it);
  --frames_freed_;
  DropRecord(record);
  return true;
}

bool MemoryCombining::AllowCollapse(Process& process, Vpn base) {
  for (Vpn vpn = base; vpn < base + kPagesPerHugePage; ++vpn) {
    if (swapped_.contains(KeyOf(process, vpn))) {
      return false;
    }
  }
  return true;
}

void MemoryCombining::OnUnregister(Process& process, Vpn start, std::uint64_t pages) {
  for (Vpn vpn = start; vpn < start + pages; ++vpn) {
    const auto it = swapped_.find(KeyOf(process, vpn));
    if (it == swapped_.end()) {
      continue;
    }
    const PageFault fault{vpn, AccessType::kRead, Pte{}};
    SwapIn(process, vpn, it->second, fault);
  }
}

bool MemoryCombining::IsSwapped(const Process& process, Vpn vpn) const {
  return swapped_.contains(KeyOf(process, vpn));
}

void MemoryCombining::AuditInvariants(AuditContext& ctx) const {
  const auto& processes = machine_->processes();
  PhysicalMemory& memory = machine_->memory();

  // Swap map: each swapped page belongs to a live process, sits behind the
  // swapped marker PTE, and references a live record.
  std::unordered_map<const Record*, std::uint32_t> swap_refs;
  for (const auto& [key, record] : swapped_) {
    ++swap_refs[record];
    const auto pid = static_cast<std::uint32_t>(key >> 40);
    const Vpn vpn = key ^ (static_cast<std::uint64_t>(pid) << 40);
    if (!ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
          return "mc: swap map holds page of dead process " +
                 std::to_string(pid);
        })) {
      continue;
    }
    const Pte* pte = processes[pid]->address_space().GetPte(vpn);
    ctx.Check(pte != nullptr && pte->flags == kPteSwapped &&
                  pte->frame == kInvalidFrame,
              [&] {
                return "mc: swapped page (" + std::to_string(pid) + "," +
                       std::to_string(vpn) +
                       ") is not behind the swapped marker PTE";
              });
  }

  // Record store: refcounts equal the swap map's references, hash keys match
  // the stored snapshots.
  std::size_t record_refs = 0;
  for (const auto& [hash, record] : records_) {
    record_refs += record->refs;
    ctx.Check(record->refs >= 1, [&] {
      return "mc: compressed record with zero refs survives in the store";
    });
    ctx.Check(record->snapshot.hash == hash, [&] {
      return "mc: record stored under hash " + std::to_string(hash) +
             " snapshots hash " + std::to_string(record->snapshot.hash);
    });
    const auto it = swap_refs.find(record.get());
    ctx.Check(it != swap_refs.end() && it->second == record->refs, [&] {
      return "mc: record refs " + std::to_string(record->refs) +
             " != " + std::to_string(it == swap_refs.end() ? 0 : it->second) +
             " swap-map references";
    });
  }
  ctx.Check(record_refs == swapped_.size(), [&] {
    return "mc: records claim " + std::to_string(record_refs) +
           " references but the swap map holds " +
           std::to_string(swapped_.size()) + " pages";
  });

  // Cache backing: really-reserved frames, unmapped and owned only here.
  ctx.Check(cache_frames_ == cache_backing_.size(), [&] {
    return "mc: cache_frames_ " + std::to_string(cache_frames_) +
           " != backing vector size " + std::to_string(cache_backing_.size());
  });
  for (const FrameId frame : cache_backing_) {
    ctx.OwnFrame(frame, "mc.cache");
    ctx.Check(memory.allocated(frame) && memory.refcount(frame) == 0 &&
                  ctx.mapped(frame) == 0,
              [&] {
                return "mc: cache backing frame " + std::to_string(frame) +
                       " is still live (mapped or refcounted)";
              });
  }
}

}  // namespace vusion
