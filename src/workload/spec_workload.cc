#include "src/workload/spec_workload.h"

#include <array>

namespace vusion {

namespace {

// Footprints and profiles loosely follow the published characterization of the
// suite, scaled 1:8 to the simulated machine alongside the guest scaling:
// mcf/milc/lbm are memory hogs with poor locality, perlbench/gobmk/sjeng are small
// and cache-friendly. `ops` is sized so that accesses-per-page amortizes fault
// costs the way minutes-long runs do on real hardware.
constexpr std::array<SyntheticBenchmark, 16> kSpecSuite = {{
    {"perlbench", 150, 0.20, 0.95, 0.30, 1000000},
    {"bzip2", 250, 0.25, 0.90, 0.35, 1000000},
    {"gcc", 325, 0.30, 0.85, 0.30, 1000000},
    {"mcf", 650, 0.55, 0.60, 0.25, 1000000},
    {"milc", 550, 0.60, 0.55, 0.35, 1000000},
    {"namd", 190, 0.25, 0.92, 0.20, 1000000},
    {"gobmk", 110, 0.20, 0.95, 0.25, 1000000},
    {"soplex", 400, 0.45, 0.70, 0.25, 1000000},
    {"povray", 90, 0.15, 0.96, 0.30, 1000000},
    {"hmmer", 140, 0.20, 0.94, 0.30, 1000000},
    {"sjeng", 175, 0.20, 0.93, 0.30, 1000000},
    {"libquantum", 300, 0.70, 0.50, 0.20, 1000000},
    {"h264ref", 200, 0.30, 0.88, 0.35, 1000000},
    {"lbm", 600, 0.75, 0.50, 0.45, 1000000},
    {"omnetpp", 350, 0.40, 0.75, 0.35, 1000000},
    {"astar", 275, 0.35, 0.80, 0.30, 1000000},
}};

}  // namespace

std::span<const SyntheticBenchmark> SpecWorkload::Suite() { return kSpecSuite; }

SpecWorkload::Prepared SpecWorkload::Prepare(Process& process,
                                             const SyntheticBenchmark& bench) {
  Prepared prepared;
  prepared.bench = &bench;
  prepared.base = process.AllocateRegion(bench.footprint_pages, PageType::kAnonymous,
                                         /*mergeable=*/true, false);
  for (std::size_t i = 0; i < bench.footprint_pages; ++i) {
    process.SetupMapPattern(VaddrToVpn(prepared.base) + i,
                            0x5bec0000ULL + bench.footprint_pages * 131 + i);
  }
  return prepared;
}

SimTime SpecWorkload::Run(Process& process, const Prepared& prepared, Rng& rng) {
  Machine& machine = process.machine();
  const SyntheticBenchmark& bench = *prepared.bench;
  const auto hot_pages = std::max<std::size_t>(
      1, static_cast<std::size_t>(bench.hot_fraction *
                                  static_cast<double>(bench.footprint_pages)));
  const SimTime start = machine.clock().now();
  for (std::size_t op = 0; op < bench.ops; ++op) {
    const bool hot = rng.NextBool(bench.hot_access_prob);
    const std::size_t page = hot ? rng.NextBelow(hot_pages)
                                 : hot_pages + rng.NextBelow(bench.footprint_pages - hot_pages);
    const VirtAddr addr =
        prepared.base + page * kPageSize + (rng.NextBelow(kPageSize / 8) * 8);
    if (rng.NextBool(bench.write_ratio)) {
      process.Write64(addr, op);
    } else {
      process.Read64(addr);
    }
  }
  return machine.clock().now() - start;
}

SimTime SpecWorkload::Run(Process& process, const SyntheticBenchmark& bench, Rng& rng) {
  const Prepared prepared = Prepare(process, bench);
  return Run(process, prepared, rng);
}

}  // namespace vusion
