file(REMOVE_RECURSE
  "libvusion_mmu.a"
)
