// Chaos fuzzing driver: runs seed-based fault-injection campaigns against the
// fusion engines, auditing machine-wide invariants throughout. A campaign is a
// pure function of its seed — any failure prints an exact replay command
// (seed + recorded fault schedule) that reproduces it byte-for-byte.
//
// Usage:
//   tools/chaos_fuzz --seeds 25 --engine all --fast-audit
//   tools/chaos_fuzz --engine vusion --seed 7 --schedule buddy_alloc@3,teardown@1
//
// Exit status 0 if every campaign held all invariants, 1 otherwise.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/chaos/fuzz_campaign.h"

namespace {

using vusion::CampaignEngineToken;
using vusion::CampaignOptions;
using vusion::CampaignResult;
using vusion::EngineKind;
using vusion::FuzzCampaign;

struct CliOptions {
  CampaignOptions campaign;
  std::vector<EngineKind> engines{EngineKind::kKsm, EngineKind::kWpf,
                                  EngineKind::kVUsion};
  std::uint64_t seed_base = 1;
  std::size_t seed_count = 1;
};

void PrintUsage() {
  std::cerr
      << "usage: chaos_fuzz [options]\n"
         "  --engine ksm|wpf|vusion|vusion-thp|ksm-coa|ksm-zero|mc|none|all\n"
         "  --seed N          first campaign seed (default 1)\n"
         "  --seeds N         number of consecutive seeds to run (default 1)\n"
         "  --steps N         workload events per campaign (default 400)\n"
         "  --threads N       engine scan threads (default 1)\n"
         "  --delta           enable epoch-based delta scanning (pass cache)\n"
         "  --rate R          per-visit injection probability (default 0.01)\n"
         "  --audit-epoch N   audit every N events (default 1 = slow mode)\n"
         "  --fast-audit      shorthand for --audit-epoch 16\n"
         "  --snapshot-interval N  savestate checkpoint every N events; on a\n"
         "                    failure, replay from the nearest pre-failure\n"
         "                    checkpoint to verify it reproduces (default off)\n"
         "  --schedule S      replay an exact fault schedule (site@visit,...)\n"
         "  --artifact-dir D  dump trace+metrics there on failure\n"
         "  --no-shrink       skip schedule minimization on failure\n";
}

bool ParseArgs(int argc, char** argv, CliOptions& cli) {
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << "\n";
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--engine") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      if (std::string(value) == "all") {
        cli.engines = {EngineKind::kKsm, EngineKind::kWpf, EngineKind::kVUsion};
      } else {
        EngineKind kind;
        if (!vusion::ParseCampaignEngine(value, kind)) {
          std::cerr << "unknown engine: " << value << "\n";
          return false;
        }
        cli.engines = {kind};
      }
    } else if (arg == "--seed") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.seed_base = std::strtoull(value, nullptr, 10);
    } else if (arg == "--seeds") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.seed_count = std::strtoull(value, nullptr, 10);
    } else if (arg == "--steps") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.campaign.steps = std::strtoull(value, nullptr, 10);
    } else if (arg == "--threads") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.campaign.scan_threads = std::strtoull(value, nullptr, 10);
    } else if (arg == "--rate") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.campaign.fault_rate = std::strtod(value, nullptr);
    } else if (arg == "--audit-epoch") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.campaign.audit_epoch = std::strtoull(value, nullptr, 10);
    } else if (arg == "--snapshot-interval") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.campaign.snapshot_interval = std::strtoull(value, nullptr, 10);
    } else if (arg == "--delta") {
      cli.campaign.delta_scan = true;
    } else if (arg == "--fast-audit") {
      cli.campaign.audit_epoch = 16;
    } else if (arg == "--schedule") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      if (!vusion::ParseSchedule(value, &cli.campaign.schedule)) {
        std::cerr << "bad schedule: " << value << "\n";
        return false;
      }
      cli.campaign.use_schedule = true;
    } else if (arg == "--artifact-dir") {
      if ((value = need_value(i)) == nullptr) {
        return false;
      }
      cli.campaign.artifact_dir = value;
    } else if (arg == "--no-shrink") {
      cli.campaign.shrink = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, cli)) {
    PrintUsage();
    return 2;
  }

  std::size_t failures = 0;
  std::size_t campaigns = 0;
  for (const EngineKind engine : cli.engines) {
    for (std::size_t i = 0; i < cli.seed_count; ++i) {
      CampaignOptions options = cli.campaign;
      options.engine = engine;
      options.seed = cli.seed_base + i;
      ++campaigns;
      const CampaignResult result = FuzzCampaign(options).Run();
      if (result.ok) {
        std::cout << "[ok]   " << CampaignEngineToken(engine) << " seed "
                  << options.seed << ": " << result.faults_injected
                  << " faults injected, " << result.audits << " audits ("
                  << result.checks << " checks), " << result.tolerated_throws
                  << " tolerated aborts";
        if (result.snapshots_taken > 0) {
          std::cout << ", " << result.snapshots_taken << " checkpoints";
        }
        std::cout << "\n";
        continue;
      }
      ++failures;
      std::cout << "[FAIL] " << CampaignEngineToken(engine) << " seed "
                << options.seed << ": invariants violated at step "
                << result.failed_step << "\n";
      for (const std::string& violation : result.violations) {
        std::cout << "       " << violation << "\n";
      }
      std::cout << "       schedule: " << vusion::FormatSchedule(result.schedule)
                << "\n";
      if (result.shrunk_schedule.size() < result.schedule.size()) {
        std::cout << "       shrunk:   "
                  << vusion::FormatSchedule(result.shrunk_schedule) << "\n";
      }
      if (result.has_nearest_snapshot) {
        std::cout << "       snapshot: nearest pre-failure checkpoint at step "
                  << result.nearest_snapshot_step << ", restore-to-failure "
                  << (result.restore_to_failure_ok ? "reproduced" : "NOT reproduced");
        if (!result.snapshot_path.empty()) {
          std::cout << " (" << result.snapshot_path << ")";
        }
        std::cout << "\n";
      }
      std::cout << "       repro:    " << result.repro << "\n";
    }
  }
  std::cout << campaigns << " campaigns, " << failures << " failures\n";
  return failures == 0 ? 0 : 1;
}
