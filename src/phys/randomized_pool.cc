#include "src/phys/randomized_pool.h"

#include <cmath>

#include "src/chaos/fault_injector.h"

namespace vusion {

RandomizedPool::RandomizedPool(FrameAllocator& backing, std::size_t pool_size, Rng rng)
    : backing_(&backing), rng_(rng) {
  slots_.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    const FrameId f = backing_->Allocate();
    if (f == kInvalidFrame) {
      // A genuine order-0 failure means memory is exhausted; stop filling. A
      // transient (injected) failure leaves free frames behind — skip just
      // this slot instead of abandoning the whole fill, which would collapse
      // the pool's entropy for the lifetime of the engine.
      if (backing_->free_count() == 0) {
        break;
      }
      continue;
    }
    slots_.push_back(f);
  }
}

RandomizedPool::~RandomizedPool() {
  for (FrameId f : slots_) {
    backing_->Free(f);
  }
}

FrameId RandomizedPool::Allocate() {
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kPoolAlloc)) {
    injector_->RecordDegradation();
    return kInvalidFrame;
  }
  if (slots_.empty()) {
    last_slot_fraction_ = -1.0;
    ++bypass_count_;
    return backing_->Allocate();
  }
  const std::size_t idx = rng_.NextBelow(slots_.size());
  last_slot_fraction_ = static_cast<double>(idx) / static_cast<double>(slots_.size());
  const FrameId out = slots_[idx];
  ++draw_count_;
  const FrameId refill = backing_->Allocate();
  if (refill == kInvalidFrame) {
    slots_[idx] = slots_.back();
    slots_.pop_back();
  } else {
    slots_[idx] = refill;
    ++refill_count_;
  }
  return out;
}

void RandomizedPool::Free(FrameId frame) {
  if (slots_.empty()) {
    backing_->Free(frame);
    return;
  }
  const std::size_t idx = rng_.NextBelow(slots_.size());
  backing_->Free(slots_[idx]);
  slots_[idx] = frame;
  ++insert_count_;
}

double RandomizedPool::entropy_bits() const {
  return slots_.empty() ? 0.0 : std::log2(static_cast<double>(slots_.size()));
}

}  // namespace vusion

#include "src/snapshot/io.h"

namespace vusion {

void RandomizedPool::SaveState(snapshot::SnapshotWriter& w) const {
  w.U64(slots_.size());
  for (const FrameId f : slots_) {
    w.U32(f);
  }
  const Rng::State rng = rng_.state();
  for (const std::uint64_t word : rng.s) {
    w.U64(word);
  }
  w.F64(rng.spare_gaussian);
  w.Bool(rng.has_spare_gaussian);
  w.F64(last_slot_fraction_);
  w.U64(draw_count_);
  w.U64(refill_count_);
  w.U64(bypass_count_);
  w.U64(insert_count_);
}

void RandomizedPool::RestoreState(snapshot::SnapshotReader& r) {
  slots_.clear();
  const std::uint64_t n = r.Count(4);
  slots_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    slots_.push_back(r.U32());
  }
  Rng::State rng;
  for (std::uint64_t& word : rng.s) {
    word = r.U64();
  }
  rng.spare_gaussian = r.F64();
  rng.has_spare_gaussian = r.Bool();
  rng_.RestoreState(rng);
  last_slot_fraction_ = r.F64();
  draw_count_ = r.U64();
  refill_count_ = r.U64();
  bypass_count_ = r.U64();
  insert_count_ = r.U64();
}

}  // namespace vusion
