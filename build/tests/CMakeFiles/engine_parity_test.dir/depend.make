# Empty dependencies file for engine_parity_test.
# This may be replaced when dependencies are built.
