#include "src/chaos/fuzz_campaign.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/chaos/invariant_auditor.h"
#include "src/kernel/machine.h"
#include "src/kernel/process.h"

namespace vusion {

const char* CampaignEngineToken(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNone:
      return "none";
    case EngineKind::kKsm:
      return "ksm";
    case EngineKind::kKsmCoA:
      return "ksm-coa";
    case EngineKind::kKsmZeroOnly:
      return "ksm-zero";
    case EngineKind::kWpf:
      return "wpf";
    case EngineKind::kVUsion:
      return "vusion";
    case EngineKind::kVUsionThp:
      return "vusion-thp";
    case EngineKind::kMemoryCombining:
      return "mc";
  }
  return "none";
}

bool ParseCampaignEngine(const std::string& token, EngineKind& kind) {
  for (const EngineKind candidate :
       {EngineKind::kNone, EngineKind::kKsm, EngineKind::kKsmCoA,
        EngineKind::kKsmZeroOnly, EngineKind::kWpf, EngineKind::kVUsion,
        EngineKind::kVUsionThp, EngineKind::kMemoryCombining}) {
    if (token == CampaignEngineToken(candidate)) {
      kind = candidate;
      return true;
    }
  }
  return false;
}

std::string FuzzCampaign::ReproCommand(
    const std::vector<FaultRecord>* schedule) const {
  std::ostringstream cmd;
  cmd << "tools/chaos_fuzz --engine " << CampaignEngineToken(options_.engine)
      << " --seed " << options_.seed << " --steps " << options_.steps
      << " --threads " << options_.scan_threads << " --rate "
      << options_.fault_rate << " --audit-epoch " << options_.audit_epoch;
  if (options_.delta_scan) {
    cmd << " --delta";
  }
  if (schedule != nullptr && !schedule->empty()) {
    cmd << " --schedule " << FormatSchedule(*schedule);
  }
  return cmd.str();
}

CampaignResult FuzzCampaign::RunOnce(const std::vector<FaultRecord>* schedule,
                                     bool dump_artifacts) {
  CampaignResult result;

  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = options_.seed;
  Machine machine(machine_config);
  machine.trace().set_enabled(true);

  ChaosConfig chaos_config;
  chaos_config.seed = options_.seed;
  chaos_config.SetAllRates(options_.fault_rate);
  FaultInjector& injector =
      schedule != nullptr
          ? machine.EnableChaosWithSchedule(chaos_config, *schedule)
          : machine.EnableChaos(chaos_config);

  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 512;
  fusion_config.wpf_period = 10 * kMillisecond;
  fusion_config.scan_threads = options_.scan_threads;
  fusion_config.delta_scan = options_.delta_scan;
  if (options_.engine == EngineKind::kMemoryCombining) {
    // Permanent pressure so the swap-cache engine actually acts.
    fusion_config.mc_low_watermark = machine_config.frame_count;
  }
  ScopedEngine engine(options_.engine, machine, fusion_config);

  // VM-teardown injection: a fired kTeardown at any scan phase boundary
  // destroys the youngest forked VM while the engine is mid-quantum. The
  // ShouldFail call always advances the site's visit counter (even with no
  // children alive) so the schedule replays independently of workload state.
  std::vector<Process*> children;
  if (engine) {
    engine->SetPhaseHook([&machine, &injector, &children](FusionEngine&,
                                                          ScanPhase) {
      if (injector.ShouldFail(FaultSite::kTeardown) && !children.empty()) {
        machine.DestroyProcess(*children.back());
        children.pop_back();
        injector.RecordDegradation();
      }
    });
  }

  InvariantAuditor auditor(machine);
  auto audit_now = [&](std::size_t step) {
    AuditReport report = auditor.Audit(engine.get());
    if (!report.ok) {
      result.ok = false;
      result.failed_step = step;
      result.violations = std::move(report.violations);
    }
    return result.ok;
  };

  // The workload: the frame-audit property test's event mix (map, write, read,
  // idle, unmap, prefetch, fork/exit churn) driven by the campaign seed.
  constexpr std::size_t kPages = 512;
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr base_a = a.AllocateRegion(kPages, PageType::kAnonymous, true, false);
  const VirtAddr base_b = b.AllocateRegion(kPages, PageType::kAnonymous, true, true);
  for (std::size_t i = 0; i < kPages; ++i) {
    a.SetupMapPattern(VaddrToVpn(base_a) + i, 0x5000 + (i % 32));
    b.SetupMapPattern(VaddrToVpn(base_b) + i, 0x5000 + (i % 32));
  }
  Rng rng(options_.seed * 13 + 5);
  for (std::size_t step = 0; step < options_.steps && result.ok; ++step) {
    const std::size_t page = rng.NextBelow(kPages);
    Process& proc = rng.NextBool(0.5) ? a : b;
    const VirtAddr base = (&proc == &a) ? base_a : base_b;
    try {
      switch (rng.NextBelow(6)) {
        case 0:
          proc.Write64(base + page * kPageSize, step);
          break;
        case 1:
          proc.Read64(base + page * kPageSize);
          break;
        case 2:
          machine.Idle(rng.NextInRange(1, 4) * kMillisecond);
          break;
        case 3:
          if (&proc == &a) {
            a.SetupUnmap(VaddrToVpn(base_a) + page);
          }
          break;
        case 4:
          proc.Prefetch(base + page * kPageSize);
          break;
        default:
          if (children.size() < 4) {
            Process& child = machine.ForkProcess(b);
            child.Write64(base_b + page * kPageSize, step);
            children.push_back(&child);
          } else {
            machine.DestroyProcess(*children.back());
            children.pop_back();
          }
          break;
      }
    } catch (const std::runtime_error&) {
      // A fault-retry limit tripped by clustered injections: the access was
      // abandoned, which is fine as long as the machine stayed consistent —
      // the audit below is the judge.
      ++result.tolerated_throws;
    }
    if (options_.audit_epoch <= 1 || step % options_.audit_epoch == 0) {
      audit_now(step);
    }
  }
  if (result.ok) {
    machine.Idle(50 * kMillisecond);
    audit_now(options_.steps);
  }

  result.schedule = injector.injected_schedule();
  result.faults_injected = injector.total_injected();
  result.audits = auditor.audits_run();
  result.checks = auditor.checks_total();

  if (!result.ok && dump_artifacts && !options_.artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.artifact_dir, ec);
    const std::string path = options_.artifact_dir + "/chaos_" +
                             CampaignEngineToken(options_.engine) + "_seed" +
                             std::to_string(options_.seed) + ".txt";
    std::ofstream out(path);
    out << "repro: " << ReproCommand(&result.schedule) << "\n";
    out << "failed_step: " << result.failed_step << "\n";
    out << "schedule: " << FormatSchedule(result.schedule) << "\n\n";
    out << "violations:\n";
    for (const std::string& violation : result.violations) {
      out << "  " << violation << "\n";
    }
    out << "\ntrace summary:\n" << machine.trace().Summary() << "\n";
    out << "trace tail:\n";
    const auto events = machine.trace().Events();
    const std::size_t start = events.size() > 200 ? events.size() - 200 : 0;
    for (std::size_t i = start; i < events.size(); ++i) {
      const TraceEvent& event = events[i];
      out << "  t=" << event.time << " " << TraceEventTypeName(event.type)
          << " pid=" << event.process_id << " vpn=" << event.vpn
          << " frame=" << event.frame << "\n";
    }
    auditor.ExportMetrics(machine.metrics());
    out << "\nmetrics:\n" << machine.CollectMetrics().RenderTable() << "\n";
  }
  return result;
}

std::vector<FaultRecord> FuzzCampaign::ShrinkSchedule(
    const std::vector<FaultRecord>& failing) {
  std::size_t budget = 40;  // replay bound: shrinking is best-effort
  auto fails = [&](const std::vector<FaultRecord>& candidate) {
    --budget;
    return !RunOnce(&candidate, /*dump_artifacts=*/false).ok;
  };

  // Pass 1: bisection — keep halving while one half alone still fails.
  std::vector<FaultRecord> current = failing;
  while (current.size() > 1 && budget > 1) {
    const auto mid =
        current.begin() + static_cast<std::ptrdiff_t>(current.size() / 2);
    std::vector<FaultRecord> front(current.begin(), mid);
    std::vector<FaultRecord> back(mid, current.end());
    if (fails(front)) {
      current = std::move(front);
    } else if (budget > 0 && fails(back)) {
      current = std::move(back);
    } else {
      break;
    }
  }
  // Pass 2: one-at-a-time removal of the survivors.
  for (std::size_t i = 0; i < current.size() && budget > 0;) {
    std::vector<FaultRecord> candidate = current;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
    if (fails(candidate)) {
      current = std::move(candidate);
    } else {
      ++i;
    }
  }
  return current;
}

CampaignResult FuzzCampaign::Run() {
  const std::vector<FaultRecord>* schedule =
      options_.use_schedule ? &options_.schedule : nullptr;
  CampaignResult result = RunOnce(schedule, /*dump_artifacts=*/true);
  if (!result.ok) {
    if (options_.shrink && !options_.use_schedule && !result.schedule.empty()) {
      result.shrunk_schedule = ShrinkSchedule(result.schedule);
    } else {
      result.shrunk_schedule = result.schedule;
    }
    result.repro = ReproCommand(
        result.shrunk_schedule.empty() ? nullptr : &result.shrunk_schedule);
  }
  return result;
}

}  // namespace vusion
