// Out-of-memory behavior: when the host runs out of frames, engines must degrade
// gracefully (skip acting, keep correctness) rather than corrupt state.

#include <gtest/gtest.h>

#include "src/fusion/ksm.h"
#include "src/fusion/vusion_engine.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

FusionConfig FastFusion() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 128;
  config.pool_frames = 64;
  return config;
}

TEST(OomTest, PoolShrinksWhenMemoryIsTight) {
  MachineConfig machine_config;
  machine_config.frame_count = 512;
  Machine machine(machine_config);
  // Consume almost everything before the engine arrives.
  Process& hog = machine.CreateProcess();
  const VirtAddr base = hog.AllocateRegion(420, PageType::kAnonymous, false, false);
  for (int i = 0; i < 420; ++i) {
    hog.SetupMapPattern(VaddrToVpn(base) + i, i);
  }
  FusionConfig config = FastFusion();
  config.pool_frames = 4096;  // far more than exists
  VUsionEngine engine(machine, config);
  EXPECT_LT(engine.pool().pool_size(), 4096u);
  EXPECT_GT(engine.pool().pool_size(), 0u);
}

TEST(OomTest, VUsionKeepsWorkingWhenBuddyExhausts) {
  MachineConfig machine_config;
  machine_config.frame_count = 1024;
  Machine machine(machine_config);
  VUsionEngine engine(machine, FastFusion());
  engine.Install();
  Process& p = machine.CreateProcess();
  // Fill memory almost completely with mergeable duplicates.
  const std::size_t pages = 850;
  const VirtAddr base = p.AllocateRegion(pages, PageType::kAnonymous, true, false);
  for (std::size_t i = 0; i < pages; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, 0x30 + (i % 8));
  }
  // The engine scans under near-OOM; fusion itself frees memory as it goes.
  machine.Idle(200 * kMillisecond);
  EXPECT_GT(engine.frames_saved(), pages / 2);
  // Every page still readable with correct content.
  PhysicalMemory probe(1);
  for (std::size_t i = 0; i < pages; i += 97) {
    probe.FillPattern(0, 0x30 + (i % 8));
    EXPECT_EQ(p.Read64(base + i * kPageSize), probe.ReadU64(0, 0)) << "page " << i;
  }
  engine.Uninstall();
}

TEST(OomTest, KsmCowFailureSurfacesAsFault) {
  // If the buddy allocator cannot supply a CoW frame, the write faults again and
  // ultimately surfaces as an error instead of silently corrupting the shared copy.
  MachineConfig machine_config;
  machine_config.frame_count = 512;
  Machine machine(machine_config);
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  Process& p = machine.CreateProcess();
  const VirtAddr dup = p.AllocateRegion(2, PageType::kAnonymous, true, false);
  p.SetupMapPattern(VaddrToVpn(dup), 0x1);
  p.SetupMapPattern(VaddrToVpn(dup) + 1, 0x1);
  for (int i = 0; i < 200 && ksm.frames_saved() == 0; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_EQ(ksm.frames_saved(), 1u);
  // Exhaust memory completely.
  Process& hog = machine.CreateProcess();
  const VirtAddr hog_base = hog.AllocateRegion(512, PageType::kAnonymous, false, false);
  std::size_t hogged = 0;
  while (machine.buddy().free_count() > 0) {
    hog.SetupMapZero(VaddrToVpn(hog_base) + hogged++);
  }
  const std::uint64_t shared_content = p.Read64(dup + kPageSize);
  EXPECT_THROW(p.Write64(dup, 0xbad), std::runtime_error);
  // The shared copy was NOT corrupted by the failed CoW.
  EXPECT_EQ(p.Read64(dup + kPageSize), shared_content);
  ksm.Uninstall();
}

TEST(OomTest, SoakChurnWithFusionNearCapacity) {
  // Soak: repeated boot/idle/destroy cycles at ~80% occupancy under VUsion; the
  // system must stay correct and return to baseline every cycle.
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 13;  // 32 MB
  Machine machine(machine_config);
  FusionConfig config = FastFusion();
  config.pool_frames = 256;
  VUsionEngine engine(machine, config);
  engine.Install();
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::vector<Process*> vms;
    for (int v = 0; v < 3; ++v) {
      Process& vm = machine.CreateProcess();
      const VirtAddr base = vm.AllocateRegion(1800, PageType::kAnonymous, true, false);
      for (int i = 0; i < 1800; ++i) {
        vm.SetupMapPattern(VaddrToVpn(base) + i, 0x5000 + (i % 64));
      }
      vms.push_back(&vm);
      machine.Idle(30 * kMillisecond);
    }
    EXPECT_GT(engine.frames_saved(), 2000u) << "cycle " << cycle;
    for (Process* vm : vms) {
      machine.DestroyProcess(*vm);
    }
    machine.Idle(10 * kMillisecond);
    EXPECT_EQ(engine.frames_saved(), 0u);
    EXPECT_EQ(engine.stable_size(), 0u);
  }
  engine.Uninstall();
}

}  // namespace
}  // namespace vusion
