// Per-address-space write epochs: the simulated soft-dirty bit feeding the delta
// scanner's pass cache (src/fusion/delta_scan.h).
//
// Every mapping mutation that could change what a scanner would conclude about a
// page — MapPage/UnmapPage/SetPte, flag updates, huge map/split/collapse — bumps
// the page's epoch (AddressSpace routes all of them here; the only in-place PTE
// writes in the tree are the fault path's accessed/dirty bit fills, which are
// deliberately epoch-free: the accessed bit never changes a scan conclusion, and
// the dirty bit is always accompanied by a content write that moves the frame's
// content generation, which the pass cache checks separately).
//
// Disabled (the default) it is a single branch per PTE write; Machine enables it
// machine-wide when an engine with FusionConfig::delta_scan installs.
//
// Storage is a radix of fixed chunks (vpn high bits -> array of epochs) rather
// than a hash map: the scan path reads one epoch per page per pass, and scans
// walk vpns sequentially, so GetFast's last-chunk memo turns the common case
// into a single array index. Get is the memo-free variant for the parallel
// pipeline's phase-1 workers — const and touch-nothing, so any number of
// threads may call it concurrently while no mutator runs.

#ifndef VUSION_SRC_MMU_WRITE_EPOCH_H_
#define VUSION_SRC_MMU_WRITE_EPOCH_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/mmu/pte.h"

namespace vusion {

class WriteEpochMap {
 public:
  [[nodiscard]] bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }

  void Bump(Vpn vpn) {
    if (enabled_) {
      std::uint64_t& epoch = EnsureSlot(vpn);
      tracked_ += epoch == 0;
      ++epoch;
      ++bumps_;
    }
  }

  void BumpRange(Vpn base, std::uint64_t pages) {
    if (enabled_) {
      for (std::uint64_t i = 0; i < pages; ++i) {
        std::uint64_t& epoch = EnsureSlot(base + i);
        tracked_ += epoch == 0;
        ++epoch;
      }
      bumps_ += pages;
    }
  }

  // Epoch of a page never written since enable is 0; cache entries recorded
  // against epoch 0 stay valid until the first mutation, which is exactly right.
  // Memo-free and side-effect-free: safe for concurrent phase-1 readers.
  [[nodiscard]] std::uint64_t Get(Vpn vpn) const {
    const auto it = chunks_.find(vpn >> kChunkBits);
    return it == chunks_.end() ? 0 : it->second->epochs[vpn & kChunkMask];
  }

  // Get with a last-chunk memo for the serial scan path (sequential vpns hit
  // the memo almost always). Not for concurrent use.
  [[nodiscard]] std::uint64_t GetFast(Vpn vpn) {
    const std::uint64_t key = vpn >> kChunkBits;
    if (memo_ != nullptr && memo_key_ == key) {
      return memo_->epochs[vpn & kChunkMask];
    }
    const auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      return 0;
    }
    memo_key_ = key;
    memo_ = it->second.get();
    return memo_->epochs[vpn & kChunkMask];
  }

  [[nodiscard]] std::uint64_t bumps() const { return bumps_; }
  [[nodiscard]] std::size_t tracked_pages() const { return tracked_; }

  // Savestates (templated on the codec so this hot header stays free of the
  // snapshot include): nonzero epochs, sorted by vpn; the chunk memo is a
  // host-only cache and is reset on restore.
  template <typename Writer>
  void SaveState(Writer& w) const {
    w.Bool(enabled_);
    w.U64(bumps_);
    w.U64(tracked_);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;  // (vpn, epoch)
    for (const auto& [key, chunk] : chunks_) {
      for (std::uint64_t i = 0; i <= kChunkMask; ++i) {
        if (chunk->epochs[i] != 0) {
          entries.emplace_back((key << kChunkBits) | i, chunk->epochs[i]);
        }
      }
    }
    std::sort(entries.begin(), entries.end());
    w.U64(entries.size());
    for (const auto& [vpn, epoch] : entries) {
      w.U64(vpn);
      w.U64(epoch);
    }
  }
  template <typename Reader>
  void RestoreState(Reader& r) {
    enabled_ = r.Bool();
    bumps_ = r.U64();
    tracked_ = r.U64();
    chunks_.clear();
    memo_key_ = 0;
    memo_ = nullptr;
    const std::uint64_t n = r.Count(16);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t vpn = r.U64();
      EnsureSlot(vpn) = r.U64();
    }
    memo_key_ = 0;
    memo_ = nullptr;
  }

 private:
  static constexpr std::uint64_t kChunkBits = 10;  // 1024 pages / 8 KB per chunk
  static constexpr std::uint64_t kChunkMask = (1ull << kChunkBits) - 1;
  struct Chunk {
    std::array<std::uint64_t, 1ull << kChunkBits> epochs{};
  };

  std::uint64_t& EnsureSlot(Vpn vpn) {
    const std::uint64_t key = vpn >> kChunkBits;
    if (memo_ == nullptr || memo_key_ != key) {
      std::unique_ptr<Chunk>& chunk = chunks_[key];
      if (chunk == nullptr) {
        chunk = std::make_unique<Chunk>();
      }
      memo_key_ = key;
      memo_ = chunk.get();
    }
    return memo_->epochs[vpn & kChunkMask];
  }

  bool enabled_ = false;
  std::uint64_t bumps_ = 0;
  std::uint64_t tracked_ = 0;  // slots ever bumped (epochs are monotonic)
  std::unordered_map<std::uint64_t, std::unique_ptr<Chunk>> chunks_;
  std::uint64_t memo_key_ = 0;
  Chunk* memo_ = nullptr;
};

}  // namespace vusion

#endif  // VUSION_SRC_MMU_WRITE_EPOCH_H_
