// Common interface for physical frame allocators. Three implementations model the
// three allocation policies the paper contrasts:
//   BuddyAllocator    - the system allocator (predictable LIFO reuse),
//   LinearAllocator   - WPF's end-of-memory MiAllocatePagesForMdl model,
//   RandomizedPool    - VUsion's Randomized Allocation entropy pool.

#ifndef VUSION_SRC_PHYS_FRAME_ALLOCATOR_H_
#define VUSION_SRC_PHYS_FRAME_ALLOCATOR_H_

#include <cstddef>

#include "src/phys/frame.h"

namespace vusion {

class FrameAllocator {
 public:
  virtual ~FrameAllocator() = default;

  // Returns an allocated frame, or kInvalidFrame when out of memory.
  virtual FrameId Allocate() = 0;

  // Returns a frame to the allocator. The frame must have been allocated (by any
  // allocator sharing the same PhysicalMemory inventory).
  virtual void Free(FrameId frame) = 0;

  [[nodiscard]] virtual std::size_t free_count() const = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_PHYS_FRAME_ALLOCATOR_H_
