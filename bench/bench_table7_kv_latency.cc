// Table 7: Redis and memcached SET/GET latency percentiles. Expected shape: small
// degradation under KSM/VUsion with the tail most affected; VUsion-THP recovers.

#include <cstdio>

#include "src/workload/kv_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void RunStore(const char* store, const KvWorkload::Config& base_config, std::uint64_t seed,
              bench::Reporter& reporter) {
  std::printf("\n--- %s ---\n", store);
  std::printf("%-12s | SET p90/p99/p99.9 (ms)    | GET p90/p99/p99.9 (ms)\n", "system");
  for (const EngineKind kind : EvalEngines()) {
    Scenario scenario(EvalScenario(kind));
    for (int i = 0; i < 3; ++i) {
      scenario.BootVm(EvalImage(), 10 + i);
    }
    Process& server = scenario.machine().CreateProcess();
    KvWorkload::Config config = base_config;
    config.ops = 30000;
    KvWorkload workload(server, config, seed);
    scenario.RunFor(30 * kSecond);
    const KvResult result = workload.Run();
    std::printf("%-12s | %5.2f %5.2f %5.2f          | %5.2f %5.2f %5.2f\n",
                EngineKindName(kind), result.set_p90_ms, result.set_p99_ms,
                result.set_p999_ms, result.get_p90_ms, result.get_p99_ms,
                result.get_p999_ms);
    reporter.AddRow(store, {{"system", EngineKindName(kind)},
                            {"set_p90_ms", result.set_p90_ms},
                            {"set_p99_ms", result.set_p99_ms},
                            {"set_p999_ms", result.set_p999_ms},
                            {"get_p90_ms", result.get_p90_ms},
                            {"get_p99_ms", result.get_p99_ms},
                            {"get_p999_ms", result.get_p999_ms}});
    reporter.AddMetrics(std::string(store) + "/" + EngineKindName(kind),
                        scenario.CollectMetrics());
  }
}

void Run() {
  bench::Reporter reporter("table7_kv_latency");
  reporter.Header("Table 7: Redis / memcached latency percentiles");
  DescribeEval(reporter, EngineKind::kVUsion);
  RunStore("Redis", KvWorkload::RedisConfig(), 5, reporter);
  RunStore("Memcached", KvWorkload::MemcachedConfig(), 6, reporter);
  std::printf("\npaper: VUsion tails slightly above KSM; THP enhancements recover them\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
