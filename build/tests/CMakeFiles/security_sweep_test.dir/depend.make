# Empty dependencies file for security_sweep_test.
# This may be replaced when dependencies are built.
