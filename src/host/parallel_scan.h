// Two-phase deterministic scan pipeline shared by the fusion engines.
//
// Phase 1 (parallel, host-only): the pages selected for a wake quantum are sharded
// across the worker pool; each worker resolves the page's PTE read-only, applies an
// optional engine-supplied read-only filter, and computes the frame's content-hash
// snapshot with PhysicalMemory::PeekHash — no tree, stats, RNG, clock, or trace
// access, and no writes to any simulated state.
//
// Phase 2 (serial, canonical order): on the calling thread, in the exact order the
// scan cursor produced the pages, each snapshot is primed into the frame memo
// (PrimeHash drops stale snapshots) and the engine's unchanged per-page scan body
// runs, charging simulated latencies exactly as the serial reference path does.
// Because priming only ever installs the value HashContent itself would compute,
// simulated stats, traces, and charged timestamps are bit-identical for every
// thread count; see DESIGN.md, "Parallel host, serial sim".

#ifndef VUSION_SRC_HOST_PARALLEL_SCAN_H_
#define VUSION_SRC_HOST_PARALLEL_SCAN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/host/thread_pool.h"
#include "src/mmu/address_space.h"
#include "src/phys/physical_memory.h"

namespace vusion {

class Process;

namespace host {

// One page selected for a wake quantum. The engine fills the identity fields at
// collection time; phase 1 fills frame/snapshot; phase 2 hands the item back to
// the engine's merge callback.
struct ScanItem {
  Process* process = nullptr;       // engine cookie; filters may read it (immutable fields only)
  const AddressSpace* as = nullptr; // PTE resolution target; null if frame is preset
  std::uint32_t pid = 0;            // process id, valid even after the process dies
  Vpn vpn = 0;
  bool wrapped = false;             // cursor completed a full round before this page
  std::size_t index = 0;            // engine cookie (e.g. candidate array position)
  FrameId frame = kInvalidFrame;    // preset by the engine, or resolved in phase 1
  PhysicalMemory::HashSnapshot snapshot{};
  bool hashed = false;
};

// Host wall-clock accounting for the scan sections, exposed so benches can report
// scan-only throughput and project the parallel critical path (sum of phase-1
// chunk times / thread count).
struct ScanTiming {
  std::uint64_t batches = 0;
  std::uint64_t scan_ns = 0;    // whole scan section (collection + both phases)
  std::uint64_t phase1_ns = 0;  // aggregate time inside phase-1 chunks
  std::uint64_t items = 0;      // pages pushed through the pipeline
};

class ParallelScanPipeline {
 public:
  // pool may be null (or single-threaded); phase 1 then runs inline on the caller,
  // which is the degenerate-but-identical form of the same pipeline.
  ParallelScanPipeline(PhysicalMemory& memory, ThreadPool* pool)
      : memory_(&memory), pool_(pool) {}

  // Engine-supplied phase-1 predicate deciding whether a resolved page is worth
  // hashing. Runs on worker threads: it MUST only read state that no phase-2 code
  // is concurrently mutating (there is none during phase 1) and must not write
  // anything. Null = hash every present page.
  using Phase1Filter = std::function<bool(const Pte&, const ScanItem&)>;

  // Engine-supplied phase-1 fast-out for delta scanning: true means the engine
  // expects to replay this page from its pass cache, so resolving and hashing it
  // would be wasted work. Advisory only — phase 2 revalidates authoritatively,
  // and a page skipped here but rejected there simply hashes on demand. Same
  // worker-thread contract as Phase1Filter: read-only, no simulated writes.
  using Phase1Probe = std::function<bool(const ScanItem&)>;

  // Runs both phases over `items` and invokes merge_one(item) serially for every
  // item, in order. Timing for the phase-1 chunks is accumulated into `timing`
  // (the engine wraps the whole scan section for scan_ns itself).
  // `between_phases`, when set, fires on the calling thread after all phase-1
  // workers have joined and before the first merge — the engine uses it to
  // announce the kHashed scan-phase boundary (a hook there may tear down
  // processes, so the engine's merge body re-validates each item).
  void Run(std::vector<ScanItem>& items, ScanTiming& timing,
           const Phase1Filter& filter,
           const std::function<void(ScanItem&)>& merge_one,
           const std::function<void()>& between_phases = nullptr,
           const Phase1Probe& probe = nullptr);

 private:
  void ResolveAndPeek(ScanItem& item, const Phase1Filter& filter) const;

  PhysicalMemory* memory_;
  ThreadPool* pool_;
};

}  // namespace host
}  // namespace vusion

#endif  // VUSION_SRC_HOST_PARALLEL_SCAN_H_
