// A chunked bump allocator with size-bucketed free lists, for the small
// fixed-size nodes the fusion engines churn through every scan pass (rbtree/AVL
// nodes, stable entries, pass-cache hash-map nodes).
//
// Why not the global heap: a steady-state scan pass allocates and frees tens of
// thousands of ~64-byte nodes in tight loops; malloc's bookkeeping and the cache
// misses of a fragmented heap dominate the host cost of the structures
// themselves. The arena hands out nodes from large contiguous chunks (locality)
// and recycles freed blocks through exact-size free lists (O(1), no coalescing).
//
// Host-only: allocation order and addresses never feed the simulated clock or
// any simulated decision (the trees charge size-only descend costs; see
// DESIGN.md "Two clocks"). Not thread safe — all allocation happens on the
// serial simulation thread.

#ifndef VUSION_SRC_CONTAINER_ARENA_H_
#define VUSION_SRC_CONTAINER_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace vusion {

class Arena {
 public:
  static constexpr std::size_t kChunkBytes = 64 * 1024;
  // Freed blocks up to this size are recycled through per-size free lists;
  // larger blocks (rare: oversized STL buckets) are simply dropped until the
  // arena is destroyed. Bounded waste in exchange for O(1) everything.
  static constexpr std::size_t kMaxBucketBytes = 512;
  static constexpr std::size_t kGranularity = alignof(std::max_align_t);

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(std::size_t bytes) {
    bytes = RoundUp(bytes);
    if (bytes <= kMaxBucketBytes) {
      FreeBlock*& head = free_lists_[bytes / kGranularity];
      if (head != nullptr) {
        FreeBlock* block = head;
        head = block->next;
        return block;
      }
    }
    if (bytes > kChunkBytes) {
      // Oversized request: dedicated chunk, never recycled.
      chunks_.push_back(std::make_unique<std::byte[]>(bytes));
      total_bytes_ += bytes;
      return chunks_.back().get();
    }
    if (cursor_ + bytes > chunk_end_) {
      chunks_.push_back(std::make_unique<std::byte[]>(kChunkBytes));
      total_bytes_ += kChunkBytes;
      cursor_ = chunks_.back().get();
      chunk_end_ = cursor_ + kChunkBytes;
    }
    void* out = cursor_;
    cursor_ += bytes;
    return out;
  }

  void Deallocate(void* ptr, std::size_t bytes) {
    bytes = RoundUp(bytes);
    if (ptr == nullptr || bytes > kMaxBucketBytes) {
      return;  // oversized blocks are reclaimed when the arena dies
    }
    auto* block = static_cast<FreeBlock*>(ptr);
    FreeBlock*& head = free_lists_[bytes / kGranularity];
    block->next = head;
    head = block;
  }

  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(alignof(T) <= kGranularity);
    return new (Allocate(sizeof(T))) T(std::forward<Args>(args)...);
  }

  template <typename T>
  void Delete(T* ptr) {
    if (ptr != nullptr) {
      ptr->~T();
      Deallocate(ptr, sizeof(T));
    }
  }

  [[nodiscard]] std::size_t total_bytes() const { return total_bytes_; }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  static constexpr std::size_t RoundUp(std::size_t bytes) {
    const std::size_t rounded = (bytes + kGranularity - 1) & ~(kGranularity - 1);
    return rounded < sizeof(FreeBlock) ? sizeof(FreeBlock) : rounded;
  }

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* cursor_ = nullptr;
  std::byte* chunk_end_ = nullptr;
  std::size_t total_bytes_ = 0;
  FreeBlock* free_lists_[kMaxBucketBytes / kGranularity + 1] = {};
};

// std-allocator adapter so node-based STL containers (the pass cache's
// unordered_maps, the KSM rmap) draw their nodes from an Arena. Copies share the
// underlying arena; equality is arena identity. The arena must outlive every
// container bound to it.
template <typename T>
class ArenaStlAllocator {
 public:
  using value_type = T;

  explicit ArenaStlAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaStlAllocator(const ArenaStlAllocator<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* ptr, std::size_t n) noexcept {
    arena_->Deallocate(ptr, n * sizeof(T));
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaStlAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaStlAllocator<U>& other) const noexcept {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace vusion

#endif  // VUSION_SRC_CONTAINER_ARENA_H_
