#include <gtest/gtest.h>
#include <array>

#include "src/dram/rowhammer.h"

namespace vusion {
namespace {

DramConfig TestDram() {
  DramConfig config;
  config.hammer_threshold = 100;  // cheap hammering in tests
  config.vulnerable_row_fraction = 1.0;
  return config;
}

TEST(DramMappingTest, LocateRoundTrips) {
  DramMapping mapping(TestDram());
  const PhysAddr paddr = 0x123456;
  const DramLocation loc = mapping.Locate(paddr);
  EXPECT_EQ(mapping.RowBase(loc.bank, loc.row) + loc.column, paddr);
}

TEST(DramMappingTest, AdjacentRowsStride) {
  DramMapping mapping(TestDram());
  EXPECT_EQ(mapping.SameBankRowStride(), 8192u * 16u);
  const DramLocation a = mapping.Locate(0);
  const DramLocation b = mapping.Locate(mapping.SameBankRowStride());
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row + 1, b.row);
  EXPECT_EQ(mapping.pages_per_row(), 2u);
}

TEST(RowBufferTest, HitsWithinOpenRow) {
  DramMapping mapping(TestDram());
  VirtualClock clock;
  RowBuffer rb(mapping, clock);
  auto first = rb.Access(0x0);
  EXPECT_FALSE(first.row_hit);
  EXPECT_TRUE(first.activated);
  auto second = rb.Access(0x40);  // same row
  EXPECT_TRUE(second.row_hit);
  auto other_bank = rb.Access(8192);  // next bank, does not close row 0 of bank 0
  EXPECT_FALSE(other_bank.row_hit);
  auto back = rb.Access(0x80);
  EXPECT_TRUE(back.row_hit);
}

TEST(RowBufferTest, ActivationCountsAndEpochReset) {
  DramMapping mapping(TestDram());
  VirtualClock clock;
  RowBuffer rb(mapping, clock);
  const PhysAddr row0 = 0;
  const PhysAddr row1 = mapping.SameBankRowStride();
  for (int i = 0; i < 5; ++i) {
    rb.Access(row0);
    rb.Access(row1);  // closes row0, so next access re-activates
  }
  EXPECT_EQ(rb.activations(0, 0), 5u);
  EXPECT_EQ(rb.activations(0, 1), 5u);
  // Refresh epoch rolls over: counters clear.
  clock.Advance(65 * kMillisecond);
  rb.Access(row0);
  EXPECT_EQ(rb.activations(0, 0), 1u);
}

TEST(RowhammerTest, TemplateIsDeterministic) {
  DramMapping mapping(TestDram());
  VirtualClock clock;
  RowBuffer rb(mapping, clock);
  PhysicalMemory mem(4096);
  RowhammerEngine engine(mapping, rb, mem);
  const auto t1 = engine.TemplateFor(3, 17);
  const auto t2 = engine.TemplateFor(3, 17);
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_FALSE(t1.empty());  // vulnerable_row_fraction = 1.0
  EXPECT_EQ(t1[0].byte_in_row, t2[0].byte_in_row);
  EXPECT_EQ(t1[0].bit, t2[0].bit);
}

TEST(RowhammerTest, DoubleSidedHammerFlipsVictimRow) {
  DramMapping mapping(TestDram());
  VirtualClock clock;
  PhysicalMemory mem(4096);
  // Victim row 1 of bank 0 covers paddr [128K, 128K+8K) => frames 32, 33.
  // All-ones content so every templated cell holds a dischargeable 1.
  const std::array<std::uint8_t, kPageSize> ones = [] {
    std::array<std::uint8_t, kPageSize> buf;
    buf.fill(0xff);
    return buf;
  }();
  for (FrameId f = 0; f < 200; ++f) {
    mem.MarkAllocated(f);
    mem.WriteBytes(f, 0, ones);
  }
  RowBuffer rb(mapping, clock);
  RowhammerEngine engine(mapping, rb, mem);
  const std::uint64_t hash_before = mem.HashContent(32) ^ mem.HashContent(33);

  const PhysAddr row0 = mapping.RowBase(0, 0);
  const PhysAddr row2 = mapping.RowBase(0, 2);
  std::vector<FlipEvent> flips;
  for (std::uint32_t i = 0; i < 150; ++i) {
    auto f1 = engine.OnActivation(rb.Access(row0));
    auto f2 = engine.OnActivation(rb.Access(row2));
    flips.insert(flips.end(), f1.begin(), f1.end());
    flips.insert(flips.end(), f2.begin(), f2.end());
  }
  ASSERT_FALSE(flips.empty());
  for (const FlipEvent& flip : flips) {
    EXPECT_TRUE(flip.frame == 32 || flip.frame == 33) << "flip outside victim row";
  }
  EXPECT_NE(mem.HashContent(32) ^ mem.HashContent(33), hash_before);
}

TEST(RowhammerTest, SingleSidedFlipsOnlyAtMuchHigherCounts) {
  DramConfig config = TestDram();
  config.single_sided_factor = 4;  // flips at 400 activations
  DramMapping mapping(config);
  VirtualClock clock;
  PhysicalMemory mem(4096);
  const std::array<std::uint8_t, kPageSize> ones = [] {
    std::array<std::uint8_t, kPageSize> buf;
    buf.fill(0xff);
    return buf;
  }();
  for (FrameId f = 0; f < 200; ++f) {
    mem.MarkAllocated(f);
    mem.WriteBytes(f, 0, ones);
  }
  RowBuffer rb(mapping, clock);
  RowhammerEngine engine(mapping, rb, mem);
  const PhysAddr hot = mapping.RowBase(0, 2);
  const PhysAddr far_row = mapping.RowBase(0, 20);  // same bank: forces re-activation
  std::size_t flips = 0;
  std::uint32_t below_threshold_flips = 0;
  for (std::uint32_t i = 0; i < 450; ++i) {
    engine.OnActivation(rb.Access(far_row));
    const auto f = engine.OnActivation(rb.Access(hot));
    flips += f.size();
    if (i < 380) {
      below_threshold_flips += f.size();
    }
  }
  EXPECT_EQ(below_threshold_flips, 0u);  // nothing until ~4x the threshold
  EXPECT_GT(flips, 0u);                  // then the neighbours flip
}

TEST(RowhammerTest, SingleSidedDoesNotFlip) {
  DramMapping mapping(TestDram());
  VirtualClock clock;
  PhysicalMemory mem(4096);
  for (FrameId f = 0; f < 200; ++f) {
    mem.MarkAllocated(f);
    mem.FillPattern(f, f);
  }
  RowBuffer rb(mapping, clock);
  RowhammerEngine engine(mapping, rb, mem);
  const PhysAddr row0 = mapping.RowBase(0, 0);
  const PhysAddr far_row = mapping.RowBase(0, 40);  // far away: no shared victim
  for (std::uint32_t i = 0; i < 300; ++i) {
    EXPECT_TRUE(engine.OnActivation(rb.Access(row0)).empty());
    EXPECT_TRUE(engine.OnActivation(rb.Access(far_row)).empty());
  }
}

TEST(RowhammerTest, OnlyOneToZeroFlips) {
  DramMapping mapping(TestDram());
  VirtualClock clock;
  PhysicalMemory mem(4096);
  for (FrameId f = 0; f < 200; ++f) {
    mem.MarkAllocated(f);
    mem.FillZero(f);  // all bits already 0: nothing can discharge
  }
  RowBuffer rb(mapping, clock);
  RowhammerEngine engine(mapping, rb, mem);
  const PhysAddr row0 = mapping.RowBase(0, 0);
  const PhysAddr row2 = mapping.RowBase(0, 2);
  for (std::uint32_t i = 0; i < 150; ++i) {
    for (const FlipEvent& flip : engine.OnActivation(rb.Access(row0))) {
      EXPECT_FALSE(flip.applied);
    }
    for (const FlipEvent& flip : engine.OnActivation(rb.Access(row2))) {
      EXPECT_FALSE(flip.applied);
    }
  }
  EXPECT_TRUE(mem.IsZero(32));
  EXPECT_TRUE(mem.IsZero(33));
}

TEST(RowhammerTest, FlipsOncePerEpoch) {
  DramMapping mapping(TestDram());
  VirtualClock clock;
  PhysicalMemory mem(4096);
  for (FrameId f = 0; f < 200; ++f) {
    mem.MarkAllocated(f);
    mem.FillPattern(f, f);
  }
  RowBuffer rb(mapping, clock);
  RowhammerEngine engine(mapping, rb, mem);
  const PhysAddr row0 = mapping.RowBase(0, 0);
  const PhysAddr row2 = mapping.RowBase(0, 2);
  std::size_t flip_events = 0;
  for (std::uint32_t i = 0; i < 400; ++i) {  // far beyond threshold
    flip_events += engine.OnActivation(rb.Access(row0)).size();
    flip_events += engine.OnActivation(rb.Access(row2)).size();
  }
  const auto expected = engine.TemplateFor(0, 1).size();
  EXPECT_EQ(flip_events, expected);  // victim row 1 flipped exactly once
}

}  // namespace
}  // namespace vusion
