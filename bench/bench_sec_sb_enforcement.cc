// §9.1 "Enforcing SB": Kolmogorov-Smirnov test that access timings on merged and
// unmerged pages follow the same distribution under VUsion, for both reads and
// writes, contrasted with KSM's decisively rejected null hypothesis.

#include <cstdio>

#include "src/attack/cow_side_channel.h"
#include "src/sim/ks_test.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Row(EngineKind kind, bool use_reads, bench::Reporter& reporter) {
  AttackEnvironment env(kind, 1, AttackMachineConfig(), AttackFusionConfig());
  const CowSideChannel::Samples samples = CowSideChannel::Collect(env, 500, use_reads);
  const KsResult ks = KsTwoSample(samples.hit_times, samples.miss_times);
  const bool sb_holds = ks.p_value > 0.05;
  std::printf("%-12s %-8s D=%.3f  p=%-8.3g %s\n", EngineKindName(kind),
              use_reads ? "reads" : "writes", ks.statistic, ks.p_value,
              sb_holds ? "same distribution (SB holds)" : "DISTINGUISHABLE");
  reporter.AddRow("ks_tests", {{"system", EngineKindName(kind)},
                               {"access", use_reads ? "reads" : "writes"},
                               {"statistic", ks.statistic},
                               {"p_value", ks.p_value},
                               {"sb_holds", sb_holds}});
}

void Run() {
  bench::Reporter reporter("sec_sb_enforcement");
  reporter.Header("Security: Same Behaviour enforcement (KS test, 1000 accesses/class)");
  Row(EngineKind::kKsm, /*use_reads=*/false, reporter);
  Row(EngineKind::kVUsion, /*use_reads=*/false, reporter);
  Row(EngineKind::kVUsion, /*use_reads=*/true, reporter);
  std::printf("\npaper: VUsion reads p=0.36 -> merged/unmerged timings indistinguishable\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
