// VM teardown at every scan phase boundary: a phase hook destroys a forked
// child exactly when the engine announces the target phase, for each engine
// and for both the serial and pipelined scan paths. The engine must drop the
// dead process's pages without touching freed state, keep its trees and rmaps
// consistent (machine-wide audit), and keep serving the survivors.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "src/chaos/invariant_auditor.h"
#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

using TeardownParam = std::tuple<EngineKind, ScanPhase, std::size_t>;

class TeardownMidScanTest : public ::testing::TestWithParam<TeardownParam> {
 protected:
  void SetUp() override {
    unsetenv("VUSION_SCAN_THREADS");
    unsetenv("VUSION_SCAN_STREAMING");
    unsetenv("VUSION_SCAN_CHUNK");
  }
};

TEST_P(TeardownMidScanTest, EngineSurvivesTeardownAtPhaseBoundary) {
  const auto [kind, target_phase, threads] = GetParam();
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = 11;
  Machine machine(machine_config);
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 512;
  fusion_config.wpf_period = 5 * kMillisecond;
  fusion_config.scan_threads = threads;
  auto engine = MakeEngine(kind, machine, fusion_config);
  ASSERT_NE(engine, nullptr);
  engine->Install();

  constexpr std::size_t kPages = 192;
  Process& host = machine.CreateProcess();
  const VirtAddr base = host.AllocateRegion(kPages, PageType::kAnonymous, true, true);
  for (std::size_t i = 0; i < kPages; ++i) {
    host.SetupMapPattern(VaddrToVpn(base) + i, 0x6000 + (i % 16));
  }

  std::vector<Process*> children;
  auto refill = [&] {
    while (children.size() < 3) {
      Process& child = machine.ForkProcess(host);
      // Dirty a page so each child holds both CoW-shared and private frames.
      child.Write64(base + (children.size() * 31 % kPages) * kPageSize,
                    0xD00D + children.size());
      children.push_back(&child);
    }
  };
  refill();

  std::size_t phase_hits = 0;
  std::size_t teardowns = 0;
  engine->SetPhaseHook([&](FusionEngine&, ScanPhase phase) {
    if (phase != target_phase) {
      return;
    }
    ++phase_hits;
    if (!children.empty()) {
      machine.DestroyProcess(*children.back());
      children.pop_back();
      ++teardowns;
    }
  });

  for (int round = 0; round < 30; ++round) {
    machine.Idle(2 * kMillisecond);
    refill();  // keep victims available for the next quantum
  }
  engine->SetPhaseHook(nullptr);
  machine.Idle(20 * kMillisecond);

  // kBatchCollected/kHashed only exist on paths that batch: WPF always does,
  // KSM and VUsion only when the scan pipeline is enabled.
  const bool phase_emitted = target_phase == ScanPhase::kQuantumStart ||
                             target_phase == ScanPhase::kQuantumEnd ||
                             kind == EngineKind::kWpf || threads > 1;
  if (phase_emitted) {
    EXPECT_GT(phase_hits, 0u) << ScanPhaseName(target_phase);
    EXPECT_GT(teardowns, 0u);
  }

  // Survivors keep full read/write service after every mid-scan teardown.
  for (std::size_t i = 0; i < kPages; i += 17) {
    host.Write64(base + i * kPageSize, 0xBEEF0000 + i);
    EXPECT_EQ(host.Read64(base + i * kPageSize), 0xBEEF0000 + i);
  }
  machine.Idle(10 * kMillisecond);

  InvariantAuditor auditor(machine);
  const AuditReport report = auditor.Audit(engine.get());
  EXPECT_GT(report.checks, 0u);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  engine->Uninstall();
}

std::string TeardownName(const ::testing::TestParamInfo<TeardownParam>& info) {
  std::string name = EngineKindName(std::get<0>(info.param));
  name += "_";
  name += ScanPhaseName(std::get<1>(info.param));
  name += "_t" + std::to_string(std::get<2>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Engines, TeardownMidScanTest,
    ::testing::Combine(::testing::Values(EngineKind::kKsm, EngineKind::kWpf,
                                         EngineKind::kVUsion),
                       ::testing::Values(ScanPhase::kQuantumStart,
                                         ScanPhase::kBatchCollected,
                                         ScanPhase::kHashed,
                                         ScanPhase::kQuantumEnd),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    TeardownName);

}  // namespace
}  // namespace vusion
