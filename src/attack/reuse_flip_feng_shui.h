// Reuse-based Flip Feng Shui (paper §5.2, Figure 3): even when the fusion system
// backs merged pages with NEW frames (WPF), its allocator's predictable reuse gives
// the attacker control. The attacker (1) merges pair-wise duplicates so fused pages
// land mostly contiguous at the end of memory, (2) templates *the fused frames
// themselves* by hammering through her read-only mappings, (3) releases everything
// via copy-on-write, (4) plants a duplicate of the victim's secret so the next pass
// re-allocates the freed - templated - frames for the new shared copy, and
// (5) hammers again to corrupt the victim's data. Only Randomized Allocation
// (VUsion) breaks the reuse.

#ifndef VUSION_SRC_ATTACK_REUSE_FLIP_FENG_SHUI_H_
#define VUSION_SRC_ATTACK_REUSE_FLIP_FENG_SHUI_H_

#include "src/attack/timing_probe.h"

namespace vusion {

class ReuseFlipFengShui {
 public:
  static AttackOutcome Run(EngineKind kind, std::uint64_t seed);

  // Frame-reuse fraction across two fusion passes (Figure 3's headline metric):
  // runs phases 1-4 and reports |second-pass frames ∩ first-pass frames| / count.
  static double MeasureReuseFraction(EngineKind kind, std::uint64_t seed);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_REUSE_FLIP_FENG_SHUI_H_
