// Tests for the event-tracing subsystem and the runtime scan controls.

#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include "src/fusion/ksm.h"
#include "src/fusion/vusion_engine.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

TEST(TraceBufferTest, DisabledByDefault) {
  TraceBuffer trace;
  trace.Emit(1, TraceEventType::kMerge, 0, 0, 0);
  EXPECT_EQ(trace.total_emitted(), 0u);
  EXPECT_TRUE(trace.Events().empty());
}

TEST(TraceBufferTest, RecordsInOrder) {
  TraceBuffer trace(8);
  trace.set_enabled(true);
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace.Emit(i * 10, TraceEventType::kFault, 1, i, 0);
  }
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].time, i * 10);
    EXPECT_EQ(events[i].vpn, i);
  }
  EXPECT_EQ(trace.count(TraceEventType::kFault), 5u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceBufferTest, RingWrapsKeepingNewest) {
  TraceBuffer trace(4);
  trace.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.Emit(i, TraceEventType::kMerge, 0, i, 0);
  }
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().vpn, 6u);  // oldest retained
  EXPECT_EQ(events.back().vpn, 9u);   // newest
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.total_emitted(), 10u);
}

TEST(TraceBufferTest, SummaryAndClear) {
  TraceBuffer trace;
  trace.set_enabled(true);
  trace.Emit(0, TraceEventType::kMerge, 0, 0, 0);
  trace.Emit(0, TraceEventType::kMerge, 0, 1, 0);
  trace.Emit(0, TraceEventType::kSplit, 0, 2, 0);
  const std::string summary = trace.Summary();
  EXPECT_NE(summary.find("merge=2"), std::string::npos);
  EXPECT_NE(summary.find("split=1"), std::string::npos);
  trace.Clear();
  // Clear drains the ring and per-type counts; lifetime totals survive.
  EXPECT_EQ(trace.total_emitted(), 3u);
  EXPECT_TRUE(trace.Events().empty());
  EXPECT_EQ(trace.count(TraceEventType::kMerge), 0u);
}

TEST(TraceBufferTest, DroppedSurvivesMidRunClear) {
  // Regression: dropped() used to be derived as total_ - occupancy, so a Clear()
  // mid-run erased the record of events already lost to ring overwrites.
  TraceBuffer trace(4);
  trace.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.Emit(i, TraceEventType::kFault, 0, i, 0);
  }
  EXPECT_EQ(trace.dropped(), 6u);
  trace.Clear();
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.total_emitted(), 10u);
  trace.Emit(10, TraceEventType::kFault, 0, 10, 0);
  trace.Emit(11, TraceEventType::kFault, 0, 11, 0);
  EXPECT_EQ(trace.dropped(), 6u);  // ring not full again: nothing new dropped
  EXPECT_EQ(trace.total_emitted(), 12u);
  EXPECT_EQ(trace.Events().size(), 2u);
}

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 8192;
  return config;
}

FusionConfig FastFusion() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 256;
  config.pool_frames = 512;
  return config;
}

TEST(TraceIntegrationTest, KsmEmitsMergeThenCowSequence) {
  Machine machine(SmallMachine());
  machine.trace().set_enabled(true);
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr base = a.AllocateRegion(2, PageType::kAnonymous, true, false);
  a.SetupMapPattern(VaddrToVpn(base), 0x11);
  a.SetupMapPattern(VaddrToVpn(base) + 1, 0x11);
  for (int i = 0; i < 200 && ksm.frames_saved() == 0; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_EQ(machine.trace().count(TraceEventType::kMerge), 1u);
  a.Write64(base, 1);
  EXPECT_EQ(machine.trace().count(TraceEventType::kUnmergeCow), 1u);
  EXPECT_GE(machine.trace().count(TraceEventType::kFault), 1u);
  // Sequence: the merge precedes the unmerge.
  const auto events = machine.trace().Events();
  std::size_t merge_at = 0;
  std::size_t unmerge_at = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == TraceEventType::kMerge) {
      merge_at = i;
    }
    if (events[i].type == TraceEventType::kUnmergeCow) {
      unmerge_at = i;
    }
  }
  EXPECT_LT(merge_at, unmerge_at);
  ksm.Uninstall();
}

TEST(TraceIntegrationTest, VUsionEmitsFakeMergeAndRelocations) {
  Machine machine(SmallMachine());
  machine.trace().set_enabled(true);
  VUsionEngine engine(machine, FastFusion());
  engine.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr base = a.AllocateRegion(4, PageType::kAnonymous, true, false);
  for (int i = 0; i < 4; ++i) {
    a.SetupMapPattern(VaddrToVpn(base) + i, 0x20 + i);
  }
  machine.Idle(30 * kMillisecond);
  EXPECT_GE(machine.trace().count(TraceEventType::kFakeMerge), 4u);
  EXPECT_GE(machine.trace().count(TraceEventType::kRelocate), 4u);
  a.Read64(base);
  EXPECT_EQ(machine.trace().count(TraceEventType::kUnmergeCoa), 1u);
  engine.Uninstall();
}

TEST(RuntimeControlTest, PauseStopsScanningResumeContinues) {
  Machine machine(SmallMachine());
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  ksm.Pause();
  Process& a = machine.CreateProcess();
  const VirtAddr base = a.AllocateRegion(2, PageType::kAnonymous, true, false);
  a.SetupMapPattern(VaddrToVpn(base), 0x31);
  a.SetupMapPattern(VaddrToVpn(base) + 1, 0x31);
  machine.Idle(100 * kMillisecond);
  EXPECT_EQ(ksm.stats().pages_scanned, 0u);
  EXPECT_EQ(ksm.frames_saved(), 0u);
  ksm.Resume();
  for (int i = 0; i < 200 && ksm.frames_saved() == 0; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  EXPECT_EQ(ksm.frames_saved(), 1u);
  ksm.Uninstall();
}

TEST(RuntimeControlTest, ScanRateAdjustsThroughput) {
  Machine machine(SmallMachine());
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr base = a.AllocateRegion(256, PageType::kAnonymous, true, false);
  for (int i = 0; i < 256; ++i) {
    a.SetupMapPattern(VaddrToVpn(base) + i, 0x4000 + i);
  }
  ksm.SetScanRate(10 * kMillisecond, 10);  // slow: 1000 pages/s
  machine.Idle(100 * kMillisecond);
  const std::uint64_t slow_scanned = ksm.stats().pages_scanned;
  EXPECT_LE(slow_scanned, 150u);
  ksm.SetScanRate(1 * kMillisecond, 100);  // fast: 100000 pages/s
  machine.Idle(100 * kMillisecond);
  EXPECT_GT(ksm.stats().pages_scanned - slow_scanned, slow_scanned * 3);
  ksm.Uninstall();
}

}  // namespace
}  // namespace vusion
