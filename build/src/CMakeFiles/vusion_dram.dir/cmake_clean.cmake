file(REMOVE_RECURSE
  "CMakeFiles/vusion_dram.dir/dram/dram_mapping.cc.o"
  "CMakeFiles/vusion_dram.dir/dram/dram_mapping.cc.o.d"
  "CMakeFiles/vusion_dram.dir/dram/row_buffer.cc.o"
  "CMakeFiles/vusion_dram.dir/dram/row_buffer.cc.o.d"
  "CMakeFiles/vusion_dram.dir/dram/rowhammer.cc.o"
  "CMakeFiles/vusion_dram.dir/dram/rowhammer.cc.o.d"
  "libvusion_dram.a"
  "libvusion_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
