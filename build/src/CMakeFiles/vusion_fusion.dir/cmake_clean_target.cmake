file(REMOVE_RECURSE
  "libvusion_fusion.a"
)
