# Empty compiler generated dependencies file for vusion_fusion.
# This may be replaced when dependencies are built.
