# Empty dependencies file for bench_ablation_deferred_free.
# This may be replaced when dependencies are built.
