// Guest VM memory-image generator. A booted VM's memory is populated by category -
// guest kernel, page cache, free ("buddy") pages, anonymous memory - with content
// seeds arranged so that VMs sharing a distro/image produce the cross-VM duplicate
// pages the paper's fusion-rate experiments (Figures 10-12, Table 3) rely on. A
// 44-image catalog models the paper's DAS4 cloud deployment.

#ifndef VUSION_SRC_WORKLOAD_VM_IMAGE_H_
#define VUSION_SRC_WORKLOAD_VM_IMAGE_H_

#include <cstdint>

#include "src/kernel/process.h"

namespace vusion {

struct VmImageSpec {
  std::uint64_t distro_seed = 1;  // kernel + base system content (shared per distro)
  std::uint64_t stack_seed = 1;   // software stack content (shared per image)
  std::uint64_t total_pages = 16384;  // 64 MB guest by default

  // Memory composition (fractions of total_pages).
  double kernel_frac = 0.06;
  double page_cache_frac = 0.46;
  double buddy_frac = 0.28;  // pages sitting free in the guest allocator
  // Remainder is anonymous process memory.

  // Content sharing knobs.
  double cache_distro_shared = 0.70;  // page-cache pages from the distro base
  double cache_stack_shared = 0.20;   // page-cache pages from the image's stack
  double buddy_zero_frac = 0.60;      // free pages that are zero (vs stale content)
  double anon_shared_frac = 0.25;     // anon pages from shared library images

  // Back guest memory with host huge pages where 2 MB-aligned chunks allow. This
  // models KVM guests whose whole (host-anonymous) memory is THP-backed - guest
  // page cache and free pages included.
  bool map_anon_as_thp = false;
};

class VmImage {
 public:
  // Creates a process in the machine and populates it per the spec. instance_seed
  // differentiates the VM-private contents. All regions are madvise-registered.
  static Process& Boot(Machine& machine, const VmImageSpec& spec,
                       std::uint64_t instance_seed);

  // The diverse-VM catalog: 44 images over 7 distro bases (paper §9.3).
  static VmImageSpec CatalogImage(std::size_t index);
  static constexpr std::size_t kCatalogSize = 44;
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_VM_IMAGE_H_
