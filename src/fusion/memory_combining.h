// Windows "Memory Combining" as it exists after Dedup Est Machina (paper §10.1
// related work): active page fusion is disabled; pages are only deduplicated
// inside the compressed in-memory swap cache. Under memory pressure, idle pages
// are swapped into the cache, where identical contents share one compressed
// record; touching a swapped page costs a major fault (decompress + re-allocate).
//
// Security: no page is ever shared between address spaces, so the merge/unmerge
// side channels and Flip Feng Shui have nothing to bite on. Capacity: as the
// paper notes, this design "misses substantial fusion opportunities compared to
// active page fusion" - it saves nothing until the host is under pressure
// (bench_related_memory_combining quantifies the gap).

#ifndef VUSION_SRC_FUSION_MEMORY_COMBINING_H_
#define VUSION_SRC_FUSION_MEMORY_COMBINING_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/fusion/content.h"
#include "src/fusion/fusion_engine.h"

namespace vusion {

class MemoryCombining final : public FusionEngine {
 public:
  MemoryCombining(Machine& machine, const FusionConfig& config);
  ~MemoryCombining() override;

  [[nodiscard]] const char* name() const override { return "MemoryCombining"; }
  // Frames freed by swapping minus the frames backing the compressed cache.
  [[nodiscard]] std::uint64_t frames_saved() const override;

  void Run() override;

  bool HandleFault(Process& process, const PageFault& fault) override;
  bool OnUnmap(Process& process, Vpn vpn) override;
  bool AllowCollapse(Process& process, Vpn base) override;
  bool PrepareCollapse(Process& /*process*/, Vpn /*base*/) override { return true; }
  void OnUnregister(Process& process, Vpn start, std::uint64_t pages) override;
  bool Owns(const Process& process, Vpn vpn) const override { return IsSwapped(process, vpn); }

  // --- Introspection ---

  [[nodiscard]] std::size_t swapped_pages() const { return swapped_.size(); }
  [[nodiscard]] std::size_t unique_records() const { return records_.size(); }
  [[nodiscard]] std::size_t cache_frames() const { return cache_frames_; }
  [[nodiscard]] bool IsSwapped(const Process& process, Vpn vpn) const;
  [[nodiscard]] const std::vector<FrameId>& cache_backing() const { return cache_backing_; }

  // Machine-wide consistency check: swap map, record store, and cache backing
  // must all agree. See src/chaos/invariant_auditor.h.
  void AuditInvariants(AuditContext& ctx) const override;

 private:
  struct Record {
    PhysicalMemory::ContentSnapshot snapshot;
    std::uint32_t refs = 0;
  };

  static std::uint64_t KeyOf(const Process& process, Vpn vpn) {
    return (static_cast<std::uint64_t>(process.id()) << 40) ^ vpn;
  }

  void SwapOutBatch();
  bool SwapOutOne(Process& process, Vpn vpn);
  // Swap-in: major fault servicing; returns false on OOM.
  bool SwapIn(Process& process, Vpn vpn, Record* record, const PageFault& fault);
  void DropRecord(Record* record);
  // Adjusts the real frames reserved for the compressed store.
  void RebalanceCacheFrames();

  ChargedContent content_;
  ScanCursor cursor_;
  // hash -> records with that content hash (collision chain).
  std::unordered_multimap<std::uint64_t, std::unique_ptr<Record>> records_;
  std::unordered_map<std::uint64_t, Record*> swapped_;  // (process, vpn) -> record
  std::uint64_t compressed_bytes_ = 0;
  std::size_t cache_frames_ = 0;  // real frames reserved from the buddy allocator
  std::vector<FrameId> cache_backing_;
  std::uint64_t frames_freed_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_MEMORY_COMBINING_H_
