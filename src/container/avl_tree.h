// A from-scratch AVL tree modeling the balanced trees Windows Page Fusion keeps its
// fused ("combined") pages in. Same probe-based lookup interface as RbTree so the
// fusion engines can share code paths.

#ifndef VUSION_SRC_CONTAINER_AVL_TREE_H_
#define VUSION_SRC_CONTAINER_AVL_TREE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "src/container/arena.h"

namespace vusion {

template <typename T, typename Compare>
class AvlTree {
 public:
  struct Node {
    T value;
    Node* left = nullptr;
    Node* right = nullptr;
    std::int32_t height = 1;
  };

  explicit AvlTree(Compare compare = Compare()) : compare_(std::move(compare)) {}
  ~AvlTree() { ClearRecursive(root_); }

  AvlTree(const AvlTree&) = delete;
  AvlTree& operator=(const AvlTree&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] Compare& comparator() { return compare_; }

  // Routes node allocation through an arena (see src/container/arena.h). Must be
  // called while the tree is empty; the arena must outlive the tree.
  void SetNodeArena(Arena* arena) {
    assert(root_ == nullptr);
    arena_ = arena;
  }

  // Inserts a value (duplicates descend right). Returns comparisons performed.
  std::size_t Insert(T value) {
    std::size_t steps = 0;
    root_ = InsertRecursive(root_, std::move(value), steps);
    ++size_;
    return steps;
  }

  // Probe-based three-way search; see RbTree::Find.
  template <typename Probe>
  std::pair<const T*, std::size_t> Find(Probe&& probe) const {
    Node* cur = root_;
    std::size_t steps = 0;
    while (cur != nullptr) {
      ++steps;
      const int c = probe(cur->value);
      if (c == 0) {
        return {&cur->value, steps};
      }
      cur = (c < 0) ? cur->left : cur->right;
    }
    return {nullptr, steps};
  }

  // Removes the first value matching the probe. Returns true if found.
  template <typename Probe>
  bool RemoveIf(Probe&& probe) {
    bool removed = false;
    root_ = RemoveRecursive(root_, probe, removed);
    if (removed) {
      --size_;
    }
    return removed;
  }

  void Clear() {
    ClearRecursive(root_);
    root_ = nullptr;
    size_ = 0;
  }

  template <typename Visitor>
  void InOrder(Visitor&& visit) const {
    InOrderRecursive(root_, visit);
  }

  // Checks the AVL balance invariant (|balance factor| <= 1 everywhere) and that the
  // cached heights are consistent.
  [[nodiscard]] bool ValidateInvariants() const {
    bool ok = true;
    CheckRecursive(root_, ok);
    return ok;
  }

  // Savestates: structural preorder dump/rebuild (see RbTree::ExportPreorder).
  // Export calls fn(value, height, has_left, has_right) per node in preorder.
  template <typename Fn>
  void ExportPreorder(Fn&& fn) const {
    ExportPreorderRecursive(root_, fn);
  }

  // Rebuilds from the same preorder stream on an empty tree.
  // produce(height, has_left, has_right) returns the node's value; on_node fires
  // with each freshly linked Node* in preorder (so callers holding back-pointers
  // into the tree — WPF's Combined entries — can re-anchor them).
  template <typename Producer, typename OnNode>
  void ImportPreorder(std::size_t count, Producer&& produce, OnNode&& on_node) {
    assert(root_ == nullptr && size_ == 0);
    if (count == 0) {
      return;
    }
    root_ = ImportPreorderRecursive(produce, on_node);
    size_ = count;
  }

 private:
  template <typename Fn>
  void ExportPreorderRecursive(const Node* n, Fn& fn) const {
    if (n == nullptr) {
      return;
    }
    fn(n->value, n->height, n->left != nullptr, n->right != nullptr);
    ExportPreorderRecursive(n->left, fn);
    ExportPreorderRecursive(n->right, fn);
  }

  template <typename Producer, typename OnNode>
  Node* ImportPreorderRecursive(Producer& produce, OnNode& on_node) {
    std::int32_t height = 1;
    bool has_left = false;
    bool has_right = false;
    Node* n = NewNode(produce(height, has_left, has_right));
    n->height = height;
    on_node(n);
    if (has_left) {
      n->left = ImportPreorderRecursive(produce, on_node);
    }
    if (has_right) {
      n->right = ImportPreorderRecursive(produce, on_node);
    }
    return n;
  }

  static std::int32_t HeightOf(const Node* n) { return n == nullptr ? 0 : n->height; }

  static void Update(Node* n) {
    n->height = 1 + std::max(HeightOf(n->left), HeightOf(n->right));
  }

  static Node* RotateRight(Node* y) {
    Node* x = y->left;
    y->left = x->right;
    x->right = y;
    Update(y);
    Update(x);
    return x;
  }

  static Node* RotateLeft(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    y->left = x;
    Update(x);
    Update(y);
    return y;
  }

  static Node* Rebalance(Node* n) {
    Update(n);
    const std::int32_t balance = HeightOf(n->left) - HeightOf(n->right);
    if (balance > 1) {
      if (HeightOf(n->left->left) < HeightOf(n->left->right)) {
        n->left = RotateLeft(n->left);
      }
      return RotateRight(n);
    }
    if (balance < -1) {
      if (HeightOf(n->right->right) < HeightOf(n->right->left)) {
        n->right = RotateRight(n->right);
      }
      return RotateLeft(n);
    }
    return n;
  }

  Node* InsertRecursive(Node* n, T value, std::size_t& steps) {
    if (n == nullptr) {
      return NewNode(std::move(value));
    }
    ++steps;
    if (compare_(value, n->value) < 0) {
      n->left = InsertRecursive(n->left, std::move(value), steps);
    } else {
      n->right = InsertRecursive(n->right, std::move(value), steps);
    }
    return Rebalance(n);
  }

  template <typename Probe>
  Node* RemoveRecursive(Node* n, Probe& probe, bool& removed) {
    if (n == nullptr) {
      return nullptr;
    }
    const int c = probe(n->value);
    if (c < 0) {
      n->left = RemoveRecursive(n->left, probe, removed);
    } else if (c > 0) {
      n->right = RemoveRecursive(n->right, probe, removed);
    } else {
      removed = true;
      if (n->left == nullptr || n->right == nullptr) {
        Node* child = (n->left != nullptr) ? n->left : n->right;
        DeleteNode(n);
        return child;
      }
      // Two children: replace with in-order successor's value.
      Node* succ = n->right;
      while (succ->left != nullptr) {
        succ = succ->left;
      }
      n->value = std::move(succ->value);
      bool inner_removed = false;
      auto exact = [succ](const T&) { return 0; };
      n->right = RemoveExact(n->right, succ, exact, inner_removed);
      assert(inner_removed);
    }
    return Rebalance(n);
  }

  // Removes the specific node `target` (found by pointer identity along the leftmost
  // path), used when deleting a two-child node's successor.
  template <typename Probe>
  Node* RemoveExact(Node* n, Node* target, Probe& probe, bool& removed) {
    if (n == nullptr) {
      return nullptr;
    }
    if (n == target) {
      removed = true;
      Node* child = (n->left != nullptr) ? n->left : n->right;
      DeleteNode(n);
      return child;
    }
    n->left = RemoveExact(n->left, target, probe, removed);
    return Rebalance(n);
  }

  void ClearRecursive(Node* n) {
    if (n == nullptr) {
      return;
    }
    ClearRecursive(n->left);
    ClearRecursive(n->right);
    DeleteNode(n);
  }

  Node* NewNode(T value) {
    if (arena_ != nullptr) {
      return arena_->template New<Node>(Node{std::move(value)});
    }
    return new Node{std::move(value)};
  }

  void DeleteNode(Node* n) {
    if (arena_ != nullptr) {
      arena_->Delete(n);
    } else {
      delete n;
    }
  }

  template <typename Visitor>
  void InOrderRecursive(const Node* n, Visitor& visit) const {
    if (n == nullptr) {
      return;
    }
    InOrderRecursive(n->left, visit);
    visit(n->value);
    InOrderRecursive(n->right, visit);
  }

  std::int32_t CheckRecursive(const Node* n, bool& ok) const {
    if (n == nullptr) {
      return 0;
    }
    const std::int32_t lh = CheckRecursive(n->left, ok);
    const std::int32_t rh = CheckRecursive(n->right, ok);
    if (std::abs(lh - rh) > 1 || n->height != 1 + std::max(lh, rh)) {
      ok = false;
    }
    return 1 + std::max(lh, rh);
  }

  Compare compare_;
  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Arena* arena_ = nullptr;
};

}  // namespace vusion

#endif  // VUSION_SRC_CONTAINER_AVL_TREE_H_
