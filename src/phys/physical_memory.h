// Simulated physical memory: an array of frames with byte-accurate, lazily
// materialized contents, reference counting, and content comparison/hashing for the
// fusion engines.

#ifndef VUSION_SRC_PHYS_PHYSICAL_MEMORY_H_
#define VUSION_SRC_PHYS_PHYSICAL_MEMORY_H_

#include <cstdint>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/phys/frame.h"

namespace vusion {

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class PhysicalMemory {
 public:
  explicit PhysicalMemory(FrameId frame_count);

  // Savestates (src/snapshot/): serializes every frame's canonical state
  // (allocation, refcount, content representation — kBytes buffers deduplicated
  // via CoW-alias backrefs) plus the allocation counters and the pattern-hash
  // cache (whose hit/miss counters are metrics-observable, so membership must
  // survive a round trip). The per-frame hash memo is host-only and reset.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  [[nodiscard]] FrameId frame_count() const { return static_cast<FrameId>(frames_.size()); }
  [[nodiscard]] const Frame& frame(FrameId f) const { return frames_[f]; }
  [[nodiscard]] bool allocated(FrameId f) const { return frames_[f].allocated; }

  // Allocation state is owned by the frame allocators; they call these.
  void MarkAllocated(FrameId f);
  void MarkFree(FrameId f);
  [[nodiscard]] std::size_t allocated_count() const { return allocated_count_; }

  // Reference counting for shared (fused) frames.
  void SetRefcount(FrameId f, std::uint32_t count) { frames_[f].refcount = count; }
  [[nodiscard]] std::uint32_t refcount(FrameId f) const { return frames_[f].refcount; }
  std::uint32_t IncRef(FrameId f) { return ++frames_[f].refcount; }
  std::uint32_t DecRef(FrameId f);

  // --- Content operations ---

  // Resets the frame to all-zero content.
  void FillZero(FrameId f);

  // Fills the frame with the deterministic expansion of `seed`. Two frames filled
  // with the same seed are byte-identical; different seeds differ (with probability
  // 1 - 2^-64, deterministically resolved by byte comparison).
  void FillPattern(FrameId f, std::uint64_t seed);

  // Byte write; materializes pattern/zero frames.
  void WriteBytes(FrameId f, std::size_t offset, std::span<const std::uint8_t> data);
  void WriteU64(FrameId f, std::size_t offset, std::uint64_t value);
  [[nodiscard]] std::uint64_t ReadU64(FrameId f, std::size_t offset) const;
  [[nodiscard]] std::uint8_t ReadByte(FrameId f, std::size_t offset) const;

  // Copies src's full contents to dst (the copy-on-write/copy-on-access primitive).
  void CopyFrame(FrameId dst, FrameId src);

  // Flips one bit (Rowhammer corruption). bit_index in [0, kPageSize*8).
  void FlipBit(FrameId f, std::size_t bit_index);

  // Lexicographic three-way content comparison (memcmp semantics).
  [[nodiscard]] int Compare(FrameId a, FrameId b) const;

  // 64-bit content hash (the ISA-dispatched lane hash from content_isa.h; equal
  // contents hash equal, identical across host ISAs).
  // Memoized per frame via the content generation counter: recomputed only after a
  // mutating operation, O(1) on every other call. The cached fast path is inline;
  // scanners call this once or twice per tree-descend step.
  [[nodiscard]] std::uint64_t HashContent(FrameId f) const {
    const Frame& fr = frames_[f];
    return fr.hash_cached() ? fr.cached_hash : HashContentSlow(f);
  }

  // Prefetches the frame's metadata line (refcount, content generation, hash
  // memo) ahead of a scan touch; the scan loop issues this one page early so
  // the dependent loads start resident.
  void PrefetchFrame(FrameId f) const { __builtin_prefetch(&frames_[f]); }

  // --- Lock-free snapshot accessors (host parallel scan, phase 1) ---
  //
  // PeekHash is HashContent minus every side effect: it never writes the per-frame
  // memo, never touches the pattern-hash cache counters, and never inserts into the
  // cache, so any number of host worker threads may call it concurrently — either
  // while no mutator runs (the barrier pipeline's phase-1 contract) or holding the
  // streaming-scan gate shared while mutators take it exclusive. PrimeHash installs
  // a snapshot into the frame memo from the serial thread, and only if the frame's
  // content generation still matches — a stale snapshot is simply dropped, so a
  // primed memo is always exactly what HashContent would have computed itself.
  // Memo reads/writes that can cross threads go through std::atomic_ref, so the
  // serial thread may prime or hash one frame while workers peek another (or the
  // same) frame concurrently.

  struct HashSnapshot {
    std::uint64_t content_gen = 0;
    std::uint64_t hash = 0;
  };

  [[nodiscard]] HashSnapshot PeekHash(FrameId f) const;
  // Returns true when the snapshot's generation still matches the frame (the
  // speculative hash was fresh — installed into the memo, or already there);
  // false means the frame mutated since the snapshot and it was dropped. The
  // streaming pipeline counts the false returns as conflicts.
  bool PrimeHash(FrameId f, const HashSnapshot& snapshot);

  // --- Streaming-scan gate (decoupled pipeline; DESIGN.md §14) ---
  //
  // While a streaming scan is live, hashing workers run concurrently with the
  // serial merge instead of before it. Workers hold the gate shared around each
  // chunk; content mutators (and pattern-cache writes) take it exclusive, so a
  // worker always sees a frame's {content, content_gen} pair consistent even
  // mid-merge. Begin/End are called by the pipeline on the owning sim thread;
  // outside a streaming scan the `streaming_scan_` short-circuit keeps every
  // mutator lock-free.
  void BeginStreamingScan() { streaming_scan_ = true; }
  void EndStreamingScan() { streaming_scan_ = false; }
  [[nodiscard]] std::shared_mutex& scan_gate() const { return scan_mu_; }

  // Monotonic per-frame content version; bumped by every mutating operation
  // (WriteBytes/WriteU64/FlipBit/CopyFrame/FillZero/FillPattern/Restore). Lets
  // callers memoize any content-derived value with a single integer compare.
  [[nodiscard]] std::uint64_t content_generation(FrameId f) const {
    return frames_[f].content_gen;
  }

  // Machine-wide count of content mutations that hit a *shared* (refcount > 0)
  // frame — i.e. a fused stable copy changing underneath the engines (rowhammer
  // flips, direct corruption). Shared frames are write-protected, so this almost
  // never moves; the delta scanner uses it as a cheap global guard for its
  // memoized "no stable-tree match" conclusions.
  [[nodiscard]] std::uint64_t shared_content_mutations() const {
    return shared_content_mutations_;
  }

  // Hit/miss accounting for the seed-keyed pattern hash cache (bounded; see
  // kPatternHashCacheCap).
  struct PatternHashCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    std::uint64_t evictions = 0;  // hot->cold segment rotations forced by the cap
  };
  [[nodiscard]] PatternHashCacheStats pattern_hash_cache_stats() const {
    return {pattern_hash_hits_, pattern_hash_misses_,
            pattern_hash_hot_.size() + pattern_hash_cold_.size(),
            pattern_hash_evictions_};
  }

  // Total size cap across both cache segments; VM images churn through seeds,
  // so an unbounded cache grows for the lifetime of the simulation.
  static constexpr std::size_t kPatternHashCacheCap = 8192;

  [[nodiscard]] bool IsZero(FrameId f) const;

  // Bytes of host memory actually committed to frame buffers (for scale reporting).
  [[nodiscard]] std::size_t materialized_bytes() const { return materialized_count_ * kPageSize; }
  // Host bytes of the frame metadata table itself (paid per Machine regardless
  // of how many frames hold materialized content).
  [[nodiscard]] std::size_t frame_table_bytes() const {
    return frames_.capacity() * sizeof(Frame);
  }

  // --- Content snapshots (swap/compressed-cache support) ---

  // A frame's contents detached from the frame, so the frame can be freed while the
  // data lives on (e.g. in a compressed in-memory swap cache).
  struct ContentSnapshot {
    ContentKind kind = ContentKind::kZero;
    std::uint64_t pattern_seed = 0;
    std::unique_ptr<PageBytes> bytes;
    std::uint64_t hash = 0;
  };

  [[nodiscard]] ContentSnapshot Snapshot(FrameId f) const;
  void Restore(FrameId f, const ContentSnapshot& snapshot);
  [[nodiscard]] static bool SnapshotsEqual(const ContentSnapshot& a, const ContentSnapshot& b);

 private:
  // RAII exclusive hold of the scan gate, no-op unless a streaming scan is
  // live. Every content mutator takes one; `streaming_scan_` only toggles on
  // the owning sim thread, so the ctor/dtor decision is race-free.
  class ScanGateLock {
   public:
    explicit ScanGateLock(const PhysicalMemory& pm)
        : mu_(pm.streaming_scan_ ? &pm.scan_mu_ : nullptr) {
      if (mu_ != nullptr) mu_->lock();
    }
    ~ScanGateLock() {
      if (mu_ != nullptr) mu_->unlock();
    }
    ScanGateLock(const ScanGateLock&) = delete;
    ScanGateLock& operator=(const ScanGateLock&) = delete;

   private:
    std::shared_mutex* mu_;
  };

  [[nodiscard]] std::uint64_t HashContentSlow(FrameId f) const;
  void Materialize(FrameId f);
  // Clones the frame's buffer if it is CoW-aliased with another frame; every
  // mutator of materialized bytes must call this before writing.
  void Unshare(FrameId f);
  [[nodiscard]] std::uint8_t ByteAt(FrameId f, std::size_t offset) const;

  // Every mutator of frame contents must call this alongside the content_gen
  // bump so shared_content_mutations() stays complete.
  void NoteMutation(FrameId f) {
    if (frames_[f].refcount > 0) {
      ++shared_content_mutations_;
    }
  }

  // Two-segment (hot/cold) lookup for the pattern hash cache. `promote` moves a
  // cold hit into the hot segment and must be false on concurrent (PeekHash)
  // paths. Returns false if the seed is cached in neither segment.
  bool PatternHashLookup(std::uint64_t seed, bool promote, std::uint64_t* out) const;
  void PatternHashInsert(std::uint64_t seed, std::uint64_t hash) const;

  std::vector<Frame> frames_;
  std::size_t allocated_count_ = 0;
  std::size_t materialized_count_ = 0;
  std::uint64_t shared_content_mutations_ = 0;
  // Hash cache for pattern contents, keyed by seed (many frames share an image
  // seed). Segmented LRU-ish eviction: inserts and promoted hits go to the hot
  // segment; when the hot segment reaches half the cap it rotates into the cold
  // segment (dropping the previous cold half), so recently used seeds survive a
  // capacity event instead of the old wholesale clear().
  mutable std::unordered_map<std::uint64_t, std::uint64_t> pattern_hash_hot_;
  mutable std::unordered_map<std::uint64_t, std::uint64_t> pattern_hash_cold_;
  mutable std::uint64_t pattern_hash_hits_ = 0;
  mutable std::uint64_t pattern_hash_misses_ = 0;
  mutable std::uint64_t pattern_hash_evictions_ = 0;
  mutable std::shared_mutex scan_mu_;
  bool streaming_scan_ = false;
};

// Deterministic byte expansion of a pattern seed; exposed for tests.
std::uint8_t PatternByte(std::uint64_t seed, std::size_t offset);

}  // namespace vusion

#endif  // VUSION_SRC_PHYS_PHYSICAL_MEMORY_H_
