#include "src/fusion/content.h"

namespace vusion {

std::uint64_t ChargedContent::Hash(FrameId frame) const {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().content_hash);
  return machine_->memory().HashContent(frame);
}

int ChargedContent::Compare(FrameId a, FrameId b) const {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().content_compare);
  return machine_->memory().Compare(a, b);
}

void ChargedContent::ChargeTreeStep() const {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().tree_step);
}

bool ScanCursor::Next(Process*& process, Vpn& vpn, bool& wrapped) {
  wrapped = false;
  const auto& processes = machine_->processes();
  if (processes.empty()) {
    return false;
  }
  // At most two sweeps over the process list: one to finish the current round and
  // one to prove there is no mergeable memory.
  const std::size_t max_hops = 2 * processes.size() + 2;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    if (process_idx_ >= processes.size()) {
      process_idx_ = 0;
      vma_idx_ = 0;
      page_idx_ = 0;
      wrapped = true;
      continue;
    }
    if (processes[process_idx_] == nullptr) {  // destroyed process slot
      ++process_idx_;
      vma_idx_ = 0;
      page_idx_ = 0;
      continue;
    }
    Process& candidate = *processes[process_idx_];
    const auto& areas = candidate.address_space().vmas().areas();
    while (vma_idx_ < areas.size()) {
      const VmArea& vma = areas[vma_idx_];
      if (!vma.mergeable || page_idx_ >= vma.pages) {
        ++vma_idx_;
        page_idx_ = 0;
        continue;
      }
      process = &candidate;
      vpn = vma.start + page_idx_;
      ++page_idx_;
      return true;
    }
    ++process_idx_;
    vma_idx_ = 0;
    page_idx_ = 0;
  }
  return false;
}

}  // namespace vusion
