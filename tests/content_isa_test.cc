// Property tests for the ISA-dispatched content primitives: every compiled
// implementation must compute the exact same hash, three-way compare, and
// zero verdict as an independently written scalar reference, over random,
// zero, pattern, CoW-aliased, and boundary-byte-differing pages.

#include "src/phys/content_isa.h"

#include <array>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/phys/frame.h"
#include "src/sim/rng.h"

namespace vusion {
namespace {

using Page = std::array<std::uint8_t, kPageSize>;

// Independent reference for the 8-lane FNV page hash, written from the spec in
// content_isa.h rather than shared with the implementation under test.
std::uint64_t RefFin(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RefHash(const std::uint8_t* page) {
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t lanes[8];
  for (std::size_t i = 0; i < 8; ++i) {
    lanes[i] = RefFin(kOffset + 0x9e3779b97f4a7c15ULL * (i + 1));
  }
  for (std::size_t w = 0; w < kPageSize / 8; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, page + w * 8, 8);
    lanes[w % 8] = (lanes[w % 8] ^ word) * kPrime;
  }
  std::uint64_t h = kOffset;
  for (std::size_t i = 0; i < 8; ++i) {
    h = (h ^ RefFin(lanes[i])) * kPrime;
  }
  return h;
}

int RefCompare(const std::uint8_t* a, const std::uint8_t* b) {
  const int c = std::memcmp(a, b, kPageSize);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::vector<const ContentOps*> CompiledOps() {
  std::vector<const ContentOps*> ops;
  ops.push_back(&GetContentOps(ContentIsa::kScalar));
  ops.push_back(&GetContentOps(ContentIsa::kWordwise));
  // May be the wordwise fallback when AVX2 is compiled out or unsupported;
  // testing the fallback twice is harmless.
  ops.push_back(&GetContentOps(ContentIsa::kAvx2));
  return ops;
}

Page RandomPage(Rng& rng) {
  Page p;
  for (std::size_t w = 0; w < kPageSize / 8; ++w) {
    const std::uint64_t v = rng.Next();
    std::memcpy(p.data() + w * 8, &v, 8);
  }
  return p;
}

TEST(ContentIsaTest, HashMatchesReferenceOnRandomPages) {
  Rng rng(0xc0471501);
  for (int iter = 0; iter < 64; ++iter) {
    const Page p = RandomPage(rng);
    const std::uint64_t want = RefHash(p.data());
    for (const ContentOps* ops : CompiledOps()) {
      EXPECT_EQ(ops->hash_page(p.data()), want) << ops->name;
    }
  }
}

TEST(ContentIsaTest, HashOfZeroAndPatternPages) {
  Page zero{};
  const std::uint64_t zero_want = RefHash(zero.data());
  EXPECT_EQ(ZeroPageHash(), zero_want);
  Page pattern;
  for (const std::uint64_t seed : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
    ExpandPattern(seed, pattern.data());
    // The pattern byte stream really is the PatternWord stream.
    for (std::size_t w = 0; w < kPageSize / 8; ++w) {
      std::uint64_t word = 0;
      std::memcpy(&word, pattern.data() + w * 8, 8);
      ASSERT_EQ(word, PatternWord(seed, w));
    }
    const std::uint64_t want = RefHash(pattern.data());
    for (const ContentOps* ops : CompiledOps()) {
      EXPECT_EQ(ops->hash_page(zero.data()), zero_want) << ops->name;
      EXPECT_EQ(ops->hash_page(pattern.data()), want) << ops->name;
    }
  }
}

TEST(ContentIsaTest, CompareMatchesMemcmpIncludingBoundaryBytes) {
  Rng rng(0x51deb00c);
  const Page base = RandomPage(rng);
  // CoW-aliased case: identical buffers (and literally the same buffer).
  Page equal = base;
  for (const ContentOps* ops : CompiledOps()) {
    EXPECT_EQ(ops->compare_pages(base.data(), equal.data()), 0) << ops->name;
    EXPECT_EQ(ops->compare_pages(base.data(), base.data()), 0) << ops->name;
    EXPECT_EQ(ops->hash_page(base.data()), ops->hash_page(equal.data())) << ops->name;
  }
  // Single-byte differences at every lane/vector boundary the kernels care
  // about: first/last byte, SIMD-width edges, word edges, and random offsets.
  std::vector<std::size_t> offsets = {0,    1,    7,    8,    15,   16,  31,
                                      32,   63,   64,   255,  256,  511, 2047,
                                      2048, 4064, 4088, 4094, 4095};
  for (int i = 0; i < 32; ++i) {
    offsets.push_back(rng.Next() % kPageSize);
  }
  for (const std::size_t off : offsets) {
    for (const int delta : {-1, 1}) {
      Page mutated = base;
      mutated[off] = static_cast<std::uint8_t>(mutated[off] + delta);
      const int want = RefCompare(base.data(), mutated.data());
      ASSERT_NE(want, 0);
      for (const ContentOps* ops : CompiledOps()) {
        EXPECT_EQ(ops->compare_pages(base.data(), mutated.data()), want)
            << ops->name << " offset " << off;
        EXPECT_EQ(ops->compare_pages(mutated.data(), base.data()), -want)
            << ops->name << " offset " << off;
        EXPECT_NE(ops->hash_page(mutated.data()), ops->hash_page(base.data()))
            << ops->name << " offset " << off;
      }
    }
  }
}

TEST(ContentIsaTest, IsZeroDetectsEverySingleBitPage) {
  Page page{};
  for (const ContentOps* ops : CompiledOps()) {
    EXPECT_TRUE(ops->is_zero(page.data())) << ops->name;
  }
  for (const std::size_t off :
       {std::size_t{0}, std::size_t{31}, std::size_t{32}, std::size_t{2048},
        std::size_t{4095}}) {
    page[off] = 1;
    for (const ContentOps* ops : CompiledOps()) {
      EXPECT_FALSE(ops->is_zero(page.data())) << ops->name << " offset " << off;
    }
    page[off] = 0;
  }
}

TEST(ContentIsaTest, DispatchTablesAreConsistent) {
  const ContentOps& active = ActiveContentOps();
  EXPECT_STREQ(active.name, ContentIsaName(active.isa));
  EXPECT_EQ(GetContentOps(ContentIsa::kScalar).isa, ContentIsa::kScalar);
  EXPECT_EQ(GetContentOps(ContentIsa::kWordwise).isa, ContentIsa::kWordwise);
}

}  // namespace
}  // namespace vusion
