#include "src/attack/reuse_flip_feng_shui.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/attack/hammer_util.h"

namespace vusion {

namespace {

constexpr std::size_t kPairs = 96;
constexpr std::uint64_t kPairSeedBase = 0xaa000000ULL;
constexpr std::uint64_t kSecretSeedBase = 0x5ec00000ULL;

struct PhaseState {
  VirtAddr attacker_region = 0;
  VirtAddr victim_region = 0;
  std::unordered_set<FrameId> first_pass_frames;
  std::unordered_set<FrameId> second_pass_frames;
  std::unordered_map<FrameId, FoundFlip> templates;
  double reuse_fraction = 0.0;
};

std::vector<RowPage> AttackerPages(VirtAddr region, std::uint64_t seed_base,
                                   std::size_t count) {
  std::vector<RowPage> pages;
  pages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pages.push_back(RowPage{VaddrToVpn(region) + i, kInvalidFrame, seed_base + i / 2});
  }
  return pages;
}

// Phases 1-2: merge pair-wise duplicates, optionally template the fused frames.
void PhaseTemplate(AttackEnvironment& env, PhaseState& state, bool do_hammer) {
  Process& attacker = env.attacker();
  Machine& machine = attacker.machine();
  state.attacker_region =
      attacker.AllocateRegion(2 * kPairs, PageType::kAnonymous, /*mergeable=*/true, false);
  for (std::size_t p = 0; p < kPairs; ++p) {
    attacker.SetupMapPattern(VaddrToVpn(state.attacker_region) + 2 * p, kPairSeedBase + p);
    attacker.SetupMapPattern(VaddrToVpn(state.attacker_region) + 2 * p + 1,
                             kPairSeedBase + p);
  }
  env.WaitFusionRounds(3);

  // Fused frames of the first pass.
  std::vector<RowPage> fused;
  for (std::size_t p = 0; p < kPairs; ++p) {
    const Vpn a = VaddrToVpn(state.attacker_region) + 2 * p;
    const Vpn b = a + 1;
    const FrameId fa = attacker.TranslateFrame(a);
    if (fa != kInvalidFrame && fa == attacker.TranslateFrame(b)) {
      state.first_pass_frames.insert(fa);
      fused.push_back(RowPage{a, fa, kPairSeedBase + p});
    }
  }
  if (!do_hammer || fused.empty()) {
    return;
  }

  // Template the fused frames by hammering through the attacker's own (read-only)
  // mappings; fused frames are mostly contiguous, providing the aggressor rows.
  const RowMap rows = BuildRowMap(attacker, fused);
  const std::uint32_t iterations = machine.config().dram.hammer_threshold + 64;
  for (const auto& [key, row_pages] : rows) {
    if (key.row < 1) {
      continue;
    }
    const auto low = rows.find(RowKey{key.bank, key.row - 1});
    const auto high = rows.find(RowKey{key.bank, key.row + 1});
    if (low == rows.end() || high == rows.end()) {
      continue;
    }
    HammerPair(attacker, VpnToVaddr(low->second.front().vpn),
               VpnToVaddr(high->second.front().vpn), iterations);
    for (const RowPage& page : row_pages) {
      const FrameId frame = attacker.TranslateFrame(page.vpn);
      if (frame == kInvalidFrame) {
        continue;
      }
      const auto flip = FindFlip(machine, frame, page.pattern_seed);
      if (flip.has_value()) {
        state.templates.emplace(frame, *flip);
      }
    }
  }
}

// Phases 3-4: release everything by copy-on-write, plant victim-content duplicates,
// and let the next pass reuse the freed frames.
void PhaseRelease(AttackEnvironment& env, PhaseState& state) {
  Process& attacker = env.attacker();
  Process& victim = env.victim();
  Machine& machine = attacker.machine();

  // Copy-on-write release: the combined frames go back to the allocator.
  for (std::size_t i = 0; i < 2 * kPairs; ++i) {
    attacker.Write64(state.attacker_region + i * kPageSize, 0xdead + i);
  }
  // The attacker rewrites her pages with the victim's sensitive contents (one copy
  // each), and the victim's pages appear with the same contents - every content
  // now duplicated exactly once, as in the paper's attack.
  for (std::size_t i = 0; i < 2 * kPairs; ++i) {
    const FrameId frame =
        attacker.TranslateFrame(VaddrToVpn(state.attacker_region) + i);
    machine.memory().FillPattern(frame, kSecretSeedBase + i);
  }
  state.victim_region =
      victim.AllocateRegion(2 * kPairs, PageType::kAnonymous, /*mergeable=*/true, false);
  for (std::size_t i = 0; i < 2 * kPairs; ++i) {
    victim.SetupMapPattern(VaddrToVpn(state.victim_region) + i, kSecretSeedBase + i);
  }
  env.WaitFusionRounds(3);

  for (std::size_t i = 0; i < 2 * kPairs; ++i) {
    const FrameId frame = victim.TranslateFrame(VaddrToVpn(state.victim_region) + i);
    if (frame != kInvalidFrame &&
        frame == attacker.TranslateFrame(VaddrToVpn(state.attacker_region) + i)) {
      state.second_pass_frames.insert(frame);
    }
  }
  // Figure 3's metric: what fraction of the first pass's (templated) frames backs
  // fused pages again after the second pass.
  if (!state.first_pass_frames.empty()) {
    std::size_t reused = 0;
    for (const FrameId f : state.first_pass_frames) {
      reused += state.second_pass_frames.contains(f) ? 1 : 0;
    }
    state.reuse_fraction =
        static_cast<double>(reused) / static_cast<double>(state.first_pass_frames.size());
  }
}

}  // namespace

double ReuseFlipFengShui::MeasureReuseFraction(EngineKind kind, std::uint64_t seed) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  PhaseState state;
  PhaseTemplate(env, state, /*do_hammer=*/false);
  PhaseRelease(env, state);
  return state.reuse_fraction;
}

AttackOutcome ReuseFlipFengShui::Run(EngineKind kind, std::uint64_t seed) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& attacker = env.attacker();
  Process& victim = env.victim();
  Machine& machine = attacker.machine();

  PhaseState state;
  PhaseTemplate(env, state, /*do_hammer=*/true);
  if (state.first_pass_frames.empty()) {
    return AttackOutcome{false, 0.0, "no pages fused in first pass"};
  }
  if (state.templates.empty()) {
    return AttackOutcome{false, 0.0, "no exploitable templates on fused frames"};
  }
  PhaseRelease(env, state);

  // Phase 5: hammer every template row that is re-covered by the attacker's
  // re-fused pages, then check all victim pages for corruption.
  const std::vector<RowPage> current =
      AttackerPages(state.attacker_region, kSecretSeedBase, 2 * kPairs);
  const RowMap rows = BuildRowMap(attacker, current);
  const DramMapping& mapping = machine.dram_mapping();
  const std::uint32_t iterations = machine.config().dram.hammer_threshold + 64;
  std::size_t hammered = 0;
  for (const auto& [frame, flip] : state.templates) {
    if (!state.second_pass_frames.contains(frame)) {
      continue;
    }
    const RowKey key = RowOfFrame(mapping, frame);
    if (key.row < 1) {
      continue;
    }
    const auto low = rows.find(RowKey{key.bank, key.row - 1});
    const auto high = rows.find(RowKey{key.bank, key.row + 1});
    if (low == rows.end() || high == rows.end()) {
      continue;
    }
    HammerPair(attacker, VpnToVaddr(low->second.front().vpn),
               VpnToVaddr(high->second.front().vpn), iterations);
    ++hammered;
  }

  // Victim-side integrity check at each template's cell.
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < 2 * kPairs; ++i) {
    const Vpn vpn = VaddrToVpn(state.victim_region) + i;
    const FrameId frame = victim.TranslateFrame(vpn);
    const auto tpl = state.templates.find(frame);
    if (tpl == state.templates.end()) {
      continue;
    }
    const std::size_t word = tpl->second.byte & ~std::size_t{7};
    const std::uint64_t expected = ExpectedPatternWord(kSecretSeedBase + i, word);
    const std::uint64_t observed =
        victim.Read64(VpnToVaddr(vpn) + word);
    if (observed != expected) {
      ++corrupted;
    }
  }

  AttackOutcome outcome;
  outcome.success = corrupted > 0;
  outcome.confidence = state.reuse_fraction;
  std::ostringstream detail;
  detail << "reuse=" << state.reuse_fraction << " templates=" << state.templates.size()
         << " hammered=" << hammered << " corrupted_victim_pages=" << corrupted;
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
