// Fleet determinism and isolation tests: stepping N Machines host-parallel
// under the quantum barrier must be bit-identical to serial stepping — per
// Machine: engine stats, frames saved, final clock value, and the full trace
// event stream — at every fleet thread count × scan thread count combination.
// And chaos inside one Machine must never perturb its siblings.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/fusion/fusion_engine.h"

namespace vusion {
namespace {

constexpr std::size_t kMachines = 8;
constexpr std::size_t kVmsPerMachine = 2;

fleet::FleetConfig SmallFleetConfig(std::size_t fleet_threads, std::size_t scan_threads) {
  fleet::FleetConfig config;
  config.machine_count = kMachines;
  config.host_threads = fleet_threads;
  config.vms_per_machine = kVmsPerMachine;
  config.quantum = 2 * kMillisecond;
  config.scenario.engine = EngineKind::kVUsion;
  config.scenario.machine.frame_count = 1u << 13;  // 32 MB per Machine
  config.scenario.fusion.wake_period = 1 * kMillisecond;
  config.scenario.fusion.pages_per_wake = 256;
  config.scenario.fusion.pool_frames = 512;
  config.scenario.fusion.scan_threads = scan_threads;
  // Small images keep the test fast while still producing cross-VM duplicates.
  VmImageSpec image;
  image.total_pages = 1024;
  config.images.assign(kVmsPerMachine, image);
  config.images[1].stack_seed = 7;  // second VM: same distro, different stack
  return config;
}

struct MachineResult {
  FusionStats stats;
  std::uint64_t frames_saved = 0;
  std::uint64_t consumed_frames = 0;
  SimTime final_time = 0;
  std::vector<TraceEvent> trace;
};

std::vector<MachineResult> RunFleet(std::size_t fleet_threads, std::size_t scan_threads,
                                    bool chaos_in_machine0 = false,
                                    bool scan_streaming = true,
                                    std::size_t scan_chunk_pages = 0) {
  fleet::FleetConfig config = SmallFleetConfig(fleet_threads, scan_threads);
  config.scenario.fusion.scan_streaming = scan_streaming;
  config.scenario.fusion.scan_chunk_pages = scan_chunk_pages;
  fleet::Fleet fleet(config);
  for (std::size_t m = 0; m < fleet.size(); ++m) {
    fleet.member(m).machine().trace().set_enabled(true);
  }
  if (chaos_in_machine0) {
    ChaosConfig chaos;
    chaos.seed = 99;
    chaos.SetAllRates(0.02);
    fleet.member(0).machine().EnableChaos(chaos);
  }
  fleet.BootAll();
  fleet.RunFor(40 * kMillisecond);

  std::vector<MachineResult> results(fleet.size());
  for (std::size_t m = 0; m < fleet.size(); ++m) {
    Scenario& member = fleet.member(m);
    MachineResult& r = results[m];
    r.stats = member.engine()->stats();
    r.frames_saved = member.engine()->frames_saved();
    r.consumed_frames = member.consumed_frames();
    r.final_time = member.machine().clock().now();
    r.trace = member.machine().trace().Events();
  }
  return results;
}

void ExpectMachineResultsEqual(const MachineResult& a, const MachineResult& b,
                               const std::string& context) {
  EXPECT_EQ(a.stats.pages_scanned, b.stats.pages_scanned) << context;
  EXPECT_EQ(a.stats.merges, b.stats.merges) << context;
  EXPECT_EQ(a.stats.fake_merges, b.stats.fake_merges) << context;
  EXPECT_EQ(a.stats.unmerges_cow, b.stats.unmerges_cow) << context;
  EXPECT_EQ(a.stats.unmerges_coa, b.stats.unmerges_coa) << context;
  EXPECT_EQ(a.stats.zero_page_merges, b.stats.zero_page_merges) << context;
  EXPECT_EQ(a.stats.full_scans, b.stats.full_scans) << context;
  EXPECT_EQ(a.frames_saved, b.frames_saved) << context;
  EXPECT_EQ(a.consumed_frames, b.consumed_frames) << context;
  EXPECT_EQ(a.final_time, b.final_time) << context;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << context;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i].time, b.trace[i].time) << context << " event " << i;
    ASSERT_EQ(a.trace[i].type, b.trace[i].type) << context << " event " << i;
    ASSERT_EQ(a.trace[i].process_id, b.trace[i].process_id) << context << " event " << i;
    ASSERT_EQ(a.trace[i].vpn, b.trace[i].vpn) << context << " event " << i;
    ASSERT_EQ(a.trace[i].frame, b.trace[i].frame) << context << " event " << i;
  }
}

class FleetParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unsetenv("VUSION_FLEET_THREADS");
    unsetenv("VUSION_SCAN_THREADS");
    unsetenv("VUSION_DELTA_SCAN");
    unsetenv("VUSION_SCAN_STREAMING");
    unsetenv("VUSION_SCAN_CHUNK");
  }
};

TEST_F(FleetParityTest, ParallelSteppingIsBitIdenticalToSerial) {
  const std::vector<MachineResult> reference = RunFleet(1, 1);
  // Sanity: the fleet actually did fusion work worth comparing.
  std::uint64_t total_saved = 0;
  for (const MachineResult& r : reference) {
    EXPECT_GT(r.stats.pages_scanned, 0u);
    // Clocks reach at least fleet time; daemon overruns may push them past it.
    EXPECT_GE(r.final_time, 40 * kMillisecond);
    total_saved += r.frames_saved;
  }
  EXPECT_GT(total_saved, 0u);

  for (const std::size_t fleet_threads : {1u, 2u, 8u}) {
    for (const std::size_t scan_threads : {1u, 4u}) {
      if (fleet_threads == 1 && scan_threads == 1) {
        continue;  // the reference itself
      }
      const std::vector<MachineResult> parallel = RunFleet(fleet_threads, scan_threads);
      ASSERT_EQ(parallel.size(), reference.size());
      for (std::size_t m = 0; m < reference.size(); ++m) {
        ExpectMachineResultsEqual(
            reference[m], parallel[m],
            "machine " + std::to_string(m) + " fleet_threads=" + std::to_string(fleet_threads) +
                " scan_threads=" + std::to_string(scan_threads));
      }
    }
  }
}

TEST_F(FleetParityTest, StreamingScanCellsBitIdenticalToSerial) {
  // A multi-threaded fleet installs its shared pool into every member Machine,
  // so even scan_threads=1 members hash through the decoupled stream while the
  // merge (and sibling stepping) proceeds. Every streaming/chunk cell must be
  // bit-identical to the single-threaded serial reference.
  const std::vector<MachineResult> reference = RunFleet(1, 1);
  struct Cell {
    std::size_t fleet_threads, scan_threads;
    bool streaming;
    std::size_t chunk;
  };
  const Cell cells[] = {
      {8, 1, true, 1},   // fleet pool drives streaming despite scan_threads=1
      {2, 4, true, 1},   // max handoff traffic
      {8, 4, true, 0},   // auto chunk
      {8, 4, false, 0},  // barrier shape under the shared fleet pool
  };
  for (const Cell& cell : cells) {
    const std::vector<MachineResult> run =
        RunFleet(cell.fleet_threads, cell.scan_threads, false, cell.streaming, cell.chunk);
    ASSERT_EQ(run.size(), reference.size());
    for (std::size_t m = 0; m < reference.size(); ++m) {
      ExpectMachineResultsEqual(
          reference[m], run[m],
          "machine " + std::to_string(m) + " fleet_threads=" +
              std::to_string(cell.fleet_threads) + " scan_threads=" +
              std::to_string(cell.scan_threads) + (cell.streaming ? " streaming" : " barrier") +
              " chunk=" + std::to_string(cell.chunk));
    }
  }
}

TEST_F(FleetParityTest, MachinesDifferFromEachOtherButShareImages) {
  // Same images + different machine seeds: siblings must NOT be bit-identical
  // to each other (the per-machine RNG streams diverge), or the fleet would be
  // one machine cloned N times and prove nothing.
  const std::vector<MachineResult> results = RunFleet(2, 1);
  bool any_difference = false;
  for (std::size_t m = 1; m < results.size(); ++m) {
    if (results[m].trace.size() != results[0].trace.size() ||
        results[m].stats.merges != results[0].stats.merges ||
        results[m].final_time != results[0].final_time) {
      any_difference = true;
    }
  }
  for (const MachineResult& r : results) {
    EXPECT_GE(r.final_time, 40 * kMillisecond);
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(FleetParityTest, ChaosInOneMachineDoesNotPerturbSiblings) {
  const std::vector<MachineResult> clean = RunFleet(2, 1, /*chaos_in_machine0=*/false);
  const std::vector<MachineResult> chaotic = RunFleet(2, 1, /*chaos_in_machine0=*/true);
  ASSERT_EQ(clean.size(), chaotic.size());
  // Every sibling of the chaotic machine is bit-identical to the clean run.
  for (std::size_t m = 1; m < clean.size(); ++m) {
    ExpectMachineResultsEqual(clean[m], chaotic[m], "sibling machine " + std::to_string(m));
  }
}

TEST_F(FleetParityTest, EnvOverrideSetsHostThreads) {
  setenv("VUSION_FLEET_THREADS", "4", 1);
  fleet::FleetConfig config;
  config.host_threads = 1;
  config.ApplyEnvOverrides();
  EXPECT_EQ(config.host_threads, 4u);
  unsetenv("VUSION_FLEET_THREADS");
  config.ApplyEnvOverrides();
  EXPECT_EQ(config.host_threads, 4u);  // absent: unchanged

  // The constructor applies the environment itself (the CI hook: the TSan job
  // exports VUSION_FLEET_THREADS=4 to step every fleet in the suite threaded).
  setenv("VUSION_FLEET_THREADS", "2", 1);
  fleet::Fleet fleet(SmallFleetConfig(1, 1));
  EXPECT_EQ(fleet.config().host_threads, 2u);
  unsetenv("VUSION_FLEET_THREADS");
}

TEST_F(FleetParityTest, QuantumHookRunsOncePerMachinePerQuantum) {
  fleet::FleetConfig config = SmallFleetConfig(2, 1);
  config.quantum = 5 * kMillisecond;
  fleet::Fleet fleet(config);
  fleet.BootAll();
  std::vector<int> hook_runs(fleet.size(), 0);
  fleet.SetQuantumHook([&hook_runs](std::size_t m, Scenario&) { ++hook_runs[m]; });
  fleet.RunFor(20 * kMillisecond);  // 4 quanta
  for (std::size_t m = 0; m < fleet.size(); ++m) {
    EXPECT_EQ(hook_runs[m], 4) << "machine " << m;
  }
  EXPECT_EQ(fleet.now(), 20 * kMillisecond);
  EXPECT_EQ(fleet.quantum_costs().size(), 4u);
}

TEST_F(FleetParityTest, TrailingPartialQuantumAdvancesExactly) {
  fleet::FleetConfig config = SmallFleetConfig(1, 1);
  config.quantum = 3 * kMillisecond;
  fleet::Fleet fleet(config);
  fleet.BootAll();
  fleet.RunFor(7 * kMillisecond);  // 3 + 3 + 1
  EXPECT_EQ(fleet.now(), 7 * kMillisecond);
  EXPECT_EQ(fleet.quantum_costs().size(), 3u);
  for (std::size_t m = 0; m < fleet.size(); ++m) {
    EXPECT_GE(fleet.member(m).machine().clock().now(), 7 * kMillisecond);
  }
}

TEST_F(FleetParityTest, CollectMetricsLabelsEveryEntryWithMachineId) {
  fleet::Fleet fleet(SmallFleetConfig(2, 1));
  fleet.BootAll();
  fleet.RunFor(4 * kMillisecond);
  const MetricsSnapshot rollup = fleet.CollectMetrics();
  ASSERT_FALSE(rollup.entries.empty());
  std::vector<bool> seen(fleet.size(), false);
  for (const auto& entry : rollup.entries) {
    ASSERT_FALSE(entry.labels.empty()) << entry.name;
    const auto& [key, value] = entry.labels.back();
    ASSERT_EQ(key, "machine") << entry.name;
    const std::size_t id = std::strtoul(value.c_str(), nullptr, 10);
    ASSERT_LT(id, fleet.size());
    seen[id] = true;
  }
  for (std::size_t m = 0; m < fleet.size(); ++m) {
    EXPECT_TRUE(seen[m]) << "no metrics from machine " << m;
  }
  // Per-machine values stay addressable through the labeled rollup.
  EXPECT_NE(rollup.Find("fault.total", {{"machine", "0"}}), nullptr);
  EXPECT_NE(rollup.Find("fault.total", {{"machine", std::to_string(fleet.size() - 1)}}),
            nullptr);
}

TEST_F(FleetParityTest, FootprintReportsLazyOverheads) {
  fleet::Fleet fleet(SmallFleetConfig(1, 1));
  // Before boot: no VM content, no cache fills, no trace — the per-Machine
  // fixed overhead is essentially the frame table.
  const auto before = fleet.CollectFootprint();
  EXPECT_EQ(before.machines, kMachines);
  const Machine::Footprint fp0 = fleet.member(0).machine().MeasureFootprint();
  EXPECT_EQ(fp0.trace_bytes, 0u) << "trace ring must stay unallocated until enabled+emitting";
  EXPECT_EQ(fp0.cache_bytes, 0u) << "LLC lines must stay unallocated until the first access";
  EXPECT_GT(fp0.frame_table_bytes, 0u);

  fleet.BootAll();
  fleet.RunFor(4 * kMillisecond);
  const auto after = fleet.CollectFootprint();
  // Boot and scanning are FULLY lazy on this path: pattern/zero pages never
  // materialize (content is derived from seeds), the engine's scan hashes
  // from seeds without cache-model accesses, and tracing is off — so the
  // footprint still equals the frame tables alone. This is the frugality the
  // fleet relies on: a booted, scanning Machine costs its frame table.
  EXPECT_EQ(after.total_bytes, before.total_bytes);
  EXPECT_GE(after.max_machine_bytes, after.total_bytes / after.machines);
  EXPECT_GT(after.template_bytes, 0u);
  // Templates are shared: their cost does not scale with machine_count.
  EXPECT_LT(after.template_bytes, kVmsPerMachine * 1024 * sizeof(std::uint64_t) * 2);
}

TEST_F(FleetParityTest, TemplateBootMatchesDirectBoot) {
  // BootFromTemplate(ComputeTemplate(spec, seed)) must be bit-identical to
  // Boot(spec, seed): same mappings, same engine behaviour afterwards.
  const auto run = [](bool via_template) {
    ScenarioConfig config;
    config.engine = EngineKind::kKsm;
    config.machine.frame_count = 1u << 13;
    config.fusion.wake_period = 1 * kMillisecond;
    config.fusion.pages_per_wake = 256;
    Scenario scenario(config);
    VmImageSpec image;
    image.total_pages = 1024;
    if (via_template) {
      scenario.BootVm(*VmImage::ComputeTemplate(image, 0x5eed));
    } else {
      scenario.BootVm(image, 0x5eed);
    }
    scenario.RunFor(20 * kMillisecond);
    return std::tuple{scenario.engine()->stats().merges, scenario.engine()->frames_saved(),
                      scenario.consumed_frames(), scenario.machine().clock().now()};
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace vusion
