// Epoch-based delta scanning: the per-engine pass cache (ISSUE/DESIGN.md §10).
//
// Steady-state fusion scanning is dominated by re-deriving the same conclusion
// about unchanged pages, pass after pass: resolve the PTE, hash the frame,
// descend the trees, decide "nothing to do". The pass cache memoizes that
// conclusion per (process, vpn) together with everything it depended on — the
// page's write epoch (src/mmu/write_epoch.h), the backing frame, the frame's
// content generation, and engine-specific guards (KSM's stable-tree version,
// the machine-wide shared-content mutation count). On the next pass, a page
// whose guards all still hold takes the engine's *replay* path: the recorded
// charge sequence is re-issued Charge() by Charge() (never summed — each charge
// draws noise from the RNG stream) and the same stats/trace effects applied, so
// simulated results are bit-identical to a full scan while the host skips the
// PTE walk, the hashing, and the tree descents.
//
// The cache stores only host-side memoization; it is never consulted for a
// simulated decision that the guards don't fully determine. Anything that could
// change a scan conclusion must either move one of the guards (PTE writes bump
// the epoch, content writes bump the generation) or explicitly invalidate the
// entry (engine hooks on merge/unmerge/teardown and chaos fault paths).
//
// Storage: per process, a radix of fixed arena-backed entry chunks (vpn high
// bits -> array of 512 entries, kind 0 = empty slot) with a last-chunk memo on
// the serial mutating paths. The replay probe — the hottest read in a delta
// scan — is therefore one memo compare plus an array index, not a hash lookup;
// scans walk vpns sequentially so the memo almost always hits. Chunks of dead
// processes are recycled through a free list, so steady-state churn allocates
// nothing.

#ifndef VUSION_SRC_FUSION_DELTA_SCAN_H_
#define VUSION_SRC_FUSION_DELTA_SCAN_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/container/arena.h"
#include "src/mmu/pte.h"
#include "src/phys/frame.h"
#include "src/snapshot/io.h"

namespace vusion {

class MetricsRegistry;

class DeltaPassCache {
 public:
  // One memoized scan conclusion. `kind` is an engine-defined discriminator
  // (each engine declares its own enum, all values nonzero — 0 marks an empty
  // slot); the remaining fields are the recorded guards and replay inputs,
  // interpreted per kind.
  struct Entry {
    std::uint8_t kind = 0;
    FrameId frame = kInvalidFrame;     // backing frame at record time
    std::uint64_t epoch = 0;           // write epoch at record time
    std::uint64_t content_gen = 0;     // frame content generation at record time
    std::uint64_t hash = 0;            // content hash at record time
    std::uint64_t stable_version = 0;  // engine tree-membership version
    std::uint64_t shared_muts = 0;     // PhysicalMemory::shared_content_mutations
    void* ref = nullptr;               // engine-owned pointer (hook-invalidated)
  };

  struct Stats {
    std::uint64_t probes = 0;
    std::uint64_t replays = 0;        // valid entries whose conclusion was replayed
    std::uint64_t misses = 0;         // no entry for the page
    std::uint64_t stale = 0;          // entry found but a guard moved; full scan
    std::uint64_t records = 0;
    std::uint64_t invalidations = 0;  // explicit erases (hooks, chaos fault paths)
    std::uint64_t process_drops = 0;
  };

  DeltaPassCache() = default;
  DeltaPassCache(const DeltaPassCache&) = delete;
  DeltaPassCache& operator=(const DeltaPassCache&) = delete;

  // Returns the entry for (pid, vpn) iff its recorded write epoch matches;
  // otherwise null (a mismatched entry is erased and counted stale). Any further
  // kind-specific validation is the engine's job — on failure it must call
  // Reject() and run the full path.
  Entry* Probe(std::uint32_t pid, Vpn vpn, std::uint64_t epoch) {
    ++stats_.probes;
    Entry* e = FindSlot(pid, vpn);
    if (e == nullptr || e->kind == 0) {
      ++stats_.misses;
      return nullptr;
    }
    if (e->epoch != epoch) {
      ++stats_.stale;
      e->kind = 0;
      --last_pp_->live;
      return nullptr;
    }
    return e;
  }

  // Read-only lookup with no stats, no memo, no erasure (tests, audits, and the
  // parallel pipeline's phase-1 workers — touch-nothing, so any number of
  // threads may call it concurrently while no mutator runs).
  [[nodiscard]] const Entry* Peek(std::uint32_t pid, Vpn vpn) const {
    const auto pit = map_.find(pid);
    if (pit == map_.end()) {
      return nullptr;
    }
    const auto it = pit->second.chunks.find(vpn >> kChunkBits);
    if (it == pit->second.chunks.end()) {
      return nullptr;
    }
    const Entry* e = &it->second[vpn & kChunkMask];
    return e->kind == 0 ? nullptr : e;
  }

  // Read-only epoch check for phase-1 workers: true if an entry exists whose
  // recorded epoch matches. Advisory — Probe() in phase 2 is authoritative.
  [[nodiscard]] bool PeekValid(std::uint32_t pid, Vpn vpn, std::uint64_t epoch) const {
    const Entry* e = Peek(pid, vpn);
    return e != nullptr && e->epoch == epoch;
  }

  // Visits every (pid, vpn, entry), read-only (audits).
  template <typename Visitor>
  void ForEach(Visitor&& visit) const {
    for (const auto& [pid, pp] : map_) {
      for (const auto& [key, chunk] : pp.chunks) {
        for (std::uint64_t i = 0; i < kChunkEntries; ++i) {
          if (chunk[i].kind != 0) {
            visit(pid, (key << kChunkBits) | i, chunk[i]);
          }
        }
      }
    }
  }

  // Counts a successful replay (the engine decided the probed entry is valid).
  void NoteReplay() { ++stats_.replays; }

  // Engine-side validation failed after Probe(): drop the entry, full scan runs.
  void Reject(std::uint32_t pid, Vpn vpn) {
    Entry* e = FindSlot(pid, vpn);
    if (e != nullptr && e->kind != 0) {
      ++stats_.stale;
      e->kind = 0;
      --last_pp_->live;
    }
  }

  // Upserts the entry for (pid, vpn); the caller fills in the fields and must
  // set a nonzero kind (an existing entry keeps its previous field values, as
  // an unordered_map upsert would).
  Entry& Record(std::uint32_t pid, Vpn vpn) {
    ++stats_.records;
    Entry& e = EnsureSlot(pid, vpn);
    last_pp_->live += e.kind == 0;
    return e;
  }

  // Hook invalidation: merge/unmerge/CoW-break/teardown and chaos fault paths.
  void Invalidate(std::uint32_t pid, Vpn vpn) {
    Entry* e = FindSlot(pid, vpn);
    if (e != nullptr && e->kind != 0) {
      ++stats_.invalidations;
      e->kind = 0;
      --last_pp_->live;
    }
  }

  void InvalidateRange(std::uint32_t pid, Vpn start, std::uint64_t pages) {
    for (std::uint64_t i = 0; i < pages; ++i) {
      Invalidate(pid, start + i);
    }
  }

  // O(1 + its chunks) teardown of a dead process's bucket; chunks are recycled.
  void DropProcess(std::uint32_t pid) {
    const auto it = map_.find(pid);
    if (it == map_.end()) {
      return;
    }
    ++stats_.process_drops;
    stats_.invalidations += it->second.live;
    for (auto& [key, chunk] : it->second.chunks) {
      free_chunks_.push_back(chunk);
    }
    if (last_pid_ == pid) {
      last_pp_ = nullptr;
      last_chunk_ = nullptr;
    }
    map_.erase(it);
  }

  void Clear() {
    for (auto& [pid, pp] : map_) {
      for (auto& [key, chunk] : pp.chunks) {
        free_chunks_.push_back(chunk);
      }
    }
    map_.clear();
    last_pp_ = nullptr;
    last_chunk_ = nullptr;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& [pid, pp] : map_) {
      total += pp.live;
    }
    return total;
  }

  // Registers the delta.* counters/gauges (called from engine ExportMetrics).
  void ExportMetrics(MetricsRegistry& registry) const;

  // Savestates: live entries in (pid, vpn) order, then the counters. The chunk
  // radix, memo, and free list are host-side layout and are rebuilt by Record;
  // `encode_ref`/`decode_ref` translate the engine-owned pointer to/from a
  // stable integer (0 = null; only VUsion stores refs).
  template <typename EncodeRef>
  void SaveState(snapshot::SnapshotWriter& w, EncodeRef&& encode_ref) const {
    struct Row {
      std::uint32_t pid;
      Vpn vpn;
      const Entry* e;
    };
    std::vector<Row> rows;
    ForEach([&rows](std::uint32_t pid, Vpn vpn, const Entry& e) {
      rows.push_back(Row{pid, vpn, &e});
    });
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return a.pid != b.pid ? a.pid < b.pid : a.vpn < b.vpn;
    });
    w.U64(rows.size());
    for (const Row& row : rows) {
      w.U32(row.pid);
      w.U64(row.vpn);
      w.U8(row.e->kind);
      w.U32(row.e->frame);
      w.U64(row.e->epoch);
      w.U64(row.e->content_gen);
      w.U64(row.e->hash);
      w.U64(row.e->stable_version);
      w.U64(row.e->shared_muts);
      w.U64(encode_ref(row.e->kind, row.e->ref));
    }
    w.U64(stats_.probes);
    w.U64(stats_.replays);
    w.U64(stats_.misses);
    w.U64(stats_.stale);
    w.U64(stats_.records);
    w.U64(stats_.invalidations);
    w.U64(stats_.process_drops);
  }

  template <typename DecodeRef>
  void RestoreState(snapshot::SnapshotReader& r, DecodeRef&& decode_ref) {
    Clear();
    const std::uint64_t count = r.Count(53);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint32_t pid = r.U32();
      const Vpn vpn = r.U64();
      Entry& e = Record(pid, vpn);
      e.kind = r.U8();
      if (e.kind == 0) {
        throw snapshot::RestoreError("delta", "cache entry with empty kind");
      }
      e.frame = r.U32();
      e.epoch = r.U64();
      e.content_gen = r.U64();
      e.hash = r.U64();
      e.stable_version = r.U64();
      e.shared_muts = r.U64();
      e.ref = decode_ref(e.kind, r.U64());
    }
    // Record() above bumped the counters; the snapshot values are authoritative.
    stats_.probes = r.U64();
    stats_.replays = r.U64();
    stats_.misses = r.U64();
    stats_.stale = r.U64();
    stats_.records = r.U64();
    stats_.invalidations = r.U64();
    stats_.process_drops = r.U64();
  }

 private:
  static constexpr std::uint64_t kChunkBits = 9;  // 512 entries / 32 KB per chunk
  static constexpr std::uint64_t kChunkEntries = 1ull << kChunkBits;
  static constexpr std::uint64_t kChunkMask = kChunkEntries - 1;

  struct PerProcess {
    std::unordered_map<std::uint64_t, Entry*> chunks;
    std::size_t live = 0;  // slots with kind != 0
  };

  Entry* NewChunk() {
    Entry* chunk;
    if (!free_chunks_.empty()) {
      chunk = free_chunks_.back();
      free_chunks_.pop_back();
      for (std::uint64_t i = 0; i < kChunkEntries; ++i) {
        chunk[i] = Entry{};
      }
    } else {
      chunk = static_cast<Entry*>(arena_.Allocate(kChunkEntries * sizeof(Entry)));
      for (std::uint64_t i = 0; i < kChunkEntries; ++i) {
        new (&chunk[i]) Entry{};
      }
    }
    return chunk;
  }

  // Serial-path slot lookup with a (pid, chunk) memo; null if the process or
  // chunk was never recorded. The returned slot may have kind 0 (empty).
  Entry* FindSlot(std::uint32_t pid, Vpn vpn) {
    const std::uint64_t key = vpn >> kChunkBits;
    if (last_chunk_ != nullptr && last_pid_ == pid && last_key_ == key) {
      return &last_chunk_[vpn & kChunkMask];
    }
    if (last_pp_ == nullptr || last_pid_ != pid) {
      const auto it = map_.find(pid);
      if (it == map_.end()) {
        return nullptr;
      }
      last_pid_ = pid;
      last_pp_ = &it->second;
      last_chunk_ = nullptr;
    }
    const auto it = last_pp_->chunks.find(key);
    if (it == last_pp_->chunks.end()) {
      return nullptr;
    }
    last_key_ = key;
    last_chunk_ = it->second;
    return &last_chunk_[vpn & kChunkMask];
  }

  Entry& EnsureSlot(std::uint32_t pid, Vpn vpn) {
    const std::uint64_t key = vpn >> kChunkBits;
    if (last_chunk_ != nullptr && last_pid_ == pid && last_key_ == key) {
      return last_chunk_[vpn & kChunkMask];
    }
    if (last_pp_ == nullptr || last_pid_ != pid) {
      last_pid_ = pid;
      last_pp_ = &map_[pid];
      last_chunk_ = nullptr;
    }
    Entry*& chunk = last_pp_->chunks[key];
    if (chunk == nullptr) {
      chunk = NewChunk();
    }
    last_key_ = key;
    last_chunk_ = chunk;
    return last_chunk_[vpn & kChunkMask];
  }

  Arena arena_;
  std::unordered_map<std::uint32_t, PerProcess> map_;
  std::vector<Entry*> free_chunks_;
  std::uint32_t last_pid_ = 0;
  std::uint64_t last_key_ = 0;
  PerProcess* last_pp_ = nullptr;
  Entry* last_chunk_ = nullptr;
  Stats stats_;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_DELTA_SCAN_H_
