#include "src/workload/vm_image.h"

#include <gtest/gtest.h>

namespace vusion {
namespace {

MachineConfig BigMachine() {
  MachineConfig config;
  config.frame_count = 1u << 15;  // 128 MB
  return config;
}

TEST(VmImageTest, BootPopulatesAllCategories) {
  Machine machine(BigMachine());
  VmImageSpec spec;
  spec.total_pages = 2048;
  Process& vm = VmImage::Boot(machine, spec, /*instance_seed=*/1);
  const VmaList& vmas = vm.address_space().vmas();
  ASSERT_EQ(vmas.areas().size(), 4u);
  std::uint64_t by_type[4] = {0, 0, 0, 0};
  for (const VmArea& vma : vmas.areas()) {
    by_type[static_cast<std::size_t>(vma.type)] += vma.pages;
    EXPECT_TRUE(vma.mergeable);  // all guest memory registered with the host
    // Every page mapped.
    for (Vpn vpn = vma.start; vpn < vma.end(); ++vpn) {
      EXPECT_NE(vm.TranslateFrame(vpn), kInvalidFrame);
    }
  }
  EXPECT_EQ(by_type[0] + by_type[1] + by_type[2] + by_type[3], 2048u);
  EXPECT_NEAR(static_cast<double>(by_type[static_cast<int>(PageType::kPageCache)]) / 2048.0,
              spec.page_cache_frac, 0.01);
  EXPECT_NEAR(static_cast<double>(by_type[static_cast<int>(PageType::kGuestBuddy)]) / 2048.0,
              spec.buddy_frac, 0.01);
}

TEST(VmImageTest, SameImageVmsShareContent) {
  Machine machine(BigMachine());
  VmImageSpec spec;
  spec.total_pages = 1024;
  Process& vm1 = VmImage::Boot(machine, spec, 1);
  Process& vm2 = VmImage::Boot(machine, spec, 2);
  // Count cross-VM duplicate pages by content hash.
  auto hashes_of = [&machine](Process& vm) {
    std::multiset<std::uint64_t> hashes;
    for (const VmArea& vma : vm.address_space().vmas().areas()) {
      for (Vpn vpn = vma.start; vpn < vma.end(); ++vpn) {
        hashes.insert(machine.memory().HashContent(vm.TranslateFrame(vpn)));
      }
    }
    return hashes;
  };
  const auto h1 = hashes_of(vm1);
  const auto h2 = hashes_of(vm2);
  std::size_t shared = 0;
  for (const std::uint64_t h : h1) {
    shared += h2.contains(h) ? 1 : 0;
  }
  // Kernel (all), distro page cache (~60% of 40%), zero buddy pages etc. add up to
  // well over a third of the image.
  EXPECT_GT(shared, 1024u / 3);
}

TEST(VmImageTest, DifferentDistrosShareLess) {
  Machine machine(BigMachine());
  VmImageSpec spec_a = VmImage::CatalogImage(0);
  VmImageSpec spec_b = VmImage::CatalogImage(1);  // different distro base
  spec_a.total_pages = 1024;
  spec_b.total_pages = 1024;
  ASSERT_NE(spec_a.distro_seed, spec_b.distro_seed);
  Process& vm_same1 = VmImage::Boot(machine, spec_a, 1);
  Process& vm_same2 = VmImage::Boot(machine, spec_a, 2);
  Process& vm_other = VmImage::Boot(machine, spec_b, 3);

  auto shared_pages = [&machine](Process& x, Process& y) {
    std::multiset<std::uint64_t> hx;
    for (const VmArea& vma : x.address_space().vmas().areas()) {
      for (Vpn vpn = vma.start; vpn < vma.end(); ++vpn) {
        hx.insert(machine.memory().HashContent(x.TranslateFrame(vpn)));
      }
    }
    std::size_t shared = 0;
    for (const VmArea& vma : y.address_space().vmas().areas()) {
      for (Vpn vpn = vma.start; vpn < vma.end(); ++vpn) {
        shared += hx.contains(machine.memory().HashContent(y.TranslateFrame(vpn))) ? 1 : 0;
      }
    }
    return shared;
  };
  EXPECT_GT(shared_pages(vm_same1, vm_same2), shared_pages(vm_same1, vm_other));
}

TEST(VmImageTest, CatalogCoversDistinctImages) {
  std::set<std::uint64_t> stacks;
  std::set<std::uint64_t> distros;
  for (std::size_t i = 0; i < VmImage::kCatalogSize; ++i) {
    const VmImageSpec spec = VmImage::CatalogImage(i);
    stacks.insert(spec.stack_seed);
    distros.insert(spec.distro_seed);
  }
  EXPECT_EQ(stacks.size(), VmImage::kCatalogSize);  // every image unique
  EXPECT_EQ(distros.size(), 7u);                    // over 7 distro bases
}

TEST(VmImageTest, ThpImagesUseHugeMappings) {
  Machine machine(BigMachine());
  VmImageSpec spec;
  spec.total_pages = 4096;
  spec.map_anon_as_thp = true;
  VmImage::Boot(machine, spec, 1);
  EXPECT_GT(machine.CountHugeMappings(), 0u);
}

}  // namespace
}  // namespace vusion
