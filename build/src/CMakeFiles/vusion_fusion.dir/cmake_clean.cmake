file(REMOVE_RECURSE
  "CMakeFiles/vusion_fusion.dir/fusion/content.cc.o"
  "CMakeFiles/vusion_fusion.dir/fusion/content.cc.o.d"
  "CMakeFiles/vusion_fusion.dir/fusion/deferred_free.cc.o"
  "CMakeFiles/vusion_fusion.dir/fusion/deferred_free.cc.o.d"
  "CMakeFiles/vusion_fusion.dir/fusion/engine_factory.cc.o"
  "CMakeFiles/vusion_fusion.dir/fusion/engine_factory.cc.o.d"
  "CMakeFiles/vusion_fusion.dir/fusion/fusion_stats.cc.o"
  "CMakeFiles/vusion_fusion.dir/fusion/fusion_stats.cc.o.d"
  "CMakeFiles/vusion_fusion.dir/fusion/ksm.cc.o"
  "CMakeFiles/vusion_fusion.dir/fusion/ksm.cc.o.d"
  "CMakeFiles/vusion_fusion.dir/fusion/memory_combining.cc.o"
  "CMakeFiles/vusion_fusion.dir/fusion/memory_combining.cc.o.d"
  "CMakeFiles/vusion_fusion.dir/fusion/vusion_engine.cc.o"
  "CMakeFiles/vusion_fusion.dir/fusion/vusion_engine.cc.o.d"
  "CMakeFiles/vusion_fusion.dir/fusion/wpf.cc.o"
  "CMakeFiles/vusion_fusion.dir/fusion/wpf.cc.o.d"
  "libvusion_fusion.a"
  "libvusion_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
