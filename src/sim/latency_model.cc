#include "src/sim/latency_model.h"

#include <cmath>

namespace vusion {

SimTime LatencyModel::Charge(SimTime base) {
  SimTime cost = base;
  if (config_.noise_sigma > 0.0 && base > 0) {
    const double noisy = rng_.NextLogNormal(static_cast<double>(base), config_.noise_sigma);
    cost = static_cast<SimTime>(std::llround(noisy));
    if (cost == 0) {
      cost = 1;
    }
  }
  clock_->Advance(cost);
  return cost;
}

SimTime LatencyModel::ChargeExact(SimTime base) {
  clock_->Advance(base);
  return base;
}

}  // namespace vusion
