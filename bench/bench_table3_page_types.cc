// Table 3: contribution of page types to page fusion (page cache / guest-free
// "buddy" / kernel / rest). Expected shape: page cache ~half, buddy pages the next
// largest share, kernel single digits.

#include <cstdio>

#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("table3_page_types");
  reporter.Header("Table 3: contribution of page types to page fusion (%)");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::printf("%-12s %-14s %-10s %-10s %-10s\n", "system", "page cache", "buddy", "kernel",
              "rest");
  for (const EngineKind kind :
       {EngineKind::kKsm, EngineKind::kVUsion, EngineKind::kVUsionThp}) {
    Scenario scenario(EvalScenario(kind));
    for (int i = 0; i < 4; ++i) {
      scenario.BootVm(EvalImage(), 40 + i);
    }
    scenario.RunFor(120 * kSecond);
    const auto& by_type = scenario.engine()->stats().merges_by_type;
    double total = 0.0;
    for (const std::uint64_t count : by_type) {
      total += static_cast<double>(count);
    }
    if (total == 0.0) {
      total = 1.0;
    }
    const double cache_pct = 100.0 * by_type[static_cast<int>(PageType::kPageCache)] / total;
    const double buddy_pct = 100.0 * by_type[static_cast<int>(PageType::kGuestBuddy)] / total;
    const double kernel_pct = 100.0 * by_type[static_cast<int>(PageType::kGuestKernel)] / total;
    const double rest_pct = 100.0 * by_type[static_cast<int>(PageType::kAnonymous)] / total;
    std::printf("%-12s %-14.1f %-10.1f %-10.1f %-10.1f\n", EngineKindName(kind), cache_pct,
                buddy_pct, kernel_pct, rest_pct);
    reporter.AddRow("page_types", {{"system", EngineKindName(kind)},
                                   {"page_cache_pct", cache_pct},
                                   {"buddy_pct", buddy_pct},
                                   {"kernel_pct", kernel_pct},
                                   {"rest_pct", rest_pct}});
    reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  }
  std::printf("\npaper (KSM row): page cache 51.8, buddy 38.4, kernel 6.9, rest 2.9\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
