# Empty compiler generated dependencies file for bench_table5_apache.
# This may be replaced when dependencies are built.
