file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_idle_vms.dir/bench_fig10_idle_vms.cc.o"
  "CMakeFiles/bench_fig10_idle_vms.dir/bench_fig10_idle_vms.cc.o.d"
  "bench_fig10_idle_vms"
  "bench_fig10_idle_vms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_idle_vms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
