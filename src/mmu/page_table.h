// Four-level x86-64-style page table.
//
// Each table node occupies a real simulated frame, and timed walks report the
// physical addresses of the entries they touch, so page-table lookups are visible in
// the LLC simulator. That is the property the AnC-style translation attack (§5.1
// "Translation changes") depends on: a 2 MB huge mapping resolves at the PMD level
// (3 touched levels), a split 4 KB mapping needs the extra PT level (4 touched).

#ifndef VUSION_SRC_MMU_PAGE_TABLE_H_
#define VUSION_SRC_MMU_PAGE_TABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/cache/llc.h"
#include "src/mmu/pte.h"
#include "src/phys/frame_allocator.h"
#include "src/phys/physical_memory.h"

namespace vusion {

constexpr int kPageTableLevels = 4;
constexpr std::size_t kPtFanout = 512;
constexpr std::size_t kPteBytes = 8;

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class PageTable {
 public:
  // Table node frames come from `allocator` (normally the buddy allocator).
  PageTable(FrameAllocator& allocator, PhysicalMemory& memory);
  ~PageTable();

  // Savestates: serializes the node tree structurally (levels, node frames,
  // entries). Restore rebuilds nodes with the *recorded* frames, bypassing the
  // allocator entirely — the buddy free lists are restored wholesale by the
  // Machine, so returning the old nodes' frames would double-free them. The
  // resolve memo is host-only and dropped.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Resolves a VPN to its PTE slot. With create=true, intermediate tables are
  // allocated on demand. Returns nullptr if absent (create=false). If the VPN is
  // covered by a huge mapping, the PMD entry is returned.
  //
  // The non-const overload memoizes the last PMD-level and leaf nodes, so the
  // scanners' sequential walks touch one node instead of four — and a repeat
  // hit on the same 2 MB region (511 of 512 sequential vpns) is a single
  // inline indexed load. The const overload never touches the memo: it is the
  // one called from parallel phase-1 workers, which may resolve in the same
  // address space concurrently.
  Pte* Resolve(Vpn vpn, bool create) {
    if ((vpn >> 9) == memo_region_ && memo_leaf_ != nullptr) {
      return &memo_leaf_->entries[IndexAt(vpn, 0)];
    }
    return ResolveSlow(vpn, create);
  }
  [[nodiscard]] const Pte* Resolve(Vpn vpn) const;

  struct WalkResult {
    Pte* pte = nullptr;
    // Physical addresses of the page-table entries examined, top level first.
    std::vector<PhysAddr> touched;
  };

  // Like Resolve(create=false) but reports the PT entry addresses touched, for the
  // cache-timed walk in the memory hierarchy.
  WalkResult TimedWalk(Vpn vpn);

  // Maps 512 aligned pages as one huge PMD entry. vpn must be 512-aligned. Any
  // existing 4 KB mappings under the range are destroyed (their PT node is freed).
  void MapHuge(Vpn vpn, FrameId frame_base, std::uint16_t flags);

  // Splits a huge PMD entry into 512 PTEs mapping frame_base+i with the same flags
  // (minus kPteHuge). Returns false if the entry is not huge.
  bool SplitHuge(Vpn vpn);

  // True if vpn is covered by a huge mapping.
  [[nodiscard]] bool IsHuge(Vpn vpn) const;

  // Calls fn(vpn, pte) for every present or reserved-trapped leaf mapping in
  // [start, end). Huge entries are visited once with their base VPN.
  void ForEachEntry(Vpn start, Vpn end, const std::function<void(Vpn, Pte&)>& fn);

  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  // Appends the frames backing every table node (frame-accounting audits).
  void CollectNodeFrames(std::vector<FrameId>& out) const;

 private:
  struct Node {
    FrameId frame = kInvalidFrame;
    int level = 0;  // 3 = PGD ... 0 = PT
    std::vector<std::unique_ptr<Node>> children;  // non-leaf: fanout entries
    std::vector<Pte> entries;                     // leaf PTEs, or PMD huge entries
  };

  std::unique_ptr<Node> NewNode(int level);
  void FreeNode(Node* node);
  Pte* ResolveSlow(Vpn vpn, bool create);
  static std::size_t IndexAt(Vpn vpn, int level) {
    return (vpn >> (9 * level)) & (kPtFanout - 1);
  }
  [[nodiscard]] PhysAddr EntryAddr(const Node& node, std::size_t index) const {
    return static_cast<PhysAddr>(node.frame) * kPageSize + index * kPteBytes;
  }
  void ForEachRecursive(Node* node, Vpn base, Vpn start, Vpn end,
                        const std::function<void(Vpn, Pte&)>& fn);

  FrameAllocator* allocator_;
  PhysicalMemory* memory_;
  std::unique_ptr<Node> root_;
  std::size_t node_count_ = 0;
  // Last PMD and leaf nodes resolved by the non-const Resolve, keyed by
  // vpn >> 9 (the 2 MB region they cover). Dropped whenever any node is freed;
  // attaching new children never moves existing nodes, so creation needs no
  // invalidation. memo_leaf_ is set only when the region resolves through a
  // 4 KB leaf (never for a huge PMD entry), so a leaf hit can return the PTE
  // without re-checking the huge bit.
  Vpn memo_region_ = ~Vpn{0};
  Node* memo_pmd_ = nullptr;
  Node* memo_leaf_ = nullptr;
};

}  // namespace vusion

#endif  // VUSION_SRC_MMU_PAGE_TABLE_H_
