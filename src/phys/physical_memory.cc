#include "src/phys/physical_memory.h"

#include <cassert>
#include <cstring>

namespace vusion {

namespace {

// One SplitMix64 step; the pattern byte stream is the little-endian concatenation of
// successive outputs seeded by the pattern seed.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t PatternWord(std::uint64_t seed, std::size_t word_index) {
  return Mix(seed + 0x632be59bd9b4e019ULL * (word_index + 1));
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

}  // namespace

std::uint8_t PatternByte(std::uint64_t seed, std::size_t offset) {
  const std::uint64_t word = PatternWord(seed, offset / 8);
  return static_cast<std::uint8_t>(word >> (8 * (offset % 8)));
}

PhysicalMemory::PhysicalMemory(FrameId frame_count) : frames_(frame_count) {}

void PhysicalMemory::MarkAllocated(FrameId f) {
  assert(!frames_[f].allocated);
  frames_[f].allocated = true;
  ++allocated_count_;
}

void PhysicalMemory::MarkFree(FrameId f) {
  assert(frames_[f].allocated);
  frames_[f].allocated = false;
  frames_[f].refcount = 0;
  --allocated_count_;
}

std::uint32_t PhysicalMemory::DecRef(FrameId f) {
  assert(frames_[f].refcount > 0);
  return --frames_[f].refcount;
}

void PhysicalMemory::FillZero(FrameId f) {
  Frame& fr = frames_[f];
  if (fr.bytes != nullptr) {
    fr.bytes.reset();
    --materialized_count_;
  }
  fr.kind = ContentKind::kZero;
  fr.pattern_seed = 0;
  ++fr.content_gen;
  NoteMutation(f);
}

void PhysicalMemory::FillPattern(FrameId f, std::uint64_t seed) {
  Frame& fr = frames_[f];
  if (fr.bytes != nullptr) {
    fr.bytes.reset();
    --materialized_count_;
  }
  fr.kind = ContentKind::kPattern;
  fr.pattern_seed = seed;
  ++fr.content_gen;
  NoteMutation(f);
}

void PhysicalMemory::Unshare(FrameId f) {
  Frame& fr = frames_[f];
  if (fr.bytes.use_count() > 1) {
    fr.bytes = std::make_shared<PageBytes>(*fr.bytes);
  }
}

void PhysicalMemory::Materialize(FrameId f) {
  Frame& fr = frames_[f];
  if (fr.kind == ContentKind::kBytes) {
    return;
  }
  auto buf = std::make_shared<PageBytes>();
  if (fr.kind == ContentKind::kZero) {
    buf->fill(0);
  } else {
    for (std::size_t w = 0; w < kPageSize / 8; ++w) {
      const std::uint64_t word = PatternWord(fr.pattern_seed, w);
      std::memcpy(buf->data() + w * 8, &word, 8);
    }
  }
  fr.bytes = std::move(buf);
  fr.kind = ContentKind::kBytes;
  ++materialized_count_;
}

void PhysicalMemory::WriteBytes(FrameId f, std::size_t offset,
                                std::span<const std::uint8_t> data) {
  assert(offset + data.size() <= kPageSize);
  Materialize(f);
  Unshare(f);
  std::memcpy(frames_[f].bytes->data() + offset, data.data(), data.size());
  ++frames_[f].content_gen;
  NoteMutation(f);
}

void PhysicalMemory::WriteU64(FrameId f, std::size_t offset, std::uint64_t value) {
  std::uint8_t raw[8];
  std::memcpy(raw, &value, 8);
  WriteBytes(f, offset, raw);
}

std::uint8_t PhysicalMemory::ByteAt(FrameId f, std::size_t offset) const {
  const Frame& fr = frames_[f];
  switch (fr.kind) {
    case ContentKind::kZero:
      return 0;
    case ContentKind::kPattern:
      return PatternByte(fr.pattern_seed, offset);
    case ContentKind::kBytes:
      return (*fr.bytes)[offset];
  }
  return 0;
}

std::uint64_t PhysicalMemory::ReadU64(FrameId f, std::size_t offset) const {
  assert(offset + 8 <= kPageSize);
  const Frame& fr = frames_[f];
  if (fr.kind == ContentKind::kBytes) {
    std::uint64_t value = 0;
    std::memcpy(&value, fr.bytes->data() + offset, 8);
    return value;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(ByteAt(f, offset + i)) << (8 * i);
  }
  return value;
}

std::uint8_t PhysicalMemory::ReadByte(FrameId f, std::size_t offset) const {
  assert(offset < kPageSize);
  return ByteAt(f, offset);
}

void PhysicalMemory::CopyFrame(FrameId dst, FrameId src) {
  Frame& d = frames_[dst];
  const Frame& s = frames_[src];
  ++d.content_gen;
  NoteMutation(dst);
  // The copy inherits the source's cached hash (valid or not at the new generation).
  d.cached_hash = s.cached_hash;
  d.hash_gen = s.hash_cached() ? d.content_gen : 0;
  if (s.kind == ContentKind::kBytes) {
    // Alias the buffer copy-on-write instead of copying 4 KB; a later write to
    // either frame clones it (Unshare).
    if (d.bytes == nullptr) {
      ++materialized_count_;
    }
    d.bytes = s.bytes;
    d.kind = ContentKind::kBytes;
    return;
  }
  if (d.bytes != nullptr) {
    d.bytes.reset();
    --materialized_count_;
  }
  d.kind = s.kind;
  d.pattern_seed = s.pattern_seed;
}

void PhysicalMemory::FlipBit(FrameId f, std::size_t bit_index) {
  assert(bit_index < kPageSize * 8);
  Materialize(f);
  Unshare(f);
  (*frames_[f].bytes)[bit_index / 8] ^= static_cast<std::uint8_t>(1U << (bit_index % 8));
  ++frames_[f].content_gen;
  NoteMutation(f);
}

int PhysicalMemory::Compare(FrameId a, FrameId b) const {
  if (a == b) {
    return 0;
  }
  const Frame& fa = frames_[a];
  const Frame& fb = frames_[b];
  // Fast paths that avoid byte generation.
  if (fa.kind == ContentKind::kZero && fb.kind == ContentKind::kZero) {
    return 0;
  }
  if (fa.kind == ContentKind::kPattern && fb.kind == ContentKind::kPattern &&
      fa.pattern_seed == fb.pattern_seed) {
    return 0;
  }
  if (fa.kind == ContentKind::kBytes && fb.kind == ContentKind::kBytes) {
    if (fa.bytes == fb.bytes) {
      return 0;  // CoW-aliased buffers are byte-identical by construction
    }
    return std::memcmp(fa.bytes->data(), fb.bytes->data(), kPageSize);
  }
  for (std::size_t i = 0; i < kPageSize; ++i) {
    const std::uint8_t ba = ByteAt(a, i);
    const std::uint8_t bb = ByteAt(b, i);
    if (ba != bb) {
      return ba < bb ? -1 : 1;
    }
  }
  return 0;
}

std::uint64_t PhysicalMemory::HashContentSlow(FrameId f) const {
  const Frame& fr = frames_[f];
  std::uint64_t h = kFnvOffset;
  if (fr.kind == ContentKind::kBytes) {
    for (std::uint8_t byte : *fr.bytes) {
      h = (h ^ byte) * kFnvPrime;
    }
  } else if (fr.kind == ContentKind::kZero) {
    // All zero bytes; the FNV loop over 4096 zeros is a constant.
    for (std::size_t i = 0; i < kPageSize; ++i) {
      h = h * kFnvPrime;
    }
  } else {
    const auto it = pattern_hash_cache_.find(fr.pattern_seed);
    if (it != pattern_hash_cache_.end()) {
      ++pattern_hash_hits_;
      h = it->second;
    } else {
      ++pattern_hash_misses_;
      for (std::size_t i = 0; i < kPageSize; ++i) {
        h = (h ^ ByteAt(f, i)) * kFnvPrime;
      }
      if (pattern_hash_cache_.size() >= kPatternHashCacheCap) {
        pattern_hash_cache_.clear();
        ++pattern_hash_evictions_;
      }
      pattern_hash_cache_.emplace(fr.pattern_seed, h);
    }
  }
  fr.cached_hash = h;
  fr.hash_gen = fr.content_gen;
  return h;
}

PhysicalMemory::HashSnapshot PhysicalMemory::PeekHash(FrameId f) const {
  const Frame& fr = frames_[f];
  HashSnapshot snapshot{fr.content_gen, 0};
  if (fr.hash_gen == snapshot.content_gen) {
    snapshot.hash = fr.cached_hash;
    return snapshot;
  }
  std::uint64_t h = kFnvOffset;
  switch (fr.kind) {
    case ContentKind::kBytes:
      for (std::uint8_t byte : *fr.bytes) {
        h = (h ^ byte) * kFnvPrime;
      }
      break;
    case ContentKind::kZero:
      for (std::size_t i = 0; i < kPageSize; ++i) {
        h = h * kFnvPrime;
      }
      break;
    case ContentKind::kPattern: {
      // Read-only probe of the pattern cache: concurrent finds are safe; on a miss
      // we recompute without inserting or bumping the (unsynchronized) counters.
      const auto it = pattern_hash_cache_.find(fr.pattern_seed);
      if (it != pattern_hash_cache_.end()) {
        h = it->second;
      } else {
        for (std::size_t i = 0; i < kPageSize; ++i) {
          h = (h ^ PatternByte(fr.pattern_seed, i)) * kFnvPrime;
        }
      }
      break;
    }
  }
  snapshot.hash = h;
  return snapshot;
}

void PhysicalMemory::PrimeHash(FrameId f, const HashSnapshot& snapshot) {
  const Frame& fr = frames_[f];
  if (fr.content_gen == snapshot.content_gen && fr.hash_gen != fr.content_gen) {
    fr.cached_hash = snapshot.hash;
    fr.hash_gen = fr.content_gen;
  }
}

PhysicalMemory::ContentSnapshot PhysicalMemory::Snapshot(FrameId f) const {
  const Frame& fr = frames_[f];
  ContentSnapshot snapshot;
  snapshot.kind = fr.kind;
  snapshot.pattern_seed = fr.pattern_seed;
  if (fr.kind == ContentKind::kBytes) {
    snapshot.bytes = std::make_unique<PageBytes>(*fr.bytes);
  }
  snapshot.hash = HashContent(f);
  return snapshot;
}

void PhysicalMemory::Restore(FrameId f, const ContentSnapshot& snapshot) {
  switch (snapshot.kind) {
    case ContentKind::kZero:
      FillZero(f);
      break;
    case ContentKind::kPattern:
      FillPattern(f, snapshot.pattern_seed);
      break;
    case ContentKind::kBytes:
      WriteBytes(f, 0, *snapshot.bytes);
      break;
  }
  frames_[f].cached_hash = snapshot.hash;
  frames_[f].hash_gen = frames_[f].content_gen;
}

bool PhysicalMemory::SnapshotsEqual(const ContentSnapshot& a, const ContentSnapshot& b) {
  if (a.hash != b.hash) {
    return false;
  }
  if (a.kind != ContentKind::kBytes && a.kind == b.kind) {
    return a.kind == ContentKind::kZero || a.pattern_seed == b.pattern_seed;
  }
  // At least one side is materialized: compare byte streams.
  auto byte_at = [](const ContentSnapshot& s, std::size_t i) -> std::uint8_t {
    switch (s.kind) {
      case ContentKind::kZero:
        return 0;
      case ContentKind::kPattern:
        return PatternByte(s.pattern_seed, i);
      case ContentKind::kBytes:
        return (*s.bytes)[i];
    }
    return 0;
  };
  for (std::size_t i = 0; i < kPageSize; ++i) {
    if (byte_at(a, i) != byte_at(b, i)) {
      return false;
    }
  }
  return true;
}

bool PhysicalMemory::IsZero(FrameId f) const {
  const Frame& fr = frames_[f];
  if (fr.kind == ContentKind::kZero) {
    return true;
  }
  if (fr.kind == ContentKind::kBytes) {
    for (std::uint8_t byte : *fr.bytes) {
      if (byte != 0) {
        return false;
      }
    }
    return true;
  }
  // Pattern frames are non-zero with overwhelming probability; check cheaply.
  for (std::size_t i = 0; i < kPageSize; ++i) {
    if (PatternByte(fr.pattern_seed, i) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace vusion
