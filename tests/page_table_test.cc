#include "src/mmu/page_table.h"

#include <gtest/gtest.h>

#include "src/phys/buddy_allocator.h"

namespace vusion {
namespace {

class PageTableTest : public ::testing::Test {
 protected:
  PageTableTest() : mem_(4096), buddy_(mem_), table_(buddy_, mem_) {}

  PhysicalMemory mem_;
  BuddyAllocator buddy_;
  PageTable table_;
};

TEST_F(PageTableTest, ResolveAbsentWithoutCreate) {
  EXPECT_EQ(table_.Resolve(0x1234, /*create=*/false), nullptr);
}

TEST_F(PageTableTest, MapAndResolve) {
  Pte* pte = table_.Resolve(0x1234, /*create=*/true);
  ASSERT_NE(pte, nullptr);
  *pte = Pte{77, kPtePresent | kPteWritable};
  const Pte* read_back = table_.Resolve(0x1234);
  ASSERT_NE(read_back, nullptr);
  EXPECT_EQ(read_back->frame, 77u);
  EXPECT_TRUE(read_back->present());
  EXPECT_TRUE(read_back->writable());
}

TEST_F(PageTableTest, DistinctVpnsDistinctSlots) {
  Pte* a = table_.Resolve(0x1000, true);
  Pte* b = table_.Resolve(0x1001, true);
  EXPECT_NE(a, b);
  a->frame = 1;
  b->frame = 2;
  EXPECT_EQ(table_.Resolve(0x1000)->frame, 1u);
  EXPECT_EQ(table_.Resolve(0x1001)->frame, 2u);
}

TEST_F(PageTableTest, TimedWalkTouchesFourLevelsForSmallPage) {
  table_.Resolve(0x2000, true)->flags = kPtePresent;
  const PageTable::WalkResult walk = table_.TimedWalk(0x2000);
  ASSERT_NE(walk.pte, nullptr);
  EXPECT_EQ(walk.touched.size(), 4u);  // PGD, PUD, PMD, PT
  // Entry addresses are distinct physical locations.
  for (std::size_t i = 1; i < walk.touched.size(); ++i) {
    EXPECT_NE(walk.touched[i - 1], walk.touched[i]);
  }
}

TEST_F(PageTableTest, TimedWalkTouchesThreeLevelsForHugePage) {
  const FrameId block = buddy_.AllocateOrder(kHugePageOrder);
  table_.MapHuge(0x200, block, kPtePresent | kPteWritable);
  const PageTable::WalkResult walk = table_.TimedWalk(0x200 + 5);
  ASSERT_NE(walk.pte, nullptr);
  EXPECT_TRUE(walk.pte->huge());
  EXPECT_EQ(walk.touched.size(), 3u);  // stops at the PMD
}

TEST_F(PageTableTest, SplitHugeProducesSmallMappings) {
  const FrameId block = buddy_.AllocateOrder(kHugePageOrder);
  table_.MapHuge(0x200, block, kPtePresent | kPteWritable);
  EXPECT_TRUE(table_.IsHuge(0x200 + 100));
  ASSERT_TRUE(table_.SplitHuge(0x200 + 100));
  EXPECT_FALSE(table_.IsHuge(0x200));
  for (std::size_t i = 0; i < kPagesPerHugePage; i += 37) {
    const Pte* pte = table_.Resolve(0x200 + i);
    ASSERT_NE(pte, nullptr);
    EXPECT_EQ(pte->frame, block + i);
    EXPECT_FALSE(pte->huge());
    EXPECT_TRUE(pte->writable());
  }
  EXPECT_EQ(table_.TimedWalk(0x200 + 5).touched.size(), 4u);
  EXPECT_FALSE(table_.SplitHuge(0x200));  // already split
}

TEST_F(PageTableTest, MapHugeReplacesSmallMappings) {
  table_.Resolve(0x200 + 3, true)->flags = kPtePresent;
  const std::size_t nodes_before = table_.node_count();
  const FrameId block = buddy_.AllocateOrder(kHugePageOrder);
  table_.MapHuge(0x200, block, kPtePresent);
  EXPECT_TRUE(table_.IsHuge(0x200 + 3));
  EXPECT_EQ(table_.node_count(), nodes_before - 1);  // leaf node freed
}

TEST_F(PageTableTest, ForEachEntryVisitsMappedRange) {
  for (Vpn vpn = 100; vpn < 110; ++vpn) {
    table_.Resolve(vpn, true)->flags = kPtePresent;
  }
  const FrameId block = buddy_.AllocateOrder(kHugePageOrder);
  table_.MapHuge(0x400, block, kPtePresent);

  std::vector<Vpn> visited;
  table_.ForEachEntry(0, Vpn{1} << 36, [&](Vpn vpn, Pte& pte) {
    visited.push_back(vpn);
    if (vpn == 0x400) {
      EXPECT_TRUE(pte.huge());
    }
  });
  EXPECT_EQ(visited.size(), 11u);  // 10 small + 1 huge (visited once at its base)
  // Range filtering.
  visited.clear();
  table_.ForEachEntry(105, 108, [&](Vpn vpn, Pte&) { visited.push_back(vpn); });
  EXPECT_EQ(visited, (std::vector<Vpn>{105, 106, 107}));
}

TEST_F(PageTableTest, NodeFramesComeFromAllocator) {
  const std::size_t free_before = buddy_.free_count();
  table_.Resolve(0x5000, true);
  EXPECT_LT(buddy_.free_count(), free_before);  // intermediate tables allocated
  EXPECT_GE(table_.node_count(), 4u);
}

}  // namespace
}  // namespace vusion
