#include "src/dram/rowhammer.h"

namespace vusion {

namespace {

std::uint64_t HashRow(std::uint64_t seed, std::size_t bank, std::uint64_t row,
                      std::uint64_t salt) {
  std::uint64_t x = seed ^ (row * 0x9e3779b97f4a7c15ULL) ^ (bank * 0xc2b2ae3d27d4eb4fULL) ^
                    (salt * 0x165667b19e3779f9ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RowhammerEngine::RowhammerEngine(const DramMapping& mapping, RowBuffer& row_buffer,
                                 PhysicalMemory& memory)
    : mapping_(&mapping), row_buffer_(&row_buffer), memory_(&memory) {}

std::vector<VulnerableCell> RowhammerEngine::TemplateFor(std::size_t bank,
                                                         std::uint64_t row) const {
  const DramConfig& cfg = mapping_->config();
  std::vector<VulnerableCell> cells;
  const std::uint64_t h = HashRow(cfg.template_seed, bank, row, 0);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u >= cfg.vulnerable_row_fraction) {
    return cells;
  }
  const std::uint32_t count = 1 + static_cast<std::uint32_t>(HashRow(cfg.template_seed, bank, row,
                                                                     1) %
                                                             cfg.max_flips_per_row);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t pos = HashRow(cfg.template_seed, bank, row, 2 + i);
    VulnerableCell cell;
    cell.byte_in_row = static_cast<std::size_t>(pos % cfg.row_bytes);
    cell.bit = static_cast<std::uint8_t>((pos >> 13) % 8);
    cells.push_back(cell);
  }
  return cells;
}

std::vector<FlipEvent> RowhammerEngine::OnActivation(const RowBuffer::AccessResult& access) {
  std::vector<FlipEvent> flips;
  if (!access.activated) {
    return flips;
  }
  const std::uint64_t epoch = row_buffer_->current_epoch();
  if (epoch != epoch_seen_) {
    epoch_seen_ = epoch;
    flipped_this_epoch_.clear();
  }
  if (access.activation_count < mapping_->config().hammer_threshold) {
    return flips;
  }
  // This row is hot; each neighbouring row is a victim candidate if its *other*
  // neighbour is also hot (double-sided), or - much later - from this row's
  // disturbance alone (single-sided, as in Drammer-style attacks).
  const std::size_t bank = access.location.bank;
  const std::uint64_t row = access.location.row;
  const DramConfig& cfg = mapping_->config();
  const bool single_sided =
      cfg.single_sided_factor > 0 &&
      access.activation_count >= cfg.hammer_threshold * cfg.single_sided_factor;
  for (int delta = -1; delta <= 1; delta += 2) {
    if (delta < 0 && row < 2) {
      continue;
    }
    const std::uint64_t victim = row + static_cast<std::uint64_t>(delta);
    const std::uint64_t other = victim + static_cast<std::uint64_t>(delta);
    if (!single_sided && row_buffer_->activations(bank, other) < cfg.hammer_threshold) {
      continue;
    }
    const std::uint64_t key = (victim << 5) | bank;
    if (flipped_this_epoch_.contains(key)) {
      continue;
    }
    flipped_this_epoch_.insert(key);
    auto victim_flips = HammerVictim(bank, victim);
    flips.insert(flips.end(), victim_flips.begin(), victim_flips.end());
  }
  return flips;
}

std::vector<FlipEvent> RowhammerEngine::HammerVictim(std::size_t bank, std::uint64_t victim_row) {
  std::vector<FlipEvent> flips;
  const PhysAddr row_base = mapping_->RowBase(bank, victim_row);
  for (const VulnerableCell& cell : TemplateFor(bank, victim_row)) {
    const PhysAddr paddr = row_base + cell.byte_in_row;
    const auto frame = static_cast<FrameId>(paddr / kPageSize);
    if (frame >= memory_->frame_count() || !memory_->allocated(frame)) {
      continue;
    }
    FlipEvent event;
    event.frame = frame;
    event.byte_in_page = static_cast<std::size_t>(paddr % kPageSize);
    event.bit = cell.bit;
    // Cells discharge: only 1 -> 0 transitions are observable as flips.
    const std::uint8_t current = memory_->ReadByte(frame, event.byte_in_page);
    if ((current & (1U << cell.bit)) != 0) {
      memory_->FlipBit(frame, event.byte_in_page * 8 + cell.bit);
      event.applied = true;
    }
    flips.push_back(event);
    all_flips_.push_back(event);
    ++total_flips_;
  }
  return flips;
}

}  // namespace vusion

#include "src/snapshot/io.h"

#include <algorithm>
#include <vector>

namespace vusion {

void RowhammerEngine::SaveState(snapshot::SnapshotWriter& w) const {
  std::vector<std::uint64_t> flipped(flipped_this_epoch_.begin(), flipped_this_epoch_.end());
  std::sort(flipped.begin(), flipped.end());
  w.U64(flipped.size());
  for (const std::uint64_t key : flipped) {
    w.U64(key);
  }
  w.U64(epoch_seen_);
  w.U64(all_flips_.size());
  for (const FlipEvent& flip : all_flips_) {
    w.U32(flip.frame);
    w.U64(flip.byte_in_page);
    w.U8(flip.bit);
    w.Bool(flip.applied);
  }
  w.U64(total_flips_);
}

void RowhammerEngine::RestoreState(snapshot::SnapshotReader& r) {
  flipped_this_epoch_.clear();
  const std::uint64_t flipped = r.Count(8);
  flipped_this_epoch_.reserve(flipped);
  for (std::uint64_t i = 0; i < flipped; ++i) {
    flipped_this_epoch_.insert(r.U64());
  }
  epoch_seen_ = r.U64();
  all_flips_.clear();
  const std::uint64_t flips = r.Count(14);
  all_flips_.reserve(flips);
  for (std::uint64_t i = 0; i < flips; ++i) {
    FlipEvent flip;
    flip.frame = r.U32();
    flip.byte_in_page = r.U64();
    flip.bit = r.U8();
    flip.applied = r.Bool();
    all_flips_.push_back(flip);
  }
  total_flips_ = r.U64();
}

}  // namespace vusion
