#include "src/fusion/delta_scan.h"

#include "src/sim/metrics.h"

namespace vusion {

void DeltaPassCache::ExportMetrics(MetricsRegistry& registry) const {
  registry.GetCounter("delta.probes").Set(stats_.probes);
  registry.GetCounter("delta.replays").Set(stats_.replays);
  registry.GetCounter("delta.misses").Set(stats_.misses);
  registry.GetCounter("delta.stale").Set(stats_.stale);
  registry.GetCounter("delta.records").Set(stats_.records);
  registry.GetCounter("delta.invalidations").Set(stats_.invalidations);
  registry.GetCounter("delta.process_drops").Set(stats_.process_drops);
  registry.GetGauge("delta.entries").Set(static_cast<double>(size()));
  registry.GetGauge("delta.arena_bytes").Set(static_cast<double>(arena_.total_bytes()));
}

}  // namespace vusion
