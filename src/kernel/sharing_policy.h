// Hooks a page-fusion engine installs into the kernel. The kernel's fault handler,
// unmap path, and khugepaged consult the policy so the engine can own the lifecycle
// of the pages it (fake) merged.

#ifndef VUSION_SRC_KERNEL_SHARING_POLICY_H_
#define VUSION_SRC_KERNEL_SHARING_POLICY_H_

#include "src/mmu/pte.h"

namespace vusion {

class Process;

class SharingPolicy {
 public:
  virtual ~SharingPolicy() = default;

  // Resolves a fault on a page the policy manages (copy-on-write unmerge,
  // copy-on-access, ...). Returns false if the page is not managed; the kernel's
  // default handler then runs.
  virtual bool HandleFault(Process& process, const PageFault& fault) = 0;

  // Called before the kernel unmaps a page. Returns true if the policy owned the
  // page and took care of the backing frame (refcount bookkeeping); false lets the
  // kernel free the frame itself.
  virtual bool OnUnmap(Process& process, Vpn vpn) = 0;

  // khugepaged gate: may the 512-page range at `base` be collapsed into a THP?
  virtual bool AllowCollapse(Process& process, Vpn base) = 0;

  // Called right before a permitted collapse so the policy can (fake) unmerge any
  // managed subpages (VUsion's secured khugepaged, paper §8.2). Returns false when
  // the unmerge could not complete (e.g. transient allocation failure); the
  // collapse must then be abandoned.
  virtual bool PrepareCollapse(Process& process, Vpn base) = 0;

  // madvise(MADV_UNMERGEABLE): the range leaves the fusion system; every managed
  // page in it must be given back a private, fully-accessible copy.
  virtual void OnUnregister(Process& process, Vpn start, std::uint64_t pages) {
    (void)process;
    (void)start;
    (void)pages;
  }

  // True if the policy currently manages (process, vpn) - its PTE bits belong to
  // the engine, not to the kernel's fork/CoW machinery.
  virtual bool Owns(const Process& process, Vpn vpn) const {
    (void)process;
    (void)vpn;
    return false;
  }

  // The process is being torn down (VM shutdown). Per-page state has already been
  // released through OnUnmap; this drops any remaining references to the Process
  // (scan bookkeeping, unstable-tree entries) before the object dies.
  virtual void OnProcessDestroy(Process& process) { (void)process; }
};

}  // namespace vusion

#endif  // VUSION_SRC_KERNEL_SHARING_POLICY_H_
