// Constructs fusion engines by kind; shared by attacks, benches, and examples.

#ifndef VUSION_SRC_FUSION_ENGINE_FACTORY_H_
#define VUSION_SRC_FUSION_ENGINE_FACTORY_H_

#include <memory>

#include "src/fusion/fusion_engine.h"

namespace vusion {

enum class EngineKind {
  kNone,        // baseline: no page fusion
  kKsm,         // Linux KSM
  kKsmCoA,      // KSM variant unmerging on any access (paper Fig. 4)
  kKsmZeroOnly, // KSM merging only zero pages (paper Fig. 4)
  kWpf,         // Windows Page Fusion
  kVUsion,      // VUsion
  kVUsionThp,   // VUsion with THP enhancements
  kMemoryCombining,  // Windows Memory Combining (swap-cache-only dedup, §10.1)
};

const char* EngineKindName(EngineKind kind);

// Returns nullptr for kNone. The engine is not installed; call Install().
std::unique_ptr<FusionEngine> MakeEngine(EngineKind kind, Machine& machine,
                                         FusionConfig config);

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_ENGINE_FACTORY_H_
