#include "src/fusion/fusion_stats.h"

#include <sstream>

namespace vusion {

std::string FusionStats::Summary() const {
  std::ostringstream out;
  out << "scanned=" << pages_scanned << " merges=" << merges << " fake_merges=" << fake_merges
      << " cow=" << unmerges_cow << " coa=" << unmerges_coa << " rounds=" << full_scans;
  return out.str();
}

}  // namespace vusion
