// Open-addressed hash map from 64-bit keys to small values, for the scan hot
// path's side lookups (KSM's rmap and checksum gate, the stable-tree content
// index).
//
// Why not std::unordered_map: the node-based buckets cost an allocation and two
// dependent cache misses per probe; the scan loop does several such probes per
// page. FlatMap64 stores key/value pairs inline in one power-of-2 table (linear
// probing, SplitMix64-mixed keys) and erases by backward-shift, so lookups are
// one or two contiguous cache lines and the table never accumulates tombstones.
//
// Host-only: probe order and table layout never feed the simulated clock or any
// simulated decision. Not thread safe. Keys are arbitrary 64-bit values
// (including 0); values must be cheap to move.

#ifndef VUSION_SRC_CONTAINER_FLAT_MAP_H_
#define VUSION_SRC_CONTAINER_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace vusion {

// Default key mixer: SplitMix64 finalizer. Keys like (pid << 40) ^ vpn are
// heavily structured, and a power-of-2 mask needs well-mixed low bits.
struct SplitMix64Hash {
  static std::uint64_t Mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

// Locality-preserving mixer for key spaces that are dense sequential runs (the
// checksum gate's per-process vpns): adjacent keys land in adjacent slots, so a
// sequential scan walks consecutive cache lines (several slots per line, and
// the hardware prefetcher follows) instead of taking a random miss per probe.
// Runs stay collision-free because the table holds at most half its capacity.
struct IdentityHash {
  static std::uint64_t Mix(std::uint64_t k) { return k; }
};

template <typename V, typename Hash = SplitMix64Hash>
class FlatMap64 {
 public:
  FlatMap64() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  void reserve(std::size_t n) { Rehash(TableFor(n)); }

  [[nodiscard]] bool contains(std::uint64_t key) const { return FindSlot(key) != nullptr; }

  // Prefetches the key's home cache line for an upcoming probe. The scan loop
  // issues these while the latency model's noise draw (libm-heavy) is in
  // flight, so the probe's likely cache miss overlaps transcendental math
  // instead of stalling the probe itself.
  void Prefetch(std::uint64_t key) const {
    if (!slots_.empty()) {
      __builtin_prefetch(&slots_[IndexOf(key)]);
    }
  }

  // Pointer to the mapped value, or nullptr. Invalidated by any mutation.
  [[nodiscard]] V* find(std::uint64_t key) {
    Slot* s = const_cast<Slot*>(FindSlot(key));
    return s == nullptr ? nullptr : &s->value;
  }
  [[nodiscard]] const V* find(std::uint64_t key) const {
    const Slot* s = FindSlot(key);
    return s == nullptr ? nullptr : &s->value;
  }

  // Inserts or overwrites; returns the mapped value.
  V& insert_or_assign(std::uint64_t key, V value) {
    // Grow at 1/2 load: the scan loop's probes are mostly *misses* (stable
    // index, rmap on unique pages), and unsuccessful linear-probe search cost
    // explodes with load factor (~32 slots at 7/8, ~2.5 at 1/2). Slots are
    // small; the doubled table is cheaper than the probe runs.
    if ((size_ + 1) * 2 > slots_.size()) {
      Rehash(slots_.empty() ? kMinTable : slots_.size() * 2);
    }
    std::size_t i = IndexOf(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        slots_[i].value = std::move(value);
        return slots_[i].value;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = Slot{key, std::move(value), true};
    ++size_;
    return slots_[i].value;
  }

  // Returns the value for key, default-constructing it if absent.
  V& operator[](std::uint64_t key) {
    if (V* v = find(key)) {
      return *v;
    }
    return insert_or_assign(key, V{});
  }

  // Removes key if present; returns whether it was. Backward-shift deletion:
  // following slots whose probe path crossed the hole are moved back into it,
  // so no tombstones exist and lookups stay two-branch.
  bool erase(std::uint64_t key) {
    Slot* s = const_cast<Slot*>(FindSlot(key));
    if (s == nullptr) {
      return false;
    }
    std::size_t hole = static_cast<std::size_t>(s - slots_.data());
    std::size_t i = (hole + 1) & mask_;
    while (slots_[i].used) {
      const std::size_t home = IndexOf(slots_[i].key);
      // Move back iff the hole lies on the probe path from home to i,
      // i.e. cyclic-distance(home -> hole) < cyclic-distance(home -> i).
      if (((hole - home) & mask_) < ((i - home) & mask_)) {
        slots_[hole] = std::move(slots_[i]);
        hole = i;
      }
      i = (i + 1) & mask_;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  // Visits every (key, value) pair in unspecified order. The callback must not
  // mutate the map.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) {
        fn(s.key, s.value);
      }
    }
  }

 private:
  static constexpr std::size_t kMinTable = 16;

  struct Slot {
    std::uint64_t key = 0;
    V value{};
    bool used = false;
  };

  static std::size_t TableFor(std::size_t n) {
    std::size_t cap = kMinTable;
    while (cap < n * 2) {
      cap *= 2;
    }
    return cap;
  }

  [[nodiscard]] std::size_t IndexOf(std::uint64_t key) const {
    return static_cast<std::size_t>(Hash::Mix(key)) & mask_;
  }

  [[nodiscard]] const Slot* FindSlot(std::uint64_t key) const {
    if (slots_.empty()) {
      return nullptr;
    }
    std::size_t i = IndexOf(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        return &slots_[i];
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  void Rehash(std::size_t new_cap) {
    if (new_cap <= slots_.size()) {
      return;
    }
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (Slot& s : old) {
      if (!s.used) {
        continue;
      }
      std::size_t i = IndexOf(s.key);
      while (slots_[i].used) {
        i = (i + 1) & mask_;
      }
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_CONTAINER_FLAT_MAP_H_
