// DRAM row-buffer side channel (mentioned in the paper's §5.3 attack-surface
// analysis): a merge-detection primitive that works even with the LLC out of the
// picture. If the attacker's guess page was merged with the victim's page, they
// share a physical frame and hence a DRAM row: after the attacker closes that row
// (by opening another row in the same bank) and the victim touches its copy, the
// attacker's uncached reload is a fast row-buffer HIT; unmerged pages live in a
// different row and reload with a slow row activation. VUsion stops it the same
// way it stops FLUSH+RELOAD: no access, no row-buffer residue.

#ifndef VUSION_SRC_ATTACK_ROW_BUFFER_ATTACK_H_
#define VUSION_SRC_ATTACK_ROW_BUFFER_ATTACK_H_

#include "src/attack/timing_probe.h"

namespace vusion {

class RowBufferAttack {
 public:
  static AttackOutcome Run(EngineKind kind, std::uint64_t seed);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_ROW_BUFFER_ATTACK_H_
