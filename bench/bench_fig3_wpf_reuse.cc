// Figure 3: physical memory reuse between two WPF fusion passes.
//
// Reproduces the paper's scatter of fused-frame offsets across two passes: after
// the attacker releases her fused pages and plants fresh duplicates, the next pass
// re-allocates almost exactly the frames of the first pass (near-perfect reuse),
// while VUsion's randomized pool reduces reuse to noise.

#include <cstdio>

#include "src/attack/reuse_flip_feng_shui.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("fig3_wpf_reuse");
  reporter.Header("Figure 3: WPF fused-frame reuse across passes");
  std::printf("%-12s %-18s\n", "system", "reuse fraction");
  for (const EngineKind kind : {EngineKind::kWpf, EngineKind::kKsm, EngineKind::kVUsion}) {
    double total = 0.0;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
      total += ReuseFlipFengShui::MeasureReuseFraction(kind, 100 + t);
    }
    std::printf("%-12s %.3f\n", EngineKindName(kind), total / trials);
    reporter.AddRow("reuse", {{"system", EngineKindName(kind)},
                              {"trials", trials},
                              {"reuse_fraction", total / trials}});
  }
  std::printf(
      "\npaper: WPF shows near-perfect reuse at the end of guest memory (Fig 3);\n"
      "KSM reuses the sharers' own frames (trivially predictable); VUsion's\n"
      "randomized pool (2^15 frames) makes controlled reuse ~2^-15.\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
