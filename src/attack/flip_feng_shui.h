// Classic Flip Feng Shui (paper §4.2): the attacker templates her own memory for
// exploitable Rowhammer bit flips, writes the victim's sensitive content onto a
// vulnerable page, and lets the fusion system's *merge* back the shared copy with
// the attacker's physical frame (KSM uses one sharing party's frame). Hammering
// then corrupts the victim's data without a single write - breaking copy-on-write
// semantics. VUsion's Randomized Allocation makes the backing frame a 1-in-2^15
// lottery, reducing the attack to noise.

#ifndef VUSION_SRC_ATTACK_FLIP_FENG_SHUI_H_
#define VUSION_SRC_ATTACK_FLIP_FENG_SHUI_H_

#include "src/attack/timing_probe.h"

namespace vusion {

class FlipFengShui {
 public:
  static AttackOutcome Run(EngineKind kind, std::uint64_t seed);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_FLIP_FENG_SHUI_H_
