file(REMOVE_RECURSE
  "libvusion_sim.a"
)
