# Empty compiler generated dependencies file for vusion_phys.
# This may be replaced when dependencies are built.
