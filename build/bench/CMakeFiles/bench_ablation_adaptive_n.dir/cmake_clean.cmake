file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptive_n.dir/bench_ablation_adaptive_n.cc.o"
  "CMakeFiles/bench_ablation_adaptive_n.dir/bench_ablation_adaptive_n.cc.o.d"
  "bench_ablation_adaptive_n"
  "bench_ablation_adaptive_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
