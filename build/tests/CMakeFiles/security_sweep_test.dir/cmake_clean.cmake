file(REMOVE_RECURSE
  "CMakeFiles/security_sweep_test.dir/security_sweep_test.cc.o"
  "CMakeFiles/security_sweep_test.dir/security_sweep_test.cc.o.d"
  "security_sweep_test"
  "security_sweep_test.pdb"
  "security_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
