#include "src/sim/latency_model.h"

#include <gtest/gtest.h>

namespace vusion {
namespace {

TEST(LatencyModelTest, ChargeAdvancesClock) {
  VirtualClock clock;
  LatencyConfig config;
  config.noise_sigma = 0.0;
  LatencyModel model(config, clock, Rng(1));
  const SimTime charged = model.Charge(100);
  EXPECT_EQ(charged, 100u);
  EXPECT_EQ(clock.now(), 100u);
}

TEST(LatencyModelTest, ChargeExactIgnoresNoise) {
  VirtualClock clock;
  LatencyConfig config;
  config.noise_sigma = 0.5;
  LatencyModel model(config, clock, Rng(2));
  EXPECT_EQ(model.ChargeExact(1000), 1000u);
  EXPECT_EQ(clock.now(), 1000u);
}

TEST(LatencyModelTest, NoiseStaysNearBase) {
  VirtualClock clock;
  LatencyConfig config;
  config.noise_sigma = 0.04;
  LatencyModel model(config, clock, Rng(3));
  double total = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const SimTime c = model.Charge(1000);
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1400u);
    total += static_cast<double>(c);
  }
  EXPECT_NEAR(total / n, 1000.0, 15.0);
}

TEST(LatencyModelTest, ZeroChargeIsFree) {
  VirtualClock clock;
  LatencyModel model(LatencyConfig{}, clock, Rng(4));
  EXPECT_EQ(model.Charge(0), 0u);
  EXPECT_EQ(clock.now(), 0u);
}

TEST(VirtualClockTest, AdvanceAndReset) {
  VirtualClock clock;
  clock.Advance(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
  clock.Advance(3);
  EXPECT_EQ(clock.now(), 5 * kSecond + 3);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

}  // namespace
}  // namespace vusion
