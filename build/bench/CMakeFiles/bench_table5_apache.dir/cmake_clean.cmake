file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_apache.dir/bench_table5_apache.cc.o"
  "CMakeFiles/bench_table5_apache.dir/bench_table5_apache.cc.o.d"
  "bench_table5_apache"
  "bench_table5_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
