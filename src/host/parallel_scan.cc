#include "src/host/parallel_scan.h"

#include <atomic>
#include <chrono>

namespace vusion::host {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void ParallelScanPipeline::ResolveAndPeek(ScanItem& item, const Phase1Filter& filter) const {
  if (item.frame == kInvalidFrame) {
    if (item.as == nullptr) {
      return;
    }
    const Pte* pte = item.as->GetPte(item.vpn);
    if (pte == nullptr || !pte->present()) {
      return;
    }
    if (filter && !filter(*pte, item)) {
      return;
    }
    FrameId frame = pte->frame;
    if (pte->huge()) {
      frame += static_cast<FrameId>(item.vpn & (kPagesPerHugePage - 1));
    }
    item.frame = frame;
  }
  item.snapshot = memory_->PeekHash(item.frame);
  item.hashed = true;
}

void ParallelScanPipeline::Run(std::vector<ScanItem>& items, ScanTiming& timing,
                               const Phase1Filter& filter,
                               const std::function<void(ScanItem&)>& merge_one,
                               const std::function<void()>& between_phases,
                               const Phase1Probe& probe) {
  // Phase 1: shard the quantum across workers; each chunk only reads simulated
  // state and writes its own disjoint items.
  std::atomic<std::uint64_t> phase1_ns{0};
  const auto chunk = [&](std::size_t begin, std::size_t end) {
    const std::uint64_t t0 = NowNs();
    for (std::size_t i = begin; i < end; ++i) {
      if (probe && probe(items[i])) {
        continue;  // expected pass-cache replay: skip the resolve and the hash
      }
      ResolveAndPeek(items[i], filter);
    }
    phase1_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  };
  if (pool_ != nullptr && items.size() > 1) {
    pool_->ParallelFor(items.size(), 0, chunk);
  } else {
    chunk(0, items.size());
  }
  timing.phase1_ns += phase1_ns.load(std::memory_order_relaxed);
  timing.items += items.size();

  if (between_phases) {
    between_phases();
  }

  // Phase 2: serial canonical-order merge. Priming right before each page keeps
  // the snapshot's generation check maximally fresh; the engine body then runs
  // verbatim, charging latencies exactly as the serial reference path.
  for (ScanItem& item : items) {
    if (item.hashed) {
      memory_->PrimeHash(item.frame, item.snapshot);
    }
    merge_one(item);
  }
}

}  // namespace vusion::host
