// Physical frame identifiers and per-frame metadata.

#ifndef VUSION_SRC_PHYS_FRAME_H_
#define VUSION_SRC_PHYS_FRAME_H_

#include <array>
#include <cstdint>
#include <memory>

namespace vusion {

using FrameId = std::uint32_t;
constexpr FrameId kInvalidFrame = ~FrameId{0};

constexpr std::size_t kPageSize = 4096;
constexpr std::size_t kHugePageOrder = 9;                       // 2 MB huge pages
constexpr std::size_t kPagesPerHugePage = std::size_t{1} << kHugePageOrder;

using PageBytes = std::array<std::uint8_t, kPageSize>;

// How a frame's contents are represented. Pattern frames hold an 8-byte seed whose
// deterministic byte expansion is the page content; they materialize to real bytes on
// the first partial write or bit flip. This keeps large simulated guests cheap while
// preserving byte-exact merge/corruption semantics.
enum class ContentKind : std::uint8_t {
  kZero,     // all 0x00 (the kernel zero page case)
  kPattern,  // bytes are Expand(seed)
  kBytes,    // materialized buffer
};

struct Frame {
  bool allocated = false;
  std::uint32_t refcount = 0;  // mappings sharing this frame (fusion refcounting)
  ContentKind kind = ContentKind::kZero;
  std::uint64_t pattern_seed = 0;
  // Materialized contents, shared copy-on-write between frames: CopyFrame aliases
  // the buffer (O(1) host cost) and any mutator clones it first if aliased. Purely
  // a host-side optimization — simulated copy costs are still charged in full.
  std::shared_ptr<PageBytes> bytes;
  // Content generation: bumped by every mutating operation. A cached hash is valid
  // exactly when hash_gen == content_gen; generation 0 is never current, so a
  // default-constructed cache entry is invalid. Fusion engines fingerprint every
  // scanned page, so recomputing on unchanged contents would dominate host cost.
  std::uint64_t content_gen = 1;
  mutable std::uint64_t cached_hash = 0;
  mutable std::uint64_t hash_gen = 0;

  [[nodiscard]] bool hash_cached() const { return hash_gen == content_gen; }
};

}  // namespace vusion

#endif  // VUSION_SRC_PHYS_FRAME_H_
