#include "src/sim/json.h"

#include <cmath>
#include <cstdio>

namespace vusion {

Json& Json::Set(const std::string& key, Json value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : items_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  items_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Push(Json value) {
  kind_ = Kind::kArray;
  items_.emplace_back(std::string{}, std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : items_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Json* Json::FindMutable(const std::string& key) {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (auto& [k, v] : items_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void Json::AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
  // Keep a numeric-looking token ("1" stays valid JSON, but "1.0" reads as a float
  // downstream); nothing to fix if an exponent or dot is already present.
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      return;
    }
    case Kind::kUint: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(uint_));
      out += buf;
      return;
    }
    case Kind::kDouble:
      AppendDouble(out, double_);
      return;
    case Kind::kString:
      AppendEscaped(out, string_);
      return;
    case Kind::kRaw:
      out += string_;
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        newline_pad(depth + 1);
        items_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < items_.size()) {
          out += ',';
          if (indent == 0) {
            out += ' ';
          }
        }
      }
      newline_pad(depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (items_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        newline_pad(depth + 1);
        AppendEscaped(out, items_[i].first);
        out += ": ";
        items_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < items_.size()) {
          out += ',';
          if (indent == 0) {
            out += ' ';
          }
        }
      }
      newline_pad(depth);
      out += '}';
      return;
    }
  }
}

std::size_t Json::EstimateDumpSize() const {
  switch (kind_) {
    case Kind::kNull:
    case Kind::kBool:
    case Kind::kInt:
    case Kind::kUint:
    case Kind::kDouble:
      return 20;
    case Kind::kString:
    case Kind::kRaw:
      return string_.size() + 8;
    case Kind::kArray:
    case Kind::kObject: {
      std::size_t total = 4;
      for (const auto& [key, value] : items_) {
        total += key.size() + 8 + value.EstimateDumpSize();
      }
      return total;
    }
  }
  return 20;
}

std::string Json::Dump(int indent) const {
  std::string out;
  out.reserve(EstimateDumpSize());
  DumpTo(out, indent, 0);
  if (indent > 0) {
    out += '\n';
  }
  return out;
}

}  // namespace vusion
