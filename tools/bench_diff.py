#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts and fail on throughput-ratio regressions.

Usage: bench_diff.py BASELINE CANDIDATE [--regress-pct PCT] [--table NAME ...]

Compares the *ratio* tables of two schema-version-1 artifacts emitted by
bench::Reporter (see tools/check_bench_json.py for the shape). Ratios —
fingerprint-vs-byte-ordered speedup, delta-vs-fingerprint speedup, parallel
scan speedup, and the headline values — are stable across machines and across
--quick/full runs, unlike absolute page counts or wall seconds, so they are
the only values this tool judges. A candidate cell more than --regress-pct
percent below the baseline cell is a regression (all ratio metrics here are
higher-is-better); a baseline row missing from the candidate is a coverage
regression. Either exits non-zero.

Rows are matched by table-specific key fields:

    speedup           keyed by (engine)
    parallel_speedup  keyed by (engine, threads)
    fleet_speedup     keyed by (threads)
    streaming_speedup keyed by (engine, threads); only "speedup" is judged
    headlines         keyed by (name)

Headline "target" fields are informational (the bench binary already prints
them); only "value" is compared. Rows present only in the candidate are
reported but never fail the diff — new engines or headlines are not
regressions.

Exit status: 0 clean, 1 regression found, 2 usage or malformed artifact.
"""

import argparse
import json
import numbers
import sys

# Ratio tables and the fields identifying a row within each. Every other
# numeric field in a row (except "target") is a higher-is-better ratio.
RATIO_TABLES = {
    "speedup": ("engine",),
    "parallel_speedup": ("engine", "threads"),
    "fleet_speedup": ("threads",),
    "streaming_speedup": ("engine", "threads"),
    "headlines": ("name",),
}

SKIPPED_FIELDS = {"target"}

# Tables whose rows mix the judged ratio with context columns (absolute wall
# seconds, speculative-hash counters) that are machine- and
# interleaving-dependent: only the listed fields are compared. The host and
# fleet artifacts share the streaming_speedup table name with different key
# columns; the fleet rows simply have no "engine" field, which still keys
# uniquely.
COMPARED_FIELDS = {
    "streaming_speedup": {"speedup"},
}


def load_artifact(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"bench_diff: cannot read {path}: {err}")
    if not isinstance(doc, dict) or doc.get("schema_version") != 1:
        raise SystemExit(f"bench_diff: {path} is not a schema-version-1 bench artifact")
    return doc


def row_key(row, key_fields):
    return tuple(row.get(field) for field in key_fields)


def numeric_fields(table, row, key_fields):
    compared = COMPARED_FIELDS.get(table)
    return {
        name: value
        for name, value in row.items()
        if name not in key_fields
        and name not in SKIPPED_FIELDS
        and (compared is None or name in compared)
        and isinstance(value, numbers.Number)
        and not isinstance(value, bool)
    }


def diff_table(name, key_fields, base_rows, cand_rows, regress_pct):
    """Returns (regressions, lines) for one table."""
    regressions = 0
    lines = []
    cand_by_key = {row_key(r, key_fields): r for r in cand_rows}
    seen = set()
    for base_row in base_rows:
        key = row_key(base_row, key_fields)
        seen.add(key)
        label = "/".join(str(part) for part in key)
        cand_row = cand_by_key.get(key)
        if cand_row is None:
            regressions += 1
            lines.append(f"REGRESS {name}[{label}]: row missing from candidate")
            continue
        for field, base_value in numeric_fields(name, base_row, key_fields).items():
            cand_value = cand_row.get(field)
            if not isinstance(cand_value, numbers.Number) or isinstance(cand_value, bool):
                regressions += 1
                lines.append(f"REGRESS {name}[{label}].{field}: value missing from candidate")
                continue
            floor = base_value * (1.0 - regress_pct / 100.0)
            delta_pct = (
                (cand_value - base_value) / base_value * 100.0 if base_value else 0.0
            )
            verdict = "ok     "
            if cand_value < floor:
                regressions += 1
                verdict = "REGRESS"
            lines.append(
                f"{verdict} {name}[{label}].{field}: "
                f"{base_value:.4g} -> {cand_value:.4g} ({delta_pct:+.1f}%)"
            )
    for key in cand_by_key:
        if key not in seen:
            label = "/".join(str(part) for part in key)
            lines.append(f"new     {name}[{label}]: only in candidate (ignored)")
    return regressions, lines


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_diff.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--regress-pct", type=float, default=10.0,
        help="allowed drop below baseline, percent (default: %(default)s)")
    parser.add_argument(
        "--table", action="append", choices=sorted(RATIO_TABLES),
        help="restrict the diff to this table (repeatable; default: all)")
    args = parser.parse_args(argv[1:])
    if args.regress_pct < 0:
        parser.error("--regress-pct must be >= 0")

    base = load_artifact(args.baseline)
    cand = load_artifact(args.candidate)
    if base.get("bench") != cand.get("bench"):
        raise SystemExit(
            f"bench_diff: artifacts disagree on bench name: "
            f"{base.get('bench')!r} vs {cand.get('bench')!r}")

    tables = args.table or sorted(RATIO_TABLES)
    total_regressions = 0
    for name in tables:
        base_rows = base.get("tables", {}).get(name, [])
        cand_rows = cand.get("tables", {}).get(name, [])
        if not base_rows and not cand_rows:
            continue
        regressions, lines = diff_table(
            name, RATIO_TABLES[name], base_rows, cand_rows, args.regress_pct)
        total_regressions += regressions
        for line in lines:
            print(line)

    if total_regressions:
        print(f"bench_diff: {total_regressions} regression(s) past "
              f"{args.regress_pct:g}% threshold", file=sys.stderr)
        return 1
    print(f"bench_diff: no regressions past {args.regress_pct:g}% threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
