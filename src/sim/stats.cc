#include "src/sim/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace vusion {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples[0];
  }
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string RenderSeries(const std::vector<std::string>& names,
                         const std::vector<std::vector<double>>& series,
                         std::size_t height) {
  if (series.empty() || series[0].empty() || height < 2) {
    return "";
  }
  double lo = series[0][0];
  double hi = lo;
  std::size_t width = 0;
  for (const auto& s : series) {
    width = std::max(width, s.size());
    for (const double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi <= lo) {
    hi = lo + 1.0;
  }
  std::vector<std::string> rows(height, std::string(width, ' '));
  for (std::size_t i = 0; i < series.size(); ++i) {
    const char mark = static_cast<char>('A' + (i % 26));
    for (std::size_t x = 0; x < series[i].size(); ++x) {
      const double frac = (series[i][x] - lo) / (hi - lo);
      const auto y = static_cast<std::size_t>(frac * static_cast<double>(height - 1));
      rows[height - 1 - y][x] = mark;
    }
  }
  std::ostringstream out;
  out << std::llround(hi) << "\n";
  for (const std::string& row : rows) {
    out << "  |" << row << "\n";
  }
  out << std::llround(lo) << " +" << std::string(width, '-') << "\n  legend: ";
  for (std::size_t i = 0; i < names.size(); ++i) {
    out << static_cast<char>('A' + (i % 26)) << "=" << names[i] << " ";
  }
  out << "\n";
  return out.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {}

void Histogram::Add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::Render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    out << "  " << static_cast<std::uint64_t>(bin_low(i)) << "\t" << counts_[i] << "\t"
        << std::string(bar, '#') << "\n";
  }
  return out.str();
}

}  // namespace vusion
