// Table 6: Redis and memcached throughput under memtier-style load (1:10 SET:GET).
// Expected shape: VUsion close to KSM; THP enhancements close most of the gap.

#include <cstdio>

#include "src/workload/kv_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("table6_kv_throughput");
  reporter.Header("Table 6: Redis / memcached throughput (kreq/s)");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::printf("%-12s %-18s %-18s\n", "system", "Redis", "Memcached");
  double base_redis = 0.0;
  double base_mc = 0.0;
  for (const EngineKind kind : EvalEngines()) {
    Scenario scenario(EvalScenario(kind));
    for (int i = 0; i < 3; ++i) {
      scenario.BootVm(EvalImage(), 10 + i);
    }
    Process& redis_proc = scenario.machine().CreateProcess();
    Process& mc_proc = scenario.machine().CreateProcess();
    KvWorkload::Config redis_config = KvWorkload::RedisConfig();
    KvWorkload::Config mc_config = KvWorkload::MemcachedConfig();
    redis_config.ops = 30000;
    mc_config.ops = 30000;
    KvWorkload redis(redis_proc, redis_config, 5);
    KvWorkload memcached(mc_proc, mc_config, 6);
    scenario.RunFor(30 * kSecond);
    const KvResult redis_result = redis.Run();
    scenario.RunFor(5 * kSecond);
    const KvResult mc_result = memcached.Run();
    if (kind == EngineKind::kNone) {
      base_redis = redis_result.kreq_per_s;
      base_mc = mc_result.kreq_per_s;
    }
    const double redis_rel = base_redis > 0 ? 100.0 * redis_result.kreq_per_s / base_redis : 100.0;
    const double mc_rel = base_mc > 0 ? 100.0 * mc_result.kreq_per_s / base_mc : 100.0;
    std::printf("%-12s %7.1f (%5.1f%%)   %7.1f (%5.1f%%)\n", EngineKindName(kind),
                redis_result.kreq_per_s, redis_rel, mc_result.kreq_per_s, mc_rel);
    reporter.AddRow("throughput", {{"system", EngineKindName(kind)},
                                   {"redis_kreq_per_s", redis_result.kreq_per_s},
                                   {"redis_rel_pct", redis_rel},
                                   {"memcached_kreq_per_s", mc_result.kreq_per_s},
                                   {"memcached_rel_pct", mc_rel}});
    reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  }
  std::printf("\npaper: Redis 100/88.8/88.4/93.4%%, Memcached 100/97.9/92.6/97.8%%\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
