file(REMOVE_RECURSE
  "CMakeFiles/madvise_test.dir/madvise_test.cc.o"
  "CMakeFiles/madvise_test.dir/madvise_test.cc.o.d"
  "madvise_test"
  "madvise_test.pdb"
  "madvise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/madvise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
