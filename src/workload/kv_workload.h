// Key-value store model for Redis and memcached (paper Tables 6-7): a slab of
// resident value memory accessed by memtier-style random GET/SET traffic (1:10
// SET:GET, 32-byte objects). Redis is modeled with an extra pointer-chase per
// operation and a larger footprint; memcached with direct slab addressing.

#ifndef VUSION_SRC_WORKLOAD_KV_WORKLOAD_H_
#define VUSION_SRC_WORKLOAD_KV_WORKLOAD_H_

#include "src/kernel/process.h"
#include "src/sim/rng.h"

namespace vusion {

struct KvResult {
  double kreq_per_s = 0.0;
  double set_p90_ms = 0.0;
  double set_p99_ms = 0.0;
  double set_p999_ms = 0.0;
  double get_p90_ms = 0.0;
  double get_p99_ms = 0.0;
  double get_p999_ms = 0.0;
};

class KvWorkload {
 public:
  struct Config {
    std::size_t slab_pages = 4096;
    std::size_t key_space = 1u << 20;
    double set_ratio = 1.0 / 11.0;           // memtier 1:10 SET:GET
    std::size_t ops = 60000;
    SimTime base_service = 4 * kMicrosecond; // per-request CPU
    SimTime network_rtt = 1400 * kMicrosecond;
    std::size_t accesses_per_op = 1;         // redis: 2 (dict + value)
    std::size_t concurrency = 50;            // memtier clients
  };

  static Config MemcachedConfig();
  static Config RedisConfig();

  KvWorkload(Process& server, const Config& config, std::uint64_t seed);

  KvResult Run();

 private:
  Process* server_;
  Config config_;
  Rng rng_;
  VirtAddr slab_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_KV_WORKLOAD_H_
