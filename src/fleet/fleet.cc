#include "src/fleet/fleet.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "src/host/clock.h"
#include "src/host/thread_pool.h"

namespace vusion::fleet {

void FleetConfig::ApplyEnvOverrides() {
  if (const char* env = std::getenv("VUSION_FLEET_THREADS")) {
    const long threads = std::strtol(env, nullptr, 10);
    if (threads > 0) {
      host_threads = static_cast<std::size_t>(threads);
    }
  }
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  // Same pattern as the engine factory applying FusionConfig overrides: the
  // environment wins at construction, so CI can force threaded fleet stepping
  // (e.g. the TSan job's VUSION_FLEET_THREADS=4) without touching callers.
  // Tests that pin their own thread counts unset the variable first.
  config_.ApplyEnvOverrides();
  members_.reserve(config_.machine_count);
  for (std::size_t m = 0; m < config_.machine_count; ++m) {
    ScenarioConfig member_config = config_.scenario;
    // Distinct RNG streams per Machine over an otherwise identical config:
    // the fleet analog of distinct hosts running the same software stack.
    member_config.machine.seed = config_.scenario.machine.seed + m;
    members_.push_back(std::make_unique<Scenario>(member_config));
  }
  pool_ = std::make_unique<host::ThreadPool>(std::max<std::size_t>(1, config_.host_threads));
  if (config_.host_threads > 1) {
    // Cross-Machine decoupling: every member's scan pipeline dispatches its
    // hash chunks to the shared fleet pool instead of a per-Machine pool. A
    // Machine running its serial merge stops occupying a worker slot — its
    // chunks (and other Machines' stepping) proceed on whichever workers are
    // free. Stepping stays the priority: workers prefer the earliest-submitted
    // stream, and the step batch is always submitted first. The single-thread
    // fleet keeps no external pool — it is the serial reference.
    for (const auto& member : members_) {
      member->machine().SetExternalHostPool(pool_.get());
    }
  }
  step_ns_.assign(members_.size(), 0);
}

Fleet::~Fleet() = default;

void Fleet::BootAll() {
  // One template per VM slot, shared read-only by every Machine: the seed
  // recipe (the only eagerly-computed part of a boot) is derived once instead
  // of machine_count times.
  templates_.clear();
  templates_.reserve(config_.vms_per_machine);
  for (std::size_t j = 0; j < config_.vms_per_machine; ++j) {
    const VmImageSpec spec = config_.images.empty()
                                 ? VmImage::CatalogImage(j % VmImage::kCatalogSize)
                                 : config_.images[j % config_.images.size()];
    templates_.push_back(VmImage::ComputeTemplate(spec, 0xf1ee7 + j));
  }
  // Boot is untimed setup touching only the target Machine, so it parallelizes
  // across Machines under the same affinity scheme as stepping.
  const auto boot_one = [this](std::size_t m, std::size_t) {
    for (const auto& tmpl : templates_) {
      members_[m]->BootVm(*tmpl);
    }
  };
  pool_->ParallelTasks(members_.size(), boot_one);
}

void Fleet::StepMachine(std::size_t m, SimTime quantum) {
  const std::uint64_t start = host::NowNs();
  if (hook_) {
    hook_(m, *members_[m]);
  }
  // Step to the fleet quantum edge, not by the quantum: daemon work charged at
  // a deadline can push a Machine's clock past the edge, and such a Machine
  // simply waits out subsequent quanta until fleet time catches up — the
  // simulated analog of a host whose scan round overran its period. Keying the
  // target off fleet time (identical at every thread count) keeps per-Machine
  // schedules bit-identical under any host parallelism.
  const SimTime target = now_ + quantum;
  const SimTime current = members_[m]->machine().clock().now();
  if (current < target) {
    members_[m]->RunFor(target - current);
  }
  step_ns_[m] = host::NowNs() - start;
}

void Fleet::RunFor(SimTime duration) {
  SimTime remaining = duration;
  while (remaining > 0) {
    const SimTime quantum = std::min(config_.quantum, remaining);
    const auto step_one = [this, quantum](std::size_t m, std::size_t) {
      StepMachine(m, quantum);
    };
    pool_->ParallelTasks(members_.size(), step_one);
    QuantumCost cost;
    for (const std::uint64_t ns : step_ns_) {
      cost.sum_ns += ns;
      cost.max_ns = std::max(cost.max_ns, ns);
    }
    quantum_costs_.push_back(cost);
    now_ += quantum;
    remaining -= quantum;
  }
}

double Fleet::ProjectedRuntimeNs(std::size_t host_threads) const {
  // Each quantum ends at a barrier, so its wall time under T threads is at
  // best perfect division of the total work and at worst the single slowest
  // Machine — the critical path is the max of the two.
  const double threads = static_cast<double>(std::max<std::size_t>(1, host_threads));
  double total = 0.0;
  for (const QuantumCost& q : quantum_costs_) {
    total += std::max(static_cast<double>(q.sum_ns) / threads, static_cast<double>(q.max_ns));
  }
  return total;
}

MetricsSnapshot Fleet::CollectMetrics() {
  MetricsSnapshot rollup;
  for (std::size_t m = 0; m < members_.size(); ++m) {
    MetricsSnapshot snap = members_[m]->CollectMetrics();
    const std::string id = std::to_string(m);
    rollup.entries.reserve(rollup.entries.size() + snap.entries.size());
    for (MetricsSnapshot::Entry& e : snap.entries) {
      e.labels.emplace_back("machine", id);
      rollup.entries.push_back(std::move(e));
    }
  }
  return rollup;
}

Fleet::FootprintSummary Fleet::CollectFootprint() {
  FootprintSummary summary;
  summary.machines = members_.size();
  for (const auto& member : members_) {
    const Machine::Footprint fp = member->machine().MeasureFootprint();
    summary.total_bytes += fp.total_bytes();
    summary.max_machine_bytes = std::max(summary.max_machine_bytes, fp.total_bytes());
  }
  for (const auto& tmpl : templates_) {
    summary.template_bytes += tmpl->resident_bytes();
  }
  return summary;
}

}  // namespace vusion::fleet
