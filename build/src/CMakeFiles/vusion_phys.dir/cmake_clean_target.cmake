file(REMOVE_RECURSE
  "libvusion_phys.a"
)
