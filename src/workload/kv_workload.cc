#include "src/workload/kv_workload.h"

#include "src/sim/stats.h"

namespace vusion {

KvWorkload::Config KvWorkload::MemcachedConfig() {
  Config config;
  config.slab_pages = 4096;
  config.accesses_per_op = 1;
  config.base_service = 4 * kMicrosecond;
  return config;
}

KvWorkload::Config KvWorkload::RedisConfig() {
  Config config;
  config.slab_pages = 5120;
  config.accesses_per_op = 2;  // dict entry + value object
  config.base_service = 5 * kMicrosecond;
  return config;
}

KvWorkload::KvWorkload(Process& server, const Config& config, std::uint64_t seed)
    : server_(&server), config_(config), rng_(seed) {
  slab_ = server.AllocateRegion(config.slab_pages, PageType::kAnonymous,
                                /*mergeable=*/true, /*thp_eligible=*/true);
  for (std::size_t i = 0; i < config.slab_pages; ++i) {
    server.SetupMapPattern(VaddrToVpn(slab_) + i, 0x51ab0000ULL + rng_.Next());
  }
}

KvResult KvWorkload::Run() {
  Machine& machine = server_->machine();
  LatencyModel& lm = machine.latency();
  const SimTime start = machine.clock().now();

  std::vector<double> get_service;
  std::vector<double> set_service;
  for (std::size_t op = 0; op < config_.ops; ++op) {
    const std::uint64_t key = rng_.NextBelow(config_.key_space);
    const bool is_set = rng_.NextBool(config_.set_ratio);
    const SimTime op_start = machine.clock().now();
    lm.Charge(config_.base_service);
    // 32-byte objects: 64 per page after slab overhead.
    std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    for (std::size_t a = 0; a < config_.accesses_per_op; ++a) {
      h ^= h >> 29;
      h *= 0xbf58476d1ce4e5b9ULL;
      const std::size_t page = h % config_.slab_pages;
      const std::size_t offset = ((h >> 24) % 64) * 64;
      const VirtAddr addr = slab_ + page * kPageSize + offset;
      if (is_set && a + 1 == config_.accesses_per_op) {
        server_->Write64(addr, key);
      } else {
        server_->Read64(addr);
      }
    }
    const auto service = static_cast<double>(machine.clock().now() - op_start);
    (is_set ? set_service : get_service).push_back(service);
  }

  KvResult result;
  const double elapsed_s = static_cast<double>(machine.clock().now() - start) / 1e9;
  if (elapsed_s > 0) {
    result.kreq_per_s = static_cast<double>(config_.ops) / (elapsed_s * 1000.0);
  }
  // Client-visible latency: network RTT plus queueing behind `concurrency` clients.
  auto to_ms = [this](double service_ns) {
    return (static_cast<double>(config_.network_rtt) +
            service_ns * static_cast<double>(config_.concurrency) / 4.0) /
           1e6;
  };
  result.get_p90_ms = to_ms(Percentile(get_service, 90));
  result.get_p99_ms = to_ms(Percentile(get_service, 99));
  result.get_p999_ms = to_ms(Percentile(get_service, 99.9));
  result.set_p90_ms = to_ms(Percentile(set_service, 90));
  result.set_p99_ms = to_ms(Percentile(set_service, 99));
  result.set_p999_ms = to_ms(Percentile(set_service, 99.9));
  return result;
}

}  // namespace vusion
