#include "src/workload/parsec_workload.h"

#include <array>

namespace vusion {

namespace {

constexpr std::array<SyntheticBenchmark, 12> kParsecSuite = {{
    {"blackscholes", 150, 0.30, 0.90, 0.25, 1000000},
    {"bodytrack", 225, 0.35, 0.85, 0.30, 1000000},
    {"canneal", 650, 0.65, 0.50, 0.30, 1000000},
    {"dedup", 450, 0.45, 0.70, 0.40, 1000000},
    {"facesim", 525, 0.50, 0.70, 0.35, 1000000},
    {"ferret", 325, 0.40, 0.75, 0.30, 1000000},
    {"fluidanimate", 375, 0.45, 0.75, 0.40, 1000000},
    {"freqmine", 300, 0.40, 0.80, 0.30, 1000000},
    {"streamcluster", 425, 0.70, 0.55, 0.25, 1000000},
    {"swaptions", 100, 0.15, 0.95, 0.25, 1000000},
    {"vips", 250, 0.35, 0.85, 0.35, 1000000},
    {"x264", 350, 0.40, 0.80, 0.35, 1000000},
}};

}  // namespace

std::span<const SyntheticBenchmark> ParsecWorkload::Suite() { return kParsecSuite; }

}  // namespace vusion
