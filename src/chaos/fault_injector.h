// Deterministic fault injection for the simulated MM stack. A FaultInjector is a
// seeded, policy-driven source of "should this operation fail right now?"
// decisions, hung off Machine and consulted at a fixed set of injection sites:
// the frame allocators (transient allocation failure), the fusion engines (scan
// interruption, merge abort, stale-checksum forcing), the page-fault handler
// (spurious retry), and process lifecycle (VM teardown mid-scan).
//
// Determinism contract: the fault schedule is a pure function of the 64-bit
// seed and the per-site visit ordinals — never wall-clock, never host thread
// timing. Every fault that fires is recorded as a (site, visit) pair, so a run
// can be replayed byte-for-byte by handing the recorded schedule to a second
// injector (explicit-schedule mode), and a failing schedule can be shrunk by
// bisection while preserving exact replay of the surviving faults.

#ifndef VUSION_SRC_CHAOS_FAULT_INJECTOR_H_
#define VUSION_SRC_CHAOS_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/sim/rng.h"

namespace vusion {

class MetricsRegistry;

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

// Every place the injector can force a failure. kBuddyAlloc covers Allocate()
// and AllocateOrder() (the former routes through the latter); the scan-side
// sites are checked by whichever engine is running.
enum class FaultSite : std::uint8_t {
  kBuddyAlloc,      // buddy AllocateOrder returns kInvalidFrame (transient OOM)
  kLinearAlloc,     // linear allocator skips a candidate frame
  kPoolAlloc,       // randomized pool draw/refill fails
  kScanInterrupt,   // engine abandons the rest of the current scan batch
  kMergeAbort,      // a single merge/fake-merge attempt is abandoned
  kStaleChecksum,   // engine's stored checksum is corrupted (forces re-hash path)
  kSpuriousFault,   // fault handler returns without resolving (hardware retry)
  kTeardown,        // campaign driver tears down a VM at a scan phase boundary
  kCount,           // sentinel
};

[[nodiscard]] const char* FaultSiteName(FaultSite site);
// Returns kCount when the name is unknown.
[[nodiscard]] FaultSite ParseFaultSite(const std::string& name);

struct ChaosConfig {
  std::uint64_t seed = 1;
  // Per-site probability that a visit fires. Zero disables the site entirely
  // (no RNG draw, so enabling chaos with all-zero rates is still bit-identical
  // to chaos-off at every site).
  std::array<double, static_cast<std::size_t>(FaultSite::kCount)> rates{};

  void SetAllRates(double rate) { rates.fill(rate); }
  void SetRate(FaultSite site, double rate) {
    rates[static_cast<std::size_t>(site)] = rate;
  }
  [[nodiscard]] double rate(FaultSite site) const {
    return rates[static_cast<std::size_t>(site)];
  }
};

// One fired fault: the site and the per-site visit ordinal (0-based) at which
// it fired. The full ordered list of these is the fault schedule.
struct FaultRecord {
  FaultSite site = FaultSite::kCount;
  std::uint64_t visit = 0;

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

// Serializes a schedule as "site@visit,site@visit,..." for repro command lines.
[[nodiscard]] std::string FormatSchedule(const std::vector<FaultRecord>& schedule);
// Parses the FormatSchedule format; returns false on malformed input.
bool ParseSchedule(const std::string& text, std::vector<FaultRecord>* out);

class FaultInjector {
 public:
  // Probabilistic mode: each visit to a site with rate > 0 draws from a private
  // RNG forked off the seed. Fired faults are recorded in injected_schedule().
  explicit FaultInjector(const ChaosConfig& config);

  // Explicit-schedule mode: exactly the listed (site, visit) pairs fire; no RNG
  // is consulted. Used for replay and for shrinking.
  FaultInjector(const ChaosConfig& config, const std::vector<FaultRecord>& schedule);

  // Hot-path query: advances the site's visit counter and reports whether this
  // visit fails. Returns false (without advancing) while suppressed (see
  // ScopedSuppress) so must-not-fail allocations stay exempt.
  bool ShouldFail(FaultSite site);

  // Bookkeeping for the recovery paths: a retry after a transient fault, or a
  // graceful degradation (skip page / requeue / shrink pool).
  void RecordRetry() { ++retries_; }
  void RecordDegradation() { ++degradations_; }

  [[nodiscard]] std::uint64_t visits(FaultSite site) const {
    return visits_[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] std::uint64_t injected(FaultSite site) const {
    return injected_[static_cast<std::size_t>(site)];
  }
  [[nodiscard]] std::uint64_t total_injected() const;
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t degradations() const { return degradations_; }
  [[nodiscard]] const std::vector<FaultRecord>& injected_schedule() const {
    return schedule_log_;
  }
  [[nodiscard]] const ChaosConfig& config() const { return config_; }

  // Publishes chaos.* counters (faults by site, visits by site, retries,
  // degradations) into the registry. Pull-harvest style: call before snapshot.
  void ExportMetrics(MetricsRegistry& metrics) const;

  // Savestates: mode, RNG stream position, planned schedule, per-site visit/
  // injection ordinals, and the fired-fault log — everything needed for the
  // post-restore schedule to continue exactly where the saved run left off.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  // RAII exemption for allocations that model kernel __GFP_NOFAIL paths (page
  // table node allocation, test setup scaffolding). While at least one
  // ScopedSuppress is live on this thread, ShouldFail is inert: it neither
  // fires nor advances visit counters, so suppressed code paths do not perturb
  // the schedule of the surrounding run.
  class ScopedSuppress {
   public:
    ScopedSuppress() { ++depth_; }
    ~ScopedSuppress() { --depth_; }
    ScopedSuppress(const ScopedSuppress&) = delete;
    ScopedSuppress& operator=(const ScopedSuppress&) = delete;

    [[nodiscard]] static bool active() { return depth_ > 0; }

   private:
    static thread_local int depth_;
  };

 private:
  ChaosConfig config_;
  bool explicit_mode_ = false;
  Rng rng_;
  // Explicit mode: per-site set of visit ordinals that must fire.
  std::array<std::unordered_set<std::uint64_t>,
             static_cast<std::size_t>(FaultSite::kCount)>
      planned_;
  std::array<std::uint64_t, static_cast<std::size_t>(FaultSite::kCount)> visits_{};
  std::array<std::uint64_t, static_cast<std::size_t>(FaultSite::kCount)> injected_{};
  std::uint64_t retries_ = 0;
  std::uint64_t degradations_ = 0;
  std::vector<FaultRecord> schedule_log_;
};

}  // namespace vusion

#endif  // VUSION_SRC_CHAOS_FAULT_INJECTOR_H_
