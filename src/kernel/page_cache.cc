#include "src/kernel/page_cache.h"

namespace vusion {

PageCache::PageCache(Process& owner, std::uint64_t capacity_pages)
    : owner_(&owner), capacity_(capacity_pages) {
  const VirtAddr base =
      owner.AllocateRegion(capacity_pages, PageType::kPageCache, /*mergeable=*/true,
                           /*thp_eligible=*/false);
  region_start_ = VaddrToVpn(base);
  free_slots_.reserve(capacity_pages);
  for (std::uint64_t i = 0; i < capacity_pages; ++i) {
    free_slots_.push_back(region_start_ + capacity_pages - 1 - i);  // pop() yields low vpns first
  }
}

std::uint64_t PageCache::FileSeed(std::uint64_t file_id, std::uint32_t page_index) {
  std::uint64_t x = (file_id * 0x9e3779b97f4a7c15ULL) ^ (page_index + 0x51ed2701ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return x ^ (x >> 31);
}

Vpn PageCache::Ensure(std::uint64_t file_id, std::uint32_t page_index) {
  const std::uint64_t key = Key(file_id, page_index);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.vpn;
  }
  ++misses_;
  Vpn slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    // Evict the least-recently-used page.
    const std::uint64_t victim_key = lru_.back();
    lru_.pop_back();
    const auto victim = entries_.find(victim_key);
    slot = victim->second.vpn;
    owner_->SetupUnmap(slot);
    entries_.erase(victim);
  }
  LatencyModel& lm = owner_->machine().latency();
  lm.Charge(lm.config().page_cache_fill);
  owner_->SetupMapPattern(slot, FileSeed(file_id, page_index));
  lru_.push_front(key);
  entries_[key] = Entry{slot, lru_.begin()};
  return slot;
}

std::uint64_t PageCache::ReadPage(std::uint64_t file_id, std::uint32_t page_index) {
  const Vpn vpn = Ensure(file_id, page_index);
  return owner_->Read64(VpnToVaddr(vpn));
}

void PageCache::WritePage(std::uint64_t file_id, std::uint32_t page_index,
                          std::uint64_t value) {
  const Vpn vpn = Ensure(file_id, page_index);
  owner_->Write64(VpnToVaddr(vpn), value);
}

void PageCache::DeleteFile(std::uint64_t file_id) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if ((it->first >> 24) == (Key(file_id, 0) >> 24)) {
      owner_->SetupUnmap(it->second.vpn);
      free_slots_.push_back(it->second.vpn);
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace vusion
