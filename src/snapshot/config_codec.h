// Field-by-field codecs for the plain config structs a snapshot embeds. The
// configs are serialized so a snapshot is self-describing — RestoreSnapshotToNew
// reconstructs the Machine and engine from the recorded configs before touching
// any state section. Every field is written in declaration order; adding a
// config field is a snapshot format change (bump SnapshotWriter::kVersion).

#ifndef VUSION_SRC_SNAPSHOT_CONFIG_CODEC_H_
#define VUSION_SRC_SNAPSHOT_CONFIG_CODEC_H_

#include "src/fusion/fusion_stats.h"
#include "src/kernel/khugepaged.h"
#include "src/kernel/machine.h"
#include "src/snapshot/io.h"

namespace vusion::snapshot {

inline void WriteCacheConfig(SnapshotWriter& w, const CacheConfig& c) {
  w.U64(c.line_size);
  w.U64(c.ways);
  w.U64(c.sets);
}

inline CacheConfig ReadCacheConfig(SnapshotReader& r) {
  CacheConfig c;
  c.line_size = static_cast<std::size_t>(r.U64());
  c.ways = static_cast<std::size_t>(r.U64());
  c.sets = static_cast<std::size_t>(r.U64());
  return c;
}

inline void WriteDramConfig(SnapshotWriter& w, const DramConfig& c) {
  w.U64(c.row_bytes);
  w.U64(c.banks);
  w.U64(c.refresh_interval);
  w.U32(c.hammer_threshold);
  w.U32(c.single_sided_factor);
  w.F64(c.vulnerable_row_fraction);
  w.U32(c.max_flips_per_row);
  w.U64(c.template_seed);
}

inline DramConfig ReadDramConfig(SnapshotReader& r) {
  DramConfig c;
  c.row_bytes = static_cast<std::size_t>(r.U64());
  c.banks = static_cast<std::size_t>(r.U64());
  c.refresh_interval = r.U64();
  c.hammer_threshold = r.U32();
  c.single_sided_factor = r.U32();
  c.vulnerable_row_fraction = r.F64();
  c.max_flips_per_row = r.U32();
  c.template_seed = r.U64();
  return c;
}

inline void WriteLatencyConfig(SnapshotWriter& w, const LatencyConfig& c) {
  w.U64(c.tlb_hit);
  w.U64(c.tlb_lookup);
  w.U64(c.page_walk_step_cached);
  w.U64(c.page_walk_step_memory);
  w.U64(c.l1_hit);
  w.U64(c.llc_hit);
  w.U64(c.dram_row_hit);
  w.U64(c.dram_row_miss);
  w.U64(c.uncached_access);
  w.U64(c.clflush);
  w.U64(c.page_cache_fill);
  w.U64(c.fault_entry_exit);
  w.U64(c.page_copy_4k);
  w.U64(c.buddy_alloc);
  w.U64(c.buddy_free);
  w.U64(c.pte_update);
  w.U64(c.tree_step);
  w.U64(c.content_compare);
  w.U64(c.content_hash);
  w.U64(c.queue_op);
  w.U64(c.huge_collapse);
  w.U64(c.huge_split);
  w.F64(c.noise_sigma);
}

inline LatencyConfig ReadLatencyConfig(SnapshotReader& r) {
  LatencyConfig c;
  c.tlb_hit = r.U64();
  c.tlb_lookup = r.U64();
  c.page_walk_step_cached = r.U64();
  c.page_walk_step_memory = r.U64();
  c.l1_hit = r.U64();
  c.llc_hit = r.U64();
  c.dram_row_hit = r.U64();
  c.dram_row_miss = r.U64();
  c.uncached_access = r.U64();
  c.clflush = r.U64();
  c.page_cache_fill = r.U64();
  c.fault_entry_exit = r.U64();
  c.page_copy_4k = r.U64();
  c.buddy_alloc = r.U64();
  c.buddy_free = r.U64();
  c.pte_update = r.U64();
  c.tree_step = r.U64();
  c.content_compare = r.U64();
  c.content_hash = r.U64();
  c.queue_op = r.U64();
  c.huge_collapse = r.U64();
  c.huge_split = r.U64();
  c.noise_sigma = r.F64();
  return c;
}

inline void WriteMachineConfig(SnapshotWriter& w, const MachineConfig& c) {
  w.U32(c.frame_count);
  WriteCacheConfig(w, c.cache);
  WriteCacheConfig(w, c.l1_cache);
  w.Bool(c.enable_l1);
  WriteDramConfig(w, c.dram);
  WriteLatencyConfig(w, c.latency);
  w.U64(c.seed);
}

inline MachineConfig ReadMachineConfig(SnapshotReader& r) {
  MachineConfig c;
  c.frame_count = r.U32();
  c.cache = ReadCacheConfig(r);
  c.l1_cache = ReadCacheConfig(r);
  c.enable_l1 = r.Bool();
  c.dram = ReadDramConfig(r);
  c.latency = ReadLatencyConfig(r);
  c.seed = r.U64();
  return c;
}

inline void WriteFusionConfig(SnapshotWriter& w, const FusionConfig& c) {
  w.U64(c.wake_period);
  w.U64(c.pages_per_wake);
  w.U64(c.scan_threads);
  w.Bool(c.scan_streaming);
  w.U64(c.scan_chunk_pages);
  w.Bool(c.zero_pages_only);
  w.Bool(c.unmerge_on_any_access);
  w.U64(c.pool_frames);
  w.U64(c.min_idle_rounds);
  w.Bool(c.working_set_estimation);
  w.Bool(c.deferred_free);
  w.Bool(c.rerandomize_each_scan);
  w.Bool(c.thp_aware);
  w.U64(c.wpf_period);
  w.Bool(c.byte_ordered_trees);
  w.Bool(c.delta_scan);
  w.U64(c.mc_low_watermark);
  w.U64(c.mc_swap_batch);
  w.F64(c.mc_compression_ratio);
}

inline FusionConfig ReadFusionConfig(SnapshotReader& r) {
  FusionConfig c;
  c.wake_period = r.U64();
  c.pages_per_wake = static_cast<std::size_t>(r.U64());
  c.scan_threads = static_cast<std::size_t>(r.U64());
  c.scan_streaming = r.Bool();
  c.scan_chunk_pages = static_cast<std::size_t>(r.U64());
  c.zero_pages_only = r.Bool();
  c.unmerge_on_any_access = r.Bool();
  c.pool_frames = static_cast<std::size_t>(r.U64());
  c.min_idle_rounds = static_cast<std::size_t>(r.U64());
  c.working_set_estimation = r.Bool();
  c.deferred_free = r.Bool();
  c.rerandomize_each_scan = r.Bool();
  c.thp_aware = r.Bool();
  c.wpf_period = r.U64();
  c.byte_ordered_trees = r.Bool();
  c.delta_scan = r.Bool();
  c.mc_low_watermark = static_cast<std::size_t>(r.U64());
  c.mc_swap_batch = static_cast<std::size_t>(r.U64());
  c.mc_compression_ratio = r.F64();
  return c;
}

inline void WriteKhugepagedConfig(SnapshotWriter& w, const KhugepagedConfig& c) {
  w.U64(c.period);
  w.U64(c.ranges_per_wake);
  w.U64(c.min_active_subpages);
  w.Bool(c.adaptive_n);
  w.U64(c.n_min);
  w.U64(c.n_max);
  w.U64(c.pressure_low_frames);
  w.U64(c.pressure_high_frames);
}

inline KhugepagedConfig ReadKhugepagedConfig(SnapshotReader& r) {
  KhugepagedConfig c;
  c.period = r.U64();
  c.ranges_per_wake = static_cast<std::size_t>(r.U64());
  c.min_active_subpages = static_cast<std::size_t>(r.U64());
  c.adaptive_n = r.Bool();
  c.n_min = static_cast<std::size_t>(r.U64());
  c.n_max = static_cast<std::size_t>(r.U64());
  c.pressure_low_frames = static_cast<std::size_t>(r.U64());
  c.pressure_high_frames = static_cast<std::size_t>(r.U64());
  return c;
}

}  // namespace vusion::snapshot

#endif  // VUSION_SRC_SNAPSHOT_CONFIG_CODEC_H_
