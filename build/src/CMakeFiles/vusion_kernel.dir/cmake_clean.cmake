file(REMOVE_RECURSE
  "CMakeFiles/vusion_kernel.dir/kernel/idle_tracker.cc.o"
  "CMakeFiles/vusion_kernel.dir/kernel/idle_tracker.cc.o.d"
  "CMakeFiles/vusion_kernel.dir/kernel/khugepaged.cc.o"
  "CMakeFiles/vusion_kernel.dir/kernel/khugepaged.cc.o.d"
  "CMakeFiles/vusion_kernel.dir/kernel/machine.cc.o"
  "CMakeFiles/vusion_kernel.dir/kernel/machine.cc.o.d"
  "CMakeFiles/vusion_kernel.dir/kernel/page_cache.cc.o"
  "CMakeFiles/vusion_kernel.dir/kernel/page_cache.cc.o.d"
  "CMakeFiles/vusion_kernel.dir/kernel/page_fault_handler.cc.o"
  "CMakeFiles/vusion_kernel.dir/kernel/page_fault_handler.cc.o.d"
  "CMakeFiles/vusion_kernel.dir/kernel/process.cc.o"
  "CMakeFiles/vusion_kernel.dir/kernel/process.cc.o.d"
  "libvusion_kernel.a"
  "libvusion_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
