// Machine-wide invariant auditor (the chaos harness's oracle): walks every
// process's page tables, the TLBs, the cache hierarchy's per-frame counters,
// and the installed fusion engine's private structures, and checks that they
// all describe the same machine:
//  - frame refcounts equal the number of PTEs mapping the frame,
//  - fused (refcounted) frames are read-only everywhere,
//  - tree/checksum entries point at live frames (engine hooks),
//  - the deferred-free queue and entropy pool hold no mapped frames,
//  - every TLB entry agrees with the page table it caches,
//  - the LLC/L1 per-frame line counters match the resident lines,
//  - mapped, page-table, and engine-owned frames exactly partition the
//    allocated set (no leaks, no double ownership).
//
// The auditor only reads simulated state; it never charges latency, draws from
// any RNG, or mutates anything, so auditing is invisible to the determinism
// contract. Slow mode means calling Audit() after every workload event; fast
// mode means calling it at epoch boundaries — the check set is identical.

#ifndef VUSION_SRC_CHAOS_INVARIANT_AUDITOR_H_
#define VUSION_SRC_CHAOS_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/audit.h"

namespace vusion {

class FusionEngine;
class Machine;
class MetricsRegistry;

struct AuditReport {
  bool ok = true;
  std::uint64_t checks = 0;
  std::vector<std::string> violations;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(Machine& machine) : machine_(&machine) {}

  // Runs the full machine-wide check suite. `engine` (may be null) additionally
  // audits the installed fusion engine's structures against the kernel.
  AuditReport Audit(FusionEngine* engine = nullptr);

  [[nodiscard]] std::uint64_t audits_run() const { return audits_run_; }
  [[nodiscard]] std::uint64_t audits_failed() const { return audits_failed_; }
  [[nodiscard]] std::uint64_t checks_total() const { return checks_total_; }

  void ExportMetrics(MetricsRegistry& metrics) const;

 private:
  Machine* machine_;
  std::uint64_t audits_run_ = 0;
  std::uint64_t audits_failed_ = 0;
  std::uint64_t checks_total_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_CHAOS_INVARIANT_AUDITOR_H_
