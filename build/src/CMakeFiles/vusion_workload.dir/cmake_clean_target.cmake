file(REMOVE_RECURSE
  "libvusion_workload.a"
)
