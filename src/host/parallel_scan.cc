#include "src/host/parallel_scan.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <shared_mutex>
#include <thread>

#include "src/host/clock.h"

namespace vusion::host {

namespace {

// Streaming chunk size when the engine leaves it on auto: small enough that the
// merge starts long before hashing finishes, large enough that the per-chunk
// claim/publish cost and the scan-gate acquisition amortize.
constexpr std::size_t kAutoChunkPages = 32;

void MaxRelaxed(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void ParallelScanPipeline::ResolveAndPeek(ScanItem& item, const Phase1Filter& filter) const {
  if (item.frame == kInvalidFrame) {
    if (item.as == nullptr) {
      return;
    }
    const Pte* pte = item.as->GetPte(item.vpn);
    if (pte == nullptr || !pte->present()) {
      return;
    }
    if (filter && !filter(*pte, item)) {
      return;
    }
    FrameId frame = pte->frame;
    if (pte->huge()) {
      frame += static_cast<FrameId>(item.vpn & (kPagesPerHugePage - 1));
    }
    item.frame = frame;
  }
  item.snapshot = memory_->PeekHash(item.frame);
  // In the barrier shape nothing merges before the join, so the snapshot's own
  // generation IS the pre-merge generation.
  item.premerge_gen = item.snapshot.content_gen;
  item.hashed = true;
}

void ParallelScanPipeline::ResolvePreMerge(ScanItem& item, const Phase1Filter& filter,
                                           const Phase1Probe& probe) const {
  if (probe && probe(item)) {
    // Expected pass-cache replay: leave the frame unresolved so no worker
    // hashes it; the merge replays (or resolves on demand).
    item.frame = kInvalidFrame;
    return;
  }
  if (item.frame == kInvalidFrame) {
    if (item.as == nullptr) {
      return;
    }
    const Pte* pte = item.as->GetPte(item.vpn);
    if (pte == nullptr || !pte->present()) {
      return;
    }
    if (filter && !filter(*pte, item)) {
      return;
    }
    FrameId frame = pte->frame;
    if (pte->huge()) {
      frame += static_cast<FrameId>(item.vpn & (kPagesPerHugePage - 1));
    }
    item.frame = frame;
  }
  item.premerge_gen = memory_->content_generation(item.frame);
}

void ParallelScanPipeline::MergeOne(ScanItem& item, ScanTiming& timing,
                                    const std::function<void(ScanItem&)>& merge_one) {
  if (item.hashed) {
    ++timing.speculative_hashes;
    // Conflict check: prime only a snapshot taken at the pre-merge generation
    // that is also still current (the two differ only transiently mid-stream).
    // A mismatch means the merge mutated the frame around the speculative
    // hash; the snapshot is dropped and the engine body rehashes on demand.
    const bool fresh = item.snapshot.content_gen == item.premerge_gen &&
                       memory_->PrimeHash(item.frame, item.snapshot);
    if (!fresh) {
      ++timing.speculative_stale;
    }
  }
  merge_one(item);
}

void ParallelScanPipeline::Run(std::vector<ScanItem>& items, ScanTiming& timing,
                               const Phase1Filter& filter,
                               const std::function<void(ScanItem&)>& merge_one,
                               const std::function<void()>& between_phases,
                               const Phase1Probe& probe) {
  // The streaming shape has no between-phases boundary to announce (hashing is
  // still in flight when merging starts), so an armed phase hook forces the
  // barrier shape. Single-item batches gain nothing from a stream.
  if (streaming_enabled_ && between_phases == nullptr && pool_ != nullptr &&
      items.size() > 1) {
    RunStreaming(items, timing, filter, merge_one, probe);
    return;
  }
  RunBarrier(items, timing, filter, merge_one, between_phases, probe);
}

void ParallelScanPipeline::RunBarrier(std::vector<ScanItem>& items, ScanTiming& timing,
                                      const Phase1Filter& filter,
                                      const std::function<void(ScanItem&)>& merge_one,
                                      const std::function<void()>& between_phases,
                                      const Phase1Probe& probe) {
  // Phase 1: shard the quantum across workers; each chunk only reads simulated
  // state and writes its own disjoint items.
  std::atomic<std::uint64_t> phase1_cpu{0};
  const auto chunk = [&](std::size_t begin, std::size_t end) {
    const std::uint64_t t0 = NowNs();
    for (std::size_t i = begin; i < end; ++i) {
      if (probe && probe(items[i])) {
        continue;  // expected pass-cache replay: skip the resolve and the hash
      }
      ResolveAndPeek(items[i], filter);
    }
    phase1_cpu.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  };
  const std::uint64_t hash_start = NowNs();
  if (pool_ != nullptr && items.size() > 1) {
    pool_->ParallelFor(items.size(), 0, chunk);
  } else {
    chunk(0, items.size());
  }
  timing.phase1_wall_ns += NowNs() - hash_start;
  timing.phase1_cpu_ns += phase1_cpu.load(std::memory_order_relaxed);
  timing.items += items.size();

  if (between_phases) {
    between_phases();
  }

  // Phase 2: serial canonical-order merge. Priming right before each page keeps
  // the snapshot's generation check maximally fresh; the engine body then runs
  // verbatim, charging latencies exactly as the serial reference path.
  const std::uint64_t merge_start = NowNs();
  for (ScanItem& item : items) {
    MergeOne(item, timing, merge_one);
  }
  timing.merge_wall_ns += NowNs() - merge_start;
}

void ParallelScanPipeline::RunStreaming(std::vector<ScanItem>& items, ScanTiming& timing,
                                        const Phase1Filter& filter,
                                        const std::function<void(ScanItem&)>& merge_one,
                                        const Phase1Probe& probe) {
  // Serial pre-pass: probe, PTE-resolve, filter, and pre-merge generation
  // capture all read the batch's pre-merge state, exactly as barrier phase 1
  // sees it — they cannot overlap the merge, but they are cheap relative to
  // hashing, which is all the workers do.
  const std::uint64_t prepass_start = NowNs();
  for (ScanItem& item : items) {
    ResolvePreMerge(item, filter, probe);
  }
  const std::uint64_t prepass_ns = NowNs() - prepass_start;

  std::atomic<std::uint64_t> hash_cpu{0};
  std::atomic<std::uint64_t> hash_last_end{0};
  const auto hash_chunk = [&](std::size_t begin, std::size_t end) {
    const std::uint64_t t0 = NowNs();
    {
      // Shared hold for the whole chunk: content mutators (exclusive) are
      // fenced out, so each peeked {content, generation} pair is consistent.
      std::shared_lock<std::shared_mutex> gate(memory_->scan_gate());
      for (std::size_t i = begin; i < end; ++i) {
        ScanItem& item = items[i];
        if (item.frame == kInvalidFrame) {
          continue;  // probe-skipped, not present, or filtered out pre-merge
        }
        item.snapshot = memory_->PeekHash(item.frame);
        item.hashed = true;
      }
    }
    const std::uint64_t t1 = NowNs();
    hash_cpu.fetch_add(t1 - t0, std::memory_order_relaxed);
    MaxRelaxed(hash_last_end, t1);
  };

  std::size_t chunk = chunk_pages_;
  if (chunk == 0) {
    chunk = std::min(kAutoChunkPages, std::max<std::size_t>(1, items.size() / 4));
  }

  memory_->BeginStreamingScan();
  ThreadPool::Stream* stream = pool_->BeginStream(items.size(), chunk, hash_chunk);
  std::exception_ptr merge_error;
  std::uint64_t merge_wall = 0;
  try {
    std::size_t next = 0;
    std::size_t ready = 0;
    while (next < items.size()) {
      if (next >= ready) {
        ready = pool_->StreamReadyItems(stream);
        if (next >= ready) {
          // Ahead of the workers: hash an unclaimed chunk ourselves, or spin
          // briefly on a chunk already in flight elsewhere.
          if (!pool_->HelpStream(stream)) {
            std::this_thread::yield();
          }
          continue;
        }
      }
      // Consume the contiguously-ready prefix in canonical order. merge_wall
      // accumulates only these segments — actual serial merge work, not the
      // waits — so overlap efficiency compares true hash and merge costs.
      const std::uint64_t m0 = NowNs();
      for (; next < ready; ++next) {
        MergeOne(items[next], timing, merge_one);
      }
      merge_wall += NowNs() - m0;
    }
  } catch (...) {
    merge_error = std::current_exception();
  }
  try {
    pool_->JoinStream(stream);
  } catch (...) {
    if (merge_error == nullptr) {
      merge_error = std::current_exception();
    }
  }
  memory_->EndStreamingScan();

  timing.phase1_cpu_ns += prepass_ns + hash_cpu.load(std::memory_order_relaxed);
  timing.items += items.size();
  const std::uint64_t last_end = hash_last_end.load(std::memory_order_relaxed);
  // Wall span of phase-1 work: pre-pass start through the last chunk
  // completion (zero hashed chunks leave last_end at 0 → count the pre-pass).
  timing.phase1_wall_ns +=
      last_end > prepass_start ? last_end - prepass_start : NowNs() - prepass_start;
  timing.merge_wall_ns += merge_wall;
  ++timing.streamed_batches;

  if (merge_error != nullptr) {
    std::rethrow_exception(merge_error);
  }
}

}  // namespace vusion::host
