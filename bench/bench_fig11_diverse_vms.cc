// Figure 11: memory consumption when starting 16 VMs of diverse images (from the
// 44-image catalog) at the same time. Expected shape: VUsion matches KSM's fusion
// rate; VUsion-THP trades fusion for conserved huge pages.

#include <cstdio>
#include <vector>

#include "src/sim/stats.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

constexpr SimTime kSample = 10 * kSecond;
constexpr SimTime kTotal = 300 * kSecond;

std::vector<double> RunSeries(EngineKind kind, bench::Reporter& reporter) {
  ScenarioConfig config = EvalScenario(kind);
  config.machine.frame_count = 1u << 17;  // 512 MB host for 16 larger guests
  Scenario scenario(config);
  Rng rng(99);
  std::vector<Process*> vms;
  for (std::size_t i = 0; i < 16; ++i) {
    VmImageSpec spec = VmImage::CatalogImage(rng.NextBelow(VmImage::kCatalogSize));
    spec.total_pages = 4096;         // 16 MB guests
    spec.map_anon_as_thp = true;     // KVM guests are THP-backed
    vms.push_back(&scenario.BootVm(spec, 500 + i));
  }
  std::vector<double> series;
  for (SimTime t = 0; t <= kTotal; t += kSample) {
    // Sparse background activity: each guest's services touch about one page per
    // 2 MB range. Under the paper's n=1 performance policy this keeps whole THPs
    // active (the fusion-vs-THP trade-off Figure 11 quantifies).
    for (Process* vm : vms) {
      for (const VmArea& vma : vm->address_space().vmas().areas()) {
        for (Vpn base = vma.start; base + kPagesPerHugePage <= vma.end();
             base += kPagesPerHugePage) {
          vm->Read64(VpnToVaddr(base + rng.NextBelow(kPagesPerHugePage)));
        }
      }
    }
    scenario.RunFor(kSample);
    series.push_back(scenario.consumed_mb());
  }
  reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  return series;
}

void Run() {
  bench::Reporter reporter("fig11_diverse_vms");
  reporter.Header("Figure 11: memory consumption of 16 diverse VMs (MB)");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::vector<std::vector<double>> all;
  for (const EngineKind kind : EvalEngines()) {
    all.push_back(RunSeries(kind, reporter));
    reporter.AddSeries(EngineKindName(kind), all.back());
  }
  std::printf("%-8s %-10s %-10s %-10s %-12s\n", "t(s)", "no-dedup", "KSM", "VUsion",
              "VUsion-THP");
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    std::printf("%-8llu %-10.1f %-10.1f %-10.1f %-12.1f\n",
                static_cast<unsigned long long>(i * (kSample / kSecond)), all[0][i], all[1][i],
                all[2][i], all[3][i]);
  }
  std::printf("\n%s", RenderSeries({"no-dedup", "KSM", "VUsion", "VUsion-THP"}, all).c_str());
  const double saved_ksm = all[0].back() - all[1].back();
  const double saved_vusion = all[0].back() - all[2].back();
  const double saved_thp = all[0].back() - all[3].back();
  std::printf("\nsaved MB: KSM=%.1f VUsion=%.1f (%.0f%% of KSM) VUsion-THP=%.1f (%.0f%%)\n",
              saved_ksm, saved_vusion, 100.0 * saved_vusion / saved_ksm, saved_thp,
              100.0 * saved_thp / saved_ksm);
  std::printf("paper: VUsion ~= KSM; VUsion-THP reduces fusion (~61%% less) to keep THPs\n");
  reporter.AddRow("saved_mb", {{"ksm_mb", saved_ksm},
                               {"vusion_mb", saved_vusion},
                               {"vusion_pct_of_ksm", 100.0 * saved_vusion / saved_ksm},
                               {"vusion_thp_mb", saved_thp},
                               {"vusion_thp_pct_of_ksm", 100.0 * saved_thp / saved_ksm}});
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
