#include "src/sim/rng.h"

#include <cmath>
#include <numbers>

namespace vusion {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      m = static_cast<__uint128_t>(Next()) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller produces two independent normals per (u1, u2) pair; returning
  // the cached sine-term on alternate calls halves the transcendental cost,
  // which is the dominant host expense of the latency model's noise draws
  // (sin and cos on the same angle compile to one sincos call).
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_gaussian_ = r * std::sin(theta);
  has_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLogNormal(double median, double sigma) {
  return median * std::exp(sigma * NextGaussian());
}

void Rng::Shuffle(std::vector<std::uint32_t>& values) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = NextBelow(i);
    std::swap(values[i - 1], values[j]);
  }
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace vusion
