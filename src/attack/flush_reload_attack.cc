#include "src/attack/flush_reload_attack.h"

#include <sstream>

namespace vusion {

namespace {
constexpr std::uint64_t kSecretSeed = 0xf1005ec7;
constexpr std::uint64_t kControlSeed = 0x0c0ffee0;
constexpr std::size_t kTrials = 64;
}  // namespace

AttackOutcome FlushReloadAttack::Run(EngineKind kind, std::uint64_t seed) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& attacker = env.attacker();
  Process& victim = env.victim();

  const VirtAddr victim_base =
      victim.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  const VirtAddr victim_page = victim_base;
  victim.SetupMapPattern(VaddrToVpn(victim_page), kSecretSeed);

  const VirtAddr base =
      attacker.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  const VirtAddr guess = base;                 // same content as the victim page
  const VirtAddr control = base + kPageSize;   // unique content
  attacker.SetupMapPattern(VaddrToVpn(guess), kSecretSeed);
  attacker.SetupMapPattern(VaddrToVpn(control), kControlSeed);

  env.WaitFusionRounds(6);

  std::vector<double> guess_reloads;
  std::vector<double> control_reloads;
  for (std::size_t t = 0; t < kTrials; ++t) {
    // FLUSH the guess, make the victim touch its copy, RELOAD the guess.
    attacker.FlushCacheLine(guess);
    victim.Read64(victim_page);
    guess_reloads.push_back(static_cast<double>(attacker.TimedRead(guess)));

    attacker.FlushCacheLine(control);
    victim.Read64(victim_page);
    control_reloads.push_back(static_cast<double>(attacker.TimedRead(control)));
  }

  AttackOutcome outcome;
  double p = 0.0;
  outcome.success = TimingDistinguishable(guess_reloads, control_reloads, &p);
  outcome.confidence = 1.0 - p;
  std::ostringstream detail;
  detail << "reload KS p=" << p;
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
