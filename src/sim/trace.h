// Event tracing: a bounded ring buffer of typed, timestamped events emitted by the
// kernel and the fusion engines (the simulator's equivalent of the kernel
// tracepoints the original VUsion patch reused). Disabled by default; tests and
// tools enable it to assert on event sequences or summarize behaviour.

#ifndef VUSION_SRC_SIM_TRACE_H_
#define VUSION_SRC_SIM_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/clock.h"

namespace vusion {

enum class TraceEventType : std::uint8_t {
  kFault,       // any page fault entering the handler
  kMerge,       // page joined a shared copy
  kFakeMerge,   // VUsion fake merge / MC new compressed record
  kUnmergeCow,  // copy-on-write unmerge (or swap-in major fault)
  kUnmergeCoa,  // copy-on-access unmerge
  kRelocate,    // per-round backing re-randomization
  kSwapOut,     // page left resident memory for the swap cache
  kCollapse,    // khugepaged built a THP
  kSplit,       // a THP was broken into small pages
  kCount,       // sentinel
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  SimTime time = 0;
  TraceEventType type = TraceEventType::kFault;
  std::uint32_t process_id = 0;
  std::uint64_t vpn = 0;
  std::uint32_t frame = 0;
};

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1u << 16);

  // Savestates: ring contents verbatim (with the write cursor, so ring phase —
  // and therefore which future events overwrite which — survives the trip),
  // plus the lifetime counters.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void Emit(SimTime time, TraceEventType type, std::uint32_t process_id, std::uint64_t vpn,
            std::uint32_t frame);

  // Events in emission order (oldest first), bounded by capacity.
  [[nodiscard]] std::vector<TraceEvent> Events() const;
  [[nodiscard]] std::uint64_t count(TraceEventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  // Lifetime counters; they survive Clear(). Deriving dropped() from
  // total_ - occupancy would forget pre-Clear drops, underreporting after a
  // mid-run drain — hence the explicit counter.
  [[nodiscard]] std::uint64_t total_emitted() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  // Drains the ring and per-type counts; lifetime totals are preserved.
  void Clear();

  // One line per event type with its count.
  [[nodiscard]] std::string Summary() const;

  // Host bytes committed to the ring. Zero until the first enabled Emit: the
  // ring is sized lazily so the (default-off) tracer costs nothing per Machine
  // in a large fleet.
  [[nodiscard]] std::size_t resident_bytes() const {
    return buffer_.capacity() * sizeof(TraceEvent);
  }

 private:
  bool enabled_ = false;
  std::size_t capacity_;            // ring bound; storage committed on first Emit
  std::vector<TraceEvent> buffer_;  // ring
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(TraceEventType::kCount)> counts_{};
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_TRACE_H_
