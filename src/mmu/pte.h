// Page-table entry representation.
//
// The bits VUsion's implementation manipulates are modeled faithfully (§7.1):
//  - kPteReserved: x86 reserved bits set => the CPU faults on ANY access regardless
//    of permission bits. This is how Share-xor-Fetch removes all access.
//  - kPteCacheDisable: the page cannot be (pre)fetched into the cache, closing the
//    prefetch side channel.
//  - kPteCow is the software copy-on-write marker traditional fusion uses.

#ifndef VUSION_SRC_MMU_PTE_H_
#define VUSION_SRC_MMU_PTE_H_

#include <cstdint>

#include "src/phys/frame.h"

namespace vusion {

using Vpn = std::uint64_t;    // virtual page number (vaddr >> 12)
using VirtAddr = std::uint64_t;

enum PteFlag : std::uint16_t {
  kPtePresent = 1u << 0,
  kPteWritable = 1u << 1,
  kPteAccessed = 1u << 2,
  kPteDirty = 1u << 3,
  kPteReserved = 1u << 4,      // reserved-bit trap: fault on any access
  kPteCacheDisable = 1u << 5,  // uncacheable: defeats prefetch into the LLC
  kPteHuge = 1u << 6,          // PMD-level 2 MB mapping
  kPteCow = 1u << 7,           // software: write-protected shared copy
  kPteSwapped = 1u << 8,       // software: contents live in the swap cache
};

struct Pte {
  FrameId frame = kInvalidFrame;
  std::uint16_t flags = 0;

  [[nodiscard]] bool present() const { return (flags & kPtePresent) != 0; }
  [[nodiscard]] bool writable() const { return (flags & kPteWritable) != 0; }
  [[nodiscard]] bool accessed() const { return (flags & kPteAccessed) != 0; }
  [[nodiscard]] bool dirty() const { return (flags & kPteDirty) != 0; }
  [[nodiscard]] bool reserved_trap() const { return (flags & kPteReserved) != 0; }
  [[nodiscard]] bool cache_disabled() const { return (flags & kPteCacheDisable) != 0; }
  [[nodiscard]] bool huge() const { return (flags & kPteHuge) != 0; }
  [[nodiscard]] bool cow() const { return (flags & kPteCow) != 0; }
};

enum class AccessType : std::uint8_t {
  kRead,
  kWrite,
  kPrefetch,  // software prefetch: silent on fault, but honors cache-disable
};

struct PageFault {
  Vpn vpn = 0;
  AccessType access = AccessType::kRead;
  Pte pte;  // snapshot at fault time
};

}  // namespace vusion

#endif  // VUSION_SRC_MMU_PTE_H_
