#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace vusion {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.NextInRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values reachable
}

TEST(RngTest, StateRoundTripResumesIdenticalStream) {
  Rng a(1234);
  for (int i = 0; i < 17; ++i) {
    (void)a.Next();
  }
  // Odd gaussian count leaves the Box-Muller spare cached, so the round trip
  // must carry it: a restored generator that recomputed the pair would emit a
  // different (shifted) stream.
  (void)a.NextGaussian();
  const Rng::State snap = a.state();
  Rng b(999);
  b.RestoreState(snap);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
    EXPECT_DOUBLE_EQ(a.NextGaussian(), b.NextGaussian());
  }
}

TEST(RngTest, StateCapturesSpareGaussianFlag) {
  Rng rng(77);
  EXPECT_FALSE(rng.state().has_spare_gaussian);
  (void)rng.NextGaussian();
  EXPECT_TRUE(rng.state().has_spare_gaussian);
  (void)rng.NextGaussian();
  EXPECT_FALSE(rng.state().has_spare_gaussian);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.Fork();
  // The child stream should not replay the parent stream.
  Rng parent_copy(9);
  [[maybe_unused]] Rng discarded = parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (child.Next() == a.Next()) ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<std::uint32_t> values(100);
  for (std::uint32_t i = 0; i < 100; ++i) {
    values[i] = i;
  }
  std::vector<std::uint32_t> shuffled = values;
  rng.Shuffle(shuffled);
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(values, shuffled);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(rng.NextLogNormal(100.0, 0.1));
  }
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], 100.0, 2.0);
}

class RngBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundTest, NextBelowRespectsBound) {
  const std::uint64_t bound = GetParam();
  Rng rng(23 + bound);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST_P(RngBoundTest, NextBelowCoversRangeRoughlyUniformly) {
  const std::uint64_t bound = GetParam();
  if (bound > 64) {
    GTEST_SKIP() << "coverage check only for small bounds";
  }
  Rng rng(29 + bound);
  std::vector<int> counts(bound, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextBelow(bound)];
  }
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_GT(counts[v], expected * 0.7) << "value " << v;
    EXPECT_LT(counts[v], expected * 1.3) << "value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1000, 1u << 20,
                                           (std::uint64_t{1} << 40) + 17));

}  // namespace
}  // namespace vusion
