#include "src/mmu/address_space.h"

#include <cassert>

namespace vusion {

AddressSpace::AddressSpace(std::uint32_t id, FrameAllocator& pt_allocator,
                           PhysicalMemory& memory)
    : id_(id), table_(pt_allocator, memory), tlb_(kDefaultTlbEntries) {}

void AddressSpace::MapPage(Vpn vpn, FrameId frame, std::uint16_t flags) {
  Pte* pte = table_.Resolve(vpn, /*create=*/true);
  *pte = Pte{frame, flags};
  tlb_.Invalidate(vpn);
  write_epochs_.Bump(vpn);
}

void AddressSpace::UnmapPage(Vpn vpn) {
  Pte* pte = table_.Resolve(vpn, /*create=*/false);
  if (pte != nullptr) {
    *pte = Pte{};
  }
  tlb_.Invalidate(vpn);
  write_epochs_.Bump(vpn);
}

void AddressSpace::SetPte(Vpn vpn, const Pte& pte) {
  Pte* slot = table_.Resolve(vpn, /*create=*/true);
  *slot = pte;
  tlb_.Invalidate(vpn);
  write_epochs_.Bump(vpn);
}

bool AddressSpace::UpdateFlags(Vpn vpn, std::uint16_t set, std::uint16_t clear) {
  Pte* pte = table_.Resolve(vpn, /*create=*/false);
  if (pte == nullptr || pte->flags == 0) {
    return false;
  }
  pte->flags = static_cast<std::uint16_t>((pte->flags & ~clear) | set);
  tlb_.Invalidate(vpn);
  write_epochs_.Bump(vpn);
  return true;
}

void AddressSpace::MapHugeRange(Vpn vpn_base, FrameId frame_base, std::uint16_t flags) {
  table_.MapHuge(vpn_base, frame_base, flags);
  tlb_.InvalidateRange(vpn_base, vpn_base + kPagesPerHugePage);
  write_epochs_.BumpRange(vpn_base, kPagesPerHugePage);
}

bool AddressSpace::SplitHuge(Vpn vpn) {
  const Vpn base = vpn & ~(kPagesPerHugePage - 1);
  const bool split = table_.SplitHuge(base);
  if (split) {
    tlb_.InvalidateRange(base, base + kPagesPerHugePage);
    write_epochs_.BumpRange(base, kPagesPerHugePage);
  }
  return split;
}

void AddressSpace::CollapseToHuge(Vpn vpn_base, FrameId frame_base, std::uint16_t flags) {
  assert(vpn_base % kPagesPerHugePage == 0);
  table_.MapHuge(vpn_base, frame_base, flags);
  tlb_.InvalidateRange(vpn_base, vpn_base + kPagesPerHugePage);
  write_epochs_.BumpRange(vpn_base, kPagesPerHugePage);
}

void AddressSpace::MadviseMergeable(Vpn start, std::uint64_t pages) {
  const Vpn end = start + pages;
  for (VmArea& vma : vmas_.mutable_areas()) {
    if (vma.start < end && start < vma.end()) {
      vma.mergeable = true;
    }
  }
}

void AddressSpace::MadviseUnmergeable(Vpn start, std::uint64_t pages) {
  const Vpn end = start + pages;
  for (VmArea& vma : vmas_.mutable_areas()) {
    if (vma.start < end && start < vma.end()) {
      vma.mergeable = false;
    }
  }
}

}  // namespace vusion
