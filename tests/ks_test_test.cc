#include "src/sim/ks_test.h"

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace vusion {
namespace {

TEST(KolmogorovQTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(KolmogorovQ(0.0), 1.0);
  EXPECT_NEAR(KolmogorovQ(10.0), 0.0, 1e-12);
  // Known reference point: Q(1.0) ~= 0.27.
  EXPECT_NEAR(KolmogorovQ(1.0), 0.27, 0.01);
  // Monotonically decreasing.
  EXPECT_GT(KolmogorovQ(0.5), KolmogorovQ(1.0));
  EXPECT_GT(KolmogorovQ(1.0), KolmogorovQ(2.0));
}

TEST(KsTwoSampleTest, SameDistributionHighP) {
  Rng rng(1);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian());
  }
  const KsResult result = KsTwoSample(a, b);
  EXPECT_GT(result.p_value, 0.01);
  EXPECT_LT(result.statistic, 0.15);
}

TEST(KsTwoSampleTest, ShiftedDistributionLowP) {
  Rng rng(2);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.NextGaussian());
    b.push_back(rng.NextGaussian() + 1.0);
  }
  const KsResult result = KsTwoSample(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.statistic, 0.3);
}

TEST(KsTwoSampleTest, BimodalVsUnimodal) {
  // The Figure 5 vs Figure 6 situation: a bimodal timing distribution against a
  // unimodal one must be flagged decisively.
  Rng rng(3);
  std::vector<double> bimodal;
  std::vector<double> unimodal;
  for (int i = 0; i < 500; ++i) {
    bimodal.push_back((i % 2 == 0 ? 100.0 : 4000.0) + rng.NextGaussian() * 20.0);
    unimodal.push_back(4000.0 + rng.NextGaussian() * 20.0);
  }
  EXPECT_LT(KsTwoSample(bimodal, unimodal).p_value, 1e-10);
}

TEST(KsUniformTest, UniformSampleAccepted) {
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(rng.NextDouble() * 32768.0);
  }
  const KsResult result = KsUniform(samples, 0.0, 32768.0);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(KsUniformTest, ClusteredSampleRejected) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(100.0 + (i % 10));  // everything near 100
  }
  const KsResult result = KsUniform(samples, 0.0, 32768.0);
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(KsUniformTest, HalfRangeRejected) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(rng.NextDouble() * 16384.0);  // only lower half
  }
  EXPECT_LT(KsUniform(samples, 0.0, 32768.0).p_value, 1e-10);
}

}  // namespace
}  // namespace vusion
