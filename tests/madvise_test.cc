// madvise(MADV_UNMERGEABLE): withdrawing a range from the fusion system must give
// every merged page a private copy back, under every engine.

#include <gtest/gtest.h>

#include "src/fusion/ksm.h"
#include "src/fusion/vusion_engine.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 8192;
  return config;
}

FusionConfig FastFusion() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 256;
  config.pool_frames = 512;
  return config;
}

TEST(MadviseTest, KsmUnregisterBreaksMerges) {
  Machine machine(SmallMachine());
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(4, PageType::kAnonymous, true, false);
  const VirtAddr pb = b.AllocateRegion(4, PageType::kAnonymous, true, false);
  a.SetupMapPattern(VaddrToVpn(pa), 0x11);
  b.SetupMapPattern(VaddrToVpn(pb), 0x11);
  for (int i = 0; i < 200 && ksm.frames_saved() == 0; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_TRUE(ksm.IsMerged(a, VaddrToVpn(pa)));
  const std::uint64_t content = a.Read64(pa);

  a.MadviseUnmergeable(pa, 4);
  EXPECT_FALSE(ksm.IsMerged(a, VaddrToVpn(pa)));
  EXPECT_NE(a.TranslateFrame(VaddrToVpn(pa)), b.TranslateFrame(VaddrToVpn(pb)));
  EXPECT_EQ(a.Read64(pa), content);  // private copy has the same bytes
  // b's side still merged/intact.
  EXPECT_EQ(b.Read64(pb), content);
  // The range never re-merges.
  machine.Idle(100 * kMillisecond);
  EXPECT_FALSE(ksm.IsMerged(a, VaddrToVpn(pa)));
  ksm.Uninstall();
}

TEST(MadviseTest, VUsionUnregisterRestoresAccess) {
  Machine machine(SmallMachine());
  VUsionEngine engine(machine, FastFusion());
  engine.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(8, PageType::kAnonymous, true, false);
  for (int i = 0; i < 8; ++i) {
    a.SetupMapPattern(VaddrToVpn(pa) + i, 0x20 + i);
  }
  for (int i = 0; i < 400 && engine.stats().fake_merges < 8; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_TRUE(engine.IsManaged(a, VaddrToVpn(pa)));

  a.MadviseUnmergeable(pa, 8);
  PhysicalMemory probe(1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(engine.IsManaged(a, VaddrToVpn(pa) + i));
    const Pte* pte = a.address_space().GetPte(VaddrToVpn(pa) + i);
    EXPECT_TRUE(pte->present());
    EXPECT_TRUE(pte->writable());
    EXPECT_FALSE(pte->reserved_trap());
    probe.FillPattern(0, 0x20 + i);
    EXPECT_EQ(a.Read64(pa + i * kPageSize), probe.ReadU64(0, 0));
  }
  // The scanner leaves the range alone afterwards.
  machine.Idle(100 * kMillisecond);
  EXPECT_FALSE(engine.IsManaged(a, VaddrToVpn(pa)));
  engine.Uninstall();
}

TEST(MadviseTest, UnregisterOutsideManagedRangeIsNoop) {
  Machine machine(SmallMachine());
  VUsionEngine engine(machine, FastFusion());
  engine.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(4, PageType::kAnonymous, false, false);
  a.SetupMapPattern(VaddrToVpn(pa), 0x31);
  a.MadviseUnmergeable(pa, 4);  // never registered: nothing to do
  EXPECT_EQ(engine.stats().unmerges_coa, 0u);
  engine.Uninstall();
}

TEST(MadviseTest, ReRegisteringResumesFusion) {
  Machine machine(SmallMachine());
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(4, PageType::kAnonymous, true, false);
  a.SetupMapPattern(VaddrToVpn(pa), 0x41);
  a.SetupMapPattern(VaddrToVpn(pa) + 1, 0x41);
  for (int i = 0; i < 200 && ksm.frames_saved() == 0; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_EQ(ksm.frames_saved(), 1u);
  a.MadviseUnmergeable(pa, 4);
  EXPECT_EQ(ksm.frames_saved(), 0u);
  a.Madvise(pa, 4);
  for (int i = 0; i < 200 && ksm.frames_saved() == 0; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  EXPECT_EQ(ksm.frames_saved(), 1u);
  ksm.Uninstall();
}

}  // namespace
}  // namespace vusion
