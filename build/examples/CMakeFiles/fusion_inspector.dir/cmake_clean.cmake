file(REMOVE_RECURSE
  "CMakeFiles/fusion_inspector.dir/fusion_inspector.cc.o"
  "CMakeFiles/fusion_inspector.dir/fusion_inspector.cc.o.d"
  "fusion_inspector"
  "fusion_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
