# Empty compiler generated dependencies file for vusion_sim.
# This may be replaced when dependencies are built.
