#include "src/fusion/ksm.h"

#include <gtest/gtest.h>

#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 8192;
  return config;
}

FusionConfig FastFusion() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 256;
  return config;
}

class KsmTest : public ::testing::Test {
 protected:
  KsmTest() : machine_(SmallMachine()), ksm_(machine_, FastFusion()) {
    ksm_.Install();
  }
  ~KsmTest() override { ksm_.Uninstall(); }

  // Maps `count` pages with the given seeds in a fresh mergeable region.
  VirtAddr MapPages(Process& p, std::initializer_list<std::uint64_t> seeds) {
    const VirtAddr base =
        p.AllocateRegion(seeds.size(), PageType::kAnonymous, /*mergeable=*/true, false);
    std::size_t i = 0;
    for (const std::uint64_t seed : seeds) {
      p.SetupMapPattern(VaddrToVpn(base) + i++, seed);
    }
    return base;
  }

  void RunRounds(std::uint64_t rounds) {
    const std::uint64_t target = ksm_.stats().full_scans + rounds;
    for (int i = 0; i < 100000 && ksm_.stats().full_scans < target; ++i) {
      machine_.Idle(1 * kMillisecond);
    }
  }

  Machine machine_;
  Ksm ksm_;
};

TEST_F(KsmTest, MergesDuplicatePagesAcrossProcesses) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x111});
  const VirtAddr pb = MapPages(b, {0x111});
  RunRounds(4);
  EXPECT_EQ(a.TranslateFrame(VaddrToVpn(pa)), b.TranslateFrame(VaddrToVpn(pb)));
  EXPECT_TRUE(ksm_.IsMerged(a, VaddrToVpn(pa)));
  EXPECT_TRUE(ksm_.IsMerged(b, VaddrToVpn(pb)));
  EXPECT_EQ(ksm_.frames_saved(), 1u);
  EXPECT_EQ(ksm_.stable_size(), 1u);
  EXPECT_TRUE(ksm_.ValidateTrees());
  // Reads still work and return identical content.
  EXPECT_EQ(a.Read64(pa), b.Read64(pb));
}

TEST_F(KsmTest, MergedFrameIsOneOfTheSharersFrames) {
  // The Flip Feng Shui weakness: the stable copy is backed by a sharer's frame.
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x222});
  const FrameId frame_a = a.TranslateFrame(VaddrToVpn(pa));
  const VirtAddr pb = MapPages(b, {0x222});
  RunRounds(4);
  EXPECT_EQ(a.TranslateFrame(VaddrToVpn(pa)), frame_a);
  EXPECT_EQ(b.TranslateFrame(VaddrToVpn(pb)), frame_a);
}

TEST_F(KsmTest, UniquePagesStayUnmergedInUnstableTree) {
  Process& a = machine_.CreateProcess();
  MapPages(a, {0x301, 0x302, 0x303});
  RunRounds(4);
  EXPECT_EQ(ksm_.frames_saved(), 0u);
  EXPECT_EQ(ksm_.stable_size(), 0u);
  EXPECT_GT(ksm_.unstable_size(), 0u);
  EXPECT_TRUE(ksm_.ValidateTrees());
}

TEST_F(KsmTest, CowUnmergeOnWrite) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x444});
  const VirtAddr pb = MapPages(b, {0x444});
  RunRounds(4);
  ASSERT_TRUE(ksm_.IsMerged(a, VaddrToVpn(pa)));
  const std::uint64_t original = b.Read64(pb);

  a.Write64(pa, 0x1234);
  EXPECT_FALSE(ksm_.IsMerged(a, VaddrToVpn(pa)));
  EXPECT_EQ(a.Read64(pa), 0x1234u);
  // b's copy is unaffected (correct CoW semantics).
  EXPECT_EQ(b.Read64(pb), original);
  EXPECT_NE(a.TranslateFrame(VaddrToVpn(pa)), b.TranslateFrame(VaddrToVpn(pb)));
  EXPECT_EQ(ksm_.stats().unmerges_cow, 1u);
  EXPECT_EQ(ksm_.frames_saved(), 0u);
  // Last sharer's write frees the stable entry.
  b.Write64(pb, 0x5678);
  EXPECT_EQ(ksm_.stable_size(), 0u);
}

TEST_F(KsmTest, ReadDoesNotUnmerge) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x555});
  MapPages(b, {0x555});
  RunRounds(4);
  ASSERT_TRUE(ksm_.IsMerged(a, VaddrToVpn(pa)));
  a.Read64(pa);
  EXPECT_TRUE(ksm_.IsMerged(a, VaddrToVpn(pa)));  // the disclosure-attack surface
}

TEST_F(KsmTest, CoAVariantUnmergesOnRead) {
  Machine machine(SmallMachine());
  FusionConfig config = FastFusion();
  config.unmerge_on_any_access = true;
  Ksm coa(machine, config);
  coa.Install();
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(1, PageType::kAnonymous, true, false);
  a.SetupMapPattern(VaddrToVpn(pa), 0x661);
  const VirtAddr pb = b.AllocateRegion(1, PageType::kAnonymous, true, false);
  b.SetupMapPattern(VaddrToVpn(pb), 0x661);
  for (int i = 0; i < 64 && coa.frames_saved() == 0; ++i) {
    machine.Idle(5 * kMillisecond);
  }
  ASSERT_EQ(coa.frames_saved(), 1u);
  const std::uint64_t value = a.Read64(pa);  // read triggers unmerge
  // The scanner may have already re-merged the (unchanged) page by the time we
  // check - which is exactly why CoA-KSM keeps Figure 4's fusion rates high - so
  // assert on the copy-on-access event itself.
  EXPECT_GE(coa.stats().unmerges_coa, 1u);
  // Content preserved by copy-on-access.
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0x661);
  EXPECT_EQ(value, probe.ReadU64(0, 0));
  coa.Uninstall();
}

TEST_F(KsmTest, ZeroOnlyModeSkipsNonZeroDuplicates) {
  Machine machine(SmallMachine());
  FusionConfig config = FastFusion();
  config.zero_pages_only = true;
  Ksm zksm(machine, config);
  zksm.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr base = a.AllocateRegion(6, PageType::kAnonymous, true, false);
  a.SetupMapZero(VaddrToVpn(base));
  a.SetupMapZero(VaddrToVpn(base) + 1);
  a.SetupMapZero(VaddrToVpn(base) + 2);
  a.SetupMapPattern(VaddrToVpn(base) + 3, 0x771);
  a.SetupMapPattern(VaddrToVpn(base) + 4, 0x771);  // duplicate but NOT zero
  for (int i = 0; i < 200; ++i) {
    machine.Idle(2 * kMillisecond);
  }
  EXPECT_EQ(zksm.frames_saved(), 2u);  // three zero pages -> one copy
  EXPECT_EQ(zksm.stats().zero_page_merges, zksm.stats().merges);
  EXPECT_EQ(a.TranslateFrame(VaddrToVpn(base) + 3),
            a.TranslateFrame(VaddrToVpn(base) + 3));
  EXPECT_NE(a.TranslateFrame(VaddrToVpn(base) + 3),
            a.TranslateFrame(VaddrToVpn(base) + 4));
  zksm.Uninstall();
}

TEST(KsmVolatilityTest, VolatilePagesAreNotInserted) {
  // Drive the scanner one round at a time (pages_per_wake == mergeable pages) and
  // change the page's content every round: the checksum gate must keep it out.
  Machine machine(SmallMachine());
  FusionConfig config = FastFusion();
  config.pages_per_wake = 1;
  Ksm ksm(machine, config);
  ksm.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr base = a.AllocateRegion(1, PageType::kAnonymous, true, false);
  a.SetupMapPattern(VaddrToVpn(base), 0x881);
  for (int round = 0; round < 6; ++round) {
    a.Write64(base, 0x9000 + round);
    ksm.Run();
  }
  EXPECT_EQ(ksm.unstable_size(), 0u);
  // Control: once the content stops changing, two rounds suffice to insert it.
  ksm.Run();
  ksm.Run();
  EXPECT_EQ(ksm.unstable_size(), 1u);
  ksm.Uninstall();
}

TEST_F(KsmTest, UnmapDropsReference) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x991});
  const VirtAddr pb = MapPages(b, {0x991});
  RunRounds(4);
  ASSERT_EQ(ksm_.frames_saved(), 1u);
  a.SetupUnmap(VaddrToVpn(pa));
  EXPECT_EQ(ksm_.frames_saved(), 0u);
  EXPECT_EQ(ksm_.stable_size(), 1u);  // b still holds it
  b.SetupUnmap(VaddrToVpn(pb));
  EXPECT_EQ(ksm_.stable_size(), 0u);
}

TEST_F(KsmTest, MergingSplitsHugePage) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr thp = a.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, true, true);
  ASSERT_TRUE(a.SetupMapHuge(VaddrToVpn(thp), 0xaa00));
  // b has a small page duplicating subpage 5 of a's THP.
  const VirtAddr pb = MapPages(b, {0xaa00 + 5});
  RunRounds(6);
  EXPECT_FALSE(a.address_space().IsHuge(VaddrToVpn(thp)));  // translation side effect
  EXPECT_GE(ksm_.stats().thp_splits, 1u);
  EXPECT_EQ(a.TranslateFrame(VaddrToVpn(thp) + 5), b.TranslateFrame(VaddrToVpn(pb)));
}

TEST_F(KsmTest, ManyDuplicatesConvergeToOneFrame) {
  Process& a = machine_.CreateProcess();
  const std::size_t copies = 32;
  const VirtAddr base = a.AllocateRegion(copies, PageType::kAnonymous, true, false);
  for (std::size_t i = 0; i < copies; ++i) {
    a.SetupMapPattern(VaddrToVpn(base) + i, 0xbb1);
  }
  RunRounds(5);
  EXPECT_EQ(ksm_.frames_saved(), copies - 1);
  const FrameId shared = a.TranslateFrame(VaddrToVpn(base));
  for (std::size_t i = 1; i < copies; ++i) {
    EXPECT_EQ(a.TranslateFrame(VaddrToVpn(base) + i), shared);
  }
  EXPECT_EQ(machine_.memory().refcount(shared), copies);
  EXPECT_TRUE(ksm_.ValidateTrees());
}


TEST_F(KsmTest, UnstableTreeToleratesContentMutation) {
  // Pages already in the unstable tree may be rewritten at any time (no write
  // protection) - the tree may become unbalanced in comparison order, but lookups
  // and subsequent merging must stay correct (paper §2.1).
  Process& a = machine_.CreateProcess();
  const VirtAddr base = a.AllocateRegion(24, PageType::kAnonymous, true, false);
  for (int i = 0; i < 24; ++i) {
    a.SetupMapPattern(VaddrToVpn(base) + i, 0xd00 + i);  // all unique
  }
  RunRounds(3);
  ASSERT_GT(ksm_.unstable_size(), 0u);
  // Mutate half the pages while their stale snapshots sit in the tree.
  for (int i = 0; i < 12; ++i) {
    a.Write64(base + i * kPageSize, 0xfeed + i);
  }
  // New duplicates appear; the engine must still find and merge them.
  Process& b = machine_.CreateProcess();
  const VirtAddr pb = b.AllocateRegion(2, PageType::kAnonymous, true, false);
  b.SetupMapPattern(VaddrToVpn(pb), 0xd00 + 20);  // duplicates an unmutated page
  RunRounds(4);
  EXPECT_TRUE(ksm_.IsMerged(b, VaddrToVpn(pb)));
  EXPECT_TRUE(ksm_.ValidateTrees());
  // Every mutated page still reads back its written value.
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(a.Read64(base + i * kPageSize), 0xfeedu + i);
  }
}

}  // namespace
}  // namespace vusion
