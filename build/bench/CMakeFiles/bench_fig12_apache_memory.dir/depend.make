# Empty dependencies file for bench_fig12_apache_memory.
# This may be replaced when dependencies are built.
