#include "src/chaos/fault_injector.h"

#include <cstdlib>
#include <sstream>

#include "src/sim/metrics.h"

namespace vusion {

thread_local int FaultInjector::ScopedSuppress::depth_ = 0;

namespace {
constexpr std::size_t kSiteCount = static_cast<std::size_t>(FaultSite::kCount);
constexpr const char* kSiteNames[kSiteCount] = {
    "buddy_alloc", "linear_alloc",  "pool_alloc",     "scan_interrupt",
    "merge_abort", "stale_checksum", "spurious_fault", "teardown",
};
}  // namespace

const char* FaultSiteName(FaultSite site) {
  const auto index = static_cast<std::size_t>(site);
  return index < kSiteCount ? kSiteNames[index] : "invalid";
}

FaultSite ParseFaultSite(const std::string& name) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      return static_cast<FaultSite>(i);
    }
  }
  return FaultSite::kCount;
}

std::string FormatSchedule(const std::vector<FaultRecord>& schedule) {
  std::ostringstream out;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (i != 0) {
      out << ',';
    }
    out << FaultSiteName(schedule[i].site) << '@' << schedule[i].visit;
  }
  return out.str();
}

bool ParseSchedule(const std::string& text, std::vector<FaultRecord>* out) {
  out->clear();
  if (text.empty()) {
    return true;
  }
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    const std::size_t at = token.find('@');
    if (at == std::string::npos) {
      return false;
    }
    const FaultSite site = ParseFaultSite(token.substr(0, at));
    if (site == FaultSite::kCount) {
      return false;
    }
    char* end = nullptr;
    const std::uint64_t visit = std::strtoull(token.c_str() + at + 1, &end, 10);
    if (end == token.c_str() + at + 1 || *end != '\0') {
      return false;
    }
    out->push_back(FaultRecord{site, visit});
  }
  return true;
}

FaultInjector::FaultInjector(const ChaosConfig& config)
    : config_(config), rng_(config.seed ^ 0xc4a0517e5u) {}

FaultInjector::FaultInjector(const ChaosConfig& config,
                             const std::vector<FaultRecord>& schedule)
    : config_(config), explicit_mode_(true), rng_(config.seed ^ 0xc4a0517e5u) {
  for (const FaultRecord& record : schedule) {
    if (record.site != FaultSite::kCount) {
      planned_[static_cast<std::size_t>(record.site)].insert(record.visit);
    }
  }
}

bool FaultInjector::ShouldFail(FaultSite site) {
  if (ScopedSuppress::active()) {
    return false;
  }
  const auto index = static_cast<std::size_t>(site);
  const std::uint64_t visit = visits_[index]++;
  bool fire = false;
  if (explicit_mode_) {
    fire = planned_[index].count(visit) != 0;
  } else {
    const double rate = config_.rates[index];
    // Rate zero means "site disabled": skip the draw entirely so enabling the
    // injector with all-zero rates consumes no randomness anywhere.
    fire = rate > 0.0 && rng_.NextBool(rate);
  }
  if (fire) {
    ++injected_[index];
    schedule_log_.push_back(FaultRecord{site, visit});
  }
  return fire;
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : injected_) {
    total += count;
  }
  return total;
}

void FaultInjector::ExportMetrics(MetricsRegistry& metrics) const {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    metrics.GetCounter("chaos.faults_injected", {{"site", FaultSiteName(site)}})
        .Set(injected_[i]);
    metrics.GetCounter("chaos.site_visits", {{"site", FaultSiteName(site)}})
        .Set(visits_[i]);
  }
  metrics.GetCounter("chaos.retries").Set(retries_);
  metrics.GetCounter("chaos.degradations").Set(degradations_);
}

}  // namespace vusion

#include "src/snapshot/io.h"
#include "src/snapshot/rng_codec.h"

#include <algorithm>

namespace vusion {

void FaultInjector::SaveState(snapshot::SnapshotWriter& w) const {
  w.U64(config_.seed);
  for (const double rate : config_.rates) {
    w.F64(rate);
  }
  w.Bool(explicit_mode_);
  snapshot::WriteRng(w, rng_);
  for (const auto& site_plan : planned_) {
    std::vector<std::uint64_t> visits(site_plan.begin(), site_plan.end());
    std::sort(visits.begin(), visits.end());
    w.U64(visits.size());
    for (const std::uint64_t v : visits) {
      w.U64(v);
    }
  }
  for (const std::uint64_t v : visits_) {
    w.U64(v);
  }
  for (const std::uint64_t v : injected_) {
    w.U64(v);
  }
  w.U64(retries_);
  w.U64(degradations_);
  w.U64(schedule_log_.size());
  for (const FaultRecord& record : schedule_log_) {
    w.U8(static_cast<std::uint8_t>(record.site));
    w.U64(record.visit);
  }
}

void FaultInjector::RestoreState(snapshot::SnapshotReader& r) {
  config_.seed = r.U64();
  for (double& rate : config_.rates) {
    rate = r.F64();
  }
  explicit_mode_ = r.Bool();
  snapshot::ReadRng(r, rng_);
  for (auto& site_plan : planned_) {
    site_plan.clear();
    const std::uint64_t n = r.Count(8);
    site_plan.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      site_plan.insert(r.U64());
    }
  }
  for (std::uint64_t& v : visits_) {
    v = r.U64();
  }
  for (std::uint64_t& v : injected_) {
    v = r.U64();
  }
  retries_ = r.U64();
  degradations_ = r.U64();
  schedule_log_.clear();
  const std::uint64_t n = r.Count(9);
  schedule_log_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    FaultRecord record;
    const std::uint8_t site = r.U8();
    if (site >= static_cast<std::uint8_t>(FaultSite::kCount)) {
      throw snapshot::RestoreError("chaos", "bad fault site");
    }
    record.site = static_cast<FaultSite>(site);
    record.visit = r.U64();
    schedule_log_.push_back(record);
  }
}

}  // namespace vusion
