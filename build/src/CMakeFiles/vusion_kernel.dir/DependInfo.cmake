
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/idle_tracker.cc" "src/CMakeFiles/vusion_kernel.dir/kernel/idle_tracker.cc.o" "gcc" "src/CMakeFiles/vusion_kernel.dir/kernel/idle_tracker.cc.o.d"
  "/root/repo/src/kernel/khugepaged.cc" "src/CMakeFiles/vusion_kernel.dir/kernel/khugepaged.cc.o" "gcc" "src/CMakeFiles/vusion_kernel.dir/kernel/khugepaged.cc.o.d"
  "/root/repo/src/kernel/machine.cc" "src/CMakeFiles/vusion_kernel.dir/kernel/machine.cc.o" "gcc" "src/CMakeFiles/vusion_kernel.dir/kernel/machine.cc.o.d"
  "/root/repo/src/kernel/page_cache.cc" "src/CMakeFiles/vusion_kernel.dir/kernel/page_cache.cc.o" "gcc" "src/CMakeFiles/vusion_kernel.dir/kernel/page_cache.cc.o.d"
  "/root/repo/src/kernel/page_fault_handler.cc" "src/CMakeFiles/vusion_kernel.dir/kernel/page_fault_handler.cc.o" "gcc" "src/CMakeFiles/vusion_kernel.dir/kernel/page_fault_handler.cc.o.d"
  "/root/repo/src/kernel/process.cc" "src/CMakeFiles/vusion_kernel.dir/kernel/process.cc.o" "gcc" "src/CMakeFiles/vusion_kernel.dir/kernel/process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vusion_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
