#include "src/phys/linear_allocator.h"

#include "src/chaos/fault_injector.h"

namespace vusion {

LinearAllocator::LinearAllocator(BuddyAllocator& buddy, PhysicalMemory& memory)
    : buddy_(&buddy), memory_(&memory), cursor_(memory.frame_count()) {}

void LinearAllocator::ResetScan() { cursor_ = memory_->frame_count(); }

std::vector<FrameId> LinearAllocator::AllocateRun(std::size_t count) {
  return AllocateRunWithSteal(count, [](FrameId) { return false; });
}

std::vector<FrameId> LinearAllocator::AllocateRunWithSteal(
    std::size_t count, const std::function<bool(FrameId)>& try_steal) {
  std::vector<FrameId> frames;
  frames.reserve(count);
  while (frames.size() < count && cursor_ > 0) {
    const FrameId candidate = cursor_ - 1;
    --cursor_;
    // Injected failure: this candidate becomes a hole (as if unreclaimable),
    // the scan degrades to a shorter / more fragmented run.
    if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kLinearAlloc)) {
      injector_->RecordDegradation();
      continue;
    }
    if (buddy_->AllocateSpecific(candidate)) {
      frames.push_back(candidate);
      continue;
    }
    // In use: try to steal it from the owner; otherwise it becomes a hole.
    if (try_steal(candidate) && buddy_->AllocateSpecific(candidate)) {
      frames.push_back(candidate);
    }
  }
  return frames;
}

FrameId LinearAllocator::Allocate() {
  const std::vector<FrameId> run = AllocateRun(1);
  return run.empty() ? kInvalidFrame : run[0];
}

void LinearAllocator::Free(FrameId frame) { buddy_->Free(frame); }

}  // namespace vusion
