// Quickstart: build a simulated machine, boot two same-image VMs, attach VUsion,
// and watch secure page fusion reclaim the duplicate memory - then demonstrate
// that a write still sees correct copy-on-access semantics.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/fusion/engine_factory.h"
#include "src/workload/scenario.h"

using namespace vusion;

int main() {
  // A 256 MB machine with the paper's cache/DRAM geometry and KSM's default scan
  // rate (100 pages per 20 ms wake-up).
  ScenarioConfig config;
  config.machine.frame_count = 1u << 16;
  config.engine = EngineKind::kVUsion;
  config.fusion.pool_frames = 4096;  // the Randomized Allocation entropy pool
  Scenario scenario(config);

  // Boot two VMs from the same image: lots of identical pages.
  VmImageSpec image;
  image.total_pages = 2048;  // 8 MB guests
  Process& vm1 = scenario.BootVm(image, /*instance_seed=*/1);
  Process& vm2 = scenario.BootVm(image, /*instance_seed=*/2);

  std::printf("booted 2 VMs: consumed %.1f MB\n", scenario.consumed_mb());

  // Let the VUsion scanner work for a minute of simulated time.
  for (int i = 1; i <= 6; ++i) {
    scenario.RunFor(10 * kSecond);
    std::printf("t=%3ds  consumed %.1f MB  (saved %llu frames, %llu fake merges)\n",
                i * 10, scenario.consumed_mb(),
                static_cast<unsigned long long>(scenario.engine()->frames_saved()),
                static_cast<unsigned long long>(scenario.engine()->stats().fake_merges));
  }

  // Copy-on-access semantics: vm1 writes to a fused page; vm2's copy is untouched.
  const VmArea& kernel_vma = vm1.address_space().vmas().areas()[0];
  const VirtAddr addr = VpnToVaddr(kernel_vma.start);
  const std::uint64_t vm2_before = vm2.Read64(addr);
  vm1.Write64(addr, 0xdeadbeef);
  std::printf("\nvm1 wrote 0xdeadbeef to a fused kernel page:\n");
  std::printf("  vm1 reads %#llx\n", static_cast<unsigned long long>(vm1.Read64(addr)));
  std::printf("  vm2 reads %#llx (unchanged: %s)\n",
              static_cast<unsigned long long>(vm2.Read64(addr)),
              vm2.Read64(addr) == vm2_before ? "yes" : "NO - BUG");
  std::printf("\ncopy-on-access events so far: %llu\n",
              static_cast<unsigned long long>(scenario.engine()->stats().unmerges_coa));
  return 0;
}
