// The Table 1 verification matrix as tests: every attack must succeed against the
// engines the paper shows vulnerable and fail against VUsion.

#include <gtest/gtest.h>

#include "src/attack/cain_attack.h"
#include "src/attack/cow_side_channel.h"
#include "src/attack/dedup_est_machina.h"
#include "src/attack/flip_feng_shui.h"
#include "src/attack/flush_reload_attack.h"
#include "src/attack/page_color_attack.h"
#include "src/attack/reuse_flip_feng_shui.h"
#include "src/attack/row_buffer_attack.h"
#include "src/attack/translation_attack.h"

namespace vusion {
namespace {

constexpr std::uint64_t kSeed = 1;

TEST(CowSideChannelTest, SucceedsAgainstKsm) {
  const AttackOutcome outcome = CowSideChannel::Run(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(CowSideChannelTest, SucceedsAgainstWpf) {
  const AttackOutcome outcome = CowSideChannel::Run(EngineKind::kWpf, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(CowSideChannelTest, SucceedsAgainstCoAKsm) {
  // Copy-on-access alone is NOT the defense; without Fake Merging the timing
  // difference between merged and unmerged pages remains.
  const AttackOutcome outcome = CowSideChannel::Run(EngineKind::kKsmCoA, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(CowSideChannelTest, FailsAgainstVUsion) {
  const AttackOutcome outcome = CowSideChannel::Run(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(CowSideChannelTest, NothingToDetectWithoutFusion) {
  const AttackOutcome outcome = CowSideChannel::Run(EngineKind::kNone, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(PageColorAttackTest, SucceedsAgainstKsm) {
  const AttackOutcome outcome = PageColorAttack::Run(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(PageColorAttackTest, SucceedsAgainstWpf) {
  const AttackOutcome outcome = PageColorAttack::Run(EngineKind::kWpf, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(PageColorAttackTest, FailsAgainstVUsion) {
  const AttackOutcome outcome = PageColorAttack::Run(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(FlushReloadAttackTest, SucceedsAgainstKsm) {
  const AttackOutcome outcome = FlushReloadAttack::Run(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(FlushReloadAttackTest, SucceedsAgainstWpf) {
  const AttackOutcome outcome = FlushReloadAttack::Run(EngineKind::kWpf, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(FlushReloadAttackTest, FailsAgainstVUsion) {
  const AttackOutcome outcome = FlushReloadAttack::Run(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(TranslationAttackTest, SucceedsAgainstKsm) {
  const AttackOutcome outcome = TranslationAttack::Run(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(TranslationAttackTest, FailsAgainstVUsion) {
  const AttackOutcome outcome = TranslationAttack::Run(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(FlipFengShuiTest, CorruptsVictimUnderKsm) {
  const AttackOutcome outcome = FlipFengShui::Run(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(FlipFengShuiTest, DefeatedByWpfNewAllocations) {
  // The paper's observation: plain Flip Feng Shui fails against WPF because merges
  // are backed by new frames - it takes the reuse-based variant to break WPF.
  const AttackOutcome outcome = FlipFengShui::Run(EngineKind::kWpf, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(FlipFengShuiTest, FailsAgainstVUsion) {
  const AttackOutcome outcome = FlipFengShui::Run(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(ReuseFlipFengShuiTest, CorruptsVictimUnderWpf) {
  const AttackOutcome outcome = ReuseFlipFengShui::Run(EngineKind::kWpf, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(ReuseFlipFengShuiTest, FailsAgainstVUsion) {
  const AttackOutcome outcome = ReuseFlipFengShui::Run(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(ReuseFlipFengShuiTest, WpfReuseFractionIsNearPerfect) {
  const double reuse = ReuseFlipFengShui::MeasureReuseFraction(EngineKind::kWpf, kSeed);
  EXPECT_GT(reuse, 0.8);  // Figure 3's near-perfect reuse
}

TEST(ReuseFlipFengShuiTest, VUsionReuseFractionIsNoise) {
  const double reuse = ReuseFlipFengShui::MeasureReuseFraction(EngineKind::kVUsion, kSeed);
  EXPECT_LT(reuse, 0.1);
}

TEST(CainAttackTest, RecoversAslrBitsUnderKsm) {
  const AttackOutcome outcome = CainAttack::Run(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(CainAttackTest, RecoversAslrBitsUnderWpf) {
  const AttackOutcome outcome = CainAttack::Run(EngineKind::kWpf, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(CainAttackTest, FailsAgainstVUsion) {
  const AttackOutcome outcome = CainAttack::Run(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(RowBufferAttackTest, DetectsSharingUnderKsm) {
  const AttackOutcome outcome = RowBufferAttack::Run(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(RowBufferAttackTest, FailsAgainstVUsion) {
  const AttackOutcome outcome = RowBufferAttack::Run(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(AttackSurfaceTest, MemoryCombiningHasNoMergeChannel) {
  // The swap-only related-work design never shares frames, so the classic
  // disclosure attack has nothing to detect.
  const AttackOutcome outcome = CowSideChannel::Run(EngineKind::kMemoryCombining, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}


TEST(DedupEstMachinaTest, PartialLeakRecoversHighEntropySecretUnderKsm) {
  const AttackOutcome outcome = DedupEstMachina::RunPartialLeak(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(DedupEstMachinaTest, PartialLeakFailsAgainstVUsion) {
  const AttackOutcome outcome =
      DedupEstMachina::RunPartialLeak(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}

TEST(DedupEstMachinaTest, BirthdayAttackLeaksACollisionUnderKsm) {
  const AttackOutcome outcome = DedupEstMachina::RunBirthday(EngineKind::kKsm, kSeed);
  EXPECT_TRUE(outcome.success) << outcome.detail;
}

TEST(DedupEstMachinaTest, BirthdayAttackFailsAgainstVUsion) {
  const AttackOutcome outcome = DedupEstMachina::RunBirthday(EngineKind::kVUsion, kSeed);
  EXPECT_FALSE(outcome.success) << outcome.detail;
}


// Second-seed robustness for the cheap attacks (the FFS attacks are seed-swept in
// the Figure 3 bench instead; they are too slow to repeat here).
TEST(AttackSeedSweepTest, CowChannelAcrossSeeds) {
  for (const std::uint64_t seed : {2ull, 3ull}) {
    EXPECT_TRUE(CowSideChannel::Run(EngineKind::kKsm, seed).success) << "seed " << seed;
    EXPECT_FALSE(CowSideChannel::Run(EngineKind::kVUsion, seed).success) << "seed " << seed;
  }
}

TEST(AttackSeedSweepTest, FlushReloadAcrossSeeds) {
  for (const std::uint64_t seed : {2ull, 3ull}) {
    EXPECT_TRUE(FlushReloadAttack::Run(EngineKind::kKsm, seed).success) << "seed " << seed;
    EXPECT_FALSE(FlushReloadAttack::Run(EngineKind::kVUsion, seed).success)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace vusion
