// Cross-engine property test: page fusion must be semantically invisible. Under
// every engine, a randomized workload of writes, reads, and idle periods must
// always read back exactly what it wrote, copy-on-write must isolate sharers, and
// the engine's savings accounting must stay consistent.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "src/chaos/invariant_auditor.h"
#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

// Post-run oracle: the whole machine (PTEs, refcounts, TLBs, caches, engine
// structures) must be consistent after any workload.
void ExpectAuditClean(Machine& machine, FusionEngine* engine) {
  InvariantAuditor auditor(machine);
  const AuditReport report = auditor.Audit(engine);
  EXPECT_GT(report.checks, 0u);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
}

struct ParityParam {
  EngineKind kind;
  std::uint64_t seed;
};

class EngineParityTest : public ::testing::TestWithParam<ParityParam> {};

TEST_P(EngineParityTest, RandomWorkloadReadsBackWrites) {
  const ParityParam param = GetParam();
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = param.seed;
  Machine machine(machine_config);
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 1024;
  fusion_config.wpf_period = 20 * kMillisecond;
  ScopedEngine engine(param.kind, machine, fusion_config);

  constexpr std::size_t kProcesses = 3;
  constexpr std::size_t kPagesPerProcess = 96;
  std::vector<Process*> procs;
  std::vector<VirtAddr> bases;
  for (std::size_t p = 0; p < kProcesses; ++p) {
    Process& proc = machine.CreateProcess();
    procs.push_back(&proc);
    const VirtAddr base =
        proc.AllocateRegion(kPagesPerProcess, PageType::kAnonymous, true, false);
    bases.push_back(base);
    for (std::size_t i = 0; i < kPagesPerProcess; ++i) {
      // Deliberately many cross-process duplicates: seed space of 16.
      proc.SetupMapPattern(VaddrToVpn(base) + i, 0x9000 + (i % 16));
    }
  }

  // Reference model: (process, offset) -> last written value, or the pattern seed.
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> written;
  PhysicalMemory probe(1);
  Rng rng(param.seed * 77 + 1);

  for (int step = 0; step < 1500; ++step) {
    const std::size_t p = rng.NextBelow(kProcesses);
    const std::size_t page = rng.NextBelow(kPagesPerProcess);
    const std::uint64_t offset = page * kPageSize + rng.NextBelow(kPageSize / 8) * 8;
    const VirtAddr addr = bases[p] + offset;
    switch (rng.NextBelow(4)) {
      case 0: {
        const std::uint64_t value = rng.Next();
        procs[p]->Write64(addr, value);
        written[{p, offset}] = value;
        break;
      }
      case 1: {
        const std::uint64_t got = procs[p]->Read64(addr);
        const auto it = written.find({p, offset});
        std::uint64_t want;
        if (it != written.end()) {
          want = it->second;
        } else {
          probe.FillPattern(0, 0x9000 + (page % 16));
          want = probe.ReadU64(0, offset % kPageSize);
        }
        ASSERT_EQ(got, want) << "engine=" << EngineKindName(param.kind) << " step=" << step
                             << " proc=" << p << " offset=" << offset;
        break;
      }
      case 2:
        machine.Idle(rng.NextInRange(1, 5) * kMillisecond);
        break;
      default:
        procs[p]->Prefetch(addr);
        break;
    }
  }

  // Long idle: give the engine time to fuse aggressively, then re-verify all state.
  machine.Idle(200 * kMillisecond);
  for (std::size_t p = 0; p < kProcesses; ++p) {
    for (std::size_t page = 0; page < kPagesPerProcess; page += 7) {
      const std::uint64_t offset = page * kPageSize;
      const auto it = written.find({p, offset});
      std::uint64_t want;
      if (it != written.end()) {
        want = it->second;
      } else {
        probe.FillPattern(0, 0x9000 + (page % 16));
        want = probe.ReadU64(0, 0);
      }
      ASSERT_EQ(procs[p]->Read64(bases[p] + offset), want)
          << "engine=" << EngineKindName(param.kind) << " final proc=" << p << " page=" << page;
    }
  }

  if (engine) {
    // Savings accounting sanity: saved frames never exceed total mergeable pages.
    EXPECT_LE(engine->frames_saved(), kProcesses * kPagesPerProcess);
  }
  ExpectAuditClean(machine, engine.get());
}

std::string ParamName(const ::testing::TestParamInfo<ParityParam>& info) {
  std::string name = EngineKindName(info.param.kind);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name + "_seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineParityTest,
    ::testing::Values(ParityParam{EngineKind::kNone, 1}, ParityParam{EngineKind::kKsm, 1},
                      ParityParam{EngineKind::kKsm, 2}, ParityParam{EngineKind::kKsmCoA, 1},
                      ParityParam{EngineKind::kKsmZeroOnly, 1},
                      ParityParam{EngineKind::kWpf, 1}, ParityParam{EngineKind::kWpf, 2},
                      ParityParam{EngineKind::kVUsion, 1},
                      ParityParam{EngineKind::kVUsion, 2},
                      ParityParam{EngineKind::kVUsionThp, 1}),
    ParamName);

// --- Fingerprint-ordering parity ---
//
// The fusion trees are ordered by (cached content hash, bytes-on-collision); the
// FusionConfig::byte_ordered_trees ablation restores the reference raw-memcmp
// ordering. The two orderings are a host-side implementation detail: every
// simulated statistic and every charged latency must be bit-identical. The clock
// comparison is the strong probe — daemon wake-ups reschedule relative to the
// charged time, so any divergence in the charge (or noise-RNG) stream shows up in
// the final simulated timestamp.

struct FingerprintResult {
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;
  std::uint64_t fake_merges = 0;
  std::uint64_t unmerges_cow = 0;
  std::uint64_t unmerges_coa = 0;
  std::uint64_t zero_page_merges = 0;
  std::uint64_t full_scans = 0;
  std::uint64_t frames_saved = 0;
  SimTime final_time = 0;
};

FingerprintResult RunFingerprintScenario(EngineKind kind, bool byte_ordered) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = 99;
  Machine machine(machine_config);
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 1024;
  fusion_config.wpf_period = 20 * kMillisecond;
  fusion_config.byte_ordered_trees = byte_ordered;
  ScopedEngine engine(kind, machine, fusion_config);

  // Idle diverse VMs: cross-VM duplicates, per-VM unique pages, and some zero
  // pages. No writes after setup, so the trees never go stale and both orderings
  // must discover exactly the same matches.
  constexpr std::size_t kVms = 3;
  constexpr std::size_t kPages = 128;
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& proc = machine.CreateProcess();
    const VirtAddr base = proc.AllocateRegion(kPages, PageType::kAnonymous, true, false);
    for (std::size_t i = 0; i < kPages; ++i) {
      if (i % 4 == 0) {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x4400 + (i % 24));  // duplicates
      } else {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x880000 + p * 4096 + i);  // unique
      }
    }
  }
  machine.Idle(300 * kMillisecond);

  const FusionStats& stats = engine->stats();
  FingerprintResult result;
  result.pages_scanned = stats.pages_scanned;
  result.merges = stats.merges;
  result.fake_merges = stats.fake_merges;
  result.unmerges_cow = stats.unmerges_cow;
  result.unmerges_coa = stats.unmerges_coa;
  result.zero_page_merges = stats.zero_page_merges;
  result.full_scans = stats.full_scans;
  result.frames_saved = engine->frames_saved();
  result.final_time = machine.clock().now();
  ExpectAuditClean(machine, engine.get());
  return result;
}

class FingerprintParityTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(FingerprintParityTest, HashAndByteOrderingsAreBitIdentical) {
  const EngineKind kind = GetParam();
  const FingerprintResult hashed = RunFingerprintScenario(kind, /*byte_ordered=*/false);
  const FingerprintResult bytes = RunFingerprintScenario(kind, /*byte_ordered=*/true);

  EXPECT_EQ(hashed.pages_scanned, bytes.pages_scanned);
  EXPECT_EQ(hashed.merges, bytes.merges);
  EXPECT_EQ(hashed.fake_merges, bytes.fake_merges);
  EXPECT_EQ(hashed.unmerges_cow, bytes.unmerges_cow);
  EXPECT_EQ(hashed.unmerges_coa, bytes.unmerges_coa);
  EXPECT_EQ(hashed.zero_page_merges, bytes.zero_page_merges);
  EXPECT_EQ(hashed.full_scans, bytes.full_scans);
  EXPECT_EQ(hashed.frames_saved, bytes.frames_saved);
  EXPECT_EQ(hashed.final_time, bytes.final_time);

  // The scenario must actually exercise matching, not compare two no-ops.
  if (kind != EngineKind::kMemoryCombining) {
    EXPECT_GT(hashed.merges + hashed.fake_merges, 0u);
    EXPECT_GT(hashed.frames_saved, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(KsmVUsionMc, FingerprintParityTest,
                         ::testing::Values(EngineKind::kKsm, EngineKind::kVUsion,
                                           EngineKind::kMemoryCombining),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Batched-vs-unbatched charge parity ---
//
// The scan loops batch their latency charges (one clock Advance per flush
// instead of per charge). Batching is pure host-side mechanics: noise is drawn
// per charge in the same order and the clock is a pure sum, so disabling it
// (the VUSION_UNBATCHED_CHARGES ablation) must leave every simulated statistic
// and the final timestamp bit-identical — including across CoW unmerges, THP
// splits, and trace emits that read the clock mid-scan.

struct BatchingParam {
  EngineKind kind;
  bool delta;
};

FingerprintResult RunBatchingScenario(const BatchingParam& param, bool batched) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = 7;
  Machine machine(machine_config);
  machine.latency().set_batching_enabled(batched);
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 1024;
  fusion_config.wpf_period = 20 * kMillisecond;
  fusion_config.delta_scan = param.delta;
  ScopedEngine engine(param.kind, machine, fusion_config);

  constexpr std::size_t kVms = 3;
  constexpr std::size_t kPages = 128;
  std::vector<Process*> procs;
  std::vector<VirtAddr> bases;
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& proc = machine.CreateProcess();
    procs.push_back(&proc);
    const VirtAddr base = proc.AllocateRegion(kPages, PageType::kAnonymous, true, false);
    bases.push_back(base);
    for (std::size_t i = 0; i < kPages; ++i) {
      if (i % 3 == 0) {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x7700 + (i % 20));  // duplicates
      } else {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x660000 + p * 4096 + i);
      }
    }
  }
  machine.Idle(120 * kMillisecond);
  // Fault merged pages apart and let the engine re-merge: exercises the
  // mid-scan flush points (trace emits, fault-path timed reads).
  Rng rng(1234);
  for (int step = 0; step < 200; ++step) {
    const std::size_t p = rng.NextBelow(kVms);
    const std::size_t page = rng.NextBelow(kPages);
    procs[p]->Write64(bases[p] + page * kPageSize, rng.Next());
    if (step % 10 == 0) {
      machine.Idle(2 * kMillisecond);
    }
  }
  machine.Idle(150 * kMillisecond);

  const FusionStats& stats = engine->stats();
  FingerprintResult result;
  result.pages_scanned = stats.pages_scanned;
  result.merges = stats.merges;
  result.fake_merges = stats.fake_merges;
  result.unmerges_cow = stats.unmerges_cow;
  result.unmerges_coa = stats.unmerges_coa;
  result.zero_page_merges = stats.zero_page_merges;
  result.full_scans = stats.full_scans;
  result.frames_saved = engine->frames_saved();
  result.final_time = machine.clock().now();
  ExpectAuditClean(machine, engine.get());
  return result;
}

class BatchingParityTest : public ::testing::TestWithParam<BatchingParam> {};

TEST_P(BatchingParityTest, BatchedAndUnbatchedChargesAreBitIdentical) {
  const FingerprintResult batched = RunBatchingScenario(GetParam(), /*batched=*/true);
  const FingerprintResult unbatched = RunBatchingScenario(GetParam(), /*batched=*/false);

  EXPECT_EQ(batched.pages_scanned, unbatched.pages_scanned);
  EXPECT_EQ(batched.merges, unbatched.merges);
  EXPECT_EQ(batched.fake_merges, unbatched.fake_merges);
  EXPECT_EQ(batched.unmerges_cow, unbatched.unmerges_cow);
  EXPECT_EQ(batched.unmerges_coa, unbatched.unmerges_coa);
  EXPECT_EQ(batched.zero_page_merges, unbatched.zero_page_merges);
  EXPECT_EQ(batched.full_scans, unbatched.full_scans);
  EXPECT_EQ(batched.frames_saved, unbatched.frames_saved);
  EXPECT_EQ(batched.final_time, unbatched.final_time);
  EXPECT_GT(batched.merges + batched.fake_merges, 0u);
  EXPECT_GT(batched.unmerges_cow + batched.unmerges_coa, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Engines, BatchingParityTest,
    ::testing::Values(BatchingParam{EngineKind::kKsm, false},
                      BatchingParam{EngineKind::kKsm, true},
                      BatchingParam{EngineKind::kVUsion, false},
                      BatchingParam{EngineKind::kWpf, false}),
    [](const ::testing::TestParamInfo<BatchingParam>& info) {
      std::string name = EngineKindName(info.param.kind);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + (info.param.delta ? "_delta" : "");
    });

// --- Serial-vs-parallel scan parity ---
//
// FusionConfig::scan_threads parallelizes only phase 1 of the scan pipeline (host
// hashing against immutable frame snapshots); phase 2 replays the engine's scan
// body serially in canonical page order. Everything simulated — stats, saved
// frames, the full trace event stream, and the final clock value — must therefore
// be bit-identical for every thread count, with threads=1 as the serial reference.
// The workload deliberately churns page contents mid-run so the parallel hash
// phase races real invalidations (stale snapshots must be dropped, not installed).

struct ThreadedResult {
  FingerprintResult base;
  std::vector<TraceEvent> trace;
};

ThreadedResult RunThreadedScenario(EngineKind kind, std::uint64_t seed,
                                   std::size_t threads, bool streaming = true,
                                   std::size_t chunk_pages = 0) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = seed;
  Machine machine(machine_config);
  machine.trace().set_enabled(true);
  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 1024;
  fusion_config.wpf_period = 10 * kMillisecond;
  fusion_config.scan_threads = threads;
  fusion_config.scan_streaming = streaming;
  fusion_config.scan_chunk_pages = chunk_pages;
  ScopedEngine engine(kind, machine, fusion_config);

  constexpr std::size_t kVms = 3;
  constexpr std::size_t kPages = 128;
  std::vector<Process*> procs;
  std::vector<VirtAddr> bases;
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& proc = machine.CreateProcess();
    procs.push_back(&proc);
    const VirtAddr base = proc.AllocateRegion(kPages, PageType::kAnonymous, true, false);
    bases.push_back(base);
    for (std::size_t i = 0; i < kPages; ++i) {
      if (i % 3 == 0) {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x5100 + (i % 20));  // duplicates
      } else {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x770000 + p * 4096 + i);  // unique
      }
    }
  }

  // Deterministic churn: timed writes mutate contents (invalidating hash memos and
  // unmerging fused pages), interleaved with idle periods where the engine scans.
  Rng rng(seed * 131 + 7);
  for (int step = 0; step < 400; ++step) {
    const std::size_t p = rng.NextBelow(kVms);
    const std::size_t page = rng.NextBelow(kPages);
    if (rng.NextBelow(3) == 0) {
      machine.Idle(rng.NextInRange(1, 4) * kMillisecond);
    } else {
      procs[p]->Write64(bases[p] + page * kPageSize + rng.NextBelow(kPageSize / 8) * 8,
                        rng.Next());
    }
  }
  machine.Idle(150 * kMillisecond);

  const FusionStats& stats = engine->stats();
  ThreadedResult result;
  result.base.pages_scanned = stats.pages_scanned;
  result.base.merges = stats.merges;
  result.base.fake_merges = stats.fake_merges;
  result.base.unmerges_cow = stats.unmerges_cow;
  result.base.unmerges_coa = stats.unmerges_coa;
  result.base.zero_page_merges = stats.zero_page_merges;
  result.base.full_scans = stats.full_scans;
  result.base.frames_saved = engine->frames_saved();
  result.base.final_time = machine.clock().now();
  result.trace = machine.trace().Events();
  ExpectAuditClean(machine, engine.get());
  return result;
}

void ExpectThreadedResultsEqual(const ThreadedResult& want, const ThreadedResult& got,
                                const std::string& label) {
  EXPECT_EQ(want.base.pages_scanned, got.base.pages_scanned) << label;
  EXPECT_EQ(want.base.merges, got.base.merges) << label;
  EXPECT_EQ(want.base.fake_merges, got.base.fake_merges) << label;
  EXPECT_EQ(want.base.unmerges_cow, got.base.unmerges_cow) << label;
  EXPECT_EQ(want.base.unmerges_coa, got.base.unmerges_coa) << label;
  EXPECT_EQ(want.base.zero_page_merges, got.base.zero_page_merges) << label;
  EXPECT_EQ(want.base.full_scans, got.base.full_scans) << label;
  EXPECT_EQ(want.base.frames_saved, got.base.frames_saved) << label;
  EXPECT_EQ(want.base.final_time, got.base.final_time) << label;
  ASSERT_EQ(want.trace.size(), got.trace.size()) << label;
  for (std::size_t i = 0; i < want.trace.size(); ++i) {
    const TraceEvent& a = want.trace[i];
    const TraceEvent& b = got.trace[i];
    ASSERT_TRUE(a.time == b.time && a.type == b.type && a.process_id == b.process_id &&
                a.vpn == b.vpn && a.frame == b.frame)
        << label << ": event " << i << " diverged at time " << a.time << " vs " << b.time;
  }
}

struct ThreadedParam {
  EngineKind kind;
  std::uint64_t seed;
};

class ScanThreadsParityTest : public ::testing::TestWithParam<ThreadedParam> {
 protected:
  void SetUp() override {
    // The TSan CI job forces scan_threads via the environment; this test owns the
    // thread count explicitly, so drop the override for the comparison to be real.
    unsetenv("VUSION_SCAN_THREADS");
    unsetenv("VUSION_SCAN_STREAMING");
    unsetenv("VUSION_SCAN_CHUNK");
  }
};

TEST_P(ScanThreadsParityTest, SerialAndParallelScansAreBitIdentical) {
  const ThreadedParam param = GetParam();
  const ThreadedResult serial = RunThreadedScenario(param.kind, param.seed, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const ThreadedResult parallel = RunThreadedScenario(param.kind, param.seed, threads);
    EXPECT_EQ(serial.base.pages_scanned, parallel.base.pages_scanned) << threads;
    EXPECT_EQ(serial.base.merges, parallel.base.merges) << threads;
    EXPECT_EQ(serial.base.fake_merges, parallel.base.fake_merges) << threads;
    EXPECT_EQ(serial.base.unmerges_cow, parallel.base.unmerges_cow) << threads;
    EXPECT_EQ(serial.base.unmerges_coa, parallel.base.unmerges_coa) << threads;
    EXPECT_EQ(serial.base.zero_page_merges, parallel.base.zero_page_merges) << threads;
    EXPECT_EQ(serial.base.full_scans, parallel.base.full_scans) << threads;
    EXPECT_EQ(serial.base.frames_saved, parallel.base.frames_saved) << threads;
    EXPECT_EQ(serial.base.final_time, parallel.base.final_time) << threads;
    ASSERT_EQ(serial.trace.size(), parallel.trace.size()) << threads;
    for (std::size_t i = 0; i < serial.trace.size(); ++i) {
      const TraceEvent& a = serial.trace[i];
      const TraceEvent& b = parallel.trace[i];
      ASSERT_TRUE(a.time == b.time && a.type == b.type && a.process_id == b.process_id &&
                  a.vpn == b.vpn && a.frame == b.frame)
          << "threads=" << threads << " event " << i << " diverged at time " << a.time
          << " vs " << b.time;
    }
  }
  // The scenario must exercise fusion and unmerge churn, not compare no-ops.
  EXPECT_GT(serial.base.merges + serial.base.fake_merges, 0u);
  EXPECT_GT(serial.trace.size(), 0u);
}

// The streaming pipeline (speculative hash + validated merge, DESIGN.md §14)
// must be bit-identical to the barrier shape and to the serial reference for
// every chunk size and thread count: chunk=1 maximizes handoff traffic and
// merge/hash interleaving, chunk=16 is a mid-grain, chunk >= pages_per_wake
// degenerates to one chunk (barrier-like), chunk=0 is the auto heuristic.
TEST_P(ScanThreadsParityTest, StreamingAndBarrierPipelinesAreBitIdentical) {
  const ThreadedParam param = GetParam();
  const ThreadedResult reference =
      RunThreadedScenario(param.kind, param.seed, 1, /*streaming=*/false);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    // Barrier shape at this thread count.
    ExpectThreadedResultsEqual(
        reference, RunThreadedScenario(param.kind, param.seed, threads, false),
        "barrier threads=" + std::to_string(threads));
    // Streaming shape across chunk sizes (256 = pages_per_wake: whole quantum).
    for (const std::size_t chunk :
         {std::size_t{1}, std::size_t{16}, std::size_t{256}, std::size_t{0}}) {
      ExpectThreadedResultsEqual(
          reference, RunThreadedScenario(param.kind, param.seed, threads, true, chunk),
          "streaming threads=" + std::to_string(threads) +
              " chunk=" + std::to_string(chunk));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScanningEngines, ScanThreadsParityTest,
    ::testing::Values(ThreadedParam{EngineKind::kKsm, 1}, ThreadedParam{EngineKind::kKsm, 2},
                      ThreadedParam{EngineKind::kKsm, 3}, ThreadedParam{EngineKind::kWpf, 1},
                      ThreadedParam{EngineKind::kWpf, 2}, ThreadedParam{EngineKind::kWpf, 3},
                      ThreadedParam{EngineKind::kVUsion, 1},
                      ThreadedParam{EngineKind::kVUsion, 2},
                      ThreadedParam{EngineKind::kVUsion, 3},
                      ThreadedParam{EngineKind::kVUsionThp, 1},
                      ThreadedParam{EngineKind::kVUsionThp, 2}),
    [](const ::testing::TestParamInfo<ThreadedParam>& info) {
      std::string name = EngineKindName(info.param.kind);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_s" + std::to_string(info.param.seed);
    });

// Savings comparison: with heavy duplication, every fusing engine must save a
// significant fraction, and VUsion's savings must be in the same ballpark as KSM's
// (the paper's central capacity claim).
TEST(EngineComparisonTest, SavingsBallpark) {
  std::map<EngineKind, std::uint64_t> saved;
  for (const EngineKind kind : {EngineKind::kKsm, EngineKind::kWpf, EngineKind::kVUsion}) {
    MachineConfig machine_config;
    machine_config.frame_count = 1u << 14;
    Machine machine(machine_config);
    FusionConfig fusion_config;
    fusion_config.wake_period = 1 * kMillisecond;
    fusion_config.pages_per_wake = 512;
    fusion_config.pool_frames = 1024;
    fusion_config.wpf_period = 20 * kMillisecond;
    ScopedEngine engine(kind, machine, fusion_config);
    for (int p = 0; p < 4; ++p) {
      Process& proc = machine.CreateProcess();
      const VirtAddr base = proc.AllocateRegion(256, PageType::kAnonymous, true, false);
      for (std::size_t i = 0; i < 256; ++i) {
        proc.SetupMapPattern(VaddrToVpn(base) + i, 0x7100 + i);  // same across VMs
      }
    }
    machine.Idle(500 * kMillisecond);
    saved[kind] = engine->frames_saved();
  }
  // 4 x 256 identical images: ideal saving is 3 * 256 = 768 frames.
  EXPECT_GT(saved[EngineKind::kKsm], 700u);
  EXPECT_GT(saved[EngineKind::kWpf], 700u);
  EXPECT_GT(saved[EngineKind::kVUsion], 700u);
}

}  // namespace
}  // namespace vusion
