#include "src/kernel/page_cache.h"

#include <gtest/gtest.h>

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 4096;
  return config;
}

TEST(PageCacheTest, MissThenHit) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  PageCache cache(p, 64);
  cache.ReadPage(1, 0);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  cache.ReadPage(1, 0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.resident_pages(), 1u);
}

TEST(PageCacheTest, ContentIsDeterministicPerFilePage) {
  Machine machine(SmallMachine());
  Process& p1 = machine.CreateProcess();
  Process& p2 = machine.CreateProcess();
  PageCache c1(p1, 32);
  PageCache c2(p2, 32);
  // Two VMs caching the same file page see identical content - the fusion
  // opportunity behind Table 3's page-cache share.
  EXPECT_EQ(c1.ReadPage(7, 3), c2.ReadPage(7, 3));
  EXPECT_NE(c1.ReadPage(7, 3), c1.ReadPage(7, 4));
  EXPECT_EQ(PageCache::FileSeed(7, 3), PageCache::FileSeed(7, 3));
  EXPECT_NE(PageCache::FileSeed(7, 3), PageCache::FileSeed(8, 3));
}

TEST(PageCacheTest, LruEvictionAtCapacity) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  PageCache cache(p, 4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    cache.ReadPage(1, i);
  }
  EXPECT_EQ(cache.resident_pages(), 4u);
  cache.ReadPage(1, 0);     // refresh page 0
  cache.ReadPage(2, 0);     // evicts LRU = (1,1)
  EXPECT_EQ(cache.resident_pages(), 4u);
  const std::uint64_t misses = cache.misses();
  cache.ReadPage(1, 1);  // must be a miss again
  EXPECT_EQ(cache.misses(), misses + 1);
  const std::uint64_t hits = cache.hits();
  cache.ReadPage(1, 0);  // still resident
  EXPECT_EQ(cache.hits(), hits + 1);
}

TEST(PageCacheTest, WriteDivergesContent) {
  Machine machine(SmallMachine());
  Process& p1 = machine.CreateProcess();
  Process& p2 = machine.CreateProcess();
  PageCache c1(p1, 32);
  PageCache c2(p2, 32);
  c1.WritePage(9, 0, 0xabcdef);
  EXPECT_EQ(c1.ReadPage(9, 0), 0xabcdefu);
  EXPECT_NE(c1.ReadPage(9, 0), c2.ReadPage(9, 0));  // dirty copy diverged
}

TEST(PageCacheTest, DeleteFileDropsPages) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  PageCache cache(p, 32);
  cache.ReadPage(3, 0);
  cache.ReadPage(3, 1);
  cache.ReadPage(4, 0);
  EXPECT_EQ(cache.resident_pages(), 3u);
  cache.DeleteFile(3);
  EXPECT_EQ(cache.resident_pages(), 1u);
  const std::uint64_t misses = cache.misses();
  cache.ReadPage(3, 0);  // refetched
  EXPECT_EQ(cache.misses(), misses + 1);
}

TEST(PageCacheTest, EvictionReleasesFrames) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  PageCache cache(p, 8);
  for (std::uint32_t i = 0; i < 64; ++i) {
    cache.ReadPage(1, i);
  }
  EXPECT_EQ(cache.resident_pages(), 8u);
  // Only ~8 cache frames (plus page tables) stay allocated.
  EXPECT_LT(machine.memory().allocated_count(), 32u);
}

}  // namespace
}  // namespace vusion
