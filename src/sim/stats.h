// Small statistics toolkit used by benches and the security evaluation: running
// moments, percentiles, and fixed-bin histograms for the paper's frequency plots.

#ifndef VUSION_SRC_SIM_STATS_H_
#define VUSION_SRC_SIM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vusion {

// Welford running mean/variance with min/max.
class RunningStats {
 public:
  void Add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Returns the p-th percentile (0..100) by linear interpolation. Sorts a copy.
double Percentile(std::vector<double> samples, double p);

// Geometric mean of strictly positive values; used for SPEC/PARSEC aggregate overhead.
double GeometricMean(const std::vector<double>& values);

// Renders several time series as an ASCII line chart (one character column per
// sample, one letter per series), for the figure benches' terminal output.
std::string RenderSeries(const std::vector<std::string>& names,
                         const std::vector<std::vector<double>>& series,
                         std::size_t height = 16);

// Fixed-width histogram over [lo, hi); out-of-range samples clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] std::size_t total() const { return total_; }

  // Renders an ASCII frequency plot (one row per bin) like the paper's Figures 5/6.
  [[nodiscard]] std::string Render(std::size_t width) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_STATS_H_
