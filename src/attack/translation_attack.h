// New merge-based disclosure attack (paper §5.1 "Translation changes"): AnC-style
// detection of a THP split. KSM breaks a huge page to merge a 4 KB page inside it,
// which adds a fourth page-walk level for every neighbouring subpage. The attacker
// crafts a huge page with one guess subpage, waits for fusion, and times accesses
// to *other* subpages with the TLB and LLC evicted: a slower walk reveals that the
// guess matched somewhere in the system. VUsion defeats it by breaking up every
// idle THP it considers, match or not, and by securing khugepaged (§8).

#ifndef VUSION_SRC_ATTACK_TRANSLATION_ATTACK_H_
#define VUSION_SRC_ATTACK_TRANSLATION_ATTACK_H_

#include "src/attack/timing_probe.h"

namespace vusion {

class TranslationAttack {
 public:
  static AttackOutcome Run(EngineKind kind, std::uint64_t seed);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_TRANSLATION_ATTACK_H_
