#include "src/snapshot/machine_snapshot.h"

#include <string>
#include <utility>

#include "src/chaos/invariant_auditor.h"
#include "src/snapshot/config_codec.h"

namespace vusion::snapshot {

namespace {

constexpr std::uint8_t kMaxEngineKind =
    static_cast<std::uint8_t>(EngineKind::kMemoryCombining);

// The Machine writes this many sections (see Machine::Save); the orchestrator
// adds "config" in front and "engine" behind. Used to reject snapshots with
// unexpected extra sections appended after a valid prefix.
constexpr std::size_t kMachineSections = 12;

struct ConfigRecord {
  MachineConfig machine;
  EngineKind kind = EngineKind::kNone;
  FusionConfig fusion;
};

ConfigRecord ReadConfigSection(SnapshotReader& r) {
  r.OpenSection("config");
  ConfigRecord rec;
  rec.machine = ReadMachineConfig(r);
  const std::uint8_t kind_raw = r.U8();
  if (kind_raw > kMaxEngineKind) {
    throw RestoreError("config", "unknown engine kind " + std::to_string(kind_raw));
  }
  rec.kind = static_cast<EngineKind>(kind_raw);
  if (rec.kind != EngineKind::kNone) {
    rec.fusion = ReadFusionConfig(r);
  }
  r.EndSection();
  return rec;
}

}  // namespace

std::string SaveSnapshot(Machine& machine, FusionEngine* engine, EngineKind kind) {
  if ((engine == nullptr) != (kind == EngineKind::kNone)) {
    throw RestoreError("config", "engine pointer and engine kind disagree");
  }
  if (engine != nullptr && !engine->SupportsSnapshot()) {
    throw RestoreError("engine",
                       std::string(engine->name()) + " does not support savestates");
  }
  SnapshotWriter w;
  w.BeginSection("config");
  WriteMachineConfig(w, machine.config());
  w.U8(static_cast<std::uint8_t>(kind));
  if (engine != nullptr) {
    WriteFusionConfig(w, engine->config());
  }
  w.EndSection();
  machine.Save(w);
  if (engine != nullptr) {
    w.BeginSection("engine");
    engine->SaveState(w);
    w.EndSection();
  }
  return w.Finish();
}

RestoredMachine RestoreSnapshot(std::string_view buffer) {
  SnapshotReader r(buffer);
  const ConfigRecord rec = ReadConfigSection(r);

  const std::size_t expected_sections =
      1 + kMachineSections + (rec.kind != EngineKind::kNone ? 1 : 0);
  if (r.sections().size() != expected_sections) {
    throw RestoreError("config",
                       "unexpected section count " + std::to_string(r.sections().size()) +
                           " (want " + std::to_string(expected_sections) + ")");
  }

  RestoredMachine out;
  out.kind = rec.kind;
  out.machine = std::make_unique<Machine>(rec.machine);
  out.engine = MakeEngineExact(rec.kind, *out.machine, rec.fusion);
  if (out.engine != nullptr) {
    // Installed before Machine::Restore so restored processes see the engine
    // as their sharing policy, exactly as on the saved machine.
    out.engine->Install();
  }
  out.machine->Restore(r);
  if (out.engine != nullptr) {
    r.OpenSection("engine");
    out.engine->RestoreState(r);
    r.EndSection();
  }

  // Gate the hand-back behind the machine-wide oracle: a snapshot whose
  // sections all decode can still describe an inconsistent machine (hand-
  // crafted or a serializer bug); that must fail closed too.
  AuditReport report = InvariantAuditor(*out.machine).Audit(out.engine.get());
  if (!report.ok) {
    std::string detail = "restored state fails invariant audit";
    if (!report.violations.empty()) {
      detail += " (" + std::to_string(report.violations.size()) +
                " violations, first: " + report.violations.front() + ")";
    }
    throw RestoreError("audit", detail);
  }
  return out;
}

std::vector<RestoredMachine> FanOut(std::string_view buffer, std::size_t count) {
  std::vector<RestoredMachine> clones;
  clones.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    clones.push_back(RestoreSnapshot(buffer));
  }
  return clones;
}

SnapshotInfo InspectSnapshot(std::string_view buffer) {
  SnapshotReader r(buffer);
  const ConfigRecord rec = ReadConfigSection(r);
  SnapshotInfo info;
  info.version = kVersion;  // the reader rejects every other version up front
  info.kind = rec.kind;
  info.seed = rec.machine.seed;
  info.frame_count = rec.machine.frame_count;
  info.total_bytes = buffer.size();
  info.sections = r.sections();
  return info;
}

SnapshotInfo VerifySnapshot(std::string_view buffer) {
  SnapshotInfo info = InspectSnapshot(buffer);
  RestoredMachine probe = RestoreSnapshot(buffer);  // throws on any defect
  (void)probe;
  return info;
}

}  // namespace vusion::snapshot
