// Shared attacker-side machinery: outcome reporting, distinguishability testing,
// and an attack environment (machine + engine + attacker/victim processes) the
// individual attacks build their scenarios in.

#ifndef VUSION_SRC_ATTACK_TIMING_PROBE_H_
#define VUSION_SRC_ATTACK_TIMING_PROBE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"

namespace vusion {

struct AttackOutcome {
  bool success = false;
  double confidence = 0.0;  // attack-specific: 1 - p_value, reuse fraction, ...
  std::string detail;
};

// Statistical distinguishability of two timing-sample sets: the attacker "wins" a
// timing side channel when the distributions differ significantly AND the effect is
// large enough to exploit with few samples.
bool TimingDistinguishable(const std::vector<double>& a, const std::vector<double>& b,
                           double* p_value_out = nullptr);

// A self-contained environment every attack constructs: a machine, the engine under
// attack, an attacker process, and a victim process, all seeded deterministically.
class AttackEnvironment {
 public:
  AttackEnvironment(EngineKind kind, std::uint64_t seed, MachineConfig machine_config,
                    FusionConfig fusion_config);
  ~AttackEnvironment();

  [[nodiscard]] Machine& machine() { return *machine_; }
  [[nodiscard]] FusionEngine* engine() { return engine_->get(); }
  [[nodiscard]] Process& attacker() { return *attacker_; }
  [[nodiscard]] Process& victim() { return *victim_; }
  [[nodiscard]] EngineKind kind() const { return kind_; }

  // Idles long enough for the engine to complete `rounds` full scan rounds over all
  // currently-registered mergeable memory (bounded wait).
  void WaitFusionRounds(std::uint64_t rounds);

 private:
  EngineKind kind_;
  std::unique_ptr<Machine> machine_;
  // Engine install/uninstall ride on ScopedEngine's lifetime; optional only
  // because the engine is created after the processes. Destroyed before machine_.
  std::optional<ScopedEngine> engine_;
  Process* attacker_ = nullptr;
  Process* victim_ = nullptr;
};

// Default machine/fusion configs for attack scenarios: a small machine (64 MB), a
// fast scanner, a small entropy pool, and a hammer-friendly DRAM threshold so the
// attacks run quickly in simulation. Entropy-pool size is still large enough that
// probabilistic reuse stays negligible.
MachineConfig AttackMachineConfig();
FusionConfig AttackFusionConfig();

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_TIMING_PROBE_H_
