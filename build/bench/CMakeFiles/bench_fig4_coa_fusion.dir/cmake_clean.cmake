file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_coa_fusion.dir/bench_fig4_coa_fusion.cc.o"
  "CMakeFiles/bench_fig4_coa_fusion.dir/bench_fig4_coa_fusion.cc.o.d"
  "bench_fig4_coa_fusion"
  "bench_fig4_coa_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_coa_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
