// Figure 12: memory consumption during the Apache benchmark. Four VMs boot
// together; the benchmark starts on one of them at t=30 s (paper: 360 s). Expected
// shape: fusion saves memory before the benchmark; consumption grows during it as
// Apache's self-balancing spawns more workers.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/workload/apache_workload.h"
#include "src/sim/stats.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

constexpr SimTime kSample = 10 * kSecond;
constexpr SimTime kBenchStart = 30 * kSecond;
constexpr SimTime kTotal = 200 * kSecond;

std::vector<double> RunSeries(EngineKind kind, bench::Reporter& reporter) {
  Scenario scenario(EvalScenario(kind));
  std::vector<Process*> vms;
  for (int i = 0; i < 4; ++i) {
    vms.push_back(&scenario.BootVm(EvalImage(), 60 + i));
  }
  ApacheWorkload::Config config;
  config.worker_spawn_interval = 10 * kSecond;
  config.max_workers = 48;
  std::unique_ptr<ApacheWorkload> apache;

  std::vector<double> series;
  for (SimTime t = 0; t <= kTotal; t += kSample) {
    if (t >= kBenchStart && apache == nullptr) {
      apache = std::make_unique<ApacheWorkload>(*vms[0], config, 13);
    }
    if (apache != nullptr) {
      apache->Run(kSample);  // load-driven slice (advances the clock)
    } else {
      scenario.RunFor(kSample);
    }
    series.push_back(scenario.consumed_mb());
  }
  reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  return series;
}

void Run() {
  bench::Reporter reporter("fig12_apache_memory");
  reporter.Header("Figure 12: memory consumption during the Apache benchmark (MB)");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::vector<std::vector<double>> all;
  for (const EngineKind kind : EvalEngines()) {
    all.push_back(RunSeries(kind, reporter));
    reporter.AddSeries(EngineKindName(kind), all.back());
  }
  std::printf("%-8s %-10s %-10s %-10s %-12s\n", "t(s)", "no-dedup", "KSM", "VUsion",
              "VUsion-THP");
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    std::printf("%-8llu %-10.1f %-10.1f %-10.1f %-12.1f\n",
                static_cast<unsigned long long>(i * (kSample / kSecond)), all[0][i], all[1][i],
                all[2][i], all[3][i]);
  }
  std::printf("\n%s", RenderSeries({"no-dedup", "KSM", "VUsion", "VUsion-THP"}, all).c_str());
  std::printf("\npaper: all systems grow during the benchmark (worker pool expansion);\n"
              "VUsion tracks KSM's fusion rate throughout\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
