#include "src/phys/buddy_allocator.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/sim/rng.h"

namespace vusion {
namespace {

TEST(BuddyAllocatorTest, StartsFullyFree) {
  PhysicalMemory mem(1024);
  BuddyAllocator buddy(mem);
  EXPECT_EQ(buddy.free_count(), 1024u);
  EXPECT_TRUE(buddy.ValidateInvariants());
}

TEST(BuddyAllocatorTest, AllocateFreeRoundTrip) {
  PhysicalMemory mem(1024);
  BuddyAllocator buddy(mem);
  const FrameId f = buddy.Allocate();
  ASSERT_NE(f, kInvalidFrame);
  EXPECT_EQ(buddy.free_count(), 1023u);
  EXPECT_TRUE(mem.allocated(f));
  buddy.Free(f);
  EXPECT_EQ(buddy.free_count(), 1024u);
  EXPECT_FALSE(mem.allocated(f));
  EXPECT_TRUE(buddy.ValidateInvariants());
}

TEST(BuddyAllocatorTest, ExhaustionReturnsInvalid) {
  PhysicalMemory mem(64);
  BuddyAllocator buddy(mem);
  std::vector<FrameId> frames;
  for (int i = 0; i < 64; ++i) {
    const FrameId f = buddy.Allocate();
    ASSERT_NE(f, kInvalidFrame);
    frames.push_back(f);
  }
  EXPECT_EQ(buddy.Allocate(), kInvalidFrame);
  // Frames are unique.
  EXPECT_EQ(std::set<FrameId>(frames.begin(), frames.end()).size(), 64u);
}

TEST(BuddyAllocatorTest, OrderAllocationAlignedAndCoalesces) {
  PhysicalMemory mem(4096);
  BuddyAllocator buddy(mem);
  const FrameId block = buddy.AllocateOrder(kHugePageOrder);
  ASSERT_NE(block, kInvalidFrame);
  EXPECT_EQ(block % kPagesPerHugePage, 0u);
  EXPECT_EQ(buddy.free_count(), 4096u - kPagesPerHugePage);
  for (FrameId f = block; f < block + kPagesPerHugePage; ++f) {
    EXPECT_TRUE(mem.allocated(f));
  }
  buddy.FreeOrder(block, kHugePageOrder);
  EXPECT_EQ(buddy.free_count(), 4096u);
  EXPECT_TRUE(buddy.ValidateInvariants());
  // After coalescing, a max-order allocation must succeed again.
  EXPECT_NE(buddy.AllocateOrder(kMaxBuddyOrder), kInvalidFrame);
}

TEST(BuddyAllocatorTest, SingleFreesCoalesceBackToLargeBlocks) {
  PhysicalMemory mem(256);
  BuddyAllocator buddy(mem);
  std::vector<FrameId> frames;
  for (int i = 0; i < 256; ++i) {
    frames.push_back(buddy.Allocate());
  }
  for (const FrameId f : frames) {
    buddy.Free(f);
  }
  EXPECT_TRUE(buddy.ValidateInvariants());
  EXPECT_NE(buddy.AllocateOrder(8), kInvalidFrame);  // 256-page block reassembled
}

TEST(BuddyAllocatorTest, AllocateSpecificSplitsContainingBlock) {
  PhysicalMemory mem(1024);
  BuddyAllocator buddy(mem);
  EXPECT_TRUE(buddy.AllocateSpecific(513));
  EXPECT_TRUE(mem.allocated(513));
  EXPECT_FALSE(mem.allocated(512));
  EXPECT_EQ(buddy.free_count(), 1023u);
  EXPECT_TRUE(buddy.ValidateInvariants());
  EXPECT_FALSE(buddy.AllocateSpecific(513));  // no longer free
  buddy.Free(513);
  EXPECT_TRUE(buddy.ValidateInvariants());
}

TEST(BuddyAllocatorTest, IsFreeTracksState) {
  PhysicalMemory mem(128);
  BuddyAllocator buddy(mem);
  EXPECT_TRUE(buddy.IsFree(77));
  ASSERT_TRUE(buddy.AllocateSpecific(77));
  EXPECT_FALSE(buddy.IsFree(77));
}

TEST(BuddyAllocatorTest, LifoReuseIsPredictable) {
  // The property the paper calls "fairly predictable standard page allocator":
  // free then allocate returns the same frame.
  PhysicalMemory mem(512);
  BuddyAllocator buddy(mem);
  const FrameId a = buddy.Allocate();
  const FrameId b = buddy.Allocate();
  (void)b;
  buddy.Free(a);
  EXPECT_EQ(buddy.Allocate(), a);
}

TEST(BuddyAllocatorTest, NonPowerOfTwoMemorySize) {
  PhysicalMemory mem(1000);  // not a power of two
  BuddyAllocator buddy(mem);
  EXPECT_EQ(buddy.free_count(), 1000u);
  EXPECT_TRUE(buddy.ValidateInvariants());
  std::set<FrameId> seen;
  for (int i = 0; i < 1000; ++i) {
    const FrameId f = buddy.Allocate();
    ASSERT_NE(f, kInvalidFrame);
    ASSERT_LT(f, 1000u);
    EXPECT_TRUE(seen.insert(f).second);
  }
  EXPECT_EQ(buddy.Allocate(), kInvalidFrame);
}

class BuddyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyPropertyTest, RandomOpsPreserveInvariants) {
  PhysicalMemory mem(2048);
  BuddyAllocator buddy(mem);
  Rng rng(GetParam());
  std::vector<std::pair<FrameId, std::size_t>> held;  // (start, order)
  for (int op = 0; op < 3000; ++op) {
    if (held.empty() || rng.NextBool(0.55)) {
      const std::size_t order = rng.NextBelow(5);
      const FrameId block = buddy.AllocateOrder(order);
      if (block != kInvalidFrame) {
        held.emplace_back(block, order);
      }
    } else {
      const std::size_t idx = rng.NextBelow(held.size());
      buddy.FreeOrder(held[idx].first, held[idx].second);
      held[idx] = held.back();
      held.pop_back();
    }
    if (op % 100 == 0) {
      ASSERT_TRUE(buddy.ValidateInvariants()) << "op " << op;
    }
  }
  std::size_t held_frames = 0;
  for (const auto& [start, order] : held) {
    held_frames += std::size_t{1} << order;
  }
  EXPECT_EQ(buddy.free_count(), 2048u - held_frames);
  ASSERT_TRUE(buddy.ValidateInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace vusion
