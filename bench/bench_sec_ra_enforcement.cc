// §9.1 "Enforcing RA": record the pool draws backing every (fake) merge and
// unmerge while two VMs run under VUsion, and Kolmogorov-Smirnov-test them against
// the uniform distribution (the paper reports p=0.44: uniformity not rejected).
// For contrast, the frames KSM chooses (always the stable copy's frame) are
// trivially non-uniform.

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/sim/ks_test.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("sec_ra_enforcement");
  reporter.Header("Security: Randomized Allocation enforcement (KS vs uniform)");
  DescribeEval(reporter, EngineKind::kVUsion);
  Scenario scenario(EvalScenario(EngineKind::kVUsion));
  scenario.engine()->stats().log_allocations = true;
  scenario.BootVm(EvalImage(), 1);
  scenario.BootVm(EvalImage(), 2);
  scenario.RunFor(180 * kSecond);

  const auto& slots = scenario.engine()->stats().slot_log;
  std::printf("pool entropy: %.1f bits (%zu frames)\n",
              std::log2(static_cast<double>(scenario.config().fusion.pool_frames)),
              scenario.config().fusion.pool_frames);
  std::printf("recorded (fake) merge/unmerge allocations: %zu\n", slots.size());
  if (slots.size() < 100) {
    std::printf("not enough samples\n");
    return;
  }
  const KsResult ks = KsUniform(slots, 0.0, 1.0);
  std::printf("KS vs uniform: D=%.4f p=%.3f -> uniformity %s\n", ks.statistic, ks.p_value,
              ks.p_value > 0.05 ? "NOT rejected (RA holds)" : "REJECTED");
  std::printf("\npaper: p=0.44, uniform allocation not rejected\n");
  reporter.AddRow("ks_uniform", {{"system", "VUsion"},
                                 {"samples", slots.size()},
                                 {"statistic", ks.statistic},
                                 {"p_value", ks.p_value},
                                 {"ra_holds", ks.p_value > 0.05}});
  reporter.AddMetrics("VUsion", scenario.CollectMetrics());

  // Contrast: KSM's "allocation" for a merge is the stable page's frame.
  Scenario ksm(EvalScenario(EngineKind::kKsm));
  ksm.engine()->stats().log_allocations = true;
  ksm.BootVm(EvalImage(), 1);
  ksm.BootVm(EvalImage(), 2);
  ksm.RunFor(180 * kSecond);
  const auto& frames = ksm.engine()->stats().allocation_log;
  if (!frames.empty()) {
    std::vector<double> values(frames.begin(), frames.end());
    const KsResult ksm_ks =
        KsUniform(values, 0.0, static_cast<double>(ksm.config().machine.frame_count));
    std::printf("KSM stable-frame choices vs uniform over memory: D=%.3f p=%.3g (%s)\n",
                ksm_ks.statistic, ksm_ks.p_value,
                ksm_ks.p_value > 0.05 ? "uniform?!" : "predictable, as expected");
    reporter.AddRow("ks_uniform", {{"system", "KSM"},
                                   {"samples", values.size()},
                                   {"statistic", ksm_ks.statistic},
                                   {"p_value", ksm_ks.p_value},
                                   {"ra_holds", ksm_ks.p_value > 0.05}});
  }
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
