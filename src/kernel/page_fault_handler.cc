// The timed memory-access path and page-fault dispatching: TLB lookup, cache-timed
// page walk, permission checks, LLC/DRAM data access (feeding the Rowhammer engine),
// and fault resolution through the sharing policy or the default handler.

#include <stdexcept>

#include "src/kernel/machine.h"
#include "src/kernel/process.h"

namespace vusion {

namespace {

constexpr int kMaxFaultRetries = 8;

bool NeedsWrite(AccessType type) { return type == AccessType::kWrite; }

}  // namespace

void Machine::ChargedDataAccess(const Pte& pte, PhysAddr paddr) {
  const LatencyConfig& lc = latency_->config();
  if (pte.cache_disabled()) {
    // Uncacheable: always goes to DRAM and never fills any cache.
    latency_->Charge(lc.uncached_access);
    rowhammer_->OnActivation(row_buffer_->Access(paddr));
    return;
  }
  if (l1_ != nullptr && l1_->Access(paddr)) {
    latency_->Charge(lc.l1_hit);
    return;
  }
  if (llc_->Access(paddr)) {
    latency_->Charge(lc.llc_hit);
    return;
  }
  const RowBuffer::AccessResult rb = row_buffer_->Access(paddr);
  latency_->Charge(rb.row_hit ? lc.dram_row_hit : lc.dram_row_miss);
  rowhammer_->OnActivation(rb);
}

Machine::AccessResult Machine::Access(Process& process, VirtAddr vaddr, AccessType type,
                                      std::uint64_t write_value) {
  const SimTime start = clock_.now();
  AddressSpace& as = process.address_space();
  const Vpn vpn = VaddrToVpn(vaddr);
  const LatencyConfig& lc = latency_->config();
  AccessResult result;

  for (int attempt = 0; attempt < kMaxFaultRetries; ++attempt) {
    latency_->Charge(lc.tlb_lookup);
    Pte pte;
    std::optional<Pte> cached = as.tlb().Lookup(vpn);
    if (cached.has_value()) {
      pte = *cached;
    } else {
      PageTable::WalkResult walk = as.page_table().TimedWalk(vpn);
      for (const PhysAddr entry_addr : walk.touched) {
        const bool hit = llc_->Access(entry_addr);
        latency_->Charge(hit ? lc.page_walk_step_cached : lc.page_walk_step_memory);
      }
      if (walk.pte == nullptr || !walk.pte->present() || walk.pte->reserved_trap()) {
        if (type == AccessType::kPrefetch) {
          result.latency = clock_.now() - start;
          return result;  // prefetch never faults
        }
        const PageFault fault{vpn, type, walk.pte != nullptr ? *walk.pte : Pte{}};
        HandleFault(process, fault);
        ++result.faults;
        continue;
      }
      // Hardware sets the accessed bit on TLB fill (this is what idle page
      // tracking harvests).
      walk.pte->flags |= kPteAccessed;
      pte = *walk.pte;
      as.tlb().Insert(vpn, pte);
    }

    if (NeedsWrite(type) && !pte.writable()) {
      as.tlb().Invalidate(vpn);
      const PageFault fault{vpn, type, pte};
      HandleFault(process, fault);
      ++result.faults;
      continue;
    }

    FrameId frame = pte.frame;
    if (pte.huge()) {
      frame += static_cast<FrameId>(vpn & (kPagesPerHugePage - 1));
    }
    const std::size_t offset = (vaddr & (kPageSize - 1)) & ~std::uint64_t{7};
    const PhysAddr paddr = static_cast<PhysAddr>(frame) * kPageSize + offset;

    if (type == AccessType::kPrefetch) {
      // Prefetch fills the caches unless the mapping is uncacheable; it is silent
      // otherwise. (The Gruss et al. attack VUsion's cache-disable bit stops.)
      if (!pte.cache_disabled()) {
        if (l1_ != nullptr) {
          l1_->Access(paddr);
        }
        llc_->Access(paddr);
      }
      latency_->Charge(lc.llc_hit);
      result.latency = clock_.now() - start;
      return result;
    }

    ChargedDataAccess(pte, paddr);

    if (NeedsWrite(type)) {
      memory_->WriteU64(frame, offset, write_value);
      // First write sets the dirty bit on the real PTE (no shootdown needed).
      Pte* real = as.GetPte(vpn);
      if (real != nullptr) {
        real->flags |= kPteDirty | kPteAccessed;
      }
    } else {
      result.value = memory_->ReadU64(frame, offset);
    }
    result.latency = clock_.now() - start;
    RunDueDaemons();
    return result;
  }
  throw std::runtime_error("unresolvable page fault (retry limit)");
}

void Machine::Prefetch(Process& process, VirtAddr vaddr) {
  Access(process, vaddr, AccessType::kPrefetch, 0);
}

void Machine::FlushCacheLine(Process& process, VirtAddr vaddr) {
  latency_->Charge(latency_->config().clflush);
  const Vpn vpn = VaddrToVpn(vaddr);
  const Pte* pte = process.address_space().GetPte(vpn);
  if (pte == nullptr || !pte->present() || pte->reserved_trap()) {
    return;
  }
  FrameId frame = pte->frame;
  if (pte->huge()) {
    frame += static_cast<FrameId>(vpn & (kPagesPerHugePage - 1));
  }
  const PhysAddr paddr =
      static_cast<PhysAddr>(frame) * kPageSize + (vaddr & (kPageSize - 1) & ~std::uint64_t{63});
  if (l1_ != nullptr) {
    l1_->Flush(paddr);
  }
  llc_->Flush(paddr);
}

void Machine::HandleFault(Process& process, const PageFault& fault) {
  const SimTime fault_start = clock_.now();
  latency_->Charge(latency_->config().fault_entry_exit);
  ++total_faults_;
  trace_.Emit(clock_.now(), TraceEventType::kFault, process.id(), fault.vpn,
              fault.pte.frame);
  // Injected spurious fault: the handler returns without resolving anything,
  // modeling the hardware-retry races real kernels tolerate (the access path
  // simply walks and faults again).
  if (chaos_ != nullptr && chaos_->ShouldFail(FaultSite::kSpuriousFault)) {
    fault_count_spurious_->Add();
    chaos_->RecordRetry();
    return;
  }
  Counter* count = nullptr;
  HistogramMetric* latency_hist = nullptr;
  if (policy_ != nullptr && policy_->HandleFault(process, fault)) {
    count = fault_count_policy_;
    latency_hist = fault_latency_policy_;
  } else {
    switch (HandleFaultDefault(process, fault)) {
      case DefaultFaultOutcome::kDemandZero:
        count = fault_count_demand_zero_;
        latency_hist = fault_latency_demand_zero_;
        break;
      case DefaultFaultOutcome::kCow:
        count = fault_count_cow_;
        latency_hist = fault_latency_cow_;
        break;
      case DefaultFaultOutcome::kTransient:
        // Allocation failed but free frames remain (injected OOM): leave the
        // fault unresolved and let the access path retry.
        fault_count_transient_->Add();
        if (chaos_ != nullptr) {
          chaos_->RecordRetry();
        }
        return;
      case DefaultFaultOutcome::kUnhandled:
        fault_count_unresolved_->Add();
        throw std::runtime_error("unhandled page fault");
    }
  }
  // Host-side observation of the simulated service time; the charged clock is
  // the source, so this records nothing the simulation didn't already decide.
  count->Add();
  latency_hist->Record(static_cast<double>(clock_.now() - fault_start));
}

Machine::DefaultFaultOutcome Machine::HandleFaultDefault(Process& process,
                                                         const PageFault& fault) {
  AddressSpace& as = process.address_space();
  Pte* pte = as.GetPte(fault.vpn);
  const LatencyConfig& lc = latency_->config();

  // Demand paging: unmapped page inside a known VMA gets a fresh zero frame.
  if (pte == nullptr || pte->flags == 0) {
    const VmArea* vma = as.vmas().FindContaining(fault.vpn);
    if (vma == nullptr) {
      return DefaultFaultOutcome::kUnhandled;  // segfault
    }
    const FrameId frame = buddy_->Allocate();
    if (frame == kInvalidFrame) {
      // Free frames remaining means the failure was injected, not genuine
      // exhaustion — retryable. (An order-0 buddy allocation can only fail for
      // real when free_count() == 0.)
      return buddy_->free_count() > 0 ? DefaultFaultOutcome::kTransient
                                      : DefaultFaultOutcome::kUnhandled;  // OOM
    }
    latency_->Charge(lc.buddy_alloc);
    memory_->FillZero(frame);
    latency_->Charge(lc.pte_update);
    as.MapPage(fault.vpn, frame,
               kPtePresent | kPteWritable | kPteAccessed |
                   (fault.access == AccessType::kWrite ? kPteDirty : 0));
    return DefaultFaultOutcome::kDemandZero;
  }

  // Kernel copy-on-write: a write to a fork-shared page (engine-managed CoW pages
  // were already claimed by the policy above).
  if (fault.access == AccessType::kWrite && pte->present() && !pte->writable() &&
      pte->cow()) {
    const FrameId shared = pte->frame;
    const std::uint32_t refs = memory_->refcount(shared);
    if (refs > 1) {
      latency_->Charge(lc.buddy_alloc);
      const FrameId fresh = buddy_->Allocate();
      if (fresh == kInvalidFrame) {
        return buddy_->free_count() > 0 ? DefaultFaultOutcome::kTransient
                                        : DefaultFaultOutcome::kUnhandled;
      }
      latency_->Charge(lc.page_copy_4k);
      memory_->CopyFrame(fresh, shared);
      latency_->Charge(lc.pte_update);
      as.SetPte(fault.vpn,
                Pte{fresh, kPtePresent | kPteWritable | kPteAccessed | kPteDirty});
      memory_->DecRef(shared);
    } else {
      // Last sharer: reclaim write access in place.
      if (refs == 1) {
        memory_->SetRefcount(shared, 0);
      }
      latency_->Charge(lc.pte_update);
      as.UpdateFlags(fault.vpn, kPteWritable | kPteAccessed | kPteDirty, kPteCow);
    }
    return DefaultFaultOutcome::kCow;
  }
  return DefaultFaultOutcome::kUnhandled;
}

}  // namespace vusion
