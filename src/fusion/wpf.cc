#include "src/fusion/wpf.h"

#include "src/snapshot/io.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

namespace vusion {

int Wpf::CombinedCompare::operator()(Combined* const& a, Combined* const& b) const {
  if (!wpf->content_.byte_ordered()) {
    // Immutable (insert-time hash, frame) key: total order, no content reads.
    if (a->sort_hash != b->sort_hash) {
      return a->sort_hash < b->sort_hash ? -1 : 1;
    }
    if (a->frame != b->frame) {
      return a->frame < b->frame ? -1 : 1;
    }
    return 0;
  }
  return wpf->content_.HostOrder(a->frame, b->frame);
}

Wpf::Wpf(Machine& machine, const FusionConfig& config)
    : FusionEngine(machine, config),
      content_(machine, config.byte_ordered_trees),
      pipeline_(machine.memory(), machine.HostPool(config_.scan_threads)),
      linear_(machine.buddy(), machine.memory()),
      delta_mode_(config.delta_scan) {
  pipeline_.ConfigureStreaming(config.scan_streaming, config.scan_chunk_pages);
  trees_.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    trees_.push_back(std::make_unique<Tree>(CombinedCompare{this}));
    trees_.back()->SetNodeArena(&arena_);
  }
  if (delta_mode_) {
    machine.EnableWriteEpochs();
  }
}

Wpf::~Wpf() {
  for (const auto& tree : trees_) {
    tree->InOrder([this](Combined* const& e) { arena_.Delete(e); });
  }
}

void Wpf::Run() {
  if (SkipWake()) {
    return;
  }
  DoFusionPass();
  next_run_ = machine_->clock().now() + config_.wpf_period;
}

void Wpf::DoFusionPass() {
  // Batch the pass's charges; emits and phase hooks flush (see LatencyModel).
  ChargeSpan span(machine_->latency());
  const auto scan_start = std::chrono::steady_clock::now();
  NotifyPhase(ScanPhase::kQuantumStart);
  FaultInjector* injector = chaos();
  linear_.set_fault_injector(injector);
  // MiAllocatePagesForMdl restarts its reclaim scan from the top of memory on
  // every pass - the root of the predictable-reuse behaviour.
  linear_.ResetScan();
  pass_allocations_.emplace_back();

  // Phase 1: hash every candidate page (WPF has no opt-in; all mapped small pages
  // of every process are candidates).
  std::vector<Candidate> candidates;
  bool interrupted = false;
  for (const auto& process : machine_->processes()) {
    if (process == nullptr || interrupted) {
      continue;
    }
    AddressSpace& as = process->address_space();
    for (const VmArea& vma : as.vmas().areas()) {
      if (interrupted) {
        break;
      }
      for (Vpn vpn = vma.start; vpn < vma.end(); ++vpn) {
        // Injected scan interruption: the pass proceeds with the candidates
        // collected so far (the rest wait for the next 15-minute pass).
        if (injector != nullptr && injector->ShouldFail(FaultSite::kScanInterrupt)) {
          injector->RecordDegradation();
          interrupted = true;
          break;
        }
        CollectOne(*process, vpn, injector, candidates);
      }
    }
  }
  NotifyPhase(ScanPhase::kBatchCollected);
  PruneDeadCandidates(candidates);
  HashCandidates(candidates);
  timing_.scan_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - scan_start)
          .count());
  ++timing_.batches;
  NotifyPhase(ScanPhase::kHashed);
  PruneDeadCandidates(candidates);

  // The sorted-hash list of Figure 2; ties broken by (process, vpn) so passes are
  // deterministic.
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    if (a.hash != b.hash) {
      return a.hash < b.hash;
    }
    if (a.pid != b.pid) {
      return a.pid < b.pid;
    }
    return a.vpn < b.vpn;
  });

  // Phase 2: pages whose content was fused in an earlier pass join the existing
  // combined page.
  std::vector<Candidate> remaining;
  remaining.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    Tree& tree = *trees_[c.hash % kShards];
    content_.ChargeTreeDescend(tree.size());
    auto [entry, steps] = tree.Find([&](Combined* const& e) {
      if (!content_.byte_ordered()) {
        if (c.hash != e->sort_hash) {
          return c.hash < e->sort_hash ? -1 : 1;
        }
        // Equal fingerprint: verify by bytes (collisions partition further down).
        return machine_->memory().Compare(c.frame, e->frame);
      }
      return content_.HostOrder(c.frame, e->frame);
    });
    if (entry != nullptr) {
      MergeIntoCombined(c, *entry);
    } else {
      remaining.push_back(c);
    }
  }

  // Phase 3: group fresh duplicates (equal hash runs, verified by content) and
  // count how many new combined pages are needed.
  std::vector<std::vector<const Candidate*>> groups;
  for (std::size_t i = 0; i < remaining.size();) {
    std::size_t j = i + 1;
    while (j < remaining.size() && remaining[j].hash == remaining[i].hash) {
      ++j;
    }
    if (j - i >= 2) {
      // Partition the equal-hash run by true content (hash collisions are possible).
      std::vector<bool> used(j - i, false);
      for (std::size_t a = i; a < j; ++a) {
        if (used[a - i]) {
          continue;
        }
        std::vector<const Candidate*> group{&remaining[a]};
        for (std::size_t b = a + 1; b < j; ++b) {
          if (!used[b - i] && content_.Matches(remaining[a].frame, remaining[b].frame)) {
            used[b - i] = true;
            group.push_back(&remaining[b]);
          }
        }
        if (group.size() >= 2) {
          groups.push_back(std::move(group));
        }
      }
    }
    i = j;
  }

  // Phase 4: one MiAllocatePagesForMdl call for all the frames this pass needs.
  // In-use candidate pages near the end of memory are *stolen* (relocated onto a
  // fresh frame) rather than skipped, matching the reverse-engineered routine; this
  // is what makes frame reuse across passes near-perfect (Figure 3).
  LatencyModel& lm = machine_->latency();
  std::unordered_map<FrameId, Candidate*> frame_owner;
  for (Candidate& c : remaining) {
    frame_owner[c.frame] = &c;
  }
  const auto try_steal = [&](FrameId frame) {
    const auto it = frame_owner.find(frame);
    if (it == frame_owner.end()) {
      return false;  // not a page we may move (combined, page table, ...)
    }
    Candidate* owner = it->second;
    AddressSpace& as = owner->process->address_space();
    Pte* pte = as.GetPte(owner->vpn);
    if (pte == nullptr || !pte->present() || pte->huge() || pte->frame != frame) {
      return false;
    }
    const FrameId relocated = machine_->buddy().Allocate();
    if (relocated == kInvalidFrame) {
      return false;
    }
    lm.Charge(lm.config().page_copy_4k);
    machine_->memory().CopyFrame(relocated, frame);
    lm.Charge(lm.config().pte_update);
    as.SetPte(owner->vpn, Pte{relocated, pte->flags});
    machine_->FlushFrame(frame);
    machine_->buddy().Free(frame);
    frame_owner.erase(it);
    owner->frame = relocated;
    frame_owner[relocated] = owner;
    return true;
  };
  const std::vector<FrameId> fresh = linear_.AllocateRunWithSteal(groups.size(), try_steal);
  for (std::size_t g = 0; g < groups.size() && g < fresh.size(); ++g) {
    const FrameId combined_frame = fresh[g];
    lm.Charge(lm.config().page_copy_4k);
    machine_->memory().CopyFrame(combined_frame, groups[g][0]->frame);
    auto* entry = arena_.New<Combined>(Combined{combined_frame, 0, groups[g][0]->hash % kShards,
                                                groups[g][0]->hash});
    content_.ChargeTreeDescend(trees_[entry->shard]->size());
    trees_[entry->shard]->Insert(entry);
    ++rmap_bucket_count_;
    pass_allocations_.back().push_back(combined_frame);
    for (const Candidate* member : groups[g]) {
      MergeIntoCombined(*member, entry);
    }
    if (entry->refs == 0) {
      // Every member's merge aborted (pages changed under us / injected
      // aborts): an unreferenced Combined entry would leak its frame forever.
      // Undo the insertion entirely.
      content_.ChargeTreeDescend(trees_[entry->shard]->size());
      trees_[entry->shard]->RemoveIf([&](Combined* const& e) {
        if (!content_.byte_ordered()) {
          if (entry->sort_hash != e->sort_hash) {
            return entry->sort_hash < e->sort_hash ? -1 : 1;
          }
          if (entry->frame != e->frame) {
            return entry->frame < e->frame ? -1 : 1;
          }
          return 0;
        }
        return content_.HostOrder(entry->frame, e->frame);
      });
      --rmap_bucket_count_;
      machine_->FlushFrame(entry->frame);
      lm.Charge(lm.config().buddy_free);
      machine_->buddy().Free(entry->frame);
      pass_allocations_.back().pop_back();
      if (injector != nullptr) {
        injector->RecordDegradation();
      }
      arena_.Delete(entry);
    }
  }
  ++stats_.full_scans;
  NotifyPhase(ScanPhase::kQuantumEnd);
}

void Wpf::CollectOne(Process& process, Vpn vpn, FaultInjector* injector,
                     std::vector<Candidate>& candidates) {
  AddressSpace& as = process.address_space();
  const std::uint64_t epoch = delta_mode_ ? as.write_epochs().GetFast(vpn) : 0;
  if (delta_mode_) {
    if (DeltaPassCache::Entry* e = delta_.Probe(process.id(), vpn, epoch); e != nullptr) {
      // Collection is silent for skipped pages (no stats, no charges), so the
      // first three kinds replay to nothing at all. An unchanged epoch pins the
      // PTE — and therefore the backing frame — but not the frame's refcount,
      // which fork/exit move without touching this PTE; kinds that concluded on
      // the refcount recheck it live.
      switch (e->kind) {
        case kWpfSkip:
        case kWpfFused:
          delta_.NoteReplay();
          return;
        case kWpfForkShared:
          if (machine_->memory().refcount(e->frame) > 0) {
            delta_.NoteReplay();
            return;
          }
          break;  // the sharing ended; the page may be a candidate now
        case kWpfCandidate:
          if (machine_->memory().refcount(e->frame) == 0) {
            delta_.NoteReplay();
            // The full path consults the stale-fingerprint fault point right
            // before accepting a candidate; the replay must preserve that
            // ordinal in the chaos decision stream. A fire skips the page for
            // this pass only — the memoized conclusion itself is untouched.
            if (injector != nullptr && injector->ShouldFail(FaultSite::kStaleChecksum)) {
              injector->RecordDegradation();
              return;
            }
            ++stats_.pages_scanned;
            Candidate c;
            c.process = &process;
            c.pid = process.id();
            c.vpn = vpn;
            c.frame = e->frame;
            candidates.push_back(c);
            return;
          }
          break;  // someone now shares the frame; re-derive
        default:
          break;
      }
      delta_.Reject(process.id(), vpn);
    }
  }
  const Pte* pte = as.GetPte(vpn);
  if (pte == nullptr || !pte->present() || pte->huge() || pte->reserved_trap()) {
    RecordCollect(process.id(), vpn, epoch, kWpfSkip, kInvalidFrame);
    return;
  }
  if (rmap_.contains(KeyOf(process, vpn))) {
    RecordCollect(process.id(), vpn, epoch, kWpfFused, pte->frame);
    return;
  }
  if (machine_->memory().refcount(pte->frame) > 0) {
    // fork-shared: the kernel owns this CoW state
    RecordCollect(process.id(), vpn, epoch, kWpfForkShared, pte->frame);
    return;
  }
  // Injected stale content fingerprint: treat the page as too volatile to be a
  // candidate this pass. Nothing is recorded — the conclusion was made by the
  // injector, not the page, and the next pass must re-derive it.
  if (injector != nullptr && injector->ShouldFail(FaultSite::kStaleChecksum)) {
    injector->RecordDegradation();
    return;
  }
  ++stats_.pages_scanned;
  RecordCollect(process.id(), vpn, epoch, kWpfCandidate, pte->frame);
  Candidate c;
  c.process = &process;
  c.pid = process.id();
  c.vpn = vpn;
  c.frame = pte->frame;
  candidates.push_back(c);
}

void Wpf::RecordCollect(std::uint32_t pid, Vpn vpn, std::uint64_t epoch, std::uint8_t kind,
                        FrameId frame) {
  if (!delta_mode_) {
    return;
  }
  DeltaPassCache::Entry& e = delta_.Record(pid, vpn);
  e.kind = kind;
  e.frame = frame;
  e.epoch = epoch;
}

void Wpf::PruneDeadCandidates(std::vector<Candidate>& candidates) const {
  // A phase hook may tear processes down mid-pass; drop their candidates before
  // anything dereferences the stale Process pointers or recycled frames.
  std::erase_if(candidates, [this](const Candidate& c) {
    return machine_->processes()[c.pid] == nullptr;
  });
}

void Wpf::HashCandidates(std::vector<Candidate>& candidates) {
  host::ThreadPool* pool = machine_->HostPool(config_.scan_threads);
  pipeline_.set_pool(pool);
  if (pool != nullptr && candidates.size() > 1) {
    // Parallel phase 1: warm the host-side hash memos. Frames are preset, so the
    // pipeline skips PTE resolution; the serial merge phase below then issues the
    // same charged Hash calls the reference path does, hitting the primed memo.
    // The merge callback mutates nothing a hash worker reads (charges + memo
    // only), so the streaming shape is safe here without further ceremony.
    std::vector<host::ScanItem> items(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      items[i].frame = candidates[i].frame;
      items[i].index = i;
    }
    pipeline_.Run(items, timing_, nullptr, [&](host::ScanItem& item) {
      Candidate& c = candidates[item.index];
      c.hash = content_.Hash(c.frame);
    });
    return;
  }
  timing_.items += candidates.size();
  for (Candidate& c : candidates) {
    c.hash = content_.Hash(c.frame);
  }
}

void Wpf::MergeIntoCombined(const Candidate& candidate, Combined* entry) {
  if (FaultInjector* injector = chaos();
      injector != nullptr && injector->ShouldFail(FaultSite::kMergeAbort)) {
    injector->RecordDegradation();
    return;  // the page stays private; a later pass may retry
  }
  AddressSpace& as = candidate.process->address_space();
  Pte* pte = as.GetPte(candidate.vpn);
  if (pte == nullptr || !pte->present() || pte->huge() || pte->frame != candidate.frame) {
    return;  // the page changed under us; skip
  }
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().pte_update);
  const auto accessed = static_cast<std::uint16_t>(pte->flags & kPteAccessed);
  as.SetPte(candidate.vpn, Pte{entry->frame,
                               static_cast<std::uint16_t>(kPtePresent | kPteCow | accessed)});
  ++entry->refs;
  if (entry->refs > 1) {
    ++frames_saved_;
  }
  machine_->memory().SetRefcount(entry->frame, entry->refs);
  rmap_[KeyOf(*candidate.process, candidate.vpn)] = entry;
  if (delta_mode_) {
    // The SetPte above already moved the page's write epoch; drop the entry
    // eagerly so the cache holds no conclusions known to be dead.
    delta_.Invalidate(candidate.pid, candidate.vpn);
  }
  machine_->FlushFrame(candidate.frame);
  lm.Charge(lm.config().buddy_free);
  machine_->buddy().Free(candidate.frame);
  ++stats_.merges;
  machine_->latency().FlushPending();
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kMerge,
                         candidate.process->id(), candidate.vpn, entry->frame);
  stats_.LogAllocation(entry->frame);
  const VmArea* vma = as.vmas().FindContaining(candidate.vpn);
  if (vma != nullptr) {
    stats_.RecordMergeType(vma->type);
  }
  if (machine_->memory().IsZero(entry->frame)) {
    ++stats_.zero_page_merges;
  }
}

void Wpf::DropRef(Combined* entry) {
  if (entry->refs > 1) {
    --frames_saved_;
  }
  --entry->refs;
  if (entry->refs == 0) {
    // Remove by navigation; the probe must order exactly like the tree comparator
    // or the descent goes wrong. In fingerprint mode the immutable (sort_hash,
    // frame) key guarantees the entry is found even if its content was mutated.
    Tree& tree = *trees_[entry->shard];
    content_.ChargeTreeDescend(tree.size());
    const bool removed = tree.RemoveIf([&](Combined* const& e) {
      if (!content_.byte_ordered()) {
        if (entry->sort_hash != e->sort_hash) {
          return entry->sort_hash < e->sort_hash ? -1 : 1;
        }
        if (entry->frame != e->frame) {
          return entry->frame < e->frame ? -1 : 1;
        }
        return 0;
      }
      return content_.HostOrder(entry->frame, e->frame);
    });
    (void)removed;
    --rmap_bucket_count_;
    machine_->FlushFrame(entry->frame);
    LatencyModel& lm = machine_->latency();
    lm.Charge(lm.config().buddy_free);
    // Freed near the end of memory; the next pass's linear scan re-claims it.
    machine_->buddy().Free(entry->frame);
    arena_.Delete(entry);
  } else {
    machine_->memory().SetRefcount(entry->frame, entry->refs);
  }
}

bool Wpf::HandleFault(Process& process, const PageFault& fault) {
  const auto it = rmap_.find(KeyOf(process, fault.vpn));
  if (it == rmap_.end()) {
    return false;
  }
  Combined* entry = it->second;
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().buddy_alloc);
  const FrameId fresh = machine_->buddy().Allocate();
  if (fresh == kInvalidFrame) {
    // Allocation failed (transient or genuine OOM): keep the page fused and
    // let the access path retry the fault. Returning false would let the
    // kernel's CoW handler unshare an engine-owned frame behind the rmap.
    return true;
  }
  lm.Charge(lm.config().page_copy_4k);
  machine_->memory().CopyFrame(fresh, entry->frame);
  lm.Charge(lm.config().pte_update);
  process.address_space().SetPte(
      fault.vpn, Pte{fresh, static_cast<std::uint16_t>(
                                kPtePresent | kPteWritable | kPteAccessed |
                                (fault.access == AccessType::kWrite ? kPteDirty : 0))});
  rmap_.erase(it);
  DropRef(entry);
  if (delta_mode_) {
    delta_.Invalidate(process.id(), fault.vpn);
  }
  ++stats_.unmerges_cow;
  machine_->latency().FlushPending();
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kUnmergeCow, process.id(),
                         fault.vpn, fresh);
  return true;
}

bool Wpf::OnUnmap(Process& process, Vpn vpn) {
  if (delta_mode_) {
    delta_.Invalidate(process.id(), vpn);
  }
  const auto it = rmap_.find(KeyOf(process, vpn));
  if (it == rmap_.end()) {
    return false;
  }
  Combined* entry = it->second;
  rmap_.erase(it);
  DropRef(entry);
  return true;
}

void Wpf::OnProcessDestroy(Process& process) {
  if (delta_mode_) {
    delta_.DropProcess(process.id());
  }
}

bool Wpf::AllowCollapse(Process& process, Vpn base) {
  for (Vpn vpn = base; vpn < base + kPagesPerHugePage; ++vpn) {
    if (rmap_.contains(KeyOf(process, vpn))) {
      return false;
    }
  }
  return true;
}

bool Wpf::IsMerged(const Process& process, Vpn vpn) const {
  return rmap_.contains(KeyOf(process, vpn));
}

bool Wpf::ValidateTrees() const {
  for (const auto& tree : trees_) {
    if (!tree->ValidateInvariants()) {
      return false;
    }
  }
  return true;
}

void Wpf::AuditInvariants(AuditContext& ctx) const {
  const auto& processes = machine_->processes();
  PhysicalMemory& memory = machine_->memory();

  std::unordered_map<const Combined*, std::uint32_t> rmap_refs;
  for (const auto& [key, entry] : rmap_) {
    const auto pid = static_cast<std::uint32_t>(key >> 40);
    const Vpn vpn = key ^ (static_cast<std::uint64_t>(pid) << 40);
    ++rmap_refs[entry];
    if (!ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
          return "wpf: rmap entry for dead process " + std::to_string(pid);
        })) {
      continue;
    }
    const Pte* pte = processes[pid]->address_space().GetPte(vpn);
    ctx.Check(pte != nullptr && pte->present() && pte->frame == entry->frame,
              [&] {
                return "wpf: rmap (" + std::to_string(pid) + "," +
                       std::to_string(vpn) + ") does not map combined frame " +
                       std::to_string(entry->frame);
              });
    ctx.Check(pte == nullptr || (!pte->writable() && pte->cow()), [&] {
      return "wpf: fused page (" + std::to_string(pid) + "," +
             std::to_string(vpn) + ") is not read-only CoW";
    });
  }

  std::size_t tree_entries = 0;
  for (const auto& tree : trees_) {
    tree->InOrder([&](Combined* const& entry) {
      ++tree_entries;
      const std::string frame_str = std::to_string(entry->frame);
      ctx.Check(entry->refs >= 1, [&] {
        return "wpf: combined entry for frame " + frame_str + " has zero refs";
      });
      ctx.Check(memory.allocated(entry->frame), [&] {
        return "wpf: combined entry points at free frame " + frame_str;
      });
      ctx.Check(memory.refcount(entry->frame) == entry->refs, [&] {
        return "wpf: frame " + frame_str + " refcount " +
               std::to_string(memory.refcount(entry->frame)) +
               " != entry refs " + std::to_string(entry->refs);
      });
      ctx.Check(ctx.mapped(entry->frame) == entry->refs, [&] {
        return "wpf: frame " + frame_str + " mapped by " +
               std::to_string(ctx.mapped(entry->frame)) + " PTEs, entry refs " +
               std::to_string(entry->refs);
      });
      ctx.Check(ctx.writable(entry->frame) == 0, [&] {
        return "wpf: fused frame " + frame_str + " has a writable mapping";
      });
      const auto it = rmap_refs.find(entry);
      ctx.Check(it != rmap_refs.end() && it->second == entry->refs, [&] {
        return "wpf: frame " + frame_str + " rmap count " +
               std::to_string(it == rmap_refs.end() ? 0 : it->second) +
               " != entry refs " + std::to_string(entry->refs);
      });
    });
  }
  ctx.Check(tree_entries == rmap_bucket_count_, [&] {
    return "wpf: trees hold " + std::to_string(tree_entries) +
           " entries but bucket count is " + std::to_string(rmap_bucket_count_);
  });

  // Delta pass cache: entries must reference live processes, and any entry whose
  // epoch guard still holds must describe what a fresh collection would conclude.
  delta_.ForEach([&](std::uint32_t pid, Vpn vpn, const DeltaPassCache::Entry& e) {
    if (!ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
          return "wpf: delta entry for dead process " + std::to_string(pid);
        })) {
      return;
    }
    AddressSpace& as = processes[pid]->address_space();
    if (as.write_epochs().Get(vpn) != e.epoch) {
      return;  // stale; the next probe discards it
    }
    if (e.kind == kWpfFused) {
      ctx.Check(rmap_.contains(KeyOf(*processes[pid], vpn)), [&] {
        return "wpf: delta kFused entry (" + std::to_string(pid) + "," +
               std::to_string(vpn) + ") not in rmap";
      });
    } else if (e.kind == kWpfCandidate) {
      const Pte* pte = as.GetPte(vpn);
      ctx.Check(pte != nullptr && pte->present() && !pte->huge() && pte->frame == e.frame,
                [&] {
                  return "wpf: delta kCandidate entry (" + std::to_string(pid) + "," +
                         std::to_string(vpn) + ") no longer maps frame " +
                         std::to_string(e.frame);
                });
      ctx.Check(!rmap_.contains(KeyOf(*processes[pid], vpn)), [&] {
        return "wpf: delta kCandidate entry (" + std::to_string(pid) + "," +
               std::to_string(vpn) + ") is fused";
      });
    }
  });
}

void Wpf::ExportMetrics(MetricsRegistry& registry) const {
  FusionEngine::ExportMetrics(registry);
  if (delta_mode_) {
    delta_.ExportMetrics(registry);
  }
}

// --- Savestates (DESIGN.md §13) ---

void Wpf::SaveState(snapshot::SnapshotWriter& w) const {
  SaveCommon(w);
  w.U32(linear_.scan_cursor());

  // Shard trees, structurally (preorder with heights): Combined entries are
  // indexed in export order so the rmap can reference them.
  std::unordered_map<const Combined*, std::uint32_t> index_of;
  for (const auto& tree : trees_) {
    w.U64(tree->size());
    tree->ExportPreorder([&](Combined* const& e, std::int32_t height, bool has_left,
                             bool has_right) {
      index_of.emplace(e, static_cast<std::uint32_t>(index_of.size()));
      w.U32(e->frame);
      w.U32(e->refs);
      w.U64(e->sort_hash);
      w.U32(static_cast<std::uint32_t>(height));
      w.Bool(has_left);
      w.Bool(has_right);
    });
  }

  std::vector<std::uint64_t> keys;
  keys.reserve(rmap_.size());
  for (const auto& [key, entry] : rmap_) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  w.U64(keys.size());
  for (const std::uint64_t key : keys) {
    w.U64(key);
    w.U32(index_of.at(rmap_.at(key)));
  }

  w.U64(pass_allocations_.size());
  for (const std::vector<FrameId>& pass : pass_allocations_) {
    w.U64(pass.size());
    for (const FrameId frame : pass) {
      w.U32(frame);
    }
  }

  w.U64(frames_saved_);
  w.U64(rmap_bucket_count_);
  delta_.SaveState(w, [](std::uint8_t, void*) -> std::uint64_t { return 0; });
}

void Wpf::RestoreState(snapshot::SnapshotReader& r) {
  RestoreCommon(r);
  // The injector is created by Machine::Restore after Install already wired
  // the linear allocator — re-sync so restored runs see the same fault stream.
  linear_.set_fault_injector(chaos());
  linear_.set_scan_cursor(r.U32());

  std::vector<Combined*> entries;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    const std::uint64_t node_count = r.Count(19);
    trees_[shard]->ImportPreorder(
        static_cast<std::size_t>(node_count),
        [&](std::int32_t& height, bool& has_left, bool& has_right) -> Combined* {
          auto* e = arena_.New<Combined>(Combined{});
          e->frame = r.U32();
          e->refs = r.U32();
          e->shard = shard;
          e->sort_hash = r.U64();
          height = static_cast<std::int32_t>(r.U32());
          has_left = r.Bool();
          has_right = r.Bool();
          entries.push_back(e);
          return e;
        },
        [](Tree::Node*) {});
  }

  rmap_.clear();
  const std::uint64_t rmap_count = r.Count(12);
  rmap_.reserve(static_cast<std::size_t>(rmap_count));
  for (std::uint64_t i = 0; i < rmap_count; ++i) {
    const std::uint64_t key = r.U64();
    const std::uint32_t entry_idx = r.U32();
    if (entry_idx >= entries.size()) {
      throw snapshot::RestoreError("engine", "rmap entry index out of range");
    }
    if (!rmap_.emplace(key, entries[entry_idx]).second) {
      throw snapshot::RestoreError("engine", "duplicate rmap key");
    }
  }

  pass_allocations_.clear();
  const std::uint64_t pass_count = r.Count(8);
  pass_allocations_.reserve(static_cast<std::size_t>(pass_count));
  for (std::uint64_t p = 0; p < pass_count; ++p) {
    const std::uint64_t frame_count = r.Count(4);
    std::vector<FrameId> pass;
    pass.reserve(static_cast<std::size_t>(frame_count));
    for (std::uint64_t i = 0; i < frame_count; ++i) {
      pass.push_back(r.U32());
    }
    pass_allocations_.push_back(std::move(pass));
  }

  frames_saved_ = r.U64();
  rmap_bucket_count_ = static_cast<std::size_t>(r.U64());
  delta_.RestoreState(r, [](std::uint8_t, std::uint64_t code) -> void* {
    if (code != 0) {
      throw snapshot::RestoreError("engine", "unexpected delta ref in WPF cache");
    }
    return nullptr;
  });
}

}  // namespace vusion
