# Empty dependencies file for allocators_test.
# This may be replaced when dependencies are built.
