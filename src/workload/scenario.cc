#include "src/workload/scenario.h"

namespace vusion {

Scenario::Scenario(const ScenarioConfig& config) : config_(config) {
  machine_ = std::make_unique<Machine>(config.machine);
  if (config.enable_khugepaged) {
    machine_->EnableKhugepaged(config.khugepaged);
  }
  engine_ = MakeEngine(config.engine, *machine_, config.fusion);
  if (engine_ != nullptr) {
    engine_->Install();
  }
}

Scenario::~Scenario() {
  if (engine_ != nullptr) {
    engine_->Uninstall();
  }
}

Process& Scenario::BootVm(const VmImageSpec& spec, std::uint64_t instance_seed) {
  return VmImage::Boot(*machine_, spec, instance_seed);
}

std::uint64_t Scenario::consumed_frames() const {
  std::uint64_t frames = machine_->memory().allocated_count();
  if (engine_ != nullptr) {
    frames -= engine_->reserved_frames();
  }
  return frames;
}

double Scenario::consumed_mb() const {
  return static_cast<double>(consumed_frames()) * kPageSize / (1024.0 * 1024.0);
}

}  // namespace vusion
