file(REMOVE_RECURSE
  "CMakeFiles/oom_test.dir/oom_test.cc.o"
  "CMakeFiles/oom_test.dir/oom_test.cc.o.d"
  "oom_test"
  "oom_test.pdb"
  "oom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
