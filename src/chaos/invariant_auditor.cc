#include "src/chaos/invariant_auditor.h"

#include <cstddef>
#include <string>
#include <vector>

#include "src/fusion/fusion_engine.h"
#include "src/kernel/machine.h"
#include "src/kernel/process.h"
#include "src/sim/metrics.h"

namespace vusion {

AuditReport InvariantAuditor::Audit(FusionEngine* engine) {
  Machine& machine = *machine_;
  PhysicalMemory& memory = machine.memory();
  const FrameId frame_count = memory.frame_count();

  AuditContext ctx;
  ctx.machine = &machine;
  std::vector<std::uint32_t> mapping_count(frame_count, 0);
  std::vector<std::uint32_t> writable_count(frame_count, 0);
  ctx.mapping_count = &mapping_count;
  ctx.writable_count = &writable_count;

  // --- Census: every leaf mapping of every live process, huge entries
  // expanded to their subframes; page-table node frames claimed as owned.
  for (const auto& process : machine.processes()) {
    if (process == nullptr) {
      continue;
    }
    const std::uint32_t pid = process->id();
    PageTable& table = process->address_space().page_table();
    std::vector<FrameId> nodes;
    table.CollectNodeFrames(nodes);
    for (const FrameId frame : nodes) {
      ctx.OwnFrame(frame, "page_table");
      ctx.Check(memory.allocated(frame), [&] {
        return "pid " + std::to_string(pid) +
               ": page-table node backed by free frame " + std::to_string(frame);
      });
    }
    table.ForEachEntry(0, Vpn{1} << 36, [&](Vpn vpn, Pte& pte) {
      if (pte.frame == kInvalidFrame) {
        return;  // swapped-out marker: contents live in the engine's cache
      }
      const std::size_t span = pte.huge() ? kPagesPerHugePage : 1;
      if (!ctx.Check(pte.frame + span <= frame_count, [&] {
            return "pid " + std::to_string(pid) + " vpn " + std::to_string(vpn) +
                   ": PTE points past physical memory (frame " +
                   std::to_string(pte.frame) + ")";
          })) {
        return;
      }
      for (std::size_t i = 0; i < span; ++i) {
        ++mapping_count[pte.frame + i];
        if (pte.writable()) {
          ++writable_count[pte.frame + i];
        }
      }
    });
  }

  // --- TLB coherence: every cached translation must agree with the page table
  // it snapshots (AddressSpace models shootdown on every PTE mutation).
  for (const auto& process : machine.processes()) {
    if (process == nullptr) {
      continue;
    }
    const std::uint32_t pid = process->id();
    AddressSpace& as = process->address_space();
    as.tlb().ForEach([&](Vpn vpn, const Pte& cached) {
      const Pte* real = as.GetPte(vpn);
      if (!ctx.Check(real != nullptr && real->present() && !real->reserved_trap(),
                     [&] {
                       return "pid " + std::to_string(pid) + " vpn " +
                              std::to_string(vpn) +
                              ": TLB caches a dead translation";
                     })) {
        return;
      }
      ctx.Check(real->frame == cached.frame && real->huge() == cached.huge(), [&] {
        return "pid " + std::to_string(pid) + " vpn " + std::to_string(vpn) +
               ": TLB frame " + std::to_string(cached.frame) +
               " != table frame " + std::to_string(real->frame);
      });
      ctx.Check(!cached.writable() || real->writable(), [&] {
        return "pid " + std::to_string(pid) + " vpn " + std::to_string(vpn) +
               ": TLB grants write access the page table revoked";
      });
    });
  }

  // --- Engine structures (also fills ctx.engine_owned for the partition).
  if (engine != nullptr) {
    engine->AuditInvariants(ctx);
  }

  // --- Per-frame kernel invariants and the ownership partition.
  for (FrameId frame = 0; frame < frame_count; ++frame) {
    const std::uint32_t mapped = mapping_count[frame];
    const std::uint32_t refs = memory.refcount(frame);
    const bool owned = ctx.engine_owned.contains(frame);
    if (!memory.allocated(frame)) {
      ctx.Check(mapped == 0 && !owned, [&] {
        return "free frame " + std::to_string(frame) +
               " is still mapped or engine-owned";
      });
      continue;
    }
    ctx.Check(mapped > 0 || owned, [&] {
      return "allocated frame " + std::to_string(frame) +
             " has no owner (leak)";
    });
    ctx.Check(!(mapped > 0 && owned), [&] {
      return "frame " + std::to_string(frame) + " is both mapped and owned by " +
             std::string(ctx.engine_owned.at(frame));
    });
    if (refs > 0) {
      // Shared (fused or fork-CoW) frame: the refcount counts the sharers and
      // every sharer must have lost write access.
      ctx.Check(mapped == refs, [&] {
        return "frame " + std::to_string(frame) + " refcount " +
               std::to_string(refs) + " != " + std::to_string(mapped) +
               " mappings";
      });
      ctx.Check(writable_count[frame] == 0, [&] {
        return "shared frame " + std::to_string(frame) +
               " has a writable mapping";
      });
    } else {
      // Exclusive frame: at most one mapping (page-table nodes and engine
      // reserves are unmapped).
      ctx.Check(mapped <= 1, [&] {
        return "exclusive frame " + std::to_string(frame) + " mapped " +
               std::to_string(mapped) + " times";
      });
    }
  }

  // --- Cache hierarchy: per-frame resident-line counters must equal a recount
  // of the line directory (FlushFrame correctness).
  ctx.Check(machine.llc().ValidateFrameLineCounters(), [] {
    return std::string("LLC per-frame line counters disagree with residency");
  });
  if (machine.l1() != nullptr) {
    ctx.Check(machine.l1()->ValidateFrameLineCounters(), [] {
      return std::string("L1 per-frame line counters disagree with residency");
    });
  }

  ++audits_run_;
  checks_total_ += ctx.checks;
  if (!ctx.ok()) {
    ++audits_failed_;
  }
  return AuditReport{ctx.ok(), ctx.checks, std::move(ctx.violations)};
}

void InvariantAuditor::ExportMetrics(MetricsRegistry& metrics) const {
  metrics.GetCounter("chaos.audits_run").Set(audits_run_);
  metrics.GetCounter("chaos.audits_failed").Set(audits_failed_);
  metrics.GetCounter("chaos.audit_checks").Set(checks_total_);
}

}  // namespace vusion
