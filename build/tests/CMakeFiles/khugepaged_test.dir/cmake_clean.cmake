file(REMOVE_RECURSE
  "CMakeFiles/khugepaged_test.dir/khugepaged_test.cc.o"
  "CMakeFiles/khugepaged_test.dir/khugepaged_test.cc.o.d"
  "khugepaged_test"
  "khugepaged_test.pdb"
  "khugepaged_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khugepaged_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
