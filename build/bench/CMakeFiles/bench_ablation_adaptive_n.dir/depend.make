# Empty dependencies file for bench_ablation_adaptive_n.
# This may be replaced when dependencies are built.
