file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_vusion_read_timing.dir/bench_fig6_vusion_read_timing.cc.o"
  "CMakeFiles/bench_fig6_vusion_read_timing.dir/bench_fig6_vusion_read_timing.cc.o.d"
  "bench_fig6_vusion_read_timing"
  "bench_fig6_vusion_read_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_vusion_read_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
