#include "src/sim/trace.h"

#include <algorithm>
#include <sstream>

namespace vusion {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFault:
      return "fault";
    case TraceEventType::kMerge:
      return "merge";
    case TraceEventType::kFakeMerge:
      return "fake_merge";
    case TraceEventType::kUnmergeCow:
      return "unmerge_cow";
    case TraceEventType::kUnmergeCoa:
      return "unmerge_coa";
    case TraceEventType::kRelocate:
      return "relocate";
    case TraceEventType::kSwapOut:
      return "swap_out";
    case TraceEventType::kCollapse:
      return "collapse";
    case TraceEventType::kSplit:
      return "split";
    case TraceEventType::kCount:
      break;
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

void TraceBuffer::Emit(SimTime time, TraceEventType type, std::uint32_t process_id,
                       std::uint64_t vpn, std::uint32_t frame) {
  if (!enabled_) {
    return;
  }
  if (buffer_.capacity() < capacity_) {
    // First enabled emit commits the ring in one shot (no growth reallocations,
    // and disabled tracers never allocate).
    buffer_.reserve(capacity_);
  }
  ++counts_[static_cast<std::size_t>(type)];
  ++total_;
  const TraceEvent event{time, type, process_id, vpn, frame};
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[next_ % buffer_.size()] = event;
    ++dropped_;
  }
  ++next_;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  if (buffer_.size() < capacity_ || buffer_.empty()) {
    return buffer_;
  }
  // Ring wrapped: oldest entry is at next_ % size.
  std::vector<TraceEvent> ordered;
  ordered.reserve(buffer_.size());
  const std::size_t start = next_ % buffer_.size();
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    ordered.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return ordered;
}

void TraceBuffer::Clear() {
  buffer_.clear();
  next_ = 0;
  counts_.fill(0);
  // total_ and dropped_ are lifetime counters: a consumer draining the ring
  // mid-run must not erase the record of events already lost to overwrites.
}

std::string TraceBuffer::Summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      out << TraceEventTypeName(static_cast<TraceEventType>(i)) << "=" << counts_[i] << " ";
    }
  }
  return out.str();
}

}  // namespace vusion

#include "src/snapshot/io.h"

namespace vusion {

void TraceBuffer::SaveState(snapshot::SnapshotWriter& w) const {
  w.Bool(enabled_);
  w.U64(capacity_);
  w.U64(buffer_.size());
  for (const TraceEvent& event : buffer_) {
    w.U64(event.time);
    w.U8(static_cast<std::uint8_t>(event.type));
    w.U32(event.process_id);
    w.U64(event.vpn);
    w.U32(event.frame);
  }
  w.U64(next_);
  w.U64(total_);
  w.U64(dropped_);
  for (const std::uint64_t count : counts_) {
    w.U64(count);
  }
}

void TraceBuffer::RestoreState(snapshot::SnapshotReader& r) {
  enabled_ = r.Bool();
  capacity_ = r.U64();
  buffer_.clear();
  const std::uint64_t n = r.Count(25);
  if (n > capacity_) {
    throw snapshot::RestoreError("trace", "ring larger than capacity");
  }
  buffer_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceEvent event;
    event.time = r.U64();
    const std::uint8_t type = r.U8();
    if (type >= static_cast<std::uint8_t>(TraceEventType::kCount)) {
      throw snapshot::RestoreError("trace", "bad event type");
    }
    event.type = static_cast<TraceEventType>(type);
    event.process_id = r.U32();
    event.vpn = r.U64();
    event.frame = r.U32();
    buffer_.push_back(event);
  }
  next_ = r.U64();
  total_ = r.U64();
  dropped_ = r.U64();
  for (std::uint64_t& count : counts_) {
    count = r.U64();
  }
}

}  // namespace vusion
