file(REMOVE_RECURSE
  "CMakeFiles/bench_sec_sb_enforcement.dir/bench_sec_sb_enforcement.cc.o"
  "CMakeFiles/bench_sec_sb_enforcement.dir/bench_sec_sb_enforcement.cc.o.d"
  "bench_sec_sb_enforcement"
  "bench_sec_sb_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec_sb_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
