file(REMOVE_RECURSE
  "libvusion_dram.a"
)
