// Machine-readable bench reporting: every bench binary routes its results through
// a bench::Reporter, which leaves the human-facing ASCII tables/figures on stdout
// untouched and additionally writes a BENCH_<name>.json artifact (config, tables,
// series, per-engine metrics snapshots, host wall-clock timings).
//
// Reporting is host-side observation only: nothing here reads or advances the
// simulated clock, so artifacts never perturb the simulation.

#ifndef VUSION_BENCH_REPORTER_H_
#define VUSION_BENCH_REPORTER_H_

#include <chrono>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/json.h"
#include "src/sim/metrics.h"

namespace vusion {
namespace bench {

// Collects one bench run's results and writes BENCH_<name>.json on destruction
// (or on an explicit WriteJson()). The artifact goes to the current directory,
// or to $VUSION_BENCH_JSON_DIR when set.
//
// Schema (schema_version 1):
//   {
//     "bench": "<name>", "schema_version": 1,
//     "titles": ["..."],
//     "config": { "<key>": {...}, ... },
//     "tables": { "<table>": [ {row}, ... ], ... },
//     "series": { "<series>": [v, ...], ... },
//     "metrics": { "<engine>": { metrics snapshot }, ... },
//     "timings": { "wall_ms": <host wall clock>, "<label>_ms": ..., ... },
//     "notes": ["..."]
//   }
class Reporter {
 public:
  explicit Reporter(const std::string& name);
  ~Reporter();

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  // Prints the bench's ASCII header ("=== <title> ===") exactly as the old
  // PrintHeader did, and records the title in the artifact.
  void Header(const std::string& title);

  // Attaches a config description (e.g. Describe(ScenarioConfig)) under
  // config.<key>. Re-setting a key replaces it.
  void SetConfig(const std::string& key, Json value);

  // Appends a row object to the named table.
  void AddRow(const std::string& table, Json row);
  void AddRow(const std::string& table,
              std::initializer_list<std::pair<const char*, Json>> fields);

  // Stores a numeric series (one figure line) under the given name.
  void AddSeries(const std::string& name, const std::vector<double>& values);

  // Stores a metrics snapshot under metrics.<key> (typically the engine name).
  void AddMetrics(const std::string& key, const MetricsSnapshot& snapshot);

  // Records a host-side timing (milliseconds) under timings.<label>_ms.
  void AddTiming(const std::string& label, double ms);

  // Appends a free-form note to the artifact (not printed).
  void Note(const std::string& text);

  // Milliseconds of host wall-clock since construction.
  [[nodiscard]] double ElapsedMs() const;

  // Writes BENCH_<name>.json now; the destructor calls this if nobody did.
  // Returns the path written, or an empty string on I/O failure.
  std::string WriteJson();

 private:
  Json* FindOrInsert(Json& object, const std::string& key, Json empty);

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  Json titles_;
  Json config_;
  Json tables_;
  Json series_;
  Json metrics_;
  Json timings_;
  Json notes_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace vusion

#endif  // VUSION_BENCH_REPORTER_H_
