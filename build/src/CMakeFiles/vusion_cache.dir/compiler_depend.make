# Empty compiler generated dependencies file for vusion_cache.
# This may be replaced when dependencies are built.
