// Minimal ordered JSON value tree + writer, shared by the metrics registry and the
// bench reporter. Write-only by design (no parser): the simulator emits artifacts,
// it never consumes them. Object keys keep insertion order so emitted files diff
// cleanly across runs and PRs.

#ifndef VUSION_SRC_SIM_JSON_H_
#define VUSION_SRC_SIM_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vusion {

class Json {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
    kRaw,  // preserialized JSON text, emitted verbatim
  };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(long v) : kind_(Kind::kInt), int_(v) {}
  Json(long long v) : kind_(Kind::kInt), int_(v) {}
  Json(unsigned v) : kind_(Kind::kUint), uint_(v) {}
  Json(unsigned long v) : kind_(Kind::kUint), uint_(v) {}
  Json(unsigned long long v) : kind_(Kind::kUint), uint_(v) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  // Wraps already-serialized JSON text; Dump() splices it verbatim. Lets bulk
  // producers (the metrics snapshot serializer) render straight into a string
  // with reserved capacity instead of building a node per value — at fleet
  // scale the per-node allocations dominate artifact teardown. The caller is
  // responsible for `text` being valid JSON.
  static Json Raw(std::string text) {
    Json j;
    j.kind_ = Kind::kRaw;
    j.string_ = std::move(text);
    return j;
  }

  // Object insertion (sets kind to object on a null value). Replaces an existing key.
  Json& Set(const std::string& key, Json value);
  // Array append (sets kind to array on a null value).
  Json& Push(Json value);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  // Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* Find(const std::string& key) const;
  [[nodiscard]] Json* FindMutable(const std::string& key);

  // Serializes with `indent` spaces per level (0 = compact single line).
  [[nodiscard]] std::string Dump(int indent = 2) const;

  static void AppendEscaped(std::string& out, const std::string& s);
  // Shared numeric formatting ("%.12g"; non-finite values become null) so raw
  // serializers emit tokens identical to the tree writer's.
  static void AppendDouble(std::string& out, double v);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;
  // Rough serialized size, used to reserve the output string once in Dump().
  [[nodiscard]] std::size_t EstimateDumpSize() const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  // kObject: (key, value) in insertion order; kArray: keys empty.
  std::vector<std::pair<std::string, Json>> items_;
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_JSON_H_
