file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_wpf_reuse.dir/bench_fig3_wpf_reuse.cc.o"
  "CMakeFiles/bench_fig3_wpf_reuse.dir/bench_fig3_wpf_reuse.cc.o.d"
  "bench_fig3_wpf_reuse"
  "bench_fig3_wpf_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_wpf_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
