// Integration tests: whole scenarios of VMs + fusion engines, checking the
// memory-consumption dynamics behind the paper's Figures 10-12.

#include <gtest/gtest.h>

#include "src/workload/scenario.h"

namespace vusion {
namespace {

ScenarioConfig BaseScenario(EngineKind kind) {
  ScenarioConfig config;
  config.machine.frame_count = 1u << 15;  // 128 MB host
  config.fusion.wake_period = 1 * kMillisecond;
  config.fusion.pages_per_wake = 512;
  config.fusion.pool_frames = 2048;
  config.fusion.wpf_period = 100 * kMillisecond;
  config.engine = kind;
  return config;
}

VmImageSpec SmallImage() {
  VmImageSpec spec;
  spec.total_pages = 2048;  // 8 MB guests
  return spec;
}

TEST(ScenarioTest, NoDedupConsumptionStaysFlat) {
  Scenario scenario(BaseScenario(EngineKind::kNone));
  scenario.BootVm(SmallImage(), 1);
  scenario.BootVm(SmallImage(), 2);
  const std::uint64_t after_boot = scenario.consumed_frames();
  scenario.RunFor(2 * kSecond);
  EXPECT_EQ(scenario.consumed_frames(), after_boot);
}

TEST(ScenarioTest, KsmReducesConsumptionOfIdenticalVms) {
  Scenario scenario(BaseScenario(EngineKind::kKsm));
  scenario.BootVm(SmallImage(), 1);
  scenario.BootVm(SmallImage(), 2);
  const std::uint64_t after_boot = scenario.consumed_frames();
  scenario.RunFor(5 * kSecond);
  const std::uint64_t settled = scenario.consumed_frames();
  EXPECT_LT(settled, after_boot);
  // Two same-image VMs share a sizable fraction; expect >20% total reduction.
  EXPECT_LT(static_cast<double>(settled), 0.8 * static_cast<double>(after_boot));
  EXPECT_EQ(scenario.engine()->frames_saved(),
            after_boot - settled);
}

TEST(ScenarioTest, VUsionConvergesToSimilarSavingsAsKsm) {
  std::uint64_t saved_ksm = 0;
  std::uint64_t saved_vusion = 0;
  {
    Scenario scenario(BaseScenario(EngineKind::kKsm));
    scenario.BootVm(SmallImage(), 1);
    scenario.BootVm(SmallImage(), 2);
    scenario.RunFor(5 * kSecond);
    saved_ksm = scenario.engine()->frames_saved();
  }
  {
    Scenario scenario(BaseScenario(EngineKind::kVUsion));
    scenario.BootVm(SmallImage(), 1);
    scenario.BootVm(SmallImage(), 2);
    scenario.RunFor(5 * kSecond);
    saved_vusion = scenario.engine()->frames_saved();
  }
  EXPECT_GT(saved_ksm, 0u);
  // The paper's capacity claim: VUsion retains most of the savings (Fig 10).
  EXPECT_GT(static_cast<double>(saved_vusion), 0.85 * static_cast<double>(saved_ksm));
}

TEST(ScenarioTest, VUsionMergesLaterThanKsm) {
  // Figure 10's visible delay, sharpest with staggered boots: a second same-image
  // VM's pages hit KSM's already-populated stable tree and merge on first scan,
  // while VUsion still waits a full idle round before (fake) merging them.
  auto saved_after_one_round = [](EngineKind kind) {
    Scenario scenario(BaseScenario(kind));
    scenario.BootVm(SmallImage(), 1);
    scenario.RunFor(2 * kSecond);  // first VM fully processed
    const std::uint64_t before = scenario.engine()->frames_saved();
    scenario.BootVm(SmallImage(), 2);
    // Round-aligned wait: run until exactly one full scan round completed after
    // the second boot, i.e. every VM2 page was visited at least once.
    const std::uint64_t target = scenario.engine()->stats().full_scans + 1;
    while (scenario.engine()->stats().full_scans < target) {
      scenario.RunFor(scenario.config().fusion.wake_period);
    }
    return scenario.engine()->frames_saved() - before;
  };
  const std::uint64_t early_ksm = saved_after_one_round(EngineKind::kKsm);
  const std::uint64_t early_vusion = saved_after_one_round(EngineKind::kVUsion);
  // KSM merges a page the first time it sees it (stable-tree hit); VUsion must see
  // it idle for a full round first, so after one round it has merged clearly less.
  EXPECT_GT(early_ksm, early_vusion * 5 / 4);
}

TEST(ScenarioTest, ZeroOnlyFusionSavesMuchLess) {
  std::uint64_t saved_full = 0;
  std::uint64_t saved_zero = 0;
  {
    Scenario scenario(BaseScenario(EngineKind::kKsm));
    scenario.BootVm(SmallImage(), 1);
    scenario.BootVm(SmallImage(), 2);
    scenario.RunFor(5 * kSecond);
    saved_full = scenario.engine()->frames_saved();
  }
  {
    Scenario scenario(BaseScenario(EngineKind::kKsmZeroOnly));
    scenario.BootVm(SmallImage(), 1);
    scenario.BootVm(SmallImage(), 2);
    scenario.RunFor(5 * kSecond);
    saved_zero = scenario.engine()->frames_saved();
  }
  EXPECT_GT(saved_zero, 0u);
  // The paper's Fig 4 point: zero pages are a minority of the opportunity.
  EXPECT_LT(static_cast<double>(saved_zero), 0.6 * static_cast<double>(saved_full));
}

TEST(ScenarioTest, MergesAttributedToPageTypes) {
  Scenario scenario(BaseScenario(EngineKind::kKsm));
  scenario.BootVm(SmallImage(), 1);
  scenario.BootVm(SmallImage(), 2);
  scenario.RunFor(5 * kSecond);
  const auto& by_type = scenario.engine()->stats().merges_by_type;
  const std::uint64_t total = by_type[0] + by_type[1] + by_type[2] + by_type[3];
  EXPECT_GT(total, 0u);
  // Page cache and guest-free pages dominate (Table 3's shape).
  const std::uint64_t cache = by_type[static_cast<int>(PageType::kPageCache)];
  const std::uint64_t buddy = by_type[static_cast<int>(PageType::kGuestBuddy)];
  EXPECT_GT(cache + buddy, total / 2);
}

TEST(ScenarioTest, DiverseVmsStillFuse) {
  ScenarioConfig config = BaseScenario(EngineKind::kKsm);
  config.machine.frame_count = 1u << 15;
  Scenario scenario(config);
  for (std::size_t i = 0; i < 6; ++i) {
    VmImageSpec spec = VmImage::CatalogImage(i);
    spec.total_pages = 1024;
    scenario.BootVm(spec, 100 + i);
  }
  scenario.RunFor(5 * kSecond);
  EXPECT_GT(scenario.engine()->frames_saved(), 100u);
}

TEST(ScenarioTest, ConsumedAccountsExcludePoolReserve) {
  ScenarioConfig config = BaseScenario(EngineKind::kVUsion);
  Scenario scenario(config);
  // Right after construction, only pool + nothing else is allocated; consumed ~0.
  EXPECT_LT(scenario.consumed_frames(), 64u);
  EXPECT_EQ(scenario.engine()->reserved_frames(), config.fusion.pool_frames);
}

}  // namespace
}  // namespace vusion
