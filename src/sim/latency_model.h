// Central latency model: every simulated hardware/kernel operation gets its cost here.
//
// The constants approximate the paper's testbed (Intel Xeon E3-1240 v5, DDR4) at the
// granularity the attacks care about: a cached access is tens of ns, a DRAM access is
// ~100 ns, and a page fault that copies a page is microseconds. Side channels in this
// repository are *distributional*, so each charge can carry seeded log-normal noise to
// produce realistic histograms while staying reproducible.

#ifndef VUSION_SRC_SIM_LATENCY_MODEL_H_
#define VUSION_SRC_SIM_LATENCY_MODEL_H_

#include <cmath>

#include "src/sim/clock.h"
#include "src/sim/rng.h"

namespace vusion {

// Latency constants in nanoseconds. Members are mutable configuration so tests and
// ablation benches can stress specific costs.
struct LatencyConfig {
  // Address translation.
  SimTime tlb_hit = 1;
  SimTime tlb_lookup = 1;           // charged even on miss, before the walk
  SimTime page_walk_step_cached = 4;  // PT entry found in LLC
  SimTime page_walk_step_memory = 70; // PT entry fetched from DRAM

  // Data access.
  SimTime l1_hit = 4;
  SimTime llc_hit = 14;
  SimTime dram_row_hit = 60;
  SimTime dram_row_miss = 110;      // activate + precharge
  SimTime uncached_access = 180;    // PTE cache-disable bit set: always DRAM, stronger penalty

  SimTime clflush = 40;             // cache line flush instruction
  SimTime page_cache_fill = 6000;   // guest FS read filling one page-cache page

  // Kernel paths.
  SimTime fault_entry_exit = 1400;  // trap, handler dispatch, return
  SimTime page_copy_4k = 950;       // copy_user_highpage equivalent
  SimTime buddy_alloc = 420;
  SimTime buddy_free = 380;
  SimTime pte_update = 90;          // incl. TLB shootdown cost, single CPU
  SimTime tree_step = 25;           // one comparison+descend in a fusion tree
  SimTime content_compare = 600;    // memcmp of two 4 KB pages
  SimTime content_hash = 350;       // hash of one 4 KB page
  SimTime queue_op = 60;            // deferred-free queue push (also the dummy push)
  SimTime huge_collapse = 12000;    // khugepaged copying 512 pages
  SimTime huge_split = 2100;        // splitting a THP into 512 PTEs

  // Relative sigma of the log-normal noise applied by Noisy(); 0 disables noise.
  double noise_sigma = 0.04;
};

// Applies latencies to a clock, with optional noise from a dedicated RNG stream.
class LatencyModel {
 public:
  // Noise draws are precomputed in batches of this size (even: refills consume
  // whole Box-Muller pairs). Public because the savestate mirrors the batch.
  static constexpr int kNoiseBatch = 64;

  LatencyModel(const LatencyConfig& config, VirtualClock& clock, Rng noise_rng);

  // Charges `base` nanoseconds with multiplicative log-normal noise. Inline
  // (with the RNG draw): the scan loop charges several times per page, and the
  // cross-TU call overhead is measurable there.
  SimTime Charge(SimTime base) {
    SimTime cost = base;
    const double sigma = config_.noise_sigma;
    if (sigma > 0.0 && base > 0) {
      // One draw from the precomputed noise batch; RefillNoise computes the
      // identical gaussians (and exp factors) the per-charge NextLogNormal
      // would, just 64 at a time. The sigma check covers a mid-batch
      // mutable_config() change: the buffered gaussians are still the correct
      // next draws, only the factor must be recomputed under the new sigma.
      if (noise_pos_ == kNoiseBatch) {
        RefillNoise();
      }
      const double factor = sigma == factor_sigma_
                                ? factor_[noise_pos_]
                                : std::exp(sigma * gauss_[noise_pos_]);
      ++noise_pos_;
      const double noisy = static_cast<double>(base) * factor;
      if (noisy < 0x1p51) {
        // llround without the libm call (~5% of the scan profile). Below 2^51
        // `noisy + 0.5` is exact (spacing <= 0.5), so truncating it is exactly
        // round-half-away-from-zero — except inside [0.5 - eps, 0.5), where
        // the sum can round up across 1.0; both sides of that difference land
        // in the clamp below, so the final cost is still bit-identical to
        // llround's.
        cost = static_cast<SimTime>(noisy + 0.5);
      } else {
        cost = SlowRound(noisy);
      }
      if (cost == 0) {
        cost = 1;
      }
    }
    if (batching()) {
      pending_ += cost;
    } else {
      clock_->Advance(cost);
    }
    return cost;
  }

  // Charges without noise (for bookkeeping costs where jitter is irrelevant).
  SimTime ChargeExact(SimTime base) {
    if (batching()) {
      pending_ += base;
    } else {
      clock_->Advance(base);
    }
    return base;
  }

  // --- Batched charging (see ChargeSpan below) ---
  //
  // Inside an open batch, Charge/ChargeExact draw their noise exactly as in
  // unbatched operation (same RNG calls, same order, same costs) but accumulate
  // the costs instead of advancing the clock per call; the accumulated total is
  // applied in one Advance at flush. Because VirtualClock::Advance is a pure
  // sum, the flushed clock is bit-identical to the unbatched clock — provided
  // every mid-span reader of clock().now() (trace emits, daemon scheduling)
  // calls FlushPending() first. Batches nest; only the outermost close flushes
  // implicitly.
  void BeginBatch() { ++batch_depth_; }
  void EndBatch() {
    if (--batch_depth_ == 0) {
      FlushPending();
    }
  }
  // Applies any accumulated cost to the clock. Must be called before reading
  // clock().now() inside an open batch; harmless (and O(1)) otherwise.
  void FlushPending() {
    if (pending_ > 0) {
      clock_->Advance(pending_);
      pending_ = 0;
    }
  }
  // Parity/ablation toggle: when disabled, every charge advances the clock
  // immediately even inside a span. Also settable via VUSION_UNBATCHED_CHARGES=1.
  void set_batching_enabled(bool enabled) {
    FlushPending();
    batching_enabled_ = enabled;
  }
  [[nodiscard]] bool batching_enabled() const { return batching_enabled_; }

  [[nodiscard]] const LatencyConfig& config() const { return config_; }
  LatencyConfig& mutable_config() { return config_; }
  [[nodiscard]] VirtualClock& clock() { return *clock_; }

  // --- Savestate accessors (mirrors Rng::state()/RestoreState) ---
  //
  // The buffered noise draws are deterministic stream state: gauss_ holds
  // gaussians already pulled from the noise RNG but not yet consumed by
  // Charge, so dropping them on restore would shift every later draw.
  struct NoiseCacheState {
    double gauss[kNoiseBatch] = {};
    double factor[kNoiseBatch] = {};
    double factor_sigma = -1.0;
    int noise_pos = kNoiseBatch;
  };
  [[nodiscard]] NoiseCacheState noise_cache_state() const {
    NoiseCacheState s;
    for (int i = 0; i < kNoiseBatch; ++i) {
      s.gauss[i] = gauss_[i];
      s.factor[i] = factor_[i];
    }
    s.factor_sigma = factor_sigma_;
    s.noise_pos = noise_pos_;
    return s;
  }
  void RestoreNoiseCacheState(const NoiseCacheState& s) {
    for (int i = 0; i < kNoiseBatch; ++i) {
      gauss_[i] = s.gauss[i];
      factor_[i] = s.factor[i];
    }
    factor_sigma_ = s.factor_sigma;
    noise_pos_ = s.noise_pos;
  }
  // The dedicated noise stream itself, for Rng::state() round-trips.
  [[nodiscard]] Rng& noise_rng() { return rng_; }

 private:
  [[nodiscard]] bool batching() const { return batch_depth_ > 0 && batching_enabled_; }
  // Out-of-line std::llround for the (never seen in practice) >= 2^51 range,
  // keeping <cmath>'s llround out of this header's hot inline path.
  static SimTime SlowRound(double noisy);
  // Refills gauss_/factor_ with the next kNoiseBatch draws of the noise
  // stream. rng_ feeds nothing but Charge's noise, so drawing ahead of
  // consumption is invisible to every other stream, and the batch loop lets
  // the 32 independent Box-Muller pairs (and their exp factors) pipeline
  // instead of serializing one libm round-trip per charge.
  void RefillNoise();

  LatencyConfig config_;
  VirtualClock* clock_;
  Rng rng_;
  SimTime pending_ = 0;
  int batch_depth_ = 0;
  bool batching_enabled_ = true;
  double gauss_[kNoiseBatch];
  double factor_[kNoiseBatch];
  double factor_sigma_ = -1.0;  // sigma factor_ was computed with
  int noise_pos_ = kNoiseBatch;
};

// RAII batch scope for a homogeneous run of charges (one scan pass, one page's
// worth of tree descends). Open around hot loops; emit paths inside must flush
// before timestamping (the engines' trace emits do).
class ChargeSpan {
 public:
  explicit ChargeSpan(LatencyModel& model) : model_(&model) { model_->BeginBatch(); }
  ~ChargeSpan() { model_->EndBatch(); }
  ChargeSpan(const ChargeSpan&) = delete;
  ChargeSpan& operator=(const ChargeSpan&) = delete;

 private:
  LatencyModel* model_;
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_LATENCY_MODEL_H_
