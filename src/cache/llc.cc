#include "src/cache/llc.h"

namespace vusion {

Llc::Llc(const CacheConfig& config) : config_(config), lines_(config.sets * config.ways) {}

bool Llc::Access(PhysAddr paddr) {
  const std::uint64_t tag = paddr / config_.line_size;
  const std::size_t set = tag % config_.sets;
  Line* base = &lines_[set * config_.ways];
  ++tick_;
  Line* victim = base;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  ++misses_;
  return false;
}

void Llc::Flush(PhysAddr paddr) {
  const std::uint64_t tag = paddr / config_.line_size;
  const std::size_t set = tag % config_.sets;
  Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      return;
    }
  }
}

void Llc::FlushFrame(FrameId frame) {
  const PhysAddr start = static_cast<PhysAddr>(frame) * kPageSize;
  for (std::size_t off = 0; off < kPageSize; off += config_.line_size) {
    Flush(start + off);
  }
}

bool Llc::Contains(PhysAddr paddr) const {
  const std::uint64_t tag = paddr / config_.line_size;
  const std::size_t set = tag % config_.sets;
  const Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return true;
    }
  }
  return false;
}

std::size_t Llc::ColorOf(FrameId frame) const { return frame % config_.page_colors(); }

std::size_t Llc::SetIndexOf(PhysAddr paddr) const {
  return (paddr / config_.line_size) % config_.sets;
}

}  // namespace vusion
