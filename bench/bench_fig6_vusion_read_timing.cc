// Figure 6: frequency distribution of timing 1,000 reads in VUsion. Shared and
// unshared pages both trigger copy-on-access, so the distributions coincide; the
// Kolmogorov-Smirnov p-value is high (the paper reports 0.36).

#include <cstdio>

#include "src/attack/cow_side_channel.h"
#include "src/sim/ks_test.h"
#include "src/sim/stats.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("fig6_vusion_read_timing");
  reporter.Header("Figure 6: freq. dist. of timing 1,000 reads in VUsion");
  AttackEnvironment env(EngineKind::kVUsion, 1, AttackMachineConfig(), AttackFusionConfig());
  const CowSideChannel::Samples samples =
      CowSideChannel::Collect(env, /*pages_per_class=*/500, /*use_reads=*/true);

  Histogram shared(0.0, 8000.0, 40);
  Histogram unshared(0.0, 8000.0, 40);
  for (const double t : samples.hit_times) {
    shared.Add(t);
  }
  for (const double t : samples.miss_times) {
    unshared.Add(t);
  }
  std::printf("shared pages   — read latency ns (bin low)\tcount\n%s", shared.Render(60).c_str());
  std::printf("\nunshared pages — read latency ns (bin low)\tcount\n%s",
              unshared.Render(60).c_str());

  const KsResult ks = KsTwoSample(samples.hit_times, samples.miss_times);
  std::printf("\nKS test shared vs unshared reads: D=%.3f p=%.3f\n", ks.statistic, ks.p_value);
  std::printf("paper: p=0.36 -> same distribution, Same Behaviour enforced; %s\n",
              ks.p_value > 0.05 ? "REPRODUCED" : "NOT reproduced");

  reporter.AddSeries("shared_read_ns", samples.hit_times);
  reporter.AddSeries("unshared_read_ns", samples.miss_times);
  reporter.AddRow("ks_test", {{"statistic", ks.statistic},
                              {"p_value", ks.p_value},
                              {"reproduced", ks.p_value > 0.05}});
  if (env.engine() != nullptr) {
    env.engine()->ExportMetrics(env.machine().metrics());
  }
  reporter.AddMetrics(EngineKindName(env.kind()), env.machine().CollectMetrics());
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
