#include "src/phys/physical_memory.h"

#include <atomic>
#include <cassert>
#include <cstring>

#include "src/phys/content_isa.h"

namespace vusion {

namespace {

// Scratch pages for hashing/comparing non-materialized (zero/pattern) contents
// without allocating. Thread-local because phase-1 scan workers call PeekHash
// concurrently.
alignas(32) thread_local std::uint8_t g_scratch_a[kPageSize];
alignas(32) thread_local std::uint8_t g_scratch_b[kPageSize];

alignas(32) constexpr std::uint8_t kZeroPage[kPageSize] = {};

// Byte stream of a frame as a flat buffer: materialized frames expose their own
// bytes; zero/pattern frames borrow `scratch`.
const std::uint8_t* FrameBytes(const Frame& fr, std::uint8_t* scratch) {
  switch (fr.kind) {
    case ContentKind::kZero:
      return kZeroPage;
    case ContentKind::kPattern:
      ExpandPattern(fr.pattern_seed, scratch);
      return scratch;
    case ContentKind::kBytes:
      return fr.bytes->data();
  }
  return kZeroPage;
}

// Sole writer of the per-frame hash memo pair. Writes are confined to the
// serial sim thread, but streaming-scan workers read the memo concurrently, so
// the pair is published hash-first with a release store on the generation:
// a worker that acquire-reads hash_gen == content_gen is guaranteed to read
// the matching hash. gen == 0 invalidates (generation 0 is never current).
void StoreMemo(const Frame& fr, std::uint64_t hash, std::uint64_t gen) {
  std::atomic_ref<std::uint64_t>(fr.cached_hash).store(hash, std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(fr.hash_gen).store(gen, std::memory_order_release);
}

}  // namespace

std::uint8_t PatternByte(std::uint64_t seed, std::size_t offset) {
  const std::uint64_t word = PatternWord(seed, offset / 8);
  return static_cast<std::uint8_t>(word >> (8 * (offset % 8)));
}

bool PhysicalMemory::PatternHashLookup(std::uint64_t seed, bool promote,
                                       std::uint64_t* out) const {
  const auto hot = pattern_hash_hot_.find(seed);
  if (hot != pattern_hash_hot_.end()) {
    *out = hot->second;
    return true;
  }
  const auto cold = pattern_hash_cold_.find(seed);
  if (cold != pattern_hash_cold_.end()) {
    *out = cold->second;
    if (promote) {
      PatternHashInsert(seed, *out);
    }
    return true;
  }
  return false;
}

void PhysicalMemory::PatternHashInsert(std::uint64_t seed, std::uint64_t hash) const {
  if (pattern_hash_hot_.size() >= kPatternHashCacheCap / 2) {
    // Segment rotation: the hot half becomes the cold half and the previous
    // cold half is dropped. Recently used seeds survive at least one rotation,
    // so mixed-pattern workloads no longer lose the whole cache at the cap.
    pattern_hash_cold_ = std::move(pattern_hash_hot_);
    pattern_hash_hot_.clear();
    ++pattern_hash_evictions_;
  }
  pattern_hash_hot_.insert_or_assign(seed, hash);
}

PhysicalMemory::PhysicalMemory(FrameId frame_count) : frames_(frame_count) {}

void PhysicalMemory::MarkAllocated(FrameId f) {
  assert(!frames_[f].allocated);
  frames_[f].allocated = true;
  ++allocated_count_;
}

void PhysicalMemory::MarkFree(FrameId f) {
  assert(frames_[f].allocated);
  frames_[f].allocated = false;
  frames_[f].refcount = 0;
  --allocated_count_;
}

std::uint32_t PhysicalMemory::DecRef(FrameId f) {
  assert(frames_[f].refcount > 0);
  return --frames_[f].refcount;
}

void PhysicalMemory::FillZero(FrameId f) {
  const ScanGateLock gate(*this);
  Frame& fr = frames_[f];
  if (fr.bytes != nullptr) {
    fr.bytes.reset();
    --materialized_count_;
  }
  fr.kind = ContentKind::kZero;
  fr.pattern_seed = 0;
  ++fr.content_gen;
  NoteMutation(f);
}

void PhysicalMemory::FillPattern(FrameId f, std::uint64_t seed) {
  const ScanGateLock gate(*this);
  Frame& fr = frames_[f];
  if (fr.bytes != nullptr) {
    fr.bytes.reset();
    --materialized_count_;
  }
  fr.kind = ContentKind::kPattern;
  fr.pattern_seed = seed;
  ++fr.content_gen;
  NoteMutation(f);
}

void PhysicalMemory::Unshare(FrameId f) {
  Frame& fr = frames_[f];
  if (fr.bytes.use_count() > 1) {
    fr.bytes = std::make_shared<PageBytes>(*fr.bytes);
  }
}

void PhysicalMemory::Materialize(FrameId f) {
  Frame& fr = frames_[f];
  if (fr.kind == ContentKind::kBytes) {
    return;
  }
  auto buf = std::make_shared<PageBytes>();
  if (fr.kind == ContentKind::kZero) {
    buf->fill(0);
  } else {
    ExpandPattern(fr.pattern_seed, buf->data());
  }
  fr.bytes = std::move(buf);
  fr.kind = ContentKind::kBytes;
  ++materialized_count_;
}

void PhysicalMemory::WriteBytes(FrameId f, std::size_t offset,
                                std::span<const std::uint8_t> data) {
  assert(offset + data.size() <= kPageSize);
  const ScanGateLock gate(*this);
  Materialize(f);
  Unshare(f);
  std::memcpy(frames_[f].bytes->data() + offset, data.data(), data.size());
  ++frames_[f].content_gen;
  NoteMutation(f);
}

void PhysicalMemory::WriteU64(FrameId f, std::size_t offset, std::uint64_t value) {
  std::uint8_t raw[8];
  std::memcpy(raw, &value, 8);
  WriteBytes(f, offset, raw);
}

std::uint8_t PhysicalMemory::ByteAt(FrameId f, std::size_t offset) const {
  const Frame& fr = frames_[f];
  switch (fr.kind) {
    case ContentKind::kZero:
      return 0;
    case ContentKind::kPattern:
      return PatternByte(fr.pattern_seed, offset);
    case ContentKind::kBytes:
      return (*fr.bytes)[offset];
  }
  return 0;
}

std::uint64_t PhysicalMemory::ReadU64(FrameId f, std::size_t offset) const {
  assert(offset + 8 <= kPageSize);
  const Frame& fr = frames_[f];
  if (fr.kind == ContentKind::kBytes) {
    std::uint64_t value = 0;
    std::memcpy(&value, fr.bytes->data() + offset, 8);
    return value;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(ByteAt(f, offset + i)) << (8 * i);
  }
  return value;
}

std::uint8_t PhysicalMemory::ReadByte(FrameId f, std::size_t offset) const {
  assert(offset < kPageSize);
  return ByteAt(f, offset);
}

void PhysicalMemory::CopyFrame(FrameId dst, FrameId src) {
  const ScanGateLock gate(*this);
  Frame& d = frames_[dst];
  const Frame& s = frames_[src];
  ++d.content_gen;
  NoteMutation(dst);
  // The copy inherits the source's cached hash (valid or not at the new generation).
  StoreMemo(d, s.cached_hash, s.hash_cached() ? d.content_gen : 0);
  if (s.kind == ContentKind::kBytes) {
    // Alias the buffer copy-on-write instead of copying 4 KB; a later write to
    // either frame clones it (Unshare).
    if (d.bytes == nullptr) {
      ++materialized_count_;
    }
    d.bytes = s.bytes;
    d.kind = ContentKind::kBytes;
    return;
  }
  if (d.bytes != nullptr) {
    d.bytes.reset();
    --materialized_count_;
  }
  d.kind = s.kind;
  d.pattern_seed = s.pattern_seed;
}

void PhysicalMemory::FlipBit(FrameId f, std::size_t bit_index) {
  assert(bit_index < kPageSize * 8);
  const ScanGateLock gate(*this);
  Materialize(f);
  Unshare(f);
  (*frames_[f].bytes)[bit_index / 8] ^= static_cast<std::uint8_t>(1U << (bit_index % 8));
  ++frames_[f].content_gen;
  NoteMutation(f);
}

int PhysicalMemory::Compare(FrameId a, FrameId b) const {
  if (a == b) {
    return 0;
  }
  const Frame& fa = frames_[a];
  const Frame& fb = frames_[b];
  // Fast paths that avoid byte generation.
  if (fa.kind == ContentKind::kZero && fb.kind == ContentKind::kZero) {
    return 0;
  }
  if (fa.kind == ContentKind::kPattern && fb.kind == ContentKind::kPattern &&
      fa.pattern_seed == fb.pattern_seed) {
    return 0;
  }
  if (fa.kind == ContentKind::kBytes && fb.kind == ContentKind::kBytes &&
      fa.bytes == fb.bytes) {
    return 0;  // CoW-aliased buffers are byte-identical by construction
  }
  // Mixed or materialized kinds: expand the non-materialized side(s) into
  // scratch and run the vectorized compare.
  const std::uint8_t* pa = FrameBytes(fa, g_scratch_a);
  const std::uint8_t* pb = FrameBytes(fb, g_scratch_b);
  return ActiveContentOps().compare_pages(pa, pb);
}

std::uint64_t PhysicalMemory::HashContentSlow(FrameId f) const {
  const Frame& fr = frames_[f];
  std::uint64_t h = 0;
  switch (fr.kind) {
    case ContentKind::kBytes:
      h = ActiveContentOps().hash_page(fr.bytes->data());
      break;
    case ContentKind::kZero:
      h = ZeroPageHash();
      break;
    case ContentKind::kPattern: {
      // Promotion and insertion mutate the cache maps, which streaming-scan
      // workers probe concurrently (PeekHash); the gate excludes them.
      const ScanGateLock gate(*this);
      if (PatternHashLookup(fr.pattern_seed, /*promote=*/true, &h)) {
        ++pattern_hash_hits_;
      } else {
        ++pattern_hash_misses_;
        ExpandPattern(fr.pattern_seed, g_scratch_a);
        h = ActiveContentOps().hash_page(g_scratch_a);
        PatternHashInsert(fr.pattern_seed, h);
      }
      break;
    }
  }
  StoreMemo(fr, h, fr.content_gen);
  return h;
}

PhysicalMemory::HashSnapshot PhysicalMemory::PeekHash(FrameId f) const {
  const Frame& fr = frames_[f];
  HashSnapshot snapshot{fr.content_gen, 0};
  // Acquire/release pairing with StoreMemo: a matching generation guarantees
  // the relaxed hash load below observes the hash published with it (and any
  // older value at this generation is the identical deterministic hash).
  if (std::atomic_ref<std::uint64_t>(fr.hash_gen).load(std::memory_order_acquire) ==
      snapshot.content_gen) {
    snapshot.hash =
        std::atomic_ref<std::uint64_t>(fr.cached_hash).load(std::memory_order_relaxed);
    return snapshot;
  }
  std::uint64_t h = 0;
  switch (fr.kind) {
    case ContentKind::kBytes:
      h = ActiveContentOps().hash_page(fr.bytes->data());
      break;
    case ContentKind::kZero:
      h = ZeroPageHash();
      break;
    case ContentKind::kPattern:
      // Read-only probe of the pattern cache: concurrent finds are safe; on a miss
      // we recompute without inserting, promoting, or bumping the (unsynchronized)
      // counters.
      if (!PatternHashLookup(fr.pattern_seed, /*promote=*/false, &h)) {
        ExpandPattern(fr.pattern_seed, g_scratch_a);
        h = ActiveContentOps().hash_page(g_scratch_a);
      }
      break;
  }
  snapshot.hash = h;
  return snapshot;
}

bool PhysicalMemory::PrimeHash(FrameId f, const HashSnapshot& snapshot) {
  const Frame& fr = frames_[f];
  if (fr.content_gen != snapshot.content_gen) {
    return false;
  }
  if (fr.hash_gen != fr.content_gen) {
    StoreMemo(fr, snapshot.hash, fr.content_gen);
  }
  return true;
}

PhysicalMemory::ContentSnapshot PhysicalMemory::Snapshot(FrameId f) const {
  const Frame& fr = frames_[f];
  ContentSnapshot snapshot;
  snapshot.kind = fr.kind;
  snapshot.pattern_seed = fr.pattern_seed;
  if (fr.kind == ContentKind::kBytes) {
    snapshot.bytes = std::make_unique<PageBytes>(*fr.bytes);
  }
  snapshot.hash = HashContent(f);
  return snapshot;
}

void PhysicalMemory::Restore(FrameId f, const ContentSnapshot& snapshot) {
  switch (snapshot.kind) {
    case ContentKind::kZero:
      FillZero(f);
      break;
    case ContentKind::kPattern:
      FillPattern(f, snapshot.pattern_seed);
      break;
    case ContentKind::kBytes:
      WriteBytes(f, 0, *snapshot.bytes);
      break;
  }
  StoreMemo(frames_[f], snapshot.hash, frames_[f].content_gen);
}

bool PhysicalMemory::SnapshotsEqual(const ContentSnapshot& a, const ContentSnapshot& b) {
  if (a.hash != b.hash) {
    return false;
  }
  if (a.kind != ContentKind::kBytes && a.kind == b.kind) {
    return a.kind == ContentKind::kZero || a.pattern_seed == b.pattern_seed;
  }
  // At least one side is materialized: compare byte streams.
  auto byte_at = [](const ContentSnapshot& s, std::size_t i) -> std::uint8_t {
    switch (s.kind) {
      case ContentKind::kZero:
        return 0;
      case ContentKind::kPattern:
        return PatternByte(s.pattern_seed, i);
      case ContentKind::kBytes:
        return (*s.bytes)[i];
    }
    return 0;
  };
  for (std::size_t i = 0; i < kPageSize; ++i) {
    if (byte_at(a, i) != byte_at(b, i)) {
      return false;
    }
  }
  return true;
}

bool PhysicalMemory::IsZero(FrameId f) const {
  const Frame& fr = frames_[f];
  if (fr.kind == ContentKind::kZero) {
    return true;
  }
  if (fr.kind == ContentKind::kBytes) {
    return ActiveContentOps().is_zero(fr.bytes->data());
  }
  // Pattern frames are non-zero with overwhelming probability; check one word
  // at a time without expanding the page.
  for (std::size_t w = 0; w < kPageSize / 8; ++w) {
    if (PatternWord(fr.pattern_seed, w) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace vusion

#include "src/snapshot/io.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vusion {

void PhysicalMemory::SaveState(snapshot::SnapshotWriter& w) const {
  w.U32(frame_count());
  // CoW-aliased buffers are serialized once; later frames sharing the buffer
  // write a backref to the first user, so restore re-establishes the aliasing
  // (and with it the materialized-byte accounting and Compare's pointer-equal
  // fast path).
  std::unordered_map<const PageBytes*, FrameId> first_use;
  for (FrameId f = 0; f < frame_count(); ++f) {
    const Frame& fr = frames_[f];
    w.Bool(fr.allocated);
    w.U32(fr.refcount);
    w.U8(static_cast<std::uint8_t>(fr.kind));
    w.U64(fr.pattern_seed);
    w.U64(fr.content_gen);
    // The hash memo is serialized because its validity is observable: a frame
    // restored without it would re-enter HashContentSlow and bump the pattern
    // cache hit/miss counters where the uninterrupted run would not.
    w.Bool(fr.hash_cached());
    w.U64(fr.hash_cached() ? fr.cached_hash : 0);
    if (fr.kind == ContentKind::kBytes) {
      const auto [it, inserted] = first_use.try_emplace(fr.bytes.get(), f);
      if (inserted) {
        w.U8(0);
        w.Bytes(fr.bytes->data(), kPageSize);
      } else {
        w.U8(1);
        w.U32(it->second);
      }
    }
  }
  w.U64(shared_content_mutations_);
  // Pattern-hash cache membership, sorted by seed so identical caches
  // serialize identically regardless of hash-map iteration order. The two
  // segments are kept distinct: rotation timing depends on the hot size.
  const auto write_segment = [&w](const std::unordered_map<std::uint64_t, std::uint64_t>& seg) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(seg.begin(), seg.end());
    std::sort(entries.begin(), entries.end());
    w.U64(entries.size());
    for (const auto& [seed, hash] : entries) {
      w.U64(seed);
      w.U64(hash);
    }
  };
  write_segment(pattern_hash_hot_);
  write_segment(pattern_hash_cold_);
  w.U64(pattern_hash_hits_);
  w.U64(pattern_hash_misses_);
  w.U64(pattern_hash_evictions_);
}

void PhysicalMemory::RestoreState(snapshot::SnapshotReader& r) {
  const FrameId count = r.U32();
  if (count != frame_count()) {
    throw snapshot::RestoreError(
        "phys.frames", "frame count mismatch (snapshot " + std::to_string(count) +
                           ", machine " + std::to_string(frame_count()) + ")");
  }
  allocated_count_ = 0;
  materialized_count_ = 0;
  for (FrameId f = 0; f < count; ++f) {
    Frame& fr = frames_[f];
    fr.bytes.reset();
    fr.allocated = r.Bool();
    fr.refcount = r.U32();
    const std::uint8_t kind = r.U8();
    if (kind > static_cast<std::uint8_t>(ContentKind::kBytes)) {
      throw snapshot::RestoreError("phys.frames", "bad content kind");
    }
    fr.kind = static_cast<ContentKind>(kind);
    fr.pattern_seed = r.U64();
    fr.content_gen = r.U64();
    const bool hash_valid = r.Bool();
    fr.cached_hash = r.U64();
    fr.hash_gen = hash_valid ? fr.content_gen : 0;
    if (fr.kind == ContentKind::kBytes) {
      const std::uint8_t tag = r.U8();
      if (tag == 0) {
        fr.bytes = std::make_shared<PageBytes>();
        r.Bytes(fr.bytes->data(), kPageSize);
      } else {
        const FrameId src = r.U32();
        if (src >= f || frames_[src].bytes == nullptr) {
          throw snapshot::RestoreError("phys.frames", "bad CoW backref");
        }
        fr.bytes = frames_[src].bytes;
      }
      ++materialized_count_;
    }
    allocated_count_ += fr.allocated ? 1 : 0;
  }
  shared_content_mutations_ = r.U64();
  const auto read_segment = [&r](std::unordered_map<std::uint64_t, std::uint64_t>& seg) {
    seg.clear();
    const std::uint64_t n = r.Count(16);
    seg.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t seed = r.U64();
      seg.emplace(seed, r.U64());
    }
  };
  read_segment(pattern_hash_hot_);
  read_segment(pattern_hash_cold_);
  pattern_hash_hits_ = r.U64();
  pattern_hash_misses_ = r.U64();
  pattern_hash_evictions_ = r.U64();
}

}  // namespace vusion
