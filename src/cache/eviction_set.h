// Attacker-side eviction-set machinery for PRIME+PROBE at page-color granularity
// (§5.1 "Page color changes"). An eviction set for color C is `ways` attacker pages
// whose frames share color C; accessing all of their lines evicts every other line
// from the 64 cache sets that color-C pages cover.

#ifndef VUSION_SRC_CACHE_EVICTION_SET_H_
#define VUSION_SRC_CACHE_EVICTION_SET_H_

#include <functional>
#include <span>
#include <vector>

#include "src/cache/llc.h"

namespace vusion {

class ColorEvictionSets {
 public:
  // Groups the attacker's frames by color. The attacker in the real attack learns
  // colors by timing; here grouping uses the geometry directly (the timing procedure
  // is demonstrated separately in the page-color attack's calibration phase).
  ColorEvictionSets(std::span<const FrameId> frames, const CacheConfig& config);

  // True if every color has at least `ways` frames (a complete eviction set).
  [[nodiscard]] bool complete() const;

  [[nodiscard]] std::size_t colors() const { return sets_.size(); }
  [[nodiscard]] const std::vector<FrameId>& frames_for(std::size_t color) const {
    return sets_[color];
  }

  // Number of line accesses one Prime/Probe of a color performs.
  [[nodiscard]] std::size_t accesses_per_color() const;

  // Accesses all lines of the eviction set for `color` through the provided access
  // function (which should go through the simulated memory hierarchy so it both
  // perturbs the cache and accrues time). Returns the summed reported latency.
  SimTime Traverse(std::size_t color,
                   const std::function<SimTime(FrameId frame, std::size_t offset)>& access) const;

 private:
  CacheConfig config_;
  std::vector<std::vector<FrameId>> sets_;  // per color, capped at `ways` frames
};

}  // namespace vusion

#endif  // VUSION_SRC_CACHE_EVICTION_SET_H_
