// New merge-based disclosure attack (paper §5.1 "Page color changes"): detect a
// merge event WITHOUT writing, by observing over PRIME+PROBE that a page's color
// (its LLC set mapping) changed after a fusion pass. Works whenever the merge
// rebinds the page to a different physical frame (KSM's join-the-stable-copy, WPF's
// new combined frame). VUsion defeats it with SB: every candidate page, merged or
// not, is rebound to a fresh random frame, so a color change carries no signal.

#ifndef VUSION_SRC_ATTACK_PAGE_COLOR_ATTACK_H_
#define VUSION_SRC_ATTACK_PAGE_COLOR_ATTACK_H_

#include "src/attack/timing_probe.h"
#include "src/cache/eviction_set.h"

namespace vusion {

class PageColorAttack {
 public:
  // Builds PRIME+PROBE eviction sets for every color, timing-calibrates the color
  // of a duplicate guess page and a control page, waits for a fusion pass, and
  // reports success if the color-change indicator distinguishes the two.
  static AttackOutcome Run(EngineKind kind, std::uint64_t seed);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_PAGE_COLOR_ATTACK_H_
