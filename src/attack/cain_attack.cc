#include "src/attack/cain_attack.h"

#include <algorithm>
#include <sstream>

namespace vusion {

namespace {

constexpr std::uint64_t kPageBaseSeed = 0xca19;      // the known page contents
constexpr std::size_t kPointerOffset = 0x38;         // where the pointer lives
constexpr std::uint64_t kPointerBase = 0x7f0000000000ULL;

// Builds "known page with candidate pointer" content in the given frame.
void CraftGuess(Machine& machine, FrameId frame, std::uint64_t candidate) {
  machine.memory().FillPattern(frame, kPageBaseSeed);
  machine.memory().WriteU64(frame, kPointerOffset, kPointerBase | (candidate << 12));
}

}  // namespace

AttackOutcome CainAttack::Run(EngineKind kind, std::uint64_t seed, int entropy_bits) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& attacker = env.attacker();
  Process& victim = env.victim();
  Machine& machine = attacker.machine();
  const std::size_t guesses = std::size_t{1} << entropy_bits;

  // The victim's randomized pointer value.
  Rng secret_rng(seed * 31 + 7);
  const std::uint64_t secret = secret_rng.NextBelow(guesses);
  const VirtAddr victim_page =
      victim.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  victim.SetupMapZero(VaddrToVpn(victim_page));
  CraftGuess(machine, victim.TranslateFrame(VaddrToVpn(victim_page)), secret);

  // One guess page per candidate value.
  const VirtAddr spray =
      attacker.AllocateRegion(guesses, PageType::kAnonymous, /*mergeable=*/true, false);
  for (std::uint64_t g = 0; g < guesses; ++g) {
    attacker.SetupMapZero(VaddrToVpn(spray) + g);
    CraftGuess(machine, attacker.TranslateFrame(VaddrToVpn(spray) + g), g);
  }

  env.WaitFusionRounds(6);

  // Probe every guess with a timed write; the slow outlier is the merged one.
  std::vector<double> times(guesses);
  for (std::uint64_t g = 0; g < guesses; ++g) {
    times[g] = static_cast<double>(attacker.TimedWrite(spray + g * kPageSize, 0xbad));
  }
  const auto max_it = std::max_element(times.begin(), times.end());
  const auto recovered = static_cast<std::uint64_t>(max_it - times.begin());
  // Decisive signal: the outlier clearly separates from the median.
  std::vector<double> sorted = times;
  std::nth_element(sorted.begin(), sorted.begin() + guesses / 2, sorted.end());
  const double median = sorted[guesses / 2];
  // Copy-on-write costs microseconds; cold-cache writes only a few hundred ns.
  const bool decisive = *max_it > median + 1500.0;

  AttackOutcome outcome;
  outcome.success = decisive && recovered == secret;
  outcome.confidence = outcome.success ? 1.0 : 0.0;
  std::ostringstream detail;
  detail << "secret=" << secret << " recovered=" << recovered
         << (decisive ? " (decisive outlier)" : " (no outlier: uniform timings)");
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
