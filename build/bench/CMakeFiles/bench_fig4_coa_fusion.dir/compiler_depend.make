# Empty compiler generated dependencies file for bench_fig4_coa_fusion.
# This may be replaced when dependencies are built.
