// VUsion: secure page fusion (paper §6-§8).
//
// Same Behaviour (SB):
//  - Share-xor-Fetch: every page considered for fusion loses ALL access (reserved
//    PTE bits) and is made uncacheable (cache-disable bit, stopping prefetch); any
//    subsequent access is a copy-on-access fault, merged or not.
//  - Fake Merging: pages with no duplicate get the exact same treatment - they
//    become refcount-1 entries of the single stable tree (no unstable tree exists,
//    closing that side channel), and the fault path executes identical instructions
//    for merged and fake-merged pages (deferred free + dummy queue entries).
//  - Each scan round, every (fake) merged page is re-backed by a fresh random frame
//    so page-coloring across rounds learns nothing (§7.1(iii)).
//
// Randomized Allocation (RA): every frame backing a (fake) merge or an unmerge is
// drawn from a randomized pool (32768 frames = 15 bits of entropy by default).
//
// Working-set estimation: only pages idle for a full scan round (idle page
// tracking) are considered, which is also why VUsion merges one round later than
// KSM (visible in the paper's Figure 10).
//
// THP: huge pages are split before being considered; with thp_aware (the paper's
// "VUsion THP") khugepaged may securely collapse active ranges after the engine
// (fake) unmerges every managed subpage (§8.2); without it, ranges containing
// managed pages are simply never collapsed.

#ifndef VUSION_SRC_FUSION_VUSION_ENGINE_H_
#define VUSION_SRC_FUSION_VUSION_ENGINE_H_

#include <unordered_map>
#include <vector>

#include "src/container/arena.h"
#include "src/container/rbtree.h"
#include "src/fusion/content.h"
#include "src/fusion/deferred_free.h"
#include "src/fusion/delta_scan.h"
#include "src/fusion/fusion_engine.h"
#include "src/phys/randomized_pool.h"

namespace vusion {

class VUsionEngine final : public FusionEngine {
 public:
  VUsionEngine(Machine& machine, const FusionConfig& config);
  ~VUsionEngine() override;

  [[nodiscard]] const char* name() const override {
    return config_.thp_aware ? "VUsion-THP" : "VUsion";
  }
  [[nodiscard]] std::uint64_t frames_saved() const override { return frames_saved_; }
  [[nodiscard]] std::size_t reserved_frames() const override { return pool_.pool_size(); }

  void Run() override;

  [[nodiscard]] const host::ScanTiming* scan_timing() const override { return &timing_; }

  void ExportMetrics(MetricsRegistry& registry) const override;

  bool HandleFault(Process& process, const PageFault& fault) override;
  bool OnUnmap(Process& process, Vpn vpn) override;
  bool AllowCollapse(Process& process, Vpn base) override;
  bool PrepareCollapse(Process& process, Vpn base) override;
  void OnUnregister(Process& process, Vpn start, std::uint64_t pages) override;
  void OnProcessDestroy(Process& process) override;
  bool Owns(const Process& process, Vpn vpn) const override { return IsManaged(process, vpn); }

  // --- Introspection (tests, benches) ---

  [[nodiscard]] bool IsManaged(const Process& process, Vpn vpn) const;
  // True if the page shares its backing frame with at least one other page.
  [[nodiscard]] bool IsShared(const Process& process, Vpn vpn) const;
  [[nodiscard]] std::size_t stable_size() const { return stable_.size(); }
  [[nodiscard]] bool ValidateTree() const { return stable_.ValidateInvariants(); }
  [[nodiscard]] const DeltaPassCache& delta_cache() const { return delta_; }

  // Machine-wide consistency check: stable tree, per-process page map, deferred
  // queue, entropy pool, and the kernel's refcounts/PTEs must all agree. See
  // src/chaos/invariant_auditor.h.
  void AuditInvariants(AuditContext& ctx) const override;

  [[nodiscard]] RandomizedPool& pool() { return pool_; }
  [[nodiscard]] DeferredFreeQueue& deferred_queue() { return deferred_; }
  [[nodiscard]] std::uint64_t round() const { return round_; }
  // Test/debug helper: visits (frame, sharer (process id, vpn) list) per entry.
  void ForEachStableEntry(
      const std::function<void(FrameId, const std::vector<std::pair<std::uint32_t, Vpn>>&)>&
          fn) const;

  // Savestates (DESIGN.md §13).
  [[nodiscard]] bool SupportsSnapshot() const override { return true; }
  void SaveState(snapshot::SnapshotWriter& w) const override;
  void RestoreState(snapshot::SnapshotReader& r) override;

 private:
  struct StableEntry;
  struct StableCompare {
    VUsionEngine* engine;
    int operator()(StableEntry* const& a, StableEntry* const& b) const;
  };
  using Tree = RbTree<StableEntry*, StableCompare>;

  struct Sharer {
    Process* process = nullptr;
    Vpn vpn = 0;
  };

  struct StableEntry {
    FrameId frame = kInvalidFrame;
    std::vector<Sharer> sharers;
    std::uint64_t relocated_round = 0;
    Tree::Node* node = nullptr;
  };

  struct PageInfo {
    bool managed = false;
    std::uint64_t candidate_round = 0;
    StableEntry* entry = nullptr;
  };
  // Tracked pages, indexed per process so VM teardown drops a process's
  // bookkeeping in O(its pages) instead of sweeping the whole map.
  using ProcessPages = std::unordered_map<Vpn, PageInfo>;

  static constexpr std::uint16_t kManagedFlags =
      kPtePresent | kPteReserved | kPteCacheDisable;

  // The one pass-cache entry kind VUsion uses: the page is (fake) merged and its
  // whole per-scan treatment is the conditional re-randomization. Unlike KSM and
  // WPF the entry is not epoch-guarded — RelocateEntry rewrites every sharer's
  // PTE each round, which would self-invalidate an epoch guard — so validity is
  // maintained purely by the unmerge/unmap/teardown hooks, and `ref` carries the
  // StableEntry to relocate.
  enum DeltaKind : std::uint8_t {
    kVuManaged = 1,
  };

  void ScanOne(Process& process, Vpn vpn);
  // Replays the memoized managed-page conclusion; false falls back to ScanOne's
  // full body.
  bool TryReplay(Process& process, Vpn vpn);
  // The wake quantum's scan loop: serial reference (scan_threads<=1) or the
  // two-phase parallel pipeline. Both produce bit-identical simulated results.
  void ScanQuantumSerial();
  void ScanQuantumPipelined();
  // Invalidates batch items whose process a phase hook tore down mid-scan.
  void PruneDeadItems();
  // Removes all access and (fake) merges the page (the SB-enforcing action).
  void Act(Process& process, Vpn vpn, Pte* pte);
  // Moves an entry's backing to a fresh random frame (per-round re-randomization).
  void RelocateEntry(StableEntry* entry);
  // Copy-on-access body, shared by the fault handler and PrepareCollapse. False
  // means the backing allocation failed transiently and nothing was changed: the
  // page stays (fake) merged and the caller must not drop its bookkeeping.
  [[nodiscard]] bool UnmergeTo(Process& process, Vpn vpn, PageInfo& info,
                               std::uint16_t new_flags);
  void DetachSharer(StableEntry* entry, const Process& process, Vpn vpn);
  FrameId AllocBacking();

  ChargedContent content_;
  ScanCursor cursor_;
  host::ParallelScanPipeline pipeline_;
  host::ScanTiming timing_;
  std::vector<host::ScanItem> batch_;
  // Node and StableEntry storage for the stable tree; declared before it so it
  // outlives the tree's destructor.
  Arena arena_;
  Tree stable_;
  RandomizedPool pool_;
  DeferredFreeQueue deferred_;
  std::unordered_map<std::uint32_t, ProcessPages> pages_;
  std::uint64_t round_ = 1;
  std::uint64_t frames_saved_ = 0;
  DeltaPassCache delta_;
  bool delta_mode_ = false;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_VUSION_ENGINE_H_
