// Unit tests for the telemetry registry: counter/gauge/histogram semantics,
// stable handles, snapshot deltas, JSON/table rendering, and the disabled mode
// that makes recording a no-op.

#include <gtest/gtest.h>

#include <string>

#include "src/sim/metrics.h"

namespace vusion {
namespace {

TEST(CounterTest, AddAndSet) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("fusion.merges");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  c.Set(42);  // bridged counters mirror a component's own total
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, HandlesAreStableAndDedupedByNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("fault.count", {{"kind", "cow"}});
  Counter& b = registry.GetCounter("fault.count", {{"kind", "cow"}});
  Counter& other = registry.GetCounter("fault.count", {{"kind", "policy"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(other.value(), 0u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(CounterTest, HandleSurvivesLaterRegistrations) {
  MetricsRegistry registry;
  Counter& first = registry.GetCounter("m0");
  // Force enough registrations that a vector-backed store would reallocate.
  for (int i = 1; i < 200; ++i) {
    registry.GetCounter("m" + std::to_string(i));
  }
  first.Add(7);
  EXPECT_EQ(registry.GetCounter("m0").value(), 7u);
}

TEST(GaugeTest, SetOverwrites) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("alloc.free_frames");
  g.Set(128.0);
  g.Set(64.0);
  EXPECT_DOUBLE_EQ(g.value(), 64.0);
}

TEST(HistogramTest, BucketPlacementAndAggregates) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.GetHistogram("lat", {}, {10.0, 100.0});
  ASSERT_EQ(h.buckets().size(), 3u);  // two bounds + overflow
  h.Record(5.0);    // <= 10
  h.Record(10.0);   // boundary lands in the first bucket (x > bound advances)
  h.Record(50.0);   // <= 100
  h.Record(500.0);  // overflow
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 565.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
}

TEST(HistogramTest, BoundsFixedByFirstRegistration) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.GetHistogram("lat", {}, {1.0, 2.0});
  HistogramMetric& again = registry.GetHistogram("lat", {}, {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(RegistryTest, DisabledModeDropsRecordings) {
  MetricsRegistry registry;
  registry.set_enabled(false);
  Counter& c = registry.GetCounter("c");
  Gauge& g = registry.GetGauge("g");
  HistogramMetric& h = registry.GetHistogram("h", {}, {10.0});
  c.Add(5);
  c.Set(9);
  g.Set(3.0);
  h.Record(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // Re-enabling resumes recording on the same handles.
  registry.set_enabled(true);
  c.Add(2);
  g.Set(1.5);
  h.Record(1.0);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(SnapshotTest, EntriesInRegistrationOrderWithKeys) {
  MetricsRegistry registry;
  registry.GetCounter("b.count").Add(1);
  registry.GetGauge("a.level", {{"pool", "main"}}).Set(2.0);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.entries.size(), 2u);
  EXPECT_EQ(snap.entries[0].Key(), "b.count");
  EXPECT_EQ(snap.entries[1].Key(), "a.level{pool=main}");
  EXPECT_EQ(snap.entries[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap.entries[1].kind, MetricKind::kGauge);
}

TEST(SnapshotTest, LookupHelpers) {
  MetricsRegistry registry;
  registry.GetCounter("faults", {{"kind", "cow"}}).Add(11);
  registry.GetGauge("free").Set(7.5);
  registry.GetHistogram("lat", {}, {10.0}).Record(3.0);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("faults", {{"kind", "cow"}}), 11u);
  EXPECT_EQ(snap.CounterValue("faults"), 0u);  // label mismatch -> absent -> 0
  EXPECT_DOUBLE_EQ(snap.GaugeValue("free"), 7.5);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("missing"), 0.0);
  EXPECT_EQ(snap.CounterValue("lat"), 1u);  // histogram count via CounterValue
  EXPECT_EQ(snap.Find("nope"), nullptr);
}

TEST(SnapshotTest, SinceSubtractsCountersAndKeepsLaterGauges) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("c");
  Gauge& g = registry.GetGauge("g");
  HistogramMetric& h = registry.GetHistogram("h", {}, {10.0});
  c.Add(5);
  g.Set(1.0);
  h.Record(2.0);
  const MetricsSnapshot before = registry.Snapshot();
  c.Add(3);
  g.Set(9.0);
  h.Record(20.0);
  h.Record(4.0);
  const MetricsSnapshot delta = registry.Snapshot().Since(before);
  EXPECT_EQ(delta.CounterValue("c"), 3u);
  EXPECT_DOUBLE_EQ(delta.GaugeValue("g"), 9.0);
  const MetricsSnapshot::Entry* hist = delta.Find("h");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  ASSERT_EQ(hist->buckets.size(), 2u);
  EXPECT_EQ(hist->buckets[0], 1u);  // the 4.0
  EXPECT_EQ(hist->buckets[1], 1u);  // the 20.0
}

TEST(SnapshotTest, SinceHandlesAsymmetricEntrySets) {
  MetricsRegistry before_registry;
  before_registry.GetCounter("old").Add(2);
  const MetricsSnapshot base = before_registry.Snapshot();

  MetricsRegistry after_registry;
  after_registry.GetCounter("fresh").Add(4);
  const MetricsSnapshot delta = after_registry.Snapshot().Since(base);
  // Entries missing from base count from zero; entries only in base are dropped.
  ASSERT_EQ(delta.entries.size(), 1u);
  EXPECT_EQ(delta.CounterValue("fresh"), 4u);
  EXPECT_EQ(delta.Find("old"), nullptr);
}

TEST(SnapshotTest, JsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("fusion.merges", {{"engine", "vusion"}}).Add(3);
  registry.GetHistogram("lat", {}, {10.0}).Record(2.0);
  const std::string dump = registry.ToJson().Dump(0);
  EXPECT_NE(dump.find("\"name\": \"fusion.merges\""), std::string::npos);
  EXPECT_NE(dump.find("\"engine\": \"vusion\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_NE(dump.find("\"buckets\""), std::string::npos);
}

TEST(SnapshotTest, RenderTableSkipsZeroEntries) {
  MetricsRegistry registry;
  registry.GetCounter("hot").Add(5);
  registry.GetCounter("cold");
  const std::string table = registry.RenderTable();
  EXPECT_NE(table.find("hot"), std::string::npos);
  EXPECT_EQ(table.find("cold"), std::string::npos);
}

}  // namespace
}  // namespace vusion
