#include "src/mmu/vma.h"

#include <algorithm>
#include <cassert>

namespace vusion {

const char* PageTypeName(PageType type) {
  switch (type) {
    case PageType::kAnonymous:
      return "anonymous";
    case PageType::kPageCache:
      return "page cache";
    case PageType::kGuestBuddy:
      return "buddy";
    case PageType::kGuestKernel:
      return "kernel";
  }
  return "?";
}

void VmaList::Add(const VmArea& vma) {
  const auto pos = std::lower_bound(
      areas_.begin(), areas_.end(), vma,
      [](const VmArea& a, const VmArea& b) { return a.start < b.start; });
  assert((pos == areas_.end() || vma.end() <= pos->start) &&
         (pos == areas_.begin() || std::prev(pos)->end() <= vma.start) &&
         "overlapping VMA");
  areas_.insert(pos, vma);
}

const VmArea* VmaList::FindContaining(Vpn vpn) const {
  return const_cast<VmaList*>(this)->FindContaining(vpn);
}

VmArea* VmaList::FindContaining(Vpn vpn) {
  auto pos = std::upper_bound(areas_.begin(), areas_.end(), vpn,
                              [](Vpn v, const VmArea& a) { return v < a.start; });
  if (pos == areas_.begin()) {
    return nullptr;
  }
  --pos;
  return pos->Contains(vpn) ? &*pos : nullptr;
}

std::uint64_t VmaList::total_pages() const {
  std::uint64_t total = 0;
  for (const VmArea& a : areas_) {
    total += a.pages;
  }
  return total;
}

std::uint64_t VmaList::mergeable_pages() const {
  std::uint64_t total = 0;
  for (const VmArea& a : areas_) {
    if (a.mergeable) {
      total += a.pages;
    }
  }
  return total;
}

}  // namespace vusion
