// Host wall-clock helper shared by the scan pipeline, the fleet quantum-cost
// recorder, and the benches. This is HOST time (std::chrono::steady_clock), not
// the simulated VirtualClock: it measures the simulator's own cost and must
// never feed back into simulated state.

#ifndef VUSION_SRC_HOST_CLOCK_H_
#define VUSION_SRC_HOST_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace vusion::host {

inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace vusion::host

#endif  // VUSION_SRC_HOST_CLOCK_H_
