// Ablation of §7.1(iii): without per-scan re-randomization, a (fake) merged page
// keeps its backing frame across scan rounds, so an attacker page-coloring the
// copy-on-access source across multiple scans can infer a merge with high
// probability. With re-randomization, the backing frame changes every round.

#include <cstdio>

#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

double MeasureStableBackingFraction(bool rerandomize) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  Machine machine(machine_config);
  FusionConfig fusion;
  fusion.wake_period = 1 * kMillisecond;
  fusion.pages_per_wake = 64;
  fusion.pool_frames = 1024;
  fusion.rerandomize_each_scan = rerandomize;
  ScopedEngine engine(EngineKind::kVUsion, machine, fusion);

  Process& p = machine.CreateProcess();
  const std::size_t pages = 64;
  const VirtAddr base = p.AllocateRegion(pages, PageType::kAnonymous, true, false);
  Rng rng(3);
  for (std::size_t i = 0; i < pages; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, rng.Next());
  }
  // Let everything get (fake) merged.
  for (int i = 0; i < 16; ++i) {
    engine->Run();
  }
  // Observe backing frames across 8 further rounds.
  std::size_t stable = 0;
  std::size_t observations = 0;
  std::vector<FrameId> last(pages, kInvalidFrame);
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 4; ++i) {
      engine->Run();
    }
    for (std::size_t i = 0; i < pages; ++i) {
      const FrameId frame = p.TranslateFrame(VaddrToVpn(base) + i);
      if (last[i] != kInvalidFrame && frame != kInvalidFrame) {
        ++observations;
        stable += (frame == last[i]) ? 1 : 0;
      }
      last[i] = frame;
    }
  }
  return observations > 0 ? static_cast<double>(stable) / observations : 0.0;
}

void Run() {
  bench::Reporter reporter("ablation_rerandomize");
  reporter.Header("Ablation: per-scan backing re-randomization (§7.1(iii))");
  const double with = MeasureStableBackingFraction(true);
  const double without = MeasureStableBackingFraction(false);
  std::printf("re-randomization ON : backing frame unchanged across rounds: %.0f%%\n",
              100.0 * with);
  std::printf("re-randomization OFF: backing frame unchanged across rounds: %.0f%%\n",
              100.0 * without);
  reporter.AddRow("stable_backing", {{"rerandomize", true}, {"stable_fraction", with}});
  reporter.AddRow("stable_backing", {{"rerandomize", false}, {"stable_fraction", without}});
  std::printf("\nOFF means an attacker coloring the CoA source across scans learns the\n"
              "frame (merge inference); ON gives a fresh random frame every round.\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
