// Abstract base for the three page-fusion engines (KSM, WPF, VUsion). An engine is
// both a kernel daemon (the scanner thread) and a sharing policy (fault handling,
// unmap bookkeeping, khugepaged gating).

#ifndef VUSION_SRC_FUSION_FUSION_ENGINE_H_
#define VUSION_SRC_FUSION_FUSION_ENGINE_H_

#include <functional>

#include "src/chaos/audit.h"
#include "src/fusion/fusion_stats.h"
#include "src/host/parallel_scan.h"
#include "src/kernel/daemon.h"
#include "src/kernel/machine.h"
#include "src/kernel/sharing_policy.h"

namespace vusion {

// Boundaries inside one scan wake-up at which the outside world (chaos
// campaigns, tests) may intervene — e.g. tear down a VM mid-scan. Engines
// announce each boundary through the phase hook; after kBatchCollected and
// kHashed the engine re-validates its batch against the live process table, so
// a hook destroying a process is safe at every announced point.
enum class ScanPhase : std::uint8_t {
  kQuantumStart,    // wake-up began, nothing collected yet
  kBatchCollected,  // candidate batch chosen, before hashing
  kHashed,          // content hashed, before any merge decision
  kQuantumEnd,      // wake-up finished, state quiescent
};

const char* ScanPhaseName(ScanPhase phase);

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class FusionEngine : public Daemon, public SharingPolicy {
 public:
  // Construction is pure: the config is taken as given, with no environment
  // reads. Callers wanting env overrides (VUSION_SCAN_THREADS) go through
  // FusionConfig::ApplyEnvOverrides — MakeEngine and Scenario apply it for you.
  FusionEngine(Machine& machine, const FusionConfig& config)
      : machine_(&machine), config_(config) {}
  ~FusionEngine() override = default;

  [[nodiscard]] virtual const char* name() const = 0;

  // Physical frames currently saved by sharing: sum over shared copies of
  // (sharers - 1). The memory-consumption figures plot allocated - saved.
  [[nodiscard]] virtual std::uint64_t frames_saved() const = 0;

  // Frames the engine holds in reserve (VUsion's entropy pool); subtracted when
  // reporting guest memory consumption.
  [[nodiscard]] virtual std::size_t reserved_frames() const { return 0; }

  // Registers this engine as the machine's sharing policy and daemon.
  void Install() {
    machine_->SetSharingPolicy(this);
    machine_->AddDaemon(this);
  }
  void Uninstall() {
    machine_->SetSharingPolicy(nullptr);
    machine_->RemoveDaemon(this);
  }

  // Breaks every (fake) merge the engine holds by unregistering all mergeable
  // ranges, leaving plain private pages behind. This is the safe hand-off point
  // for replacing one fusion system with another on a live machine (e.g. deploying
  // VUsion where KSM was running).
  void TearDown();

  [[nodiscard]] SimTime next_run() const override { return next_run_; }

  // --- sysfs-style runtime controls (/sys/kernel/mm/ksm/{run,sleep_millisecs,
  // pages_to_scan} equivalents) ---

  // Adjusts the scan rate at runtime.
  void SetScanRate(SimTime wake_period, std::size_t pages_per_wake) {
    config_.wake_period = wake_period;
    config_.pages_per_wake = pages_per_wake;
  }
  // run=0: the scanner stops; existing merges stay in place and fault normally.
  void Pause() { paused_ = true; }
  void Resume() { paused_ = false; }
  [[nodiscard]] bool paused() const { return paused_; }

  [[nodiscard]] FusionStats& stats() { return stats_; }
  [[nodiscard]] const FusionStats& stats() const { return stats_; }
  [[nodiscard]] const FusionConfig& config() const { return config_; }
  [[nodiscard]] Machine& machine() { return *machine_; }

  // Host wall-clock accounting of the engine's scan sections (null for engines
  // without a scan loop). Benches use it for scan-only throughput numbers.
  [[nodiscard]] virtual const host::ScanTiming* scan_timing() const { return nullptr; }

  // Bridges FusionStats (and any engine-specific state) into a metrics registry,
  // usually the machine's. Overrides must call the base first.
  virtual void ExportMetrics(MetricsRegistry& registry) const;

  // Observation hook fired at every ScanPhase boundary of every wake-up. The
  // callback may mutate the machine (destroy processes, unmap pages); the
  // engine re-validates afterwards. Null (the default) costs nothing.
  using PhaseHook = std::function<void(FusionEngine&, ScanPhase)>;
  void SetPhaseHook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  // Engine-specific invariants for the machine-wide auditor: every internal
  // structure (stable tree, rmap, sharer lists, pool, deferred queue) must agree
  // with the page tables and frame refcounts. Engines claim their reserve
  // frames via ctx.OwnFrame. Default: no engine-private state to check.
  virtual void AuditInvariants(AuditContext& ctx) const { (void)ctx; }

  // --- Savestates (DESIGN.md §13) ---
  //
  // Engines that can serialize their full deterministic state override all
  // three. RestoreState must be called on a freshly constructed engine of the
  // same kind and config, installed on the target Machine, after the Machine's
  // own state has been restored. The base defaults fail closed with a
  // RestoreError so an unsupported engine (MemoryCombining) can never produce
  // a silently empty snapshot.
  [[nodiscard]] virtual bool SupportsSnapshot() const { return false; }
  virtual void SaveState(snapshot::SnapshotWriter& w) const;
  virtual void RestoreState(snapshot::SnapshotReader& r);

 protected:
  // FusionStats, the daemon schedule, and the pause flag — shared by every
  // engine serializer (called first by each override).
  void SaveCommon(snapshot::SnapshotWriter& w) const;
  void RestoreCommon(snapshot::SnapshotReader& r);

  void NotifyPhase(ScanPhase phase) {
    if (phase_hook_) {
      // Hooks are arbitrary user code (tests tear processes down, write pages,
      // time accesses mid-scan): settle any batched charges and run the hook
      // with batching paused so everything it triggers — faults, timed reads —
      // sees the exact unbatched clock.
      LatencyModel& lm = machine_->latency();
      const bool was_batching = lm.batching_enabled();
      lm.set_batching_enabled(false);
      phase_hook_(*this, phase);
      lm.set_batching_enabled(was_batching);
    }
  }

  // The machine's fault injector, or null when chaos is off. Engines consult
  // this at their injection sites (scan interruption, merge abort, stale
  // checksum) and re-sync their private allocators' injector pointers.
  [[nodiscard]] FaultInjector* chaos() { return machine_->chaos(); }
  // True when the engine should skip its scan work this wake-up (and reschedule).
  bool SkipWake() {
    if (paused_) {
      next_run_ = machine_->clock().now() + config_.wake_period;
      return true;
    }
    return false;
  }

  Machine* machine_;
  FusionConfig config_;
  FusionStats stats_;
  SimTime next_run_ = 0;
  bool paused_ = false;
  PhaseHook phase_hook_;
};

}  // namespace vusion

#endif  // VUSION_SRC_FUSION_FUSION_ENGINE_H_
