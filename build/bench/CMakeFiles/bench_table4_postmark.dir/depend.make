# Empty dependencies file for bench_table4_postmark.
# This may be replaced when dependencies are built.
