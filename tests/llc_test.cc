#include "src/cache/llc.h"

#include <gtest/gtest.h>

#include "src/cache/eviction_set.h"

namespace vusion {
namespace {

CacheConfig SmallCache() {
  CacheConfig config;
  config.sets = 256;
  config.ways = 4;
  return config;
}

TEST(LlcTest, GeometryDerivation) {
  CacheConfig config;  // paper default
  EXPECT_EQ(config.size_bytes(), 8u * 1024 * 1024);
  EXPECT_EQ(config.page_colors(), 128u);
  Llc llc(config);
  EXPECT_EQ(llc.ColorOf(0), 0u);
  EXPECT_EQ(llc.ColorOf(128), 0u);
  EXPECT_EQ(llc.ColorOf(129), 1u);
}

TEST(LlcTest, MissThenHit) {
  Llc llc(SmallCache());
  EXPECT_FALSE(llc.Access(0x1000));
  EXPECT_TRUE(llc.Access(0x1000));
  EXPECT_TRUE(llc.Access(0x1038));  // same 64B line
  EXPECT_FALSE(llc.Access(0x1040));  // next line
  EXPECT_EQ(llc.hits(), 2u);
  EXPECT_EQ(llc.misses(), 2u);
}

TEST(LlcTest, LruEvictionWithinSet) {
  const CacheConfig config = SmallCache();
  Llc llc(config);
  const PhysAddr stride = config.sets * config.line_size;  // same set, different tags
  for (std::size_t i = 0; i < config.ways; ++i) {
    EXPECT_FALSE(llc.Access(i * stride));
  }
  // All ways hit.
  for (std::size_t i = 0; i < config.ways; ++i) {
    EXPECT_TRUE(llc.Access(i * stride));
  }
  // A fifth tag evicts the least recently used (tag 0).
  EXPECT_FALSE(llc.Access(config.ways * stride));
  EXPECT_FALSE(llc.Contains(0));
  EXPECT_TRUE(llc.Contains(1 * stride));
}

TEST(LlcTest, FlushRemovesLine) {
  Llc llc(SmallCache());
  llc.Access(0x2000);
  EXPECT_TRUE(llc.Contains(0x2000));
  llc.Flush(0x2000);
  EXPECT_FALSE(llc.Contains(0x2000));
  EXPECT_FALSE(llc.Access(0x2000));  // miss again
}

TEST(LlcTest, FlushFrameRemovesAllLines) {
  Llc llc(SmallCache());
  const FrameId frame = 7;
  for (std::size_t off = 0; off < kPageSize; off += 64) {
    llc.Access(static_cast<PhysAddr>(frame) * kPageSize + off);
  }
  llc.FlushFrame(frame);
  for (std::size_t off = 0; off < kPageSize; off += 64) {
    EXPECT_FALSE(llc.Contains(static_cast<PhysAddr>(frame) * kPageSize + off));
  }
}

TEST(EvictionSetTest, GroupsByColorAndDetectsCompleteness) {
  CacheConfig config;
  std::vector<FrameId> frames;
  // ways frames for every color: frames 0..(colors*ways-1) cover colors cyclically.
  for (FrameId f = 0; f < config.page_colors() * config.ways; ++f) {
    frames.push_back(f);
  }
  ColorEvictionSets sets(frames, config);
  EXPECT_TRUE(sets.complete());
  EXPECT_EQ(sets.colors(), config.page_colors());
  EXPECT_EQ(sets.frames_for(5).size(), config.ways);
  for (const FrameId f : sets.frames_for(5)) {
    EXPECT_EQ(f % config.page_colors(), 5u);
  }
}

TEST(EvictionSetTest, IncompleteWhenColorsMissing) {
  CacheConfig config;
  std::vector<FrameId> frames{0, 1, 2};
  ColorEvictionSets sets(frames, config);
  EXPECT_FALSE(sets.complete());
}

TEST(EvictionSetTest, TraversePrimesTheColor) {
  CacheConfig config;
  config.sets = 512;  // 8 colors
  config.ways = 4;
  Llc llc(config);
  std::vector<FrameId> frames;
  for (FrameId f = 0; f < config.page_colors() * config.ways; ++f) {
    frames.push_back(f);
  }
  ColorEvictionSets sets(frames, config);
  ASSERT_TRUE(sets.complete());
  // A victim line of color 3, chosen outside the eviction set's frames.
  const FrameId victim_frame = 3 + 8 * config.ways;
  const PhysAddr victim = static_cast<PhysAddr>(victim_frame) * kPageSize;
  llc.Access(victim);
  ASSERT_TRUE(llc.Contains(victim));
  // Priming color 3 walks ways*lines addresses of that color and evicts the victim.
  sets.Traverse(3, [&](FrameId frame, std::size_t offset) {
    llc.Access(static_cast<PhysAddr>(frame) * kPageSize + offset);
    return SimTime{0};
  });
  EXPECT_FALSE(llc.Contains(victim));
  // Priming a different color leaves lines of color 3 alone.
  llc.Access(victim);
  sets.Traverse(5, [&](FrameId frame, std::size_t offset) {
    llc.Access(static_cast<PhysAddr>(frame) * kPageSize + offset);
    return SimTime{0};
  });
  EXPECT_TRUE(llc.Contains(victim));
}

}  // namespace
}  // namespace vusion
