// Allocator fault-path regressions: an injected (transient) allocation failure
// must leave the allocator exactly as if the call never happened — no
// partially-updated free lists, no frames lost, no double-resident pool slots.
// Exercises both the explicit-schedule injector (pinpoint failures) and
// probabilistic churn.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "src/chaos/fault_injector.h"
#include "src/phys/buddy_allocator.h"
#include "src/phys/physical_memory.h"
#include "src/phys/randomized_pool.h"
#include "src/sim/rng.h"

namespace vusion {
namespace {

TEST(AllocatorFaultTest, InjectedBuddyFailureLeavesStateUntouched) {
  PhysicalMemory memory(1u << 10);
  BuddyAllocator buddy(memory);
  ChaosConfig config;
  // Fire exactly visits 0 and 2 of the buddy-alloc site.
  FaultInjector injector(config, {{FaultSite::kBuddyAlloc, 0},
                                  {FaultSite::kBuddyAlloc, 2}});
  buddy.set_fault_injector(&injector);

  const std::size_t free_before = buddy.free_count();
  EXPECT_EQ(buddy.Allocate(), kInvalidFrame);  // visit 0: injected
  EXPECT_EQ(buddy.free_count(), free_before);  // failed call touched nothing
  EXPECT_TRUE(buddy.ValidateInvariants());
  EXPECT_EQ(buddy.failed_alloc_count(), 1u);
  // The failure is recognizably transient: memory is demonstrably not exhausted.
  EXPECT_GT(buddy.free_count(), 0u);

  const FrameId frame = buddy.Allocate();  // visit 1: succeeds normally
  ASSERT_NE(frame, kInvalidFrame);
  EXPECT_TRUE(buddy.ValidateInvariants());

  EXPECT_EQ(buddy.AllocateOrder(3), kInvalidFrame);  // visit 2: injected
  EXPECT_TRUE(buddy.ValidateInvariants());
  EXPECT_EQ(buddy.free_count(), free_before - 1);

  buddy.Free(frame);
  EXPECT_EQ(buddy.free_count(), free_before);
  EXPECT_TRUE(buddy.ValidateInvariants());
  EXPECT_EQ(injector.visits(FaultSite::kBuddyAlloc), 3u);
  EXPECT_EQ(injector.injected(FaultSite::kBuddyAlloc), 2u);
}

TEST(AllocatorFaultTest, BuddyChurnUnderProbabilisticInjectionStaysConsistent) {
  constexpr FrameId kFrames = 1u << 12;
  PhysicalMemory memory(kFrames);
  BuddyAllocator buddy(memory);
  ChaosConfig config;
  config.seed = 42;
  config.SetRate(FaultSite::kBuddyAlloc, 0.25);
  FaultInjector injector(config);
  buddy.set_fault_injector(&injector);

  Rng rng(7);
  std::vector<std::pair<FrameId, std::size_t>> blocks;  // (start, order)
  for (int step = 0; step < 4000; ++step) {
    if (blocks.empty() || rng.NextBool(0.6)) {
      const std::size_t order = rng.NextBelow(4);
      const FrameId start = buddy.AllocateOrder(order);
      if (start != kInvalidFrame) {
        blocks.emplace_back(start, order);
      }
    } else {
      const std::size_t idx = rng.NextBelow(blocks.size());
      buddy.FreeOrder(blocks[idx].first, blocks[idx].second);
      blocks[idx] = blocks.back();
      blocks.pop_back();
    }
    if (step % 256 == 0) {
      ASSERT_TRUE(buddy.ValidateInvariants()) << "step " << step;
    }
  }
  EXPECT_GT(injector.injected(FaultSite::kBuddyAlloc), 0u);
  EXPECT_TRUE(buddy.ValidateInvariants());

  // Returning every surviving block reconstitutes all of memory: an injected
  // failure never leaked a frame or half-split a block.
  for (const auto& [start, order] : blocks) {
    buddy.FreeOrder(start, order);
  }
  EXPECT_TRUE(buddy.ValidateInvariants());
  EXPECT_EQ(buddy.free_count(), static_cast<std::size_t>(kFrames));
}

TEST(AllocatorFaultTest, PoolDrawFailureIsTransientAndKeepsAccounting) {
  PhysicalMemory memory(1u << 10);
  BuddyAllocator buddy(memory);
  RandomizedPool pool(buddy, 64, Rng(3));
  ASSERT_EQ(pool.pool_size(), 64u);
  ChaosConfig config;
  FaultInjector injector(config, {{FaultSite::kPoolAlloc, 0}});
  pool.set_fault_injector(&injector);

  EXPECT_EQ(pool.Allocate(), kInvalidFrame);  // injected: caller must degrade
  EXPECT_EQ(pool.pool_size(), 64u);           // reserve untouched by the failure
  EXPECT_EQ(injector.degradations(), 1u);

  const FrameId drawn = pool.Allocate();  // visit 1: a normal randomized draw
  ASSERT_NE(drawn, kInvalidFrame);
  EXPECT_EQ(pool.pool_size(), 64u);  // slot refilled from the buddy
  const std::vector<FrameId>& slots = pool.slots();
  EXPECT_EQ(std::count(slots.begin(), slots.end(), drawn), 0)
      << "drawn frame still resident in the pool";
  const std::set<FrameId> distinct(slots.begin(), slots.end());
  EXPECT_EQ(distinct.size(), slots.size()) << "duplicate pool slot";
  pool.Free(drawn);
  EXPECT_TRUE(buddy.ValidateInvariants());
}

TEST(AllocatorFaultTest, PoolShrinksWhenBackingRefillFails) {
  PhysicalMemory memory(256);
  BuddyAllocator buddy(memory);
  RandomizedPool pool(buddy, 32, Rng(5));
  ASSERT_EQ(pool.pool_size(), 32u);
  ChaosConfig config;
  // Injector on the BACKING allocator: the draw itself succeeds but the slot
  // refill fails, so the pool must shed entropy instead of corrupting a slot.
  FaultInjector injector(config, {{FaultSite::kBuddyAlloc, 0},
                                  {FaultSite::kBuddyAlloc, 1}});
  buddy.set_fault_injector(&injector);

  const FrameId first = pool.Allocate();
  ASSERT_NE(first, kInvalidFrame);
  EXPECT_EQ(pool.pool_size(), 31u);
  const FrameId second = pool.Allocate();
  ASSERT_NE(second, kInvalidFrame);
  EXPECT_EQ(pool.pool_size(), 30u);

  const std::vector<FrameId>& slots = pool.slots();
  EXPECT_EQ(std::count(slots.begin(), slots.end(), first), 0);
  EXPECT_EQ(std::count(slots.begin(), slots.end(), second), 0);
  const std::set<FrameId> distinct(slots.begin(), slots.end());
  EXPECT_EQ(distinct.size(), slots.size());
  pool.Free(first);
  pool.Free(second);
  EXPECT_TRUE(buddy.ValidateInvariants());
}

TEST(AllocatorFaultTest, ScopedSuppressExemptsMustNotFailPaths) {
  ChaosConfig config;
  config.SetRate(FaultSite::kBuddyAlloc, 1.0);
  FaultInjector injector(config);
  {
    FaultInjector::ScopedSuppress suppress;
    EXPECT_FALSE(injector.ShouldFail(FaultSite::kBuddyAlloc));
    // Suppressed queries consume no visit ordinal, so they cannot shift the
    // schedule of the surrounding run.
    EXPECT_EQ(injector.visits(FaultSite::kBuddyAlloc), 0u);
  }
  EXPECT_TRUE(injector.ShouldFail(FaultSite::kBuddyAlloc));  // rate 1.0
  EXPECT_EQ(injector.visits(FaultSite::kBuddyAlloc), 1u);
  EXPECT_EQ(injector.injected_schedule().size(), 1u);
  EXPECT_EQ(injector.injected_schedule().front(),
            (FaultRecord{FaultSite::kBuddyAlloc, 0}));
}

}  // namespace
}  // namespace vusion
