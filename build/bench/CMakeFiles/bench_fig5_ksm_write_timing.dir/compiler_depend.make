# Empty compiler generated dependencies file for bench_fig5_ksm_write_timing.
# This may be replaced when dependencies are built.
