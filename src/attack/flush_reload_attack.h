// New merge-based disclosure attack (paper §5.1 "Page sharing changes"): a 1-bit
// FLUSH+RELOAD over the LLC. The attacker flushes her guess page, makes the victim
// touch its copy, and reloads: a fast reload means both map the same physical frame,
// i.e. the pages were merged - detected purely by reading. VUsion defeats it
// because (fake) merged pages have no access permissions and are uncacheable, so
// nothing the victim does can warm the attacker's reload.

#ifndef VUSION_SRC_ATTACK_FLUSH_RELOAD_ATTACK_H_
#define VUSION_SRC_ATTACK_FLUSH_RELOAD_ATTACK_H_

#include "src/attack/timing_probe.h"

namespace vusion {

class FlushReloadAttack {
 public:
  static AttackOutcome Run(EngineKind kind, std::uint64_t seed);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_FLUSH_RELOAD_ATTACK_H_
