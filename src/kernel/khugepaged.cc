#include "src/kernel/khugepaged.h"

#include <utility>
#include <vector>

#include "src/kernel/process.h"

namespace vusion {

Khugepaged::Khugepaged(Machine& machine, const KhugepagedConfig& config)
    : machine_(&machine), config_(config), current_n_(config.min_active_subpages) {}

void Khugepaged::AdaptThreshold() {
  if (!config_.adaptive_n) {
    current_n_ = config_.min_active_subpages;
    return;
  }
  const std::size_t free = machine_->buddy().free_count();
  if (free >= config_.pressure_high_frames) {
    current_n_ = config_.n_min;
  } else if (free <= config_.pressure_low_frames) {
    current_n_ = config_.n_max;
  } else {
    // Linear interpolation between the watermarks.
    const double span = static_cast<double>(config_.pressure_high_frames -
                                            config_.pressure_low_frames);
    const double frac =
        static_cast<double>(config_.pressure_high_frames - free) / span;
    current_n_ = config_.n_min +
                 static_cast<std::size_t>(frac * static_cast<double>(config_.n_max -
                                                                     config_.n_min));
  }
}

void Khugepaged::Run() {
  AdaptThreshold();
  // Flatten the 512-aligned candidate ranges of all THP-eligible VMAs and resume
  // from the cursor.
  std::vector<std::pair<Process*, Vpn>> ranges;
  for (const auto& process : machine_->processes()) {
    if (process == nullptr) {
      continue;
    }
    for (const VmArea& vma : process->address_space().vmas().areas()) {
      if (!vma.thp_eligible) {
        continue;
      }
      Vpn base = (vma.start + kPagesPerHugePage - 1) & ~(kPagesPerHugePage - 1);
      for (; base + kPagesPerHugePage <= vma.end(); base += kPagesPerHugePage) {
        ranges.emplace_back(process.get(), base);
      }
    }
  }
  if (!ranges.empty()) {
    for (std::size_t i = 0; i < config_.ranges_per_wake; ++i) {
      auto& [process, base] = ranges[range_cursor_ % ranges.size()];
      ++range_cursor_;
      TryCollapse(*process, base);
    }
  }
  next_run_ = machine_->clock().now() + config_.period;
}

bool Khugepaged::TryCollapse(Process& process, Vpn base) {
  AddressSpace& as = process.address_space();
  if (as.IsHuge(base)) {
    return false;
  }
  // Every subpage must be mapped; count activity.
  std::size_t active = 0;
  for (Vpn vpn = base; vpn < base + kPagesPerHugePage; ++vpn) {
    const Pte* pte = as.GetPte(vpn);
    if (pte == nullptr || pte->flags == 0) {
      return false;
    }
    if (pte->accessed()) {
      ++active;
    }
  }
  if (active < current_n_) {
    return false;
  }
  ++attempts_;
  SharingPolicy* policy = machine_->sharing_policy();
  if (policy != nullptr) {
    if (!policy->AllowCollapse(process, base)) {
      return false;
    }
    if (!policy->PrepareCollapse(process, base)) {
      return false;  // unmerge incomplete (e.g. transient OOM): abandon collapse
    }
  }
  // Re-verify after preparation: all subpages must now be plain, exclusive pages.
  for (Vpn vpn = base; vpn < base + kPagesPerHugePage; ++vpn) {
    const Pte* pte = as.GetPte(vpn);
    if (pte == nullptr || !pte->present() || pte->reserved_trap() || pte->cow()) {
      return false;
    }
  }
  const FrameId block = machine_->buddy().AllocateOrder(kHugePageOrder);
  if (block == kInvalidFrame) {
    return false;  // fragmentation: no contiguous 2 MB block
  }
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().huge_collapse);
  PhysicalMemory& mem = machine_->memory();
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    const Vpn vpn = base + i;
    const Pte* pte = as.GetPte(vpn);
    const FrameId old = pte->frame;
    mem.CopyFrame(block + static_cast<FrameId>(i), old);
    machine_->FlushFrame(old);
    machine_->buddy().Free(old);
  }
  as.CollapseToHuge(base, block, kPtePresent | kPteWritable | kPteAccessed);
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kCollapse, process.id(),
                         base, block);
  ++collapses_;
  return true;
}

}  // namespace vusion

#include "src/snapshot/io.h"

namespace vusion {

void Khugepaged::SaveState(snapshot::SnapshotWriter& w) const {
  w.U64(current_n_);
  w.U64(next_run_);
  w.U64(range_cursor_);
  w.U64(collapses_);
  w.U64(attempts_);
}

void Khugepaged::RestoreState(snapshot::SnapshotReader& r) {
  current_n_ = r.U64();
  next_run_ = r.U64();
  range_cursor_ = r.U64();
  collapses_ = r.U64();
  attempts_ = r.U64();
}

}  // namespace vusion
