#include "src/attack/flip_feng_shui.h"

#include <sstream>

#include "src/attack/hammer_util.h"

namespace vusion {

namespace {

constexpr std::uint64_t kTemplateSeedBase = 0x7e3a0000ULL;
constexpr std::uint64_t kSecretSeed = 0xff55ec;
constexpr std::size_t kTemplatingPages = 4096;  // 16 MB attacker region

struct Template {
  Vpn vpn = 0;         // attacker page on the vulnerable frame
  FrameId frame = kInvalidFrame;
  std::size_t byte = 0;
  std::uint8_t bit = 0;
  VirtAddr aggressor_low = 0;
  VirtAddr aggressor_high = 0;
};

}  // namespace

AttackOutcome FlipFengShui::Run(EngineKind kind, std::uint64_t seed) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& attacker = env.attacker();
  Process& victim = env.victim();
  Machine& machine = attacker.machine();

  // --- Phase 1: memory templating (attacker-local; no fusion involvement). ---
  if (env.engine() != nullptr) {
    env.engine()->Uninstall();
  }
  const VirtAddr region =
      attacker.AllocateRegion(kTemplatingPages, PageType::kAnonymous, true, false);
  std::vector<RowPage> pages;
  pages.reserve(kTemplatingPages);
  for (std::size_t i = 0; i < kTemplatingPages; ++i) {
    const Vpn vpn = VaddrToVpn(region) + i;
    attacker.SetupMapPattern(vpn, kTemplateSeedBase + i);
    pages.push_back(RowPage{vpn, kInvalidFrame, kTemplateSeedBase + i});
  }
  const RowMap rows = BuildRowMap(attacker, pages);
  const std::uint32_t iterations = machine.config().dram.hammer_threshold + 64;

  std::vector<Template> templates;
  for (const auto& [key, row_pages] : rows) {
    if (templates.size() >= 2) {
      break;
    }
    if (key.row < 1) {
      continue;
    }
    const auto low = rows.find(RowKey{key.bank, key.row - 1});
    const auto high = rows.find(RowKey{key.bank, key.row + 1});
    if (low == rows.end() || high == rows.end()) {
      continue;
    }
    const VirtAddr aggr_low = VpnToVaddr(low->second.front().vpn);
    const VirtAddr aggr_high = VpnToVaddr(high->second.front().vpn);
    HammerPair(attacker, aggr_low, aggr_high, iterations);
    for (const RowPage& page : row_pages) {
      const auto flip = FindFlip(machine, page.frame, page.pattern_seed);
      if (!flip.has_value()) {
        continue;
      }
      // Exploitable only if the victim content has a 1 at that cell (cells
      // discharge; only 1 -> 0 flips happen).
      if ((PatternByte(kSecretSeed, flip->byte) & (1u << flip->bit)) == 0) {
        machine.memory().FillPattern(page.frame, page.pattern_seed);  // repair, keep looking
        continue;
      }
      templates.push_back(
          Template{page.vpn, page.frame, flip->byte, flip->bit, aggr_low, aggr_high});
      machine.memory().FillPattern(page.frame, page.pattern_seed);  // restore content
      break;
    }
  }
  if (templates.empty()) {
    return AttackOutcome{false, 0.0, "no exploitable templates found"};
  }
  const Template tpl = templates.front();

  // --- Phase 2: physical memory massaging via the merge operation. ---
  if (env.engine() != nullptr) {
    env.engine()->Install();
  }
  // The attacker writes the victim's sensitive content onto her vulnerable page.
  machine.memory().FillPattern(attacker.TranslateFrame(tpl.vpn), kSecretSeed);
  // The victim's page with the same (secret) content appears in the system.
  const VirtAddr victim_page =
      victim.AllocateRegion(4, PageType::kAnonymous, true, false);
  victim.SetupMapPattern(VaddrToVpn(victim_page), kSecretSeed);
  env.WaitFusionRounds(8);

  const FrameId backing = victim.TranslateFrame(VaddrToVpn(victim_page));
  const bool massaged = backing == tpl.frame;

  // --- Phase 3: hammer and check whether the victim's data was corrupted. ---
  HammerPair(attacker, tpl.aggressor_low, tpl.aggressor_high, iterations);
  const std::size_t word_offset = tpl.byte & ~std::size_t{7};
  const std::uint64_t expected = ExpectedPatternWord(kSecretSeed, word_offset);
  const std::uint64_t observed = victim.Read64(victim_page + word_offset);

  AttackOutcome outcome;
  outcome.success = observed != expected;
  outcome.confidence = outcome.success ? 1.0 : 0.0;
  std::ostringstream detail;
  detail << (massaged ? "massaged onto template frame" : "backing frame not controlled")
         << "; victim data " << (outcome.success ? "CORRUPTED" : "intact");
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
