#include "src/sim/trace.h"

#include <algorithm>
#include <sstream>

namespace vusion {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kFault:
      return "fault";
    case TraceEventType::kMerge:
      return "merge";
    case TraceEventType::kFakeMerge:
      return "fake_merge";
    case TraceEventType::kUnmergeCow:
      return "unmerge_cow";
    case TraceEventType::kUnmergeCoa:
      return "unmerge_coa";
    case TraceEventType::kRelocate:
      return "relocate";
    case TraceEventType::kSwapOut:
      return "swap_out";
    case TraceEventType::kCollapse:
      return "collapse";
    case TraceEventType::kSplit:
      return "split";
    case TraceEventType::kCount:
      break;
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

void TraceBuffer::Emit(SimTime time, TraceEventType type, std::uint32_t process_id,
                       std::uint64_t vpn, std::uint32_t frame) {
  if (!enabled_) {
    return;
  }
  if (buffer_.capacity() < capacity_) {
    // First enabled emit commits the ring in one shot (no growth reallocations,
    // and disabled tracers never allocate).
    buffer_.reserve(capacity_);
  }
  ++counts_[static_cast<std::size_t>(type)];
  ++total_;
  const TraceEvent event{time, type, process_id, vpn, frame};
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[next_ % buffer_.size()] = event;
    ++dropped_;
  }
  ++next_;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  if (buffer_.size() < capacity_ || buffer_.empty()) {
    return buffer_;
  }
  // Ring wrapped: oldest entry is at next_ % size.
  std::vector<TraceEvent> ordered;
  ordered.reserve(buffer_.size());
  const std::size_t start = next_ % buffer_.size();
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    ordered.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return ordered;
}

void TraceBuffer::Clear() {
  buffer_.clear();
  next_ = 0;
  counts_.fill(0);
  // total_ and dropped_ are lifetime counters: a consumer draining the ring
  // mid-run must not erase the record of events already lost to overwrites.
}

std::string TraceBuffer::Summary() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > 0) {
      out << TraceEventTypeName(static_cast<TraceEventType>(i)) << "=" << counts_[i] << " ";
    }
  }
  return out.str();
}

}  // namespace vusion
