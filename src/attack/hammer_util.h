// Shared attacker-side Rowhammer machinery: row bookkeeping over the attacker's
// mapped pages, the read+flush hammer loop, and flip detection by content
// comparison against the page's expected pattern.

#ifndef VUSION_SRC_ATTACK_HAMMER_UTIL_H_
#define VUSION_SRC_ATTACK_HAMMER_UTIL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/kernel/process.h"

namespace vusion {

struct RowKey {
  std::size_t bank = 0;
  std::uint64_t row = 0;
  auto operator<=>(const RowKey&) const = default;
};

inline RowKey RowOfFrame(const DramMapping& mapping, FrameId frame) {
  const DramLocation loc = mapping.Locate(static_cast<PhysAddr>(frame) * kPageSize);
  return RowKey{loc.bank, loc.row};
}

// One attacker page known to live in a DRAM row.
struct RowPage {
  Vpn vpn = 0;
  FrameId frame = kInvalidFrame;
  std::uint64_t pattern_seed = 0;  // expected content
};

using RowMap = std::map<RowKey, std::vector<RowPage>>;

// Groups attacker pages by the DRAM row of their current backing frame.
inline RowMap BuildRowMap(Process& attacker, const std::vector<RowPage>& pages) {
  RowMap map;
  const DramMapping& mapping = attacker.machine().dram_mapping();
  for (RowPage page : pages) {
    page.frame = attacker.TranslateFrame(page.vpn);
    if (page.frame == kInvalidFrame) {
      continue;
    }
    map[RowOfFrame(mapping, page.frame)].push_back(page);
  }
  return map;
}

// The double-sided hammer loop: alternating uncached reads of two attacker-mapped
// addresses. Each read misses the LLC (explicit clflush) and activates its DRAM
// row; the RowhammerEngine applies flips when both rows cross the threshold.
inline void HammerPair(Process& attacker, VirtAddr a, VirtAddr b, std::uint32_t iterations) {
  for (std::uint32_t i = 0; i < iterations; ++i) {
    attacker.Read64(a);
    attacker.FlushCacheLine(a);
    attacker.Read64(b);
    attacker.FlushCacheLine(b);
  }
}

struct FoundFlip {
  FrameId frame = kInvalidFrame;
  std::size_t byte = 0;
  std::uint8_t bit = 0;
};

// Scans a frame for deviations from its expected pattern content. Returns the first
// flipped bit, if any. (The attacker reads her own page and diffs against what she
// wrote; comparing against the pattern expansion models that.)
inline std::optional<FoundFlip> FindFlip(Machine& machine, FrameId frame,
                                         std::uint64_t pattern_seed) {
  for (std::size_t byte = 0; byte < kPageSize; ++byte) {
    const std::uint8_t got = machine.memory().ReadByte(frame, byte);
    const std::uint8_t want = PatternByte(pattern_seed, byte);
    if (got != want) {
      const std::uint8_t diff = got ^ want;
      for (std::uint8_t bit = 0; bit < 8; ++bit) {
        if ((diff & (1u << bit)) != 0) {
          return FoundFlip{frame, byte, bit};
        }
      }
    }
  }
  return std::nullopt;
}

// Expected word of a pattern page at a (8-byte aligned) offset.
inline std::uint64_t ExpectedPatternWord(std::uint64_t seed, std::size_t offset) {
  std::uint64_t value = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    value |= static_cast<std::uint64_t>(PatternByte(seed, offset + k)) << (8 * k);
  }
  return value;
}

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_HAMMER_UTIL_H_
