// The classic unmerge-based information disclosure attack (paper §4.1, Figure 5):
// the attacker crafts guess pages, waits for a fusion pass, and times a write to
// each guess. A slow (copy-on-write) write reveals that another copy of that
// content exists in the system - leaking whether the victim holds the guessed
// secret. VUsion defeats it by Fake Merging: every candidate page, merged or not,
// costs one identical copy-on-access fault.

#ifndef VUSION_SRC_ATTACK_COW_SIDE_CHANNEL_H_
#define VUSION_SRC_ATTACK_COW_SIDE_CHANNEL_H_

#include "src/attack/timing_probe.h"

namespace vusion {

class CowSideChannel {
 public:
  struct Samples {
    std::vector<double> hit_times;   // writes to guesses matching the victim page
    std::vector<double> miss_times;  // writes to guesses matching nothing
  };

  // Runs the full attack against the given engine. success = the attacker can tell
  // hits from misses.
  static AttackOutcome Run(EngineKind kind, std::uint64_t seed);

  // Lower-level entry point returning the raw timing samples (used by the Fig 5/6
  // benches to plot the frequency distributions). `pages_per_class` guesses of each
  // class are probed with `use_reads` selecting read- vs write-probing.
  static Samples Collect(AttackEnvironment& env, std::size_t pages_per_class,
                         bool use_reads);
};

}  // namespace vusion

#endif  // VUSION_SRC_ATTACK_COW_SIDE_CHANNEL_H_
