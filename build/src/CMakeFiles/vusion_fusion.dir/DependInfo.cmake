
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fusion/content.cc" "src/CMakeFiles/vusion_fusion.dir/fusion/content.cc.o" "gcc" "src/CMakeFiles/vusion_fusion.dir/fusion/content.cc.o.d"
  "/root/repo/src/fusion/deferred_free.cc" "src/CMakeFiles/vusion_fusion.dir/fusion/deferred_free.cc.o" "gcc" "src/CMakeFiles/vusion_fusion.dir/fusion/deferred_free.cc.o.d"
  "/root/repo/src/fusion/engine_factory.cc" "src/CMakeFiles/vusion_fusion.dir/fusion/engine_factory.cc.o" "gcc" "src/CMakeFiles/vusion_fusion.dir/fusion/engine_factory.cc.o.d"
  "/root/repo/src/fusion/fusion_stats.cc" "src/CMakeFiles/vusion_fusion.dir/fusion/fusion_stats.cc.o" "gcc" "src/CMakeFiles/vusion_fusion.dir/fusion/fusion_stats.cc.o.d"
  "/root/repo/src/fusion/ksm.cc" "src/CMakeFiles/vusion_fusion.dir/fusion/ksm.cc.o" "gcc" "src/CMakeFiles/vusion_fusion.dir/fusion/ksm.cc.o.d"
  "/root/repo/src/fusion/memory_combining.cc" "src/CMakeFiles/vusion_fusion.dir/fusion/memory_combining.cc.o" "gcc" "src/CMakeFiles/vusion_fusion.dir/fusion/memory_combining.cc.o.d"
  "/root/repo/src/fusion/vusion_engine.cc" "src/CMakeFiles/vusion_fusion.dir/fusion/vusion_engine.cc.o" "gcc" "src/CMakeFiles/vusion_fusion.dir/fusion/vusion_engine.cc.o.d"
  "/root/repo/src/fusion/wpf.cc" "src/CMakeFiles/vusion_fusion.dir/fusion/wpf.cc.o" "gcc" "src/CMakeFiles/vusion_fusion.dir/fusion/wpf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vusion_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
