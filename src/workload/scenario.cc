#include "src/workload/scenario.h"

namespace vusion {

Json Describe(const ScenarioConfig& config) {
  Json machine = Json::Object();
  machine.Set("frame_count", config.machine.frame_count);
  machine.Set("memory_mb", config.machine.frame_count * kPageSize / (1024.0 * 1024.0));
  machine.Set("enable_l1", config.machine.enable_l1);
  machine.Set("llc_size_bytes", config.machine.cache.size_bytes());
  machine.Set("seed", config.machine.seed);

  Json fusion = Json::Object();
  fusion.Set("wake_period_ns", config.fusion.wake_period);
  fusion.Set("pages_per_wake", config.fusion.pages_per_wake);
  fusion.Set("scan_threads", config.fusion.scan_threads);
  fusion.Set("pool_frames", config.fusion.pool_frames);
  fusion.Set("min_idle_rounds", config.fusion.min_idle_rounds);
  fusion.Set("working_set_estimation", config.fusion.working_set_estimation);
  fusion.Set("deferred_free", config.fusion.deferred_free);
  fusion.Set("rerandomize_each_scan", config.fusion.rerandomize_each_scan);
  fusion.Set("thp_aware", config.fusion.thp_aware);
  fusion.Set("zero_pages_only", config.fusion.zero_pages_only);
  fusion.Set("unmerge_on_any_access", config.fusion.unmerge_on_any_access);
  fusion.Set("byte_ordered_trees", config.fusion.byte_ordered_trees);
  fusion.Set("wpf_period_ns", config.fusion.wpf_period);

  Json out = Json::Object();
  out.Set("engine", EngineKindName(config.engine));
  out.Set("machine", std::move(machine));
  out.Set("fusion", std::move(fusion));
  out.Set("enable_khugepaged", config.enable_khugepaged);
  if (config.enable_khugepaged) {
    Json khp = Json::Object();
    khp.Set("period_ns", config.khugepaged.period);
    khp.Set("ranges_per_wake", config.khugepaged.ranges_per_wake);
    khp.Set("min_active_subpages", config.khugepaged.min_active_subpages);
    khp.Set("adaptive_n", config.khugepaged.adaptive_n);
    out.Set("khugepaged", std::move(khp));
  }
  return out;
}

Json Describe(const VmImageSpec& spec) {
  Json out = Json::Object();
  out.Set("distro_seed", spec.distro_seed);
  out.Set("stack_seed", spec.stack_seed);
  out.Set("total_pages", spec.total_pages);
  out.Set("guest_mb", spec.total_pages * kPageSize / (1024.0 * 1024.0));
  out.Set("kernel_frac", spec.kernel_frac);
  out.Set("page_cache_frac", spec.page_cache_frac);
  out.Set("buddy_frac", spec.buddy_frac);
  out.Set("cache_distro_shared", spec.cache_distro_shared);
  out.Set("cache_stack_shared", spec.cache_stack_shared);
  out.Set("buddy_zero_frac", spec.buddy_zero_frac);
  out.Set("anon_shared_frac", spec.anon_shared_frac);
  out.Set("map_anon_as_thp", spec.map_anon_as_thp);
  return out;
}

ScopedEngine Scenario::MakeScenarioEngine(Machine& machine, const ScenarioConfig& config) {
  if (config.enable_khugepaged) {
    machine.EnableKhugepaged(config.khugepaged);
  }
  return ScopedEngine(config.engine, machine, config.fusion);
}

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config),
      machine_(std::make_unique<Machine>(config.machine)),
      engine_(MakeScenarioEngine(*machine_, config)) {}

Scenario::~Scenario() = default;

Process& Scenario::BootVm(const VmImageSpec& spec, std::uint64_t instance_seed) {
  return VmImage::Boot(*machine_, spec, instance_seed);
}

Process& Scenario::BootVm(const VmImageTemplate& tmpl) {
  return VmImage::BootFromTemplate(*machine_, tmpl);
}

std::uint64_t Scenario::consumed_frames() const {
  std::uint64_t frames = machine_->memory().allocated_count();
  if (engine_) {
    frames -= engine_->reserved_frames();
  }
  return frames;
}

double Scenario::consumed_mb() const {
  return static_cast<double>(consumed_frames()) * kPageSize / (1024.0 * 1024.0);
}

MetricsSnapshot Scenario::CollectMetrics() {
  if (engine_) {
    engine_->ExportMetrics(machine_->metrics());
  }
  return machine_->CollectMetrics();
}

}  // namespace vusion
