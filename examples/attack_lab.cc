// Attack lab: walk through the paper's two headline attacks step by step -
// the copy-on-write timing side channel (information disclosure) and classic
// Flip Feng Shui (memory corruption) - against KSM and then against VUsion.
//
//   $ ./build/examples/attack_lab

#include <cstdio>

#include "src/attack/cow_side_channel.h"
#include "src/attack/flip_feng_shui.h"
#include "src/sim/stats.h"

using namespace vusion;

namespace {

void TimingChannelDemo(EngineKind kind) {
  std::printf("\n--- write-timing side channel vs %s ---\n", EngineKindName(kind));
  AttackEnvironment env(kind, 42, AttackMachineConfig(), AttackFusionConfig());
  const CowSideChannel::Samples samples =
      CowSideChannel::Collect(env, /*pages_per_class=*/64, /*use_reads=*/false);
  RunningStats hits;
  RunningStats misses;
  for (const double t : samples.hit_times) {
    hits.Add(t);
  }
  for (const double t : samples.miss_times) {
    misses.Add(t);
  }
  std::printf("  writes to guesses MATCHING the victim secret: mean %6.0f ns\n", hits.mean());
  std::printf("  writes to guesses matching nothing:           mean %6.0f ns\n",
              misses.mean());
  if (hits.mean() > 2.0 * misses.mean()) {
    std::printf("  -> the attacker can tell which guess the victim holds: SECRET LEAKED\n");
  } else if (misses.mean() > 2.0 * hits.mean()) {
    std::printf("  -> inverted timing: still distinguishable, SECRET LEAKED\n");
  } else {
    std::printf("  -> indistinguishable: every page costs one copy-on-access (SB)\n");
  }
}

void FlipFengShuiDemo(EngineKind kind) {
  std::printf("\n--- Flip Feng Shui vs %s ---\n", EngineKindName(kind));
  const AttackOutcome outcome = FlipFengShui::Run(kind, 42);
  std::printf("  %s\n", outcome.detail.c_str());
  std::printf("  -> %s\n", outcome.success
                               ? "victim's key corrupted WITHOUT a single write to it"
                               : "attack failed");
}

}  // namespace

int main() {
  std::printf("VUsion attack lab: the same attacks against insecure and secure fusion\n");
  TimingChannelDemo(EngineKind::kKsm);
  TimingChannelDemo(EngineKind::kVUsion);
  FlipFengShuiDemo(EngineKind::kKsm);
  FlipFengShuiDemo(EngineKind::kVUsion);
  std::printf("\nSame Behaviour stops the disclosure; Randomized Allocation stops the\n"
              "memory massaging. See bench_table1_attack_matrix for all six attacks.\n");
  return 0;
}
