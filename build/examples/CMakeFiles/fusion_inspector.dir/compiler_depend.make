# Empty compiler generated dependencies file for fusion_inspector.
# This may be replaced when dependencies are built.
