// Idle page tracking, modeled on the Linux facility VUsion's working-set estimation
// uses (Documentation/vm/idle_page_tracking.txt): harvest-and-clear PTE accessed
// bits. Clearing invalidates the TLB entry so the hardware re-sets the bit on the
// next access.

#ifndef VUSION_SRC_KERNEL_IDLE_TRACKER_H_
#define VUSION_SRC_KERNEL_IDLE_TRACKER_H_

#include "src/mmu/address_space.h"

namespace vusion {

class IdleTracker {
 public:
  // Returns whether the page was accessed since the last clear, then clears the
  // accessed bit. Works on 4 KB PTEs and huge PMD entries alike.
  static bool TestAndClearAccessed(AddressSpace& as, Vpn vpn);

  // Read-only probe.
  static bool IsAccessed(const AddressSpace& as, Vpn vpn);
};

}  // namespace vusion

#endif  // VUSION_SRC_KERNEL_IDLE_TRACKER_H_
