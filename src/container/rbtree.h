// A from-scratch red-black tree modeling the kernel's rbtree as used by KSM.
//
// KSM keeps two content-ordered red-black trees (stable and unstable); lookups walk
// the tree comparing the probe page's bytes against each node's page. To support
// that access pattern the tree is parameterized on a stateful three-way comparator
// (which typically dereferences frame contents), and Find() accepts an arbitrary
// three-way probe callable so a lookup can compare a page against stored entries
// without constructing a value.
//
// The tree is not thread safe; the simulated kernel is single-threaded by design.

#ifndef VUSION_SRC_CONTAINER_RBTREE_H_
#define VUSION_SRC_CONTAINER_RBTREE_H_

#include <cassert>
#include <cstddef>
#include <utility>

#include "src/container/arena.h"

namespace vusion {

template <typename T, typename Compare>
class RbTree {
 public:
  struct Node {
    T value;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
    bool red = true;
  };

  explicit RbTree(Compare compare = Compare()) : compare_(std::move(compare)) {}
  ~RbTree() { Clear(); }

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;
  RbTree(RbTree&& other) noexcept
      : compare_(std::move(other.compare_)),
        root_(other.root_),
        size_(other.size_),
        arena_(other.arena_) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  RbTree& operator=(RbTree&& other) noexcept {
    if (this != &other) {
      Clear();
      compare_ = std::move(other.compare_);
      root_ = other.root_;
      size_ = other.size_;
      arena_ = other.arena_;
      other.root_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  // Routes node allocation through an arena (see src/container/arena.h). Must be
  // called while the tree is empty; the arena must outlive the tree.
  void SetNodeArena(Arena* arena) {
    assert(root_ == nullptr);
    arena_ = arena;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Inserts a value; duplicates are allowed (they descend right, like the kernel's
  // tie-breaking by page address is irrelevant here). Returns the new node and the
  // number of comparisons performed (for the latency model).
  std::pair<Node*, std::size_t> Insert(T value) {
    Node* node = NewNode(std::move(value));
    Node* parent = nullptr;
    Node* cur = root_;
    std::size_t steps = 0;
    while (cur != nullptr) {
      parent = cur;
      ++steps;
      cur = (compare_(node->value, cur->value) < 0) ? cur->left : cur->right;
    }
    node->parent = parent;
    if (parent == nullptr) {
      root_ = node;
    } else if (compare_(node->value, parent->value) < 0) {
      parent->left = node;
    } else {
      parent->right = node;
    }
    InsertFixup(node);
    ++size_;
    return {node, steps};
  }

  // Three-way search with an arbitrary probe: probe(value) < 0 descends left,
  // > 0 descends right, == 0 is a match. Returns {node or nullptr, comparisons}.
  template <typename Probe>
  std::pair<Node*, std::size_t> Find(Probe&& probe) const {
    Node* cur = root_;
    std::size_t steps = 0;
    while (cur != nullptr) {
      ++steps;
      const int c = probe(cur->value);
      if (c == 0) {
        return {cur, steps};
      }
      cur = (c < 0) ? cur->left : cur->right;
    }
    return {nullptr, steps};
  }

  // Leftmost node matching a three-way probe (probe == 0), or nullptr. Unlike
  // Find, which stops at the first match on the descent path, this pins down a
  // deterministic element of an equal-key run.
  template <typename Probe>
  [[nodiscard]] Node* LowerBound(Probe&& probe) const {
    Node* cur = root_;
    Node* match = nullptr;
    while (cur != nullptr) {
      const int c = probe(cur->value);
      if (c == 0) {
        match = cur;
      }
      cur = (c <= 0) ? cur->left : cur->right;
    }
    return match;
  }

  // In-order successor via parent pointers; nullptr past the maximum.
  [[nodiscard]] static Node* Successor(Node* n) {
    if (n->right != nullptr) {
      return Minimum(n->right);
    }
    Node* p = n->parent;
    while (p != nullptr && n == p->right) {
      n = p;
      p = p->parent;
    }
    return p;
  }

  // Removes a node previously returned by Insert/Find. The node is deleted.
  void Remove(Node* z) {
    assert(z != nullptr);
    Node* y = z;
    bool y_was_red = y->red;
    Node* x = nullptr;
    Node* x_parent = nullptr;
    if (z->left == nullptr) {
      x = z->right;
      x_parent = z->parent;
      Transplant(z, z->right);
    } else if (z->right == nullptr) {
      x = z->left;
      x_parent = z->parent;
      Transplant(z, z->left);
    } else {
      y = Minimum(z->right);
      y_was_red = y->red;
      x = y->right;
      if (y->parent == z) {
        x_parent = y;
      } else {
        x_parent = y->parent;
        Transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      Transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->red = z->red;
    }
    if (!y_was_red) {
      RemoveFixup(x, x_parent);
    }
    DeleteNode(z);
    --size_;
  }

  void Clear() {
    ClearRecursive(root_);
    root_ = nullptr;
    size_ = 0;
  }

  // In-order traversal; visitor receives const T&.
  template <typename Visitor>
  void InOrder(Visitor&& visit) const {
    InOrderRecursive(root_, visit);
  }

  // Verifies the red-black invariants: root black, no red node has a red child, and
  // all root-to-leaf paths contain the same number of black nodes. Used by tests.
  [[nodiscard]] bool ValidateInvariants() const {
    if (root_ != nullptr && root_->red) {
      return false;
    }
    int black_height = -1;
    return ValidateRecursive(root_, 0, black_height);
  }

  [[nodiscard]] Compare& comparator() { return compare_; }

  // Savestates: structural preorder dump/rebuild. The node colours travel with
  // the values, so a restored tree is the *same* tree — not merely an
  // equivalent set — and every future descent path (and thus every
  // shape-dependent Find result) matches the saved instance exactly.
  // Export calls fn(value, red, has_left, has_right) per node in preorder.
  template <typename Fn>
  void ExportPreorder(Fn&& fn) const {
    ExportPreorderRecursive(root_, fn);
  }

  // Rebuilds from the same preorder stream. Must be called on an empty tree.
  // produce(red, has_left, has_right) returns the node's value; after each node
  // is linked, on_node(Node*) fires in preorder so callers can rebuild
  // pointer/index maps into the tree's stored values.
  template <typename Producer, typename OnNode>
  void ImportPreorder(std::size_t count, Producer&& produce, OnNode&& on_node) {
    assert(root_ == nullptr && size_ == 0);
    if (count == 0) {
      return;
    }
    root_ = ImportPreorderRecursive(nullptr, produce, on_node);
    size_ = count;
  }

 private:
  template <typename Fn>
  void ExportPreorderRecursive(const Node* n, Fn& fn) const {
    if (n == nullptr) {
      return;
    }
    fn(n->value, n->red, n->left != nullptr, n->right != nullptr);
    ExportPreorderRecursive(n->left, fn);
    ExportPreorderRecursive(n->right, fn);
  }

  template <typename Producer, typename OnNode>
  Node* ImportPreorderRecursive(Node* parent, Producer& produce, OnNode& on_node) {
    bool red = false;
    bool has_left = false;
    bool has_right = false;
    Node* n = NewNode(produce(red, has_left, has_right));
    n->parent = parent;
    n->red = red;
    on_node(n);
    if (has_left) {
      n->left = ImportPreorderRecursive(n, produce, on_node);
    }
    if (has_right) {
      n->right = ImportPreorderRecursive(n, produce, on_node);
    }
    return n;
  }

  static Node* Minimum(Node* n) {
    while (n->left != nullptr) {
      n = n->left;
    }
    return n;
  }

  void RotateLeft(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nullptr) {
      y->left->parent = x;
    }
    y->parent = x->parent;
    if (x->parent == nullptr) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
    y->left = x;
    x->parent = y;
  }

  void RotateRight(Node* x) {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nullptr) {
      y->right->parent = x;
    }
    y->parent = x->parent;
    if (x->parent == nullptr) {
      root_ = y;
    } else if (x == x->parent->right) {
      x->parent->right = y;
    } else {
      x->parent->left = y;
    }
    y->right = x;
    x->parent = y;
  }

  void InsertFixup(Node* z) {
    while (z->parent != nullptr && z->parent->red) {
      Node* gp = z->parent->parent;
      if (z->parent == gp->left) {
        Node* uncle = gp->right;
        if (uncle != nullptr && uncle->red) {
          z->parent->red = false;
          uncle->red = false;
          gp->red = true;
          z = gp;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            RotateLeft(z);
          }
          z->parent->red = false;
          z->parent->parent->red = true;
          RotateRight(z->parent->parent);
        }
      } else {
        Node* uncle = gp->left;
        if (uncle != nullptr && uncle->red) {
          z->parent->red = false;
          uncle->red = false;
          gp->red = true;
          z = gp;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            RotateRight(z);
          }
          z->parent->red = false;
          z->parent->parent->red = true;
          RotateLeft(z->parent->parent);
        }
      }
    }
    root_->red = false;
  }

  void Transplant(Node* u, Node* v) {
    if (u->parent == nullptr) {
      root_ = v;
    } else if (u == u->parent->left) {
      u->parent->left = v;
    } else {
      u->parent->right = v;
    }
    if (v != nullptr) {
      v->parent = u->parent;
    }
  }

  static bool IsRed(const Node* n) { return n != nullptr && n->red; }

  // x may be null; x_parent is its (possibly new) parent.
  void RemoveFixup(Node* x, Node* x_parent) {
    while (x != root_ && !IsRed(x)) {
      if (x_parent == nullptr) {
        break;
      }
      if (x == x_parent->left) {
        Node* w = x_parent->right;
        if (IsRed(w)) {
          w->red = false;
          x_parent->red = true;
          RotateLeft(x_parent);
          w = x_parent->right;
        }
        if (!IsRed(w->left) && !IsRed(w->right)) {
          w->red = true;
          x = x_parent;
          x_parent = x->parent;
        } else {
          if (!IsRed(w->right)) {
            if (w->left != nullptr) {
              w->left->red = false;
            }
            w->red = true;
            RotateRight(w);
            w = x_parent->right;
          }
          w->red = x_parent->red;
          x_parent->red = false;
          if (w->right != nullptr) {
            w->right->red = false;
          }
          RotateLeft(x_parent);
          x = root_;
          x_parent = nullptr;
        }
      } else {
        Node* w = x_parent->left;
        if (IsRed(w)) {
          w->red = false;
          x_parent->red = true;
          RotateRight(x_parent);
          w = x_parent->left;
        }
        if (!IsRed(w->right) && !IsRed(w->left)) {
          w->red = true;
          x = x_parent;
          x_parent = x->parent;
        } else {
          if (!IsRed(w->left)) {
            if (w->right != nullptr) {
              w->right->red = false;
            }
            w->red = true;
            RotateLeft(w);
            w = x_parent->left;
          }
          w->red = x_parent->red;
          x_parent->red = false;
          if (w->left != nullptr) {
            w->left->red = false;
          }
          RotateRight(x_parent);
          x = root_;
          x_parent = nullptr;
        }
      }
    }
    if (x != nullptr) {
      x->red = false;
    }
  }

  void ClearRecursive(Node* n) {
    if (n == nullptr) {
      return;
    }
    ClearRecursive(n->left);
    ClearRecursive(n->right);
    DeleteNode(n);
  }

  Node* NewNode(T value) {
    if (arena_ != nullptr) {
      return arena_->template New<Node>(Node{std::move(value)});
    }
    return new Node{std::move(value)};
  }

  void DeleteNode(Node* n) {
    if (arena_ != nullptr) {
      arena_->Delete(n);
    } else {
      delete n;
    }
  }

  template <typename Visitor>
  void InOrderRecursive(const Node* n, Visitor& visit) const {
    if (n == nullptr) {
      return;
    }
    InOrderRecursive(n->left, visit);
    visit(n->value);
    InOrderRecursive(n->right, visit);
  }

  bool ValidateRecursive(const Node* n, int blacks, int& expected) const {
    if (n == nullptr) {
      if (expected < 0) {
        expected = blacks;
      }
      return blacks == expected;
    }
    if (n->red && (IsRed(n->left) || IsRed(n->right))) {
      return false;
    }
    if (!n->red) {
      ++blacks;
    }
    return ValidateRecursive(n->left, blacks, expected) &&
           ValidateRecursive(n->right, blacks, expected);
  }

  Compare compare_;
  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Arena* arena_ = nullptr;
};

}  // namespace vusion

#endif  // VUSION_SRC_CONTAINER_RBTREE_H_
