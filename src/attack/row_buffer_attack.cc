#include "src/attack/row_buffer_attack.h"

#include <sstream>

#include "src/attack/hammer_util.h"

namespace vusion {

namespace {

constexpr std::uint64_t kSecretSeed = 0x20b5ec;
constexpr std::uint64_t kControlSeed = 0x20c0de;
constexpr std::size_t kTrials = 64;

// Finds an attacker address that maps into the same DRAM bank as `frame` but a
// different row (the "row conflict" opener). Returns 0 if none found.
VirtAddr FindBankConflict(Process& attacker, VirtAddr pool, std::size_t pool_pages,
                          FrameId frame) {
  const DramMapping& mapping = attacker.machine().dram_mapping();
  const RowKey target = RowOfFrame(mapping, frame);
  for (std::size_t i = 0; i < pool_pages; ++i) {
    const FrameId candidate = attacker.TranslateFrame(VaddrToVpn(pool) + i);
    if (candidate == kInvalidFrame) {
      continue;
    }
    const RowKey key = RowOfFrame(mapping, candidate);
    if (key.bank == target.bank && key.row != target.row) {
      return pool + i * kPageSize;
    }
  }
  return 0;
}

}  // namespace

AttackOutcome RowBufferAttack::Run(EngineKind kind, std::uint64_t seed) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& attacker = env.attacker();
  Process& victim = env.victim();

  // A pool of attacker pages used to find bank conflicts.
  const std::size_t pool_pages = 256;
  const VirtAddr pool =
      attacker.AllocateRegion(pool_pages, PageType::kAnonymous, /*mergeable=*/false, false);
  for (std::size_t i = 0; i < pool_pages; ++i) {
    attacker.SetupMapPattern(VaddrToVpn(pool) + i, 0x9001 + i);
  }

  const VirtAddr victim_page =
      victim.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  victim.SetupMapPattern(VaddrToVpn(victim_page), kSecretSeed);
  const VirtAddr base =
      attacker.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  const VirtAddr guess = base;
  const VirtAddr control = base + kPageSize;
  attacker.SetupMapPattern(VaddrToVpn(guess), kSecretSeed);
  attacker.SetupMapPattern(VaddrToVpn(control), kControlSeed);

  env.WaitFusionRounds(6);

  auto probe = [&](VirtAddr target) -> std::vector<double> {
    std::vector<double> reloads;
    for (std::size_t t = 0; t < kTrials; ++t) {
      const FrameId frame = attacker.TranslateFrame(VaddrToVpn(target));
      const VirtAddr opener =
          frame != kInvalidFrame ? FindBankConflict(attacker, pool, pool_pages, frame) : 0;
      if (opener != 0) {
        attacker.FlushCacheLine(opener);
        attacker.Read64(opener);  // close the target's row
      }
      attacker.FlushCacheLine(target);  // victim's access must reach DRAM
      victim.Read64(victim_page);       // victim touches its copy (opens its row)
      attacker.FlushCacheLine(target);  // force the reload to DRAM as well
      reloads.push_back(static_cast<double>(attacker.TimedRead(target)));
    }
    return reloads;
  };

  const std::vector<double> guess_reloads = probe(guess);
  const std::vector<double> control_reloads = probe(control);

  AttackOutcome outcome;
  double p = 0.0;
  outcome.success = TimingDistinguishable(guess_reloads, control_reloads, &p);
  outcome.confidence = 1.0 - p;
  std::ostringstream detail;
  detail << "row-buffer reload KS p=" << p;
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
