# Empty compiler generated dependencies file for content_cursor_test.
# This may be replaced when dependencies are built.
