# Empty dependencies file for buddy_allocator_test.
# This may be replaced when dependencies are built.
