# Empty compiler generated dependencies file for bench_fig11_diverse_vms.
# This may be replaced when dependencies are built.
