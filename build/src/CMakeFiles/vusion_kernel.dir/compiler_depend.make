# Empty compiler generated dependencies file for vusion_kernel.
# This may be replaced when dependencies are built.
