// Cloud consolidation: how many guests fit on one host? Boots VMs from a diverse
// image catalog onto a fixed-size host until memory runs out, comparing no-dedup,
// KSM, and VUsion - the capacity argument that makes page fusion worth securing.
//
//   $ ./build/examples/cloud_consolidation

#include <cstdio>

#include "src/fusion/engine_factory.h"
#include "src/workload/scenario.h"

using namespace vusion;

namespace {

// Boots guests until the host cannot fit another one, giving the fusion engine
// time to reclaim duplicates between boots (as a real scheduler would).
std::size_t PackGuests(EngineKind kind) {
  ScenarioConfig config;
  config.machine.frame_count = 1u << 16;  // 256 MB host
  config.engine = kind;
  config.fusion.pool_frames = 4096;
  Scenario scenario(config);

  const std::uint64_t total = config.machine.frame_count;
  std::size_t guests = 0;
  while (guests < 64) {
    VmImageSpec spec = VmImage::CatalogImage(guests % VmImage::kCatalogSize);
    spec.total_pages = 2048;  // 8 MB guests
    // Admission control: leave headroom for page tables and the guest itself.
    const std::uint64_t needed = spec.total_pages + spec.total_pages / 8;
    std::uint64_t reserved = 0;
    if (scenario.engine() != nullptr) {
      reserved = scenario.engine()->reserved_frames();
    }
    if (scenario.consumed_frames() + needed + reserved > total) {
      break;
    }
    scenario.BootVm(spec, 1000 + guests);
    ++guests;
    scenario.RunFor(20 * kSecond);  // fusion reclaims before the next admission
  }
  std::printf("%-10s: %2zu guests, final consumption %.1f MB", EngineKindName(kind),
              guests, scenario.consumed_mb());
  if (scenario.engine() != nullptr) {
    std::printf(" (saved %.1f MB)",
                static_cast<double>(scenario.engine()->frames_saved()) * kPageSize /
                    (1024.0 * 1024.0));
  }
  std::printf("\n");
  return guests;
}

}  // namespace

int main() {
  std::printf("packing 8 MB guests onto a 256 MB host:\n\n");
  const std::size_t none = PackGuests(EngineKind::kNone);
  const std::size_t ksm = PackGuests(EngineKind::kKsm);
  const std::size_t vusion = PackGuests(EngineKind::kVUsion);
  std::printf("\nconsolidation factor: KSM %.2fx, VUsion %.2fx - secure fusion keeps\n"
              "nearly all of the capacity benefit.\n",
              static_cast<double>(ksm) / static_cast<double>(none),
              static_cast<double>(vusion) / static_cast<double>(none));
  return 0;
}
