# Empty dependencies file for bench_related_memory_combining.
# This may be replaced when dependencies are built.
