// A process (or, in the cloud scenarios, a whole guest VM whose physical memory the
// host sees as one address space). Provides region layout, untimed setup-population
// of memory images, and the timed access API that workloads and attacks use.

#ifndef VUSION_SRC_KERNEL_PROCESS_H_
#define VUSION_SRC_KERNEL_PROCESS_H_

#include <cstdint>
#include <span>

#include "src/kernel/machine.h"
#include "src/mmu/address_space.h"

namespace vusion {

class Process {
 public:
  Process(Machine& machine, std::uint32_t id);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] AddressSpace& address_space() { return address_space_; }
  [[nodiscard]] const AddressSpace& address_space() const { return address_space_; }
  [[nodiscard]] Machine& machine() { return *machine_; }

  // Reserves a virtual region (512-page aligned) and records its VMA. Pages are not
  // mapped; populate with the Setup* calls or touch them to demand-fault.
  VirtAddr AllocateRegion(std::uint64_t pages, PageType type, bool mergeable,
                          bool thp_eligible);

  // fork support: adopts the parent's VMA layout so future AllocateRegion calls in
  // the child do not overlap inherited regions.
  void InheritLayout(const Process& parent);

  // Registers [vaddr, vaddr + pages*4K) with the fusion system (madvise MERGEABLE).
  void Madvise(VirtAddr vaddr, std::uint64_t pages);
  // Withdraws the range from the fusion system (madvise UNMERGEABLE); any merged
  // pages in it are broken back out into private copies.
  void MadviseUnmergeable(VirtAddr vaddr, std::uint64_t pages);

  // --- Untimed setup population (the "VM boots with this image" path) ---

  // Maps vpn to a fresh frame filled with the pattern expansion of `seed`.
  void SetupMapPattern(Vpn vpn, std::uint64_t seed);
  // Maps vpn to a fresh zero-filled frame.
  void SetupMapZero(Vpn vpn);
  // Maps a 512-page-aligned huge page backed by a fresh contiguous block; subpage i
  // gets pattern seed seeds_base + i. Returns false if no contiguous block exists.
  bool SetupMapHuge(Vpn base_vpn, std::uint64_t seeds_base);
  // Same, with one content seed per subpage (seed 0 = zero-filled page).
  bool SetupMapHugeSeeds(Vpn base_vpn, std::span<const std::uint64_t> seeds);
  // Unmaps and frees (fusion-aware).
  void SetupUnmap(Vpn vpn);

  // --- Timed accesses (drive the clock, the cache, DRAM, and page faults) ---

  std::uint64_t Read64(VirtAddr vaddr);
  void Write64(VirtAddr vaddr, std::uint64_t value);
  // Same, returning the access latency (what attacker rdtsc loops measure).
  SimTime TimedRead(VirtAddr vaddr);
  SimTime TimedWrite(VirtAddr vaddr, std::uint64_t value);
  void Prefetch(VirtAddr vaddr);
  void FlushCacheLine(VirtAddr vaddr);

  // Test/attack helper: current backing frame of vpn (huge-aware), or kInvalidFrame.
  [[nodiscard]] FrameId TranslateFrame(Vpn vpn) const;

  // Savestate accessors: the region-layout cursor is deterministic state (it
  // decides where the next AllocateRegion lands).
  [[nodiscard]] Vpn next_region_vpn() const { return next_region_vpn_; }
  void set_next_region_vpn(Vpn vpn) { next_region_vpn_ = vpn; }

 private:
  Machine* machine_;
  std::uint32_t id_;
  AddressSpace address_space_;
  Vpn next_region_vpn_;
};

// vaddr/vpn helpers.
constexpr std::uint64_t kPageShift = 12;
constexpr VirtAddr VpnToVaddr(Vpn vpn) { return vpn << kPageShift; }
constexpr Vpn VaddrToVpn(VirtAddr vaddr) { return vaddr >> kPageShift; }

}  // namespace vusion

#endif  // VUSION_SRC_KERNEL_PROCESS_H_
