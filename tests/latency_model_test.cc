#include "src/sim/latency_model.h"

#include <vector>

#include <gtest/gtest.h>

namespace vusion {
namespace {

TEST(LatencyModelTest, ChargeAdvancesClock) {
  VirtualClock clock;
  LatencyConfig config;
  config.noise_sigma = 0.0;
  LatencyModel model(config, clock, Rng(1));
  const SimTime charged = model.Charge(100);
  EXPECT_EQ(charged, 100u);
  EXPECT_EQ(clock.now(), 100u);
}

TEST(LatencyModelTest, ChargeExactIgnoresNoise) {
  VirtualClock clock;
  LatencyConfig config;
  config.noise_sigma = 0.5;
  LatencyModel model(config, clock, Rng(2));
  EXPECT_EQ(model.ChargeExact(1000), 1000u);
  EXPECT_EQ(clock.now(), 1000u);
}

TEST(LatencyModelTest, NoiseStaysNearBase) {
  VirtualClock clock;
  LatencyConfig config;
  config.noise_sigma = 0.04;
  LatencyModel model(config, clock, Rng(3));
  double total = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const SimTime c = model.Charge(1000);
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1400u);
    total += static_cast<double>(c);
  }
  EXPECT_NEAR(total / n, 1000.0, 15.0);
}

TEST(LatencyModelTest, ZeroChargeIsFree) {
  VirtualClock clock;
  LatencyModel model(LatencyConfig{}, clock, Rng(4));
  EXPECT_EQ(model.Charge(0), 0u);
  EXPECT_EQ(clock.now(), 0u);
}

// A batched span must reproduce the unbatched run bit-for-bit: same per-charge
// costs (same RNG draws in the same order) and the same final clock; only the
// number of Advance calls differs.
TEST(LatencyModelTest, BatchedSpanMatchesUnbatchedBitForBit) {
  LatencyConfig config;
  config.noise_sigma = 0.04;

  VirtualClock ref_clock;
  LatencyModel ref(config, ref_clock, Rng(42));
  ref.set_batching_enabled(false);
  std::vector<SimTime> ref_costs;
  for (int i = 0; i < 1000; ++i) {
    ref_costs.push_back(ref.Charge(100 + i % 7));
    if (i % 3 == 0) {
      ref_costs.push_back(ref.ChargeExact(25));
    }
  }

  VirtualClock clock;
  LatencyModel model(config, clock, Rng(42));
  model.set_batching_enabled(true);
  std::vector<SimTime> costs;
  {
    ChargeSpan span(model);
    for (int i = 0; i < 1000; ++i) {
      costs.push_back(model.Charge(100 + i % 7));
      if (i % 3 == 0) {
        costs.push_back(model.ChargeExact(25));
      }
    }
    // Mid-span reads settle through FlushPending and see the exact clock.
    model.FlushPending();
    EXPECT_EQ(clock.now(), ref_clock.now());
  }
  EXPECT_EQ(costs, ref_costs);
  EXPECT_EQ(clock.now(), ref_clock.now());
}

// Nested spans only flush at the outermost close; disabling batching flushes
// immediately and makes further charges advance the clock directly.
TEST(LatencyModelTest, NestedSpansAndDisableFlush) {
  LatencyConfig config;
  config.noise_sigma = 0.0;
  VirtualClock clock;
  LatencyModel model(config, clock, Rng(5));
  // This test asserts batched-span mechanics, so own the toggle explicitly
  // (a VUSION_UNBATCHED_CHARGES ablation run must not change what it tests).
  model.set_batching_enabled(true);
  {
    ChargeSpan outer(model);
    model.Charge(10);
    {
      ChargeSpan inner(model);
      model.Charge(20);
    }
    EXPECT_EQ(clock.now(), 0u);  // still pending: outer span is open
    model.set_batching_enabled(false);
    EXPECT_EQ(clock.now(), 30u);  // disabling settles the pending total
    model.Charge(5);
    EXPECT_EQ(clock.now(), 35u);  // unbatched even inside the span
    model.set_batching_enabled(true);
  }
  EXPECT_EQ(clock.now(), 35u);
}

TEST(VirtualClockTest, AdvanceAndReset) {
  VirtualClock clock;
  clock.Advance(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
  clock.Advance(3);
  EXPECT_EQ(clock.now(), 5 * kSecond + 3);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0u);
}

}  // namespace
}  // namespace vusion
