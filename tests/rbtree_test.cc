#include "src/container/rbtree.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/sim/rng.h"

namespace vusion {
namespace {

struct IntCompare {
  int operator()(const int& a, const int& b) const { return (a > b) - (a < b); }
};

using IntTree = RbTree<int, IntCompare>;

int ProbeFor(int target, const int& value) { return (target > value) - (target < value); }

TEST(RbTreeTest, InsertAndFind) {
  IntTree tree;
  tree.Insert(5);
  tree.Insert(3);
  tree.Insert(8);
  EXPECT_EQ(tree.size(), 3u);
  auto [node, steps] = tree.Find([](const int& v) { return ProbeFor(3, v); });
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->value, 3);
  EXPECT_GE(steps, 1u);
  auto [missing, missing_steps] = tree.Find([](const int& v) { return ProbeFor(42, v); });
  EXPECT_EQ(missing, nullptr);
}

TEST(RbTreeTest, InOrderIsSorted) {
  IntTree tree;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(static_cast<int>(rng.NextBelow(1000)));
  }
  std::vector<int> values;
  tree.InOrder([&](const int& v) { values.push_back(v); });
  EXPECT_EQ(values.size(), 200u);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST(RbTreeTest, RemoveLeafRootAndInner) {
  IntTree tree;
  auto [n5, s5] = tree.Insert(5);
  auto [n3, s3] = tree.Insert(3);
  auto [n8, s8] = tree.Insert(8);
  auto [n7, s7] = tree.Insert(7);
  (void)n5;
  (void)n7;
  tree.Remove(n3);  // leaf
  EXPECT_TRUE(tree.ValidateInvariants());
  tree.Remove(n8);  // inner with child
  EXPECT_TRUE(tree.ValidateInvariants());
  EXPECT_EQ(tree.size(), 2u);
  std::vector<int> values;
  tree.InOrder([&](const int& v) { values.push_back(v); });
  EXPECT_EQ(values, (std::vector<int>{5, 7}));
}

TEST(RbTreeTest, DuplicatesAllowed) {
  IntTree tree;
  tree.Insert(4);
  tree.Insert(4);
  tree.Insert(4);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(tree.ValidateInvariants());
}

TEST(RbTreeTest, ClearEmptiesTree) {
  IntTree tree;
  for (int i = 0; i < 50; ++i) {
    tree.Insert(i);
  }
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.ValidateInvariants());
  tree.Insert(1);
  EXPECT_EQ(tree.size(), 1u);
}

// Property test: random insert/remove interleavings preserve the red-black
// invariants and match a reference multiset.
class RbTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RbTreePropertyTest, RandomOperationsKeepInvariants) {
  const int operations = GetParam();
  IntTree tree;
  Rng rng(100 + operations);
  std::multimap<int, IntTree::Node*> live;
  for (int op = 0; op < operations; ++op) {
    if (live.empty() || rng.NextBool(0.6)) {
      const int value = static_cast<int>(rng.NextBelow(500));
      auto [node, steps] = tree.Insert(value);
      live.emplace(value, node);
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      tree.Remove(it->second);
      live.erase(it);
    }
    ASSERT_TRUE(tree.ValidateInvariants()) << "after op " << op;
    ASSERT_EQ(tree.size(), live.size());
  }
  // Final content check.
  std::vector<int> tree_values;
  tree.InOrder([&](const int& v) { tree_values.push_back(v); });
  std::vector<int> expected;
  for (const auto& [v, node] : live) {
    expected.push_back(v);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(tree_values, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RbTreePropertyTest,
                         ::testing::Values(10, 100, 500, 2000));

TEST(RbTreeTest, MoveConstruction) {
  IntTree tree;
  tree.Insert(1);
  tree.Insert(2);
  IntTree moved(std::move(tree));
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_TRUE(moved.ValidateInvariants());
}

}  // namespace
}  // namespace vusion
