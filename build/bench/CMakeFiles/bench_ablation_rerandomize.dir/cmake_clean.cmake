file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rerandomize.dir/bench_ablation_rerandomize.cc.o"
  "CMakeFiles/bench_ablation_rerandomize.dir/bench_ablation_rerandomize.cc.o.d"
  "bench_ablation_rerandomize"
  "bench_ablation_rerandomize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rerandomize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
