// Table 4: Postmark transactions per second under the four systems (3 runs each,
// mean/min/max as in the paper). Expected shape: within a few percent of no-dedup,
// VUsion-THP on par with KSM.

#include <algorithm>
#include <cstdio>

#include "src/workload/postmark_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("table4_postmark");
  reporter.Header("Table 4: Postmark transactions per second");
  DescribeEval(reporter, EngineKind::kVUsion);
  std::printf("%-12s %-12s %-12s %-12s\n", "system", "mean tx/s", "min tx/s", "max tx/s");
  for (const EngineKind kind : EvalEngines()) {
    double sum = 0.0;
    double lo = 1e18;
    double hi = 0.0;
    for (int run = 0; run < 3; ++run) {
      Scenario scenario(EvalScenario(kind));
      for (int i = 0; i < 3; ++i) {
        scenario.BootVm(EvalImage(), 10 + i);
      }
      Process& bench = scenario.machine().CreateProcess();
      PageCache cache(bench, 2048);
      scenario.RunFor(30 * kSecond);
      PostmarkWorkload::Config config;
      config.transactions = 12000;
      PostmarkWorkload postmark(bench, cache, config, 100 + run);
      const PostmarkResult result = postmark.Run();
      sum += result.tx_per_s;
      lo = std::min(lo, result.tx_per_s);
      hi = std::max(hi, result.tx_per_s);
      if (run == 2) {
        reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
      }
    }
    std::printf("%-12s %-12.1f %-12.1f %-12.1f\n", EngineKindName(kind), sum / 3.0, lo, hi);
    reporter.AddRow("postmark", {{"system", EngineKindName(kind)},
                                 {"mean_tx_per_s", sum / 3.0},
                                 {"min_tx_per_s", lo},
                                 {"max_tx_per_s", hi}});
  }
  std::printf("\npaper: no-dedup 3237, KSM 3222 (-1.5%%), VUsion 3179 (-2.9%%), "
              "VUsion THP 3246 (+0.2%%)\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
