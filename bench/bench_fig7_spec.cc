// Figure 7: performance overhead on the SPEC CPU2006-style suite relative to
// no-dedup, for KSM / VUsion / VUsion-THP. Expected shape: low single-digit
// percent overheads, VUsion adding a small delta over KSM (paper: KSM 2.2%,
// VUsion +2.7%, VUsion THP +2.4% overall by geometric mean).

#include <cstdio>
#include <map>
#include <vector>

#include "src/sim/stats.h"
#include "src/workload/spec_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void RunSuite(std::span<const SyntheticBenchmark> suite, const char* title,
              bench::Reporter& reporter) {
  reporter.Header(title);
  DescribeEval(reporter, EngineKind::kVUsion);
  // runtime[kind][bench]
  std::map<EngineKind, std::vector<double>> runtime;
  for (const EngineKind kind : EvalEngines()) {
    Scenario scenario(EvalScenario(kind));
    for (int i = 0; i < 3; ++i) {
      scenario.BootVm(EvalImage(), 10 + i);
    }
    // Load every benchmark's footprint, then let the fusion engine process the
    // resident (idle) memory - the steady state a minutes-long run experiences.
    std::vector<std::pair<Process*, SpecWorkload::Prepared>> prepared;
    for (const SyntheticBenchmark& bench : suite) {
      Process& proc = scenario.machine().CreateProcess();
      prepared.emplace_back(&proc, SpecWorkload::Prepare(proc, bench));
    }
    scenario.RunFor(60 * kSecond);
    Rng rng(17);
    for (auto& [proc, prep] : prepared) {
      runtime[kind].push_back(static_cast<double>(SpecWorkload::Run(*proc, prep, rng)));
    }
    reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  }
  std::printf("%-14s %-12s %-12s %-12s\n", "benchmark", "KSM %", "VUsion %", "VUsion-THP %");
  std::map<EngineKind, std::vector<double>> ratios;
  for (std::size_t b = 0; b < suite.size(); ++b) {
    const double base = runtime[EngineKind::kNone][b];
    std::printf("%-14s", suite[b].name);
    Json row = Json::Object();
    row.Set("benchmark", suite[b].name);
    for (const EngineKind kind :
         {EngineKind::kKsm, EngineKind::kVUsion, EngineKind::kVUsionThp}) {
      const double overhead = 100.0 * (runtime[kind][b] - base) / base;
      ratios[kind].push_back(runtime[kind][b] / base);
      std::printf(" %-12.2f", overhead);
      row.Set(std::string(EngineKindName(kind)) + "_overhead_pct", overhead);
    }
    reporter.AddRow("overhead", std::move(row));
    std::printf("\n");
  }
  std::printf("%-14s", "geomean");
  Json geomean = Json::Object();
  geomean.Set("benchmark", "geomean");
  for (const EngineKind kind :
       {EngineKind::kKsm, EngineKind::kVUsion, EngineKind::kVUsionThp}) {
    const double overhead = 100.0 * (GeometricMean(ratios[kind]) - 1.0);
    std::printf(" %-12.2f", overhead);
    geomean.Set(std::string(EngineKindName(kind)) + "_overhead_pct", overhead);
  }
  reporter.AddRow("overhead", std::move(geomean));
  std::printf("\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::bench::Reporter reporter("fig7_spec");
  vusion::RunSuite(vusion::SpecWorkload::Suite(),
                   "Figure 7: SPEC CPU2006 overhead vs no-dedup (%)", reporter);
  std::printf("\npaper: geomean KSM 2.2%%, VUsion 4.9%%, VUsion THP 4.6%% (absolute)\n");
  return 0;
}
