// Related work (paper §10.1): the post-Dedup-Est-Machina Windows design fuses only
// inside the compressed in-memory swap cache. This bench quantifies the paper's
// observation that it "misses substantial fusion opportunities compared to active
// page fusion": on a comfortable host it saves nothing; even under pressure its
// savings trail active fusion, and it pays major faults on re-access.

#include <cstdio>

#include "bench/bench_common.h"

namespace vusion {
namespace {

struct Row {
  double saved_mb = 0.0;
  std::uint64_t major_faults = 0;
};

Row Measure(EngineKind kind, FrameId host_frames, int vms) {
  ScenarioConfig config = EvalScenario(kind);
  config.machine.frame_count = host_frames;
  config.fusion.pool_frames = 2048;
  config.fusion.mc_low_watermark = host_frames / 2;  // pager watermark (scaled)
  Scenario scenario(config);
  for (int i = 0; i < vms; ++i) {
    scenario.BootVm(EvalImage(), 80 + i);
  }
  scenario.RunFor(200 * kSecond);
  Row row;
  row.saved_mb = static_cast<double>(scenario.engine()->frames_saved()) * kPageSize /
                 (1024.0 * 1024.0);
  row.major_faults = scenario.engine()->stats().unmerges_cow;
  // Touch a sample of guest memory to surface the re-access cost.
  for (const auto& process : scenario.machine().processes()) {
    for (const VmArea& vma : process->address_space().vmas().areas()) {
      for (Vpn vpn = vma.start; vpn < vma.end(); vpn += 16) {
        process->Read64(VpnToVaddr(vpn));
      }
    }
  }
  row.major_faults = scenario.engine()->stats().unmerges_cow;
  return row;
}

void Run() {
  bench::Reporter reporter("related_memory_combining");
  reporter.Header("Related work: swap-cache-only dedup (Memory Combining) vs active fusion");
  std::printf("%-14s %-16s %-16s %-14s\n", "host", "system", "saved MB", "major faults");
  struct Case {
    const char* label;
    FrameId frames;
    int vms;
  };
  const Case cases[] = {
      {"roomy (256MB)", 1u << 16, 4},
      {"tight (64MB)", 1u << 14, 5},
  };
  for (const Case& c : cases) {
    for (const EngineKind kind :
         {EngineKind::kKsm, EngineKind::kVUsion, EngineKind::kMemoryCombining}) {
      const Row row = Measure(kind, c.frames, c.vms);
      std::printf("%-14s %-16s %-16.1f %-14llu\n", c.label, EngineKindName(kind),
                  row.saved_mb, static_cast<unsigned long long>(row.major_faults));
      reporter.AddRow("savings", {{"host", c.label},
                                  {"system", EngineKindName(kind)},
                                  {"saved_mb", row.saved_mb},
                                  {"major_faults", row.major_faults}});
    }
  }
  std::printf("\npaper: \"this design misses substantial fusion opportunities compared\n"
              "to active page fusion\" - it saves nothing without memory pressure and\n"
              "pays major faults for what it does save.\n");
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
