// Savestate round-trip parity (DESIGN.md §13): saving a machine, restoring it
// into a brand-new (Machine, engine) pair, and continuing the workload must be
// bit-identical — stats, traces, timestamps, RNG streams — to never having
// stopped. Checked as byte equality of the final snapshots across every engine
// × scan-thread × delta-scan cell, plus restore→immediate-resave idempotence
// and fork-style fan-out divergence-only-through-inputs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/chaos/invariant_auditor.h"
#include "src/fusion/engine_factory.h"
#include "src/kernel/process.h"
#include "src/snapshot/machine_snapshot.h"

namespace vusion {
namespace {

constexpr std::size_t kProcesses = 3;
constexpr std::size_t kPagesPerProcess = 64;
constexpr std::uint64_t kPhase1Seed = 1111;
constexpr std::uint64_t kPhase2Seed = 2222;
constexpr int kPhaseSteps = 300;

struct Cell {
  EngineKind kind;
  std::size_t threads;
  bool delta;
  // Scan pipeline shape (scan_streaming defaults on in FusionConfig, so the
  // plain cells above already stream; these make the shapes explicit).
  bool streaming = true;
  std::size_t chunk_pages = 0;
};

std::string CellName(const ::testing::TestParamInfo<Cell>& info) {
  return std::string(EngineKindName(info.param.kind)) + "T" +
         std::to_string(info.param.threads) + (info.param.delta ? "DeltaOn" : "DeltaOff") +
         (info.param.streaming ? "" : "Barrier") +
         (info.param.chunk_pages != 0 ? "C" + std::to_string(info.param.chunk_pages) : "");
}

MachineConfig MakeMachineConfig() {
  MachineConfig config;
  config.frame_count = 1u << 14;
  config.seed = 99;
  return config;
}

FusionConfig MakeFusionConfig(const Cell& cell) {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 256;
  config.pool_frames = 1024;
  config.wpf_period = 10 * kMillisecond;
  config.scan_threads = cell.threads;
  config.delta_scan = cell.delta;
  config.scan_streaming = cell.streaming;
  config.scan_chunk_pages = cell.chunk_pages;
  return config;
}

// Boots the process set: duplicate-heavy pattern pages so every engine has
// merge work. Returns each process's region base (identical across runs — the
// boot sequence is deterministic — and valid verbatim on a restored machine).
std::vector<VirtAddr> SetupProcesses(Machine& machine) {
  std::vector<VirtAddr> bases;
  for (std::size_t p = 0; p < kProcesses; ++p) {
    Process& proc = machine.CreateProcess();
    const VirtAddr base =
        proc.AllocateRegion(kPagesPerProcess, PageType::kAnonymous, true, false);
    bases.push_back(base);
    for (std::size_t i = 0; i < kPagesPerProcess; ++i) {
      proc.SetupMapPattern(VaddrToVpn(base) + i, 0x9000 + (i % 16));
    }
  }
  return bases;
}

// One deterministic workload phase: a seeded mix of writes, reads, zero-fills,
// and idle periods. Replayed identically on the straight-through machine and
// on the restored one.
void RunPhase(Machine& machine, const std::vector<VirtAddr>& bases, std::uint64_t seed) {
  Rng rng(seed);
  const auto& procs = machine.processes();
  for (int step = 0; step < kPhaseSteps; ++step) {
    const std::size_t p = rng.NextBelow(bases.size());
    Process& proc = *procs[p];
    const std::uint64_t page = rng.NextBelow(kPagesPerProcess);
    const VirtAddr addr =
        bases[p] + page * kPageSize + rng.NextBelow(kPageSize / 8) * 8;
    try {
      switch (rng.NextBelow(5)) {
        case 0:
          proc.Write64(addr, rng.Next());
          break;
        case 1:
          (void)proc.Read64(addr);
          break;
        case 2:
          machine.Idle(rng.NextInRange(1, 4) * kMillisecond);
          break;
        case 3:
          proc.Write64(addr, 0);  // zero pages: merge food for every engine
          break;
        default:
          (void)proc.Read64(bases[p] + page * kPageSize);
          break;
      }
    } catch (const std::runtime_error&) {
      // Injected-fault retry limit (chaos variants only): abandoning the access
      // is part of the deterministic stream, so both runs abandon identically.
    }
  }
  machine.Idle(20 * kMillisecond);
}

// On mismatch, names the first differing section instead of dumping megabytes.
std::string DescribeFirstDiff(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) {
    std::string out = "sizes differ: " + std::to_string(a.size()) + " vs " +
                      std::to_string(b.size()) + "; per-section:";
    const snapshot::SnapshotInfo ia = snapshot::InspectSnapshot(a);
    const snapshot::SnapshotInfo ib = snapshot::InspectSnapshot(b);
    for (std::size_t i = 0; i < ia.sections.size() && i < ib.sections.size(); ++i) {
      if (ia.sections[i].size != ib.sections[i].size) {
        out += " " + ia.sections[i].name + "=" + std::to_string(ia.sections[i].size) +
               "/" + std::to_string(ib.sections[i].size);
      }
    }
    return out;
  }
  std::size_t pos = 0;
  while (pos < a.size() && a[pos] == b[pos]) {
    ++pos;
  }
  if (pos == a.size()) {
    return "identical";
  }
  const snapshot::SnapshotInfo info = snapshot::InspectSnapshot(a);
  for (const auto& section : info.sections) {
    if (pos >= section.offset && pos < section.offset + section.size) {
      return "first diff at byte " + std::to_string(pos) + " in section '" +
             section.name + "' (+" + std::to_string(pos - section.offset) + ")";
    }
  }
  return "first diff at byte " + std::to_string(pos) + " (framing)";
}

class SnapshotParityTest : public ::testing::TestWithParam<Cell> {};

TEST_P(SnapshotParityTest, SaveRestoreContinueIsBitIdentical) {
  const Cell cell = GetParam();

  // Run A: straight through both phases, then save.
  std::string straight;
  std::vector<VirtAddr> bases;
  {
    Machine machine(MakeMachineConfig());
    std::unique_ptr<FusionEngine> engine =
        MakeEngineExact(cell.kind, machine, MakeFusionConfig(cell));
    engine->Install();
    bases = SetupProcesses(machine);
    RunPhase(machine, bases, kPhase1Seed);
    RunPhase(machine, bases, kPhase2Seed);
    straight = snapshot::SaveSnapshot(machine, engine.get(), cell.kind);
    engine->Uninstall();
  }

  // Run B: phase 1 only, then save the midpoint.
  std::string midpoint;
  {
    Machine machine(MakeMachineConfig());
    std::unique_ptr<FusionEngine> engine =
        MakeEngineExact(cell.kind, machine, MakeFusionConfig(cell));
    engine->Install();
    const std::vector<VirtAddr> bases_b = SetupProcesses(machine);
    ASSERT_EQ(bases_b, bases) << "boot sequence must be deterministic";
    RunPhase(machine, bases, kPhase1Seed);
    midpoint = snapshot::SaveSnapshot(machine, engine.get(), cell.kind);
    engine->Uninstall();
  }

  // Restore→immediate resave must reproduce the midpoint byte for byte.
  {
    snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(midpoint);
    ASSERT_EQ(restored.kind, cell.kind);
    const std::string resave =
        snapshot::SaveSnapshot(*restored.machine, restored.engine.get(), restored.kind);
    EXPECT_TRUE(resave == midpoint) << DescribeFirstDiff(midpoint, resave);
  }

  // Run C: restore the midpoint into a fresh pair, continue with phase 2.
  std::string continued;
  {
    snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(midpoint);
    ASSERT_EQ(restored.kind, cell.kind);
    RunPhase(*restored.machine, bases, kPhase2Seed);
    // The continuation must also leave a consistent machine behind.
    const AuditReport report =
        InvariantAuditor(*restored.machine).Audit(restored.engine.get());
    EXPECT_TRUE(report.ok);
    for (const std::string& violation : report.violations) {
      ADD_FAILURE() << violation;
    }
    continued =
        snapshot::SaveSnapshot(*restored.machine, restored.engine.get(), restored.kind);
  }

  EXPECT_TRUE(straight == continued) << DescribeFirstDiff(straight, continued);
}

INSTANTIATE_TEST_SUITE_P(
    EngineMatrix, SnapshotParityTest,
    ::testing::Values(Cell{EngineKind::kKsm, 1, false}, Cell{EngineKind::kKsm, 1, true},
                      Cell{EngineKind::kKsm, 4, false}, Cell{EngineKind::kKsm, 4, true},
                      Cell{EngineKind::kWpf, 1, false}, Cell{EngineKind::kWpf, 1, true},
                      Cell{EngineKind::kWpf, 4, false}, Cell{EngineKind::kWpf, 4, true},
                      Cell{EngineKind::kVUsion, 1, false}, Cell{EngineKind::kVUsion, 1, true},
                      Cell{EngineKind::kVUsion, 4, false}, Cell{EngineKind::kVUsion, 4, true},
                      // Explicit pipeline shapes: barrier, and streaming at the
                      // maximally-interleaved chunk size.
                      Cell{EngineKind::kKsm, 4, false, false, 0},
                      Cell{EngineKind::kKsm, 4, false, true, 1},
                      Cell{EngineKind::kVUsion, 4, false, false, 0},
                      Cell{EngineKind::kVUsion, 4, false, true, 1},
                      Cell{EngineKind::kWpf, 4, false, true, 1}),
    CellName);

// The determinism fence (DESIGN.md §14): hash-memo validity is serialized in
// snapshots, so the streaming pipeline must leave EXACTLY the memo state the
// barrier shape leaves at the same config — a speculative snapshot taken at
// any generation other than the recorded pre-merge one is dropped, never
// installed, no matter how the worker/merge interleaving fell. (Memo COVERAGE
// may legitimately differ between the serial path and the pipelined path —
// phase 1 primes pages the serial body skips before hashing — which is fine:
// savestate determinism is per config.) Checked as byte equality of every
// snapshot section except "config" (which records the shape knobs themselves)
// between barrier and chunk=1 streaming runs of the same campaign.
TEST(SnapshotParityTest, StreamingShapeDoesNotLeakIntoSnapshotBytes) {
  const auto save_with = [](bool streaming, std::size_t chunk) {
    Cell cell{EngineKind::kKsm, 4, false, streaming, chunk};
    Machine machine(MakeMachineConfig());
    std::unique_ptr<FusionEngine> engine =
        MakeEngineExact(cell.kind, machine, MakeFusionConfig(cell));
    engine->Install();
    const std::vector<VirtAddr> bases = SetupProcesses(machine);
    RunPhase(machine, bases, kPhase1Seed);
    std::string image = snapshot::SaveSnapshot(machine, engine.get(), cell.kind);
    engine->Uninstall();
    return image;
  };
  const auto sections_except_config = [](const std::string& image) {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& s : snapshot::InspectSnapshot(image).sections) {
      if (s.name != "config") {
        out.emplace_back(s.name, image.substr(s.offset, s.size));
      }
    }
    return out;
  };
  const auto barrier = sections_except_config(save_with(false, 0));
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{0}}) {
    const auto streamed = sections_except_config(save_with(true, chunk));
    ASSERT_EQ(barrier.size(), streamed.size());
    for (std::size_t i = 0; i < barrier.size(); ++i) {
      EXPECT_EQ(barrier[i].first, streamed[i].first);
      EXPECT_TRUE(barrier[i].second == streamed[i].second)
          << "streaming (chunk=" << chunk << ") diverged in section '"
          << barrier[i].first << "'";
    }
  }
}

// Fork-style fan-out: clones restored from one buffer are fully independent
// deep copies — identical inputs keep them bit-identical, divergent inputs
// diverge only the machine they were applied to.
TEST(SnapshotFanOutTest, ClonesAreIndependentAndDeterministic) {
  const Cell cell{EngineKind::kVUsion, 1, false};
  std::string image;
  std::vector<VirtAddr> bases;
  {
    Machine machine(MakeMachineConfig());
    std::unique_ptr<FusionEngine> engine =
        MakeEngineExact(cell.kind, machine, MakeFusionConfig(cell));
    engine->Install();
    bases = SetupProcesses(machine);
    RunPhase(machine, bases, kPhase1Seed);
    image = snapshot::SaveSnapshot(machine, engine.get(), cell.kind);
    engine->Uninstall();
  }

  std::vector<snapshot::RestoredMachine> clones = snapshot::FanOut(image, 3);
  ASSERT_EQ(clones.size(), 3u);

  // Same inputs on clones 0 and 1; different phase seed on clone 2.
  RunPhase(*clones[0].machine, bases, kPhase2Seed);
  RunPhase(*clones[1].machine, bases, kPhase2Seed);
  RunPhase(*clones[2].machine, bases, kPhase2Seed + 1);

  const std::string s0 =
      snapshot::SaveSnapshot(*clones[0].machine, clones[0].engine.get(), clones[0].kind);
  const std::string s1 =
      snapshot::SaveSnapshot(*clones[1].machine, clones[1].engine.get(), clones[1].kind);
  const std::string s2 =
      snapshot::SaveSnapshot(*clones[2].machine, clones[2].engine.get(), clones[2].kind);
  EXPECT_TRUE(s0 == s1) << DescribeFirstDiff(s0, s1);
  EXPECT_NE(s0, s2);
}

// A baseline (engine-less) machine snapshots too: chaos repros and fleet
// templates save machines before any engine is installed.
TEST(SnapshotParityBaselineTest, NoEngineRoundTrip) {
  std::string image;
  {
    Machine machine(MakeMachineConfig());
    const std::vector<VirtAddr> bases = SetupProcesses(machine);
    RunPhase(machine, bases, kPhase1Seed);
    image = snapshot::SaveSnapshot(machine, nullptr, EngineKind::kNone);
  }
  snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(image);
  EXPECT_EQ(restored.kind, EngineKind::kNone);
  EXPECT_EQ(restored.engine, nullptr);
  const std::string resave =
      snapshot::SaveSnapshot(*restored.machine, nullptr, EngineKind::kNone);
  EXPECT_TRUE(resave == image) << DescribeFirstDiff(image, resave);
}

// Chaos state must ride along: the fault injector's RNG, visit counters, and
// recorded schedule have to resume exactly, or the fault stream after restore
// drifts from the straight run's.
TEST(SnapshotChaosTest, FaultInjectorStateRoundTrips) {
  const Cell cell{EngineKind::kVUsion, 1, false};
  auto boot_chaos = [](Machine& machine) {
    ChaosConfig config;
    config.seed = 5;
    config.SetAllRates(0.01);
    machine.EnableChaos(config);
  };

  std::string straight;
  std::vector<VirtAddr> bases;
  {
    Machine machine(MakeMachineConfig());
    boot_chaos(machine);
    std::unique_ptr<FusionEngine> engine =
        MakeEngineExact(cell.kind, machine, MakeFusionConfig(cell));
    engine->Install();
    bases = SetupProcesses(machine);
    RunPhase(machine, bases, kPhase1Seed);
    RunPhase(machine, bases, kPhase2Seed);
    straight = snapshot::SaveSnapshot(machine, engine.get(), cell.kind);
    engine->Uninstall();
  }

  std::string continued;
  {
    Machine machine(MakeMachineConfig());
    boot_chaos(machine);
    std::unique_ptr<FusionEngine> engine =
        MakeEngineExact(cell.kind, machine, MakeFusionConfig(cell));
    engine->Install();
    SetupProcesses(machine);
    RunPhase(machine, bases, kPhase1Seed);
    const std::string mid = snapshot::SaveSnapshot(machine, engine.get(), cell.kind);
    engine->Uninstall();
    snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(mid);
    ASSERT_NE(restored.machine->chaos(), nullptr);
    RunPhase(*restored.machine, bases, kPhase2Seed);
    continued =
        snapshot::SaveSnapshot(*restored.machine, restored.engine.get(), restored.kind);
  }

  EXPECT_TRUE(straight == continued) << DescribeFirstDiff(straight, continued);
}

// Idle-split identity through a snapshot: Idle(a) → save/restore → Idle(b)
// must equal Idle(a+b) straight through, including daemon wakeups in between.
TEST(SnapshotParityBaselineTest, IdleSplitAcrossSnapshotIsIdentity) {
  const Cell cell{EngineKind::kKsm, 1, false};
  std::string straight;
  {
    Machine machine(MakeMachineConfig());
    std::unique_ptr<FusionEngine> engine =
        MakeEngineExact(cell.kind, machine, MakeFusionConfig(cell));
    engine->Install();
    SetupProcesses(machine);
    machine.Idle(70 * kMillisecond);
    straight = snapshot::SaveSnapshot(machine, engine.get(), cell.kind);
    engine->Uninstall();
  }
  std::string split;
  {
    Machine machine(MakeMachineConfig());
    std::unique_ptr<FusionEngine> engine =
        MakeEngineExact(cell.kind, machine, MakeFusionConfig(cell));
    engine->Install();
    SetupProcesses(machine);
    machine.Idle(30 * kMillisecond);
    const std::string mid = snapshot::SaveSnapshot(machine, engine.get(), cell.kind);
    engine->Uninstall();
    snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(mid);
    restored.machine->Idle(40 * kMillisecond);
    split = snapshot::SaveSnapshot(*restored.machine, restored.engine.get(), restored.kind);
  }
  EXPECT_TRUE(straight == split) << DescribeFirstDiff(straight, split);
}

}  // namespace
}  // namespace vusion
