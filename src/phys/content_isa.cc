#include "src/phys/content_isa.h"

#include <cstdlib>
#include <cstring>

#include "src/phys/frame.h"

#if defined(__x86_64__) && !defined(VUSION_DISABLE_AVX2)
#define VUSION_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace vusion {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr std::size_t kLanes = 8;
constexpr std::size_t kWordsPerPage = kPageSize / 8;  // 512

// SplitMix64 finalizer; also the core of the pattern stream.
constexpr std::uint64_t Fin(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Distinct per-lane initial states so a word contributes differently depending
// on its position modulo kLanes.
constexpr std::uint64_t LaneInit(std::size_t lane) {
  return Fin(kFnvOffset + 0x9e3779b97f4a7c15ULL * (lane + 1));
}

std::uint64_t LoadWord(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, 8);
  return w;
}

// Folds the 8 lane accumulators into one digest. Shared by every ISA so the
// result is implementation independent.
std::uint64_t CombineLanes(const std::uint64_t lanes[kLanes]) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < kLanes; ++i) {
    h = (h ^ Fin(lanes[i])) * kFnvPrime;
  }
  return h;
}

// --- Scalar: straightforward loops, one word at a time. ---

std::uint64_t HashScalar(const std::uint8_t* page) {
  std::uint64_t lanes[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) {
    lanes[i] = LaneInit(i);
  }
  for (std::size_t w = 0; w < kWordsPerPage; ++w) {
    lanes[w % kLanes] = (lanes[w % kLanes] ^ LoadWord(page + w * 8)) * kFnvPrime;
  }
  return CombineLanes(lanes);
}

int CompareScalar(const std::uint8_t* a, const std::uint8_t* b) {
  for (std::size_t i = 0; i < kPageSize; ++i) {
    if (a[i] != b[i]) {
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

bool IsZeroScalar(const std::uint8_t* page) {
  for (std::size_t i = 0; i < kPageSize; ++i) {
    if (page[i] != 0) {
      return false;
    }
  }
  return true;
}

// --- Wordwise: 64-bit stripes, block-unrolled; auto-vectorizer friendly. ---

std::uint64_t HashWordwise(const std::uint8_t* page) {
  std::uint64_t lanes[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) {
    lanes[i] = LaneInit(i);
  }
  for (std::size_t block = 0; block < kWordsPerPage / kLanes; ++block) {
    const std::uint8_t* p = page + block * kLanes * 8;
    for (std::size_t i = 0; i < kLanes; ++i) {
      lanes[i] = (lanes[i] ^ LoadWord(p + i * 8)) * kFnvPrime;
    }
  }
  return CombineLanes(lanes);
}

int CompareWordwise(const std::uint8_t* a, const std::uint8_t* b) {
  for (std::size_t w = 0; w < kWordsPerPage; ++w) {
    const std::uint64_t wa = LoadWord(a + w * 8);
    const std::uint64_t wb = LoadWord(b + w * 8);
    if (wa != wb) {
      // memcmp order = lexicographic bytes = numeric order of byte-swapped
      // little-endian words.
      return __builtin_bswap64(wa) < __builtin_bswap64(wb) ? -1 : 1;
    }
  }
  return 0;
}

bool IsZeroWordwise(const std::uint8_t* page) {
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < kWordsPerPage; ++w) {
    acc |= LoadWord(page + w * 8);
  }
  return acc == 0;
}

#if VUSION_HAVE_AVX2

// 64x64->64 multiply by the constant kFnvPrime = 2^40 + 0x1b3:
//   v * P = v*0x1b3 + (v << 40)
//         = mul_epu32(v, 0x1b3) + ((v_hi * 0x1b3) << 32) + (v << 40)
// (high halves of the cross terms fall out of the 64-bit truncation).
__attribute__((target("avx2"))) inline __m256i MulFnvPrime(__m256i v) {
  const __m256i p = _mm256_set1_epi64x(0x1b3);
  const __m256i lo = _mm256_mul_epu32(v, p);
  const __m256i hi = _mm256_mullo_epi32(_mm256_srli_epi64(v, 32), p);
  return _mm256_add_epi64(_mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32)),
                          _mm256_slli_epi64(v, 40));
}

__attribute__((target("avx2"))) std::uint64_t HashAvx2(const std::uint8_t* page) {
  alignas(32) std::uint64_t init[kLanes];
  for (std::size_t i = 0; i < kLanes; ++i) {
    init[i] = LaneInit(i);
  }
  __m256i acc0 = _mm256_load_si256(reinterpret_cast<const __m256i*>(init));
  __m256i acc1 = _mm256_load_si256(reinterpret_cast<const __m256i*>(init + 4));
  for (std::size_t block = 0; block < kWordsPerPage / kLanes; ++block) {
    const auto* p = reinterpret_cast<const __m256i*>(page + block * kLanes * 8);
    acc0 = MulFnvPrime(_mm256_xor_si256(acc0, _mm256_loadu_si256(p)));
    acc1 = MulFnvPrime(_mm256_xor_si256(acc1, _mm256_loadu_si256(p + 1)));
  }
  alignas(32) std::uint64_t lanes[kLanes];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 4), acc1);
  return CombineLanes(lanes);
}

__attribute__((target("avx2"))) int CompareAvx2(const std::uint8_t* a,
                                               const std::uint8_t* b) {
  for (std::size_t off = 0; off < kPageSize; off += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + off));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + off));
    const unsigned eq =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xffffffffu) {
      const std::size_t i = off + static_cast<std::size_t>(__builtin_ctz(~eq));
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

__attribute__((target("avx2"))) bool IsZeroAvx2(const std::uint8_t* page) {
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t off = 0; off < kPageSize; off += 32) {
    acc = _mm256_or_si256(acc,
                          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(page + off)));
  }
  return _mm256_testz_si256(acc, acc) != 0;
}

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // VUSION_HAVE_AVX2

constexpr ContentOps kScalarOps = {ContentIsa::kScalar, "scalar", HashScalar,
                                   CompareScalar, IsZeroScalar};
constexpr ContentOps kWordwiseOps = {ContentIsa::kWordwise, "wordwise", HashWordwise,
                                     CompareWordwise, IsZeroWordwise};
#if VUSION_HAVE_AVX2
constexpr ContentOps kAvx2Ops = {ContentIsa::kAvx2, "avx2", HashAvx2, CompareAvx2,
                                 IsZeroAvx2};
#endif

}  // namespace

const char* ContentIsaName(ContentIsa isa) {
  switch (isa) {
    case ContentIsa::kScalar:
      return "scalar";
    case ContentIsa::kWordwise:
      return "wordwise";
    case ContentIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const ContentOps& GetContentOps(ContentIsa isa) {
  switch (isa) {
    case ContentIsa::kScalar:
      return kScalarOps;
    case ContentIsa::kWordwise:
      return kWordwiseOps;
    case ContentIsa::kAvx2:
#if VUSION_HAVE_AVX2
      if (CpuHasAvx2()) {
        return kAvx2Ops;
      }
#endif
      return kWordwiseOps;  // compiled out or CPU lacks it
  }
  return kWordwiseOps;
}

const ContentOps& ActiveContentOps() {
  static const ContentOps* const active = [] {
    ContentIsa isa = ContentIsa::kWordwise;
#if VUSION_HAVE_AVX2
    if (CpuHasAvx2()) {
      isa = ContentIsa::kAvx2;
    }
#endif
    if (const char* env = std::getenv("VUSION_CONTENT_ISA")) {
      if (std::strcmp(env, "scalar") == 0) {
        isa = ContentIsa::kScalar;
      } else if (std::strcmp(env, "wordwise") == 0) {
        isa = ContentIsa::kWordwise;
      } else if (std::strcmp(env, "avx2") == 0) {
        isa = ContentIsa::kAvx2;
      }
    }
    return &GetContentOps(isa);
  }();
  return *active;
}

std::uint64_t ZeroPageHash() {
  static const std::uint64_t hash = [] {
    alignas(32) std::uint8_t zeros[kPageSize] = {};
    return ActiveContentOps().hash_page(zeros);
  }();
  return hash;
}

std::uint64_t PatternWord(std::uint64_t seed, std::size_t word_index) {
  return Fin(seed + 0x632be59bd9b4e019ULL * (word_index + 1) + 0x9e3779b97f4a7c15ULL);
}

void ExpandPattern(std::uint64_t seed, std::uint8_t* out) {
  for (std::size_t w = 0; w < kWordsPerPage; ++w) {
    const std::uint64_t word = PatternWord(seed, w);
    std::memcpy(out + w * 8, &word, 8);
  }
}

}  // namespace vusion
