#include "src/workload/stream_workload.h"

namespace vusion {

namespace {
constexpr std::size_t kLine = 64;
}

StreamWorkload::StreamWorkload(Process& process, std::size_t array_pages)
    : process_(&process), array_pages_(array_pages) {
  a_ = process.AllocateRegion(array_pages, PageType::kAnonymous, /*mergeable=*/true, false);
  b_ = process.AllocateRegion(array_pages, PageType::kAnonymous, /*mergeable=*/true, false);
  c_ = process.AllocateRegion(array_pages, PageType::kAnonymous, /*mergeable=*/true, false);
  for (std::size_t i = 0; i < array_pages; ++i) {
    process.SetupMapPattern(VaddrToVpn(a_) + i, 0xa000 + i);
    process.SetupMapPattern(VaddrToVpn(b_) + i, 0xb000 + i);
    process.SetupMapPattern(VaddrToVpn(c_) + i, 0xc000 + i);
  }
}

double StreamWorkload::Kernel(std::size_t streams, std::size_t iterations) {
  Machine& machine = process_->machine();
  const SimTime start = machine.clock().now();
  std::uint64_t bytes = 0;
  for (std::size_t iter = 0; iter < iterations; ++iter) {
    for (std::size_t page = 0; page < array_pages_; ++page) {
      for (std::size_t off = 0; off < kPageSize; off += kLine) {
        const std::uint64_t delta = page * kPageSize + off;
        // Kernels read streams-1 arrays and write one; the untouched array is
        // still swept once per iteration (Stream alternates which arrays each
        // kernel uses, so none of them ever goes idle).
        process_->Read64(a_ + delta);
        if (streams >= 3) {
          process_->Read64(b_ + delta);
        } else if (off == 0) {
          process_->Read64(b_ + delta);
        }
        process_->Write64(c_ + delta, delta);
        bytes += streams * kLine;
      }
    }
  }
  const SimTime elapsed = machine.clock().now() - start;
  if (elapsed == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / (static_cast<double>(elapsed) / 1e9) / (1024.0 * 1024.0);
}

StreamResult StreamWorkload::Run(std::size_t iterations) {
  Kernel(3, 1);  // warm-up sweep over all three arrays (untimed)
  StreamResult result;
  result.copy_mbps = Kernel(2, iterations);   // c = a
  result.scale_mbps = Kernel(2, iterations);  // c = s*a
  result.add_mbps = Kernel(3, iterations);    // c = a + b
  result.triad_mbps = Kernel(3, iterations);  // c = a + s*b
  return result;
}

}  // namespace vusion
