// Deterministic scan pipeline shared by the fusion engines, in two host
// execution shapes (simulated results are bit-identical in both):
//
// Barrier (the PR-2 shape, still used when a phase hook is armed or no pool is
// available): phase 1 shards the quantum's pages across the worker pool; each
// worker resolves the page's PTE read-only, applies an optional engine-supplied
// read-only filter, and computes the frame's content-hash snapshot with
// PhysicalMemory::PeekHash — no tree, stats, RNG, clock, or trace access, and no
// writes to any simulated state. After a full join, phase 2 runs serially on the
// calling thread in the exact order the scan cursor produced the pages: each
// snapshot is primed into the frame memo (PrimeHash drops stale snapshots) and
// the engine's unchanged per-page scan body runs, charging simulated latencies
// exactly as the serial reference path does.
//
// Streaming (the decoupled shape; DESIGN.md §14): the join barrier is gone.
// A serial pre-pass on the calling thread performs the probe/resolve/filter
// steps (they read pre-merge state, so they cannot overlap the merge) and
// records each page's pre-merge content generation. Workers then hash fixed-size
// chunks concurrently *with the merge*, holding PhysicalMemory's scan gate
// shared (content mutators take it exclusive), and publish completion through
// the pool's ticket-ordered stream: chunk k is consumable once chunks 0..k are
// done. The calling thread consumes ready items in canonical order, helping to
// hash unclaimed chunks whenever it runs ahead of the workers. Hashing is
// speculative — the merge may mutate a frame before its chunk is consumed — so
// a snapshot is installed into the memo only when its generation still equals
// BOTH the recorded pre-merge generation (so streaming never installs a memo
// the barrier shape would not have: memo validity is serialized in savestates)
// AND the frame's live generation (PrimeHash's own staleness check). A dropped
// snapshot costs host time only: the merge body recomputes the hash on demand,
// charging identical simulated latencies. Conflicts are counted in ScanTiming.
//
// Either way, simulated stats, traces, and charged timestamps are bit-identical
// for every thread count, chunk size, and streaming setting; see DESIGN.md,
// "Parallel host, serial sim" and §14.

#ifndef VUSION_SRC_HOST_PARALLEL_SCAN_H_
#define VUSION_SRC_HOST_PARALLEL_SCAN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/host/thread_pool.h"
#include "src/mmu/address_space.h"
#include "src/phys/physical_memory.h"

namespace vusion {

class Process;

namespace host {

// One page selected for a wake quantum. The engine fills the identity fields at
// collection time; phase 1 (or the streaming pre-pass + workers) fills
// frame/snapshot; the merge hands the item back to the engine's callback.
struct ScanItem {
  Process* process = nullptr;       // engine cookie; filters may read it (immutable fields only)
  const AddressSpace* as = nullptr; // PTE resolution target; null if frame is preset
  std::uint32_t pid = 0;            // process id, valid even after the process dies
  Vpn vpn = 0;
  bool wrapped = false;             // cursor completed a full round before this page
  std::size_t index = 0;            // engine cookie (e.g. candidate array position)
  FrameId frame = kInvalidFrame;    // preset by the engine, or resolved pre-merge
  PhysicalMemory::HashSnapshot snapshot{};
  // Frame content generation observed before any of this batch's merging, the
  // determinism fence for speculative hashing: a snapshot taken at any other
  // generation is never primed into the memo.
  std::uint64_t premerge_gen = 0;
  bool hashed = false;
};

// Host wall-clock accounting for the scan sections, exposed so benches can
// report scan-only throughput, project the parallel critical path
// (phase1_cpu_ns / thread count), and measure pipeline overlap
// (1 - scan_wall / (phase1_wall + merge_wall) > 0 only when hashing and
// merging actually overlapped).
struct ScanTiming {
  std::uint64_t batches = 0;
  std::uint64_t scan_ns = 0;          // whole scan section (collection + both phases)
  std::uint64_t phase1_cpu_ns = 0;    // aggregate time inside hash chunks (sums across threads)
  std::uint64_t phase1_wall_ns = 0;   // span from hash start to last chunk completion
  std::uint64_t merge_wall_ns = 0;    // serial merge work (excludes streaming waits)
  std::uint64_t items = 0;            // pages pushed through the pipeline
  std::uint64_t speculative_hashes = 0;  // snapshots taken by hash workers
  std::uint64_t speculative_stale = 0;   // ...dropped because the merge got there first
  std::uint64_t streamed_batches = 0;    // batches that ran the decoupled shape
};

class ParallelScanPipeline {
 public:
  // pool may be null (or single-threaded); phase 1 then runs inline on the caller,
  // which is the degenerate-but-identical form of the same pipeline.
  ParallelScanPipeline(PhysicalMemory& memory, ThreadPool* pool)
      : memory_(&memory), pool_(pool) {}

  // The pool can move between runs (e.g. a Machine adopted into a Fleet shares
  // the fleet pool); engines refresh it at the top of every wake.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] ThreadPool* pool() const { return pool_; }

  // Streaming shape toggle + chunk size in pages (0 = auto). Both host-only:
  // simulated results are identical either way.
  void ConfigureStreaming(bool enabled, std::size_t chunk_pages) {
    streaming_enabled_ = enabled;
    chunk_pages_ = chunk_pages;
  }

  // Engine-supplied predicate deciding whether a resolved page is worth
  // hashing. Runs on worker threads in the barrier shape and on the calling
  // thread (pre-merge) in the streaming shape: it MUST only read state that no
  // merge code is concurrently mutating at evaluation time and must not write
  // anything. Null = hash every present page.
  using Phase1Filter = std::function<bool(const Pte&, const ScanItem&)>;

  // Engine-supplied fast-out for delta scanning: true means the engine expects
  // to replay this page from its pass cache, so resolving and hashing it would
  // be wasted work. Advisory only — the merge revalidates authoritatively, and
  // a page skipped here but rejected there simply hashes on demand. Same
  // read-only contract as Phase1Filter.
  using Phase1Probe = std::function<bool(const ScanItem&)>;

  // Runs the pipeline over `items` and invokes merge_one(item) serially for
  // every item, in order. Chunk/merge timing is accumulated into `timing` (the
  // engine wraps the whole scan section for scan_ns itself).
  // `between_phases`, when set, fires on the calling thread after all hashing
  // completed and before the first merge — the engine uses it to announce the
  // kHashed scan-phase boundary (a hook there may tear down processes, so the
  // engine's merge body re-validates each item). A non-null between_phases
  // forces the barrier shape: the boundary it announces only exists there.
  void Run(std::vector<ScanItem>& items, ScanTiming& timing,
           const Phase1Filter& filter,
           const std::function<void(ScanItem&)>& merge_one,
           const std::function<void()>& between_phases = nullptr,
           const Phase1Probe& probe = nullptr);

 private:
  void ResolveAndPeek(ScanItem& item, const Phase1Filter& filter) const;
  // Probe/resolve/filter only (no hash); records premerge_gen. The streaming
  // pre-pass form of phase 1's serial-state reads.
  void ResolvePreMerge(ScanItem& item, const Phase1Filter& filter,
                       const Phase1Probe& probe) const;
  void RunBarrier(std::vector<ScanItem>& items, ScanTiming& timing,
                  const Phase1Filter& filter,
                  const std::function<void(ScanItem&)>& merge_one,
                  const std::function<void()>& between_phases,
                  const Phase1Probe& probe);
  void RunStreaming(std::vector<ScanItem>& items, ScanTiming& timing,
                    const Phase1Filter& filter,
                    const std::function<void(ScanItem&)>& merge_one,
                    const Phase1Probe& probe);
  // Primes a hashed item's snapshot (conflict-checked) and counts it, then
  // hands the item to the engine. Shared by both shapes.
  void MergeOne(ScanItem& item, ScanTiming& timing,
                const std::function<void(ScanItem&)>& merge_one);

  PhysicalMemory* memory_;
  ThreadPool* pool_;
  bool streaming_enabled_ = false;
  std::size_t chunk_pages_ = 0;  // 0 = auto
};

}  // namespace host
}  // namespace vusion

#endif  // VUSION_SRC_HOST_PARALLEL_SCAN_H_
