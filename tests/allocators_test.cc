// Tests for the LinearAllocator (WPF's end-of-memory model) and the RandomizedPool
// (VUsion's Randomized Allocation).

#include <gtest/gtest.h>

#include <set>

#include "src/phys/linear_allocator.h"
#include "src/phys/randomized_pool.h"
#include "src/sim/ks_test.h"

namespace vusion {
namespace {

TEST(LinearAllocatorTest, AllocatesFromEndOfMemory) {
  PhysicalMemory mem(1024);
  BuddyAllocator buddy(mem);
  LinearAllocator linear(buddy, mem);
  const std::vector<FrameId> run = linear.AllocateRun(8);
  ASSERT_EQ(run.size(), 8u);
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_EQ(run[i], 1023u - i);  // contiguous, descending from the top
  }
}

TEST(LinearAllocatorTest, SkipsHolesLeftByInUseFrames) {
  PhysicalMemory mem(1024);
  BuddyAllocator buddy(mem);
  ASSERT_TRUE(buddy.AllocateSpecific(1022));  // someone else owns 1022
  LinearAllocator linear(buddy, mem);
  const std::vector<FrameId> run = linear.AllocateRun(3);
  ASSERT_EQ(run.size(), 3u);
  EXPECT_EQ(run[0], 1023u);
  EXPECT_EQ(run[1], 1021u);  // 1022 is a hole
  EXPECT_EQ(run[2], 1020u);
}

TEST(LinearAllocatorTest, ResetScanReusesFreedFrames) {
  // The reuse property behind the paper's Figure 3.
  PhysicalMemory mem(1024);
  BuddyAllocator buddy(mem);
  LinearAllocator linear(buddy, mem);
  const std::vector<FrameId> first = linear.AllocateRun(16);
  for (const FrameId f : first) {
    linear.Free(f);
  }
  linear.ResetScan();
  const std::vector<FrameId> second = linear.AllocateRun(16);
  EXPECT_EQ(first, second);  // near-perfect reuse
}

TEST(LinearAllocatorTest, StopsAtMemoryExhaustion) {
  PhysicalMemory mem(32);
  BuddyAllocator buddy(mem);
  LinearAllocator linear(buddy, mem);
  const std::vector<FrameId> run = linear.AllocateRun(64);
  EXPECT_EQ(run.size(), 32u);
  EXPECT_EQ(linear.Allocate(), kInvalidFrame);
}

TEST(RandomizedPoolTest, MaintainsPoolSize) {
  PhysicalMemory mem(4096);
  BuddyAllocator buddy(mem);
  RandomizedPool pool(buddy, 256, Rng(1));
  EXPECT_EQ(pool.pool_size(), 256u);
  EXPECT_NEAR(pool.entropy_bits(), 8.0, 1e-9);
  std::vector<FrameId> out;
  for (int i = 0; i < 100; ++i) {
    out.push_back(pool.Allocate());
    EXPECT_EQ(pool.pool_size(), 256u);  // refilled from buddy
  }
  for (const FrameId f : out) {
    pool.Free(f);
    EXPECT_EQ(pool.pool_size(), 256u);
  }
}

TEST(RandomizedPoolTest, NeverDoubleAllocates) {
  PhysicalMemory mem(2048);
  BuddyAllocator buddy(mem);
  RandomizedPool pool(buddy, 128, Rng(2));
  std::set<FrameId> live;
  Rng rng(3);
  std::vector<FrameId> held;
  for (int op = 0; op < 2000; ++op) {
    if (held.empty() || rng.NextBool(0.6)) {
      const FrameId f = pool.Allocate();
      ASSERT_NE(f, kInvalidFrame);
      ASSERT_TRUE(live.insert(f).second) << "frame " << f << " double-allocated";
      held.push_back(f);
    } else {
      const std::size_t idx = rng.NextBelow(held.size());
      pool.Free(held[idx]);
      live.erase(held[idx]);
      held[idx] = held.back();
      held.pop_back();
    }
  }
}

// Backing allocator handing out sequential frame ids, for observing pool behaviour
// independent of buddy-allocator ordering.
class SequentialAllocator final : public FrameAllocator {
 public:
  explicit SequentialAllocator(FrameId start) : next_(start) {}
  FrameId Allocate() override { return next_++; }
  void Free(FrameId) override {}
  [[nodiscard]] std::size_t free_count() const override { return ~std::size_t{0}; }

 private:
  FrameId next_;
};

TEST(RandomizedPoolTest, AllocationsAreUniformOverPool) {
  // The RA security property: allocation draws are uniform over the pool (KS test,
  // §9.1 style). The pool is preloaded with ids [0, 4096); refills start at 4096,
  // so every draw below 4096 is an original slot - their values must be uniform.
  SequentialAllocator backing(0);
  RandomizedPool pool(backing, 4096, Rng(4));
  std::vector<double> originals;
  for (int i = 0; i < 3000; ++i) {
    const FrameId f = pool.Allocate();
    if (f < 4096) {
      originals.push_back(static_cast<double>(f));
    }
  }
  ASSERT_GT(originals.size(), 2000u);
  const KsResult result = KsUniform(originals, 0.0, 4096.0);
  EXPECT_GT(result.p_value, 0.01) << "allocations not uniform, D=" << result.statistic;
}

TEST(RandomizedPoolTest, SpecificFrameReuseIsRare) {
  // The 2^-entropy reuse bound against reuse-based Flip Feng Shui.
  PhysicalMemory mem(8192);
  BuddyAllocator buddy(mem);
  RandomizedPool pool(buddy, 1024, Rng(5));
  int immediate_reuse = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const FrameId f = pool.Allocate();
    pool.Free(f);
    const FrameId g = pool.Allocate();
    immediate_reuse += (g == f) ? 1 : 0;
    pool.Free(g);
  }
  // Expected reuse probability 1/1024; allow generous slack.
  EXPECT_LT(immediate_reuse, 12);
}

TEST(RandomizedPoolTest, FallsBackWhenEmpty) {
  PhysicalMemory mem(64);
  BuddyAllocator buddy(mem);
  RandomizedPool pool(buddy, 0, Rng(6));
  EXPECT_EQ(pool.pool_size(), 0u);
  const FrameId f = pool.Allocate();
  EXPECT_NE(f, kInvalidFrame);  // plain buddy fallback
  pool.Free(f);
}

TEST(RandomizedPoolTest, ShrinksGracefullyUnderOom) {
  PhysicalMemory mem(128);
  BuddyAllocator buddy(mem);
  RandomizedPool pool(buddy, 128, Rng(7));  // consumes everything
  EXPECT_EQ(pool.pool_size(), 128u);
  // Buddy is empty: allocations shrink the pool instead of failing.
  for (int i = 0; i < 64; ++i) {
    EXPECT_NE(pool.Allocate(), kInvalidFrame);
  }
  EXPECT_EQ(pool.pool_size(), 64u);
}

}  // namespace
}  // namespace vusion
