file(REMOVE_RECURSE
  "CMakeFiles/engine_parity_test.dir/engine_parity_test.cc.o"
  "CMakeFiles/engine_parity_test.dir/engine_parity_test.cc.o.d"
  "engine_parity_test"
  "engine_parity_test.pdb"
  "engine_parity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
