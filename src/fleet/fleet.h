// Fleet: one clock, many machines (see DESIGN.md §12).
//
// A Fleet owns N independent Scenario instances (one Machine + engine + VMs
// each) and steps them in lockstep under one shared virtual clock: fleet time
// advances in fixed quanta, every Machine is advanced to the quantum edge, and
// a deterministic barrier separates quanta. Machines share no mutable state —
// each has its own VirtualClock, Rng, LatencyModel, and TraceBuffer — so the
// host may step any subset of them concurrently without changing a single
// simulated bit. This lifts the "parallel host, serial sim" contract one
// level: host threads parallelize ACROSS Machines here, exactly as the scan
// pipeline parallelizes WITHIN one Machine, and FleetParityTest proves the
// results bit-identical to serial stepping at any thread count.
//
// Scheduling uses host::ThreadPool::ParallelTasks with per-Machine affinity:
// Machine m's home thread is m % host_threads quantum after quantum, so a
// Machine's working set stays warm in one host core's cache while an
// unbalanced quantum still load-balances by stealing.
//
// Memory frugality: same-image VMs across Machines boot from ONE shared
// read-only VmImageTemplate (the seed recipe is computed once, not N times),
// page content stays lazy behind pattern seeds, and the per-Machine fixed
// costs (LLC line array, trace ring) are allocated only on first use — so
// hundreds of booted Machines fit in host RAM. Fleet::CollectFootprint
// reports the measured per-Machine resident overhead.

#ifndef VUSION_SRC_FLEET_FLEET_H_
#define VUSION_SRC_FLEET_FLEET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/workload/scenario.h"

namespace vusion::host {
class ThreadPool;
}  // namespace vusion::host

namespace vusion::fleet {

struct FleetConfig {
  std::size_t machine_count = 16;
  // Host threads stepping the fleet (1 = serial reference). Overridable via
  // VUSION_FLEET_THREADS; never affects simulated results, only wall-clock.
  std::size_t host_threads = 1;
  // Virtual-clock quantum: every Machine advances exactly this far between
  // barriers. Part of the simulated schedule (NOT a host tuning knob): all
  // daemon work lands at the same virtual timestamps regardless of threads.
  SimTime quantum = 1'000'000;  // 1 ms
  // Per-Machine scenario template. Machine m runs this config with
  // machine.seed offset by m, so siblings see different RNG streams (latency
  // noise, engine randomization) over identical images.
  ScenarioConfig scenario;
  // VMs booted per Machine. VM j of EVERY machine boots the same
  // (image, instance seed) pair from one shared template — cross-Machine
  // duplicates are exactly what fleet-scale fusion studies need — while
  // per-machine RNG streams differentiate the dynamics.
  std::size_t vms_per_machine = 2;
  // Images for the per-Machine VM set; empty = VmImage::CatalogImage(j % 44).
  std::vector<VmImageSpec> images;

  // Applies VUSION_FLEET_THREADS (positive integer) to host_threads. The Fleet
  // constructor calls this itself (the environment wins), so callers only need
  // it to inspect the effective value up front.
  void ApplyEnvOverrides();
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] Scenario& member(std::size_t m) { return *members_[m]; }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  // Fleet virtual time: every member's clock reads this at each barrier.
  [[nodiscard]] SimTime now() const { return now_; }

  // Boots vms_per_machine VMs into every Machine from shared templates
  // (host-parallel across Machines; untimed setup, deterministic).
  void BootAll();

  // Optional per-quantum workload hook, run on machine m's stepping thread at
  // the start of each of m's quanta, before the Idle that advances its clock.
  // Must touch ONLY machine m's state (the fleet determinism contract).
  using QuantumHook = std::function<void(std::size_t machine, Scenario& member)>;
  void SetQuantumHook(QuantumHook hook) { hook_ = std::move(hook); }

  // Advances fleet time by `duration`, stepping every Machine to each quantum
  // edge with a barrier between quanta (a Machine whose daemon work overran an
  // edge waits out quanta until fleet time catches up). A trailing partial
  // quantum is stepped as-is, so RunFor(d) always advances fleet time by
  // exactly d; member clocks end at >= now(), bit-identically at any thread
  // count.
  void RunFor(SimTime duration);

  // --- Host-side scaling telemetry (never touches simulated state) ---

  // Per-quantum host cost: sum over Machines and max over Machines of the
  // per-Machine step time. projected_ns(T) = sum over quanta of
  // max(sum/T, max) — the barrier makes each quantum's critical path the
  // slower of perfect division and the single slowest Machine.
  struct QuantumCost {
    std::uint64_t sum_ns = 0;
    std::uint64_t max_ns = 0;
  };
  [[nodiscard]] const std::vector<QuantumCost>& quantum_costs() const { return quantum_costs_; }
  [[nodiscard]] double ProjectedRuntimeNs(std::size_t host_threads) const;

  // --- Fleet aggregation ---

  // Rolls up every member's metrics into one snapshot, each entry tagged with
  // a machine-id label ("machine" = decimal index), members in id order.
  [[nodiscard]] MetricsSnapshot CollectMetrics();

  struct FootprintSummary {
    std::size_t machines = 0;
    std::size_t total_bytes = 0;         // sum of per-Machine footprints
    std::size_t max_machine_bytes = 0;   // heaviest member
    std::size_t template_bytes = 0;      // shared boot templates (counted once)
    [[nodiscard]] double mean_machine_bytes() const {
      return machines == 0 ? 0.0 : static_cast<double>(total_bytes) / static_cast<double>(machines);
    }
  };
  [[nodiscard]] FootprintSummary CollectFootprint();

 private:
  void StepMachine(std::size_t m, SimTime quantum);

  FleetConfig config_;
  std::vector<std::unique_ptr<Scenario>> members_;
  std::vector<std::shared_ptr<const VmImageTemplate>> templates_;
  std::unique_ptr<host::ThreadPool> pool_;
  QuantumHook hook_;
  SimTime now_ = 0;
  std::vector<std::uint64_t> step_ns_;  // per-Machine scratch for the current quantum
  std::vector<QuantumCost> quantum_costs_;
};

}  // namespace vusion::fleet

#endif  // VUSION_SRC_FLEET_FLEET_H_
