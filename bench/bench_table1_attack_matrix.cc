// Table 1: every attack from the paper run against KSM, WPF, and VUsion.
// Expected shape: all six attacks succeed against at least one insecure system;
// VUsion (SB + RA) stops all of them.

#include <cstdio>
#include <functional>

#include "src/attack/cain_attack.h"
#include "src/attack/cow_side_channel.h"
#include "src/attack/dedup_est_machina.h"
#include "src/attack/flip_feng_shui.h"
#include "src/attack/flush_reload_attack.h"
#include "src/attack/page_color_attack.h"
#include "src/attack/reuse_flip_feng_shui.h"
#include "src/attack/row_buffer_attack.h"
#include "src/attack/translation_attack.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

struct AttackRow {
  const char* name;
  const char* mechanism;
  const char* mitigation;
  std::function<AttackOutcome(EngineKind, std::uint64_t)> run;
};

void Run() {
  bench::Reporter reporter("table1_attack_matrix");
  reporter.Header("Table 1: attacks against page fusion and their mitigations");
  const AttackRow rows[] = {
      {"Copy-on-write", "Unmerge", "SB", CowSideChannel::Run},
      {"CAIN ASLR brute-force", "Unmerge", "SB",
       [](EngineKind kind, std::uint64_t seed) { return CainAttack::Run(kind, seed); }},
      {"DEM partial leak", "Unmerge", "SB",
       [](EngineKind kind, std::uint64_t seed) {
         return DedupEstMachina::RunPartialLeak(kind, seed);
       }},
      {"DEM birthday", "Unmerge", "SB",
       [](EngineKind kind, std::uint64_t seed) {
         return DedupEstMachina::RunBirthday(kind, seed);
       }},
      {"Page color (new)", "Merge", "SB", PageColorAttack::Run},
      {"Page sharing (new)", "Merge", "SB", FlushReloadAttack::Run},
      {"Row buffer (analysis)", "Merge", "SB", RowBufferAttack::Run},
      {"Translation (new)", "Merge", "SB", TranslationAttack::Run},
      {"Flip Feng Shui", "Merge", "RA", FlipFengShui::Run},
      {"Reuse-based FFS (new)", "Reuse", "RA", ReuseFlipFengShui::Run},
  };
  const EngineKind targets[] = {EngineKind::kKsm, EngineKind::kWpf, EngineKind::kVUsion};

  std::printf("%-24s %-9s %-10s %-10s %-10s %-10s\n", "attack", "mechanism", "mitigation",
              "KSM", "WPF", "VUsion");
  bool vusion_secure = true;
  for (const AttackRow& row : rows) {
    std::printf("%-24s %-9s %-10s ", row.name, row.mechanism, row.mitigation);
    Json json_row = Json::Object();
    json_row.Set("attack", row.name);
    json_row.Set("mechanism", row.mechanism);
    json_row.Set("mitigation", row.mitigation);
    for (const EngineKind target : targets) {
      const AttackOutcome outcome = row.run(target, 1);
      std::printf("%-10s ", outcome.success ? "BROKEN" : "safe");
      json_row.Set(EngineKindName(target), outcome.success ? "BROKEN" : "safe");
      if (target == EngineKind::kVUsion && outcome.success) {
        vusion_secure = false;
      }
    }
    reporter.AddRow("attacks", std::move(json_row));
    std::printf("\n");
  }
  std::printf("\nVUsion stops all attacks: %s (paper: yes)\n", vusion_secure ? "yes" : "NO");
  reporter.AddRow("verdict", {{"vusion_stops_all_attacks", vusion_secure}});
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
