#include "src/fusion/deferred_free.h"

namespace vusion {

void DeferredFreeQueue::Push(FrameId frame) {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().queue_op);
  // The frame is leaving its shared life; clear the sharer refcount so the
  // kernel's fork/CoW machinery never mistakes a recycled frame for a shared one.
  machine_->memory().SetRefcount(frame, 0);
  frames_.push_back(frame);
}

void DeferredFreeQueue::PushDummy() {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().queue_op);
  ++dummies_;
}

void DeferredFreeQueue::Drain(FrameAllocator& sink) {
  LatencyModel& lm = machine_->latency();
  for (const FrameId frame : frames_) {
    machine_->FlushFrame(frame);
    lm.Charge(lm.config().buddy_free);
    sink.Free(frame);
  }
  frames_.clear();
  dummies_ = 0;
}

}  // namespace vusion
