# Empty compiler generated dependencies file for bench_table3_page_types.
# This may be replaced when dependencies are built.
