file(REMOVE_RECURSE
  "CMakeFiles/vusion_cache.dir/cache/eviction_set.cc.o"
  "CMakeFiles/vusion_cache.dir/cache/eviction_set.cc.o.d"
  "CMakeFiles/vusion_cache.dir/cache/llc.cc.o"
  "CMakeFiles/vusion_cache.dir/cache/llc.cc.o.d"
  "libvusion_cache.a"
  "libvusion_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
