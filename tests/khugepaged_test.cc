#include "src/kernel/khugepaged.h"

#include <gtest/gtest.h>

#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 8192;
  return config;
}

KhugepagedConfig FastKhugepaged() {
  KhugepagedConfig config;
  config.period = 1 * kMillisecond;
  config.ranges_per_wake = 64;
  return config;
}

// Maps a fully-populated, recently-accessed 512-page range.
VirtAddr MapActiveRange(Process& p) {
  const VirtAddr base =
      p.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, false, true);
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, 0x4000 + i);
    p.address_space().UpdateFlags(VaddrToVpn(base) + i, kPteAccessed, 0);
  }
  return base;
}

TEST(KhugepagedTest, CollapsesActiveRange) {
  Machine machine(SmallMachine());
  Khugepaged& khp = machine.EnableKhugepaged(FastKhugepaged());
  Process& p = machine.CreateProcess();
  const VirtAddr base = MapActiveRange(p);
  const std::uint64_t word_before = machine.memory().ReadU64(
      p.TranslateFrame(VaddrToVpn(base) + 9), 16);
  machine.Idle(10 * kMillisecond);
  EXPECT_GE(khp.collapses(), 1u);
  EXPECT_TRUE(p.address_space().IsHuge(VaddrToVpn(base)));
  // Contents preserved across the collapse copy.
  EXPECT_EQ(p.Read64(base + 9 * kPageSize + 16), word_before);
}

TEST(KhugepagedTest, SkipsIdleRange) {
  Machine machine(SmallMachine());
  KhugepagedConfig config = FastKhugepaged();
  config.min_active_subpages = 1;
  machine.EnableKhugepaged(config);
  Process& p = machine.CreateProcess();
  const VirtAddr base =
      p.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, false, true);
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, 0x5000 + i);  // accessed bit NOT set
  }
  machine.Idle(10 * kMillisecond);
  EXPECT_FALSE(p.address_space().IsHuge(VaddrToVpn(base)));
}

TEST(KhugepagedTest, ActivityThresholdGates) {
  Machine machine(SmallMachine());
  KhugepagedConfig config = FastKhugepaged();
  config.min_active_subpages = 64;
  machine.EnableKhugepaged(config);
  Process& p = machine.CreateProcess();
  const VirtAddr base =
      p.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, false, true);
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, 0x6000 + i);
  }
  // Only 32 active subpages: below the n=64 threshold.
  for (std::size_t i = 0; i < 32; ++i) {
    p.address_space().UpdateFlags(VaddrToVpn(base) + i, kPteAccessed, 0);
  }
  machine.Idle(5 * kMillisecond);
  EXPECT_FALSE(p.address_space().IsHuge(VaddrToVpn(base)));
  // Raise activity above the threshold.
  for (std::size_t i = 0; i < 80; ++i) {
    p.address_space().UpdateFlags(VaddrToVpn(base) + i, kPteAccessed, 0);
  }
  machine.Idle(5 * kMillisecond);
  EXPECT_TRUE(p.address_space().IsHuge(VaddrToVpn(base)));
}

TEST(KhugepagedTest, SkipsPartiallyMappedRange) {
  Machine machine(SmallMachine());
  machine.EnableKhugepaged(FastKhugepaged());
  Process& p = machine.CreateProcess();
  const VirtAddr base = MapActiveRange(p);
  p.SetupUnmap(VaddrToVpn(base) + 100);  // hole
  machine.Idle(10 * kMillisecond);
  EXPECT_FALSE(p.address_space().IsHuge(VaddrToVpn(base)));
}

namespace policy_test {

class VetoPolicy final : public SharingPolicy {
 public:
  bool HandleFault(Process&, const PageFault&) override { return false; }
  bool OnUnmap(Process&, Vpn) override { return false; }
  bool AllowCollapse(Process&, Vpn) override {
    ++asked;
    return allow;
  }
  bool PrepareCollapse(Process&, Vpn) override {
    ++prepared;
    return true;
  }

  bool allow = false;
  int asked = 0;
  int prepared = 0;
};

}  // namespace policy_test

TEST(KhugepagedTest, PolicyVetoBlocksCollapse) {
  Machine machine(SmallMachine());
  machine.EnableKhugepaged(FastKhugepaged());
  policy_test::VetoPolicy policy;
  machine.SetSharingPolicy(&policy);
  Process& p = machine.CreateProcess();
  const VirtAddr base = MapActiveRange(p);
  machine.Idle(10 * kMillisecond);
  EXPECT_GT(policy.asked, 0);
  EXPECT_EQ(policy.prepared, 0);  // Prepare must not run after a veto
  EXPECT_FALSE(p.address_space().IsHuge(VaddrToVpn(base)));
  policy.allow = true;
  machine.Idle(10 * kMillisecond);
  EXPECT_GT(policy.prepared, 0);
  EXPECT_TRUE(p.address_space().IsHuge(VaddrToVpn(base)));
}

TEST(KhugepagedTest, CollapseFreesOldFrames) {
  Machine machine(SmallMachine());
  machine.EnableKhugepaged(FastKhugepaged());
  Process& p = machine.CreateProcess();
  MapActiveRange(p);
  const std::size_t before = machine.memory().allocated_count();
  machine.Idle(10 * kMillisecond);
  // 512 small frames freed, one 512-frame block allocated, and the now-unneeded
  // page-table leaf node freed: net minus one frame.
  EXPECT_EQ(machine.memory().allocated_count(), before - 1);
}


TEST(AdaptiveKhugepagedTest, ThresholdTracksMemoryPressure) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;  // 16384 frames
  Machine machine(machine_config);
  KhugepagedConfig config;
  config.period = 1 * kMillisecond;
  config.adaptive_n = true;
  config.pressure_low_frames = 4096;
  config.pressure_high_frames = 12288;
  Khugepaged& khp = machine.EnableKhugepaged(config);
  machine.Idle(2 * kMillisecond);
  EXPECT_EQ(khp.current_n(), config.n_min);  // fresh machine: ample memory

  // Consume memory until pressure: the threshold must climb.
  Process& p = machine.CreateProcess();
  const VirtAddr hog = p.AllocateRegion(13000, PageType::kAnonymous, false, false);
  for (std::size_t i = 0; i < 13000; ++i) {
    p.SetupMapPattern(VaddrToVpn(hog) + i, i);
  }
  machine.Idle(2 * kMillisecond);
  EXPECT_EQ(khp.current_n(), config.n_max);

  // Release half: the threshold interpolates between the extremes.
  for (std::size_t i = 0; i < 7000; ++i) {
    p.SetupUnmap(VaddrToVpn(hog) + i);
  }
  machine.Idle(2 * kMillisecond);
  EXPECT_GT(khp.current_n(), config.n_min);
  EXPECT_LT(khp.current_n(), config.n_max);
}

TEST(AdaptiveKhugepagedTest, PressureStopsCollapses) {
  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  Machine machine(machine_config);
  KhugepagedConfig config = FastKhugepaged();
  config.adaptive_n = true;
  config.pressure_low_frames = 2048;
  config.pressure_high_frames = 12000;
  Khugepaged& khp = machine.EnableKhugepaged(config);
  Process& p = machine.CreateProcess();
  // Fill most of memory so the machine is under pressure.
  const VirtAddr hog = p.AllocateRegion(11500, PageType::kAnonymous, false, false);
  for (std::size_t i = 0; i < 11500; ++i) {
    p.SetupMapPattern(VaddrToVpn(hog) + i, i);
  }
  // A sparsely-active candidate range: only a handful of hot subpages.
  const VirtAddr range = MapActiveRange(p);
  for (std::size_t i = 8; i < kPagesPerHugePage; ++i) {
    p.address_space().UpdateFlags(VaddrToVpn(range) + i, 0, kPteAccessed);
  }
  machine.Idle(10 * kMillisecond);
  EXPECT_FALSE(p.address_space().IsHuge(VaddrToVpn(range)));  // n is high: refused
  EXPECT_GE(khp.current_n(), 100u);
}

}  // namespace
}  // namespace vusion
