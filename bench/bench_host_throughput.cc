// Host (wall-clock) scan throughput. Two experiments, one JSON:
//
// 1. Fingerprint-ordered trees versus the byte-ordered ablation
//    (FusionConfig::byte_ordered_trees) on the diverse-VM scenario. Best-of-3
//    wall time per (engine, mode) so scheduler jitter cannot invert the ratio.
//
// 2. A --threads sweep (default 1,2,4,8) of the parallel scan pipeline
//    (FusionConfig::scan_threads) on a churn variant of the same scenario where
//    guests keep dirtying their unique pages, so per-wake content hashing — the
//    phase-1 work the pipeline shards across workers — dominates the scan path.
//
// Both experiments measure the simulator's own cost, not modeled latency:
// simulated statistics and charged latencies are bit-identical across modes and
// thread counts (the bench re-checks this; engine_parity_test proves it). The
// sweep reports scan-section throughput from ScanTiming::scan_ns, both measured
// and projected: on hosts with fewer cores than threads the measured wall time
// cannot speed up, so the critical path is projected from the measured phase-1
// aggregate as scan_ns - phase1_ns + phase1_ns / threads (serial phase
// unchanged, sharded phase divided across workers). The JSON records which
// basis ("measured" when host_cpus >= threads, else "projected") produced the
// headline. Results go to stdout and BENCH_host_throughput.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"

namespace vusion {
namespace {

constexpr std::size_t kVms = 4;            // 2-4 VMs per the harness spec
constexpr std::size_t kGuestPages = 4096;  // 16 MB guests
constexpr SimTime kRunTime = 120 * kSecond;
constexpr int kRepeats = 3;  // best-of-3: min wall time per configuration

// Diverse-VM content model: near-duplicate pages. Every page shares one long
// common prefix (think zeroed-then-initialized structures, common library/page
// cache contents) and differs only in a trailing 8-byte tag: one quarter are
// cross-VM duplicate groups (fusable), the rest unique per (vm, page). This is
// the realistic worst case for byte-ordered trees — every tree comparison scans
// ~4 KB before the first differing byte — and the best case fingerprints target:
// one cached-hash integer compare.
constexpr std::uint64_t kCommonSeed = 0xc0ffee;
constexpr std::size_t kTailOffset = kPageSize - 8;
constexpr std::size_t kDuplicateGroups = 512;

// Churn sweep: smaller guests, more steps. Each step rewrites the tag of every
// unique page (duplicates stay merged), so the next scan round re-hashes ~3/4 of
// all pages — the hash-bound regime the parallel pipeline targets.
constexpr std::size_t kChurnGuestPages = 2048;
constexpr std::size_t kChurnSteps = 40;
constexpr SimTime kChurnStepTime = 500 * kMillisecond;

struct SimOutcome {
  std::uint64_t pages_scanned = 0;
  std::uint64_t merges = 0;
  std::uint64_t frames_saved = 0;

  bool operator==(const SimOutcome&) const = default;
};

struct RunResult {
  std::string engine;
  std::string mode;
  SimOutcome sim;
  double wall_seconds = 0.0;
  double pages_per_second = 0.0;
  double end_to_end_seconds = 0.0;  // whole scenario incl. boot
};

struct SweepResult {
  std::string engine;
  std::size_t threads = 1;
  SimOutcome sim;
  double wall_seconds = 0.0;      // whole churn loop (writes + scans)
  double scan_seconds = 0.0;      // scan sections only (ScanTiming::scan_ns)
  double phase1_seconds = 0.0;    // aggregate phase-1 chunk time
  double projected_seconds = 0.0; // scan - phase1 + phase1/threads
  std::uint64_t items = 0;
  double measured_pps = 0.0;
  double projected_pps = 0.0;
};

SimOutcome CaptureOutcome(Scenario& scenario) {
  SimOutcome out;
  out.pages_scanned = scenario.engine()->stats().pages_scanned;
  out.merges = scenario.engine()->stats().merges;
  out.frames_saved = scenario.engine()->frames_saved();
  return out;
}

ScenarioConfig ThroughputScenario(EngineKind kind) {
  ScenarioConfig config = EvalScenario(kind);
  config.machine.frame_count = 1u << 17;  // 512 MB host
  config.fusion.pages_per_wake = 400;     // scan-heavy: stress the hot path
  config.fusion.pool_frames = 8192;
  return config;
}

RunResult RunModeOnce(EngineKind kind, bool byte_ordered) {
  const auto t0 = std::chrono::steady_clock::now();
  ScenarioConfig config = ThroughputScenario(kind);
  config.fusion.byte_ordered_trees = byte_ordered;
  Scenario scenario(config);
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& vm = scenario.machine().CreateProcess();
    const VirtAddr base =
        vm.AllocateRegion(kGuestPages, PageType::kAnonymous, true, false);
    for (std::size_t i = 0; i < kGuestPages; ++i) {
      vm.SetupMapPattern(VaddrToVpn(base) + i, kCommonSeed);
      // The tail write materializes the page: common prefix + distinguishing tag.
      const bool duplicate = i % 4 == 0;
      const std::uint64_t tag = duplicate
                                    ? 0x1000000 + i % kDuplicateGroups
                                    : 0x2000000 + (p << 32) + i;
      vm.Write64(base + i * kPageSize + kTailOffset, tag);
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  scenario.RunFor(kRunTime);
  const auto t2 = std::chrono::steady_clock::now();

  RunResult result;
  result.engine = scenario.engine()->name();
  result.mode = byte_ordered ? "byte-ordered" : "fingerprint";
  result.sim = CaptureOutcome(scenario);
  result.wall_seconds = std::chrono::duration<double>(t2 - t1).count();
  result.pages_per_second =
      result.wall_seconds > 0 ? static_cast<double>(result.sim.pages_scanned) / result.wall_seconds
                              : 0.0;
  result.end_to_end_seconds = std::chrono::duration<double>(t2 - t0).count();
  return result;
}

// Best-of-kRepeats wall time, with the two modes interleaved (byte, fp, byte,
// fp, ...) so a slow environmental window penalizes both modes equally instead
// of whichever happened to run inside it. Simulated outcomes must agree across
// repeats (the simulator is deterministic); the bench aborts loudly otherwise.
std::pair<RunResult, RunResult> RunModePair(EngineKind kind) {
  std::pair<RunResult, RunResult> best = {RunModeOnce(kind, true),
                                          RunModeOnce(kind, false)};
  for (int r = 1; r < kRepeats; ++r) {
    for (RunResult* slot : {&best.first, &best.second}) {
      RunResult next = RunModeOnce(kind, slot->mode == "byte-ordered");
      if (!(next.sim == slot->sim)) {
        std::fprintf(stderr, "FATAL: nondeterministic outcome for %s/%s\n",
                     next.engine.c_str(), next.mode.c_str());
        std::exit(1);
      }
      if (next.wall_seconds < slot->wall_seconds) {
        *slot = next;
      }
    }
  }
  return best;
}

SweepResult RunSweepOnce(EngineKind kind, std::size_t threads) {
  ScenarioConfig config = ThroughputScenario(kind);
  config.fusion.scan_threads = threads;
  config.fusion.wpf_period = 2 * kSecond;  // several full passes within the churn window
  Scenario scenario(config);
  std::vector<std::pair<Process*, VirtAddr>> vms;
  for (std::size_t p = 0; p < kVms; ++p) {
    Process& vm = scenario.machine().CreateProcess();
    const VirtAddr base =
        vm.AllocateRegion(kChurnGuestPages, PageType::kAnonymous, true, false);
    for (std::size_t i = 0; i < kChurnGuestPages; ++i) {
      vm.SetupMapPattern(VaddrToVpn(base) + i, kCommonSeed);
      const bool duplicate = i % 4 == 0;
      const std::uint64_t tag = duplicate
                                    ? 0x1000000 + i % kDuplicateGroups
                                    : 0x2000000 + (p << 32) + i;
      vm.Write64(base + i * kPageSize + kTailOffset, tag);
    }
    vms.emplace_back(&vm, base);
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t step = 0; step < kChurnSteps; ++step) {
    // Rewrite every unique page's tag; merged duplicates are left alone so the
    // churn does not trigger COW unmerges, only re-hashing on the next scan.
    for (std::size_t p = 0; p < vms.size(); ++p) {
      for (std::size_t i = 0; i < kChurnGuestPages; ++i) {
        if (i % 4 == 0) continue;
        vms[p].first->Write64(vms[p].second + i * kPageSize + kTailOffset,
                              0x3000000 + (p << 40) + (i << 8) + step);
      }
    }
    scenario.RunFor(kChurnStepTime);
  }
  const auto t1 = std::chrono::steady_clock::now();

  SweepResult result;
  result.engine = scenario.engine()->name();
  result.threads = threads;
  result.sim = CaptureOutcome(scenario);
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  const host::ScanTiming* timing = scenario.engine()->scan_timing();
  if (timing != nullptr) {
    result.scan_seconds = timing->scan_ns * 1e-9;
    result.phase1_seconds = timing->phase1_ns * 1e-9;
    result.items = timing->items;
  }
  // On an oversubscribed host the per-chunk wall times can overlap, so their sum
  // can exceed the scan wall; clamp the parallelizable share to keep the
  // projection sublinear in the thread count.
  const double parallelizable = std::min(result.phase1_seconds, result.scan_seconds);
  result.projected_seconds = (result.scan_seconds - parallelizable) +
                             parallelizable / static_cast<double>(threads);
  result.measured_pps =
      result.scan_seconds > 0 ? static_cast<double>(result.items) / result.scan_seconds : 0.0;
  result.projected_pps = result.projected_seconds > 0
                             ? static_cast<double>(result.items) / result.projected_seconds
                             : 0.0;
  return result;
}

SweepResult RunSweep(EngineKind kind, std::size_t threads) {
  SweepResult best = RunSweepOnce(kind, threads);
  for (int r = 1; r < kRepeats; ++r) {
    SweepResult next = RunSweepOnce(kind, threads);
    if (!(next.sim == best.sim) || next.items != best.items) {
      std::fprintf(stderr, "FATAL: nondeterministic outcome for %s threads=%zu\n",
                   next.engine.c_str(), threads);
      std::exit(1);
    }
    if (next.scan_seconds < best.scan_seconds) {
      best = next;
    }
  }
  return best;
}

void Run(const std::vector<std::size_t>& thread_counts) {
  const unsigned host_cpus = std::max(1u, std::thread::hardware_concurrency());
  bench::Reporter reporter("host_throughput");

  // --- Experiment 1: fingerprint vs byte-ordered trees (best-of-3). ---
  reporter.Header("Host scan throughput: fingerprint-ordered vs byte-ordered trees");
  {
    Json scenario = Json::Object();
    scenario.Set("vms", kVms);
    scenario.Set("guest_pages", kGuestPages);
    scenario.Set("sim_seconds", kRunTime / kSecond);
    scenario.Set("repeats", kRepeats);
    reporter.SetConfig("scenario", std::move(scenario));
  }
  const std::array<EngineKind, 4> engines = {EngineKind::kKsm, EngineKind::kWpf,
                                             EngineKind::kVUsion, EngineKind::kVUsionThp};
  std::vector<RunResult> results;
  std::printf("%-12s %-14s %12s %10s %14s %10s\n", "engine", "mode", "scanned", "wall(s)",
              "pages/s", "e2e(s)");
  for (const EngineKind kind : engines) {
    auto [bytes, hashed] = RunModePair(kind);
    for (RunResult* r : {&bytes, &hashed}) {
      std::printf("%-12s %-14s %12llu %10.3f %14.0f %10.3f\n", r->engine.c_str(),
                  r->mode.c_str(), static_cast<unsigned long long>(r->sim.pages_scanned),
                  r->wall_seconds, r->pages_per_second, r->end_to_end_seconds);
      results.push_back(std::move(*r));
    }
  }

  // --- Experiment 2: scan_threads sweep on the churn scenario. ---
  reporter.Header("Parallel scan pipeline: scan_threads sweep (churn scenario)");
  std::printf("%-12s %8s %12s %10s %10s %12s %12s\n", "engine", "threads", "items",
              "scan(s)", "phase1(s)", "meas pg/s", "proj pg/s");
  std::vector<std::vector<SweepResult>> sweeps;
  for (const EngineKind kind : engines) {
    std::vector<SweepResult> series;
    for (const std::size_t threads : thread_counts) {
      SweepResult r = RunSweep(kind, threads);
      if (!series.empty() && !(r.sim == series.front().sim)) {
        std::fprintf(stderr,
                     "FATAL: %s simulated outcome differs between threads=%zu and threads=%zu\n",
                     r.engine.c_str(), series.front().threads, r.threads);
        std::exit(1);
      }
      std::printf("%-12s %8zu %12llu %10.3f %10.3f %12.0f %12.0f\n", r.engine.c_str(),
                  r.threads, static_cast<unsigned long long>(r.items), r.scan_seconds,
                  r.phase1_seconds, r.measured_pps, r.projected_pps);
      series.push_back(std::move(r));
    }
    std::printf("  %s: simulated outcome identical across all thread counts\n",
                series.front().engine.c_str());
    sweeps.push_back(std::move(series));
  }

  const bool measured_basis =
      host_cpus >= *std::max_element(thread_counts.begin(), thread_counts.end());
  const char* basis = measured_basis ? "measured" : "projected";

  // --- Reporter rows + stdout summary. ---
  {
    Json sweep_config = Json::Object();
    sweep_config.Set("vms", kVms);
    sweep_config.Set("guest_pages", kChurnGuestPages);
    sweep_config.Set("churn_steps", kChurnSteps);
    sweep_config.Set("step_ms", kChurnStepTime / kMillisecond);
    sweep_config.Set("repeats", kRepeats);
    sweep_config.Set("host_cpus", host_cpus);
    sweep_config.Set("basis", basis);
    reporter.SetConfig("threads_sweep", std::move(sweep_config));
  }
  for (const RunResult& r : results) {
    reporter.AddRow("runs", {{"engine", r.engine},
                             {"mode", r.mode},
                             {"pages_scanned", r.sim.pages_scanned},
                             {"merges", r.sim.merges},
                             {"frames_saved", r.sim.frames_saved},
                             {"wall_seconds", r.wall_seconds},
                             {"pages_per_second", r.pages_per_second},
                             {"end_to_end_seconds", r.end_to_end_seconds}});
    reporter.AddTiming(r.engine + "/" + r.mode + "_wall", r.wall_seconds * 1e3);
  }
  std::printf("\nscan-throughput speedup (fingerprint / byte-ordered, best of %d):\n", kRepeats);
  double ksm_speedup = 0.0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const RunResult& bytes = results[i];
    const RunResult& hashed = results[i + 1];
    const double speedup =
        bytes.pages_per_second > 0 ? hashed.pages_per_second / bytes.pages_per_second : 0.0;
    if (bytes.engine == "KSM") {
      ksm_speedup = speedup;
    }
    std::printf("  %-12s %.2fx\n", bytes.engine.c_str(), speedup);
    reporter.AddRow("speedup", {{"engine", bytes.engine}, {"speedup", speedup}});
  }
  // KSM is the headline: its scan path is pure tree matching. VUsion's scan cost
  // is dominated by per-round re-randomization (a security feature, identical in
  // both modes), so its ratio stays near 1 by design.
  std::printf("\nheadline: KSM diverse-VM scan-throughput speedup %.2fx (target >= 5x)\n",
              ksm_speedup);
  reporter.AddRow("headlines", {{"name", "ksm_fingerprint_speedup"},
                                {"value", ksm_speedup},
                                {"target", 5.0}});

  double ksm_parallel = 0.0;
  for (const std::vector<SweepResult>& series : sweeps) {
    for (const SweepResult& r : series) {
      reporter.AddRow("threads_sweep", {{"engine", r.engine},
                                        {"threads", r.threads},
                                        {"items", r.items},
                                        {"scan_seconds", r.scan_seconds},
                                        {"phase1_seconds", r.phase1_seconds},
                                        {"projected_scan_seconds", r.projected_seconds},
                                        {"pages_per_second", r.measured_pps},
                                        {"projected_pages_per_second", r.projected_pps}});
    }
  }
  std::printf("\nparallel scan speedup vs 1 thread (%s basis, host has %u cpu%s):\n", basis,
              host_cpus, host_cpus == 1 ? "" : "s");
  for (const std::vector<SweepResult>& series : sweeps) {
    const double base_pps = series.front().measured_pps;
    std::printf("  %-12s", series.front().engine.c_str());
    for (const SweepResult& r : series) {
      const double pps = measured_basis ? r.measured_pps : r.projected_pps;
      const double speedup = base_pps > 0 ? pps / base_pps : 0.0;
      if (series.front().engine == "KSM" && r.threads == 8) {
        ksm_parallel = speedup;
      }
      std::printf("  %zut=%.2fx", r.threads, speedup);
      reporter.AddRow("parallel_speedup", {{"engine", r.engine},
                                           {"threads", r.threads},
                                           {"speedup", speedup}});
    }
    std::printf("\n");
  }
  std::printf("\nheadline: KSM 8-thread parallel scan speedup %.2fx (%s, target >= 3x)\n",
              ksm_parallel, basis);
  reporter.AddRow("headlines", {{"name", "ksm_parallel_speedup_8t"},
                                {"value", ksm_parallel},
                                {"target", 3.0},
                                {"basis", basis}});
  const std::string path = reporter.WriteJson();
  if (!path.empty()) {
    std::printf("wrote %s\n", path.c_str());
  }
}

std::vector<std::size_t> ParseThreads(int argc, char** argv) {
  std::string spec = "1,2,4,8";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      spec = argv[i + 1];
    }
  }
  std::vector<std::size_t> threads;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(',', pos);
    if (next == std::string::npos) next = spec.size();
    const long v = std::strtol(spec.substr(pos, next - pos).c_str(), nullptr, 10);
    if (v > 0) threads.push_back(static_cast<std::size_t>(v));
    pos = next + 1;
  }
  if (threads.empty()) threads.push_back(1);
  return threads;
}

}  // namespace
}  // namespace vusion

int main(int argc, char** argv) {
  // The env override exists for CI; the bench owns its thread counts.
  unsetenv("VUSION_SCAN_THREADS");
  vusion::Run(vusion::ParseThreads(argc, argv));
  return 0;
}
