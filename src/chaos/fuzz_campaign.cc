#include "src/chaos/fuzz_campaign.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/chaos/invariant_auditor.h"
#include "src/kernel/machine.h"
#include "src/kernel/process.h"
#include "src/snapshot/machine_snapshot.h"

namespace vusion {

const char* CampaignEngineToken(EngineKind kind) {
  switch (kind) {
    case EngineKind::kNone:
      return "none";
    case EngineKind::kKsm:
      return "ksm";
    case EngineKind::kKsmCoA:
      return "ksm-coa";
    case EngineKind::kKsmZeroOnly:
      return "ksm-zero";
    case EngineKind::kWpf:
      return "wpf";
    case EngineKind::kVUsion:
      return "vusion";
    case EngineKind::kVUsionThp:
      return "vusion-thp";
    case EngineKind::kMemoryCombining:
      return "mc";
  }
  return "none";
}

bool ParseCampaignEngine(const std::string& token, EngineKind& kind) {
  for (const EngineKind candidate :
       {EngineKind::kNone, EngineKind::kKsm, EngineKind::kKsmCoA,
        EngineKind::kKsmZeroOnly, EngineKind::kWpf, EngineKind::kVUsion,
        EngineKind::kVUsionThp, EngineKind::kMemoryCombining}) {
    if (token == CampaignEngineToken(candidate)) {
      kind = candidate;
      return true;
    }
  }
  return false;
}

std::string FuzzCampaign::ReproCommand(
    const std::vector<FaultRecord>* schedule) const {
  std::ostringstream cmd;
  cmd << "tools/chaos_fuzz --engine " << CampaignEngineToken(options_.engine)
      << " --seed " << options_.seed << " --steps " << options_.steps
      << " --threads " << options_.scan_threads << " --rate "
      << options_.fault_rate << " --audit-epoch " << options_.audit_epoch;
  if (options_.delta_scan) {
    cmd << " --delta";
  }
  if (options_.snapshot_interval > 0) {
    cmd << " --snapshot-interval " << options_.snapshot_interval;
  }
  if (schedule != nullptr && !schedule->empty()) {
    cmd << " --schedule " << FormatSchedule(*schedule);
  }
  return cmd.str();
}

namespace {

constexpr std::size_t kPages = 512;

// Everything the workload event loop touches, bound either to the freshly
// booted machine or to one restored from a checkpoint.
struct WorkloadRig {
  Machine* machine = nullptr;
  FusionEngine* engine = nullptr;
  FaultInjector* injector = nullptr;
  Process* a = nullptr;
  Process* b = nullptr;
  VirtAddr base_a = 0;
  VirtAddr base_b = 0;
  std::vector<Process*> children;
  Rng rng{0};
};

// One mid-campaign savestate: the machine+engine image plus the host-side loop
// state (workload RNG, child list, throw counter) the snapshot cannot carry.
struct Checkpoint {
  std::size_t step = 0;  // first workload event not yet executed
  std::string image;
  Rng::State rng;
  std::vector<std::uint32_t> child_ids;  // youngest last
  std::uint64_t tolerated = 0;
  VirtAddr base_a = 0;
  VirtAddr base_b = 0;
};

// VM-teardown injection: a fired kTeardown at any scan phase boundary destroys
// the youngest forked VM while the engine is mid-quantum. The ShouldFail call
// always advances the site's visit counter (even with no children alive) so
// the schedule replays independently of workload state.
void InstallTeardownHook(WorkloadRig& rig) {
  if (rig.engine == nullptr) {
    return;
  }
  Machine* machine = rig.machine;
  FaultInjector* injector = rig.injector;
  std::vector<Process*>* children = &rig.children;
  rig.engine->SetPhaseHook([machine, injector, children](FusionEngine&, ScanPhase) {
    if (injector->ShouldFail(FaultSite::kTeardown) && !children->empty()) {
      machine->DestroyProcess(*children->back());
      children->pop_back();
      injector->RecordDegradation();
    }
  });
}

// Executes workload events [first_step, options.steps), auditing on the
// configured cadence and (optionally) taking periodic savestate checkpoints.
// Shared by the boot path and the restore-to-failure tail replay.
void RunEventLoop(WorkloadRig& rig, std::size_t first_step,
                  const CampaignOptions& options, InvariantAuditor& auditor,
                  CampaignResult& result, std::vector<Checkpoint>* checkpoints) {
  auto audit_now = [&](std::size_t step) {
    AuditReport report = auditor.Audit(rig.engine);
    if (!report.ok) {
      result.ok = false;
      result.failed_step = step;
      result.violations = std::move(report.violations);
    }
    return result.ok;
  };

  for (std::size_t step = first_step; step < options.steps && result.ok; ++step) {
    if (checkpoints != nullptr && options.snapshot_interval > 0 && step > 0 &&
        step % options.snapshot_interval == 0 &&
        (rig.engine == nullptr || rig.engine->SupportsSnapshot())) {
      Checkpoint cp;
      cp.step = step;
      cp.rng = rig.rng.state();
      cp.base_a = rig.base_a;
      cp.base_b = rig.base_b;
      for (const Process* child : rig.children) {
        cp.child_ids.push_back(child->id());
      }
      cp.tolerated = result.tolerated_throws;
      cp.image = snapshot::SaveSnapshot(*rig.machine, rig.engine, options.engine);
      checkpoints->push_back(std::move(cp));
      ++result.snapshots_taken;
    }
    const std::size_t page = rig.rng.NextBelow(kPages);
    Process& proc = rig.rng.NextBool(0.5) ? *rig.a : *rig.b;
    const VirtAddr base = (&proc == rig.a) ? rig.base_a : rig.base_b;
    try {
      switch (rig.rng.NextBelow(6)) {
        case 0:
          proc.Write64(base + page * kPageSize, step);
          break;
        case 1:
          proc.Read64(base + page * kPageSize);
          break;
        case 2:
          rig.machine->Idle(rig.rng.NextInRange(1, 4) * kMillisecond);
          break;
        case 3:
          if (&proc == rig.a) {
            rig.a->SetupUnmap(VaddrToVpn(rig.base_a) + page);
          }
          break;
        case 4:
          proc.Prefetch(base + page * kPageSize);
          break;
        default:
          if (rig.children.size() < 4) {
            Process& child = rig.machine->ForkProcess(*rig.b);
            child.Write64(rig.base_b + page * kPageSize, step);
            rig.children.push_back(&child);
          } else {
            rig.machine->DestroyProcess(*rig.children.back());
            rig.children.pop_back();
          }
          break;
      }
    } catch (const std::runtime_error&) {
      // A fault-retry limit tripped by clustered injections: the access was
      // abandoned, which is fine as long as the machine stayed consistent —
      // the audit below is the judge.
      ++result.tolerated_throws;
    }
    if (options.audit_epoch <= 1 || step % options.audit_epoch == 0) {
      audit_now(step);
    }
  }
  if (result.ok) {
    rig.machine->Idle(50 * kMillisecond);
    audit_now(options.steps);
  }
}

// Restores the checkpoint and replays the remaining workload events. True when
// the replay reproduces the original violation exactly (same step, same
// violation text) — the restore-to-failure guarantee.
bool ReplayTail(const CampaignOptions& options, const Checkpoint& cp,
                const CampaignResult& original) {
  try {
    snapshot::RestoredMachine restored = snapshot::RestoreSnapshot(cp.image);
    const auto& procs = restored.machine->processes();
    WorkloadRig rig;
    rig.machine = restored.machine.get();
    rig.engine = restored.engine.get();
    rig.injector = restored.machine->chaos();
    rig.a = procs.at(0).get();
    rig.b = procs.at(1).get();
    rig.base_a = cp.base_a;
    rig.base_b = cp.base_b;
    for (const std::uint32_t id : cp.child_ids) {
      rig.children.push_back(procs.at(id).get());
    }
    rig.rng.RestoreState(cp.rng);
    if (rig.injector == nullptr || rig.a == nullptr || rig.b == nullptr) {
      return false;
    }
    InstallTeardownHook(rig);

    InvariantAuditor auditor(*restored.machine);
    CampaignResult replay;
    replay.tolerated_throws = cp.tolerated;
    RunEventLoop(rig, cp.step, options, auditor, replay, nullptr);
    return !replay.ok && replay.failed_step == original.failed_step &&
           replay.violations == original.violations;
  } catch (const snapshot::RestoreError&) {
    return false;
  }
}

}  // namespace

CampaignResult FuzzCampaign::RunOnce(const std::vector<FaultRecord>* schedule,
                                     bool dump_artifacts) {
  CampaignResult result;

  MachineConfig machine_config;
  machine_config.frame_count = 1u << 14;
  machine_config.seed = options_.seed;
  Machine machine(machine_config);
  machine.trace().set_enabled(true);

  ChaosConfig chaos_config;
  chaos_config.seed = options_.seed;
  chaos_config.SetAllRates(options_.fault_rate);
  FaultInjector& injector =
      schedule != nullptr
          ? machine.EnableChaosWithSchedule(chaos_config, *schedule)
          : machine.EnableChaos(chaos_config);

  FusionConfig fusion_config;
  fusion_config.wake_period = 1 * kMillisecond;
  fusion_config.pages_per_wake = 256;
  fusion_config.pool_frames = 512;
  fusion_config.wpf_period = 10 * kMillisecond;
  fusion_config.scan_threads = options_.scan_threads;
  fusion_config.delta_scan = options_.delta_scan;
  if (options_.engine == EngineKind::kMemoryCombining) {
    // Permanent pressure so the swap-cache engine actually acts.
    fusion_config.mc_low_watermark = machine_config.frame_count;
  }
  ScopedEngine engine(options_.engine, machine, fusion_config);

  // The workload: the frame-audit property test's event mix (map, write, read,
  // idle, unmap, prefetch, fork/exit churn) driven by the campaign seed.
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr base_a = a.AllocateRegion(kPages, PageType::kAnonymous, true, false);
  const VirtAddr base_b = b.AllocateRegion(kPages, PageType::kAnonymous, true, true);
  for (std::size_t i = 0; i < kPages; ++i) {
    a.SetupMapPattern(VaddrToVpn(base_a) + i, 0x5000 + (i % 32));
    b.SetupMapPattern(VaddrToVpn(base_b) + i, 0x5000 + (i % 32));
  }

  WorkloadRig rig;
  rig.machine = &machine;
  rig.engine = engine.get();
  rig.injector = &injector;
  rig.a = &a;
  rig.b = &b;
  rig.base_a = base_a;
  rig.base_b = base_b;
  rig.rng = Rng(options_.seed * 13 + 5);
  InstallTeardownHook(rig);

  InvariantAuditor auditor(machine);
  // Checkpoints are only kept on the primary run; shrink replays skip them
  // (dump_artifacts is false there) to keep bisection cheap.
  std::vector<Checkpoint> checkpoints;
  std::vector<Checkpoint>* take =
      (dump_artifacts && options_.snapshot_interval > 0) ? &checkpoints : nullptr;
  RunEventLoop(rig, 0, options_, auditor, result, take);

  result.schedule = injector.injected_schedule();
  result.faults_injected = injector.total_injected();
  result.audits = auditor.audits_run();
  result.checks = auditor.checks_total();

  const Checkpoint* nearest = nullptr;
  if (!result.ok) {
    for (const Checkpoint& cp : checkpoints) {
      if (cp.step <= result.failed_step) {
        nearest = &cp;
      }
    }
    if (nearest != nullptr) {
      result.has_nearest_snapshot = true;
      result.nearest_snapshot_step = nearest->step;
      result.restore_to_failure_ok = ReplayTail(options_, *nearest, result);
    }
  }

  if (!result.ok && dump_artifacts && !options_.artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.artifact_dir, ec);
    const std::string stem = options_.artifact_dir + "/chaos_" +
                             CampaignEngineToken(options_.engine) + "_seed" +
                             std::to_string(options_.seed);
    if (nearest != nullptr) {
      result.snapshot_path =
          stem + "_step" + std::to_string(nearest->step) + ".vsnap";
      std::ofstream snap(result.snapshot_path, std::ios::binary);
      snap.write(nearest->image.data(),
                 static_cast<std::streamsize>(nearest->image.size()));
    }
    const std::string path = stem + ".txt";
    std::ofstream out(path);
    out << "repro: " << ReproCommand(&result.schedule) << "\n";
    out << "failed_step: " << result.failed_step << "\n";
    out << "schedule: " << FormatSchedule(result.schedule) << "\n";
    if (result.has_nearest_snapshot) {
      out << "nearest_snapshot: step " << result.nearest_snapshot_step << " ("
          << result.snapshot_path << "), restore-to-failure "
          << (result.restore_to_failure_ok ? "reproduced" : "NOT reproduced")
          << "\n";
    }
    out << "\nviolations:\n";
    for (const std::string& violation : result.violations) {
      out << "  " << violation << "\n";
    }
    out << "\ntrace summary:\n" << machine.trace().Summary() << "\n";
    out << "trace tail:\n";
    const auto events = machine.trace().Events();
    const std::size_t start = events.size() > 200 ? events.size() - 200 : 0;
    for (std::size_t i = start; i < events.size(); ++i) {
      const TraceEvent& event = events[i];
      out << "  t=" << event.time << " " << TraceEventTypeName(event.type)
          << " pid=" << event.process_id << " vpn=" << event.vpn
          << " frame=" << event.frame << "\n";
    }
    auditor.ExportMetrics(machine.metrics());
    out << "\nmetrics:\n" << machine.CollectMetrics().RenderTable() << "\n";
  }
  return result;
}

std::vector<FaultRecord> FuzzCampaign::ShrinkSchedule(
    const std::vector<FaultRecord>& failing) {
  std::size_t budget = 40;  // replay bound: shrinking is best-effort
  auto fails = [&](const std::vector<FaultRecord>& candidate) {
    --budget;
    return !RunOnce(&candidate, /*dump_artifacts=*/false).ok;
  };

  // Pass 1: bisection — keep halving while one half alone still fails.
  std::vector<FaultRecord> current = failing;
  while (current.size() > 1 && budget > 1) {
    const auto mid =
        current.begin() + static_cast<std::ptrdiff_t>(current.size() / 2);
    std::vector<FaultRecord> front(current.begin(), mid);
    std::vector<FaultRecord> back(mid, current.end());
    if (fails(front)) {
      current = std::move(front);
    } else if (budget > 0 && fails(back)) {
      current = std::move(back);
    } else {
      break;
    }
  }
  // Pass 2: one-at-a-time removal of the survivors.
  for (std::size_t i = 0; i < current.size() && budget > 0;) {
    std::vector<FaultRecord> candidate = current;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
    if (fails(candidate)) {
      current = std::move(candidate);
    } else {
      ++i;
    }
  }
  return current;
}

CampaignResult FuzzCampaign::Run() {
  const std::vector<FaultRecord>* schedule =
      options_.use_schedule ? &options_.schedule : nullptr;
  CampaignResult result = RunOnce(schedule, /*dump_artifacts=*/true);
  if (!result.ok) {
    if (options_.shrink && !options_.use_schedule && !result.schedule.empty()) {
      result.shrunk_schedule = ShrinkSchedule(result.schedule);
    } else {
      result.shrunk_schedule = result.schedule;
    }
    result.repro = ReproCommand(
        result.shrunk_schedule.empty() ? nullptr : &result.shrunk_schedule);
    if (result.has_nearest_snapshot) {
      result.repro += "  # nearest snapshot: step " +
                      std::to_string(result.nearest_snapshot_step) +
                      (result.snapshot_path.empty() ? std::string()
                                                    : " at " + result.snapshot_path);
    }
  }
  return result;
}

}  // namespace vusion
