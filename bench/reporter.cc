#include "bench/reporter.h"

#include <cstdio>
#include <cstdlib>

namespace vusion {
namespace bench {

Reporter::Reporter(const std::string& name)
    : name_(name),
      start_(std::chrono::steady_clock::now()),
      titles_(Json::Array()),
      config_(Json::Object()),
      tables_(Json::Object()),
      series_(Json::Object()),
      metrics_(Json::Object()),
      timings_(Json::Object()),
      notes_(Json::Array()) {}

Reporter::~Reporter() {
  if (!written_) {
    WriteJson();
  }
}

void Reporter::Header(const std::string& title) {
  std::printf("=== %s ===\n", title.c_str());
  titles_.Push(title);
}

void Reporter::SetConfig(const std::string& key, Json value) {
  config_.Set(key, std::move(value));
}

Json* Reporter::FindOrInsert(Json& object, const std::string& key, Json empty) {
  Json* slot = object.FindMutable(key);
  if (slot == nullptr) {
    object.Set(key, std::move(empty));
    slot = object.FindMutable(key);
  }
  return slot;
}

void Reporter::AddRow(const std::string& table, Json row) {
  FindOrInsert(tables_, table, Json::Array())->Push(std::move(row));
}

void Reporter::AddRow(const std::string& table,
                      std::initializer_list<std::pair<const char*, Json>> fields) {
  Json row = Json::Object();
  for (const auto& [key, value] : fields) {
    row.Set(key, value);
  }
  AddRow(table, std::move(row));
}

void Reporter::AddSeries(const std::string& name, const std::vector<double>& values) {
  Json array = Json::Array();
  for (const double v : values) {
    array.Push(v);
  }
  series_.Set(name, std::move(array));
}

void Reporter::AddMetrics(const std::string& key, const MetricsSnapshot& snapshot) {
  metrics_.Set(key, snapshot.ToJson());
}

void Reporter::AddTiming(const std::string& label, double ms) {
  timings_.Set(label + "_ms", ms);
}

void Reporter::Note(const std::string& text) { notes_.Push(text); }

double Reporter::ElapsedMs() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

std::string Reporter::WriteJson() {
  written_ = true;
  timings_.Set("wall_ms", ElapsedMs());

  Json root = Json::Object();
  root.Set("bench", name_);
  root.Set("schema_version", 1);
  root.Set("titles", std::move(titles_));
  root.Set("config", std::move(config_));
  root.Set("tables", std::move(tables_));
  root.Set("series", std::move(series_));
  root.Set("metrics", std::move(metrics_));
  root.Set("timings", std::move(timings_));
  root.Set("notes", std::move(notes_));

  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("VUSION_BENCH_JSON_DIR"); dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[reporter] cannot write %s\n", path.c_str());
    return std::string{};
  }
  const std::string text = root.Dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  // stderr so the human-facing stdout tables stay byte-identical to before.
  std::fprintf(stderr, "[reporter] wrote %s\n", path.c_str());
  return path;
}

}  // namespace bench
}  // namespace vusion
