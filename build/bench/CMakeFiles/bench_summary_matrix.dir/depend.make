# Empty dependencies file for bench_summary_matrix.
# This may be replaced when dependencies are built.
