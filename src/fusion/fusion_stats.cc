#include "src/fusion/fusion_stats.h"

#include <cstdlib>
#include <sstream>

namespace vusion {

void FusionConfig::ApplyEnvOverrides() {
  if (const char* env = std::getenv("VUSION_SCAN_THREADS")) {
    const long threads = std::strtol(env, nullptr, 10);
    if (threads > 0) {
      scan_threads = static_cast<std::size_t>(threads);
    }
  }
  if (const char* env = std::getenv("VUSION_DELTA_SCAN")) {
    const long value = std::strtol(env, nullptr, 10);
    delta_scan = value != 0;
  }
  if (const char* env = std::getenv("VUSION_SCAN_STREAMING")) {
    const long value = std::strtol(env, nullptr, 10);
    scan_streaming = value != 0;
  }
  if (const char* env = std::getenv("VUSION_SCAN_CHUNK")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value >= 0) {
      scan_chunk_pages = static_cast<std::size_t>(value);
    }
  }
}

std::string FusionStats::Summary() const {
  std::ostringstream out;
  out << "scanned=" << pages_scanned << " merges=" << merges << " fake_merges=" << fake_merges
      << " cow=" << unmerges_cow << " coa=" << unmerges_coa << " rounds=" << full_scans;
  return out.str();
}

}  // namespace vusion
