# Empty dependencies file for vusion_workload.
# This may be replaced when dependencies are built.
