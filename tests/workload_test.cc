#include <gtest/gtest.h>

#include "src/workload/apache_workload.h"
#include "src/workload/kv_workload.h"
#include "src/workload/parsec_workload.h"
#include "src/workload/postmark_workload.h"
#include "src/workload/spec_workload.h"
#include "src/workload/stream_workload.h"

namespace vusion {
namespace {

MachineConfig BigMachine() {
  MachineConfig config;
  config.frame_count = 1u << 15;
  return config;
}

TEST(StreamWorkloadTest, ReportsPositiveBandwidth) {
  Machine machine(BigMachine());
  Process& p = machine.CreateProcess();
  StreamWorkload stream(p, /*array_pages=*/128);
  const StreamResult result = stream.Run(/*iterations=*/2);
  EXPECT_GT(result.copy_mbps, 0.0);
  EXPECT_GT(result.scale_mbps, 0.0);
  EXPECT_GT(result.add_mbps, 0.0);
  EXPECT_GT(result.triad_mbps, 0.0);
  // Bandwidth is in a plausible range for the modeled DRAM (GB/s scale).
  EXPECT_LT(result.copy_mbps, 100000.0);
  EXPECT_GT(result.copy_mbps, 100.0);
}

TEST(SpecWorkloadTest, SuiteRunsAndTakesTime) {
  Machine machine(BigMachine());
  ASSERT_GE(SpecWorkload::Suite().size(), 16u);
  Process& p = machine.CreateProcess();
  Rng rng(1);
  SyntheticBenchmark bench = SpecWorkload::Suite()[0];
  bench.ops = 5000;
  const SimTime elapsed = SpecWorkload::Run(p, bench, rng);
  EXPECT_GT(elapsed, 0u);
  EXPECT_EQ(machine.clock().now(), elapsed);
}

TEST(SpecWorkloadTest, BenchmarksHaveDistinctProfiles) {
  std::set<std::string> names;
  for (const SyntheticBenchmark& bench : SpecWorkload::Suite()) {
    names.insert(bench.name);
    EXPECT_GT(bench.footprint_pages, 0u);
    EXPECT_GT(bench.hot_fraction, 0.0);
    EXPECT_LE(bench.hot_fraction, 1.0);
  }
  EXPECT_EQ(names.size(), SpecWorkload::Suite().size());
}

TEST(ParsecWorkloadTest, SuiteIsDistinctFromSpec) {
  ASSERT_GE(ParsecWorkload::Suite().size(), 12u);
  std::set<std::string> spec_names;
  for (const SyntheticBenchmark& bench : SpecWorkload::Suite()) {
    spec_names.insert(bench.name);
  }
  for (const SyntheticBenchmark& bench : ParsecWorkload::Suite()) {
    EXPECT_FALSE(spec_names.contains(bench.name));
  }
}

TEST(ApacheWorkloadTest, ServesRequestsAndGrowsWorkerPool) {
  Machine machine(BigMachine());
  Process& server = machine.CreateProcess();
  ApacheWorkload::Config config;
  config.initial_workers = 2;
  config.max_workers = 8;
  config.worker_spawn_interval = 2 * kSecond;
  ApacheWorkload apache(server, config, /*seed=*/1);
  EXPECT_EQ(apache.workers(), 2u);
  int samples = 0;
  const ApacheResult result =
      apache.Run(20 * kSecond, 5 * kSecond, [&samples] { ++samples; });
  EXPECT_GT(result.requests, 100u);
  EXPECT_GT(result.kreq_per_s, 0.0);
  EXPECT_GT(result.lat_p99_ms, result.lat_p75_ms);
  EXPECT_GT(apache.workers(), 2u);  // the self-balancing growth of Figure 12
  EXPECT_LE(apache.workers(), 8u);
  EXPECT_GE(samples, 3);
}

TEST(KvWorkloadTest, RunsBothPresets) {
  Machine machine(BigMachine());
  Process& redis = machine.CreateProcess();
  KvWorkload::Config redis_config = KvWorkload::RedisConfig();
  redis_config.ops = 4000;
  KvWorkload redis_wl(redis, redis_config, 1);
  const KvResult redis_result = redis_wl.Run();
  EXPECT_GT(redis_result.kreq_per_s, 0.0);
  EXPECT_GE(redis_result.get_p99_ms, redis_result.get_p90_ms);
  EXPECT_GE(redis_result.get_p999_ms, redis_result.get_p99_ms);
  EXPECT_GT(redis_result.set_p90_ms, 0.0);

  Process& memcached = machine.CreateProcess();
  KvWorkload::Config mc_config = KvWorkload::MemcachedConfig();
  mc_config.ops = 4000;
  KvWorkload mc_wl(memcached, mc_config, 2);
  const KvResult mc_result = mc_wl.Run();
  EXPECT_GT(mc_result.kreq_per_s, 0.0);
  // Redis does more work per op (pointer chase): lower throughput.
  EXPECT_LT(redis_result.kreq_per_s, mc_result.kreq_per_s * 1.2);
}

TEST(PostmarkWorkloadTest, ReportsTransactionRate) {
  Machine machine(BigMachine());
  Process& p = machine.CreateProcess();
  PageCache cache(p, 512);
  PostmarkWorkload::Config config;
  config.transactions = 2000;
  config.file_pool = 100;
  PostmarkWorkload postmark(p, cache, config, 1);
  const PostmarkResult result = postmark.Run();
  EXPECT_EQ(result.transactions, 2000u);
  EXPECT_GT(result.tx_per_s, 0.0);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace vusion
