
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/cain_attack.cc" "src/CMakeFiles/vusion_attack.dir/attack/cain_attack.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/cain_attack.cc.o.d"
  "/root/repo/src/attack/cow_side_channel.cc" "src/CMakeFiles/vusion_attack.dir/attack/cow_side_channel.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/cow_side_channel.cc.o.d"
  "/root/repo/src/attack/dedup_est_machina.cc" "src/CMakeFiles/vusion_attack.dir/attack/dedup_est_machina.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/dedup_est_machina.cc.o.d"
  "/root/repo/src/attack/flip_feng_shui.cc" "src/CMakeFiles/vusion_attack.dir/attack/flip_feng_shui.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/flip_feng_shui.cc.o.d"
  "/root/repo/src/attack/flush_reload_attack.cc" "src/CMakeFiles/vusion_attack.dir/attack/flush_reload_attack.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/flush_reload_attack.cc.o.d"
  "/root/repo/src/attack/page_color_attack.cc" "src/CMakeFiles/vusion_attack.dir/attack/page_color_attack.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/page_color_attack.cc.o.d"
  "/root/repo/src/attack/reuse_flip_feng_shui.cc" "src/CMakeFiles/vusion_attack.dir/attack/reuse_flip_feng_shui.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/reuse_flip_feng_shui.cc.o.d"
  "/root/repo/src/attack/row_buffer_attack.cc" "src/CMakeFiles/vusion_attack.dir/attack/row_buffer_attack.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/row_buffer_attack.cc.o.d"
  "/root/repo/src/attack/timing_probe.cc" "src/CMakeFiles/vusion_attack.dir/attack/timing_probe.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/timing_probe.cc.o.d"
  "/root/repo/src/attack/translation_attack.cc" "src/CMakeFiles/vusion_attack.dir/attack/translation_attack.cc.o" "gcc" "src/CMakeFiles/vusion_attack.dir/attack/translation_attack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vusion_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vusion_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
