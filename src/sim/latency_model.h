// Central latency model: every simulated hardware/kernel operation gets its cost here.
//
// The constants approximate the paper's testbed (Intel Xeon E3-1240 v5, DDR4) at the
// granularity the attacks care about: a cached access is tens of ns, a DRAM access is
// ~100 ns, and a page fault that copies a page is microseconds. Side channels in this
// repository are *distributional*, so each charge can carry seeded log-normal noise to
// produce realistic histograms while staying reproducible.

#ifndef VUSION_SRC_SIM_LATENCY_MODEL_H_
#define VUSION_SRC_SIM_LATENCY_MODEL_H_

#include "src/sim/clock.h"
#include "src/sim/rng.h"

namespace vusion {

// Latency constants in nanoseconds. Members are mutable configuration so tests and
// ablation benches can stress specific costs.
struct LatencyConfig {
  // Address translation.
  SimTime tlb_hit = 1;
  SimTime tlb_lookup = 1;           // charged even on miss, before the walk
  SimTime page_walk_step_cached = 4;  // PT entry found in LLC
  SimTime page_walk_step_memory = 70; // PT entry fetched from DRAM

  // Data access.
  SimTime l1_hit = 4;
  SimTime llc_hit = 14;
  SimTime dram_row_hit = 60;
  SimTime dram_row_miss = 110;      // activate + precharge
  SimTime uncached_access = 180;    // PTE cache-disable bit set: always DRAM, stronger penalty

  SimTime clflush = 40;             // cache line flush instruction
  SimTime page_cache_fill = 6000;   // guest FS read filling one page-cache page

  // Kernel paths.
  SimTime fault_entry_exit = 1400;  // trap, handler dispatch, return
  SimTime page_copy_4k = 950;       // copy_user_highpage equivalent
  SimTime buddy_alloc = 420;
  SimTime buddy_free = 380;
  SimTime pte_update = 90;          // incl. TLB shootdown cost, single CPU
  SimTime tree_step = 25;           // one comparison+descend in a fusion tree
  SimTime content_compare = 600;    // memcmp of two 4 KB pages
  SimTime content_hash = 350;       // hash of one 4 KB page
  SimTime queue_op = 60;            // deferred-free queue push (also the dummy push)
  SimTime huge_collapse = 12000;    // khugepaged copying 512 pages
  SimTime huge_split = 2100;        // splitting a THP into 512 PTEs

  // Relative sigma of the log-normal noise applied by Noisy(); 0 disables noise.
  double noise_sigma = 0.04;
};

// Applies latencies to a clock, with optional noise from a dedicated RNG stream.
class LatencyModel {
 public:
  LatencyModel(const LatencyConfig& config, VirtualClock& clock, Rng noise_rng)
      : config_(config), clock_(&clock), rng_(noise_rng) {}

  // Charges `base` nanoseconds with multiplicative log-normal noise.
  SimTime Charge(SimTime base);

  // Charges without noise (for bookkeeping costs where jitter is irrelevant).
  SimTime ChargeExact(SimTime base);

  [[nodiscard]] const LatencyConfig& config() const { return config_; }
  LatencyConfig& mutable_config() { return config_; }
  [[nodiscard]] VirtualClock& clock() { return *clock_; }

 private:
  LatencyConfig config_;
  VirtualClock* clock_;
  Rng rng_;
};

}  // namespace vusion

#endif  // VUSION_SRC_SIM_LATENCY_MODEL_H_
