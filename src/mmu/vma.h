// Virtual memory areas: contiguous virtual ranges sharing properties, including the
// madvise(MADV_MERGEABLE) registration KSM/VUsion scan (§2.1) and the page-type tag
// used to attribute fusion savings (paper Table 3).

#ifndef VUSION_SRC_MMU_VMA_H_
#define VUSION_SRC_MMU_VMA_H_

#include <cstdint>
#include <vector>

#include "src/mmu/pte.h"

namespace vusion {

// Guest-side role of the pages in a VMA; the categories of the paper's Table 3.
enum class PageType : std::uint8_t {
  kAnonymous,    // "rest": process anonymous memory
  kPageCache,    // guest page cache contents
  kGuestBuddy,   // pages sitting free in the guest's allocator (idle, highly fusable)
  kGuestKernel,  // guest kernel text/data
};

const char* PageTypeName(PageType type);

struct VmArea {
  Vpn start = 0;
  std::uint64_t pages = 0;
  bool mergeable = false;     // registered via madvise(MADV_MERGEABLE)
  bool thp_eligible = false;  // khugepaged may collapse ranges in this VMA
  PageType type = PageType::kAnonymous;

  [[nodiscard]] Vpn end() const { return start + pages; }
  [[nodiscard]] bool Contains(Vpn vpn) const { return vpn >= start && vpn < end(); }
};

class VmaList {
 public:
  // Adds a VMA; ranges must not overlap existing ones.
  void Add(const VmArea& vma);

  [[nodiscard]] const VmArea* FindContaining(Vpn vpn) const;
  VmArea* FindContaining(Vpn vpn);

  [[nodiscard]] const std::vector<VmArea>& areas() const { return areas_; }
  std::vector<VmArea>& mutable_areas() { return areas_; }

  [[nodiscard]] std::uint64_t total_pages() const;
  [[nodiscard]] std::uint64_t mergeable_pages() const;

 private:
  std::vector<VmArea> areas_;  // kept sorted by start
};

}  // namespace vusion

#endif  // VUSION_SRC_MMU_VMA_H_
