// A process/VM address space: page table + TLB + VMA list, with a mutation API that
// keeps the TLB coherent (every PTE modification models a shootdown).

#ifndef VUSION_SRC_MMU_ADDRESS_SPACE_H_
#define VUSION_SRC_MMU_ADDRESS_SPACE_H_

#include <cstdint>

#include "src/mmu/page_table.h"
#include "src/mmu/tlb.h"
#include "src/mmu/vma.h"
#include "src/mmu/write_epoch.h"

namespace vusion {

constexpr std::size_t kDefaultTlbEntries = 1536;

class AddressSpace {
 public:
  AddressSpace(std::uint32_t id, FrameAllocator& pt_allocator, PhysicalMemory& memory);

  [[nodiscard]] std::uint32_t id() const { return id_; }

  // --- Mapping mutations (all invalidate the TLB entry/entries they touch) ---

  void MapPage(Vpn vpn, FrameId frame, std::uint16_t flags);
  void UnmapPage(Vpn vpn);
  void SetPte(Vpn vpn, const Pte& pte);

  // Sets and clears flag bits; returns false if no mapping exists.
  bool UpdateFlags(Vpn vpn, std::uint16_t set, std::uint16_t clear);

  void MapHugeRange(Vpn vpn_base, FrameId frame_base, std::uint16_t flags);
  bool SplitHuge(Vpn vpn);
  // Replaces 512 PTEs with one huge mapping backed by frame_base.
  void CollapseToHuge(Vpn vpn_base, FrameId frame_base, std::uint16_t flags);

  // --- Lookup ---

  Pte* GetPte(Vpn vpn) { return table_.Resolve(vpn, /*create=*/false); }
  [[nodiscard]] const Pte* GetPte(Vpn vpn) const { return table_.Resolve(vpn); }
  [[nodiscard]] bool IsHuge(Vpn vpn) const { return table_.IsHuge(vpn); }

  // --- VMAs ---

  void AddVma(const VmArea& vma) { vmas_.Add(vma); }
  // Marks all VMAs overlapping [start, start+pages) as KSM-mergeable.
  void MadviseMergeable(Vpn start, std::uint64_t pages);
  // Clears the mergeable mark (MADV_UNMERGEABLE); the caller notifies the engine.
  void MadviseUnmergeable(Vpn start, std::uint64_t pages);

  [[nodiscard]] VmaList& vmas() { return vmas_; }
  [[nodiscard]] const VmaList& vmas() const { return vmas_; }
  [[nodiscard]] PageTable& page_table() { return table_; }
  [[nodiscard]] Tlb& tlb() { return tlb_; }

  // Simulated soft-dirty tracking: every mapping mutation above bumps the page's
  // write epoch once enabled (Machine::EnableWriteEpochs, delta scanning).
  [[nodiscard]] WriteEpochMap& write_epochs() { return write_epochs_; }
  [[nodiscard]] const WriteEpochMap& write_epochs() const { return write_epochs_; }

 private:
  std::uint32_t id_;
  PageTable table_;
  Tlb tlb_;
  VmaList vmas_;
  WriteEpochMap write_epochs_;
};

}  // namespace vusion

#endif  // VUSION_SRC_MMU_ADDRESS_SPACE_H_
