#include "src/sim/latency_model.h"

#include <cmath>
#include <cstdlib>

namespace vusion {

LatencyModel::LatencyModel(const LatencyConfig& config, VirtualClock& clock, Rng noise_rng)
    : config_(config), clock_(&clock), rng_(noise_rng) {
  if (const char* env = std::getenv("VUSION_UNBATCHED_CHARGES")) {
    if (env[0] != '\0' && env[0] != '0') {
      batching_enabled_ = false;
    }
  }
}

SimTime LatencyModel::SlowRound(double noisy) {
  return static_cast<SimTime>(std::llround(noisy));
}

void LatencyModel::RefillNoise() {
  for (int i = 0; i < kNoiseBatch; ++i) {
    gauss_[i] = rng_.NextGaussian();
  }
  const double sigma = config_.noise_sigma;
  for (int i = 0; i < kNoiseBatch; ++i) {
    factor_[i] = std::exp(sigma * gauss_[i]);
  }
  factor_sigma_ = sigma;
  noise_pos_ = 0;
}

}  // namespace vusion
