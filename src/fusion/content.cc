#include "src/fusion/content.h"

#include <bit>

namespace vusion {

int ChargedContent::Compare(FrameId a, FrameId b) const {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().content_compare);
  return machine_->memory().Compare(a, b);
}

void ChargedContent::ChargeTreeStep() const {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().tree_step);
}

bool ChargedContent::Matches(FrameId a, FrameId b) const {
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().content_compare);
  PhysicalMemory& memory = machine_->memory();
  if (memory.HashContent(a) != memory.HashContent(b)) {
    return false;
  }
  return memory.Compare(a, b) == 0;
}

std::uint64_t ChargedContent::HostFingerprint(FrameId frame) const {
  return machine_->memory().HashContent(frame);
}

int ChargedContent::HostOrder(FrameId a, FrameId b) const {
  PhysicalMemory& memory = machine_->memory();
  if (byte_ordered_) {
    return memory.Compare(a, b);
  }
  const std::uint64_t ha = memory.HashContent(a);
  const std::uint64_t hb = memory.HashContent(b);
  if (ha != hb) {
    return ha < hb ? -1 : 1;
  }
  // Hash collision (or a true match): resolve by bytes, keeping a total order.
  return memory.Compare(a, b);
}

bool ScanCursor::NextSlow(Process*& process, Vpn& vpn, bool& wrapped) {
  wrapped = false;
  const auto& processes = machine_->processes();
  if (processes.empty()) {
    return false;
  }
  // At most two sweeps over the process list: one to finish the current round and
  // one to prove there is no mergeable memory.
  const std::size_t max_hops = 2 * processes.size() + 2;
  for (std::size_t hop = 0; hop < max_hops; ++hop) {
    if (process_idx_ >= processes.size()) {
      process_idx_ = 0;
      vma_idx_ = 0;
      page_idx_ = 0;
      wrapped = true;
      continue;
    }
    if (processes[process_idx_] == nullptr) {  // destroyed process slot
      ++process_idx_;
      vma_idx_ = 0;
      page_idx_ = 0;
      continue;
    }
    Process& candidate = *processes[process_idx_];
    const auto& areas = candidate.address_space().vmas().areas();
    while (vma_idx_ < areas.size()) {
      const VmArea& vma = areas[vma_idx_];
      if (!vma.mergeable || page_idx_ >= vma.pages) {
        ++vma_idx_;
        page_idx_ = 0;
        continue;
      }
      process = &candidate;
      vpn = vma.start + page_idx_;
      ++page_idx_;
      return true;
    }
    ++process_idx_;
    vma_idx_ = 0;
    page_idx_ = 0;
  }
  return false;
}

}  // namespace vusion
