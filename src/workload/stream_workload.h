// Stream-style memory bandwidth workload (paper Table 2): copy/scale/add/triad
// kernels over large arrays, reporting effective MB/s of simulated bandwidth.
// Accesses are issued per cache line, which is the granularity the memory system
// resolves.

#ifndef VUSION_SRC_WORKLOAD_STREAM_WORKLOAD_H_
#define VUSION_SRC_WORKLOAD_STREAM_WORKLOAD_H_

#include "src/kernel/process.h"

namespace vusion {

struct StreamResult {
  double copy_mbps = 0.0;
  double scale_mbps = 0.0;
  double add_mbps = 0.0;
  double triad_mbps = 0.0;
};

class StreamWorkload {
 public:
  // Allocates three arrays of array_pages each in the process.
  StreamWorkload(Process& process, std::size_t array_pages);

  // Runs all four kernels `iterations` times each, after one untimed warm-up
  // sweep (standard Stream practice; also re-activates pages a fusion engine may
  // have treated as idle between construction and measurement).
  StreamResult Run(std::size_t iterations);

 private:
  // Runs one kernel touching `streams` arrays per element; returns MB/s.
  double Kernel(std::size_t streams, std::size_t iterations);

  Process* process_;
  std::size_t array_pages_;
  VirtAddr a_;
  VirtAddr b_;
  VirtAddr c_;
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_STREAM_WORKLOAD_H_
