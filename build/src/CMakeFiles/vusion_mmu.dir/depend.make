# Empty dependencies file for vusion_mmu.
# This may be replaced when dependencies are built.
