file(REMOVE_RECURSE
  "CMakeFiles/vusion_attack.dir/attack/cain_attack.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/cain_attack.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/cow_side_channel.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/cow_side_channel.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/dedup_est_machina.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/dedup_est_machina.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/flip_feng_shui.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/flip_feng_shui.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/flush_reload_attack.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/flush_reload_attack.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/page_color_attack.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/page_color_attack.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/reuse_flip_feng_shui.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/reuse_flip_feng_shui.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/row_buffer_attack.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/row_buffer_attack.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/timing_probe.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/timing_probe.cc.o.d"
  "CMakeFiles/vusion_attack.dir/attack/translation_attack.cc.o"
  "CMakeFiles/vusion_attack.dir/attack/translation_attack.cc.o.d"
  "libvusion_attack.a"
  "libvusion_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vusion_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
