// Scenario driver: a machine + fusion engine + booted VMs, with the memory
// accounting the paper's consumption figures plot.

#ifndef VUSION_SRC_WORKLOAD_SCENARIO_H_
#define VUSION_SRC_WORKLOAD_SCENARIO_H_

#include <memory>

#include "src/fusion/engine_factory.h"
#include "src/kernel/khugepaged.h"
#include "src/workload/vm_image.h"

namespace vusion {

struct ScenarioConfig {
  MachineConfig machine;
  FusionConfig fusion;
  EngineKind engine = EngineKind::kKsm;
  bool enable_khugepaged = false;
  KhugepagedConfig khugepaged;
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);
  ~Scenario();

  [[nodiscard]] Machine& machine() { return *machine_; }
  [[nodiscard]] FusionEngine* engine() { return engine_.get(); }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }

  Process& BootVm(const VmImageSpec& spec, std::uint64_t instance_seed);

  // Advances simulated time (daemons run at their deadlines).
  void RunFor(SimTime duration) { machine_->Idle(duration); }

  // Physical frames consumed by guests: allocated minus the engine's reserve pool.
  [[nodiscard]] std::uint64_t consumed_frames() const;
  [[nodiscard]] double consumed_mb() const;

 private:
  ScenarioConfig config_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<FusionEngine> engine_;
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_SCENARIO_H_
