// Model of the Windows MiAllocatePagesForMdl behaviour the paper reverse-engineered
// (§2.2, §5.2): WPF requests all frames it needs for a fusion pass in one go, and the
// routine hands out mostly-contiguous frames scanning the physical address space
// *from the end*, leaving holes where frames cannot be reclaimed. Each fusion pass
// restarts the scan from the top of memory, which is exactly the predictable-reuse
// property the new reuse-based Flip Feng Shui attack exploits.

#ifndef VUSION_SRC_PHYS_LINEAR_ALLOCATOR_H_
#define VUSION_SRC_PHYS_LINEAR_ALLOCATOR_H_

#include <functional>
#include <vector>

#include "src/phys/buddy_allocator.h"
#include "src/phys/frame_allocator.h"

namespace vusion {

class FaultInjector;

class LinearAllocator final : public FrameAllocator {
 public:
  // Claims frames out of the buddy allocator's inventory so the two cannot hand out
  // the same frame twice.
  explicit LinearAllocator(BuddyAllocator& buddy, PhysicalMemory& memory);

  // Optional chaos hook: injected failures turn individual candidate frames into
  // holes, shortening runs the way unreclaimable pages do.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  // Starts a new scan from the end of physical memory (called once per fusion pass).
  void ResetScan();

  // Allocates `count` frames scanning downward from the cursor, skipping frames that
  // are in use (holes). May return fewer than `count` frames if memory is exhausted.
  std::vector<FrameId> AllocateRun(std::size_t count);

  // Like AllocateRun, but for an in-use frame first asks `try_steal(frame)` to
  // relocate the owner and free the frame (MiAllocatePagesForMdl "tries to steal
  // this page from the owner"); frames that cannot be stolen become holes.
  std::vector<FrameId> AllocateRunWithSteal(std::size_t count,
                                            const std::function<bool(FrameId)>& try_steal);

  FrameId Allocate() override;
  void Free(FrameId frame) override;
  [[nodiscard]] std::size_t free_count() const override { return buddy_->free_count(); }

  // Savestate accessors: the downward scan cursor is the allocator's only
  // deterministic state (frame occupancy lives in PhysicalMemory/the buddy).
  [[nodiscard]] FrameId scan_cursor() const { return cursor_; }
  void set_scan_cursor(FrameId cursor) { cursor_ = cursor; }

 private:
  BuddyAllocator* buddy_;
  PhysicalMemory* memory_;
  FaultInjector* injector_ = nullptr;
  FrameId cursor_;  // next frame to examine (scans downward)
};

}  // namespace vusion

#endif  // VUSION_SRC_PHYS_LINEAR_ALLOCATOR_H_
