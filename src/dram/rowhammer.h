// Rowhammer engine: a seeded per-row vulnerability template plus the flip rule.
//
// When both neighbours (r-1, r+1) of a victim row r in the same bank have been
// activated at least hammer_threshold times within one refresh epoch (double-sided
// hammering), the victim row's templated cells flip 1 -> 0 in physical memory.
// The template is a deterministic function of (bank, row, seed), so "memory
// templating" - the attacker profiling which of her frames contain exploitable
// flips - is reproducible, while different seeds model different DIMMs.

#ifndef VUSION_SRC_DRAM_ROWHAMMER_H_
#define VUSION_SRC_DRAM_ROWHAMMER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/dram/dram_mapping.h"
#include "src/dram/row_buffer.h"
#include "src/phys/physical_memory.h"

namespace vusion {

// One flippable cell, addressed relative to its row.
struct VulnerableCell {
  std::size_t byte_in_row = 0;
  std::uint8_t bit = 0;
};

struct FlipEvent {
  FrameId frame = kInvalidFrame;
  std::size_t byte_in_page = 0;
  std::uint8_t bit = 0;
  bool applied = false;  // false if the stored bit was already 0
};

namespace snapshot {
class SnapshotWriter;
class SnapshotReader;
}  // namespace snapshot

class RowhammerEngine {
 public:
  RowhammerEngine(const DramMapping& mapping, RowBuffer& row_buffer, PhysicalMemory& memory);

  // Savestates: the flipped-this-epoch set (sorted), epoch stamp, flip log.
  void SaveState(snapshot::SnapshotWriter& w) const;
  void RestoreState(snapshot::SnapshotReader& r);

  // The deterministic vulnerability template for a row (may be empty).
  [[nodiscard]] std::vector<VulnerableCell> TemplateFor(std::size_t bank, std::uint64_t row) const;

  // Called by the memory system after every DRAM activation; applies flips when the
  // double-sided condition is met. Returns the flips applied by this activation.
  std::vector<FlipEvent> OnActivation(const RowBuffer::AccessResult& access);

  [[nodiscard]] const std::vector<FlipEvent>& flips() const { return all_flips_; }
  void ClearFlipLog() { all_flips_.clear(); }
  // Lifetime flip count; survives ClearFlipLog (telemetry harvests this).
  [[nodiscard]] std::uint64_t total_flips() const { return total_flips_; }

 private:
  std::vector<FlipEvent> HammerVictim(std::size_t bank, std::uint64_t victim_row);

  const DramMapping* mapping_;
  RowBuffer* row_buffer_;
  PhysicalMemory* memory_;
  // Victim rows already flipped this epoch (a cell only discharges once per epoch).
  std::unordered_set<std::uint64_t> flipped_this_epoch_;
  std::uint64_t epoch_seen_ = 0;
  std::vector<FlipEvent> all_flips_;
  std::uint64_t total_flips_ = 0;
};

}  // namespace vusion

#endif  // VUSION_SRC_DRAM_ROWHAMMER_H_
