#include "src/kernel/machine.h"

#include <algorithm>
#include <cassert>

#include "src/host/thread_pool.h"
#include "src/kernel/khugepaged.h"
#include "src/kernel/process.h"
#include "src/snapshot/config_codec.h"
#include "src/snapshot/rng_codec.h"

namespace vusion {

Machine::Machine(const MachineConfig& config) : config_(config), rng_(config.seed) {
  latency_ = std::make_unique<LatencyModel>(config.latency, clock_, rng_.Fork());
  memory_ = std::make_unique<PhysicalMemory>(config.frame_count);
  buddy_ = std::make_unique<BuddyAllocator>(*memory_);
  llc_ = std::make_unique<Llc>(config.cache);
  if (config.enable_l1) {
    l1_ = std::make_unique<Llc>(config.l1_cache);
  }
  dram_mapping_ = std::make_unique<DramMapping>(config.dram);
  row_buffer_ = std::make_unique<RowBuffer>(*dram_mapping_, clock_);
  rowhammer_ = std::make_unique<RowhammerEngine>(*dram_mapping_, *row_buffer_, *memory_);

  fault_count_policy_ = &metrics_.GetCounter("fault.count", {{"kind", "policy"}});
  fault_count_demand_zero_ = &metrics_.GetCounter("fault.count", {{"kind", "demand_zero"}});
  fault_count_cow_ = &metrics_.GetCounter("fault.count", {{"kind", "cow"}});
  fault_count_unresolved_ = &metrics_.GetCounter("fault.count", {{"kind", "unresolved"}});
  fault_count_transient_ = &metrics_.GetCounter("fault.count", {{"kind", "transient"}});
  fault_count_spurious_ = &metrics_.GetCounter("fault.count", {{"kind", "spurious"}});
  fault_latency_policy_ = &metrics_.GetHistogram("fault.latency_ns", {{"kind", "policy"}});
  fault_latency_demand_zero_ =
      &metrics_.GetHistogram("fault.latency_ns", {{"kind", "demand_zero"}});
  fault_latency_cow_ = &metrics_.GetHistogram("fault.latency_ns", {{"kind", "cow"}});
}

Machine::~Machine() = default;

FaultInjector& Machine::EnableChaos(const ChaosConfig& config) {
  chaos_ = std::make_unique<FaultInjector>(config);
  buddy_->set_fault_injector(chaos_.get());
  return *chaos_;
}

FaultInjector& Machine::EnableChaosWithSchedule(const ChaosConfig& config,
                                                const std::vector<FaultRecord>& schedule) {
  chaos_ = std::make_unique<FaultInjector>(config, schedule);
  buddy_->set_fault_injector(chaos_.get());
  return *chaos_;
}

host::ThreadPool* Machine::HostPool(std::size_t threads) {
  if (external_host_pool_ != nullptr) {
    return external_host_pool_;
  }
  if (threads <= 1) {
    return nullptr;
  }
  if (host_pool_ == nullptr || host_pool_->thread_count() < threads) {
    host_pool_ = std::make_unique<host::ThreadPool>(threads);
  }
  return host_pool_.get();
}

Process& Machine::CreateProcess() {
  const auto id = static_cast<std::uint32_t>(processes_.size());
  processes_.push_back(std::make_unique<Process>(*this, id));
  if (write_epochs_enabled_) {
    processes_.back()->address_space().write_epochs().Enable();
  }
  return *processes_.back();
}

void Machine::EnableWriteEpochs() {
  write_epochs_enabled_ = true;
  for (const auto& process : processes_) {
    if (process != nullptr) {
      process->address_space().write_epochs().Enable();
    }
  }
}

Process& Machine::ForkProcess(Process& parent) {
  Process& child = CreateProcess();
  child.InheritLayout(parent);
  AddressSpace& pas = parent.address_space();
  AddressSpace& cas = child.address_space();
  std::vector<std::pair<Vpn, Pte>> entries;
  pas.page_table().ForEachEntry(0, Vpn{1} << 36, [&entries](Vpn vpn, Pte& pte) {
    entries.emplace_back(vpn, pte);
  });
  const LatencyConfig& lc = latency_->config();
  for (const auto& [vpn, pte] : entries) {
    latency_->ChargeExact(lc.pte_update);
    if (pte.huge()) {
      // Huge mappings are copied eagerly (they are always exclusive here).
      const FrameId block = buddy_->AllocateOrder(kHugePageOrder);
      if (block != kInvalidFrame) {
        for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
          memory_->CopyFrame(block + static_cast<FrameId>(i),
                             pte.frame + static_cast<FrameId>(i));
        }
        cas.MapHugeRange(vpn, block, pte.flags);
        continue;
      }
      // Fragmentation: fall back to eager small-page copies.
      for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
        const FrameId f = buddy_->Allocate();
        if (f == kInvalidFrame) {
          break;
        }
        memory_->CopyFrame(f, pte.frame + static_cast<FrameId>(i));
        cas.MapPage(vpn + i, f, kPtePresent | kPteWritable);
      }
      continue;
    }
    if ((pte.flags & kPteSwapped) != 0) {
      continue;  // swapped-out: the child demand-faults a fresh zero page
    }
    if (policy_ != nullptr && policy_->Owns(parent, vpn)) {
      // Fusion-managed page: eager private copy keeps the engine's ownership
      // model untangled from fork's kernel-level sharing.
      const FrameId f = buddy_->Allocate();
      if (f != kInvalidFrame) {
        memory_->CopyFrame(f, pte.frame);
        cas.MapPage(vpn, f, kPtePresent | kPteWritable | kPteAccessed);
      }
      continue;
    }
    // Plain page (or an already fork-shared one): share copy-on-write.
    const std::uint32_t refs = memory_->refcount(pte.frame);
    memory_->SetRefcount(pte.frame, refs == 0 ? 2 : refs + 1);
    const auto flags =
        static_cast<std::uint16_t>((pte.flags & ~kPteWritable) | kPteCow);
    pas.SetPte(vpn, Pte{pte.frame, flags});
    cas.MapPage(vpn, pte.frame, flags);
  }
  return child;
}

void Machine::DestroyProcess(Process& process) {
  AddressSpace& as = process.address_space();
  // Collect mappings first (unmapping mutates the tree we iterate).
  std::vector<std::pair<Vpn, Pte>> entries;
  as.page_table().ForEachEntry(0, Vpn{1} << 36, [&entries](Vpn vpn, Pte& pte) {
    entries.emplace_back(vpn, pte);
  });
  for (const auto& [vpn, pte] : entries) {
    if (pte.huge()) {
      // Huge mappings are always exclusive (engines split before sharing).
      as.UnmapPage(vpn);  // clears the PMD entry
      FlushFrame(pte.frame);
      buddy_->FreeOrder(pte.frame, kHugePageOrder);
    } else {
      UnmapAndFree(process, vpn);
    }
  }
  if (policy_ != nullptr) {
    policy_->OnProcessDestroy(process);
  }
  // The slot goes null; process ids are never reused. The AddressSpace destructor
  // releases the page-table node frames.
  processes_[process.id()].reset();
}

void Machine::RemoveDaemon(Daemon* daemon) {
  daemons_.erase(std::remove(daemons_.begin(), daemons_.end(), daemon), daemons_.end());
}

Khugepaged& Machine::EnableKhugepaged(const KhugepagedConfig& config) {
  khugepaged_ = std::make_unique<Khugepaged>(*this, config);
  AddDaemon(khugepaged_.get());
  return *khugepaged_;
}

void Machine::FlushFrame(FrameId frame) {
  if (l1_ != nullptr) {
    l1_->FlushFrame(frame);
  }
  llc_->FlushFrame(frame);
}

void Machine::RunDueDaemons() {
  if (in_daemon_) {
    return;
  }
  in_daemon_ = true;
  bool ran = true;
  while (ran) {
    ran = false;
    for (Daemon* d : daemons_) {
      if (d->next_run() <= clock_.now()) {
        d->Run();
        ran = true;
      }
    }
  }
  in_daemon_ = false;
}

void Machine::Idle(SimTime duration) {
  const SimTime end = clock_.now() + duration;
  while (clock_.now() < end) {
    SimTime next = end;
    for (const Daemon* d : daemons_) {
      next = std::min(next, d->next_run());
    }
    if (next > clock_.now()) {
      clock_.Advance(next - clock_.now());
    }
    RunDueDaemons();
  }
}

void Machine::UnmapAndFree(Process& process, Vpn vpn) {
  AddressSpace& as = process.address_space();
  Pte* pte = as.GetPte(vpn);
  if (pte == nullptr || pte->flags == 0) {
    return;
  }
  assert(!pte->huge() && "unmap of individual huge subpages is not supported");
  const FrameId frame = pte->frame;
  const bool policy_owned = policy_ != nullptr && policy_->OnUnmap(process, vpn);
  as.UnmapPage(vpn);
  if (!policy_owned && frame != kInvalidFrame) {
    // Fork-shared frames stay alive until the last sharer unmaps.
    const std::uint32_t refs = memory_->refcount(frame);
    if (refs > 1) {
      memory_->DecRef(frame);
      return;
    }
    if (refs == 1) {
      memory_->SetRefcount(frame, 0);
    }
    FlushFrame(frame);
    buddy_->Free(frame);
  }
}

MetricsSnapshot Machine::CollectMetrics() {
  metrics_.GetCounter("fault.total").Set(total_faults_);
  const auto harvest_cache = [this](const Llc& cache, const char* level) {
    const MetricLabels labels{{"level", level}};
    metrics_.GetCounter("cache.hits", labels).Set(cache.hits());
    metrics_.GetCounter("cache.misses", labels).Set(cache.misses());
    metrics_.GetCounter("cache.line_flushes", labels).Set(cache.line_flushes());
    metrics_.GetCounter("cache.frame_flushes", labels).Set(cache.frame_flushes());
  };
  harvest_cache(*llc_, "llc");
  if (l1_ != nullptr) {
    harvest_cache(*l1_, "l1");
  }
  metrics_.GetCounter("dram.row_hits").Set(row_buffer_->row_hits());
  metrics_.GetCounter("dram.row_conflicts").Set(row_buffer_->row_conflicts());
  metrics_.GetCounter("dram.activations").Set(row_buffer_->total_activations());
  metrics_.GetCounter("dram.rowhammer_flips").Set(rowhammer_->total_flips());
  metrics_.GetCounter("buddy.allocs").Set(buddy_->alloc_count());
  metrics_.GetCounter("buddy.frees").Set(buddy_->free_op_count());
  metrics_.GetCounter("buddy.splits").Set(buddy_->split_count());
  metrics_.GetCounter("buddy.coalesces").Set(buddy_->coalesce_count());
  metrics_.GetCounter("buddy.failed_allocs").Set(buddy_->failed_alloc_count());
  metrics_.GetGauge("buddy.free_frames").Set(static_cast<double>(buddy_->free_count()));
  if (khugepaged_ != nullptr) {
    metrics_.GetCounter("khugepaged.collapses").Set(khugepaged_->collapses());
    metrics_.GetCounter("khugepaged.collapse_attempts").Set(khugepaged_->collapse_attempts());
    metrics_.GetGauge("khugepaged.current_n").Set(static_cast<double>(khugepaged_->current_n()));
  }
  metrics_.GetCounter("trace.emitted").Set(trace_.total_emitted());
  metrics_.GetCounter("trace.dropped").Set(trace_.dropped());
  const auto pattern_stats = memory_->pattern_hash_cache_stats();
  metrics_.GetCounter("pattern_hash_cache.hits").Set(pattern_stats.hits);
  metrics_.GetCounter("pattern_hash_cache.misses").Set(pattern_stats.misses);
  metrics_.GetCounter("pattern_hash_cache.evictions").Set(pattern_stats.evictions);
  metrics_.GetGauge("pattern_hash_cache.entries")
      .Set(static_cast<double>(pattern_stats.entries));
  if (write_epochs_enabled_) {
    std::uint64_t bumps = 0;
    std::uint64_t tracked = 0;
    for (const auto& process : processes_) {
      if (process != nullptr) {
        const WriteEpochMap& epochs = process->address_space().write_epochs();
        bumps += epochs.bumps();
        tracked += epochs.tracked_pages();
      }
    }
    metrics_.GetCounter("write_epoch.bumps").Set(bumps);
    metrics_.GetGauge("write_epoch.tracked_pages").Set(static_cast<double>(tracked));
  }
  if (chaos_ != nullptr) {
    chaos_->ExportMetrics(metrics_);
  }
  return metrics_.Snapshot();
}

Machine::Footprint Machine::MeasureFootprint() const {
  Footprint fp;
  fp.frame_table_bytes = memory_->frame_table_bytes();
  fp.materialized_bytes = memory_->materialized_bytes();
  fp.cache_bytes = llc_->resident_bytes();
  if (l1_ != nullptr) {
    fp.cache_bytes += l1_->resident_bytes();
  }
  fp.trace_bytes = trace_.resident_bytes();
  return fp;
}

std::uint64_t Machine::CountHugeMappings() const {
  std::uint64_t count = 0;
  for (const auto& process : processes_) {
    if (process == nullptr) {
      continue;
    }
    auto& table = const_cast<Process&>(*process).address_space().page_table();
    table.ForEachEntry(0, Vpn{1} << 36, [&count](Vpn, Pte& pte) {
      if (pte.huge()) {
        ++count;
      }
    });
  }
  return count;
}

// --- Savestates (DESIGN.md §13) ---

void Machine::Save(snapshot::SnapshotWriter& w) {
  using snapshot::WriteKhugepagedConfig;
  using snapshot::WriteLatencyConfig;
  using snapshot::WriteRng;

  // The first section carries the process-slot liveness mask so Restore can
  // create the process shells before any component state lands.
  w.BeginSection("machine");
  w.U64(clock_.now());
  w.U64(total_faults_);
  w.Bool(write_epochs_enabled_);
  w.U64(processes_.size());
  for (const auto& process : processes_) {
    w.Bool(process != nullptr);
  }
  w.EndSection();

  w.BeginSection("rng");
  WriteRng(w, rng_);
  w.EndSection();

  // The in-effect latency config is serialized separately from the boot config:
  // mutable_config() tweaks (noise sigma ablations) are state.
  w.BeginSection("latency");
  WriteLatencyConfig(w, latency_->config());
  w.Bool(latency_->batching_enabled());
  WriteRng(w, latency_->noise_rng());
  const LatencyModel::NoiseCacheState noise = latency_->noise_cache_state();
  for (const double g : noise.gauss) {
    w.F64(g);
  }
  for (const double f : noise.factor) {
    w.F64(f);
  }
  w.F64(noise.factor_sigma);
  w.U32(static_cast<std::uint32_t>(noise.noise_pos));
  w.EndSection();

  w.BeginSection("phys");
  memory_->SaveState(w);
  w.EndSection();

  w.BeginSection("buddy");
  buddy_->SaveState(w);
  w.EndSection();

  w.BeginSection("cache");
  llc_->SaveState(w);
  w.Bool(l1_ != nullptr);
  if (l1_ != nullptr) {
    l1_->SaveState(w);
  }
  w.EndSection();

  w.BeginSection("dram");
  row_buffer_->SaveState(w);
  rowhammer_->SaveState(w);
  w.EndSection();

  w.BeginSection("procs");
  for (const auto& process : processes_) {
    if (process == nullptr) {
      continue;
    }
    w.U64(process->next_region_vpn());
    AddressSpace& as = process->address_space();
    const auto& areas = as.vmas().areas();
    w.U64(areas.size());
    for (const VmArea& vma : areas) {
      w.U64(vma.start);
      w.U64(vma.pages);
      w.Bool(vma.mergeable);
      w.Bool(vma.thp_eligible);
      w.U8(static_cast<std::uint8_t>(vma.type));
    }
    as.write_epochs().SaveState(w);
    as.page_table().SaveState(w);
    as.tlb().SaveState(w);
  }
  w.EndSection();

  w.BeginSection("trace");
  trace_.SaveState(w);
  w.EndSection();

  w.BeginSection("metrics");
  metrics_.SaveState(w);
  w.EndSection();

  w.BeginSection("chaos");
  w.Bool(chaos_ != nullptr);
  if (chaos_ != nullptr) {
    chaos_->SaveState(w);
  }
  w.EndSection();

  w.BeginSection("khugepaged");
  w.Bool(khugepaged_ != nullptr);
  if (khugepaged_ != nullptr) {
    // Daemon order is behavioral (RunDueDaemons runs in registration order), so
    // record whether khugepaged was registered before the engine.
    w.Bool(!daemons_.empty() && daemons_.front() == khugepaged_.get());
    WriteKhugepagedConfig(w, khugepaged_->config());
    khugepaged_->SaveState(w);
  }
  w.EndSection();
}

void Machine::Restore(snapshot::SnapshotReader& r) {
  using snapshot::ReadKhugepagedConfig;
  using snapshot::ReadLatencyConfig;
  using snapshot::ReadRng;
  using snapshot::RestoreError;

  r.OpenSection("machine");
  const SimTime now = r.U64();
  total_faults_ = r.U64();
  const bool write_epochs = r.Bool();
  const std::uint64_t slot_count = r.Count(1);
  std::vector<bool> live;
  live.reserve(static_cast<std::size_t>(slot_count));
  for (std::uint64_t i = 0; i < slot_count; ++i) {
    live.push_back(r.Bool());
  }
  r.EndSection();

  if (!processes_.empty()) {
    throw RestoreError("machine", "restore target already has processes");
  }
  clock_.Reset();
  clock_.Advance(now);

  // Process shells first: shell construction may draw page-table root frames
  // from the live buddy, and the wholesale phys/buddy restore below then
  // discards those draws (PageTable::RestoreState likewise drops the shell
  // nodes without freeing).
  for (const bool alive : live) {
    if (alive) {
      CreateProcess();
    } else {
      processes_.push_back(nullptr);
    }
  }
  if (write_epochs) {
    EnableWriteEpochs();
  }

  r.OpenSection("rng");
  ReadRng(r, rng_);
  r.EndSection();

  r.OpenSection("latency");
  latency_->mutable_config() = ReadLatencyConfig(r);
  latency_->set_batching_enabled(r.Bool());
  ReadRng(r, latency_->noise_rng());
  LatencyModel::NoiseCacheState noise;
  for (double& g : noise.gauss) {
    g = r.F64();
  }
  for (double& f : noise.factor) {
    f = r.F64();
  }
  noise.factor_sigma = r.F64();
  noise.noise_pos = static_cast<int>(r.U32());
  if (noise.noise_pos < 0 || noise.noise_pos > LatencyModel::kNoiseBatch) {
    throw RestoreError("latency", "noise cursor out of range");
  }
  latency_->RestoreNoiseCacheState(noise);
  r.EndSection();

  r.OpenSection("phys");
  memory_->RestoreState(r);
  r.EndSection();

  r.OpenSection("buddy");
  buddy_->RestoreState(r);
  r.EndSection();

  r.OpenSection("cache");
  llc_->RestoreState(r);
  const bool has_l1 = r.Bool();
  if (has_l1 != (l1_ != nullptr)) {
    throw RestoreError("cache", "L1 presence does not match the machine config");
  }
  if (l1_ != nullptr) {
    l1_->RestoreState(r);
  }
  r.EndSection();

  r.OpenSection("dram");
  row_buffer_->RestoreState(r);
  rowhammer_->RestoreState(r);
  r.EndSection();

  r.OpenSection("procs");
  for (const auto& process : processes_) {
    if (process == nullptr) {
      continue;
    }
    process->set_next_region_vpn(r.U64());
    AddressSpace& as = process->address_space();
    std::vector<VmArea>& areas = as.vmas().mutable_areas();
    areas.clear();
    const std::uint64_t vma_count = r.Count(19);
    areas.reserve(static_cast<std::size_t>(vma_count));
    for (std::uint64_t i = 0; i < vma_count; ++i) {
      VmArea vma;
      vma.start = r.U64();
      vma.pages = r.U64();
      vma.mergeable = r.Bool();
      vma.thp_eligible = r.Bool();
      const std::uint8_t type = r.U8();
      if (type > static_cast<std::uint8_t>(PageType::kGuestKernel)) {
        throw RestoreError("procs", "bad VMA page type");
      }
      vma.type = static_cast<PageType>(type);
      areas.push_back(vma);
    }
    as.write_epochs().RestoreState(r);
    as.page_table().RestoreState(r);
    as.tlb().RestoreState(r);
  }
  r.EndSection();

  r.OpenSection("trace");
  trace_.RestoreState(r);
  r.EndSection();

  r.OpenSection("metrics");
  metrics_.RestoreState(r);
  r.EndSection();

  r.OpenSection("chaos");
  if (r.Bool()) {
    EnableChaos(ChaosConfig{});
    chaos_->RestoreState(r);
  }
  r.EndSection();

  r.OpenSection("khugepaged");
  if (r.Bool()) {
    const bool khugepaged_first = r.Bool();
    const KhugepagedConfig kcfg = ReadKhugepagedConfig(r);
    EnableKhugepaged(kcfg);
    khugepaged_->RestoreState(r);
    if (khugepaged_first) {
      const auto it =
          std::find(daemons_.begin(), daemons_.end(), static_cast<Daemon*>(khugepaged_.get()));
      std::rotate(daemons_.begin(), it, it + 1);
    }
  }
  r.EndSection();
}

}  // namespace vusion
