// Figure 4: the effect of copy-on-access (vs copy-on-write) unmerging on fusion
// rates, plus the zero-page-only strawman. Four Apache VMs boot staggered; the
// series is saved memory over time. Expected shape: CoA tracks CoW closely (~1%
// apart after stabilizing); zero-only captures only a small fraction.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/workload/apache_workload.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

constexpr SimTime kStagger = 20 * kSecond;   // paper: 5 minutes, scaled
constexpr SimTime kTotal = 200 * kSecond;
constexpr SimTime kSample = 10 * kSecond;

std::vector<double> RunSeries(EngineKind kind, bench::Reporter& reporter) {
  Scenario scenario(EvalScenario(kind));
  std::vector<double> series;
  std::vector<std::unique_ptr<ApacheWorkload>> servers;
  SimTime next_boot = 0;
  std::size_t booted = 0;
  for (SimTime t = 0; t <= kTotal; t += kSample) {
    while (booted < 4 && t >= next_boot) {
      Process& vm = scenario.BootVm(EvalImage(), 100 + booted);
      ApacheWorkload::Config config;
      config.initial_workers = 4;
      config.max_workers = 8;
      servers.push_back(std::make_unique<ApacheWorkload>(vm, config, 7 + booted));
      ++booted;
      next_boot += kStagger;
    }
    // Light background load on every booted server (they provide fusion fodder).
    for (auto& server : servers) {
      server->Run(100 * kMillisecond);
    }
    scenario.RunFor(kSample);
    series.push_back(scenario.engine() != nullptr
                         ? static_cast<double>(scenario.engine()->frames_saved()) * kPageSize /
                               (1024.0 * 1024.0)
                         : 0.0);
  }
  reporter.AddMetrics(EngineKindName(kind), scenario.CollectMetrics());
  return series;
}

void Run() {
  bench::Reporter reporter("fig4_coa_fusion");
  reporter.Header("Figure 4: copy-on-access vs copy-on-write fusion rates (4 Apache VMs)");
  DescribeEval(reporter, EngineKind::kKsm);
  const EngineKind kinds[] = {EngineKind::kKsm, EngineKind::kKsmCoA, EngineKind::kKsmZeroOnly};
  std::vector<std::vector<double>> all;
  for (const EngineKind kind : kinds) {
    all.push_back(RunSeries(kind, reporter));
    reporter.AddSeries(EngineKindName(kind), all.back());
  }
  std::printf("%-8s %-14s %-14s %-14s\n", "t(s)", "CoW (KSM)", "CoA", "zero-only");
  for (std::size_t i = 0; i < all[0].size(); ++i) {
    std::printf("%-8llu %-14.1f %-14.1f %-14.1f\n",
                static_cast<unsigned long long>(i * (kSample / kSecond)), all[0][i], all[1][i],
                all[2][i]);
  }
  const double final_cow = all[0].back();
  const double final_coa = all[1].back();
  const double final_zero = all[2].back();
  std::printf("\nfinal saved MB: CoW=%.1f CoA=%.1f (%.1f%% of CoW) zero-only=%.1f (%.0f%%)\n",
              final_cow, final_coa, 100.0 * final_coa / final_cow, final_zero,
              100.0 * final_zero / final_cow);
  std::printf("paper: CoA within ~1%% of CoW; zero pages only ~16%% of duplicates\n");
  reporter.AddRow("final_saved_mb", {{"cow_mb", final_cow},
                                     {"coa_mb", final_coa},
                                     {"zero_only_mb", final_zero},
                                     {"coa_pct_of_cow", 100.0 * final_coa / final_cow},
                                     {"zero_pct_of_cow", 100.0 * final_zero / final_cow}});
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
