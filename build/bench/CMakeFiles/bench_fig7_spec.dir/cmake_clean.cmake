file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_spec.dir/bench_fig7_spec.cc.o"
  "CMakeFiles/bench_fig7_spec.dir/bench_fig7_spec.cc.o.d"
  "bench_fig7_spec"
  "bench_fig7_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
