file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_postmark.dir/bench_table4_postmark.cc.o"
  "CMakeFiles/bench_table4_postmark.dir/bench_table4_postmark.cc.o.d"
  "bench_table4_postmark"
  "bench_table4_postmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_postmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
