file(REMOVE_RECURSE
  "libvusion_attack.a"
)
