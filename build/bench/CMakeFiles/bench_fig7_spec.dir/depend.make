# Empty dependencies file for bench_fig7_spec.
# This may be replaced when dependencies are built.
