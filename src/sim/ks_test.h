// Kolmogorov-Smirnov tests, as used by the paper's security evaluation (§9.1):
//  - a two-sample test that merged/unmerged access timings follow the same
//    distribution (Same Behaviour), and
//  - a one-sample goodness-of-fit test that (fake)merge frame offsets follow the
//    uniform distribution (Randomized Allocation).

#ifndef VUSION_SRC_SIM_KS_TEST_H_
#define VUSION_SRC_SIM_KS_TEST_H_

#include <vector>

namespace vusion {

struct KsResult {
  double statistic = 0.0;  // sup |F1 - F2|
  double p_value = 0.0;    // asymptotic Kolmogorov distribution
};

// Two-sample KS test. Both samples must be non-empty.
KsResult KsTwoSample(std::vector<double> a, std::vector<double> b);

// One-sample KS test against Uniform[lo, hi). Sample must be non-empty and lo < hi.
KsResult KsUniform(std::vector<double> samples, double lo, double hi);

// Complementary CDF of the Kolmogorov distribution, Q(lambda) = 2 * sum (-1)^{k-1}
// exp(-2 k^2 lambda^2). Exposed for testing.
double KolmogorovQ(double lambda);

}  // namespace vusion

#endif  // VUSION_SRC_SIM_KS_TEST_H_
