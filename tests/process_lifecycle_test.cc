// VM/process teardown: destroying a process must release every frame through the
// fusion-aware paths, keep the other sharers intact, and leave no dangling engine
// state - under every engine, including repeated boot/destroy churn.

#include <gtest/gtest.h>

#include <set>

#include "src/fusion/engine_factory.h"
#include "src/fusion/ksm.h"
#include "src/fusion/vusion_engine.h"
#include "src/kernel/process.h"
#include "src/workload/vm_image.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 1u << 14;
  return config;
}

FusionConfig FastFusion() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 256;
  config.pool_frames = 512;
  config.wpf_period = 10 * kMillisecond;
  return config;
}

TEST(ProcessLifecycleTest, DestroyReleasesAllFrames) {
  Machine machine(SmallMachine());
  Process& p = machine.CreateProcess();
  const std::size_t before = machine.memory().allocated_count();
  const VirtAddr base = p.AllocateRegion(128, PageType::kAnonymous, false, true);
  for (std::size_t i = 0; i < 128; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, i);
  }
  const VirtAddr huge =
      p.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, false, true);
  ASSERT_TRUE(p.SetupMapHuge(VaddrToVpn(huge), 0x9000));
  EXPECT_GT(machine.memory().allocated_count(), before + 128);
  machine.DestroyProcess(p);
  EXPECT_EQ(machine.processes()[0], nullptr);
  // Only the other processes' (none) and the dead process's... nothing remains but
  // what existed before it was created, minus its own page-table root.
  EXPECT_LE(machine.memory().allocated_count(), before);
}

TEST(ProcessLifecycleTest, DestroySharerKeepsOtherSideIntactUnderKsm) {
  Machine machine(SmallMachine());
  Ksm ksm(machine, FastFusion());
  ksm.Install();
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(4, PageType::kAnonymous, true, false);
  const VirtAddr pb = b.AllocateRegion(4, PageType::kAnonymous, true, false);
  a.SetupMapPattern(VaddrToVpn(pa), 0x77);
  b.SetupMapPattern(VaddrToVpn(pb), 0x77);
  for (int i = 0; i < 200 && ksm.frames_saved() == 0; ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_TRUE(ksm.IsMerged(b, VaddrToVpn(pb)));
  const std::uint64_t content = b.Read64(pb);

  machine.DestroyProcess(a);
  EXPECT_EQ(ksm.frames_saved(), 0u);
  EXPECT_EQ(b.Read64(pb), content);
  // The engine keeps running without touching freed state.
  machine.Idle(20 * kMillisecond);
  EXPECT_TRUE(ksm.ValidateTrees());
  ksm.Uninstall();
}

TEST(ProcessLifecycleTest, DestroySharerKeepsOtherSideIntactUnderVUsion) {
  Machine machine(SmallMachine());
  VUsionEngine engine(machine, FastFusion());
  engine.Install();
  Process& a = machine.CreateProcess();
  Process& b = machine.CreateProcess();
  const VirtAddr pa = a.AllocateRegion(4, PageType::kAnonymous, true, false);
  const VirtAddr pb = b.AllocateRegion(4, PageType::kAnonymous, true, false);
  a.SetupMapPattern(VaddrToVpn(pa), 0x88);
  b.SetupMapPattern(VaddrToVpn(pb), 0x88);
  for (int i = 0; i < 400 && !engine.IsShared(b, VaddrToVpn(pb)); ++i) {
    machine.Idle(1 * kMillisecond);
  }
  ASSERT_TRUE(engine.IsShared(b, VaddrToVpn(pb)));

  machine.DestroyProcess(a);
  EXPECT_TRUE(engine.IsManaged(b, VaddrToVpn(pb)));
  EXPECT_FALSE(engine.IsShared(b, VaddrToVpn(pb)));
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0x88);
  EXPECT_EQ(b.Read64(pb), probe.ReadU64(0, 0));
  machine.Idle(20 * kMillisecond);
  EXPECT_TRUE(engine.ValidateTree());
  engine.Uninstall();
}

class ChurnTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ChurnTest, BootDestroyChurnLeaksNothing) {
  Machine machine(SmallMachine());
  FusionConfig fusion = FastFusion();
  fusion.mc_low_watermark = 1u << 14;  // keep the MC variant swapping
  auto engine = MakeEngine(GetParam(), machine, fusion);
  if (engine != nullptr) {
    engine->Install();
  }
  VmImageSpec image;
  image.total_pages = 512;
  std::size_t baseline = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    Process& vm1 = VmImage::Boot(machine, image, 100 + cycle);
    Process& vm2 = VmImage::Boot(machine, image, 200 + cycle);
    machine.Idle(30 * kMillisecond);
    machine.DestroyProcess(vm1);
    machine.Idle(10 * kMillisecond);
    machine.DestroyProcess(vm2);
    machine.Idle(10 * kMillisecond);
    if (engine != nullptr && dynamic_cast<VUsionEngine*>(engine.get()) != nullptr) {
      // Let the deferred-free worker drain before auditing.
      machine.Idle(5 * kMillisecond);
    }
    const std::size_t now = machine.memory().allocated_count();
    if (cycle == 0) {
      baseline = now;
    } else {
      // No growth across cycles: everything a dead VM owned was reclaimed.
      EXPECT_LE(now, baseline + 8) << "cycle " << cycle;
    }
    if (engine != nullptr) {
      EXPECT_EQ(engine->frames_saved(), 0u) << "cycle " << cycle;
    }
  }
  if (engine != nullptr) {
    engine->Uninstall();
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, ChurnTest,
                         ::testing::Values(EngineKind::kNone, EngineKind::kKsm,
                                           EngineKind::kWpf, EngineKind::kVUsion,
                                           EngineKind::kVUsionThp,
                                           EngineKind::kMemoryCombining),
                         [](const ::testing::TestParamInfo<EngineKind>& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace vusion
