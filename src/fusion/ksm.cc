#include "src/fusion/ksm.h"

#include "src/snapshot/io.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace vusion {

// Tree comparators are pure host-side content orderings; the modeled descent cost
// is charged explicitly (ChargeTreeDescend) at each lookup/insert site.
int Ksm::StableCompare::operator()(StableEntry* const& a, StableEntry* const& b) const {
  return ksm->content_.HostOrder(a->frame, b->frame);
}

// Fingerprint mode orders by immutable keys — insert-time hash, then frame id —
// so the tree's shape depends only on the insert sequence, never on content that
// mutated after insertion (unstable pages are not write-protected). Byte mode
// keeps the reference live byte order.
int Ksm::UnstableCompare::operator()(const UnstableItem& a, const UnstableItem& b) const {
  if (ksm->content_.byte_ordered()) {
    return ksm->content_.HostOrder(a.frame, b.frame);
  }
  if (a.sort_hash != b.sort_hash) {
    return a.sort_hash < b.sort_hash ? -1 : 1;
  }
  if (a.frame != b.frame) {
    return a.frame < b.frame ? -1 : 1;
  }
  return 0;
}

Ksm::Ksm(Machine& machine, const FusionConfig& config)
    : FusionEngine(machine, config),
      content_(machine, config.byte_ordered_trees),
      cursor_(machine),
      pipeline_(machine.memory(), machine.HostPool(config_.scan_threads)),
      stable_(StableCompare{this}),
      unstable_(UnstableCompare{this}),
      delta_mode_(config.delta_scan && !config.byte_ordered_trees) {
  stable_.SetNodeArena(&arena_);
  unstable_.SetNodeArena(&arena_);
  pipeline_.ConfigureStreaming(config.scan_streaming, config.scan_chunk_pages);
  if (delta_mode_) {
    machine.EnableWriteEpochs();
  }
}

Ksm::~Ksm() {
  stable_.InOrder([this](StableEntry* const& e) { arena_.Delete(e); });
}

void Ksm::ExportMetrics(MetricsRegistry& registry) const {
  FusionEngine::ExportMetrics(registry);
  if (delta_mode_) {
    delta_.ExportMetrics(registry);
  }
}

const char* Ksm::name() const {
  if (config_.zero_pages_only) {
    return "KSM-zero-only";
  }
  return config_.unmerge_on_any_access ? "KSM-CoA" : "KSM";
}

std::uint16_t Ksm::MergedFlags(std::uint16_t accessed_bit) const {
  std::uint16_t flags = kPtePresent | kPteCow | accessed_bit;
  if (config_.unmerge_on_any_access) {
    // Figure 4 variant: unmerge on *any* access; reserved bits trap reads too.
    flags |= kPteReserved;
  }
  return flags;
}

void Ksm::Run() {
  if (SkipWake()) {
    return;
  }
  const auto scan_start = std::chrono::steady_clock::now();
  NotifyPhase(ScanPhase::kQuantumStart);
  // The pool can change between wakes (a Fleet installs its shared pool after
  // construction); refresh it every quantum. Any pool — even the fleet's with
  // scan_threads=1 — selects the pipelined path, so a member machine's hashing
  // can overlap its own merge on the fleet's workers.
  host::ThreadPool* pool = machine_->HostPool(config_.scan_threads);
  pipeline_.set_pool(pool);
  if (pool != nullptr) {
    ScanQuantumPipelined();
  } else {
    ScanQuantumSerial();
  }
  NotifyPhase(ScanPhase::kQuantumEnd);
  timing_.scan_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - scan_start)
          .count());
  ++timing_.batches;
  next_run_ = machine_->clock().now() + config_.wake_period;
}

void Ksm::ScanQuantumSerial() {
  // Batch the quantum's charges: noise is drawn per charge in the usual order,
  // the clock advances once per flush (trace emits and phase hooks flush).
  ChargeSpan span(machine_->latency());
  FaultInjector* injector = chaos();
  for (std::size_t i = 0; i < config_.pages_per_wake; ++i) {
    // Injected scan interruption: abandon the rest of the quantum (pages not
    // yet consumed from the cursor are simply picked up next wake).
    if (injector != nullptr && injector->ShouldFail(FaultSite::kScanInterrupt)) {
      injector->RecordDegradation();
      break;
    }
    Process* process = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    if (!cursor_.Next(process, vpn, wrapped)) {
      break;
    }
    if (wrapped) {
      // A full round completed: the unstable tree is rebuilt from scratch.
      UnstableClear();
      ++stats_.full_scans;
    }
    timing_.items += 1;
    ScanOne(*process, vpn);
  }
}

void Ksm::ScanQuantumPipelined() {
  // Collect the quantum first. ScanOne never changes the process list, VMA
  // layout, or mergeable flags (only PTEs and frame contents), so the cursor
  // yields the exact sequence the serial interleaving would.
  ChargeSpan span(machine_->latency());
  FaultInjector* injector = chaos();
  batch_.clear();
  for (std::size_t i = 0; i < config_.pages_per_wake; ++i) {
    if (injector != nullptr && injector->ShouldFail(FaultSite::kScanInterrupt)) {
      injector->RecordDegradation();
      break;
    }
    Process* process = nullptr;
    Vpn vpn = 0;
    bool wrapped = false;
    if (!cursor_.Next(process, vpn, wrapped)) {
      break;
    }
    host::ScanItem item;
    item.process = process;
    item.as = &process->address_space();
    item.pid = process->id();
    item.vpn = vpn;
    item.wrapped = wrapped;
    batch_.push_back(item);
  }
  NotifyPhase(ScanPhase::kBatchCollected);
  PruneDeadItems();
  // With delta scanning on, phase-1 workers skip the resolve-and-hash for pages
  // whose pass-cache entry passes the (read-only) epoch check; phase 2's
  // TryReplay revalidates authoritatively.
  host::ParallelScanPipeline::Phase1Probe probe;
  if (delta_mode_) {
    probe = [this](const host::ScanItem& item) {
      return item.as != nullptr &&
             delta_.PeekValid(item.pid, item.vpn, item.as->write_epochs().Get(item.vpn));
    };
  }
  // The kHashed boundary (and its re-prune) only exists for an armed phase
  // hook; without one, leaving between_phases null lets the pipeline take the
  // streaming shape, which has no such boundary.
  std::function<void()> between_phases;
  if (phase_hook_) {
    between_phases = [this] {
      NotifyPhase(ScanPhase::kHashed);
      PruneDeadItems();
    };
  }
  pipeline_.Run(
      batch_, timing_, nullptr,
      [this](host::ScanItem& item) {
        // A phase hook may have torn the process down after collection; the
        // cursor-side effects (round wrap) still apply, the page itself is
        // skipped.
        if (item.wrapped) {
          UnstableClear();
          ++stats_.full_scans;
        }
        if (item.process == nullptr ||
            machine_->processes()[item.pid] == nullptr) {
          return;
        }
        ScanOne(*item.process, item.vpn);
      },
      between_phases, probe);
}

void Ksm::PruneDeadItems() {
  // Null out batch items whose process died in a phase hook, keeping the items
  // themselves (their wrapped flags still drive round bookkeeping).
  for (host::ScanItem& item : batch_) {
    if (item.process != nullptr && machine_->processes()[item.pid] == nullptr) {
      item.process = nullptr;
      item.as = nullptr;
    }
  }
}

void Ksm::ScanOne(Process& process, Vpn vpn) {
  if (delta_mode_ && TryReplay(process, vpn)) {
    return;
  }
  ScanOneFull(process, vpn);
}

void Ksm::RecordSimple(std::uint32_t pid, Vpn vpn, std::uint64_t epoch, std::uint8_t kind,
                       FrameId frame, std::uint64_t content_gen) {
  if (!delta_mode_) {
    return;
  }
  DeltaPassCache::Entry& e = delta_.Record(pid, vpn);
  e.kind = kind;
  e.epoch = epoch;
  e.frame = frame;
  e.content_gen = content_gen;
}

void Ksm::ScanOneFull(Process& process, Vpn vpn) {
  ++stats_.pages_scanned;
  AddressSpace& as = process.address_space();
  const std::uint32_t pid = process.id();
  // Snapshot the guards before the scan body: none of the recording paths below
  // mutate this page's PTE, so the snapshot is the entry's valid-from point.
  const std::uint64_t epoch = delta_mode_ ? as.write_epochs().GetFast(vpn) : 0;
  Pte* pte = as.GetPte(vpn);
  if (pte == nullptr || !pte->present()) {
    RecordSimple(pid, vpn, epoch, kDeltaSkip, kInvalidFrame, 0);
    return;
  }
  if (pte->reserved_trap()) {
    // In the copy-on-access variant merged pages themselves carry the reserved
    // trap, so the rmap still decides merged-vs-skipped on this branch.
    if (config_.unmerge_on_any_access && rmap_.contains(KeyOf(process, vpn))) {
      RecordSimple(pid, vpn, epoch, kDeltaMerged, kInvalidFrame, 0);
      return;
    }
    RecordSimple(pid, vpn, epoch, kDeltaSkip, kInvalidFrame, 0);
    return;
  }
  FrameId frame = pte->frame;
  if (pte->huge()) {
    frame += static_cast<FrameId>(vpn & (kPagesPerHugePage - 1));
  }
  PhysicalMemory& memory = machine_->memory();
  // Peek the next page's PTE — for 511 of 512 vpns it is the adjacent entry in
  // the same leaf table, already in cache — and warm its frame's metadata line
  // (refcount, hash memo) a whole page-scan ahead of its own scan. The rmap
  // slot is likewise prefetched a page early; it is the one genuinely random
  // access on the shared-frame path below.
  if (!pte->huge() && (vpn & (kPagesPerHugePage - 1)) != kPagesPerHugePage - 1) {
    const Pte& next = pte[1];
    if (next.present() && !next.huge()) {
      memory.PrefetchFrame(next.frame);
    }
  }
  rmap_.Prefetch(KeyOf(process, vpn + 1));
  if (memory.refcount(frame) > 0) {
    // A merged page always maps a stable frame, and stable frames keep
    // refcount == entry->refs > 0 (AuditInvariants asserts exactly this), so
    // the rmap probe is needed only on this shared-frame path — unique pages,
    // the common case, skip it entirely.
    if (rmap_.contains(KeyOf(process, vpn))) {
      RecordSimple(pid, vpn, epoch, kDeltaMerged, kInvalidFrame, 0);
      return;  // already merged
    }
    // Fork-shared with another process: the kernel owns this CoW state. The
    // refcount can drop without this page's PTE moving, so the replay rechecks
    // it live.
    RecordSimple(pid, vpn, epoch, kDeltaForkShared, frame, 0);
    return;
  }
  if (config_.zero_pages_only && !memory.IsZero(frame)) {
    RecordSimple(pid, vpn, epoch, kDeltaNotZero, frame, memory.content_generation(frame));
    return;
  }
  // content_.Hash(frame) — the per-scan checksum KSM computes — unrolled so the
  // upcoming table probes (fingerprint slot, stable-content index bucket, this
  // page's checksum-gate slot) prefetch while the charge's noise draw runs: the
  // probes' cache misses hide behind the exp/log calls that dominate the scan
  // profile. Charge order and value are exactly those of content_.Hash.
  const std::uint64_t hash = memory.HashContent(frame);
  if (!fps_slots_.empty()) {
    __builtin_prefetch(&fps_slots_[FpIndex(hash)]);
  }
  stable_index_.Prefetch(hash);
  ChecksumsFor(pid).Prefetch(vpn);
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().content_hash);

  // 1) Stable tree lookup (Figure 1-A).
  content_.ChargeTreeDescend(stable_.size());
  if (StableEntry* entry = StableLookup(frame, hash); entry != nullptr) {
    MergeInto(process, vpn, entry);
    return;
  }

  // 2) + 3) Unstable lookup and checksum-gated insert, shared with the replay.
  UniqueTail(process, vpn, frame, hash, epoch, /*replay=*/false);
}

// Replays the recorded conclusion for one page. The hard contract: the charge
// sequence (each Charge() call, in order, with the same base costs), the stats
// and trace effects, and every chaos-site consultation must be exactly those of
// ScanOneFull on an unchanged page — the parity suite compares all of them
// bit-for-bit. Host-side, the replay skips the PTE walk, rmap/checksum lookups,
// the hashing (memoized), and both tree descents.
bool Ksm::TryReplay(Process& process, Vpn vpn) {
  AddressSpace& as = process.address_space();
  const std::uint32_t pid = process.id();
  DeltaPassCache::Entry* e = delta_.Probe(pid, vpn, as.write_epochs().GetFast(vpn));
  if (e == nullptr) {
    return false;
  }
  PhysicalMemory& memory = machine_->memory();
  switch (e->kind) {
    case kDeltaSkip:
    case kDeltaMerged:
      // Unmapping, unmerging, or re-mapping all bump the write epoch; with the
      // epoch unchanged the full path would conclude "nothing to do" again.
      delta_.NoteReplay();
      ++stats_.pages_scanned;
      return true;
    case kDeltaForkShared:
      if (memory.refcount(e->frame) == 0) {
        delta_.Reject(pid, vpn);
        return false;
      }
      delta_.NoteReplay();
      ++stats_.pages_scanned;
      return true;
    case kDeltaNotZero:
      if (memory.content_generation(e->frame) != e->content_gen ||
          memory.refcount(e->frame) != 0) {
        delta_.Reject(pid, vpn);
        return false;
      }
      delta_.NoteReplay();
      ++stats_.pages_scanned;
      return true;
    case kDeltaUnique: {
      if (memory.content_generation(e->frame) != e->content_gen ||
          memory.refcount(e->frame) != 0) {
        delta_.Reject(pid, vpn);
        return false;
      }
      delta_.NoteReplay();
      ++stats_.pages_scanned;
      const FrameId frame = e->frame;
      const std::uint64_t epoch = e->epoch;
      // Same content generation => content_.Hash re-issues the same charge and
      // returns the same (frame-memoized) hash the full path computed.
      const std::uint64_t hash = content_.Hash(frame);
      content_.ChargeTreeDescend(stable_.size());
      if (e->stable_version != stable_version_ ||
          e->shared_muts != memory.shared_content_mutations()) {
        // The stable tree's membership (or a shared frame's content) moved since
        // the verdict was recorded: the "no stable match" conclusion may be
        // stale, so run the real lookup this pass.
        if (StableEntry* entry = StableLookup(frame, hash); entry != nullptr) {
          delta_.Invalidate(pid, vpn);
          MergeInto(process, vpn, entry);
          return true;
        }
        e->stable_version = stable_version_;
        e->shared_muts = memory.shared_content_mutations();
      }
      UniqueTail(process, vpn, frame, hash, epoch, /*replay=*/true);
      return true;
    }
    default:
      delta_.Reject(pid, vpn);
      return false;
  }
}

// Steps 2 (unstable lookup, Figure 1-B) and 3 (checksum-gated unstable insert,
// Figure 1-C) of the scan flow. Shared verbatim between ScanOneFull and the
// kDeltaUnique replay so their charge/stats/trace streams cannot diverge; the
// only replay differences are the checksum-map read (provably gate-pass, see
// below) and pass-cache maintenance.
void Ksm::UniqueTail(Process& process, Vpn vpn, FrameId frame, std::uint64_t hash,
                     std::uint64_t epoch, bool replay) {
  const std::uint32_t pid = process.id();
  // One descend charge covers both the lookup and the insert below: KSM's
  // unstable_tree_search_insert is a single rb-tree walk that either finds a
  // match or links the new node at the leaf the search ended on, so charging
  // the insert as a second full descent would double-count the walk.
  content_.ChargeTreeDescend(UnstableSize());
  UnstableItem item;
  if (UnstableFindRemove(hash, frame, &item)) {
    const bool self = item.process == &process && item.vpn == vpn;
    if (!self && UnstableStillValid(item)) {
      StableEntry* entry = Stabilize(item);
      if (entry != nullptr) {
        if (replay) {
          // The page is merging (or the merge aborts below): either way the
          // memoized "unique" verdict is dead. Dropping it before MergeInto also
          // guarantees a chaos merge-abort can never leave a stale entry whose
          // recorded hash outlives the aborted merge.
          delta_.Invalidate(pid, vpn);
        }
        MergeInto(process, vpn, entry);
        return;
      }
    }
    // Stale match: fall through and treat the scanned page as unmatched.
  }
  // The checksum KSM would recompute here is the hash from above (same frame,
  // same pass, same FNV stream).
  const std::uint64_t checksum = hash;
  if (FaultInjector* injector = chaos();
      injector != nullptr && injector->ShouldFail(FaultSite::kStaleChecksum)) {
    // Forced-stale checksum: the page reads as volatile, deferring its
    // unstable-tree insertion to a later round (graceful skip, never corrupt).
    injector->RecordDegradation();
    ChecksumsFor(pid)[vpn] = ~checksum;
    if (replay) {
      // The stored checksum no longer matches the page's hash, so the uniform
      // replay shape below would be wrong next pass: force a full rescan.
      delta_.Invalidate(pid, vpn);
    }
    return;
  }
  if (!replay) {
    auto& proc_checksums = ChecksumsFor(pid);
    const std::uint64_t* stored = proc_checksums.find(vpn);
    const bool gate_pass = stored != nullptr && *stored == checksum;
    if (!gate_pass) {
      proc_checksums.insert_or_assign(vpn, checksum);
    }
    // Whether the gate passed (and we insert below) or failed (we just stored
    // the checksum), the stored value now equals the page's hash — so an
    // unchanged page provably gate-passes on its NEXT pass and inserts. That is
    // the single conclusion the entry memoizes, which is why both sub-paths
    // record the same kDeltaUnique entry and the replay never reads the map.
    RecordUnique(pid, vpn, epoch, frame, hash);
    if (!gate_pass) {
      return;
    }
  }
  UnstableInsert(UnstableItem{frame, &process, vpn, hash});
}

void Ksm::RecordUnique(std::uint32_t pid, Vpn vpn, std::uint64_t epoch, FrameId frame,
                       std::uint64_t hash) {
  if (!delta_mode_) {
    return;
  }
  PhysicalMemory& memory = machine_->memory();
  DeltaPassCache::Entry& e = delta_.Record(pid, vpn);
  e.kind = kDeltaUnique;
  e.epoch = epoch;
  e.frame = frame;
  e.content_gen = memory.content_generation(frame);
  e.hash = hash;
  e.stable_version = stable_version_;
  e.shared_muts = memory.shared_content_mutations();
}

bool Ksm::UnstableFindRemoveTree(FrameId frame, UnstableItem* out) {
  auto [node, steps] = unstable_.Find(
      [&](const UnstableItem& u) { return content_.HostOrder(frame, u.frame); });
  if (node == nullptr) {
    return false;
  }
  *out = node->value;
  unstable_.Remove(node);
  return true;
}

bool Ksm::UnstableChainRemove(FpSlot* fp, FrameId frame, UnstableItem* out) {
  // Deterministic choice within the equal-hash chain: the reference rb-tree
  // ordered equal-hash items by (frame, insertion order) and returned the
  // leftmost whose content still matches the probe, so pick the content match
  // with the smallest frame, earliest-inserted on ties. (An item whose content
  // mutated after insert keeps its insert-time hash and simply fails the byte
  // check.) Chains are per-hash, so they are almost always a single node.
  std::uint32_t best = kNoNode;
  std::uint32_t best_prev = kNoNode;
  std::uint32_t prev = kNoNode;
  for (std::uint32_t idx = fp->head; idx != kNoNode;
       prev = idx, idx = unstable_pool_[idx].next) {
    const UnstableItem& u = unstable_pool_[idx].item;
    if (best != kNoNode && unstable_pool_[best].item.frame <= u.frame) {
      continue;
    }
    if (content_.HostOrder(frame, u.frame) == 0) {
      best = idx;
      best_prev = prev;
    }
  }
  if (best == kNoNode) {
    return false;
  }
  UnstableNode& node = unstable_pool_[best];
  *out = node.item;
  if (best_prev == kNoNode) {
    fp->head = node.next;
  } else {
    unstable_pool_[best_prev].next = node.next;
  }
  if (fp->tail == best) {
    fp->tail = best_prev;
  }
  --fp->count;
  --unstable_live_;
  return true;
}

void Ksm::UnstableClear() {
  unstable_.Clear();
  // The round-stamp IS the clear; old-stamped slots are dead weight kept for
  // reuse next round (the same unique pages re-claim the same slots). Under
  // content churn the key set drifts and dead slots accumulate; FpGrow — which
  // drops everything not stamped this round — runs from the insert path once
  // the table passes half-used, so no compaction is needed here. The node pool
  // is recycled wholesale, keeping its capacity.
  ++fps_round_;
  fps_stamped_ = 0;
  unstable_pool_.clear();
  unstable_live_ = 0;
}

// Rebuilds the table keeping only slots stamped this round (dead slots from
// earlier rounds are the only other occupants, and the conceptual multiset
// they encoded is gone), growing until the live set fits at <= 1/4 load.
void Ksm::FpGrow() {
  std::vector<FpSlot> old = std::move(fps_slots_);
  std::size_t live = 0;
  for (const FpSlot& s : old) {
    live += s.stamp == fps_round_;
  }
  std::size_t cap = old.empty() ? 1024 : old.size();
  while (live * 4 > cap) {
    cap *= 2;
  }
  fps_slots_.assign(cap, FpSlot{});
  fps_mask_ = cap - 1;
  fps_used_ = 0;
  fps_memo_idx_ = ~std::size_t{0};  // slots moved; the find memo is stale
  for (const FpSlot& s : old) {
    if (s.stamp != fps_round_) {
      continue;
    }
    std::size_t i = FpIndex(s.hash);
    while (fps_slots_[i].stamp != 0) {
      i = (i + 1) & fps_mask_;
    }
    fps_slots_[i] = s;
    ++fps_used_;
  }
}

Ksm::StableEntry* Ksm::StableIndexLookup(FrameId frame, std::uint64_t hash) {
  // Hash-index path. Exact, not heuristic: in uncorrupted operation the
  // stable tree's contents are unique (every Stabilize is preceded by a
  // stable-lookup miss on the same content in the same pass), so "the entry
  // whose content equals the probe" has at most one answer, and any such
  // entry's stabilize-time index_hash equals the probe hash (equal bytes =>
  // equal hash, and stable frames are write-protected). The first shared-frame
  // content mutation — rowhammer on a merged frame — breaks the
  // write-protection premise, so from then on the live-keyed tree descent
  // is used forever; it is the reference behavior for that regime.
  StableEntry* const* head = stable_index_.find(hash);
  for (StableEntry* e = head == nullptr ? nullptr : *head; e != nullptr;
       e = e->index_next) {
    if (content_.HostOrder(frame, e->frame) == 0) {
      return e;
    }
  }
  return nullptr;
}

Ksm::StableEntry* Ksm::StableTreeLookup(FrameId frame) {
  auto [node, steps] = stable_.Find(
      [&](StableEntry* const& e) { return content_.HostOrder(frame, e->frame); });
  return node == nullptr ? nullptr : node->value;
}

void Ksm::StableIndexInsert(StableEntry* entry) {
  // The frame was hashed during this scan pass, so this re-read is memoized.
  entry->index_hash = machine_->memory().HashContent(entry->frame);
  StableEntry*& head = stable_index_[entry->index_hash];
  entry->index_next = head;
  head = entry;
  std::uint8_t& bucket = stable_filter_[StableFilterBucket(entry->index_hash)];
  if (bucket != 255) {
    ++bucket;
  }
}

void Ksm::StableIndexRemove(StableEntry* entry) {
  StableEntry** link = stable_index_.find(entry->index_hash);
  if (link == nullptr) {
    return;
  }
  while (*link != nullptr && *link != entry) {
    link = &(*link)->index_next;
  }
  if (*link == nullptr) {
    return;
  }
  *link = entry->index_next;
  if (StableEntry* const* head = stable_index_.find(entry->index_hash);
      head != nullptr && *head == nullptr) {
    stable_index_.erase(entry->index_hash);
  }
}

bool Ksm::ValidateUnstableChains() const {
  if (content_.byte_ordered()) {
    return unstable_pool_.empty() && unstable_live_ == 0;
  }
  std::size_t live = 0;
  for (const FpSlot& s : fps_slots_) {
    if (s.stamp != fps_round_) {
      continue;
    }
    std::uint32_t count = 0;
    std::uint32_t idx = s.head;
    std::uint32_t last = kNoNode;
    while (idx != kNoNode) {
      if (idx >= unstable_pool_.size() ||
          unstable_pool_[idx].item.sort_hash != s.hash ||
          count > s.count) {
        return false;
      }
      ++count;
      last = idx;
      idx = unstable_pool_[idx].next;
    }
    if (count != s.count || last != s.tail) {
      return false;
    }
    live += count;
  }
  return live == unstable_live_;
}

bool Ksm::UnstableStillValid(const UnstableItem& item) const {
  const AddressSpace& as = item.process->address_space();
  const Pte* pte = as.GetPte(item.vpn);
  if (pte == nullptr || !pte->present() || pte->reserved_trap()) {
    return false;
  }
  FrameId frame = pte->frame;
  if (pte->huge()) {
    frame += static_cast<FrameId>(item.vpn & (kPagesPerHugePage - 1));
  }
  if (frame != item.frame) {
    return false;
  }
  const VmArea* vma = as.vmas().FindContaining(item.vpn);
  if (vma == nullptr || !vma->mergeable) {
    return false;
  }
  return !rmap_.contains(KeyOf(*item.process, item.vpn));
}

Pte* Ksm::EnsureSmallMapping(Process& process, Vpn vpn) {
  AddressSpace& as = process.address_space();
  Pte* pte = as.GetPte(vpn);
  if (pte != nullptr && pte->huge()) {
    // KSM breaks up a THP to merge a 4 KB page inside it (paper §5.1) - the very
    // translation-visible event the AnC attack detects.
    LatencyModel& lm = machine_->latency();
    lm.Charge(lm.config().huge_split);
    as.SplitHuge(vpn);
    lm.FlushPending();
    machine_->trace().Emit(machine_->clock().now(), TraceEventType::kSplit, process.id(),
                           vpn & ~(kPagesPerHugePage - 1), 0);
    ++stats_.thp_splits;
    pte = as.GetPte(vpn);
  }
  return pte;
}

Ksm::StableEntry* Ksm::Stabilize(const UnstableItem& item) {
  // Injected merge abort before any state is touched: the caller falls through
  // to the unmatched-page path, nothing to roll back.
  if (FaultInjector* injector = chaos();
      injector != nullptr && injector->ShouldFail(FaultSite::kMergeAbort)) {
    injector->RecordDegradation();
    return nullptr;
  }
  Pte* pte = EnsureSmallMapping(*item.process, item.vpn);
  if (pte == nullptr || !pte->present()) {
    return nullptr;
  }
  auto* entry = arena_.New<StableEntry>(StableEntry{pte->frame, 1, nullptr});
  content_.ChargeTreeDescend(stable_.size());
  auto [node, steps] = stable_.Insert(entry);
  entry->node = node;
  StableIndexInsert(entry);
  ++stable_version_;
  const auto accessed = static_cast<std::uint16_t>(pte->flags & kPteAccessed);
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().pte_update);
  item.process->address_space().SetPte(item.vpn, Pte{entry->frame, MergedFlags(accessed)});
  machine_->memory().SetRefcount(entry->frame, 1);
  rmap_[KeyOf(*item.process, item.vpn)] = entry;
  if (delta_mode_) {
    delta_.Invalidate(item.process->id(), item.vpn);
  }
  return entry;
}

void Ksm::MergeInto(Process& process, Vpn vpn, StableEntry* entry) {
  if (FaultInjector* injector = chaos();
      injector != nullptr && injector->ShouldFail(FaultSite::kMergeAbort)) {
    injector->RecordDegradation();
    return;  // this page simply stays unmerged until a later round
  }
  Pte* pte = EnsureSmallMapping(process, vpn);
  if (pte == nullptr || !pte->present()) {
    return;
  }
  AddressSpace& as = process.address_space();
  const FrameId old = pte->frame;
  if (old == entry->frame) {
    return;  // already backed by the stable copy
  }
  const auto accessed = static_cast<std::uint16_t>(pte->flags & kPteAccessed);
  LatencyModel& lm = machine_->latency();
  lm.Charge(lm.config().pte_update);
  as.SetPte(vpn, Pte{entry->frame, MergedFlags(accessed)});
  if (delta_mode_) {
    delta_.Invalidate(process.id(), vpn);
  }
  ++entry->refs;
  ++frames_saved_;
  machine_->memory().SetRefcount(entry->frame, entry->refs);
  rmap_[KeyOf(process, vpn)] = entry;

  // The duplicate frame goes straight back to the system - this reuse of *one of
  // the sharing parties' frames* is what Flip Feng Shui abuses.
  machine_->FlushFrame(old);
  lm.Charge(lm.config().buddy_free);
  machine_->buddy().Free(old);

  ++stats_.merges;
  lm.FlushPending();
  machine_->trace().Emit(machine_->clock().now(), TraceEventType::kMerge, process.id(), vpn,
                         entry->frame);
  stats_.LogAllocation(entry->frame);
  const VmArea* vma = as.vmas().FindContaining(vpn);
  if (vma != nullptr) {
    stats_.RecordMergeType(vma->type);
  }
  if (machine_->memory().IsZero(entry->frame)) {
    ++stats_.zero_page_merges;
  }
}

void Ksm::DropRef(StableEntry* entry) {
  if (entry->refs > 1) {
    --frames_saved_;
  }
  --entry->refs;
  if (entry->refs == 0) {
    stable_.Remove(entry->node);
    StableIndexRemove(entry);
    ++stable_version_;
    machine_->FlushFrame(entry->frame);
    LatencyModel& lm = machine_->latency();
    lm.Charge(lm.config().buddy_free);
    machine_->buddy().Free(entry->frame);
    arena_.Delete(entry);
  } else {
    machine_->memory().SetRefcount(entry->frame, entry->refs);
  }
}

bool Ksm::BreakCow(Process& process, Vpn vpn, StableEntry* entry,
                   std::uint16_t extra_flags) {
  AddressSpace& as = process.address_space();
  LatencyModel& lm = machine_->latency();
  // Copy-on-write unmerge (do_wp_page equivalent).
  lm.Charge(lm.config().buddy_alloc);
  const FrameId fresh = machine_->buddy().Allocate();
  if (fresh == kInvalidFrame) {
    return false;  // OOM
  }
  lm.Charge(lm.config().page_copy_4k);
  machine_->memory().CopyFrame(fresh, entry->frame);
  lm.Charge(lm.config().pte_update);
  as.SetPte(vpn, Pte{fresh, static_cast<std::uint16_t>(kPtePresent | kPteWritable |
                                                       kPteAccessed | extra_flags)});
  rmap_.erase(KeyOf(process, vpn));
  DropRef(entry);
  if (delta_mode_) {
    delta_.Invalidate(process.id(), vpn);
  }
  return true;
}

bool Ksm::HandleFault(Process& process, const PageFault& fault) {
  StableEntry* const* found = rmap_.find(KeyOf(process, fault.vpn));
  if (found == nullptr) {
    return false;
  }
  StableEntry* entry = *found;  // BreakCow erases the rmap slot under `found`
  const auto dirty = static_cast<std::uint16_t>(
      fault.access == AccessType::kWrite ? kPteDirty : 0);
  if (!BreakCow(process, fault.vpn, entry, dirty)) {
    // Allocation failed (transient or genuine OOM): the page stays merged and
    // the access path retries the fault. Returning false would hand this
    // engine-owned CoW PTE to the kernel's fork-CoW handler, which would
    // decrement the refcount behind the rmap's back.
    return true;
  }
  if (fault.access == AccessType::kWrite) {
    ++stats_.unmerges_cow;
  } else {
    ++stats_.unmerges_coa;
  }
  machine_->latency().FlushPending();
  machine_->trace().Emit(machine_->clock().now(),
                         fault.access == AccessType::kWrite ? TraceEventType::kUnmergeCow
                                                            : TraceEventType::kUnmergeCoa,
                         process.id(), fault.vpn, 0);
  return true;
}

void Ksm::OnUnregister(Process& process, Vpn start, std::uint64_t pages) {
  // madvise(MADV_UNMERGEABLE): every merged page in the range gets a private copy
  // back (unmerge_ksm_pages equivalent).
  for (Vpn vpn = start; vpn < start + pages; ++vpn) {
    StableEntry* const* found = rmap_.find(KeyOf(process, vpn));
    if (found == nullptr) {
      continue;
    }
    if (BreakCow(process, vpn, *found, 0)) {
      ++stats_.unmerges_cow;
    }
    const auto proc_it = checksums_.find(process.id());
    if (proc_it != checksums_.end()) {
      proc_it->second.erase(vpn);
    }
  }
}

bool Ksm::OnUnmap(Process& process, Vpn vpn) {
  const std::uint64_t key = KeyOf(process, vpn);
  StableEntry* const* found = rmap_.find(key);
  if (found == nullptr) {
    return false;
  }
  StableEntry* entry = *found;
  rmap_.erase(key);
  DropRef(entry);
  if (delta_mode_) {
    delta_.Invalidate(process.id(), vpn);
  }
  return true;
}

void Ksm::OnProcessDestroy(Process& process) {
  // The unstable tree holds raw (process, vpn) references; it is rebuilt every
  // round anyway, so clearing it is the faithful equivalent of the kernel's
  // remove_node_from_tree on exit. Checksums of the dead process are dropped in
  // O(its pages) thanks to the per-process index, and so is its pass-cache
  // bucket (the address space dies with the process, so no epoch will ever
  // re-validate those entries).
  UnstableClear();
  checksum_memo_ = nullptr;
  checksums_.erase(process.id());
  delta_.DropProcess(process.id());
}

bool Ksm::AllowCollapse(Process& process, Vpn base) {
  // Linux khugepaged refuses to collapse ranges containing KSM pages.
  for (Vpn vpn = base; vpn < base + kPagesPerHugePage; ++vpn) {
    if (rmap_.contains(KeyOf(process, vpn))) {
      return false;
    }
  }
  return true;
}

bool Ksm::IsMerged(const Process& process, Vpn vpn) const {
  return rmap_.contains(KeyOf(process, vpn));
}

void Ksm::AuditInvariants(AuditContext& ctx) const {
  const auto& processes = machine_->processes();
  PhysicalMemory& memory = machine_->memory();

  // Count the rmap's view of each stable entry while checking every mapping it
  // claims: the (pid, vpn) must be a live process whose PTE points at the
  // entry's frame with merged (read-only CoW) permissions.
  std::unordered_map<const StableEntry*, std::uint32_t> rmap_refs;
  rmap_.ForEach([&](std::uint64_t key, StableEntry* const& entry) {
    const auto pid = static_cast<std::uint32_t>(key >> 40);
    const Vpn vpn = key ^ (static_cast<std::uint64_t>(pid) << 40);
    ++rmap_refs[entry];
    if (!ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
          return "ksm: rmap entry for dead process " + std::to_string(pid);
        })) {
      return;
    }
    const Pte* pte = processes[pid]->address_space().GetPte(vpn);
    ctx.Check(pte != nullptr && pte->present() && pte->frame == entry->frame,
              [&] {
                return "ksm: rmap (" + std::to_string(pid) + "," +
                       std::to_string(vpn) + ") does not map stable frame " +
                       std::to_string(entry->frame);
              });
    ctx.Check(pte == nullptr || (!pte->writable() && pte->cow()), [&] {
      return "ksm: merged page (" + std::to_string(pid) + "," +
             std::to_string(vpn) + ") is not read-only CoW";
    });
  });

  std::size_t tree_entries = 0;
  stable_.InOrder([&](StableEntry* const& entry) {
    ++tree_entries;
    const std::string frame_str = std::to_string(entry->frame);
    ctx.Check(entry->refs >= 1, [&] {
      return "ksm: stable entry for frame " + frame_str + " has zero refs";
    });
    ctx.Check(memory.allocated(entry->frame), [&] {
      return "ksm: stable entry points at free frame " + frame_str;
    });
    ctx.Check(memory.refcount(entry->frame) == entry->refs, [&] {
      return "ksm: frame " + frame_str + " refcount " +
             std::to_string(memory.refcount(entry->frame)) + " != entry refs " +
             std::to_string(entry->refs);
    });
    ctx.Check(ctx.mapped(entry->frame) == entry->refs, [&] {
      return "ksm: frame " + frame_str + " mapped by " +
             std::to_string(ctx.mapped(entry->frame)) + " PTEs, entry refs " +
             std::to_string(entry->refs);
    });
    ctx.Check(ctx.writable(entry->frame) == 0, [&] {
      return "ksm: fused frame " + frame_str + " has a writable mapping";
    });
    const auto it = rmap_refs.find(entry);
    ctx.Check(it != rmap_refs.end() && it->second == entry->refs, [&] {
      return "ksm: frame " + frame_str + " rmap count " +
             std::to_string(it == rmap_refs.end() ? 0 : it->second) +
             " != entry refs " + std::to_string(entry->refs);
    });
    // Every tree entry must be reachable in the content index under its
    // stabilize-time hash (the index is maintained even after a corruption
    // switches lookups back to the tree).
    bool indexed = false;
    StableEntry* const* head = stable_index_.find(entry->index_hash);
    for (const StableEntry* e = head == nullptr ? nullptr : *head; e != nullptr;
         e = e->index_next) {
      indexed |= e == entry;
    }
    ctx.Check(indexed, [&] {
      return "ksm: stable entry for frame " + frame_str +
             " missing from the content index";
    });
  });
  ctx.Check(tree_entries == rmap_refs.size(), [&] {
    return "ksm: stable tree has " + std::to_string(tree_entries) +
           " entries but rmap references " + std::to_string(rmap_refs.size());
  });

  // The per-process checksum index must not reference dead processes.
  for (const auto& [pid, vpns] : checksums_) {
    (void)vpns;
    ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
      return "ksm: checksum index for dead process " + std::to_string(pid);
    });
  }

  // Delta pass cache: entries may be stale (guards catch that at probe time) but
  // must never reference dead processes, and an epoch-current entry must agree
  // with the world it claims to memoize.
  delta_.ForEach([&](std::uint32_t pid, Vpn vpn, const DeltaPassCache::Entry& e) {
    if (!ctx.Check(pid < processes.size() && processes[pid] != nullptr, [&] {
          return "ksm: delta entry for dead process " + std::to_string(pid);
        })) {
      return;
    }
    const AddressSpace& as = processes[pid]->address_space();
    if (as.write_epochs().Get(vpn) != e.epoch) {
      return;  // stale; the next probe drops it
    }
    if (e.kind == kDeltaMerged) {
      ctx.Check(rmap_.contains((static_cast<std::uint64_t>(pid) << 40) ^ vpn), [&] {
        return "ksm: epoch-current kDeltaMerged entry for unmerged page (" +
               std::to_string(pid) + "," + std::to_string(vpn) + ")";
      });
    }
    if (e.kind == kDeltaUnique &&
        machine_->memory().content_generation(e.frame) == e.content_gen) {
      ctx.Check(machine_->memory().HashContent(e.frame) == e.hash, [&] {
        return "ksm: delta entry for (" + std::to_string(pid) + "," +
               std::to_string(vpn) + ") memoizes a stale hash for frame " +
               std::to_string(e.frame);
      });
    }
  });
}

// --- Savestates (DESIGN.md §13) ---

namespace {

Process* KsmLiveProcess(Machine& machine, std::uint32_t pid) {
  const auto& processes = machine.processes();
  if (pid >= processes.size() || processes[pid] == nullptr) {
    throw snapshot::RestoreError("engine",
                                 "unstable item references dead process " + std::to_string(pid));
  }
  return processes[pid].get();
}

}  // namespace

void Ksm::SaveState(snapshot::SnapshotWriter& w) const {
  SaveCommon(w);
  const ScanCursor::State cur = cursor_.state();
  w.U64(cur.process_idx);
  w.U64(cur.vma_idx);
  w.U64(cur.page_idx);

  // Stable tree, structurally (preorder with colors): lookup results under
  // shared-frame content corruption depend on the node layout, so the restored
  // tree must be the recorded shape. index_next chains are serialized with the
  // hash index below, not here.
  std::unordered_map<const StableEntry*, std::uint32_t> index_of;
  w.U64(stable_.size());
  stable_.ExportPreorder([&](StableEntry* const& e, bool red, bool has_left,
                             bool has_right) {
    index_of.emplace(e, static_cast<std::uint32_t>(index_of.size()));
    w.U32(e->frame);
    w.U32(e->refs);
    w.U64(e->index_hash);
    w.Bool(red);
    w.Bool(has_left);
    w.Bool(has_right);
  });

  // Content-hash index: per bucket head, the equal-hash chain in chain order.
  {
    std::vector<std::pair<std::uint64_t, const StableEntry*>> buckets;
    buckets.reserve(stable_index_.size());
    stable_index_.ForEach([&buckets](std::uint64_t hash, StableEntry* const& head) {
      buckets.emplace_back(hash, head);
    });
    std::sort(buckets.begin(), buckets.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.U64(buckets.size());
    for (const auto& [hash, head] : buckets) {
      w.U64(hash);
      std::vector<std::uint32_t> chain;
      for (const StableEntry* e = head; e != nullptr; e = e->index_next) {
        chain.push_back(index_of.at(e));
      }
      w.U32(static_cast<std::uint32_t>(chain.size()));
      for (const std::uint32_t idx : chain) {
        w.U32(idx);
      }
    }
  }
  // The counting filter saturates sticky (removals never decrement), so its
  // bytes are state, not a memo: re-deriving them from the live index would
  // break re-save parity.
  w.Bytes(stable_filter_.data(), stable_filter_.size());

  {
    std::vector<std::uint64_t> keys;
    keys.reserve(rmap_.size());
    rmap_.ForEach([&keys](std::uint64_t key, StableEntry* const&) { keys.push_back(key); });
    std::sort(keys.begin(), keys.end());
    w.U64(keys.size());
    for (const std::uint64_t key : keys) {
      w.U64(key);
      w.U32(index_of.at(*rmap_.find(key)));
    }
  }

  // Unstable structure, both representations (whichever the mode left empty
  // serializes as empty): the byte-ordered rb-tree, then the fingerprint pool
  // and slot table verbatim. Pool entries unlinked mid-round may hold dangling
  // Process* — only entries reachable from a current-round chain are written.
  w.U64(unstable_.size());
  unstable_.ExportPreorder([&w](const UnstableItem& item, bool red, bool has_left,
                                bool has_right) {
    w.U32(item.frame);
    w.U32(item.process->id());
    w.U64(item.vpn);
    w.U64(item.sort_hash);
    w.Bool(red);
    w.Bool(has_left);
    w.Bool(has_right);
  });

  std::vector<std::uint8_t> reachable(unstable_pool_.size(), 0);
  for (const FpSlot& s : fps_slots_) {
    if (s.stamp != fps_round_) {
      continue;
    }
    for (std::uint32_t i = s.head; i != kNoNode; i = unstable_pool_[i].next) {
      reachable[i] = 1;
    }
  }
  w.U64(unstable_pool_.size());
  for (std::size_t i = 0; i < unstable_pool_.size(); ++i) {
    w.Bool(reachable[i] != 0);
    if (reachable[i] == 0) {
      continue;
    }
    const UnstableNode& node = unstable_pool_[i];
    w.U32(node.item.frame);
    w.U32(node.item.process->id());
    w.U64(node.item.vpn);
    w.U64(node.item.sort_hash);
    w.U32(node.next);
  }
  w.U64(fps_slots_.size());
  for (const FpSlot& s : fps_slots_) {
    w.U64(s.hash);
    w.U64(s.stamp);
    w.U32(s.count);
    w.U32(s.head);
    w.U32(s.tail);
  }
  w.U64(fps_used_);
  w.U64(fps_round_);
  w.U64(fps_stamped_);
  w.U64(unstable_live_);

  {
    std::vector<std::uint32_t> pids;
    pids.reserve(checksums_.size());
    for (const auto& [pid, map] : checksums_) {
      pids.push_back(pid);
    }
    std::sort(pids.begin(), pids.end());
    w.U64(pids.size());
    for (const std::uint32_t pid : pids) {
      const ChecksumMap& map = checksums_.at(pid);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
      rows.reserve(map.size());
      map.ForEach([&rows](std::uint64_t vpn, const std::uint64_t& checksum) {
        rows.emplace_back(vpn, checksum);
      });
      std::sort(rows.begin(), rows.end());
      w.U32(pid);
      w.U64(rows.size());
      for (const auto& [vpn, checksum] : rows) {
        w.U64(vpn);
        w.U64(checksum);
      }
    }
  }

  w.U64(frames_saved_);
  w.U64(stable_version_);
  delta_.SaveState(w, [](std::uint8_t, void*) -> std::uint64_t { return 0; });
}

void Ksm::RestoreState(snapshot::SnapshotReader& r) {
  RestoreCommon(r);
  ScanCursor::State cur;
  cur.process_idx = static_cast<std::size_t>(r.U64());
  cur.vma_idx = static_cast<std::size_t>(r.U64());
  cur.page_idx = r.U64();
  cursor_.RestoreState(cur);

  const std::uint64_t node_count = r.Count(19);
  std::vector<StableEntry*> entries;
  entries.reserve(node_count);
  stable_.ImportPreorder(
      static_cast<std::size_t>(node_count),
      [&](bool& red, bool& has_left, bool& has_right) -> StableEntry* {
        auto* e = arena_.New<StableEntry>(StableEntry{});
        e->frame = r.U32();
        e->refs = r.U32();
        e->index_hash = r.U64();
        red = r.Bool();
        has_left = r.Bool();
        has_right = r.Bool();
        entries.push_back(e);
        return e;
      },
      [](StableTree::Node* node) { node->value->node = node; });

  const auto entry_at = [&entries](std::uint32_t idx) -> StableEntry* {
    if (idx >= entries.size()) {
      throw snapshot::RestoreError("engine", "stable entry index out of range");
    }
    return entries[idx];
  };

  const std::uint64_t bucket_count = r.Count(13);
  for (std::uint64_t b = 0; b < bucket_count; ++b) {
    const std::uint64_t hash = r.U64();
    const std::uint32_t chain_len = r.U32();
    StableEntry* prev = nullptr;
    for (std::uint32_t i = 0; i < chain_len; ++i) {
      StableEntry* e = entry_at(r.U32());
      if (prev == nullptr) {
        stable_index_.insert_or_assign(hash, e);
      } else {
        prev->index_next = e;
      }
      prev = e;
    }
  }
  r.Bytes(stable_filter_.data(), stable_filter_.size());

  const std::uint64_t rmap_count = r.Count(12);
  for (std::uint64_t i = 0; i < rmap_count; ++i) {
    const std::uint64_t key = r.U64();
    rmap_.insert_or_assign(key, entry_at(r.U32()));
  }

  const std::uint64_t unstable_count = r.Count(27);
  unstable_.ImportPreorder(
      static_cast<std::size_t>(unstable_count),
      [&](bool& red, bool& has_left, bool& has_right) -> UnstableItem {
        UnstableItem item;
        item.frame = r.U32();
        item.process = KsmLiveProcess(*machine_, r.U32());
        item.vpn = r.U64();
        item.sort_hash = r.U64();
        red = r.Bool();
        has_left = r.Bool();
        has_right = r.Bool();
        return item;
      },
      [](UnstableTree::Node*) {});

  const std::uint64_t pool_count = r.Count(1);
  unstable_pool_.clear();
  unstable_pool_.resize(static_cast<std::size_t>(pool_count));
  for (std::uint64_t i = 0; i < pool_count; ++i) {
    if (!r.Bool()) {
      continue;  // abandoned mid-round; the slot stays zeroed and unlinked
    }
    UnstableNode& node = unstable_pool_[static_cast<std::size_t>(i)];
    node.item.frame = r.U32();
    node.item.process = KsmLiveProcess(*machine_, r.U32());
    node.item.vpn = r.U64();
    node.item.sort_hash = r.U64();
    node.next = r.U32();
  }
  const std::uint64_t slot_count = r.Count(28);
  if (slot_count != 0 && (slot_count & (slot_count - 1)) != 0) {
    throw snapshot::RestoreError("engine", "fingerprint table size not a power of two");
  }
  fps_slots_.clear();
  fps_slots_.resize(static_cast<std::size_t>(slot_count));
  for (std::uint64_t i = 0; i < slot_count; ++i) {
    FpSlot& s = fps_slots_[static_cast<std::size_t>(i)];
    s.hash = r.U64();
    s.stamp = r.U64();
    s.count = r.U32();
    s.head = r.U32();
    s.tail = r.U32();
  }
  fps_mask_ = fps_slots_.empty() ? 0 : fps_slots_.size() - 1;
  fps_used_ = static_cast<std::size_t>(r.U64());
  fps_round_ = r.U64();
  fps_stamped_ = r.U64();
  unstable_live_ = static_cast<std::size_t>(r.U64());
  fps_memo_idx_ = ~std::size_t{0};
  fps_memo_hash_ = 0;

  checksums_.clear();
  checksum_memo_ = nullptr;
  checksum_memo_pid_ = 0;
  const std::uint64_t checksum_pids = r.Count(12);
  for (std::uint64_t p = 0; p < checksum_pids; ++p) {
    const std::uint32_t pid = r.U32();
    ChecksumMap& map = checksums_[pid];
    const std::uint64_t rows = r.Count(16);
    for (std::uint64_t i = 0; i < rows; ++i) {
      const std::uint64_t vpn = r.U64();
      map.insert_or_assign(vpn, r.U64());
    }
  }

  frames_saved_ = r.U64();
  stable_version_ = r.U64();
  delta_.RestoreState(r, [](std::uint8_t, std::uint64_t code) -> void* {
    if (code != 0) {
      throw snapshot::RestoreError("engine", "unexpected delta ref in KSM cache");
    }
    return nullptr;
  });

  if (!ValidateTrees()) {
    throw snapshot::RestoreError("engine", "restored KSM trees fail validation");
  }
}

}  // namespace vusion
