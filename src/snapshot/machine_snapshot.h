// Snapshot orchestration: one call to capture a (Machine, engine) pair into a
// self-describing buffer, and one call to resurrect a brand-new pair from it.
//
// A full snapshot is laid out as:
//
//   "config"  MachineConfig | EngineKind | FusionConfig (when an engine exists)
//   ...       the Machine's own sections (see Machine::Save)
//   "engine"  the engine's SaveState payload (only when an engine exists)
//
// Restore never patches a live Machine in place: it constructs a fresh Machine
// from the recorded MachineConfig, builds the engine with MakeEngineExact (the
// recorded FusionConfig taken verbatim), installs it, replays every state
// section, and finally runs the machine-wide InvariantAuditor. Any corruption —
// truncation, bit flips, version skew, internally inconsistent state — throws
// snapshot::RestoreError naming the failing section; the caller's own Machine
// is never touched.

#ifndef VUSION_SRC_SNAPSHOT_MACHINE_SNAPSHOT_H_
#define VUSION_SRC_SNAPSHOT_MACHINE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/fusion/engine_factory.h"
#include "src/kernel/machine.h"
#include "src/snapshot/io.h"

namespace vusion::snapshot {

// A restored (machine, engine) pair. The engine (null for EngineKind::kNone)
// is already installed on the machine and uninstalls itself on destruction;
// keep the struct alive as a unit and destroy it as a unit.
struct RestoredMachine {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<FusionEngine> engine;
  EngineKind kind = EngineKind::kNone;

  RestoredMachine() = default;
  RestoredMachine(RestoredMachine&&) noexcept = default;
  RestoredMachine& operator=(RestoredMachine&&) noexcept = default;
  RestoredMachine(const RestoredMachine&) = delete;
  RestoredMachine& operator=(const RestoredMachine&) = delete;
  ~RestoredMachine() {
    if (engine != nullptr && machine != nullptr) {
      engine->Uninstall();
    }
  }
};

// Serializes the machine plus the installed engine (null for a baseline run;
// `kind` must agree with `engine`). Throws RestoreError if the engine kind
// does not support savestates (MemoryCombining).
std::string SaveSnapshot(Machine& machine, FusionEngine* engine, EngineKind kind);

// Reconstructs a fresh (machine, engine) pair from a snapshot buffer and gates
// the result behind the machine-wide invariant auditor: a snapshot that decodes
// cleanly but describes an inconsistent machine still fails closed. Throws
// RestoreError on any defect.
RestoredMachine RestoreSnapshot(std::string_view buffer);

// Fork-style fan-out: restores `count` independent Machines from one buffer.
// Each clone is a full deep restore (they share no simulated state), so the
// clones — and the original, if the buffer came from a live machine — diverge
// only through the inputs applied after the fan-out.
std::vector<RestoredMachine> FanOut(std::string_view buffer, std::size_t count);

// Header- and frame-level metadata, decodable without reconstructing anything.
struct SnapshotInfo {
  std::uint32_t version = 0;
  EngineKind kind = EngineKind::kNone;
  std::uint64_t seed = 0;
  std::uint32_t frame_count = 0;
  std::size_t total_bytes = 0;
  std::vector<SnapshotReader::SectionInfo> sections;
};

// Validates framing/checksums and decodes the "config" section. Throws
// RestoreError on a malformed buffer.
SnapshotInfo InspectSnapshot(std::string_view buffer);

// Full verification: a complete RestoreSnapshot (including the invariant
// audit) on a throwaway pair. Returns the inspect info on success, throws
// RestoreError otherwise.
SnapshotInfo VerifySnapshot(std::string_view buffer);

}  // namespace vusion::snapshot

#endif  // VUSION_SRC_SNAPSHOT_MACHINE_SNAPSHOT_H_
