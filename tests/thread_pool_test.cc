// host::ThreadPool unit tests: chunk dispatch must cover [0, count) exactly once
// for every boundary shape, and worker exceptions must surface on the caller.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/host/thread_pool.h"

namespace vusion::host {
namespace {

// Marks every index in [begin, end); the atomic counters catch double dispatch.
std::vector<std::atomic<int>> MakeCounters(std::size_t count) {
  return std::vector<std::atomic<int>>(count);
}

void ExpectExactCoverage(ThreadPool& pool, std::size_t count, std::size_t grain) {
  auto counters = MakeCounters(count);
  pool.ParallelFor(count, grain, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, count);
    for (std::size_t i = begin; i < end; ++i) {
      counters[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(counters[i].load(), 1) << "index " << i << " count=" << count
                                     << " grain=" << grain;
  }
}

TEST(ThreadPoolTest, ZeroItemsRunsNoBody) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, FewerItemsThanWorkers) {
  ThreadPool pool(8);
  ExpectExactCoverage(pool, 3, 1);
}

TEST(ThreadPoolTest, NonDivisibleChunkSizes) {
  ThreadPool pool(4);
  // 17 items in chunks of 5: 5+5+5+2.
  ExpectExactCoverage(pool, 17, 5);
  // Grain larger than the count collapses to one inline chunk.
  ExpectExactCoverage(pool, 7, 64);
  // Auto grain.
  ExpectExactCoverage(pool, 1000, 0);
}

TEST(ThreadPoolTest, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  ExpectExactCoverage(pool, 100, 7);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  auto counters = MakeCounters(64);
  EXPECT_THROW(
      pool.ParallelFor(64, 4,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           counters[i].fetch_add(1, std::memory_order_relaxed);
                         }
                         if (begin <= 29 && 29 < end) {
                           throw std::runtime_error("chunk failed");
                         }
                       }),
      std::runtime_error);
  // A chunk failure does not kill the batch: every index was still visited once.
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(counters[i].load(), 1) << "index " << i;
  }
  // The pool stays usable after an exception.
  ExpectExactCoverage(pool, 50, 3);
}

TEST(ThreadPoolTest, RepeatedBatchesAccumulate) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.ParallelFor(100, 9, [&](std::size_t begin, std::size_t end) {
      std::uint64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) {
        local += i;
      }
      sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 200ull * (99ull * 100ull / 2));
}

void ExpectExactTaskCoverage(ThreadPool& pool, std::size_t count) {
  auto counters = MakeCounters(count);
  pool.ParallelTasks(count, [&](std::size_t begin, std::size_t end) {
    ASSERT_EQ(end, begin + 1);
    ASSERT_LT(begin, count);
    counters[begin].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(counters[i].load(), 1) << "task " << i << " count=" << count;
  }
}

TEST(ThreadPoolTest, ParallelTasksRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  ExpectExactTaskCoverage(pool, 1);
  ExpectExactTaskCoverage(pool, 3);   // fewer tasks than threads
  ExpectExactTaskCoverage(pool, 4);   // one per stripe
  ExpectExactTaskCoverage(pool, 64);  // stealing across stripes
  ThreadPool serial(1);
  ExpectExactTaskCoverage(serial, 16);
}

TEST(ThreadPoolTest, ParallelTasksPropagatesExceptionAndStaysUsable) {
  ThreadPool pool(4);
  auto counters = MakeCounters(32);
  EXPECT_THROW(pool.ParallelTasks(32,
                                  [&](std::size_t t, std::size_t) {
                                    counters[t].fetch_add(1, std::memory_order_relaxed);
                                    if (t == 13) {
                                      throw std::runtime_error("task failed");
                                    }
                                  }),
               std::runtime_error);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(counters[i].load(), 1) << "task " << i;
  }
  ExpectExactTaskCoverage(pool, 20);
}

// --- Streaming dispatch: BeginStream / StreamReadyItems / HelpStream / Join ---

// Drains a stream from the consumer side the way the scan pipeline does:
// help-first, then consume whatever prefix is ready. Returns the item count
// observed via StreamReadyItems (must end at count).
std::size_t DrainStream(ThreadPool& pool, ThreadPool::Stream* stream, std::size_t count) {
  std::size_t ready = 0;
  while (ready < count) {
    const std::size_t now = pool.StreamReadyItems(stream);
    EXPECT_GE(now, ready) << "ready-item count went backwards";
    ready = now;
    if (ready < count && !pool.HelpStream(stream)) {
      std::this_thread::yield();
    }
  }
  return ready;
}

TEST(ThreadPoolTest, StreamCompletesInTicketOrderWithExactCoverage) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 257;  // non-divisible by the grain
  auto counters = MakeCounters(kCount);
  // Named lvalue: Body is non-owning and the stream outlives this statement.
  const auto mark = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      counters[i].fetch_add(1, std::memory_order_relaxed);
    }
  };
  ThreadPool::Stream* stream = pool.BeginStream(kCount, 10, mark);
  EXPECT_EQ(DrainStream(pool, stream, kCount), kCount);
  // Ticket order: once StreamReadyItems reports k, items [0, k) have run — the
  // consumer may touch them. Verified implicitly by the acquire fence; here we
  // check exact coverage after the fact.
  pool.JoinStream(stream);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(counters[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ConsumerHelpCompletesStreamWithNoWorkers) {
  // A single-thread pool has no workers at all: the stream makes progress only
  // through the consumer's HelpStream calls (the scan pipeline's help-first
  // loop relies on this so streaming never deadlocks at scan_threads=1).
  ThreadPool pool(1);
  constexpr std::size_t kCount = 40;
  auto counters = MakeCounters(kCount);
  const auto mark = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      counters[i].fetch_add(1, std::memory_order_relaxed);
    }
  };
  ThreadPool::Stream* stream = pool.BeginStream(kCount, 7, mark);
  std::size_t helped = 0;
  while (pool.HelpStream(stream)) {
    ++helped;
  }
  EXPECT_EQ(helped, (kCount + 6) / 7);
  EXPECT_EQ(pool.StreamReadyItems(stream), kCount);
  pool.JoinStream(stream);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(counters[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, StreamExceptionSurfacesAtJoinAndPrefixStillAdvances) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  auto counters = MakeCounters(kCount);
  const auto mark_and_fail = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      counters[i].fetch_add(1, std::memory_order_relaxed);
    }
    if (begin <= 30 && 30 < end) {
      throw std::runtime_error("chunk failed");
    }
  };
  ThreadPool::Stream* stream = pool.BeginStream(kCount, 4, mark_and_fail);
  // A failed chunk still counts toward the completion prefix — the ticket
  // queue never stalls behind an exception; the error surfaces at join.
  EXPECT_EQ(DrainStream(pool, stream, kCount), kCount);
  EXPECT_THROW(pool.JoinStream(stream), std::runtime_error);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(counters[i].load(), 1) << "index " << i;
  }
  // The pool stays usable after a stream failure.
  ExpectExactCoverage(pool, 50, 3);
}

TEST(ThreadPoolTest, NestedStreamInsideParallelTasks) {
  // The fleet shape: striped step tasks each open, help, and join their own
  // stream on the shared pool. Progress must not depend on free workers.
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 8;
  constexpr std::size_t kItems = 33;
  std::array<std::atomic<std::uint64_t>, kTasks> sums{};
  pool.ParallelTasks(kTasks, [&](std::size_t task, std::size_t) {
    const auto accumulate = [&, task](std::size_t begin, std::size_t end) {
      std::uint64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) {
        local += i;
      }
      sums[task].fetch_add(local, std::memory_order_relaxed);
    };
    ThreadPool::Stream* stream = pool.BeginStream(kItems, 5, accumulate);
    while (pool.StreamReadyItems(stream) < kItems) {
      if (!pool.HelpStream(stream)) {
        std::this_thread::yield();
      }
    }
    pool.JoinStream(stream);
  });
  for (std::size_t t = 0; t < kTasks; ++t) {
    EXPECT_EQ(sums[t].load(), 32ull * 33ull / 2) << "task " << t;
  }
}

TEST(ThreadPoolTest, ConcurrentStreamsDrainIndependently) {
  // Two streams live at once (two fleet Machines hashing concurrently): each
  // consumer sees only its own stream's completion prefix.
  ThreadPool pool(4);
  constexpr std::size_t kCount = 96;
  auto a = MakeCounters(kCount);
  auto b = MakeCounters(kCount);
  const auto mark_a = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      a[i].fetch_add(1, std::memory_order_relaxed);
    }
  };
  const auto mark_b = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      b[i].fetch_add(1, std::memory_order_relaxed);
    }
  };
  ThreadPool::Stream* sa = pool.BeginStream(kCount, 8, mark_a);
  ThreadPool::Stream* sb = pool.BeginStream(kCount, 8, mark_b);
  EXPECT_EQ(DrainStream(pool, sb, kCount), kCount);
  EXPECT_EQ(DrainStream(pool, sa, kCount), kCount);
  pool.JoinStream(sa);
  pool.JoinStream(sb);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(a[i].load(), 1) << "stream a index " << i;
    EXPECT_EQ(b[i].load(), 1) << "stream b index " << i;
  }
}

TEST(ThreadPoolTest, AlternatingDispatchModesReuseTheBarrier) {
  // The generation-keyed barrier and fixed batch state are shared by both
  // dispatch modes; interleaving them at a high rate must neither deadlock nor
  // lose work.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int batch = 0; batch < 100; ++batch) {
    pool.ParallelFor(37, 5, [&](std::size_t begin, std::size_t end) {
      sum.fetch_add(end - begin, std::memory_order_relaxed);
    });
    pool.ParallelTasks(11, [&](std::size_t, std::size_t) {
      sum.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 100ull * (37 + 11));
}

}  // namespace
}  // namespace vusion::host
