#include "src/fusion/vusion_engine.h"

#include <gtest/gtest.h>

#include <set>

#include "src/kernel/khugepaged.h"
#include "src/kernel/process.h"

namespace vusion {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.frame_count = 16384;
  return config;
}

FusionConfig FastVUsion() {
  FusionConfig config;
  config.wake_period = 1 * kMillisecond;
  config.pages_per_wake = 256;
  config.pool_frames = 1024;
  return config;
}

class VUsionTest : public ::testing::Test {
 protected:
  VUsionTest() : VUsionTest(FastVUsion()) {}
  explicit VUsionTest(const FusionConfig& config)
      : machine_(SmallMachine()), engine_(machine_, config) {
    engine_.Install();
  }
  ~VUsionTest() override { engine_.Uninstall(); }

  VirtAddr MapPages(Process& p, std::initializer_list<std::uint64_t> seeds) {
    const VirtAddr base =
        p.AllocateRegion(seeds.size(), PageType::kAnonymous, /*mergeable=*/true, false);
    std::size_t i = 0;
    for (const std::uint64_t seed : seeds) {
      p.SetupMapPattern(VaddrToVpn(base) + i++, seed);
    }
    return base;
  }

  void RunRounds(std::uint64_t rounds) {
    const std::uint64_t target = engine_.stats().full_scans + rounds;
    for (int i = 0; i < 100000 && engine_.stats().full_scans < target; ++i) {
      machine_.Idle(1 * kMillisecond);
    }
  }

  Machine machine_;
  VUsionEngine engine_;
};

TEST_F(VUsionTest, DuplicatePagesMergeToSharedRandomFrame) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x111});
  const VirtAddr pb = MapPages(b, {0x111});
  const FrameId fa = a.TranslateFrame(VaddrToVpn(pa));
  const FrameId fb = b.TranslateFrame(VaddrToVpn(pb));
  RunRounds(4);
  const FrameId shared_a = a.TranslateFrame(VaddrToVpn(pa));
  EXPECT_EQ(shared_a, b.TranslateFrame(VaddrToVpn(pb)));
  // RA: neither sharer's original frame backs the shared copy.
  EXPECT_NE(shared_a, fa);
  EXPECT_NE(shared_a, fb);
  EXPECT_TRUE(engine_.IsShared(a, VaddrToVpn(pa)));
  EXPECT_EQ(engine_.frames_saved(), 1u);
  EXPECT_TRUE(engine_.ValidateTree());
}

TEST_F(VUsionTest, UniqueIdlePagesAreFakeMerged) {
  // Same Behaviour: a page with no duplicate anywhere is treated exactly like a
  // merged one - no access, in the stable tree, refcount 1.
  Process& a = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x222});
  RunRounds(4);
  EXPECT_TRUE(engine_.IsManaged(a, VaddrToVpn(pa)));
  EXPECT_FALSE(engine_.IsShared(a, VaddrToVpn(pa)));
  EXPECT_GE(engine_.stats().fake_merges, 1u);
  const Pte* pte = a.address_space().GetPte(VaddrToVpn(pa));
  EXPECT_TRUE(pte->reserved_trap());
  EXPECT_TRUE(pte->cache_disabled());
  EXPECT_EQ(engine_.frames_saved(), 0u);
}

TEST_F(VUsionTest, CopyOnAccessRestoresContentOnRead) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x333});
  const VirtAddr pb = MapPages(b, {0x333});
  RunRounds(4);
  ASSERT_TRUE(engine_.IsManaged(a, VaddrToVpn(pa)));
  const std::uint64_t coa_before = engine_.stats().unmerges_coa;
  const std::uint64_t value = a.Read64(pa);  // ANY access unmerges (S xor F)
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0x333);
  EXPECT_EQ(value, probe.ReadU64(0, 0));
  EXPECT_FALSE(engine_.IsManaged(a, VaddrToVpn(pa)));
  EXPECT_EQ(engine_.stats().unmerges_coa, coa_before + 1);
  // b's still-managed copy keeps the content.
  EXPECT_EQ(b.Read64(pb), value);
  EXPECT_NE(a.TranslateFrame(VaddrToVpn(pa)), b.TranslateFrame(VaddrToVpn(pb)));
}

TEST_F(VUsionTest, WriteAfterMergePreservesCowSemantics) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x444});
  const VirtAddr pb = MapPages(b, {0x444});
  RunRounds(4);
  a.Write64(pa, 0xdead);
  EXPECT_EQ(a.Read64(pa), 0xdeadu);
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0x444);
  EXPECT_EQ(b.Read64(pb), probe.ReadU64(0, 0));
}

TEST_F(VUsionTest, WorkingSetEstimationSkipsHotPages) {
  Process& a = machine_.CreateProcess();
  const VirtAddr hot = MapPages(a, {0x551});
  const VirtAddr cold = MapPages(a, {0x552});
  // Realistic regime: enough mergeable memory that one scan round spans several
  // wake-ups (600 pages vs 256 pages/wake), so the hot page is re-touched between
  // the idle checks.
  const VirtAddr filler = a.AllocateRegion(600, PageType::kAnonymous, true, false);
  Rng rng(9);
  for (std::size_t i = 0; i < 600; ++i) {
    a.SetupMapPattern(VaddrToVpn(filler) + i, rng.Next());
  }
  for (int i = 0; i < 200; ++i) {
    a.Write64(hot, i);
    machine_.Idle(1 * kMillisecond);
  }
  EXPECT_FALSE(engine_.IsManaged(a, VaddrToVpn(hot)));
  EXPECT_TRUE(engine_.IsManaged(a, VaddrToVpn(cold)));
}

TEST(VUsionRoundTest, WaitsOneFullRoundBeforeActing) {
  // Drive the scanner wake-by-wake: with pages_per_wake equal to the mergeable page
  // count, each Run() covers exactly one round.
  Machine machine(SmallMachine());
  FusionConfig config = FastVUsion();
  config.pages_per_wake = 4;
  VUsionEngine engine(machine, config);
  engine.Install();
  Process& a = machine.CreateProcess();
  const VirtAddr base = a.AllocateRegion(4, PageType::kAnonymous, true, false);
  for (std::size_t i = 0; i < 4; ++i) {
    a.SetupMapPattern(VaddrToVpn(base) + i, 0x660 + i);
  }
  engine.Run();  // round 1: pages become candidates only
  EXPECT_FALSE(engine.IsManaged(a, VaddrToVpn(base)));
  engine.Run();  // round 2: still idle -> (fake) merged
  EXPECT_TRUE(engine.IsManaged(a, VaddrToVpn(base)));
  engine.Uninstall();
}

TEST_F(VUsionTest, RerandomizesBackingFrameEveryRound) {
  Process& a = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0x771});
  RunRounds(4);
  ASSERT_TRUE(engine_.IsManaged(a, VaddrToVpn(pa)));
  const FrameId f1 = a.TranslateFrame(VaddrToVpn(pa));
  RunRounds(2);
  const FrameId f2 = a.TranslateFrame(VaddrToVpn(pa));
  EXPECT_NE(f1, f2);  // §7.1(iii): page-coloring across rounds learns nothing
  EXPECT_TRUE(engine_.IsManaged(a, VaddrToVpn(pa)));
}

TEST_F(VUsionTest, AllocationLogCoversPoolUniformly) {
  engine_.stats().log_allocations = true;
  Process& a = machine_.CreateProcess();
  const std::size_t pages = 128;
  const VirtAddr base = a.AllocateRegion(pages, PageType::kAnonymous, true, false);
  Rng rng(1);
  for (std::size_t i = 0; i < pages; ++i) {
    a.SetupMapPattern(VaddrToVpn(base) + i, rng.Next());
  }
  RunRounds(6);
  EXPECT_GT(engine_.stats().allocation_log.size(), pages);
  // Allocations spread over many distinct frames (not clustered).
  std::set<FrameId> distinct(engine_.stats().allocation_log.begin(),
                             engine_.stats().allocation_log.end());
  EXPECT_GT(distinct.size(), engine_.stats().allocation_log.size() / 2);
}

TEST_F(VUsionTest, DeferredQueueStaysBounded) {
  Process& a = machine_.CreateProcess();
  MapPages(a, {0x881, 0x882, 0x883});
  RunRounds(4);
  // Every wake drains the previous wake's queue before scanning, so the backlog is
  // bounded by one wake's worth of (re-randomization) frees and never accumulates.
  for (int i = 0; i < 20; ++i) {
    machine_.Idle(1 * kMillisecond);
    EXPECT_LE(engine_.deferred_queue().pending(), engine_.config().pages_per_wake);
  }
}

TEST_F(VUsionTest, ThpIsSplitWhenConsidered) {
  Process& a = machine_.CreateProcess();
  const VirtAddr thp = a.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, true, true);
  ASSERT_TRUE(a.SetupMapHuge(VaddrToVpn(thp), 0x991000));
  RunRounds(6);
  EXPECT_FALSE(a.address_space().IsHuge(VaddrToVpn(thp)));
  EXPECT_GE(engine_.stats().thp_splits, 1u);
  // Subpages become managed over subsequent rounds.
  EXPECT_TRUE(engine_.IsManaged(a, VaddrToVpn(thp)));
}

TEST_F(VUsionTest, BaseVUsionBlocksCollapseOfManagedRanges) {
  Process& a = machine_.CreateProcess();
  const VirtAddr region =
      a.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, true, true);
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    a.SetupMapPattern(VaddrToVpn(region) + i, 0xaa2000 + i);
  }
  RunRounds(4);
  ASSERT_TRUE(engine_.IsManaged(a, VaddrToVpn(region)));
  EXPECT_FALSE(engine_.AllowCollapse(a, VaddrToVpn(region)));
}

TEST_F(VUsionTest, OnUnmapReleasesManagedPage) {
  Process& a = machine_.CreateProcess();
  Process& b = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0xbb1});
  const VirtAddr pb = MapPages(b, {0xbb1});
  RunRounds(4);
  ASSERT_EQ(engine_.frames_saved(), 1u);
  a.SetupUnmap(VaddrToVpn(pa));
  EXPECT_EQ(engine_.frames_saved(), 0u);
  EXPECT_FALSE(engine_.IsManaged(a, VaddrToVpn(pa)));
  EXPECT_TRUE(engine_.IsManaged(b, VaddrToVpn(pb)));
  b.SetupUnmap(VaddrToVpn(pb));
  EXPECT_EQ(engine_.stable_size(), 0u);
}

class VUsionThpTest : public VUsionTest {
 protected:
  VUsionThpTest()
      : VUsionTest([] {
          FusionConfig config = FastVUsion();
          config.thp_aware = true;
          return config;
        }()) {}
};

TEST_F(VUsionThpTest, SecuredCollapseUnmergesFirst) {
  KhugepagedConfig khp_config;
  khp_config.period = 2 * kMillisecond;
  khp_config.ranges_per_wake = 64;
  Khugepaged& khp = machine_.EnableKhugepaged(khp_config);
  Process& a = machine_.CreateProcess();
  const VirtAddr region =
      a.AllocateRegion(kPagesPerHugePage, PageType::kAnonymous, true, true);
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    a.SetupMapPattern(VaddrToVpn(region) + i, 0xcc3000 + i);
  }
  RunRounds(4);
  ASSERT_TRUE(engine_.IsManaged(a, VaddrToVpn(region)));
  // Stop the scanner (but keep the fault/collapse policy hooks) so the idle range
  // is not immediately re-considered after the collapse we want to observe.
  machine_.RemoveDaemon(&engine_);
  // The range turns active again: touch one subpage (CoA) to set accessed bits.
  a.Write64(region, 1);
  machine_.Idle(20 * kMillisecond);
  EXPECT_GE(khp.collapses(), 1u);
  EXPECT_TRUE(a.address_space().IsHuge(VaddrToVpn(region)));
  // Contents survived the unmerge-then-collapse dance.
  PhysicalMemory probe(1);
  probe.FillPattern(0, 0xcc3000 + 7);
  EXPECT_EQ(a.Read64(region + 7 * kPageSize), probe.ReadU64(0, 0));
}

TEST_F(VUsionTest, ScanningNeverChangesObservableContent) {
  // Property: fusion is semantically invisible. Map 64 pages with known seeds,
  // run many rounds with interleaved reads, verify every word read matches.
  Process& a = machine_.CreateProcess();
  const std::size_t pages = 64;
  const VirtAddr base = a.AllocateRegion(pages, PageType::kAnonymous, true, false);
  for (std::size_t i = 0; i < pages; ++i) {
    a.SetupMapPattern(VaddrToVpn(base) + i, 0xdd4000 + i % 7);  // many duplicates
  }
  PhysicalMemory probe(1);
  for (int round = 0; round < 5; ++round) {
    RunRounds(1);
    for (std::size_t i = 0; i < pages; i += 5) {
      probe.FillPattern(0, 0xdd4000 + i % 7);
      ASSERT_EQ(a.Read64(base + i * kPageSize + 8 * (i % 512)),
                probe.ReadU64(0, 8 * (i % 512)))
          << "page " << i << " round " << round;
    }
  }
}


TEST_F(VUsionTest, PrefetchCannotWarmManagedPages) {
  // The Gruss et al. prefetch side channel (§7.1, §9.1): software prefetch of a
  // (fake) merged page must neither fault nor bring its lines into the cache.
  Process& a = machine_.CreateProcess();
  const VirtAddr pa = MapPages(a, {0xcafe1});
  RunRounds(4);
  ASSERT_TRUE(engine_.IsManaged(a, VaddrToVpn(pa)));
  const FrameId backing = a.TranslateFrame(VaddrToVpn(pa));
  const std::uint64_t faults_before = machine_.total_faults();
  a.Prefetch(pa);
  a.Prefetch(pa + 128);
  EXPECT_EQ(machine_.total_faults(), faults_before);  // prefetch is silent
  EXPECT_TRUE(engine_.IsManaged(a, VaddrToVpn(pa)));  // and does not unmerge
  for (std::size_t off = 0; off < kPageSize; off += 64) {
    EXPECT_FALSE(machine_.llc().Contains(static_cast<PhysAddr>(backing) * kPageSize + off));
  }
}

}  // namespace
}  // namespace vusion
