#include "src/sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vusion {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(PercentileTest, KnownValues) {
  std::vector<double> samples{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 5.5);
  EXPECT_NEAR(Percentile(samples, 90), 9.1, 1e-9);
}

TEST(PercentileTest, UnsortedInput) {
  std::vector<double> samples{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 5.0);
}

TEST(PercentileTest, EmptyReturnsNaN) {
  EXPECT_TRUE(std::isnan(Percentile({}, 50)));
}

TEST(GeometricMeanTest, KnownValue) {
  EXPECT_NEAR(GeometricMean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
  EXPECT_NEAR(GeometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram hist(0.0, 100.0, 10);
  hist.Add(5.0);    // bin 0
  hist.Add(15.0);   // bin 1
  hist.Add(95.0);   // bin 9
  hist.Add(-3.0);   // clamps to bin 0
  hist.Add(250.0);  // clamps to bin 9
  EXPECT_EQ(hist.bin_count(0), 2u);
  EXPECT_EQ(hist.bin_count(1), 1u);
  EXPECT_EQ(hist.bin_count(9), 2u);
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_DOUBLE_EQ(hist.bin_low(1), 10.0);
}

TEST(HistogramTest, RenderContainsAllBins) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(1.0);
  hist.Add(1.0);
  hist.Add(9.0);
  const std::string rendered = hist.Render(20);
  // One line per bin.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 5);
  EXPECT_NE(rendered.find('#'), std::string::npos);
}

}  // namespace
}  // namespace vusion
