// Figure 5: frequency distribution of timing 1,000 writes in KSM after a fusion
// pass. The two distinct peaks (fast plain writes vs slow copy-on-write unmerges)
// are the classic disclosure side channel.

#include <cstdio>

#include "src/attack/cow_side_channel.h"
#include "src/sim/ks_test.h"
#include "src/sim/stats.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

void Run() {
  bench::Reporter reporter("fig5_ksm_write_timing");
  reporter.Header("Figure 5: freq. dist. of timing 1,000 writes in KSM");
  AttackEnvironment env(EngineKind::kKsm, 1, AttackMachineConfig(), AttackFusionConfig());
  const CowSideChannel::Samples samples =
      CowSideChannel::Collect(env, /*pages_per_class=*/500, /*use_reads=*/false);

  Histogram shared(0.0, 8000.0, 40);
  Histogram unshared(0.0, 8000.0, 40);
  for (const double t : samples.hit_times) {
    shared.Add(t);
  }
  for (const double t : samples.miss_times) {
    unshared.Add(t);
  }
  std::printf("shared pages   — write latency ns (bin low)\tcount\n%s", shared.Render(60).c_str());
  std::printf("\nunshared pages — write latency ns (bin low)\tcount\n%s",
              unshared.Render(60).c_str());

  const KsResult ks = KsTwoSample(samples.hit_times, samples.miss_times);
  std::printf("\nshared-page writes:   mean %.0f ns\n",
              [&] {
                RunningStats s;
                for (double t : samples.hit_times) {
                  s.Add(t);
                }
                return s.mean();
              }());
  std::printf("unshared-page writes: mean %.0f ns\n",
              [&] {
                RunningStats s;
                for (double t : samples.miss_times) {
                  s.Add(t);
                }
                return s.mean();
              }());
  std::printf("KS test shared vs unshared: D=%.3f p=%.3g  (paper: two distinct peaks)\n",
              ks.statistic, ks.p_value);

  reporter.AddSeries("shared_write_ns", samples.hit_times);
  reporter.AddSeries("unshared_write_ns", samples.miss_times);
  reporter.AddRow("ks_test", {{"statistic", ks.statistic}, {"p_value", ks.p_value}});
  if (env.engine() != nullptr) {
    env.engine()->ExportMetrics(env.machine().metrics());
  }
  reporter.AddMetrics(EngineKindName(env.kind()), env.machine().CollectMetrics());
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
