#include "src/phys/buddy_allocator.h"

#include <algorithm>
#include <cassert>

#include "src/chaos/fault_injector.h"

namespace vusion {

BuddyAllocator::BuddyAllocator(PhysicalMemory& memory)
    : memory_(&memory),
      free_lists_(kMaxBuddyOrder + 1),
      head_order_(memory.frame_count(), kNotFreeHead) {
  // Seed the free lists with maximal aligned blocks covering the frame range.
  FrameId start = 0;
  const FrameId total = memory.frame_count();
  while (start < total) {
    std::size_t order = kMaxBuddyOrder;
    while (order > 0 &&
           ((start & ((FrameId{1} << order) - 1)) != 0 || start + (FrameId{1} << order) > total)) {
      --order;
    }
    PushBlock(start, order);
    free_frames_ += std::size_t{1} << order;
    start += FrameId{1} << order;
  }
}

void BuddyAllocator::PushBlock(FrameId start, std::size_t order) {
  free_lists_[order].push_back(start);
  head_order_[start] = static_cast<std::uint8_t>(order);
}

void BuddyAllocator::RemoveBlock(FrameId start, std::size_t order) {
  auto& list = free_lists_[order];
  auto it = std::find(list.begin(), list.end(), start);
  assert(it != list.end());
  // Swap-remove keeps Free->Allocate reuse LIFO for the common tail case.
  *it = list.back();
  list.pop_back();
  head_order_[start] = kNotFreeHead;
}

void BuddyAllocator::MarkRangeAllocated(FrameId start, std::size_t order) {
  for (FrameId f = start; f < start + (FrameId{1} << order); ++f) {
    memory_->MarkAllocated(f);
  }
}

void BuddyAllocator::MarkRangeFree(FrameId start, std::size_t order) {
  for (FrameId f = start; f < start + (FrameId{1} << order); ++f) {
    memory_->MarkFree(f);
  }
}

FrameId BuddyAllocator::AllocateOrder(std::size_t order) {
  assert(order <= kMaxBuddyOrder);
  // Injected transient failure: fail before touching any free list so the
  // allocator state is exactly as if the call never happened. Because a real
  // order-0 failure implies free_frames_ == 0, callers can tell an injected
  // failure apart by seeing free_count() > 0 and treat it as retryable.
  if (injector_ != nullptr && injector_->ShouldFail(FaultSite::kBuddyAlloc)) {
    ++failed_alloc_count_;
    return kInvalidFrame;
  }
  std::size_t have = order;
  while (have <= kMaxBuddyOrder && free_lists_[have].empty()) {
    ++have;
  }
  if (have > kMaxBuddyOrder) {
    ++failed_alloc_count_;
    return kInvalidFrame;
  }
  FrameId block = free_lists_[have].back();
  free_lists_[have].pop_back();
  head_order_[block] = kNotFreeHead;
  // Split down to the requested order, freeing the upper halves.
  while (have > order) {
    --have;
    const FrameId upper = block + (FrameId{1} << have);
    PushBlock(upper, have);
    ++split_count_;
  }
  ++alloc_count_;
  free_frames_ -= std::size_t{1} << order;
  MarkRangeAllocated(block, order);
  return block;
}

void BuddyAllocator::FreeOrder(FrameId start, std::size_t order) {
  assert(order <= kMaxBuddyOrder);
  MarkRangeFree(start, order);
  free_frames_ += std::size_t{1} << order;
  ++free_op_count_;
  // Coalesce with the buddy while it is free and of the same order.
  while (order < kMaxBuddyOrder) {
    const FrameId buddy = start ^ (FrameId{1} << order);
    if (buddy >= head_order_.size() || head_order_[buddy] != order) {
      // Also handle the case where we are the high half: buddy must be block head.
      break;
    }
    RemoveBlock(buddy, order);
    start = std::min(start, buddy);
    ++order;
    ++coalesce_count_;
  }
  PushBlock(start, order);
}

FrameId BuddyAllocator::Allocate() { return AllocateOrder(0); }

void BuddyAllocator::Free(FrameId frame) { FreeOrder(frame, 0); }

std::uint8_t BuddyAllocator::FindContainingBlock(FrameId frame, FrameId& start) const {
  for (std::size_t order = 0; order <= kMaxBuddyOrder; ++order) {
    const FrameId head = frame & ~((FrameId{1} << order) - 1);
    if (head_order_[head] == order) {
      start = head;
      return static_cast<std::uint8_t>(order);
    }
  }
  return kNotFreeHead;
}

bool BuddyAllocator::IsFree(FrameId frame) const {
  FrameId start = 0;
  return FindContainingBlock(frame, start) != kNotFreeHead;
}

bool BuddyAllocator::AllocateSpecific(FrameId frame) {
  FrameId start = 0;
  const std::uint8_t order = FindContainingBlock(frame, start);
  if (order == kNotFreeHead) {
    return false;
  }
  RemoveBlock(start, order);
  // Split the block repeatedly, keeping the half containing `frame` and freeing the
  // other half, until the block is the single target frame.
  std::size_t o = order;
  while (o > 0) {
    --o;
    const FrameId low = start;
    const FrameId high = start + (FrameId{1} << o);
    if (frame >= high) {
      PushBlock(low, o);
      start = high;
    } else {
      PushBlock(high, o);
      start = low;
    }
    ++split_count_;
  }
  ++alloc_count_;
  --free_frames_;
  memory_->MarkAllocated(frame);
  return true;
}

bool BuddyAllocator::ValidateInvariants() const {
  std::size_t counted = 0;
  for (std::size_t order = 0; order <= kMaxBuddyOrder; ++order) {
    for (FrameId head : free_lists_[order]) {
      if (head_order_[head] != order) {
        return false;
      }
      if ((head & ((FrameId{1} << order) - 1)) != 0) {
        return false;  // misaligned block
      }
      for (FrameId f = head; f < head + (FrameId{1} << order); ++f) {
        if (memory_->allocated(f)) {
          return false;  // free block overlapping allocated frame
        }
      }
      counted += std::size_t{1} << order;
    }
  }
  return counted == free_frames_;
}

}  // namespace vusion

#include "src/snapshot/io.h"

namespace vusion {

void BuddyAllocator::SaveState(snapshot::SnapshotWriter& w) const {
  w.U64(free_lists_.size());
  for (const std::vector<FrameId>& list : free_lists_) {
    w.U64(list.size());
    for (const FrameId f : list) {
      w.U32(f);
    }
  }
  w.U64(head_order_.size());
  w.Bytes(head_order_.data(), head_order_.size());
  w.U64(free_frames_);
  w.U64(alloc_count_);
  w.U64(free_op_count_);
  w.U64(split_count_);
  w.U64(coalesce_count_);
  w.U64(failed_alloc_count_);
}

void BuddyAllocator::RestoreState(snapshot::SnapshotReader& r) {
  const std::uint64_t orders = r.Count(8);
  if (orders != free_lists_.size()) {
    throw snapshot::RestoreError("phys.buddy", "order count mismatch");
  }
  for (std::vector<FrameId>& list : free_lists_) {
    list.clear();
    const std::uint64_t n = r.Count(4);
    list.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      list.push_back(r.U32());
    }
  }
  const std::uint64_t frames = r.U64();
  if (frames != head_order_.size()) {
    throw snapshot::RestoreError("phys.buddy", "frame count mismatch");
  }
  r.Bytes(head_order_.data(), head_order_.size());
  free_frames_ = r.U64();
  alloc_count_ = r.U64();
  free_op_count_ = r.U64();
  split_count_ = r.U64();
  coalesce_count_ = r.U64();
  failed_alloc_count_ = r.U64();
}

}  // namespace vusion
