#include "src/container/avl_tree.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/sim/rng.h"

namespace vusion {
namespace {

struct IntCompare {
  int operator()(const int& a, const int& b) const { return (a > b) - (a < b); }
};

using IntTree = AvlTree<int, IntCompare>;

auto Probe(int target) {
  return [target](const int& v) { return (target > v) - (target < v); };
}

TEST(AvlTreeTest, InsertAndFind) {
  IntTree tree;
  tree.Insert(10);
  tree.Insert(20);
  tree.Insert(5);
  EXPECT_EQ(tree.size(), 3u);
  auto [found, steps] = tree.Find(Probe(20));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, 20);
  EXPECT_EQ(tree.Find(Probe(99)).first, nullptr);
}

TEST(AvlTreeTest, SequentialInsertStaysBalanced) {
  IntTree tree;
  for (int i = 0; i < 1000; ++i) {
    tree.Insert(i);
  }
  EXPECT_TRUE(tree.ValidateInvariants());
  // A balanced tree of 1000 nodes resolves lookups in <= ~12 steps.
  auto [found, steps] = tree.Find(Probe(999));
  ASSERT_NE(found, nullptr);
  EXPECT_LE(steps, 12u);
}

TEST(AvlTreeTest, RemoveIf) {
  IntTree tree;
  tree.Insert(1);
  tree.Insert(2);
  tree.Insert(3);
  EXPECT_TRUE(tree.RemoveIf(Probe(2)));
  EXPECT_FALSE(tree.RemoveIf(Probe(2)));
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_TRUE(tree.ValidateInvariants());
}

TEST(AvlTreeTest, InOrderSorted) {
  IntTree tree;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    tree.Insert(static_cast<int>(rng.NextBelow(10000)));
  }
  std::vector<int> values;
  tree.InOrder([&](const int& v) { values.push_back(v); });
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

class AvlPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AvlPropertyTest, RandomOperationsKeepBalance) {
  const int operations = GetParam();
  IntTree tree;
  Rng rng(3000 + operations);
  std::multiset<int> reference;
  for (int op = 0; op < operations; ++op) {
    if (reference.empty() || rng.NextBool(0.6)) {
      const int value = static_cast<int>(rng.NextBelow(300));
      tree.Insert(value);
      reference.insert(value);
    } else {
      auto it = reference.begin();
      std::advance(it, rng.NextBelow(reference.size()));
      ASSERT_TRUE(tree.RemoveIf(Probe(*it)));
      reference.erase(it);
    }
    ASSERT_TRUE(tree.ValidateInvariants()) << "after op " << op;
    ASSERT_EQ(tree.size(), reference.size());
  }
  std::vector<int> values;
  tree.InOrder([&](const int& v) { values.push_back(v); });
  EXPECT_TRUE(std::equal(values.begin(), values.end(), reference.begin()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AvlPropertyTest, ::testing::Values(10, 100, 1000));

TEST(AvlTreeTest, ClearThenReuse) {
  IntTree tree;
  for (int i = 0; i < 20; ++i) {
    tree.Insert(i);
  }
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  tree.Insert(42);
  EXPECT_EQ(*tree.Find(Probe(42)).first, 42);
}

}  // namespace
}  // namespace vusion
