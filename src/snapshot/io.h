// Versioned, CRC-guarded binary savestate codec (DESIGN.md §13).
//
// A snapshot is a 20-byte header followed by a flat sequence of named sections:
//
//   header:  magic u64 | version u32 | section_count u32 | crc32(header[0..16))
//   section: name_len u16 | name bytes | payload_len u64 | payload | crc32(payload)
//
// Everything is little-endian. The reader validates the header and every
// section frame (bounds + checksum) up front, before the caller touches any
// target state, so a truncated, bit-flipped, or version-mismatched snapshot
// fails closed with a structured RestoreError naming the offending section —
// never a crash or a half-restored Machine.
//
// Header-only so every subsystem .cc can serialize itself without a new link
// dependency; the orchestration lives in src/snapshot/machine_snapshot.cc.

#ifndef VUSION_SRC_SNAPSHOT_IO_H_
#define VUSION_SRC_SNAPSHOT_IO_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace vusion::snapshot {

inline constexpr std::uint64_t kMagic = 0x53535653'4e4f4953ull;  // "SIONVSSS"
// v2: FusionConfig gained scan_streaming + scan_chunk_pages (decoupled
// streaming scan pipeline). v1 images predate the fields and fail closed.
inline constexpr std::uint32_t kVersion = 2;
inline constexpr std::size_t kHeaderBytes = 20;  // magic + version + count + crc

// Structured restore failure: carries the name of the section (or "header")
// that failed validation or decoding. Restore paths throw this before mutating
// the target, so a failed load leaves the destination Machine untouched.
class RestoreError : public std::runtime_error {
 public:
  RestoreError(std::string section, const std::string& detail)
      : std::runtime_error("snapshot restore failed [" + section + "]: " + detail),
        section_(std::move(section)) {}

  [[nodiscard]] const std::string& section() const { return section_; }

 private:
  std::string section_;
};

namespace detail {

inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

inline std::uint32_t Crc32(const void* data, std::size_t size) {
  const auto& table = detail::Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// Accumulates named, checksummed sections; Finish() prepends the header.
class SnapshotWriter {
 public:
  // --- Section framing ---

  void BeginSection(std::string_view name) {
    AppendLe<std::uint16_t>(frames_, static_cast<std::uint16_t>(name.size()));
    frames_.append(name.data(), name.size());
    payload_.clear();
    in_section_ = true;
  }

  void EndSection() {
    AppendLe<std::uint64_t>(frames_, payload_.size());
    frames_.append(payload_);
    AppendLe<std::uint32_t>(frames_, Crc32(payload_.data(), payload_.size()));
    payload_.clear();
    in_section_ = false;
    ++section_count_;
  }

  // --- Primitives (all little-endian; doubles are bit-exact) ---

  void U8(std::uint8_t v) { AppendLe(payload_, v); }
  void U16(std::uint16_t v) { AppendLe(payload_, v); }
  void U32(std::uint32_t v) { AppendLe(payload_, v); }
  void U64(std::uint64_t v) { AppendLe(payload_, v); }
  void I64(std::int64_t v) { AppendLe(payload_, static_cast<std::uint64_t>(v)); }
  void F64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendLe(payload_, bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Bytes(const void* data, std::size_t size) {
    payload_.append(static_cast<const char*>(data), size);
  }
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    payload_.append(s.data(), s.size());
  }

  [[nodiscard]] std::string Finish() const {
    std::string out;
    out.reserve(kHeaderBytes + frames_.size());
    AppendLe<std::uint64_t>(out, kMagic);
    AppendLe<std::uint32_t>(out, kVersion);
    AppendLe<std::uint32_t>(out, section_count_);
    AppendLe<std::uint32_t>(out, Crc32(out.data(), out.size()));
    out.append(frames_);
    return out;
  }

 private:
  template <typename T>
  static void AppendLe(std::string& dst, T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      dst.push_back(static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFF));
    }
  }

  std::string frames_;
  std::string payload_;
  std::uint32_t section_count_ = 0;
  bool in_section_ = false;
};

// Validates the whole snapshot up front, then serves sections strictly in
// order. Any framing or checksum defect throws RestoreError before the caller
// sees a single byte of payload.
class SnapshotReader {
 public:
  struct SectionInfo {
    std::string name;
    std::size_t offset = 0;  // payload start within the buffer
    std::size_t size = 0;    // payload bytes
  };

  explicit SnapshotReader(std::string_view data) : data_(data) { Validate(); }

  [[nodiscard]] const std::vector<SectionInfo>& sections() const { return sections_; }

  // Opens the next section, which must carry the expected name; version skew
  // (added/removed/reordered sections) therefore fails closed with the name of
  // the section the restore code was expecting.
  void OpenSection(std::string_view name) {
    if (next_section_ >= sections_.size()) {
      throw RestoreError(std::string(name), "section missing (snapshot ends early)");
    }
    const SectionInfo& info = sections_[next_section_];
    if (info.name != name) {
      throw RestoreError(std::string(name),
                         "section out of order (found '" + info.name + "')");
    }
    cursor_ = info.offset;
    end_ = info.offset + info.size;
    current_ = info.name;
    ++next_section_;
  }

  void EndSection() {
    if (cursor_ != end_) {
      throw RestoreError(current_, "trailing bytes in section payload");
    }
  }

  // --- Primitives ---

  std::uint8_t U8() { return ReadLe<std::uint8_t>(); }
  std::uint16_t U16() { return ReadLe<std::uint16_t>(); }
  std::uint32_t U32() { return ReadLe<std::uint32_t>(); }
  std::uint64_t U64() { return ReadLe<std::uint64_t>(); }
  std::int64_t I64() { return static_cast<std::int64_t>(ReadLe<std::uint64_t>()); }
  double F64() {
    const std::uint64_t bits = ReadLe<std::uint64_t>();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool Bool() { return U8() != 0; }
  void Bytes(void* out, std::size_t size) {
    Need(size);
    std::memcpy(out, data_.data() + cursor_, size);
    cursor_ += size;
  }
  std::string Str() {
    const std::uint32_t size = U32();
    Need(size);
    std::string s(data_.substr(cursor_, size));
    cursor_ += size;
    return s;
  }

  // Decodes a count that will drive a container reserve/loop; bounds it by the
  // bytes actually remaining so a corrupt count cannot drive a huge allocation.
  std::uint64_t Count(std::size_t min_bytes_per_element = 1) {
    const std::uint64_t n = U64();
    const std::size_t remaining = end_ - cursor_;
    if (min_bytes_per_element != 0 && n > remaining / min_bytes_per_element) {
      throw RestoreError(current_, "element count exceeds section payload");
    }
    return n;
  }

 private:
  void Validate() {
    if (data_.size() < kHeaderBytes) {
      throw RestoreError("header", "truncated header");
    }
    std::size_t pos = 0;
    const std::uint64_t magic = PeekLe<std::uint64_t>(pos);
    const std::uint32_t version = PeekLe<std::uint32_t>(pos);
    const std::uint32_t count = PeekLe<std::uint32_t>(pos);
    const std::uint32_t stored_crc = PeekLe<std::uint32_t>(pos);
    if (Crc32(data_.data(), kHeaderBytes - sizeof(std::uint32_t)) != stored_crc) {
      throw RestoreError("header", "header checksum mismatch");
    }
    if (magic != kMagic) {
      throw RestoreError("header", "bad magic (not a vusion snapshot)");
    }
    if (version != kVersion) {
      throw RestoreError("header", "unsupported snapshot version " + std::to_string(version));
    }
    sections_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string frame_label = "section[" + std::to_string(i) + "]";
      if (data_.size() - pos < sizeof(std::uint16_t)) {
        throw RestoreError(frame_label, "truncated section name length");
      }
      const std::uint16_t name_len = PeekLe<std::uint16_t>(pos);
      if (data_.size() - pos < name_len) {
        throw RestoreError(frame_label, "truncated section name");
      }
      std::string name(data_.substr(pos, name_len));
      pos += name_len;
      if (data_.size() - pos < sizeof(std::uint64_t)) {
        throw RestoreError(name, "truncated payload length");
      }
      const std::uint64_t payload_len = PeekLe<std::uint64_t>(pos);
      if (data_.size() - pos < payload_len ||
          data_.size() - pos - payload_len < sizeof(std::uint32_t)) {
        throw RestoreError(name, "truncated payload");
      }
      const std::size_t payload_off = pos;
      pos += payload_len;
      const std::uint32_t stored = PeekLe<std::uint32_t>(pos);
      if (Crc32(data_.data() + payload_off, payload_len) != stored) {
        throw RestoreError(name, "payload checksum mismatch");
      }
      sections_.push_back({std::move(name), payload_off, payload_len});
    }
    if (pos != data_.size()) {
      throw RestoreError("header", "trailing bytes after last section");
    }
  }

  template <typename T>
  T PeekLe(std::size_t& pos) const {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos + i])) << (8 * i);
    }
    pos += sizeof(T);
    return static_cast<T>(v);
  }

  void Need(std::size_t size) {
    if (end_ - cursor_ < size) {
      throw RestoreError(current_, "field read past section payload");
    }
  }

  template <typename T>
  T ReadLe() {
    Need(sizeof(T));
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[cursor_ + i])) << (8 * i);
    }
    cursor_ += sizeof(T);
    return static_cast<T>(v);
  }

  std::string_view data_;
  std::vector<SectionInfo> sections_;
  std::size_t next_section_ = 0;
  std::size_t cursor_ = 0;
  std::size_t end_ = 0;
  std::string current_ = "header";
};

}  // namespace vusion::snapshot

#endif  // VUSION_SRC_SNAPSHOT_IO_H_
