#include "src/attack/page_color_attack.h"

#include <sstream>
#include <unordered_map>

namespace vusion {

namespace {

constexpr std::uint64_t kSecretSeed = 0xc0105ec7;
constexpr std::uint64_t kControlSeed = 0xfeedface;

// Attacker-side eviction machinery: pages covering every color, plus the frame ->
// attacker-vaddr mapping needed to traverse eviction sets through the MMU.
struct EvictionBuffer {
  ColorEvictionSets sets{{}, CacheConfig{}};
  std::unordered_map<FrameId, Vpn> frame_to_vpn;

  SimTime Traverse(Process& attacker, std::size_t color) {
    return sets.Traverse(color, [&](FrameId frame, std::size_t offset) {
      return attacker.TimedRead(VpnToVaddr(frame_to_vpn.at(frame)) + offset);
    });
  }
};

EvictionBuffer BuildEvictionBuffer(Process& attacker) {
  const CacheConfig& cache = attacker.machine().config().cache;
  // Enough pages to cover all colors with `ways` frames each, with headroom for the
  // uneven color distribution of real allocations.
  const std::size_t pages = cache.page_colors() * cache.ways * 5 / 4;
  const VirtAddr base =
      attacker.AllocateRegion(pages, PageType::kAnonymous, /*mergeable=*/false, false);
  std::vector<FrameId> frames;
  EvictionBuffer buffer;
  for (std::size_t i = 0; i < pages; ++i) {
    const Vpn vpn = VaddrToVpn(base) + i;
    attacker.SetupMapPattern(vpn, 0xe71c7 + i);
    const FrameId frame = attacker.TranslateFrame(vpn);
    frames.push_back(frame);
    buffer.frame_to_vpn[frame] = vpn;
  }
  buffer.sets = ColorEvictionSets(frames, cache);
  return buffer;
}

// Touches every cache line of the target page (the "read from the target page"
// step; a single line would be lost in probe noise).
void TouchAllLines(Process& attacker, VirtAddr target) {
  for (std::size_t offset = 0; offset < kPageSize; offset += 64) {
    attacker.Read64(target + offset);
  }
}

}  // namespace

AttackOutcome PageColorAttack::Run(EngineKind kind, std::uint64_t seed) {
  AttackEnvironment env(kind, seed, AttackMachineConfig(), AttackFusionConfig());
  Process& attacker = env.attacker();
  Process& victim = env.victim();

  // Calibration happens between fusion passes (at real KSM scan rates a full pass
  // over gigabytes takes minutes; our sped-up scanner would otherwise race the
  // attacker's PRIME+PROBE calibration).
  if (env.engine() != nullptr) {
    env.engine()->Uninstall();
  }
  EvictionBuffer buffer = BuildEvictionBuffer(attacker);
  const std::size_t colors = attacker.machine().config().cache.page_colors();

  // Victim's secret page; attacker's two duplicate guesses plus a control page.
  const VirtAddr victim_base =
      victim.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  victim.SetupMapPattern(VaddrToVpn(victim_base), kSecretSeed);
  const VirtAddr base =
      attacker.AllocateRegion(4, PageType::kAnonymous, /*mergeable=*/true, false);
  const VirtAddr dup1 = base;                  // stabilizes first under KSM
  const VirtAddr dup2 = base + kPageSize;      // joins the stable copy: frame changes
  const VirtAddr control = base + 2 * kPageSize;
  attacker.SetupMapPattern(VaddrToVpn(dup1), kSecretSeed);
  attacker.SetupMapPattern(VaddrToVpn(dup2), kSecretSeed);
  attacker.SetupMapPattern(VaddrToVpn(control), kControlSeed);

  // Calibrated PRIME+PROBE color measurement (argmax of probe slowdown).
  auto measure_color = [&](VirtAddr target) {
    std::size_t best_color = 0;
    double best_delta = -1.0;
    for (std::size_t c = 0; c < colors; ++c) {
      buffer.Traverse(attacker, c);                                  // prime
      const SimTime baseline = buffer.Traverse(attacker, c);         // re-prime: all hits
      TouchAllLines(attacker, target);                               // victim step
      const SimTime probe = buffer.Traverse(attacker, c);            // probe
      const double delta = static_cast<double>(probe) - static_cast<double>(baseline);
      if (delta > best_delta) {
        best_delta = delta;
        best_color = c;
      }
    }
    return best_color;
  };
  auto has_color = [&](VirtAddr target, std::size_t color) {
    buffer.Traverse(attacker, color);
    const SimTime baseline = buffer.Traverse(attacker, color);
    TouchAllLines(attacker, target);
    const SimTime probe = buffer.Traverse(attacker, color);
    const LatencyConfig& lc = attacker.machine().latency().config();
    const double threshold =
        32.0 * static_cast<double>(lc.dram_row_hit - lc.llc_hit);  // ~half the page's lines
    return static_cast<double>(probe) - static_cast<double>(baseline) > threshold;
  };

  const std::size_t color_dup = measure_color(dup2);
  const std::size_t color_control = measure_color(control);

  if (env.engine() != nullptr) {
    env.engine()->Install();
  }
  env.WaitFusionRounds(6);

  const bool dup_unchanged = has_color(dup2, color_dup);
  const bool control_unchanged = has_color(control, color_control);

  AttackOutcome outcome;
  outcome.success = dup_unchanged != control_unchanged;
  outcome.confidence = outcome.success ? 1.0 : 0.0;
  std::ostringstream detail;
  detail << "dup color " << (dup_unchanged ? "unchanged" : "changed") << ", control "
         << (control_unchanged ? "unchanged" : "changed");
  outcome.detail = detail.str();
  return outcome;
}

}  // namespace vusion
