# Empty compiler generated dependencies file for bench_sec_ra_enforcement.
# This may be replaced when dependencies are built.
