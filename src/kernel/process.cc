#include "src/kernel/process.h"

#include <array>
#include <cassert>

namespace vusion {

namespace {
// Processes lay out regions starting well above the null page, 512-aligned so huge
// mappings are always possible, with a guard gap between regions.
constexpr Vpn kFirstRegionVpn = 0x200;
constexpr Vpn kRegionGuardPages = kPagesPerHugePage;
}  // namespace

Process::Process(Machine& machine, std::uint32_t id)
    : machine_(&machine),
      id_(id),
      address_space_(id, machine.buddy(), machine.memory()),
      next_region_vpn_(kFirstRegionVpn) {}

VirtAddr Process::AllocateRegion(std::uint64_t pages, PageType type, bool mergeable,
                                 bool thp_eligible) {
  const Vpn start = next_region_vpn_;
  VmArea vma;
  vma.start = start;
  vma.pages = pages;
  vma.type = type;
  vma.mergeable = mergeable;
  vma.thp_eligible = thp_eligible;
  address_space_.AddVma(vma);
  // Keep regions 512-aligned and separated by a guard gap.
  const std::uint64_t padded = (pages + kRegionGuardPages + kPagesPerHugePage - 1) &
                               ~(kPagesPerHugePage - 1);
  next_region_vpn_ = start + padded;
  return VpnToVaddr(start);
}

void Process::InheritLayout(const Process& parent) {
  for (const VmArea& vma : parent.address_space().vmas().areas()) {
    address_space_.AddVma(vma);
  }
  next_region_vpn_ = parent.next_region_vpn_;
}

void Process::Madvise(VirtAddr vaddr, std::uint64_t pages) {
  address_space_.MadviseMergeable(VaddrToVpn(vaddr), pages);
}

void Process::MadviseUnmergeable(VirtAddr vaddr, std::uint64_t pages) {
  const Vpn start = VaddrToVpn(vaddr);
  if (machine_->sharing_policy() != nullptr) {
    machine_->sharing_policy()->OnUnregister(*this, start, pages);
  }
  address_space_.MadviseUnmergeable(start, pages);
}

void Process::SetupMapPattern(Vpn vpn, std::uint64_t seed) {
  // Setup scaffolding asserts on OOM, so it is exempt from fault injection
  // (like the page-table __GFP_NOFAIL path).
  const FaultInjector::ScopedSuppress no_chaos;
  const FrameId frame = machine_->buddy().Allocate();
  assert(frame != kInvalidFrame && "machine out of memory during setup");
  machine_->memory().FillPattern(frame, seed);
  address_space_.MapPage(vpn, frame, kPtePresent | kPteWritable);
}

void Process::SetupMapZero(Vpn vpn) {
  const FaultInjector::ScopedSuppress no_chaos;
  const FrameId frame = machine_->buddy().Allocate();
  assert(frame != kInvalidFrame && "machine out of memory during setup");
  machine_->memory().FillZero(frame);
  address_space_.MapPage(vpn, frame, kPtePresent | kPteWritable);
}

bool Process::SetupMapHuge(Vpn base_vpn, std::uint64_t seeds_base) {
  std::array<std::uint64_t, kPagesPerHugePage> seeds;
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    seeds[i] = seeds_base + i;
  }
  return SetupMapHugeSeeds(base_vpn, seeds);
}

bool Process::SetupMapHugeSeeds(Vpn base_vpn, std::span<const std::uint64_t> seeds) {
  assert(base_vpn % kPagesPerHugePage == 0);
  assert(seeds.size() == kPagesPerHugePage);
  const FrameId block = machine_->buddy().AllocateOrder(kHugePageOrder);
  if (block == kInvalidFrame) {
    return false;
  }
  for (std::size_t i = 0; i < kPagesPerHugePage; ++i) {
    if (seeds[i] == 0) {
      machine_->memory().FillZero(block + static_cast<FrameId>(i));
    } else {
      machine_->memory().FillPattern(block + static_cast<FrameId>(i), seeds[i]);
    }
  }
  address_space_.MapHugeRange(base_vpn, block, kPtePresent | kPteWritable);
  return true;
}

void Process::SetupUnmap(Vpn vpn) { machine_->UnmapAndFree(*this, vpn); }

std::uint64_t Process::Read64(VirtAddr vaddr) {
  return machine_->Access(*this, vaddr, AccessType::kRead, 0).value;
}

void Process::Write64(VirtAddr vaddr, std::uint64_t value) {
  machine_->Access(*this, vaddr, AccessType::kWrite, value);
}

SimTime Process::TimedRead(VirtAddr vaddr) {
  return machine_->Access(*this, vaddr, AccessType::kRead, 0).latency;
}

SimTime Process::TimedWrite(VirtAddr vaddr, std::uint64_t value) {
  return machine_->Access(*this, vaddr, AccessType::kWrite, value).latency;
}

void Process::Prefetch(VirtAddr vaddr) { machine_->Prefetch(*this, vaddr); }

void Process::FlushCacheLine(VirtAddr vaddr) { machine_->FlushCacheLine(*this, vaddr); }

FrameId Process::TranslateFrame(Vpn vpn) const {
  const Pte* pte = address_space_.GetPte(vpn);
  if (pte == nullptr || pte->flags == 0 || pte->frame == kInvalidFrame) {
    return kInvalidFrame;
  }
  if (pte->huge()) {
    return pte->frame + static_cast<FrameId>(vpn & (kPagesPerHugePage - 1));
  }
  return pte->frame;
}

}  // namespace vusion
