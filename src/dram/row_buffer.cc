#include "src/dram/row_buffer.h"

namespace vusion {

RowBuffer::RowBuffer(const DramMapping& mapping, VirtualClock& clock)
    : mapping_(&mapping), clock_(&clock), open_rows_(mapping.config().banks, -1) {}

std::uint64_t RowBuffer::current_epoch() const {
  return clock_->now() / mapping_->config().refresh_interval;
}

void RowBuffer::MaybeRollEpoch() {
  const std::uint64_t epoch = current_epoch();
  if (epoch != epoch_) {
    epoch_ = epoch;
    activation_counts_.clear();
  }
}

RowBuffer::AccessResult RowBuffer::Access(PhysAddr paddr) {
  MaybeRollEpoch();
  AccessResult result;
  result.location = mapping_->Locate(paddr);
  const auto row_signed = static_cast<std::int64_t>(result.location.row);
  if (open_rows_[result.location.bank] == row_signed) {
    result.row_hit = true;
    ++row_hits_;
    return result;
  }
  if (open_rows_[result.location.bank] != -1) {
    ++row_conflicts_;
  }
  open_rows_[result.location.bank] = row_signed;
  result.activated = true;
  ++total_activations_;
  result.activation_count = ++activation_counts_[Key(result.location.bank, result.location.row)];
  return result;
}

std::uint32_t RowBuffer::activations(std::size_t bank, std::uint64_t row) const {
  const auto it = activation_counts_.find(Key(bank, row));
  return it == activation_counts_.end() ? 0 : it->second;
}

}  // namespace vusion

#include "src/snapshot/io.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace vusion {

void RowBuffer::SaveState(snapshot::SnapshotWriter& w) const {
  w.U64(open_rows_.size());
  for (const std::int64_t row : open_rows_) {
    w.I64(row);
  }
  std::vector<std::pair<std::uint64_t, std::uint32_t>> counts(activation_counts_.begin(),
                                                              activation_counts_.end());
  std::sort(counts.begin(), counts.end());
  w.U64(counts.size());
  for (const auto& [key, count] : counts) {
    w.U64(key);
    w.U32(count);
  }
  w.U64(epoch_);
  w.U64(row_hits_);
  w.U64(row_conflicts_);
  w.U64(total_activations_);
}

void RowBuffer::RestoreState(snapshot::SnapshotReader& r) {
  const std::uint64_t banks = r.U64();
  if (banks != open_rows_.size()) {
    throw snapshot::RestoreError("dram.rows", "bank count mismatch");
  }
  for (std::int64_t& row : open_rows_) {
    row = r.I64();
  }
  activation_counts_.clear();
  const std::uint64_t n = r.Count(12);
  activation_counts_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = r.U64();
    activation_counts_.emplace(key, r.U32());
  }
  epoch_ = r.U64();
  row_hits_ = r.U64();
  row_conflicts_ = r.U64();
  total_activations_ = r.U64();
}

}  // namespace vusion
