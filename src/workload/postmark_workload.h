// Postmark-style mailserver workload (paper Table 4): a pool of small files churned
// by create/read/append/delete transactions through the guest page cache - the
// filesystem-intensive case where fusion finds most of its page-cache savings.

#ifndef VUSION_SRC_WORKLOAD_POSTMARK_WORKLOAD_H_
#define VUSION_SRC_WORKLOAD_POSTMARK_WORKLOAD_H_

#include "src/kernel/page_cache.h"
#include "src/sim/rng.h"

namespace vusion {

struct PostmarkResult {
  double tx_per_s = 0.0;
  std::uint64_t transactions = 0;
};

class PostmarkWorkload {
 public:
  struct Config {
    std::size_t file_pool = 500;       // simultaneous files
    std::size_t max_file_pages = 4;    // file sizes 1..max pages
    std::size_t transactions = 20000;
    SimTime per_tx_fs_overhead = 150 * kMicrosecond;  // metadata, journaling
  };

  PostmarkWorkload(Process& process, PageCache& cache, const Config& config,
                   std::uint64_t seed);

  PostmarkResult Run();

 private:
  Process* process_;
  PageCache* cache_;
  Config config_;
  Rng rng_;
};

}  // namespace vusion

#endif  // VUSION_SRC_WORKLOAD_POSTMARK_WORKLOAD_H_
