// Host-side microbenchmarks of the simulator's hot primitives (google-benchmark):
// content hashing/compare, the buddy allocator, the content-keyed red-black tree,
// the LLC, and the full timed access path. These bound the wall-clock cost of the
// evaluation benches.

#include <benchmark/benchmark.h>

#include "bench/reporter.h"
#include "src/container/rbtree.h"
#include "src/kernel/process.h"
#include "src/phys/buddy_allocator.h"

namespace vusion {
namespace {

void BM_PatternHash(benchmark::State& state) {
  PhysicalMemory mem(64);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    mem.FillPattern(0, seed++);
    benchmark::DoNotOptimize(mem.HashContent(0));
  }
}
BENCHMARK(BM_PatternHash);

void BM_CachedHash(benchmark::State& state) {
  PhysicalMemory mem(64);
  mem.FillPattern(0, 7);
  benchmark::DoNotOptimize(mem.HashContent(0));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.HashContent(0));
  }
}
BENCHMARK(BM_CachedHash);

void BM_ContentCompareEqualPatterns(benchmark::State& state) {
  PhysicalMemory mem(64);
  mem.FillPattern(0, 7);
  mem.FillPattern(1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Compare(0, 1));
  }
}
BENCHMARK(BM_ContentCompareEqualPatterns);

void BM_ContentCompareMaterialized(benchmark::State& state) {
  PhysicalMemory mem(64);
  mem.FillPattern(0, 7);
  mem.FillPattern(1, 7);
  mem.WriteU64(0, 0, mem.ReadU64(0, 0));
  mem.WriteU64(1, 0, mem.ReadU64(1, 0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.Compare(0, 1));
  }
}
BENCHMARK(BM_ContentCompareMaterialized);

void BM_BuddyAllocFree(benchmark::State& state) {
  PhysicalMemory mem(1u << 14);
  BuddyAllocator buddy(mem);
  for (auto _ : state) {
    const FrameId f = buddy.Allocate();
    buddy.Free(f);
  }
}
BENCHMARK(BM_BuddyAllocFree);

struct IntCompare {
  int operator()(const int& a, const int& b) const { return (a > b) - (a < b); }
};

void BM_RbTreeInsertFind(benchmark::State& state) {
  RbTree<int, IntCompare> tree;
  int i = 0;
  for (auto _ : state) {
    tree.Insert(i);
    const int target = i / 2;
    benchmark::DoNotOptimize(
        tree.Find([target](const int& v) { return (target > v) - (target < v); }));
    ++i;
  }
}
BENCHMARK(BM_RbTreeInsertFind);

void BM_LlcAccess(benchmark::State& state) {
  Llc llc(CacheConfig{});
  PhysAddr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(llc.Access(addr));
    addr += 64;
  }
}
BENCHMARK(BM_LlcAccess);

void BM_TimedProcessRead(benchmark::State& state) {
  MachineConfig config;
  config.frame_count = 1u << 14;
  Machine machine(config);
  Process& p = machine.CreateProcess();
  const VirtAddr base = p.AllocateRegion(512, PageType::kAnonymous, false, false);
  for (std::size_t i = 0; i < 512; ++i) {
    p.SetupMapPattern(VaddrToVpn(base) + i, i);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Read64(base + (i % 512) * kPageSize + (i % 512) * 8));
    ++i;
  }
}
BENCHMARK(BM_TimedProcessRead);

// Mirrors every google-benchmark run into the unified BENCH_*.json artifact while
// leaving the console output exactly what ConsoleReporter prints.
class JsonBridgeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonBridgeReporter(bench::Reporter& reporter) : reporter_(reporter) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      reporter_.AddRow("benchmarks",
                       {{"name", run.benchmark_name()},
                        {"iterations", static_cast<long long>(run.iterations)},
                        {"real_time_per_iter", run.GetAdjustedRealTime()},
                        {"cpu_time_per_iter", run.GetAdjustedCPUTime()},
                        {"time_unit", benchmark::GetTimeUnitString(run.time_unit)}});
    }
  }

 private:
  bench::Reporter& reporter_;
};

}  // namespace
}  // namespace vusion

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  vusion::bench::Reporter reporter("micro_primitives");
  vusion::JsonBridgeReporter bridge(reporter);
  benchmark::RunSpecifiedBenchmarks(&bridge);
  benchmark::Shutdown();
  return 0;
}
