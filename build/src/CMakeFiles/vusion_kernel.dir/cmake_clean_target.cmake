file(REMOVE_RECURSE
  "libvusion_kernel.a"
)
