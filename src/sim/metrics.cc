#include "src/sim/metrics.h"

#include <algorithm>
#include <cstdio>

namespace vusion {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::vector<double> LatencyBucketsNs() {
  // 100ns .. ~100ms, x4 per bucket: covers a single cache hit through a full
  // CoW copy with TLB shootdowns, in 11 buckets.
  std::vector<double> bounds;
  for (double b = 100.0; b <= 110.0e6; b *= 4.0) {
    bounds.push_back(b);
  }
  return bounds;
}

std::string MetricsSnapshot::Entry::Key() const {
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i != 0) {
        key += ',';
      }
      key += labels[i].first;
      key += '=';
      key += labels[i].second;
    }
    key += '}';
  }
  return key;
}

MetricsSnapshot MetricsSnapshot::Since(const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  delta.entries.reserve(entries.size());
  for (const Entry& after : entries) {
    const Entry* before = base.Find(after.name, after.labels);
    Entry e = after;
    if (before != nullptr && before->kind == after.kind) {
      switch (after.kind) {
        case MetricKind::kCounter:
          e.count = after.count >= before->count ? after.count - before->count : 0;
          break;
        case MetricKind::kGauge:
          break;  // gauges keep the later value
        case MetricKind::kHistogram:
          e.count = after.count >= before->count ? after.count - before->count : 0;
          e.value = after.value - before->value;  // sum delta
          for (std::size_t i = 0; i < e.buckets.size() && i < before->buckets.size(); ++i) {
            e.buckets[i] = after.buckets[i] >= before->buckets[i]
                               ? after.buckets[i] - before->buckets[i]
                               : 0;
          }
          // min/max keep the later (cumulative) value: not recoverable per-phase.
          break;
      }
    }
    delta.entries.push_back(std::move(e));
  }
  return delta;
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(const std::string& name,
                                                    const MetricLabels& labels) const {
  for (const Entry& e : entries) {
    if (e.name == name && e.labels == labels) {
      return &e;
    }
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name,
                                            const MetricLabels& labels) const {
  const Entry* e = Find(name, labels);
  return e != nullptr ? e->count : 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name, const MetricLabels& labels) const {
  const Entry* e = Find(name, labels);
  return e != nullptr ? e->value : 0.0;
}

void MetricsSnapshot::AppendJsonTo(std::string& out) const {
  // One reservation covers the whole array: entry framing plus names, labels,
  // and numeric tokens (~20 chars each). Slight overestimates are fine; what
  // the fleet rollup cannot afford is a reallocation-and-copy cascade across
  // hundreds of appended registries.
  std::size_t estimate = out.size() + 4;
  for (const Entry& e : entries) {
    estimate += e.name.size() + 48;
    for (const auto& [k, v] : e.labels) {
      estimate += k.size() + v.size() + 8;
    }
    if (e.kind == MetricKind::kHistogram) {
      estimate += 64 + (e.bounds.size() + e.buckets.size()) * 20;
    }
  }
  out.reserve(estimate);

  const auto append_u64 = [&out](std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
  };
  out += '[';
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (i != 0) {
      out += ", ";
    }
    out += "{\"name\": ";
    Json::AppendEscaped(out, e.name);
    if (!e.labels.empty()) {
      out += ", \"labels\": {";
      for (std::size_t l = 0; l < e.labels.size(); ++l) {
        if (l != 0) {
          out += ", ";
        }
        Json::AppendEscaped(out, e.labels[l].first);
        out += ": ";
        Json::AppendEscaped(out, e.labels[l].second);
      }
      out += '}';
    }
    out += ", \"kind\": \"";
    out += MetricKindName(e.kind);
    out += '"';
    switch (e.kind) {
      case MetricKind::kCounter:
        out += ", \"value\": ";
        append_u64(e.count);
        break;
      case MetricKind::kGauge:
        out += ", \"value\": ";
        Json::AppendDouble(out, e.value);
        break;
      case MetricKind::kHistogram: {
        out += ", \"count\": ";
        append_u64(e.count);
        out += ", \"sum\": ";
        Json::AppendDouble(out, e.value);
        if (e.count > 0) {
          out += ", \"min\": ";
          Json::AppendDouble(out, e.min);
          out += ", \"max\": ";
          Json::AppendDouble(out, e.max);
        }
        out += ", \"bounds\": [";
        for (std::size_t b = 0; b < e.bounds.size(); ++b) {
          if (b != 0) {
            out += ", ";
          }
          Json::AppendDouble(out, e.bounds[b]);
        }
        out += "], \"buckets\": [";
        for (std::size_t b = 0; b < e.buckets.size(); ++b) {
          if (b != 0) {
            out += ", ";
          }
          append_u64(e.buckets[b]);
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += ']';
}

Json MetricsSnapshot::ToJson() const {
  std::string out;
  AppendJsonTo(out);
  return Json::Raw(std::move(out));
}

std::string MetricsSnapshot::RenderTable() const {
  std::size_t width = 0;
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(entries.size());
  for (const Entry& e : entries) {
    char buf[128];
    std::string value;
    switch (e.kind) {
      case MetricKind::kCounter:
        if (e.count == 0) {
          continue;
        }
        std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(e.count));
        value = buf;
        break;
      case MetricKind::kGauge:
        if (e.value == 0.0) {
          continue;
        }
        std::snprintf(buf, sizeof(buf), "%.6g", e.value);
        value = buf;
        break;
      case MetricKind::kHistogram:
        if (e.count == 0) {
          continue;
        }
        std::snprintf(buf, sizeof(buf), "count=%llu mean=%.6g min=%.6g max=%.6g",
                      static_cast<unsigned long long>(e.count),
                      e.value / static_cast<double>(e.count), e.min, e.max);
        value = buf;
        break;
    }
    std::string key = e.Key();
    width = std::max(width, key.size());
    rows.emplace_back(std::move(key), std::move(value));
  }
  std::string out;
  for (const auto& [key, value] : rows) {
    out += key;
    out.append(width - key.size() + 2, ' ');
    out += value;
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::SlotKey(const std::string& name, const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const MetricLabels& labels) {
  const std::string key = SlotKey(name, labels);
  if (const auto it = lookup_.find(key); it != lookup_.end()) {
    return counters_[order_[it->second].index];
  }
  lookup_.emplace(key, order_.size());
  order_.push_back({name, labels, MetricKind::kCounter, counters_.size()});
  counters_.push_back(Counter(&enabled_));
  return counters_.back();
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const MetricLabels& labels) {
  const std::string key = SlotKey(name, labels);
  if (const auto it = lookup_.find(key); it != lookup_.end()) {
    return gauges_[order_[it->second].index];
  }
  lookup_.emplace(key, order_.size());
  order_.push_back({name, labels, MetricKind::kGauge, gauges_.size()});
  gauges_.push_back(Gauge(&enabled_));
  return gauges_.back();
}

HistogramMetric& MetricsRegistry::GetHistogram(const std::string& name, const MetricLabels& labels,
                                               std::vector<double> bounds) {
  const std::string key = SlotKey(name, labels);
  if (const auto it = lookup_.find(key); it != lookup_.end()) {
    return histograms_[order_[it->second].index];
  }
  lookup_.emplace(key, order_.size());
  order_.push_back({name, labels, MetricKind::kHistogram, histograms_.size()});
  histograms_.push_back(HistogramMetric(&enabled_, std::move(bounds)));
  return histograms_.back();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(order_.size());
  for (const Slot& slot : order_) {
    MetricsSnapshot::Entry e;
    e.name = slot.name;
    e.labels = slot.labels;
    e.kind = slot.kind;
    switch (slot.kind) {
      case MetricKind::kCounter:
        e.count = counters_[slot.index].value();
        break;
      case MetricKind::kGauge:
        e.value = gauges_[slot.index].value();
        break;
      case MetricKind::kHistogram: {
        const HistogramMetric& h = histograms_[slot.index];
        e.count = h.count();
        e.value = h.sum();
        e.min = h.min();
        e.max = h.max();
        e.bounds = h.bounds();
        e.buckets = h.buckets();
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

}  // namespace vusion

#include "src/snapshot/io.h"

namespace vusion {

void MetricsRegistry::SaveState(snapshot::SnapshotWriter& w) const {
  w.Bool(enabled_);
  w.U64(order_.size());
  for (const Slot& slot : order_) {
    w.Str(slot.name);
    w.U32(static_cast<std::uint32_t>(slot.labels.size()));
    for (const auto& [key, value] : slot.labels) {
      w.Str(key);
      w.Str(value);
    }
    w.U8(static_cast<std::uint8_t>(slot.kind));
    switch (slot.kind) {
      case MetricKind::kCounter:
        w.U64(counters_[slot.index].value_);
        break;
      case MetricKind::kGauge:
        w.F64(gauges_[slot.index].value_);
        break;
      case MetricKind::kHistogram: {
        const HistogramMetric& h = histograms_[slot.index];
        w.U64(h.bounds_.size());
        for (const double bound : h.bounds_) {
          w.F64(bound);
        }
        for (const std::uint64_t bucket : h.buckets_) {
          w.U64(bucket);
        }
        w.U64(h.count_);
        w.F64(h.sum_);
        w.F64(h.min_);
        w.F64(h.max_);
        break;
      }
    }
  }
}

void MetricsRegistry::RestoreState(snapshot::SnapshotReader& r) {
  enabled_ = r.Bool();
  // Re-register through the find-or-create path so pre-existing handles (the
  // Machine's constructor-registered fault metrics) stay valid, then overwrite
  // values directly (bypassing the enabled gate).
  const std::uint64_t n = r.Count(8);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = r.Str();
    const std::uint32_t label_count = r.U32();
    MetricLabels labels;
    labels.reserve(label_count);
    for (std::uint32_t l = 0; l < label_count; ++l) {
      std::string key = r.Str();
      std::string value = r.Str();
      labels.emplace_back(std::move(key), std::move(value));
    }
    const std::uint8_t kind = r.U8();
    switch (static_cast<MetricKind>(kind)) {
      case MetricKind::kCounter:
        GetCounter(name, labels).value_ = r.U64();
        break;
      case MetricKind::kGauge:
        GetGauge(name, labels).value_ = r.F64();
        break;
      case MetricKind::kHistogram: {
        const std::uint64_t bound_count = r.Count(8);
        std::vector<double> bounds;
        bounds.reserve(bound_count);
        for (std::uint64_t b = 0; b < bound_count; ++b) {
          bounds.push_back(r.F64());
        }
        HistogramMetric& h = GetHistogram(name, labels, bounds);
        if (h.bounds_.size() != bounds.size()) {
          throw snapshot::RestoreError("metrics", "histogram bounds mismatch for " + name);
        }
        for (std::uint64_t b = 0; b < bound_count + 1; ++b) {
          h.buckets_[b] = r.U64();
        }
        h.count_ = r.U64();
        h.sum_ = r.F64();
        h.min_ = r.F64();
        h.max_ = r.F64();
        break;
      }
      default:
        throw snapshot::RestoreError("metrics", "bad metric kind");
    }
  }
}

}  // namespace vusion
