// Ablation of §7.1(ii): without the deferred-free queue (and its dummy entries),
// a copy-on-access on the LAST sharer frees the frame inside the fault handler
// (an expensive allocator interaction) while a CoA on a still-shared page does
// not - reopening a timing channel that distinguishes fake-merged from truly
// merged pages. With deferred free on, the distributions coincide.

#include <cstdio>

#include "src/attack/cow_side_channel.h"
#include "src/sim/ks_test.h"
#include "bench/bench_common.h"

namespace vusion {
namespace {

KsResult Measure(bool deferred_free) {
  FusionConfig fusion = AttackFusionConfig();
  fusion.deferred_free = deferred_free;
  AttackEnvironment env(EngineKind::kVUsion, 1, AttackMachineConfig(), fusion);
  // hit pages share with the victim (CoA leaves sharers -> dummy path);
  // miss pages are fake-merged alone (CoA frees the frame -> free path).
  const CowSideChannel::Samples samples = CowSideChannel::Collect(env, 400, /*use_reads=*/true);
  return KsTwoSample(samples.hit_times, samples.miss_times);
}

void Run() {
  bench::Reporter reporter("ablation_deferred_free");
  reporter.Header("Ablation: deferred free (the dummy-queue trick of §7.1(ii))");
  const KsResult with = Measure(true);
  const KsResult without = Measure(false);
  std::printf("deferred free ON : D=%.3f p=%-8.3g %s\n", with.statistic, with.p_value,
              with.p_value > 0.05 ? "(indistinguishable - secure)" : "(DISTINGUISHABLE)");
  std::printf("deferred free OFF: D=%.3f p=%-8.3g %s\n", without.statistic, without.p_value,
              without.p_value > 0.05 ? "(indistinguishable?!)" : "(channel reopened)");
  reporter.AddRow("ks_tests", {{"deferred_free", true},
                               {"statistic", with.statistic},
                               {"p_value", with.p_value},
                               {"secure", with.p_value > 0.05}});
  reporter.AddRow("ks_tests", {{"deferred_free", false},
                               {"statistic", without.statistic},
                               {"p_value", without.p_value},
                               {"secure", without.p_value > 0.05}});
}

}  // namespace
}  // namespace vusion

int main() {
  vusion::Run();
  return 0;
}
